GO ?= go

.PHONY: build vet lint test race bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis: go vet always, staticcheck when installed (CI installs
# it; local runs degrade gracefully so the target never needs network).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; ran go vet only"; \
	fi

test:
	$(GO) test ./...

# The verification pipeline is the concurrency-heavy part of the tree; the
# race detector must stay green with multi-worker scanning enabled.
race:
	$(GO) test -race -count=1 ./...

bench:
	$(GO) test -bench=BenchmarkVerifyScaling -benchtime=1x -run=^$$ .

ci: build lint test race
