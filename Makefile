GO ?= go

.PHONY: build vet lint test race bench bench-query bench-wal bench-mvcc bench-overload bench-wire chaos crash fuzz ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis: go vet always, staticcheck when installed (CI installs
# it; local runs degrade gracefully so the target never needs network).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; ran go vet only"; \
	fi

test:
	$(GO) test ./...

# The verification pipeline is the concurrency-heavy part of the tree; the
# race detector must stay green with multi-worker scanning enabled.
race:
	$(GO) test -race -count=1 ./...

bench:
	$(GO) test -bench=BenchmarkVerifyScaling -benchtime=1x -run=^$$ .

# Vectorized-execution smoke: a tiny batch-size sweep proving the query
# subcommand runs end-to-end and rows stay batch-size-invariant. Real
# measurements use the defaults: veridb-bench query.
bench-query:
	$(GO) run ./cmd/veridb-bench query -query-rows 2000 -batch-sizes 1,64,256 -query-json ""

# Durability smoke: a small WAL workload through all three durability
# modes plus the concurrent-writer group-commit sweep, proving the wal
# subcommand runs end-to-end. Real measurements use the defaults:
# veridb-bench wal.
bench-wal:
	$(GO) run ./cmd/veridb-bench wal -statements 300 -checkpoint-every 100 -wal-json ""

# MVCC snapshot-read smoke: a short writer-retention run with the
# concurrent snapshot reader asserting repeat-scan bit-identity, proving
# the mvcc subcommand runs end-to-end. Real measurements use the
# defaults: veridb-bench mvcc.
bench-mvcc:
	$(GO) run ./cmd/veridb-bench mvcc -warehouses 8 -seconds 1 -mvcc-json ""

# Overload-protection smoke: a short shed/timeout/abandonment storm at 4x
# concurrency. The bench itself hard-fails on any untyped shed, drain
# stall, leaked pin/goroutine or unaccounted post-drain memory, so this
# doubles as a leak regression gate. Real measurements use the defaults:
# veridb-bench overload.
bench-overload:
	$(GO) run ./cmd/veridb-bench overload -overload-rows 500 -seconds 1 -overload-json ""

# Wire-protocol smoke: a short closed-loop sweep of both protocols over
# real sockets. The bench itself hard-fails on any MAC-verification
# failure or post-drain goroutine leak, so this doubles as a regression
# gate for the pipelined server path. Real measurements use the defaults:
# veridb-bench serve.
bench-wire:
	$(GO) run ./cmd/veridb-bench serve -wire-rows 500 -wire-ops 300 -inflights 1,16 -wire-json ""

# Fault-injection suite: the chaos injector, quarantine/failover paths in
# core, the retrying client, the portal response cache, and the end-to-end
# fault-recovery bench — all under the race detector, uncached, with a
# hard timeout so a hung failover fails the run instead of wedging it.
chaos:
	$(GO) test -race -count=1 -timeout 5m \
		./internal/chaos ./internal/core ./internal/client \
		./internal/portal ./internal/bench ./internal/govern \
		./internal/server ./internal/wire

# Crash matrix: the durable-storage proof. Kills the WAL at every record
# boundary and mid-record (clean truncation + torn half-synced writes),
# recovers, and diffs against the committed-prefix oracle — serially and
# under group commit (TestCrashPointMatrixGroupCommit, matched by the
# TestCrash pattern); plus tamper classification, golden-dir recovery,
# and the recovery/verifier lifecycle — all under the race detector,
# uncached.
crash:
	$(GO) test -race -count=1 -timeout 5m \
		-run 'TestCrash|TestMidLogBitFlip|TestGolden|TestRecoveryVerifier|TestQuarantinedRecovery' \
		./internal/core
	$(GO) test -race -count=1 -timeout 5m ./internal/wal ./internal/chaos

# Fuzz smoke: each decode-path fuzzer runs briefly over its committed
# seed corpus plus fresh mutations. The invariant under test: arbitrary
# disk or network bytes produce a typed error or a valid result, never a
# panic.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzWALRecordDecode$$' -fuzztime 10s ./internal/wal
	$(GO) test -run '^$$' -fuzz '^FuzzWALHeaderDecode$$' -fuzztime 10s ./internal/wal
	$(GO) test -run '^$$' -fuzz '^FuzzManifestDecode$$' -fuzztime 10s ./internal/wal
	$(GO) test -run '^$$' -fuzz '^FuzzSegmentDecode$$' -fuzztime 10s ./internal/wal
	$(GO) test -run '^$$' -fuzz '^FuzzFrameDecode$$' -fuzztime 10s ./internal/wire
	$(GO) test -run '^$$' -fuzz '^FuzzQueryDecode$$' -fuzztime 10s ./internal/wire
	$(GO) test -run '^$$' -fuzz '^FuzzResultDecode$$' -fuzztime 10s ./internal/wire

ci: build lint test race chaos crash bench-query bench-wal bench-mvcc bench-overload bench-wire
