GO ?= go

.PHONY: build vet test race bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The verification pipeline is the concurrency-heavy part of the tree; the
# race detector must stay green with multi-worker scanning enabled.
race:
	$(GO) test -race -count=1 ./...

bench:
	$(GO) test -bench=BenchmarkVerifyScaling -benchtime=1x -run=^$$ .

ci: build vet test race
