GO ?= go

.PHONY: build vet lint test race bench bench-query chaos ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis: go vet always, staticcheck when installed (CI installs
# it; local runs degrade gracefully so the target never needs network).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; ran go vet only"; \
	fi

test:
	$(GO) test ./...

# The verification pipeline is the concurrency-heavy part of the tree; the
# race detector must stay green with multi-worker scanning enabled.
race:
	$(GO) test -race -count=1 ./...

bench:
	$(GO) test -bench=BenchmarkVerifyScaling -benchtime=1x -run=^$$ .

# Vectorized-execution smoke: a tiny batch-size sweep proving the query
# subcommand runs end-to-end and rows stay batch-size-invariant. Real
# measurements use the defaults: veridb-bench query.
bench-query:
	$(GO) run ./cmd/veridb-bench query -query-rows 2000 -batch-sizes 1,64,256 -query-json ""

# Fault-injection suite: the chaos injector, quarantine/failover paths in
# core, the retrying client, the portal response cache, and the end-to-end
# fault-recovery bench — all under the race detector, uncached, with a
# hard timeout so a hung failover fails the run instead of wedging it.
chaos:
	$(GO) test -race -count=1 -timeout 5m \
		./internal/chaos ./internal/core ./internal/client \
		./internal/portal ./internal/bench

ci: build lint test race chaos bench-query
