package veridb_test

// One benchmark family per figure in the paper's evaluation (§6). These
// run at reduced scale so `go test -bench=.` completes in minutes; the
// veridb-bench command runs the same harness at paper-like scale and
// prints the figures' series. EXPERIMENTS.md records paper-vs-measured.

import (
	"fmt"
	"testing"
	"time"

	"veridb/internal/bench"
	"veridb/internal/core"
	"veridb/internal/enclave"
	"veridb/internal/engine"
	"veridb/internal/mbtree"
	"veridb/internal/plan"
	"veridb/internal/record"
	"veridb/internal/sql"
	"veridb/internal/storage"
	"veridb/internal/vmem"
	"veridb/internal/workload/tpcc"
	"veridb/internal/workload/tpch"
)

const benchRows = 20_000 // initial micro-benchmark table size

// benchTable loads the §6.1 key/value table under one vmem configuration.
func benchTable(b *testing.B, cfg vmem.Config) (*storage.Table, *vmem.Memory) {
	b.Helper()
	mem, err := vmem.New(enclave.NewForTest(1), cfg)
	if err != nil {
		b.Fatal(err)
	}
	st := storage.NewStore(mem)
	t, err := st.CreateTable(storage.TableSpec{
		Name: "kv",
		Schema: record.NewSchema(
			record.Column{Name: "k", Type: record.TypeInt},
			record.Column{Name: "v", Type: record.TypeText},
		),
		PrimaryKey: 0,
	})
	if err != nil {
		b.Fatal(err)
	}
	val := record.Text(string(make([]byte, 500)))
	for i := 1; i <= benchRows; i++ {
		if err := t.Insert(record.Tuple{record.Int(int64(i) * 2), val}); err != nil {
			b.Fatal(err)
		}
	}
	return t, mem
}

// fig9Configs mirrors the Fig. 9 series.
var fig9Configs = []struct {
	name string
	cfg  vmem.Config
}{
	{"Baseline", vmem.Config{Mode: vmem.ModeBaseline}},
	{"RSWS", vmem.Config{}},
	{"RSWSMetadata", vmem.Config{VerifyMetadata: true}},
}

// BenchmarkFig9Get measures point-lookup latency per configuration.
func BenchmarkFig9Get(b *testing.B) {
	for _, c := range fig9Configs {
		b.Run(c.name, func(b *testing.B) {
			t, _ := benchTable(b, c.cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := int64(i%benchRows+1) * 2
				if _, _, err := t.SearchPK(record.Int(k)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9Update measures in-place update latency per configuration.
func BenchmarkFig9Update(b *testing.B) {
	val := record.Text(string(make([]byte, 500)))
	for _, c := range fig9Configs {
		b.Run(c.name, func(b *testing.B) {
			t, _ := benchTable(b, c.cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := int64(i%benchRows+1) * 2
				if err := t.Update(record.Int(k), record.Tuple{record.Int(k), val}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9InsertDelete measures the chain-maintaining write pair.
func BenchmarkFig9InsertDelete(b *testing.B) {
	val := record.Text(string(make([]byte, 500)))
	for _, c := range fig9Configs {
		b.Run(c.name, func(b *testing.B) {
			t, _ := benchTable(b, c.cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := int64(i%benchRows)*2 + 1
				if err := t.Insert(record.Tuple{record.Int(k), val}); err != nil {
					b.Fatal(err)
				}
				if err := t.Delete(record.Int(k)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig10 measures Get latency while the non-quiescent verifier
// scans one page every x operations.
func BenchmarkFig10(b *testing.B) {
	for _, freq := range bench.Fig10Frequencies() {
		b.Run(fmt.Sprintf("opsPerScan=%d", freq), func(b *testing.B) {
			t, mem := benchTable(b, vmem.Config{})
			if err := mem.StartVerifier(freq); err != nil {
				b.Fatal(err)
			}
			defer mem.StopVerifier()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := int64(i%benchRows+1) * 2
				if _, _, err := t.SearchPK(record.Int(k)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := mem.Alarm(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkFig11 compares VeriDB against the MB-Tree on the same ops.
func BenchmarkFig11(b *testing.B) {
	val := make([]byte, 500)
	key := func(k int64) []byte {
		return []byte{byte(k >> 24), byte(k >> 16), byte(k >> 8), byte(k)}
	}
	b.Run("MBTree/Get", func(b *testing.B) {
		tr := mbtree.New(mbtree.DefaultFanout)
		var root mbtree.Hash
		for i := 1; i <= benchRows; i++ {
			root = tr.Insert(key(int64(i)*2), val)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := int64(i%benchRows+1) * 2
			got, proof, ok := tr.Get(key(k))
			if !ok {
				b.Fatal("missing key")
			}
			if err := mbtree.Verify(root, key(k), got, true, proof); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MBTree/Update", func(b *testing.B) {
		tr := mbtree.New(mbtree.DefaultFanout)
		for i := 1; i <= benchRows; i++ {
			tr.Insert(key(int64(i)*2), val)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.Insert(key(int64(i%benchRows+1)*2), val)
		}
	})
	b.Run("VeriDB/Get", func(b *testing.B) {
		t, mem := benchTable(b, vmem.Config{})
		if err := mem.StartVerifier(1000); err != nil {
			b.Fatal(err)
		}
		defer mem.StopVerifier()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := int64(i%benchRows+1) * 2
			if _, _, err := t.SearchPK(record.Int(k)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("VeriDB/Update", func(b *testing.B) {
		t, mem := benchTable(b, vmem.Config{})
		if err := mem.StartVerifier(1000); err != nil {
			b.Fatal(err)
		}
		defer mem.StopVerifier()
		v := record.Text(string(val))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := int64(i%benchRows+1) * 2
			if err := t.Update(record.Int(k), record.Tuple{record.Int(k), v}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// fig12DB loads a small TPC-H instance once per configuration.
func fig12DB(b *testing.B, baseline bool, js plan.JoinStrategy) *core.DB {
	b.Helper()
	mode := vmem.ModeRSWS
	if baseline {
		mode = vmem.ModeBaseline
	}
	db, err := core.Open(core.Config{Seed: 1, Memory: vmem.Config{Mode: mode}, Join: js})
	if err != nil {
		b.Fatal(err)
	}
	for _, ddl := range tpch.CreateTablesSQL() {
		if _, err := db.Execute(ddl); err != nil {
			b.Fatal(err)
		}
	}
	d := tpch.Generate(10_000, 333, 1)
	if err := tpch.Load(db.Store(), d); err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkFig12 runs the three TPC-H queries with and without RSWS.
func BenchmarkFig12(b *testing.B) {
	queries := []struct {
		name string
		sql  string
		join plan.JoinStrategy
	}{
		{"Q1", tpch.Q1SQL(), plan.JoinAuto},
		{"Q6", tpch.Q6SQL(), plan.JoinAuto},
		{"Q19Merge", tpch.Q19SQL(), plan.JoinMerge},
		{"Q19NLJ", tpch.Q19SQL(), plan.JoinNested},
	}
	for _, q := range queries {
		for _, baseline := range []bool{false, true} {
			cfg := "RSWS"
			if baseline {
				cfg = "Baseline"
			}
			b.Run(q.name+"/"+cfg, func(b *testing.B) {
				db := fig12DB(b, baseline, q.join)
				defer db.Close()
				stmt, err := sql.Parse(q.sql)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					op, err := db.Plan(stmt.(*sql.Select))
					if err != nil {
						b.Fatal(err)
					}
					if _, err := engine.Drain(op); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig13 reports TPC-C throughput for the RSWS-count series at a
// fixed client count (the full clients × configs sweep is veridb-bench
// fig13). The metric of record is tps.
func BenchmarkFig13(b *testing.B) {
	series := []struct {
		name string
		cfg  vmem.Config
	}{
		{"NoRSWS", vmem.Config{Mode: vmem.ModeBaseline}},
		{"RSWS1", vmem.Config{Partitions: 1}},
		{"RSWS16", vmem.Config{Partitions: 16}},
		{"RSWS1024", vmem.Config{Partitions: 1024}},
	}
	for _, s := range series {
		b.Run(s.name, func(b *testing.B) {
			cfg := bench.TPCCConfig{
				Workload:    tpcc.Config{Warehouses: 4, Customers: 5, Items: 100},
				Duration:    500 * time.Millisecond,
				VerifyEvery: 1000,
			}
			var tps float64
			for i := 0; i < b.N; i++ {
				pt, err := bench.RunTPCCPoint(cfg, s.cfg, s.name, 4)
				if err != nil {
					b.Fatal(err)
				}
				tps = pt.TPS
			}
			b.ReportMetric(tps, "tps")
		})
	}
}

// BenchmarkShardScaling measures TPC-C throughput as tables split into
// more hash shards under a fixed 16-partition RSWS. With several clients
// the single table latch is the residual bottleneck §4.3's partitioned
// RSWS cannot remove; shards split that latch, so multi-client TPS should
// rise (or at worst hold) from 1 → 16 shards. veridb-bench fig13 runs the
// same sweep at scale and emits BENCH_shard.json.
func BenchmarkShardScaling(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := bench.TPCCConfig{
				Workload:    tpcc.Config{Warehouses: 4, Customers: 5, Items: 100},
				Duration:    500 * time.Millisecond,
				VerifyEvery: 1000,
				TableShards: shards,
			}
			var tps float64
			for i := 0; i < b.N; i++ {
				pt, err := bench.RunTPCCPoint(cfg, vmem.Config{Partitions: 16},
					fmt.Sprintf("%d shard(s)", shards), 4)
				if err != nil {
					b.Fatal(err)
				}
				tps = pt.TPS
			}
			b.ReportMetric(tps, "tps")
		})
	}
}

// BenchmarkVerifyScaling measures full-memory verification latency on a
// ≥10k-page memory as the verification worker count grows. On a multi-core
// host latency should fall monotonically from 1 → 4 workers (partition
// passes and intra-page PRF chunks parallelise; the XOR fold keeps the
// resident digests bit-identical, which the harness asserts). veridb-bench
// verify runs the same sweep and emits BENCH_verify.json.
func BenchmarkVerifyScaling(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var lastPagesPerSec float64
			for i := 0; i < b.N; i++ {
				run, err := bench.RunVerifyScaling(bench.VerifyScalingConfig{
					Pages: 10_000, RecordsPerPage: 4, RecordBytes: 64,
					Partitions: 16, Passes: 1, Workers: []int{workers},
				})
				if err != nil {
					b.Fatal(err)
				}
				pt := run.Points[0]
				b.ReportMetric(float64(pt.FullScan.Nanoseconds()), "ns/full-scan")
				lastPagesPerSec = pt.PagesPerSecond
			}
			b.ReportMetric(lastPagesPerSec, "pages/sec")
		})
	}
}

// BenchmarkAblationMetadata quantifies §4.3's metadata-exclusion win as
// PRF evaluations per operation.
func BenchmarkAblationMetadata(b *testing.B) {
	for _, c := range []struct {
		name string
		cfg  vmem.Config
	}{{"excluded", vmem.Config{}}, {"included", vmem.Config{VerifyMetadata: true}}} {
		b.Run(c.name, func(b *testing.B) {
			t, mem := benchTable(b, c.cfg)
			before := mem.Stats().PRFEvals
			val := record.Text(string(make([]byte, 500)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := int64(i%benchRows)*2 + 1
				if err := t.Insert(record.Tuple{record.Int(k), val}); err != nil {
					b.Fatal(err)
				}
				if err := t.Delete(record.Int(k)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(mem.Stats().PRFEvals-before)/float64(b.N), "prf/op")
		})
	}
}

// BenchmarkAblationCompaction compares eager and deferred reclamation.
func BenchmarkAblationCompaction(b *testing.B) {
	val := record.Text(string(make([]byte, 500)))
	for _, c := range []struct {
		name string
		cfg  vmem.Config
	}{{"deferred", vmem.Config{}}, {"eager", vmem.Config{EagerCompaction: true}}} {
		b.Run(c.name, func(b *testing.B) {
			t, _ := benchTable(b, c.cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := int64(i%benchRows)*2 + 1
				if err := t.Insert(record.Tuple{record.Int(k), val}); err != nil {
					b.Fatal(err)
				}
				if err := t.Delete(record.Int(k)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTouched compares warm verification passes with and
// without touched-page tracking.
func BenchmarkAblationTouched(b *testing.B) {
	for _, c := range []struct {
		name string
		cfg  vmem.Config
	}{{"touchedOnly", vmem.Config{}}, {"fullScan", vmem.Config{FullScan: true}}} {
		b.Run(c.name, func(b *testing.B) {
			t, mem := benchTable(b, c.cfg)
			if err := mem.VerifyAll(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Touch one row, then verify: the pass should be nearly
				// free with tracking, a full re-hash without.
				if _, _, err := t.SearchPK(record.Int(2)); err != nil {
					b.Fatal(err)
				}
				if err := mem.VerifyAll(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationECall prices the §3.3 enclave-colocation decision.
func BenchmarkAblationECall(b *testing.B) {
	enc, err := enclave.New(enclave.Config{ECallCycles: enclave.DefaultECallCycles})
	if err != nil {
		b.Fatal(err)
	}
	t, _ := benchTable(b, vmem.Config{})
	b.Run("colocated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := t.SearchPK(record.Int(int64(i%benchRows+1) * 2)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("crossingPerOp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			enc.ECall()
			if _, _, err := t.SearchPK(record.Int(int64(i%benchRows+1) * 2)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
