// Command veridb-bench regenerates the paper's evaluation figures (§6).
// Each subcommand prints one figure's series; absolute numbers depend on
// the host, but the relationships the paper reports (who wins, by what
// factor, where curves cross) should reproduce. See EXPERIMENTS.md for the
// recorded paper-vs-measured comparison.
//
// Usage:
//
//	veridb-bench fig9  [-rows N] [-ops N]
//	veridb-bench fig10 [-rows N] [-ops N]
//	veridb-bench fig11 [-rows N] [-ops N]
//	veridb-bench fig12 [-lineitems N]
//	veridb-bench fig13 [-warehouses N] [-seconds S] [-shards 1,4,16] [-shard-json BENCH_shard.json]
//	veridb-bench verify [-pages N] [-workers 1,2,4,8] [-json BENCH_verify.json]
//	veridb-bench fault  [-rows N] [-trials N] [-json BENCH_fault.json]
//	veridb-bench query  [-query-rows N] [-batch-sizes 1,64,256] [-query-json BENCH_query.json]
//	veridb-bench wal    [-statements N] [-checkpoint-every N] [-wal-json BENCH_wal.json]
//	veridb-bench mvcc   [-warehouses N] [-seconds S] [-mvcc-clients N] [-mvcc-json BENCH_mvcc.json]
//	veridb-bench overload [-overload-rows N] [-seconds S] [-overload-workers N] [-overload-json BENCH_overload.json]
//	veridb-bench serve [-wire-rows N] [-wire-ops N] [-inflights 1,4,16,64] [-wire-json BENCH_wire.json]
//	veridb-bench ablations [-rows N]
//	veridb-bench all
//
// The verify subcommand measures the parallel verification pipeline
// (full-scan latency and epoch-rotation throughput vs. worker count) and,
// with -json, writes the sweep as machine-readable JSON so the perf
// trajectory is tracked across PRs.
//
// The fault subcommand measures the containment pipeline: per injected
// fault kind, the latency from corruption to an authenticated quarantine
// response (detection) and to a verified replacement serving again
// (time-to-recovered).
//
// The query subcommand sweeps the vectorized-execution batch size over a
// fixed query set (scan, filter, aggregate, sort, join) and, with
// -query-json, records the per-operator latencies so the batching win is
// tracked across PRs.
//
// The wal subcommand measures authenticated durability: per-statement
// append throughput with a MACed, fsync'd WAL (vs. the in-memory
// baseline), checkpoint cost, and the recovery latency of reopening the
// data directory through the VerifyAll admission gate.
//
// The overload subcommand measures overload protection: it drives point
// queries at several times the admission capacity, plus pathological
// workers (deadline-racing sorts, abandoned snapshot pins, slow LIMITed
// readers), and records the non-shed p99 against the unloaded p99, the
// typed shed refusals, and the post-drain leak checks (goroutines,
// tracked memory, snapshot pins). Every delivered response MAC-verifies.
//
// The serve subcommand measures the wire protocols end to end: a
// closed-loop load generator over real TCP sockets sweeps concurrency
// {1,4,16,64} × protocol {json, binary}. JSON legs run one serial request
// per connection (the legacy protocol cannot pipeline); binary legs put
// the whole window in flight on ONE connection through the client
// pipeline. Every response is MAC-verified, and the run hard-fails on a
// verification failure or a post-drain goroutine leak. The headline is
// the binary-pipelined speedup over serial JSON (acceptance: ≥ 3x).
//
// The mvcc subcommand measures snapshot-read retention: TPC-C writer
// throughput with and without a concurrent reader that pins snapshots
// and drives long verified scans (asserting repeat-scan bit-identity).
// The headline is the retention ratio — snapshot readers hold no write
// latches past chain verification, so writers should keep ≥ 90% of
// their no-reader throughput.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"veridb/internal/bench"
	"veridb/internal/vmem"
	"veridb/internal/workload/tpcc"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	rows := fs.Int("rows", 100_000, "initial database rows (figs 9-11, ablations)")
	ops := fs.Int("ops", 10_000, "mixed operations per run (figs 9-11)")
	lineitems := fs.Int("lineitems", 60_000, "lineitem rows (fig 12); parts scale 1:30")
	warehouses := fs.Int("warehouses", 20, "warehouses (fig 13)")
	seconds := fs.Float64("seconds", 2, "seconds per throughput point (fig 13)")
	shardList := fs.String("shards", "1,4,16", "comma-separated TableShards sweep (fig 13)")
	shardJSON := fs.String("shard-json", "BENCH_shard.json", "write the shard sweep as JSON to this path (fig 13); empty disables")
	pages := fs.Int("pages", 10_000, "pages in the verify-scaling memory (verify)")
	workerList := fs.String("workers", "1,2,4,8", "comma-separated worker counts (verify)")
	jsonPath := fs.String("json", "", "write results as JSON to this path (verify, fault)")
	trials := fs.Int("trials", 8, "fault/recovery cycles, kinds rotating (fault)")
	faultRows := fs.Int("fault-rows", 128, "seeded rows per instance (fault)")
	queryRows := fs.Int("query-rows", 30_000, "fact-table rows (query)")
	batchSizes := fs.String("batch-sizes", "1,64,256", "comma-separated ExecBatchSize sweep (query)")
	queryJSON := fs.String("query-json", "BENCH_query.json", "write the batch sweep as JSON to this path (query); empty disables")
	statements := fs.Int("statements", 2000, "workload length per durability mode (wal)")
	checkpointEvery := fs.Int("checkpoint-every", 500, "checkpoint interval for the checkpointed mode (wal)")
	walJSON := fs.String("wal-json", "BENCH_wal.json", "write the durability run as JSON to this path (wal); empty disables")
	mvccClients := fs.Int("mvcc-clients", 8, "TPC-C writer count (mvcc)")
	mvccJSON := fs.String("mvcc-json", "BENCH_mvcc.json", "write the snapshot-read run as JSON to this path (mvcc); empty disables")
	overloadRows := fs.Int("overload-rows", 2000, "seeded kv rows (overload)")
	overloadWorkers := fs.Int("overload-workers", 8, "point-query storm workers (overload)")
	overloadJSON := fs.String("overload-json", "BENCH_overload.json", "write the overload run as JSON to this path (overload); empty disables")
	wireRows := fs.Int("wire-rows", 2000, "seeded kv rows (serve)")
	wireOps := fs.Int("wire-ops", 2000, "measured queries per protocol x inflight leg (serve)")
	inflightList := fs.String("inflights", "1,4,16,64", "comma-separated concurrency sweep (serve)")
	rttMS := fs.Float64("rtt", 0.5, "modeled round-trip link latency, ms (serve); 0 measures raw loopback")
	wireJSON := fs.String("wire-json", "BENCH_wire.json", "write the wire sweep as JSON to this path (serve); empty disables")
	fs.Parse(os.Args[2:])

	run := func(name string, f func() error) {
		if cmd == name || cmd == "all" {
			if err := f(); err != nil {
				fmt.Fprintf(os.Stderr, "veridb-bench %s: %v\n", name, err)
				os.Exit(1)
			}
		}
	}
	known := map[string]bool{"fig9": true, "fig10": true, "fig11": true,
		"fig12": true, "fig13": true, "verify": true, "fault": true,
		"query": true, "wal": true, "mvcc": true, "overload": true,
		"serve": true, "ablations": true, "all": true}
	if !known[cmd] {
		usage()
		os.Exit(2)
	}
	run("fig9", func() error { return fig9(*rows, *ops) })
	run("fig10", func() error { return fig10(*rows, *ops) })
	run("fig11", func() error { return fig11(*rows, *ops) })
	run("fig12", func() error { return fig12(*lineitems) })
	run("fig13", func() error { return fig13(*warehouses, *seconds, *shardList, *shardJSON) })
	run("verify", func() error { return verifyScaling(*pages, *workerList, *jsonPath) })
	run("fault", func() error { return faultRecovery(*faultRows, *trials, *jsonPath) })
	run("query", func() error { return queryBatch(*queryRows, *batchSizes, *queryJSON) })
	run("wal", func() error { return walBench(*statements, *checkpointEvery, *walJSON) })
	run("mvcc", func() error { return mvccBench(*warehouses, *seconds, *mvccClients, *mvccJSON) })
	run("overload", func() error { return overloadBench(*overloadRows, *seconds, *overloadWorkers, *overloadJSON) })
	run("serve", func() error { return wireBench(*wireRows, *wireOps, *inflightList, *rttMS, *wireJSON) })
	run("ablations", func() error { return ablations(*rows) })
}

func usage() {
	fmt.Fprintln(os.Stderr, `veridb-bench <fig9|fig10|fig11|fig12|fig13|verify|fault|query|wal|mvcc|overload|serve|ablations|all> [flags]`)
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func fig9(rows, ops int) error {
	fmt.Printf("== Figure 9: read/write latency by configuration (rows=%d, ops=%d) ==\n", rows, ops)
	fmt.Printf("%-18s %10s %10s %10s %10s\n", "config", "Get(us)", "Insert(us)", "Delete(us)", "Update(us)")
	var base, rsws bench.OpLatencies
	for _, c := range bench.Fig9Configs() {
		lat, err := bench.RunMicro(bench.MicroConfig{Vmem: c.Vmem, InitialRows: rows, Ops: ops})
		if err != nil {
			return err
		}
		fmt.Printf("%-18s %10.2f %10.2f %10.2f %10.2f\n", c.Name,
			us(lat.Get), us(lat.Insert), us(lat.Delete), us(lat.Update))
		switch c.Name {
		case "Baseline":
			base = lat
		case "RSWS":
			rsws = lat
		}
	}
	fmt.Printf("-- headline (§6.1): RSWS overhead vs Baseline: Get %+.2fus Insert %+.2fus Delete %+.2fus Update %+.2fus (paper: 1-2us)\n\n",
		us(rsws.Get-base.Get), us(rsws.Insert-base.Insert),
		us(rsws.Delete-base.Delete), us(rsws.Update-base.Update))
	return nil
}

func fig10(rows, ops int) error {
	fmt.Printf("== Figure 10: latency vs verification frequency (rows=%d, ops=%d) ==\n", rows, ops)
	fmt.Printf("%-14s %10s %10s %10s %10s\n", "ops/page-scan", "Get(us)", "Insert(us)", "Delete(us)", "Update(us)")
	for _, freq := range bench.Fig10Frequencies() {
		lat, err := bench.RunMicro(bench.MicroConfig{InitialRows: rows, Ops: ops, VerifyEvery: freq})
		if err != nil {
			return err
		}
		fmt.Printf("%-14d %10.2f %10.2f %10.2f %10.2f\n", freq,
			us(lat.Get), us(lat.Insert), us(lat.Delete), us(lat.Update))
	}
	fmt.Println()
	return nil
}

func fig11(rows, ops int) error {
	fmt.Printf("== Figure 11: VeriDB vs MB-Tree (rows=%d, ops=%d) ==\n", rows, ops)
	veri, err := bench.RunMicro(bench.MicroConfig{InitialRows: rows, Ops: ops, VerifyEvery: 1000})
	if err != nil {
		return err
	}
	mb, err := bench.RunMBTreeMicro(bench.MicroConfig{InitialRows: rows, Ops: ops})
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %10s %10s %10s %10s\n", "system", "Get(us)", "Insert(us)", "Delete(us)", "Update(us)")
	fmt.Printf("%-10s %10.2f %10.2f %10.2f %10.2f\n", "MHT", us(mb.Get), us(mb.Insert), us(mb.Delete), us(mb.Update))
	fmt.Printf("%-10s %10.2f %10.2f %10.2f %10.2f\n", "VeriDB", us(veri.Get), us(veri.Insert), us(veri.Delete), us(veri.Update))
	red := func(v, m time.Duration) float64 {
		if m == 0 {
			return 0
		}
		return 100 * (1 - float64(v)/float64(m))
	}
	fmt.Printf("-- headline (§6.2): latency reduction vs MB-Tree: Get %.0f%% Insert %.0f%% Delete %.0f%% Update %.0f%% (paper: 94-96%%)\n\n",
		red(veri.Get, mb.Get), red(veri.Insert, mb.Insert), red(veri.Delete, mb.Delete), red(veri.Update, mb.Update))
	return nil
}

func fig12(lineitems int) error {
	fmt.Printf("== Figure 12: TPC-H execution time (lineitems=%d) ==\n", lineitems)
	cfg := bench.TPCHConfig{Lineitems: lineitems}
	withRSWS, err := bench.RunTPCH(cfg, vmem.Config{}, "w/ RSWS")
	if err != nil {
		return err
	}
	baseline, err := bench.RunTPCH(cfg, vmem.Config{Mode: vmem.ModeBaseline}, "w/o RSWS")
	if err != nil {
		return err
	}
	fmt.Printf("%-22s %14s %14s %14s %14s %9s\n",
		"query", "scan w/RSWS", "other w/RSWS", "scan w/o", "other w/o", "overhead")
	for i, r := range withRSWS.Results {
		b := baseline.Results[i]
		ovh := 0.0
		if b.Total > 0 {
			ovh = 100 * (float64(r.Total)/float64(b.Total) - 1)
		}
		fmt.Printf("%-22s %12.1fms %12.1fms %12.1fms %12.1fms %8.1f%%\n",
			r.Query,
			float64(r.ScanNodes.Microseconds())/1e3, float64(r.Other.Microseconds())/1e3,
			float64(b.ScanNodes.Microseconds())/1e3, float64(b.Other.Microseconds())/1e3,
			ovh)
	}
	fmt.Println("-- headline (§6.3): paper reports 9% (Q19 NLJ) to 39% (Q1/Q6) relative overhead")
	fmt.Println()
	return nil
}

func fig13(warehouses int, seconds float64, shardList, shardJSON string) error {
	fmt.Printf("== Figure 13: TPC-C throughput vs clients (warehouses=%d, %.1fs/point) ==\n", warehouses, seconds)
	cfg := bench.TPCCConfig{
		Workload:    tpcc.Config{Warehouses: warehouses, Customers: 10, Items: 200},
		Duration:    time.Duration(seconds * float64(time.Second)),
		VerifyEvery: 1000,
	}
	clients := []int{1, 2, 3, 4, 5, 6, 7, 8}
	fmt.Printf("%-18s", "config\\clients")
	for _, c := range clients {
		fmt.Printf(" %8d", c)
	}
	fmt.Println()
	for _, series := range bench.Fig13Series() {
		fmt.Printf("%-18s", series.Name)
		for _, c := range clients {
			pt, err := bench.RunTPCCPoint(cfg, series.Vmem, series.Name, c)
			if err != nil {
				return err
			}
			fmt.Printf(" %8.0f", pt.TPS)
		}
		fmt.Println()
	}
	fmt.Println("-- headline (§6.3): paper reports ~3-4x overhead with 1024 RSWSs, worse with fewer")
	fmt.Println()

	var shards []int
	for _, s := range strings.Split(shardList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -shards entry %q", s)
		}
		shards = append(shards, n)
	}
	shardClients := []int{1, 4, 8}
	fmt.Printf("== TableShards sweep: TPC-C throughput vs per-table shard count (16 RSWSs) ==\n")
	run, err := bench.RunShardScaling(bench.ShardScalingConfig{
		TPCC:    cfg,
		Vmem:    vmem.Config{Partitions: 16},
		Shards:  shards,
		Clients: shardClients,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-18s", "shards\\clients")
	for _, c := range shardClients {
		fmt.Printf(" %8d", c)
	}
	fmt.Println()
	i := 0
	for _, n := range shards {
		fmt.Printf("%-18d", n)
		for range shardClients {
			fmt.Printf(" %8.0f", run.Points[i].TPS)
			i++
		}
		fmt.Println()
	}
	fmt.Println("-- splitting the table latch should lift multi-client throughput once RSWS contention is gone")
	if shardJSON != "" {
		data, err := json.MarshalIndent(run, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(shardJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("-- wrote %s\n", shardJSON)
	}
	fmt.Println()
	return nil
}

func verifyScaling(pages int, workerList, jsonPath string) error {
	var workers []int
	for _, s := range strings.Split(workerList, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || w < 1 {
			return fmt.Errorf("bad -workers entry %q", s)
		}
		workers = append(workers, w)
	}
	fmt.Printf("== Verification scaling: full-scan latency vs. workers (pages=%d) ==\n", pages)
	run, err := bench.RunVerifyScaling(bench.VerifyScalingConfig{Pages: pages, Workers: workers})
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %14s %12s %14s %9s %18s\n",
		"workers", "full-scan(ms)", "pages/sec", "rotations/sec", "speedup", "resident-checksum")
	for _, pt := range run.Points {
		fmt.Printf("%-8d %14.2f %12.0f %14.1f %8.2fx %18s\n",
			pt.Workers, float64(pt.FullScan.Microseconds())/1e3,
			pt.PagesPerSecond, pt.RotationsPerSecond, pt.Speedup, pt.Checksum)
	}
	fmt.Println("-- checksums are asserted identical across worker counts (XOR-fold exactness)")
	if jsonPath != "" {
		data, err := json.MarshalIndent(run, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("-- wrote %s\n", jsonPath)
	}
	fmt.Println()
	return nil
}

func faultRecovery(rows, trials int, jsonPath string) error {
	fmt.Printf("== Fault recovery: detection and failover latency by fault kind (rows=%d, trials=%d) ==\n", rows, trials)
	run, err := bench.RunFaultRecovery(bench.FaultRecoveryConfig{Rows: rows, Trials: trials})
	if err != nil {
		return err
	}
	fmt.Printf("%-15s %14s %14s %18s %12s %10s\n",
		"fault", "detection(ms)", "failover(ms)", "to-recovered(ms)", "quarantined", "seq-floor")
	for _, tr := range run.Trials {
		fmt.Printf("%-15s %14.2f %14.2f %18.2f %12d %10d\n",
			tr.Fault,
			float64(tr.Detection.Microseconds())/1e3,
			float64(tr.Failover.Microseconds())/1e3,
			float64(tr.TimeToRecovered.Microseconds())/1e3,
			tr.QuarantinedResponses, tr.SeqFloor)
	}
	fmt.Printf("-- mean: detection %.2fms, time-to-recovered %.2fms (inject -> verified replacement serving)\n",
		float64(run.MeanDetection.Microseconds())/1e3,
		float64(run.MeanTimeToRecovered.Microseconds())/1e3)
	if jsonPath != "" {
		data, err := json.MarshalIndent(run, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("-- wrote %s\n", jsonPath)
	}
	fmt.Println()
	return nil
}

func queryBatch(rows int, sizeList, jsonPath string) error {
	var sizes []int
	for _, s := range strings.Split(sizeList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -batch-sizes entry %q", s)
		}
		sizes = append(sizes, n)
	}
	fmt.Printf("== Query execution: per-operator latency vs batch size (rows=%d) ==\n", rows)
	run, err := bench.RunExecBatch(bench.ExecBatchConfig{Rows: rows, Sizes: sizes})
	if err != nil {
		return err
	}
	fmt.Printf("%-11s", "op\\batch")
	for _, s := range run.Sizes {
		fmt.Printf(" %11d", s)
	}
	fmt.Printf(" %9s\n", "speedup")
	byOp := make(map[string]map[int]float64)
	for _, pt := range run.Points {
		if byOp[pt.Op] == nil {
			byOp[pt.Op] = make(map[int]float64)
		}
		byOp[pt.Op][pt.BatchSize] = float64(pt.Latency.Microseconds()) / 1e3
	}
	for _, op := range []string{"scan", "filter", "aggregate", "sort", "join"} {
		lat, ok := byOp[op]
		if !ok {
			continue
		}
		fmt.Printf("%-11s", op)
		for _, s := range run.Sizes {
			fmt.Printf(" %9.2fms", lat[s])
		}
		fmt.Printf(" %8.2fx\n", run.Speedup[op])
	}
	fmt.Println("-- row counts are asserted identical across batch sizes; batching must only move time, not rows")
	if jsonPath != "" {
		data, err := json.MarshalIndent(run, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("-- wrote %s\n", jsonPath)
	}
	fmt.Println()
	return nil
}

func ablations(rows int) error {
	fmt.Println("== Ablations (§4.3 design choices) ==")
	comp, err := bench.RunAblationCompaction(rows/10, 5000)
	if err != nil {
		return err
	}
	fmt.Printf("compaction: delete latency eager=%.2fus deferred=%.2fus; scan-with-compaction pass=%v\n",
		us(comp.EagerDelete), us(comp.DeferredDelete), comp.ScanWithWork)
	touched, err := bench.RunAblationTouched(rows)
	if err != nil {
		return err
	}
	fmt.Printf("touched-page tracking: warm verification pass full-scan=%v touched-only=%v (%d pages)\n",
		touched.FullScan, touched.TouchedOnly, touched.Pages)
	ecall, err := bench.RunAblationECall(rows/10, 5000)
	if err != nil {
		return err
	}
	fmt.Printf("enclave colocation: Get colocated=%.2fus with-ECall-per-call=%.2fus (§3.3 rationale)\n",
		us(ecall.Colocated), us(ecall.Crossing))
	fmt.Println()
	return nil
}

func mvccBench(warehouses int, seconds float64, clients int, jsonPath string) error {
	fmt.Printf("== MVCC snapshot reads: writer retention under a concurrent verified reader (warehouses=%d, clients=%d, %.1fs/phase) ==\n",
		warehouses, clients, seconds)
	run, err := bench.RunMVCC(bench.MVCCConfig{
		Workload:    tpcc.Config{Warehouses: warehouses, Customers: 10, Items: 200},
		Duration:    time.Duration(seconds * float64(time.Second)),
		Clients:     clients,
		VerifyEvery: 1000,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-22s %12s\n", "phase", "writer TPS")
	fmt.Printf("%-22s %12.0f\n", "baseline (no reader)", run.BaselineTPS)
	fmt.Printf("%-22s %12.0f\n", "with snapshot reader", run.ConcurrentTPS)
	fmt.Printf("-- retention %.1f%% (target ≥ 90%%); reader pinned %d snapshots, drained %d rows, every snapshot scanned twice bit-identically\n",
		run.Retention*100, run.ReaderSnapshots, run.ReaderRows)
	if jsonPath != "" {
		data, err := json.MarshalIndent(run, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("-- wrote %s\n", jsonPath)
	}
	fmt.Println()
	return nil
}

func overloadBench(rows int, seconds float64, workers int, jsonPath string) error {
	fmt.Printf("== Overload protection: shedding, deadlines and leak checks under 4x load (rows=%d, workers=%d, %.1fs storm) ==\n",
		rows, workers, seconds)
	run, err := bench.RunOverload(bench.OverloadConfig{
		Rows:     rows,
		Workers:  workers,
		Duration: time.Duration(seconds * float64(time.Second)),
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-26s %12s\n", "metric", "value")
	fmt.Printf("%-26s %12.0f\n", "unloaded p99 (us)", run.UnloadedP99US)
	fmt.Printf("%-26s %12.0f\n", "loaded non-shed p99 (us)", run.LoadedP99US)
	fmt.Printf("%-26s %11.2fx\n", "p99 ratio (target <= 3)", run.P99Ratio)
	fmt.Printf("%-26s %12d\n", "delivered (MAC-verified)", run.Delivered)
	fmt.Printf("%-26s %12d\n", "shed (typed, retryable)", run.Shed)
	fmt.Printf("%-26s %12d\n", "deadline cancellations", run.Timeouts)
	fmt.Printf("%-26s %12d\n", "sessions expired", run.SessionsExpired)
	fmt.Printf("%-26s %12d\n", "mem high water (bytes)", run.MemHighWater)
	fmt.Printf("-- post-drain: mem %d (net of %d cache bytes), pins %d, goroutines %d (baseline %d)\n",
		run.PostDrainMemUsed, run.ResponseCacheBytes, run.PostDrainPins,
		run.PostCloseGoroutines, run.BaselineGoroutines)
	if jsonPath != "" {
		data, err := json.MarshalIndent(run, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("-- wrote %s\n", jsonPath)
	}
	fmt.Println()
	return nil
}

func wireBench(rows, ops int, inflightList string, rttMS float64, jsonPath string) error {
	var inflights []int
	for _, s := range strings.Split(inflightList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -inflights entry %q", s)
		}
		inflights = append(inflights, n)
	}
	rtt := time.Duration(rttMS * float64(time.Millisecond))
	if rtt <= 0 {
		rtt = -1 // WireConfig: negative means a true zero-latency link
	}
	fmt.Printf("== Wire protocols: closed-loop QPS over real sockets (rows=%d, ops=%d/leg, rtt=%.2fms) ==\n",
		rows, ops, rttMS)
	run, err := bench.RunWire(bench.WireConfig{Rows: rows, Ops: ops, Inflights: inflights, RTT: rtt})
	if err != nil {
		return err
	}
	fmt.Printf("%-9s %9s %10s %10s %12s %12s %10s\n",
		"protocol", "inflight", "ops", "QPS", "p50(us)", "p99(us)", "verified")
	for _, leg := range run.Legs {
		fmt.Printf("%-9s %9d %10d %10.0f %12.1f %12.1f %10d\n",
			leg.Protocol, leg.Inflight, leg.Ops, leg.QPS, leg.P50US, leg.P99US, leg.Verified)
	}
	fmt.Printf("-- headline: binary pipelined vs serial JSON speedup %.2fx (target >= 3x); every response MAC-verified\n",
		run.SpeedupBinaryPipelined)
	fmt.Printf("-- post-drain goroutines %d (baseline %d): no connection, handler or writer leaked\n",
		run.PostDrainGoroutines, run.BaselineGoroutines)
	if jsonPath != "" {
		data, err := json.MarshalIndent(run, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("-- wrote %s\n", jsonPath)
	}
	fmt.Println()
	return nil
}

func walBench(statements, checkpointEvery int, jsonPath string) error {
	fmt.Printf("== Durability: authenticated WAL append and recovery (statements=%d, checkpoint-every=%d) ==\n",
		statements, checkpointEvery)
	run, err := bench.RunWALBench(bench.WALBenchConfig{
		Statements: statements, CheckpointEvery: checkpointEvery,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %16s %14s %12s %12s %14s %12s %10s\n",
		"mode", "append(stmt/s)", "mean-ack(us)", "p50(us)", "p99(us)", "recovery(ms)", "recovered", "wal(KiB)")
	for _, m := range run.Modes {
		fmt.Printf("%-16s %16.0f %14.2f %12.2f %12.2f %14.2f %12d %10.1f\n",
			m.Mode, m.AppendThroughput, us(m.MeanAppend), us(m.P50Append), us(m.P99Append),
			float64(m.Recovery.Microseconds())/1e3,
			m.RecoveredStatements, float64(m.WALBytes)/1024)
	}
	fmt.Printf("-- fsync'd MACed append keeps %.1f%% of in-memory write throughput\n",
		run.DurabilityOverhead*100)
	fmt.Println("\n-- concurrent-writer sweep (shared durable DB, disjoint key ranges) --")
	fmt.Printf("%-8s %-13s %16s %12s %12s %12s\n",
		"clients", "group-commit", "append(stmt/s)", "mean(us)", "p50(us)", "p99(us)")
	for _, p := range run.ConcurrencySweep {
		fmt.Printf("%-8d %-13v %16.0f %12.2f %12.2f %12.2f\n",
			p.Clients, p.GroupCommit, p.Throughput, us(p.MeanAppend), us(p.P50Append), us(p.P99Append))
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(run, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("-- wrote %s\n", jsonPath)
	}
	fmt.Println()
	return nil
}
