// Command veridb-cli is an interactive SQL shell over a VeriDB instance
// with verification enabled. Meta-commands:
//
//	\verify          run a full verification pass
//	\explain <sql>   show the physical plan for a SELECT
//	\stats           print verification counters
//	\tamper <table>  simulate the adversary (flip bytes of one record)
//	\tables          list tables
//	\quit            exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"veridb"
)

func main() {
	verifyEvery := flag.Int("verify-every", 1000, "background verifier pacing (ops per page scan; 0 = manual)")
	partitions := flag.Int("rsws", 1, "number of RSWS partitions")
	tableShards := flag.Int("table-shards", 1, "hash shards per table (1 = unsharded)")
	flag.Parse()

	db, err := veridb.Open(veridb.Config{
		RSWSPartitions: *partitions,
		VerifyEveryOps: *verifyEvery,
		TableShards:    *tableShards,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "veridb-cli:", err)
		os.Exit(1)
	}
	defer db.Close()

	fmt.Println("VeriDB shell — SQL statements end with ';'. \\quit to exit.")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("veridb> ")
		} else {
			fmt.Print("   ...> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !meta(db, trimmed) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.HasSuffix(trimmed, ";") {
			runSQL(db, buf.String())
			buf.Reset()
		}
		prompt()
	}
}

// meta handles backslash commands; returns false to quit.
func meta(db *veridb.DB, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\quit", "\\q":
		return false
	case "\\verify":
		start := time.Now()
		if err := db.Verify(); err != nil {
			fmt.Println("VERIFICATION FAILED:", err)
		} else {
			fmt.Printf("verification passed (%v)\n", time.Since(start))
		}
	case "\\stats":
		s := db.Stats()
		fmt.Printf("ops=%d prf=%d pages=%d scans=%d fast=%d rotations=%d alarms=%d ecalls=%d epc=%dB\n",
			s.Ops, s.PRFEvals, s.PagesAlive, s.Scans, s.FastScans, s.Rotations, s.Alarms, s.ECalls, s.EPCUsed)
	case "\\tables":
		for _, n := range db.TableNames() {
			rows, _ := db.RowCount(n)
			fmt.Printf("%s (%d rows)\n", n, rows)
		}
	case "\\tamper":
		if len(fields) < 2 {
			fmt.Println("usage: \\tamper <table>")
			break
		}
		if err := db.InjectTamper(fields[1]); err != nil {
			fmt.Println("tamper:", err)
		} else {
			fmt.Println("record corrupted in untrusted memory; run \\verify to detect it")
		}
	case "\\explain":
		rest := strings.TrimSpace(strings.TrimPrefix(cmd, fields[0]))
		out, err := db.Explain(strings.TrimSuffix(rest, ";"))
		if err != nil {
			fmt.Println("explain:", err)
		} else {
			fmt.Println(out)
		}
	default:
		fmt.Println("unknown command", fields[0])
	}
	return true
}

func runSQL(db *veridb.DB, query string) {
	start := time.Now()
	res, err := db.Exec(strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(query), ";")))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if len(res.Columns) > 0 {
		fmt.Println(strings.Join(res.Columns, " | "))
		for _, row := range res.Rows {
			parts := make([]string, len(row))
			for i, v := range row {
				parts[i] = v.String()
			}
			fmt.Println(strings.Join(parts, " | "))
		}
		fmt.Printf("(%d rows, %v)\n", len(res.Rows), time.Since(start))
	} else {
		fmt.Printf("OK, %d rows affected (%v)\n", res.Affected, time.Since(start))
	}
}
