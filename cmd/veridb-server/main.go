// Command veridb-server exposes a VeriDB instance over TCP with the
// paper's client protocol (Fig. 2). Two wire encodings share the port,
// selected per connection by its first byte (see internal/server and
// DESIGN.md "Wire protocol"):
//
//   - newline-delimited JSON, one request at a time per connection
//     (legacy, bit-identical to earlier releases), and
//   - the length-prefixed binary protocol with per-connection pipelining:
//     many MAC-authenticated requests in flight per connection, responses
//     returned in completion order and matched by qid.
//
// Legacy message formats (one JSON object per line):
//
//	→ {"op":"attest","nonce":"<base64>"}
//	← {"measurement":"<base64>","publicKey":"<base64>","nonce":"<base64>","signature":"<base64>"}
//
//	→ {"op":"query","client":"alice","qid":1,"query":"SELECT ...","mac":"<base64>"}
//	← {"qid":1,"seq":5,"columns":[...],"rows":[[...]],"affected":0,"err":"","quarantined":false,"mac":"<base64>"}
//
//	→ {"op":"health"}
//	← {"quarantined":false,"alarm":"","verifierRunning":true,"epochs":[...]}
//
// Clients are provisioned with -client id:hexkey (repeatable).
//
// Hardening: per-connection read/write deadlines (-io-timeout), a maximum
// request size (-max-line, covering JSON lines and binary frame payloads
// alike) answered with a typed error instead of a silent drop, a
// connection cap (-max-conns) answered with a structured busy error, a
// per-connection pipelining bound (-max-inflight), and graceful drain on
// SIGINT/SIGTERM (stop accepting, wait for in-flight connections up to
// -drain-timeout).
package main

import (
	"encoding/hex"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"veridb"
	"veridb/internal/server"
)

type clientFlags []string

func (c *clientFlags) String() string { return strings.Join(*c, ",") }
func (c *clientFlags) Set(v string) error {
	*c = append(*c, v)
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7788", "listen address")
	verifyEvery := flag.Int("verify-every", 1000, "background verifier pacing")
	verifyWorkers := flag.Int("verify-workers", 0, "verification worker pool size (0 = GOMAXPROCS)")
	partitions := flag.Int("rsws", 16, "RSWS partitions")
	tableShards := flag.Int("table-shards", 1, "hash shards per table (1 = unsharded)")
	execBatch := flag.Int("exec-batch", 0, "query execution batch size (0 = default 256, 1 = tuple-at-a-time)")
	dataDir := flag.String("data-dir", "", "authenticated durable storage directory (empty = in-memory only)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "checkpoint after this many logged statements (0 = WAL-only; requires -data-dir)")
	groupCommit := flag.Duration("group-commit", 0, "group-commit window: batch concurrent WAL appends into one fsync (0 = one fsync per statement; requires -data-dir)")
	groupCommitBatch := flag.Int("group-commit-batch", 0, "close a commit group early at this many statements (0 = default 64; requires -group-commit)")
	planCache := flag.Int("plan-cache", 0, "prepared-plan LRU size (0 = default 128)")
	mvccGC := flag.Duration("mvcc-gc", 0, "background row-version GC period (0 = opportunistic pruning only)")
	maxVersions := flag.Int("max-versions", 0, "retained row versions per chain key (0 = GC-floor bounded)")
	stmtTimeout := flag.Duration("statement-timeout", 0, "per-statement execution deadline (0 = none)")
	memBudget := flag.Int64("mem-budget", 0, "process memory budget for query state, bytes (0 = track only)")
	maxConcurrent := flag.Int("max-concurrent", 0, "maximum statements executing at once (0 = no admission control)")
	admissionQueue := flag.Int("admission-queue", 0, "statements allowed to wait for an execution slot (requires -max-concurrent)")
	admissionWait := flag.Duration("admission-wait", 0, "longest a queued statement waits before being shed (0 = 50ms; requires -max-concurrent)")
	sessionMaxIdle := flag.Duration("session-max-idle", 0, "expire idle pinned snapshots after this inactivity (0 = never)")
	respCacheBytes := flag.Int64("response-cache-bytes", 0, "portal response cache byte bound (0 = default 16 MB)")
	initSQL := flag.String("init", "", "semicolon-separated SQL to run at startup")
	wireMode := flag.String("wire", server.WireAuto, "accepted wire protocol: auto (sniff per connection), json, or binary")
	maxLine := flag.Int("max-line", 1<<20, "maximum request size, bytes (JSON line or binary frame payload)")
	maxInflight := flag.Int("max-inflight", server.DefaultMaxInflight, "pipelined requests executing per connection (binary protocol)")
	maxConns := flag.Int("max-conns", 256, "maximum concurrent connections (0 = unlimited)")
	ioTimeout := flag.Duration("io-timeout", 5*time.Minute, "per-connection read/write deadline (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown wait for in-flight connections")
	var clients clientFlags
	flag.Var(&clients, "client", "client credential id:hexkey (repeatable)")
	flag.Parse()

	db, err := veridb.Open(veridb.Config{
		RSWSPartitions:  *partitions,
		VerifyEveryOps:  *verifyEvery,
		VerifyWorkers:   *verifyWorkers,
		TableShards:     *tableShards,
		ExecBatchSize:   *execBatch,
		DataDir:         *dataDir,
		CheckpointEvery: *checkpointEvery,

		GroupCommitMaxDelay: *groupCommit,
		GroupCommitMaxBatch: *groupCommitBatch,
		PlanCacheSize:       *planCache,
		MVCCGCInterval:      *mvccGC,
		MaxVersionsPerRow:   *maxVersions,

		StatementTimeout:        *stmtTimeout,
		MemBudget:               *memBudget,
		MaxConcurrentStatements: *maxConcurrent,
		AdmissionQueueDepth:     *admissionQueue,
		AdmissionMaxWait:        *admissionWait,
		SessionMaxIdle:          *sessionMaxIdle,
		ResponseCacheBytes:      *respCacheBytes,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if *dataDir != "" {
		if qerr := db.QuarantineError(); qerr != nil {
			// Recovery found tamper: stay up to serve authenticated
			// quarantine responses (the §5.1 containment posture), but make
			// the operator-visible state unmissable.
			log.Printf("WARNING: recovery quarantined the instance: %v", qerr)
		} else {
			log.Printf("recovered durable state from %s (wal seq %d)", *dataDir, db.WALNextSeq())
		}
	}
	for _, c := range clients {
		id, keyHex, ok := strings.Cut(c, ":")
		if !ok {
			log.Fatalf("bad -client %q (want id:hexkey)", c)
		}
		key, err := hex.DecodeString(keyHex)
		if err != nil {
			log.Fatalf("bad key for client %q: %v", id, err)
		}
		db.ProvisionClient(id, key)
	}
	if *initSQL != "" {
		for _, stmt := range strings.Split(*initSQL, ";") {
			if strings.TrimSpace(stmt) == "" {
				continue
			}
			if _, err := db.Exec(stmt); err != nil {
				log.Fatalf("init statement %q: %v", stmt, err)
			}
		}
	}

	srv, err := server.New(server.Config{
		DB:          db,
		Wire:        *wireMode,
		MaxMessage:  *maxLine,
		MaxInflight: *maxInflight,
		IOTimeout:   *ioTimeout,
		MaxConns:    *maxConns,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("veridb-server listening on %s (wire=%s, %d clients provisioned)", ln.Addr(), *wireMode, len(clients))

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-stop
		log.Printf("received %v: draining connections", sig)
		ln.Close() // unblocks Accept; in-flight sessions finish
	}()

	if err := srv.Serve(ln); err != nil {
		log.Print(err)
	}
	if srv.Drain(*drainTimeout) {
		log.Print("drained; shutting down")
	} else {
		log.Printf("drain timeout (%v) elapsed with connections still open", *drainTimeout)
	}
}
