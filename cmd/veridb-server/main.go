// Command veridb-server exposes a VeriDB instance over TCP with the
// paper's client protocol (Fig. 2): newline-delimited JSON messages
// carrying MAC-authenticated queries in and sequenced, MAC-endorsed
// responses out, plus an attestation operation for session setup and a
// health operation for supervisors.
//
// Message formats (one JSON object per line):
//
//	→ {"op":"attest","nonce":"<base64>"}
//	← {"measurement":"<base64>","publicKey":"<base64>","nonce":"<base64>","signature":"<base64>"}
//
//	→ {"op":"query","client":"alice","qid":1,"query":"SELECT ...","mac":"<base64>"}
//	← {"qid":1,"seq":5,"columns":[...],"rows":[[...]],"affected":0,"err":"","quarantined":false,"mac":"<base64>"}
//
//	→ {"op":"health"}
//	← {"quarantined":false,"alarm":"","verifierRunning":true,"epochs":[...]}
//
// Clients are provisioned with -client id:hexkey (repeatable).
//
// Hardening: per-connection read/write deadlines (-io-timeout), a maximum
// request line size (-max-line) answered with a structured error instead
// of a silent drop, a connection cap (-max-conns) answered with a
// structured busy error, and graceful drain on SIGINT/SIGTERM (stop
// accepting, wait for in-flight connections up to -drain-timeout).
package main

import (
	"bufio"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"veridb"
	"veridb/internal/record"
)

type clientFlags []string

func (c *clientFlags) String() string { return strings.Join(*c, ",") }
func (c *clientFlags) Set(v string) error {
	*c = append(*c, v)
	return nil
}

type wireRequest struct {
	Op     string `json:"op"`
	Nonce  string `json:"nonce,omitempty"`
	Client string `json:"client,omitempty"`
	QID    uint64 `json:"qid,omitempty"`
	Query  string `json:"query,omitempty"`
	// TimeoutMS is an optional per-request deadline in milliseconds,
	// folded into the MAC when nonzero (see portal.SignRequestTimeout).
	TimeoutMS uint64 `json:"timeout_ms,omitempty"`
	MAC       string `json:"mac,omitempty"`
}

type wireResponse struct {
	QID         uint64     `json:"qid"`
	Seq         uint64     `json:"seq"`
	Columns     []string   `json:"columns,omitempty"`
	Rows        [][]string `json:"rows,omitempty"`
	Affected    int        `json:"affected"`
	Err         string     `json:"err,omitempty"`
	Quarantined bool       `json:"quarantined,omitempty"`
	MAC         string     `json:"mac"`
}

type wireQuote struct {
	Measurement string `json:"measurement"`
	PublicKey   string `json:"publicKey"`
	Nonce       string `json:"nonce"`
	Signature   string `json:"signature"`
}

type wireHealth struct {
	Quarantined     bool       `json:"quarantined"`
	Alarm           string     `json:"alarm,omitempty"`
	VerifierRunning bool       `json:"verifierRunning"`
	Epochs          []uint64   `json:"epochs"`
	Govern          wireGovern `json:"govern"`
}

// wireGovern is the overload-protection slice of the health response:
// what a capacity planner watches (high-water memory, shed counts) and
// what a load balancer keys on (in-flight and waiting depths).
type wireGovern struct {
	MemUsed            int64 `json:"memUsed"`
	MemLimit           int64 `json:"memLimit"`
	MemHighWater       int64 `json:"memHighWater"`
	MemDenied          int64 `json:"memDenied"`
	InFlight           int64 `json:"inFlight"`
	Waiting            int64 `json:"waiting"`
	Shed               int64 `json:"shed"`
	SessionsExpired    int64 `json:"sessionsExpired"`
	SnapshotPins       int   `json:"snapshotPins"`
	ResponseCacheBytes int64 `json:"responseCacheBytes"`
}

// server is the connection-handling state shared by every session.
type server struct {
	db        *veridb.DB
	maxLine   int           // largest accepted request line, bytes
	ioTimeout time.Duration // per-read and per-write deadline (0 = none)
	sem       chan struct{} // connection-cap semaphore (nil = uncapped)
	wg        sync.WaitGroup
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7788", "listen address")
	verifyEvery := flag.Int("verify-every", 1000, "background verifier pacing")
	verifyWorkers := flag.Int("verify-workers", 0, "verification worker pool size (0 = GOMAXPROCS)")
	partitions := flag.Int("rsws", 16, "RSWS partitions")
	tableShards := flag.Int("table-shards", 1, "hash shards per table (1 = unsharded)")
	execBatch := flag.Int("exec-batch", 0, "query execution batch size (0 = default 256, 1 = tuple-at-a-time)")
	dataDir := flag.String("data-dir", "", "authenticated durable storage directory (empty = in-memory only)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "checkpoint after this many logged statements (0 = WAL-only; requires -data-dir)")
	groupCommit := flag.Duration("group-commit", 0, "group-commit window: batch concurrent WAL appends into one fsync (0 = one fsync per statement; requires -data-dir)")
	groupCommitBatch := flag.Int("group-commit-batch", 0, "close a commit group early at this many statements (0 = default 64; requires -group-commit)")
	planCache := flag.Int("plan-cache", 0, "prepared-plan LRU size (0 = default 128)")
	mvccGC := flag.Duration("mvcc-gc", 0, "background row-version GC period (0 = opportunistic pruning only)")
	maxVersions := flag.Int("max-versions", 0, "retained row versions per chain key (0 = GC-floor bounded)")
	stmtTimeout := flag.Duration("statement-timeout", 0, "per-statement execution deadline (0 = none)")
	memBudget := flag.Int64("mem-budget", 0, "process memory budget for query state, bytes (0 = track only)")
	maxConcurrent := flag.Int("max-concurrent", 0, "maximum statements executing at once (0 = no admission control)")
	admissionQueue := flag.Int("admission-queue", 0, "statements allowed to wait for an execution slot (requires -max-concurrent)")
	admissionWait := flag.Duration("admission-wait", 0, "longest a queued statement waits before being shed (0 = 50ms; requires -max-concurrent)")
	sessionMaxIdle := flag.Duration("session-max-idle", 0, "expire idle pinned snapshots after this inactivity (0 = never)")
	respCacheBytes := flag.Int64("response-cache-bytes", 0, "portal response cache byte bound (0 = default 16 MB)")
	initSQL := flag.String("init", "", "semicolon-separated SQL to run at startup")
	maxLine := flag.Int("max-line", 1<<20, "maximum request line size, bytes")
	maxConns := flag.Int("max-conns", 256, "maximum concurrent connections (0 = unlimited)")
	ioTimeout := flag.Duration("io-timeout", 5*time.Minute, "per-connection read/write deadline (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown wait for in-flight connections")
	var clients clientFlags
	flag.Var(&clients, "client", "client credential id:hexkey (repeatable)")
	flag.Parse()

	db, err := veridb.Open(veridb.Config{
		RSWSPartitions:  *partitions,
		VerifyEveryOps:  *verifyEvery,
		VerifyWorkers:   *verifyWorkers,
		TableShards:     *tableShards,
		ExecBatchSize:   *execBatch,
		DataDir:         *dataDir,
		CheckpointEvery: *checkpointEvery,

		GroupCommitMaxDelay: *groupCommit,
		GroupCommitMaxBatch: *groupCommitBatch,
		PlanCacheSize:       *planCache,
		MVCCGCInterval:      *mvccGC,
		MaxVersionsPerRow:   *maxVersions,

		StatementTimeout:        *stmtTimeout,
		MemBudget:               *memBudget,
		MaxConcurrentStatements: *maxConcurrent,
		AdmissionQueueDepth:     *admissionQueue,
		AdmissionMaxWait:        *admissionWait,
		SessionMaxIdle:          *sessionMaxIdle,
		ResponseCacheBytes:      *respCacheBytes,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if *dataDir != "" {
		if qerr := db.QuarantineError(); qerr != nil {
			// Recovery found tamper: stay up to serve authenticated
			// quarantine responses (the §5.1 containment posture), but make
			// the operator-visible state unmissable.
			log.Printf("WARNING: recovery quarantined the instance: %v", qerr)
		} else {
			log.Printf("recovered durable state from %s (wal seq %d)", *dataDir, db.WALNextSeq())
		}
	}
	for _, c := range clients {
		id, keyHex, ok := strings.Cut(c, ":")
		if !ok {
			log.Fatalf("bad -client %q (want id:hexkey)", c)
		}
		key, err := hex.DecodeString(keyHex)
		if err != nil {
			log.Fatalf("bad key for client %q: %v", id, err)
		}
		db.ProvisionClient(id, key)
	}
	if *initSQL != "" {
		for _, stmt := range strings.Split(*initSQL, ";") {
			if strings.TrimSpace(stmt) == "" {
				continue
			}
			if _, err := db.Exec(stmt); err != nil {
				log.Fatalf("init statement %q: %v", stmt, err)
			}
		}
	}

	srv := &server{db: db, maxLine: *maxLine, ioTimeout: *ioTimeout}
	if *maxConns > 0 {
		srv.sem = make(chan struct{}, *maxConns)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("veridb-server listening on %s (%d clients provisioned)", ln.Addr(), len(clients))

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-stop
		log.Printf("received %v: draining connections", sig)
		ln.Close() // unblocks Accept; in-flight sessions finish
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				break
			}
			log.Print(err)
			continue
		}
		if srv.sem != nil {
			select {
			case srv.sem <- struct{}{}:
			default:
				// Over capacity: a structured refusal beats a silent RST.
				srv.writeLine(conn, map[string]string{"err": "server at connection capacity"})
				conn.Close()
				continue
			}
		}
		srv.wg.Add(1)
		go func() {
			defer srv.wg.Done()
			if srv.sem != nil {
				defer func() { <-srv.sem }()
			}
			srv.handle(conn)
		}()
	}

	drained := make(chan struct{})
	go func() {
		srv.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		log.Print("drained; shutting down")
	case <-time.After(*drainTimeout):
		log.Printf("drain timeout (%v) elapsed with connections still open", *drainTimeout)
	}
}

// writeLine encodes one JSON line under the write deadline.
func (s *server) writeLine(conn net.Conn, v any) error {
	if s.ioTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.ioTimeout))
	}
	return json.NewEncoder(conn).Encode(v)
}

// handle runs one session: read a line under the deadline, dispatch,
// answer. Oversized requests get a structured error before the connection
// closes — a silently dropped session is indistinguishable from an
// adversarial one, so the server never drops silently.
func (s *server) handle(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	// Scanner's limit is max(cap(buf), maxLine): keep the initial buffer
	// at or below the line limit so the limit actually binds.
	initial := 64 * 1024
	if initial > s.maxLine {
		initial = s.maxLine
	}
	sc.Buffer(make([]byte, initial), s.maxLine)
	for {
		if s.ioTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.ioTimeout))
		}
		if !sc.Scan() {
			if errors.Is(sc.Err(), bufio.ErrTooLong) {
				s.writeLine(conn, map[string]string{
					"err": fmt.Sprintf("request exceeds %d-byte line limit", s.maxLine),
				})
			}
			return
		}
		var req wireRequest
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			s.writeLine(conn, map[string]string{"err": "bad request: " + err.Error()})
			continue
		}
		if err := s.dispatch(conn, req); err != nil {
			return // write failed: the peer is gone
		}
	}
}

func (s *server) dispatch(conn net.Conn, req wireRequest) error {
	switch req.Op {
	case "attest":
		nonce, err := base64.StdEncoding.DecodeString(req.Nonce)
		if err != nil {
			return s.writeLine(conn, map[string]string{"err": "bad nonce"})
		}
		q := s.db.Attest(nonce)
		m := s.db.Measurement()
		return s.writeLine(conn, wireQuote{
			Measurement: base64.StdEncoding.EncodeToString(m[:]),
			PublicKey:   base64.StdEncoding.EncodeToString(q.PublicKey),
			Nonce:       base64.StdEncoding.EncodeToString(q.Nonce),
			Signature:   base64.StdEncoding.EncodeToString(q.Signature),
		})
	case "query":
		mac, err := base64.StdEncoding.DecodeString(req.MAC)
		if err != nil {
			return s.writeLine(conn, map[string]string{"err": "bad mac encoding"})
		}
		resp, err := s.db.Serve(veridb.Request{
			ClientID: req.Client, QID: req.QID, Query: req.Query,
			TimeoutMS: req.TimeoutMS, MAC: mac,
		})
		if err != nil {
			// Authorisation failures have no authenticated response.
			return s.writeLine(conn, map[string]string{"err": err.Error()})
		}
		out := wireResponse{
			QID: resp.QID, Seq: resp.Seq, Columns: resp.Columns,
			Affected: resp.Affected, Err: resp.ErrMsg,
			Quarantined: resp.Quarantined,
			MAC:         base64.StdEncoding.EncodeToString(resp.MAC),
		}
		for _, row := range resp.Rows {
			out.Rows = append(out.Rows, renderRow(row))
		}
		return s.writeLine(conn, out)
	case "health":
		h := s.db.Health()
		g := s.db.Govern()
		return s.writeLine(conn, wireHealth{
			Quarantined:     h.Quarantined,
			Alarm:           h.Alarm,
			VerifierRunning: h.VerifierRunning,
			Epochs:          h.Epochs,
			Govern: wireGovern{
				MemUsed:            g.MemUsed,
				MemLimit:           g.MemLimit,
				MemHighWater:       g.MemHighWater,
				MemDenied:          g.MemDenied,
				InFlight:           g.Admission.InFlight,
				Waiting:            g.Admission.Waiting,
				Shed:               g.Admission.Shed,
				SessionsExpired:    g.SessionsExpired,
				SnapshotPins:       g.SnapshotPins,
				ResponseCacheBytes: g.ResponseCache.Bytes,
			},
		})
	default:
		return s.writeLine(conn, map[string]string{"err": fmt.Sprintf("unknown op %q", req.Op)})
	}
}

func renderRow(row record.Tuple) []string {
	out := make([]string, len(row))
	for i, v := range row {
		out[i] = v.String()
	}
	return out
}
