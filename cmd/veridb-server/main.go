// Command veridb-server exposes a VeriDB instance over TCP with the
// paper's client protocol (Fig. 2): newline-delimited JSON messages
// carrying MAC-authenticated queries in and sequenced, MAC-endorsed
// responses out, plus an attestation operation for session setup.
//
// Message formats (one JSON object per line):
//
//	→ {"op":"attest","nonce":"<base64>"}
//	← {"measurement":"<base64>","publicKey":"<base64>","nonce":"<base64>","signature":"<base64>"}
//
//	→ {"op":"query","client":"alice","qid":1,"query":"SELECT ...","mac":"<base64>"}
//	← {"qid":1,"seq":5,"columns":[...],"rows":[[...]],"affected":0,"err":"","mac":"<base64>"}
//
// Clients are provisioned with -client id:hexkey (repeatable).
package main

import (
	"bufio"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"strings"

	"veridb"
	"veridb/internal/record"
)

type clientFlags []string

func (c *clientFlags) String() string { return strings.Join(*c, ",") }
func (c *clientFlags) Set(v string) error {
	*c = append(*c, v)
	return nil
}

type wireRequest struct {
	Op     string `json:"op"`
	Nonce  string `json:"nonce,omitempty"`
	Client string `json:"client,omitempty"`
	QID    uint64 `json:"qid,omitempty"`
	Query  string `json:"query,omitempty"`
	MAC    string `json:"mac,omitempty"`
}

type wireResponse struct {
	QID      uint64     `json:"qid"`
	Seq      uint64     `json:"seq"`
	Columns  []string   `json:"columns,omitempty"`
	Rows     [][]string `json:"rows,omitempty"`
	Affected int        `json:"affected"`
	Err      string     `json:"err,omitempty"`
	MAC      string     `json:"mac"`
}

type wireQuote struct {
	Measurement string `json:"measurement"`
	PublicKey   string `json:"publicKey"`
	Nonce       string `json:"nonce"`
	Signature   string `json:"signature"`
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7788", "listen address")
	verifyEvery := flag.Int("verify-every", 1000, "background verifier pacing")
	verifyWorkers := flag.Int("verify-workers", 0, "verification worker pool size (0 = GOMAXPROCS)")
	partitions := flag.Int("rsws", 16, "RSWS partitions")
	tableShards := flag.Int("table-shards", 1, "hash shards per table (1 = unsharded)")
	init := flag.String("init", "", "semicolon-separated SQL to run at startup")
	var clients clientFlags
	flag.Var(&clients, "client", "client credential id:hexkey (repeatable)")
	flag.Parse()

	db, err := veridb.Open(veridb.Config{
		RSWSPartitions: *partitions,
		VerifyEveryOps: *verifyEvery,
		VerifyWorkers:  *verifyWorkers,
		TableShards:    *tableShards,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	for _, c := range clients {
		id, keyHex, ok := strings.Cut(c, ":")
		if !ok {
			log.Fatalf("bad -client %q (want id:hexkey)", c)
		}
		key, err := hex.DecodeString(keyHex)
		if err != nil {
			log.Fatalf("bad key for client %q: %v", id, err)
		}
		db.ProvisionClient(id, key)
	}
	if *init != "" {
		for _, stmt := range strings.Split(*init, ";") {
			if strings.TrimSpace(stmt) == "" {
				continue
			}
			if _, err := db.Exec(stmt); err != nil {
				log.Fatalf("init statement %q: %v", stmt, err)
			}
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("veridb-server listening on %s (%d clients provisioned)", ln.Addr(), len(clients))
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Print(err)
			continue
		}
		go serve(db, conn)
	}
}

func serve(db *veridb.DB, conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		var req wireRequest
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			enc.Encode(map[string]string{"err": "bad request: " + err.Error()})
			continue
		}
		switch req.Op {
		case "attest":
			nonce, err := base64.StdEncoding.DecodeString(req.Nonce)
			if err != nil {
				enc.Encode(map[string]string{"err": "bad nonce"})
				continue
			}
			q := db.Attest(nonce)
			m := db.Measurement()
			enc.Encode(wireQuote{
				Measurement: base64.StdEncoding.EncodeToString(m[:]),
				PublicKey:   base64.StdEncoding.EncodeToString(q.PublicKey),
				Nonce:       base64.StdEncoding.EncodeToString(q.Nonce),
				Signature:   base64.StdEncoding.EncodeToString(q.Signature),
			})
		case "query":
			mac, err := base64.StdEncoding.DecodeString(req.MAC)
			if err != nil {
				enc.Encode(map[string]string{"err": "bad mac encoding"})
				continue
			}
			resp, err := db.Serve(veridb.Request{
				ClientID: req.Client, QID: req.QID, Query: req.Query, MAC: mac,
			})
			if err != nil {
				// Authorisation failures have no authenticated response.
				enc.Encode(map[string]string{"err": err.Error()})
				continue
			}
			out := wireResponse{
				QID: resp.QID, Seq: resp.Seq, Columns: resp.Columns,
				Affected: resp.Affected, Err: resp.ErrMsg,
				MAC: base64.StdEncoding.EncodeToString(resp.MAC),
			}
			for _, row := range resp.Rows {
				out.Rows = append(out.Rows, renderRow(row))
			}
			enc.Encode(out)
		default:
			enc.Encode(map[string]string{"err": fmt.Sprintf("unknown op %q", req.Op)})
		}
	}
}

func renderRow(row record.Tuple) []string {
	out := make([]string, len(row))
	for i, v := range row {
		out[i] = v.String()
	}
	return out
}
