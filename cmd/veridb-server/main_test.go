package main

import (
	"bufio"
	"crypto/ed25519"
	"encoding/base64"
	"encoding/json"
	"net"
	"strings"
	"testing"

	"veridb"
	"veridb/internal/enclave"
	"veridb/internal/portal"
)

// TestServerProtocolRoundTrip spins the TCP server on an ephemeral port
// and drives the full client protocol over the wire: attestation, an
// authenticated query, and rejection of a forged request.
func TestServerProtocolRoundTrip(t *testing.T) {
	db, err := veridb.Open(veridb.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE t (a INT PRIMARY KEY, b TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (1, 'hello'), (2, 'world')`); err != nil {
		t.Fatal(err)
	}
	key := []byte("wire-secret")
	db.ProvisionClient("alice", key)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go serve(db, conn)
		}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	sc := bufio.NewScanner(conn)

	// Attestation.
	nonce := []byte("fresh-nonce")
	if err := enc.Encode(wireRequest{Op: "attest", Nonce: base64.StdEncoding.EncodeToString(nonce)}); err != nil {
		t.Fatal(err)
	}
	if !sc.Scan() {
		t.Fatal("no attestation response")
	}
	var q wireQuote
	if err := json.Unmarshal(sc.Bytes(), &q); err != nil {
		t.Fatal(err)
	}
	mBytes, _ := base64.StdEncoding.DecodeString(q.Measurement)
	pub, _ := base64.StdEncoding.DecodeString(q.PublicKey)
	sig, _ := base64.StdEncoding.DecodeString(q.Signature)
	var m [32]byte
	copy(m[:], mBytes)
	if m != db.Measurement() {
		t.Fatal("measurement mismatch over the wire")
	}
	if _, err := enclave.VerifyQuote(enclave.Quote{
		Measurement: m, PublicKey: ed25519.PublicKey(pub), Nonce: nonce, Signature: sig,
	}, db.Measurement(), nonce); err != nil {
		t.Fatalf("wire quote rejected: %v", err)
	}

	// Authenticated query.
	query := `SELECT b FROM t WHERE a = 2`
	mac := portal.SignRequest(key, "alice", 1, query)
	if err := enc.Encode(wireRequest{
		Op: "query", Client: "alice", QID: 1, Query: query,
		MAC: base64.StdEncoding.EncodeToString(mac),
	}); err != nil {
		t.Fatal(err)
	}
	if !sc.Scan() {
		t.Fatal("no query response")
	}
	var resp wireResponse
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err != "" || len(resp.Rows) != 1 || resp.Rows[0][0] != "world" {
		t.Fatalf("response %+v", resp)
	}
	if resp.Seq == 0 || resp.MAC == "" {
		t.Fatalf("response missing sequencing/MAC: %+v", resp)
	}

	// Forged MAC is rejected without an authenticated response.
	if err := enc.Encode(wireRequest{
		Op: "query", Client: "alice", QID: 2, Query: query,
		MAC: base64.StdEncoding.EncodeToString([]byte("forged")),
	}); err != nil {
		t.Fatal(err)
	}
	if !sc.Scan() {
		t.Fatal("no rejection response")
	}
	if !strings.Contains(sc.Text(), "authorization failed") {
		t.Fatalf("forged request not rejected: %s", sc.Text())
	}

	// Unknown op.
	enc.Encode(wireRequest{Op: "shutdown"})
	if !sc.Scan() || !strings.Contains(sc.Text(), "unknown op") {
		t.Fatalf("unknown op not rejected: %s", sc.Text())
	}
}
