package main

import (
	"bufio"
	"crypto/ed25519"
	"encoding/base64"
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"

	"veridb"
	"veridb/internal/client"
	"veridb/internal/enclave"
	"veridb/internal/portal"
)

// serveTCP runs srv on an ephemeral port and returns the listener.
func serveTCP(t *testing.T, srv *server) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.handle(conn)
		}
	}()
	return ln
}

// TestServerProtocolRoundTrip spins the TCP server on an ephemeral port
// and drives the full client protocol over the wire: attestation, an
// authenticated query, and rejection of a forged request.
func TestServerProtocolRoundTrip(t *testing.T) {
	db, err := veridb.Open(veridb.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE t (a INT PRIMARY KEY, b TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (1, 'hello'), (2, 'world')`); err != nil {
		t.Fatal(err)
	}
	key := []byte("wire-secret")
	db.ProvisionClient("alice", key)

	ln := serveTCP(t, &server{db: db, maxLine: 1 << 20})

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	sc := bufio.NewScanner(conn)

	// Attestation.
	nonce := []byte("fresh-nonce")
	if err := enc.Encode(wireRequest{Op: "attest", Nonce: base64.StdEncoding.EncodeToString(nonce)}); err != nil {
		t.Fatal(err)
	}
	if !sc.Scan() {
		t.Fatal("no attestation response")
	}
	var q wireQuote
	if err := json.Unmarshal(sc.Bytes(), &q); err != nil {
		t.Fatal(err)
	}
	mBytes, _ := base64.StdEncoding.DecodeString(q.Measurement)
	pub, _ := base64.StdEncoding.DecodeString(q.PublicKey)
	sig, _ := base64.StdEncoding.DecodeString(q.Signature)
	var m [32]byte
	copy(m[:], mBytes)
	if m != db.Measurement() {
		t.Fatal("measurement mismatch over the wire")
	}
	if _, err := enclave.VerifyQuote(enclave.Quote{
		Measurement: m, PublicKey: ed25519.PublicKey(pub), Nonce: nonce, Signature: sig,
	}, db.Measurement(), nonce); err != nil {
		t.Fatalf("wire quote rejected: %v", err)
	}

	// Authenticated query.
	query := `SELECT b FROM t WHERE a = 2`
	mac := portal.SignRequest(key, "alice", 1, query)
	if err := enc.Encode(wireRequest{
		Op: "query", Client: "alice", QID: 1, Query: query,
		MAC: base64.StdEncoding.EncodeToString(mac),
	}); err != nil {
		t.Fatal(err)
	}
	if !sc.Scan() {
		t.Fatal("no query response")
	}
	var resp wireResponse
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err != "" || len(resp.Rows) != 1 || resp.Rows[0][0] != "world" {
		t.Fatalf("response %+v", resp)
	}
	if resp.Seq == 0 || resp.MAC == "" {
		t.Fatalf("response missing sequencing/MAC: %+v", resp)
	}

	// Forged MAC is rejected without an authenticated response.
	if err := enc.Encode(wireRequest{
		Op: "query", Client: "alice", QID: 2, Query: query,
		MAC: base64.StdEncoding.EncodeToString([]byte("forged")),
	}); err != nil {
		t.Fatal(err)
	}
	if !sc.Scan() {
		t.Fatal("no rejection response")
	}
	if !strings.Contains(sc.Text(), "authorization failed") {
		t.Fatalf("forged request not rejected: %s", sc.Text())
	}

	// Unknown op.
	enc.Encode(wireRequest{Op: "shutdown"})
	if !sc.Scan() || !strings.Contains(sc.Text(), "unknown op") {
		t.Fatalf("unknown op not rejected: %s", sc.Text())
	}
}

// TestServerRejectsOversizedLineWithStructuredError: a request beyond the
// line limit gets a JSON error before the connection closes — never a
// silent drop.
func TestServerRejectsOversizedLineWithStructuredError(t *testing.T) {
	db, err := veridb.Open(veridb.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ln := serveTCP(t, &server{db: db, maxLine: 256})

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	big := strings.Repeat("x", 1024)
	if _, err := conn.Write([]byte(`{"op":"query","query":"` + big + "\"}\n")); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		t.Fatal("oversized request dropped silently")
	}
	var resp map[string]string
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		t.Fatalf("unparseable error response %q: %v", sc.Text(), err)
	}
	if !strings.Contains(resp["err"], "line limit") {
		t.Fatalf("error response %v", resp)
	}
	// The connection is closed after the refusal.
	if sc.Scan() {
		t.Fatalf("connection still open after oversized request: %q", sc.Text())
	}
}

// TestServerConnectionDeadline: an idle session is reaped once the
// per-connection read deadline elapses.
func TestServerConnectionDeadline(t *testing.T) {
	db, err := veridb.Open(veridb.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ln := serveTCP(t, &server{db: db, maxLine: 1 << 20, ioTimeout: 50 * time.Millisecond})

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	// Send nothing; the server should hang up on its own.
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("idle connection not closed by deadline")
	}
}

// TestServerHealthOp: the health operation reports the verifier state and
// flips to quarantined after injected tampering is detected.
func TestServerHealthOp(t *testing.T) {
	db, err := veridb.Open(veridb.Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE t (a INT PRIMARY KEY, b TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (1, 'hello')`); err != nil {
		t.Fatal(err)
	}
	ln := serveTCP(t, &server{db: db, maxLine: 1 << 20})

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	sc := bufio.NewScanner(conn)

	health := func() wireHealth {
		t.Helper()
		if err := enc.Encode(wireRequest{Op: "health"}); err != nil {
			t.Fatal(err)
		}
		if !sc.Scan() {
			t.Fatal("no health response")
		}
		var h wireHealth
		if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
			t.Fatal(err)
		}
		return h
	}

	if h := health(); h.Quarantined || h.Alarm != "" {
		t.Fatalf("clean instance reports %+v", h)
	}
	if err := db.InjectTamper("t"); err != nil {
		t.Fatal(err)
	}
	if err := db.Verify(); err == nil {
		t.Fatal("tamper not detected")
	}
	if h := health(); !h.Quarantined || h.Alarm == "" {
		t.Fatalf("tampered instance reports %+v", h)
	}

	// Queries are now fenced with an authenticated quarantine response.
	key := []byte("k")
	db.ProvisionClient("alice", key)
	query := `SELECT b FROM t WHERE a = 1`
	mac := portal.SignRequest(key, "alice", 1, query)
	if err := enc.Encode(wireRequest{
		Op: "query", Client: "alice", QID: 1, Query: query,
		MAC: base64.StdEncoding.EncodeToString(mac),
	}); err != nil {
		t.Fatal(err)
	}
	if !sc.Scan() {
		t.Fatal("no query response")
	}
	var resp wireResponse
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Quarantined || resp.MAC == "" || len(resp.Rows) != 0 {
		t.Fatalf("quarantined query answered %+v", resp)
	}
}

// TestServerSnapshotSessionOverWire drives BEGIN SNAPSHOT / COMMIT over
// TCP with the client package's request helpers: the pinned client's
// reads stay frozen while another wire client writes, the pinned session
// is read-only, and COMMIT releases the pin.
func TestServerSnapshotSessionOverWire(t *testing.T) {
	db, err := veridb.Open(veridb.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE t (a INT PRIMARY KEY, b INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (1, 10), (2, 20)`); err != nil {
		t.Fatal(err)
	}
	db.ProvisionClient("alice", []byte("ka"))
	db.ProvisionClient("bob", []byte("kb"))
	alice := client.New("alice", []byte("ka"))
	bob := client.New("bob", []byte("kb"))

	ln := serveTCP(t, &server{db: db, maxLine: 1 << 20})
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	sc := bufio.NewScanner(conn)

	send := func(req portal.Request) wireResponse {
		t.Helper()
		if err := enc.Encode(wireRequest{
			Op: "query", Client: req.ClientID, QID: req.QID, Query: req.Query,
			MAC: base64.StdEncoding.EncodeToString(req.MAC),
		}); err != nil {
			t.Fatal(err)
		}
		if !sc.Scan() {
			t.Fatal("no response")
		}
		var resp wireResponse
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	begin := send(alice.NewBeginSnapshotRequest())
	if begin.Err != "" || len(begin.Rows) != 1 || begin.Columns[0] != "snapshot_seq" {
		t.Fatalf("BEGIN SNAPSHOT over wire: %+v", begin)
	}
	if r := send(bob.NewRequest(`INSERT INTO t VALUES (3, 30)`)); r.Err != "" {
		t.Fatalf("bob insert: %+v", r)
	}
	if r := send(alice.NewRequest(`SELECT a FROM t ORDER BY a`)); r.Err != "" || len(r.Rows) != 2 {
		t.Fatalf("alice pinned read saw bob's write: %+v", r)
	}
	if r := send(bob.NewRequest(`SELECT a FROM t ORDER BY a`)); r.Err != "" || len(r.Rows) != 3 {
		t.Fatalf("bob read: %+v", r)
	}
	if r := send(alice.NewRequest(`DELETE FROM t WHERE a = 1`)); !strings.Contains(r.Err, "read-only") {
		t.Fatalf("alice write under pin: %+v", r)
	}
	if r := send(alice.NewCommitSnapshotRequest()); r.Err != "" {
		t.Fatalf("alice COMMIT: %+v", r)
	}
	if r := send(alice.NewRequest(`SELECT a FROM t ORDER BY a`)); r.Err != "" || len(r.Rows) != 3 {
		t.Fatalf("alice post-COMMIT read: %+v", r)
	}
}
