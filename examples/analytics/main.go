// Analytics: verified analytical queries over a sales-fact table, in the
// style of the paper's TPC-H macro-benchmark (§6.3). The example measures
// the same decomposition Fig. 12 plots — how much of a query's time the
// verified scans account for — by running each query against both a
// verifying and a baseline instance.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"veridb"
)

const rows = 20_000

func load(cfg veridb.Config) *veridb.DB {
	cfg.Seed = 7
	db, err := veridb.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE sales (
		id INT PRIMARY KEY,
		region TEXT,
		day INT,
		quantity INT,
		price FLOAT,
		discount FLOAT,
		INDEX(day)
	)`); err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	regions := []string{"north", "south", "east", "west"}
	var batch []string
	flush := func() {
		if len(batch) == 0 {
			return
		}
		q := "INSERT INTO sales VALUES " + strings.Join(batch, ",")
		if _, err := db.Exec(q); err != nil {
			log.Fatal(err)
		}
		batch = batch[:0]
	}
	for i := 1; i <= rows; i++ {
		batch = append(batch, fmt.Sprintf("(%d,'%s',%d,%d,%.2f,%.2f)",
			i, regions[rng.Intn(4)], rng.Intn(365), 1+rng.Intn(50),
			1+rng.Float64()*999, float64(rng.Intn(11))/100))
		if len(batch) == 500 {
			flush()
		}
	}
	flush()
	return db
}

func main() {
	queries := map[string]string{
		"pricing summary (Q1-style)": `
			SELECT region, COUNT(*) AS orders,
				SUM(price * quantity) AS gross,
				SUM(price * quantity * (1 - discount)) AS net,
				AVG(discount) AS avg_disc
			FROM sales
			WHERE day <= 300
			GROUP BY region
			ORDER BY region`,
		"revenue slice (Q6-style)": `
			SELECT SUM(price * quantity * discount) AS recovered
			FROM sales
			WHERE day >= 60 AND day < 120
				AND discount BETWEEN 0.05 AND 0.07
				AND quantity < 24`,
	}

	verified := load(veridb.Config{})
	defer verified.Close()
	baseline := load(veridb.Config{Baseline: true})
	defer baseline.Close()

	for name, q := range queries {
		t0 := time.Now()
		res, err := verified.Exec(q)
		if err != nil {
			log.Fatal(err)
		}
		dVer := time.Since(t0)
		t0 = time.Now()
		if _, err := baseline.Exec(q); err != nil {
			log.Fatal(err)
		}
		dBase := time.Since(t0)

		fmt.Printf("== %s ==\n", name)
		fmt.Println(strings.Join(res.Columns, " | "))
		for _, row := range res.Rows {
			parts := make([]string, len(row))
			for i, v := range row {
				parts[i] = v.String()
			}
			fmt.Println(strings.Join(parts, " | "))
		}
		overhead := 100 * (float64(dVer)/float64(dBase) - 1)
		fmt.Printf("verified %v vs baseline %v (verifiability overhead %.0f%%; paper reports 9-39%%)\n\n",
			dVer.Round(time.Millisecond), dBase.Round(time.Millisecond), overhead)
	}

	if err := verified.Verify(); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	s := verified.Stats()
	fmt.Printf("verification passed: %d PRF evaluations over %d protected ops\n", s.PRFEvals, s.Ops)
}
