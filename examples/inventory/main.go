// Inventory: the paper's running example (§5.4, Figs. 7 and 8). Two
// relational tables, quote and inventory, and the verified join that finds
// sale quotes exceeding the current inventory balance:
//
//	SELECT q.id, q.count, i.count
//	FROM quote AS q, inventory AS i
//	WHERE q.id = i.id AND q.count > i.count
//
// The plan mirrors Fig. 7: a sequential scan of quote feeds an index join
// that probes inventory by primary key; both access methods verify their
// ⟨key, nKey⟩ evidence, so the enclave-resident operators above them need
// no further proofs.
package main

import (
	"fmt"
	"log"

	"veridb"
)

func main() {
	db, err := veridb.Open(veridb.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	must := func(q string) *veridb.Result {
		res, err := db.Exec(q)
		if err != nil {
			log.Fatalf("%s: %v", q, err)
		}
		return res
	}

	must(`CREATE TABLE quote (id INT PRIMARY KEY, count INT, price FLOAT)`)
	must(`CREATE TABLE inventory (id INT PRIMARY KEY, count INT, descr TEXT)`)
	// Fig. 8's contents.
	must(`INSERT INTO quote VALUES
		(1, 100, 100.0), (2, 100, 200.0), (3, 500, 100.0), (4, 600, 100.0)`)
	must(`INSERT INTO inventory VALUES
		(1, 50, 'desc1'), (3, 200, 'desc3'), (4, 100, 'desc4'), (6, 100, 'desc6')`)

	query := `SELECT q.id, q.count, i.count
		FROM quote AS q, inventory AS i
		WHERE q.id = i.id AND q.count > i.count`

	plan, err := db.Explain(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("physical plan (compiled inside the enclave):")
	fmt.Println(plan)

	res := must(query)
	fmt.Println("\nquotes exceeding inventory balance:")
	fmt.Println("  id | quoted | in stock")
	for _, row := range res.Rows {
		fmt.Printf("  %2d | %6d | %8d\n", row[0].I, row[1].I, row[2].I)
	}
	// Expected: (1,100,50), (3,500,200), (4,600,100) — §5.4's output.

	if err := db.Verify(); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("\nverification passed: every scanned record's ⟨key,nKey⟩ evidence held")
}
