// Quickstart: open a verifiable database, create a table, write and read
// through the trusted interfaces, and run a verification pass.
package main

import (
	"fmt"
	"log"

	"veridb"
)

func main() {
	// The zero config is a verifying VeriDB: one RSWS partition, metadata
	// excluded from verification, deferred compaction — the paper's
	// recommended setup (§4.3).
	db, err := veridb.Open(veridb.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must := func(q string) *veridb.Result {
		res, err := db.Exec(q)
		if err != nil {
			log.Fatalf("%s: %v", q, err)
		}
		return res
	}

	must(`CREATE TABLE accounts (
		id INT PRIMARY KEY,
		owner TEXT,
		balance FLOAT,
		INDEX(owner)
	)`)
	must(`INSERT INTO accounts VALUES
		(1, 'alice', 120.50),
		(2, 'bob', 78.25),
		(3, 'carol', 4019.00)`)
	must(`UPDATE accounts SET balance = balance - 20 WHERE id = 1`)

	res := must(`SELECT owner, balance FROM accounts WHERE balance > 50 ORDER BY balance DESC`)
	fmt.Println("owners with balance > 50:")
	for _, row := range res.Rows {
		fmt.Printf("  %-8s %8.2f\n", row[0].S, row[1].F)
	}

	// Every read above was served from write-read consistent memory; a
	// verification pass now proves nothing was tampered with since the
	// last epoch (deferred verification, §4.1).
	if err := db.Verify(); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	s := db.Stats()
	fmt.Printf("verified: %d protected ops, %d PRF evaluations, %d epochs\n",
		s.Ops, s.PRFEvals, s.Rotations)
}
