// Tamper: the §3.1 adversary in action, twice.
//
//  1. Memory tampering — the compromised host flips bytes of a stored
//     record directly, bypassing the protected read/write interfaces. The
//     next verification pass finds h(RS) ≠ h(WS) and raises a sticky
//     alarm (§4.1's offline memory checking).
//  2. Rollback — the host "loses power", wipes the enclave state and
//     replays an old database. The restarted portal reissues sequence
//     numbers the client has already recorded, which the client's
//     interval tracker flags (§5.1's rollback defence).
package main

import (
	"errors"
	"fmt"
	"log"

	"veridb"
)

func seed(db *veridb.DB) {
	for _, q := range []string{
		`CREATE TABLE ledger (id INT PRIMARY KEY, entry TEXT, amount FLOAT)`,
		`INSERT INTO ledger VALUES
			(1, 'opening balance', 1000.00),
			(2, 'invoice #1042', -250.00),
			(3, 'payment received', 400.00)`,
	} {
		if _, err := db.Exec(q); err != nil {
			log.Fatal(err)
		}
	}
}

func main() {
	fmt.Println("== attack 1: direct memory tampering ==")
	db, err := veridb.Open(veridb.Config{})
	if err != nil {
		log.Fatal(err)
	}
	seed(db)
	if err := db.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("initial verification: clean")

	// The adversary writes around every protected interface.
	if err := db.InjectTamper("ledger"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("adversary flipped bytes of a ledger record in untrusted memory")

	if err := db.Verify(); err != nil {
		fmt.Println("verification detected it:", err)
	} else {
		log.Fatal("BUG: tampering went undetected")
	}
	fmt.Println("alarm is sticky:", db.Alarm() != nil)
	db.Close()

	fmt.Println("\n== attack 2: rollback via forced restart ==")
	honest, err := veridb.Open(veridb.Config{})
	if err != nil {
		log.Fatal(err)
	}
	seed(honest)
	key := []byte("pre-exchanged-key")
	honest.ProvisionClient("alice", key)
	alice := veridb.NewClient("alice", key)
	nonce := []byte("session-nonce")
	if err := alice.Attest(honest.Attest(nonce), honest.Measurement(), nonce); err != nil {
		log.Fatal(err)
	}
	fmt.Println("alice attested the enclave and opened a session")
	ask := func(db *veridb.DB, q string) error {
		req := alice.NewRequest(q)
		resp, err := db.Serve(req)
		if err != nil {
			return err
		}
		return alice.VerifyResponse(req, resp)
	}
	for i := 0; i < 3; i++ {
		if err := ask(honest, `SELECT SUM(amount) FROM ledger`); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("alice ran 3 verified queries; sequence intervals:", alice.Tracker().Intervals())
	honest.Close()

	// The adversary restarts the machine with an old snapshot: a fresh
	// enclave whose monotonic counter is back at zero.
	rolledBack, err := veridb.Open(veridb.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer rolledBack.Close()
	seed(rolledBack)
	rolledBack.ProvisionClient("alice", key)
	fmt.Println("adversary replayed an old database state and restarted the portal")
	detected := false
	for i := 0; i < 4; i++ {
		err := ask(rolledBack, `SELECT SUM(amount) FROM ledger`)
		if err != nil {
			if errors.Is(err, veridb.ErrRollback) {
				fmt.Println("alice detected the rollback:", err)
				detected = true
				break
			}
			log.Fatal(err)
		}
	}
	if !detected {
		log.Fatal("BUG: rollback went undetected")
	}
}
