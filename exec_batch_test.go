package veridb

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"veridb/internal/client"
	"veridb/internal/portal"
)

// execBatchSetup loads a deterministic two-table dataset big enough that
// the planner keeps batching engaged (well past the small-input cutoff):
// 200 items across 10 categories plus the category dimension table.
func execBatchSetup(t *testing.T, db *DB) {
	t.Helper()
	mustExec(t, db, `CREATE TABLE items (id INT PRIMARY KEY, cat INT, qty INT, price FLOAT, name TEXT)`)
	mustExec(t, db, `CREATE TABLE cats (cat INT PRIMARY KEY, label TEXT)`)
	for c := 0; c < 10; c++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO cats VALUES (%d, 'cat-%d')`, c, c))
	}
	for i := 0; i < 200; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO items VALUES (%d, %d, %d, %g, 'item-%03d')`,
			i, i%10, i%13, float64(i)*0.5, i))
	}
}

// execBatchQueries is the endorsed workload: scans, filters, expression
// projections, aggregates, joins, sorts, limits, and two failing queries —
// error responses are sequenced and MACed like results, so they must be
// batch-size-invariant too.
var execBatchQueries = []string{
	`SELECT id, cat, qty, price, name FROM items`,
	`SELECT id, name FROM items WHERE qty > 6 AND price < 70.0`,
	`SELECT id, qty * 2 + cat FROM items WHERE id >= 20 AND id < 180 ORDER BY id DESC`,
	`SELECT cat, COUNT(*), SUM(qty), AVG(price), MIN(id), MAX(id) FROM items GROUP BY cat ORDER BY cat`,
	`SELECT i.id, c.label FROM items i JOIN cats c ON i.cat = c.cat WHERE i.qty = 3 ORDER BY i.id`,
	`SELECT id, price FROM items ORDER BY price DESC LIMIT 7`,
	`SELECT COUNT(*) FROM items WHERE name <> 'item-007'`,
	`SELECT id / (id - id) FROM items`, // division by zero mid-scan
	`SELECT * FROM missing`,            // plan-time failure
}

// serveAll runs the workload through the authenticated portal with a fresh
// client (so the qid sequence is identical across databases) and returns
// every endorsed response in order.
func serveAll(t *testing.T, db *DB, key []byte) []*Response {
	t.Helper()
	db.ProvisionClient("alice", key)
	c := NewClient("alice", key)
	out := make([]*Response, 0, len(execBatchQueries))
	for _, q := range execBatchQueries {
		req := c.NewRequest(q)
		resp, err := db.Serve(req)
		if err != nil {
			t.Fatalf("Serve(%q): %v", q, err)
		}
		// A ServerError is an authenticated execution failure: the MAC and
		// sequence checks passed and the client surfaces the portal's error
		// text. Anything else (bad MAC, rollback) fails the test.
		var srvErr *client.ServerError
		if err := c.VerifyResponse(req, resp); err != nil && !errors.As(err, &srvErr) {
			t.Fatalf("VerifyResponse(%q): %v", q, err)
		}
		out = append(out, resp)
	}
	return out
}

// TestExecBatchEndorsementIdentity is the batched-execution property test:
// for every storage layout and join strategy, running the same authenticated
// workload at ExecBatchSize 2, 3 and 256 must produce responses that are
// bit-identical to the tuple-at-a-time oracle (ExecBatchSize 1) — same rows
// in the same order, same sequence numbers, same error text, and therefore
// the same response digests and MACs. Vectorization must be invisible to
// the client's endorsement checks.
func TestExecBatchEndorsementIdentity(t *testing.T) {
	key := []byte("exec-batch-property-key")
	variants := []struct {
		name string
		cfg  Config
	}{
		{"unsharded", Config{Seed: 7}},
		{"sharded", Config{Seed: 7, TableShards: 4, VerifyWorkers: 2}},
		{"joinHash", Config{Seed: 7, Join: JoinHash}},
		{"joinMerge", Config{Seed: 7, Join: JoinMerge}},
		{"joinNested", Config{Seed: 7, Join: JoinNested}},
		{"joinIndex", Config{Seed: 7, Join: JoinIndex}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			oracleCfg := v.cfg
			oracleCfg.ExecBatchSize = 1
			oracle := open(t, oracleCfg)
			execBatchSetup(t, oracle)
			want := serveAll(t, oracle, key)

			for _, size := range []int{2, 3, 256} {
				cfg := v.cfg
				cfg.ExecBatchSize = size
				db := open(t, cfg)
				execBatchSetup(t, db)
				got := serveAll(t, db, key)
				for i, resp := range got {
					q := execBatchQueries[i]
					w := want[i]
					if resp.QID != w.QID || resp.Seq != w.Seq {
						t.Fatalf("batch=%d %q: qid/seq (%d,%d), oracle (%d,%d)",
							size, q, resp.QID, resp.Seq, w.QID, w.Seq)
					}
					if resp.ErrMsg != w.ErrMsg {
						t.Fatalf("batch=%d %q: error %q, oracle %q", size, q, resp.ErrMsg, w.ErrMsg)
					}
					if fmt.Sprint(resp.Columns) != fmt.Sprint(w.Columns) {
						t.Fatalf("batch=%d %q: columns %v, oracle %v", size, q, resp.Columns, w.Columns)
					}
					if len(resp.Rows) != len(w.Rows) {
						t.Fatalf("batch=%d %q: %d rows, oracle %d", size, q, len(resp.Rows), len(w.Rows))
					}
					for r := range resp.Rows {
						if fmt.Sprint(resp.Rows[r]) != fmt.Sprint(w.Rows[r]) {
							t.Fatalf("batch=%d %q row %d: %v, oracle %v",
								size, q, r, resp.Rows[r], w.Rows[r])
						}
					}
					if !bytes.Equal(portal.ResponseDigest(resp), portal.ResponseDigest(w)) {
						t.Fatalf("batch=%d %q: response digest diverged from oracle", size, q)
					}
					if !bytes.Equal(resp.MAC, w.MAC) {
						t.Fatalf("batch=%d %q: response MAC diverged from oracle", size, q)
					}
				}
				if err := db.Verify(); err != nil {
					t.Fatalf("batch=%d: verification failed after workload: %v", size, err)
				}
			}
		})
	}
}
