module veridb

go 1.22
