package bench

import (
	"time"

	"veridb/internal/enclave"
	"veridb/internal/record"
	"veridb/internal/storage"
	"veridb/internal/vmem"
)

// AblationCompaction compares eager per-delete compaction against the
// §4.3 design of deferring reclamation to the verification scan, under a
// delete-heavy workload.
type AblationCompaction struct {
	EagerDelete    time.Duration // mean delete latency, eager compaction
	DeferredDelete time.Duration // mean delete latency, deferred
	ScanWithWork   time.Duration // one verification pass that also compacts
}

// RunAblationCompaction measures the compaction trade-off.
func RunAblationCompaction(rows, churn int) (AblationCompaction, error) {
	var out AblationCompaction
	for _, eager := range []bool{true, false} {
		cfg := MicroConfig{
			Vmem:        vmem.Config{EagerCompaction: eager},
			InitialRows: rows,
			Ops:         churn,
		}
		cfg = cfg.withDefaults()
		t, mem, rng, err := setupMicro(cfg)
		if err != nil {
			return out, err
		}
		// Interleave inserts and deletes so pages fragment.
		var keys []int64
		var delTotal time.Duration
		var dels int
		for i := 0; i < cfg.Ops; i++ {
			if i%2 == 0 {
				k := 2*rng.Int63n(int64(cfg.InitialRows)) + 1
				if err := t.Insert(record.Tuple{record.Int(k), value500(rng)}); err == nil {
					keys = append(keys, k)
				}
			} else if len(keys) > 0 {
				k := keys[len(keys)-1]
				keys = keys[:len(keys)-1]
				start := time.Now()
				if err := t.Delete(record.Int(k)); err != nil {
					return out, err
				}
				delTotal += time.Since(start)
				dels++
			}
		}
		mean := delTotal / time.Duration(max(1, dels))
		if eager {
			out.EagerDelete = mean
		} else {
			out.DeferredDelete = mean
			start := time.Now()
			if err := mem.VerifyAll(); err != nil {
				return out, err
			}
			out.ScanWithWork = time.Since(start)
		}
	}
	return out, nil
}

// AblationTouched compares full-memory verification scans against
// touched-page tracking (§4.3) when only a small fraction of pages is hot.
type AblationTouched struct {
	FullScan    time.Duration
	TouchedOnly time.Duration
	Pages       uint64
}

// RunAblationTouched loads rows, performs one cold verification pass, then
// touches a handful of rows and measures the second pass both ways.
func RunAblationTouched(rows int) (AblationTouched, error) {
	var out AblationTouched
	for _, full := range []bool{true, false} {
		cfg := MicroConfig{Vmem: vmem.Config{FullScan: full}, InitialRows: rows}
		cfg = cfg.withDefaults()
		t, mem, rng, err := setupMicro(cfg)
		if err != nil {
			return out, err
		}
		if err := mem.VerifyAll(); err != nil { // cold pass
			return out, err
		}
		for i := 0; i < 10; i++ { // touch a few pages
			if _, _, err := t.SearchPK(record.Int(2 * (1 + rng.Int63n(int64(cfg.InitialRows))))); err != nil {
				return out, err
			}
		}
		start := time.Now()
		if err := mem.VerifyAll(); err != nil {
			return out, err
		}
		if full {
			out.FullScan = time.Since(start)
		} else {
			out.TouchedOnly = time.Since(start)
		}
		out.Pages = mem.Stats().PagesAlive
	}
	return out, nil
}

// AblationECall quantifies the §3.3 colocation argument: what one storage
// Get costs when the engine shares the enclave with the storage interface,
// what one simulated ECall-grade boundary crossing costs, and therefore
// what a per-call-crossing design would pay.
type AblationECall struct {
	Colocated time.Duration // mean Get, no crossing
	ECall     time.Duration // mean simulated boundary crossing (~8000 cycles)
	Crossing  time.Duration // Colocated + ECall: the non-colocated design
}

// RunAblationECall measures the op cost and the crossing cost separately
// (summing them is deterministic; interleaving them would just add noise).
func RunAblationECall(rows, ops int) (AblationECall, error) {
	var out AblationECall
	cfg := MicroConfig{InitialRows: rows, Ops: ops}
	cfg = cfg.withDefaults()
	t, _, rng, err := setupMicro(cfg)
	if err != nil {
		return out, err
	}
	start := time.Now()
	for i := 0; i < cfg.Ops; i++ {
		k := 2 * (1 + rng.Int63n(int64(cfg.InitialRows)))
		if _, _, err := t.SearchPK(record.Int(k)); err != nil {
			return out, err
		}
	}
	out.Colocated = time.Since(start) / time.Duration(cfg.Ops)

	crossEnc, err := enclave.New(enclave.Config{ECallCycles: enclave.DefaultECallCycles})
	if err != nil {
		return out, err
	}
	start = time.Now()
	for i := 0; i < cfg.Ops; i++ {
		crossEnc.ECall()
	}
	out.ECall = time.Since(start) / time.Duration(cfg.Ops)
	out.Crossing = out.Colocated + out.ECall
	return out, nil
}

// max avoids importing math for ints.
func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

var _ = storage.ErrNotFound // bench reports storage errors upward
