package bench

import (
	"testing"
	"time"

	"veridb/internal/vmem"
	"veridb/internal/workload/tpcc"
)

// The harness runs at tiny scale here: these tests pin that every figure's
// code path executes cleanly and produces structurally sane numbers; the
// real measurements come from veridb-bench / go test -bench.

func TestRunMicroAllConfigs(t *testing.T) {
	for _, c := range Fig9Configs() {
		lat, err := RunMicro(MicroConfig{Vmem: c.Vmem, InitialRows: 500, Ops: 400})
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		for i, n := range lat.Counts {
			if n == 0 {
				t.Fatalf("%s: op kind %d never ran", c.Name, i)
			}
		}
		if lat.Get <= 0 || lat.Insert <= 0 || lat.Delete <= 0 || lat.Update <= 0 {
			t.Fatalf("%s: non-positive latency %+v", c.Name, lat)
		}
	}
}

func TestRunMicroWithVerifier(t *testing.T) {
	for _, freq := range Fig10Frequencies() {
		if _, err := RunMicro(MicroConfig{InitialRows: 300, Ops: 200, VerifyEvery: freq}); err != nil {
			t.Fatalf("freq %d: %v", freq, err)
		}
	}
}

func TestRSWSCostsMoreThanBaseline(t *testing.T) {
	// The one relationship that must hold even on noisy CI hardware:
	// verification work is not free.
	base, err := RunMicro(MicroConfig{Vmem: vmem.Config{Mode: vmem.ModeBaseline}, InitialRows: 2000, Ops: 2000})
	if err != nil {
		t.Fatal(err)
	}
	rsws, err := RunMicro(MicroConfig{InitialRows: 2000, Ops: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if rsws.Get+rsws.Insert+rsws.Delete+rsws.Update <= base.Get+base.Insert+base.Delete+base.Update {
		t.Fatalf("RSWS (%v) not slower than baseline (%v)", rsws, base)
	}
}

func TestRunMBTreeMicro(t *testing.T) {
	lat, err := RunMBTreeMicro(MicroConfig{InitialRows: 500, Ops: 400})
	if err != nil {
		t.Fatal(err)
	}
	if lat.Get <= 0 || lat.Insert <= 0 {
		t.Fatalf("latencies %+v", lat)
	}
}

func TestRunTPCHSmall(t *testing.T) {
	run, err := RunTPCH(TPCHConfig{Lineitems: 1500, Parts: 50}, vmem.Config{}, "test")
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Results) != 4 {
		t.Fatalf("queries %d", len(run.Results))
	}
	for _, r := range run.Results {
		if r.Total <= 0 || r.ScanNodes < 0 || r.Other < 0 {
			t.Fatalf("%s: %+v", r.Query, r)
		}
		if r.ScanNodes+r.Other != r.Total {
			t.Fatalf("%s: decomposition does not add up", r.Query)
		}
	}
	// Q1 returns grouped rows; Q6/Q19 return one row each.
	if run.Results[0].Rows < 2 || run.Results[1].Rows != 1 {
		t.Fatalf("row counts %v, %v", run.Results[0].Rows, run.Results[1].Rows)
	}
	// Both Q19 plans return the same single row.
	if run.Results[2].Rows != 1 || run.Results[3].Rows != 1 {
		t.Fatalf("Q19 rows %d/%d", run.Results[2].Rows, run.Results[3].Rows)
	}
}

func TestRunTPCCPointSmall(t *testing.T) {
	cfg := TPCCConfig{
		Workload: tpcc.Config{Warehouses: 2, Customers: 3, Items: 30},
		Duration: 200 * time.Millisecond,
	}
	pt, err := RunTPCCPoint(cfg, vmem.Config{Partitions: 4}, "test", 3)
	if err != nil {
		t.Fatal(err)
	}
	if pt.TPS <= 0 || pt.Clients != 3 {
		t.Fatalf("point %+v", pt)
	}
}

func TestRunShardScalingSmall(t *testing.T) {
	run, err := RunShardScaling(ShardScalingConfig{
		TPCC: TPCCConfig{
			Workload: tpcc.Config{Warehouses: 2, Customers: 3, Items: 30},
			Duration: 100 * time.Millisecond,
		},
		Vmem:    vmem.Config{Partitions: 4},
		Shards:  []int{1, 4},
		Clients: []int{2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Points) != 2 {
		t.Fatalf("points = %d", len(run.Points))
	}
	for _, pt := range run.Points {
		if pt.TPS <= 0 || pt.Clients != 2 {
			t.Fatalf("point %+v", pt)
		}
	}
	if run.Points[0].Shards != 1 || run.Points[1].Shards != 4 {
		t.Fatalf("shard labels %+v", run.Points)
	}
}

func TestRunVerifyScalingSmall(t *testing.T) {
	run, err := RunVerifyScaling(VerifyScalingConfig{
		Pages: 64, RecordsPerPage: 4, RecordBytes: 32,
		Partitions: 4, Passes: 1, Workers: []int{1, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(run.Points))
	}
	for _, pt := range run.Points {
		if pt.FullScan <= 0 || pt.PagesPerSecond <= 0 || pt.RotationsPerSecond <= 0 {
			t.Fatalf("degenerate point %+v", pt)
		}
		// RunVerifyScaling itself fails on checksum divergence; pin the
		// equality here too so the contract survives refactors.
		if pt.Checksum != run.Points[0].Checksum {
			t.Fatalf("checksum diverged across worker counts: %+v", run.Points)
		}
	}
}

func TestAblations(t *testing.T) {
	comp, err := RunAblationCompaction(500, 400)
	if err != nil {
		t.Fatal(err)
	}
	if comp.EagerDelete <= 0 || comp.DeferredDelete <= 0 {
		t.Fatalf("%+v", comp)
	}
	touched, err := RunAblationTouched(2000)
	if err != nil {
		t.Fatal(err)
	}
	if touched.FullScan <= 0 || touched.TouchedOnly <= 0 {
		t.Fatalf("%+v", touched)
	}
	if touched.TouchedOnly >= touched.FullScan {
		t.Logf("warning: touched-only pass (%v) not faster than full scan (%v) at this scale",
			touched.TouchedOnly, touched.FullScan)
	}
	ecall, err := RunAblationECall(500, 500)
	if err != nil {
		t.Fatal(err)
	}
	if ecall.ECall <= 0 || ecall.Crossing <= ecall.Colocated {
		t.Fatalf("boundary crossing %+v inconsistent", ecall)
	}
}
