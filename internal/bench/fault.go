// Fault-injection benchmark: how long the full containment pipeline takes
// from an injected memory fault to a recovered, verified replacement.
// Each trial builds an active instance and an honest replica, drives an
// authenticated client workload through a core.Supervisor, fires one
// seeded chaos fault into the active instance's untrusted memory, and
// measures two intervals the paper's robustness story turns on: how fast
// the verifier turns silent corruption into a quarantine (detection), and
// how fast the supervisor turns a quarantine into verified service again
// (recovery).
package bench

import (
	"errors"
	"fmt"
	"time"

	"veridb/internal/chaos"
	"veridb/internal/client"
	"veridb/internal/core"
	"veridb/internal/portal"
)

// FaultRecoveryConfig sizes the fault-recovery experiment.
type FaultRecoveryConfig struct {
	Rows        int   // seeded kv rows per instance
	VerifyEvery int   // background verifier pacing (ops per page scan)
	Trials      int   // fault/recovery cycles (fault kinds rotate)
	Seed        int64 // drives instance keys and chaos victim selection
}

func (c FaultRecoveryConfig) withDefaults() FaultRecoveryConfig {
	if c.Rows <= 0 {
		c.Rows = 128
	}
	if c.VerifyEvery <= 0 {
		c.VerifyEvery = 8
	}
	if c.Trials <= 0 {
		c.Trials = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// FaultRecoveryTrial is one fault/recovery cycle's measurement.
type FaultRecoveryTrial struct {
	Fault string `json:"fault"`
	// Detection is injected fault → first authenticated quarantine
	// response observed by the client (verifier latency + fencing).
	Detection time.Duration `json:"detection_ns"`
	// Failover is quarantine observation → replacement admitted
	// (rebuild from replica + full verification gate), as recorded by
	// the supervisor.
	Failover time.Duration `json:"failover_ns"`
	// TimeToRecovered is injected fault → first verified data response
	// from the replacement — the client-visible outage.
	TimeToRecovered time.Duration `json:"time_to_recovered_ns"`
	// QuarantinedResponses counts fencing responses the client saw
	// before service resumed.
	QuarantinedResponses int `json:"quarantined_responses"`
	// SeqFloor is the sequence number the replacement resumed above.
	SeqFloor uint64 `json:"seq_floor"`
}

// FaultRecoveryRun is the whole experiment, shaped for JSON emission
// (BENCH_fault.json).
type FaultRecoveryRun struct {
	Rows        int                  `json:"rows"`
	VerifyEvery int                  `json:"verify_every"`
	Trials      []FaultRecoveryTrial `json:"trials"`
	// MeanDetection / MeanTimeToRecovered aggregate the trials.
	MeanDetection       time.Duration `json:"mean_detection_ns"`
	MeanTimeToRecovered time.Duration `json:"mean_time_to_recovered_ns"`
}

// faultCycle rotates the injected fault kind across trials. Write-path
// faults need the workload's UPDATE phase to fire; the workload below
// alternates reads and writes so every kind is reachable.
var faultCycle = []chaos.FaultKind{chaos.BitFlip, chaos.TornWrite, chaos.DroppedWrite, chaos.Rollback}

// RunFaultRecovery executes the experiment.
func RunFaultRecovery(cfg FaultRecoveryConfig) (*FaultRecoveryRun, error) {
	cfg = cfg.withDefaults()
	run := &FaultRecoveryRun{Rows: cfg.Rows, VerifyEvery: cfg.VerifyEvery}
	for i := 0; i < cfg.Trials; i++ {
		kind := faultCycle[i%len(faultCycle)]
		trial, err := runFaultTrial(cfg, kind, cfg.Seed+int64(i))
		if err != nil {
			return nil, fmt.Errorf("bench: fault trial %d (%v): %w", i, kind, err)
		}
		run.Trials = append(run.Trials, *trial)
		run.MeanDetection += trial.Detection
		run.MeanTimeToRecovered += trial.TimeToRecovered
	}
	run.MeanDetection /= time.Duration(len(run.Trials))
	run.MeanTimeToRecovered /= time.Duration(len(run.Trials))
	return run, nil
}

func openFaultInstance(seed uint64, verifyEvery int, key []byte) (*core.DB, error) {
	db, err := core.Open(core.Config{Seed: seed, VerifyEveryOps: verifyEvery})
	if err != nil {
		return nil, err
	}
	db.Enclave().ProvisionMACKey("bench", key)
	return db, nil
}

func seedFaultKV(db *core.DB, rows int) error {
	if _, err := db.Execute(`CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)`); err != nil {
		return err
	}
	for i := 0; i < rows; i++ {
		stmt := fmt.Sprintf(`INSERT INTO kv VALUES (%d, 'value-%04d')`, i, i)
		if _, err := db.Execute(stmt); err != nil {
			return err
		}
	}
	return nil
}

func runFaultTrial(cfg FaultRecoveryConfig, kind chaos.FaultKind, seed int64) (*FaultRecoveryTrial, error) {
	key := []byte("bench-fault-key")
	active, err := openFaultInstance(uint64(seed)*1000+1, cfg.VerifyEvery, key)
	if err != nil {
		return nil, err
	}
	defer active.Close()
	replica, err := openFaultInstance(uint64(seed)*1000+2, cfg.VerifyEvery, key)
	if err != nil {
		return nil, err
	}
	defer replica.Close()
	if err := seedFaultKV(active, cfg.Rows); err != nil {
		return nil, err
	}
	if err := seedFaultKV(replica, cfg.Rows); err != nil {
		return nil, err
	}

	freshSeed := uint64(seed)*1000 + 100
	sup, err := core.NewSupervisor(core.SupervisorConfig{
		Active:  active,
		Replica: replica,
		Fresh: func() (*core.DB, error) {
			freshSeed++
			return openFaultInstance(freshSeed, cfg.VerifyEvery, key)
		},
		Poll: time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer sup.Close()

	c := client.New("bench", key)
	tr := client.TransportFunc(func(req portal.Request) (*portal.Response, error) {
		return sup.Serve(req)
	})

	in := chaos.New(seed, chaos.MemFault{
		Kind: kind, AtOp: active.Memory().Stats().Ops + 32, ReplayAfter: 64,
	})
	in.Attach(active.Memory())
	defer in.Detach()

	trial := &FaultRecoveryTrial{Fault: kind.String()}
	var faultAt, detectedAt time.Time
	deadline := time.Now().Add(60 * time.Second)
	for i := 0; ; i++ {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("trial did not recover within 60s (fired: %v, supervisor: %v)",
				in.Fired(), sup.Err())
		}
		// Alternating workload: reads fold victim cells into the read
		// set (bit flips, rollbacks), same-length writes give the
		// write-path faults something to drop or tear (DroppedWrite
		// needs old and intended images of equal size).
		var query string
		if i%2 == 0 {
			query = fmt.Sprintf(`SELECT v FROM kv WHERE k = %d`, i%cfg.Rows)
		} else {
			query = fmt.Sprintf(`UPDATE kv SET v = 'gen%07d' WHERE k = %d`, i%10_000_000, i%cfg.Rows)
		}
		_, err := c.Do(tr, query, client.RetryConfig{Timeout: 10 * time.Second, Retries: 1})
		if faultAt.IsZero() && len(in.Fired()) > 0 {
			faultAt = time.Now()
		}
		var srvErr *client.ServerError
		switch {
		case err == nil:
			if !detectedAt.IsZero() {
				// First verified data response from the replacement.
				trial.TimeToRecovered = time.Since(faultAt)
				recs := sup.Failovers()
				if len(recs) == 0 {
					return nil, fmt.Errorf("recovered with no failover record")
				}
				trial.Failover = recs[len(recs)-1].Recovered.Sub(recs[len(recs)-1].Detected)
				trial.SeqFloor = recs[len(recs)-1].SeqFloor
				return trial, nil
			}
		case errors.Is(err, client.ErrQuarantined):
			trial.QuarantinedResponses++
			if detectedAt.IsZero() {
				detectedAt = time.Now()
				if faultAt.IsZero() {
					faultAt = detectedAt
				}
				trial.Detection = detectedAt.Sub(faultAt)
			}
		case errors.As(err, &srvErr) && len(in.Fired()) > 0:
			// Authenticated execution error after the fault fired: a
			// replayed stale page can fail storage-level checks before
			// the multiset alarm lands. Degraded, not fatal — keep
			// driving until the quarantine/fallover pipeline catches up.
		default:
			return nil, fmt.Errorf("workload query failed: %w", err)
		}
	}
}
