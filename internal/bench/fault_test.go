package bench

import (
	"encoding/json"
	"testing"
)

// TestRunFaultRecoverySmall drives one trial of every fault kind through
// the full inject → detect → quarantine → failover → recover pipeline and
// checks the measurements are coherent.
func TestRunFaultRecoverySmall(t *testing.T) {
	run, err := RunFaultRecovery(FaultRecoveryConfig{
		Rows:        24,
		VerifyEvery: 4,
		Trials:      len(faultCycle),
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Trials) != len(faultCycle) {
		t.Fatalf("trials %d, want %d", len(run.Trials), len(faultCycle))
	}
	seen := map[string]bool{}
	for i, tr := range run.Trials {
		seen[tr.Fault] = true
		if tr.TimeToRecovered <= 0 || tr.Failover <= 0 {
			t.Fatalf("trial %d (%s) has empty measurements: %+v", i, tr.Fault, tr)
		}
		if tr.QuarantinedResponses == 0 {
			t.Fatalf("trial %d (%s) recovered without any quarantine response", i, tr.Fault)
		}
		if tr.SeqFloor == 0 {
			t.Fatalf("trial %d (%s) resumed at floor 0", i, tr.Fault)
		}
	}
	if len(seen) != len(faultCycle) {
		t.Fatalf("fault kinds covered: %v", seen)
	}
	if run.MeanTimeToRecovered <= 0 {
		t.Fatalf("run aggregates empty: %+v", run)
	}
	// The run must serialise cleanly (BENCH_fault.json emission).
	if _, err := json.Marshal(run); err != nil {
		t.Fatalf("run not JSON-serialisable: %v", err)
	}
}
