package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"veridb/internal/core"
	"veridb/internal/enclave"
	"veridb/internal/engine"
	"veridb/internal/plan"
	"veridb/internal/sql"
	"veridb/internal/storage"
	"veridb/internal/vmem"
	"veridb/internal/workload/tpcc"
	"veridb/internal/workload/tpch"
)

// TPCHConfig sizes the Fig. 12 experiment. TPC-H SF1 is 6 M lineitems and
// 200 k parts; the defaults keep the 30:1 ratio at 1/100 scale.
type TPCHConfig struct {
	Lineitems int
	Parts     int
	Seed      int64
}

func (c TPCHConfig) withDefaults() TPCHConfig {
	if c.Lineitems <= 0 {
		c.Lineitems = 60_000
	}
	if c.Parts <= 0 {
		c.Parts = c.Lineitems / 30
		if c.Parts < 10 {
			c.Parts = 10
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// TPCHResult is one query measurement, split the way Fig. 12 stacks its
// bars: time spent in the verified scan leaves vs. everything above them.
type TPCHResult struct {
	Query     string
	Total     time.Duration
	ScanNodes time.Duration // time to drain the bare scan leaves
	Other     time.Duration // Total - ScanNodes
	Rows      int
}

// TPCHRun holds one configuration's measurements.
type TPCHRun struct {
	Config  string
	Results []TPCHResult
}

// tpchDB loads the dataset into a fresh database.
func tpchDB(cfg TPCHConfig, vc vmem.Config, js plan.JoinStrategy, d *tpch.Dataset) (*core.DB, error) {
	db, err := core.Open(core.Config{Seed: uint64(cfg.Seed), Memory: vc, Join: js})
	if err != nil {
		return nil, err
	}
	for _, ddl := range tpch.CreateTablesSQL() {
		if _, err := db.Execute(ddl); err != nil {
			return nil, err
		}
	}
	if err := tpch.Load(db.Store(), d); err != nil {
		return nil, err
	}
	return db, nil
}

// scanTime measures draining the bare verified scans a query's plan reads:
// the "Scan Nodes" component of Fig. 12.
func scanTime(db *core.DB, tables []string) (time.Duration, error) {
	var total time.Duration
	for _, name := range tables {
		t, err := db.Store().Table(name)
		if err != nil {
			return 0, err
		}
		scan := engine.NewTableScan(t, name)
		start := time.Now()
		if _, err := engine.Drain(scan); err != nil {
			return 0, err
		}
		total += time.Since(start)
	}
	return total, nil
}

// RunTPCH executes Q1, Q6 and both Q19 plans under one memory
// configuration and reports the Fig. 12 decomposition.
func RunTPCH(cfg TPCHConfig, vc vmem.Config, configName string) (*TPCHRun, error) {
	cfg = cfg.withDefaults()
	d := tpch.Generate(cfg.Lineitems, cfg.Parts, cfg.Seed)
	run := &TPCHRun{Config: configName}

	type job struct {
		name   string
		sql    string
		join   plan.JoinStrategy
		tables []string
	}
	jobs := []job{
		{"Q1", tpch.Q1SQL(), plan.JoinAuto, []string{"lineitem"}},
		{"Q6", tpch.Q6SQL(), plan.JoinAuto, []string{"lineitem"}},
		{"Q19 (MergeJoin)", tpch.Q19SQL(), plan.JoinMerge, []string{"lineitem", "part"}},
		{"Q19 (NestedLoopJoin)", tpch.Q19SQL(), plan.JoinNested, []string{"lineitem", "part"}},
	}
	for _, j := range jobs {
		db, err := tpchDB(cfg, vc, j.join, d)
		if err != nil {
			return nil, err
		}
		stmt, err := sql.Parse(j.sql)
		if err != nil {
			return nil, err
		}
		op, err := db.Plan(stmt.(*sql.Select))
		if err != nil {
			return nil, err
		}
		start := time.Now()
		rows, err := engine.Drain(op)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", j.name, err)
		}
		total := time.Since(start)
		scans, err := scanTime(db, j.tables)
		if err != nil {
			return nil, err
		}
		if scans > total {
			scans = total
		}
		run.Results = append(run.Results, TPCHResult{
			Query: j.name, Total: total, ScanNodes: scans, Other: total - scans,
			Rows: len(rows),
		})
		db.Close()
	}
	return run, nil
}

// TPCCConfig sizes the Fig. 13 experiment.
type TPCCConfig struct {
	Workload tpcc.Config
	// Duration each throughput point runs for.
	Duration time.Duration
	// VerifyEvery paces the background verifier (0 disables).
	VerifyEvery int
	// TableShards is the per-table hash-shard count (0 or 1: unsharded).
	TableShards int
	Seed        int64
}

func (c TPCCConfig) withDefaults() TPCCConfig {
	if c.Workload.Warehouses == 0 {
		c.Workload = tpcc.Config{Warehouses: 20, Customers: 10, Items: 200}
	}
	if c.Duration == 0 {
		c.Duration = 2 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// TPCCPoint is one Fig. 13 data point.
type TPCCPoint struct {
	Config  string
	Clients int
	// Shards is the per-table shard count the point ran with (0: unsharded).
	Shards int
	TPS    float64
}

// RunTPCCPoint populates a fresh database and measures transaction
// throughput with the given client count.
func RunTPCCPoint(cfg TPCCConfig, vc vmem.Config, configName string, clients int) (TPCCPoint, error) {
	cfg = cfg.withDefaults()
	mem, err := vmem.New(enclave.NewForTest(uint64(cfg.Seed)), vc)
	if err != nil {
		return TPCCPoint{}, err
	}
	st := storage.NewStore(mem)
	if cfg.TableShards > 0 {
		st.SetDefaultShards(cfg.TableShards)
	}
	tables, err := tpcc.CreateTables(st)
	if err != nil {
		return TPCCPoint{}, err
	}
	if err := tpcc.Populate(tables, cfg.Workload, cfg.Seed); err != nil {
		return TPCCPoint{}, err
	}
	if cfg.VerifyEvery > 0 && vc.Mode == vmem.ModeRSWS {
		if err := mem.StartVerifier(cfg.VerifyEvery); err != nil {
			return TPCCPoint{}, err
		}
		defer mem.StopVerifier()
	}
	var done atomic.Bool
	var txns atomic.Int64
	errCh := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			w := tpcc.NewWorker(tables, cfg.Workload, c, cfg.Seed*1000+int64(c))
			for !done.Load() {
				if err := w.Run(); err != nil {
					errCh <- err
					return
				}
				txns.Add(1)
			}
		}(c)
	}
	time.Sleep(cfg.Duration)
	done.Store(true)
	wg.Wait()
	select {
	case err := <-errCh:
		return TPCCPoint{}, err
	default:
	}
	if err := mem.Alarm(); err != nil {
		return TPCCPoint{}, fmt.Errorf("bench: verification alarm in clean TPC-C run: %w", err)
	}
	return TPCCPoint{
		Config:  configName,
		Clients: clients,
		Shards:  cfg.TableShards,
		TPS:     float64(txns.Load()) / cfg.Duration.Seconds(),
	}, nil
}

// ShardScalingConfig sizes the TableShards sweep riding along Fig. 13:
// same TPC-C mix, fixed RSWS layout, varying only the per-table shard
// count so the remaining contention is the table latch the shards split.
type ShardScalingConfig struct {
	TPCC    TPCCConfig
	Vmem    vmem.Config
	Shards  []int
	Clients []int
}

func (c ShardScalingConfig) withDefaults() ShardScalingConfig {
	c.TPCC = c.TPCC.withDefaults()
	if c.Vmem.Partitions == 0 {
		c.Vmem.Partitions = 16
	}
	if len(c.Shards) == 0 {
		c.Shards = []int{1, 4, 16}
	}
	if len(c.Clients) == 0 {
		c.Clients = []int{1, 4, 8}
	}
	return c
}

// ShardScalingRun is the BENCH_shard.json payload.
type ShardScalingRun struct {
	Warehouses int
	Partitions int
	DurationMS int64
	Points     []TPCCPoint
}

// RunShardScaling measures TPC-C throughput across per-table shard counts.
func RunShardScaling(cfg ShardScalingConfig) (*ShardScalingRun, error) {
	cfg = cfg.withDefaults()
	run := &ShardScalingRun{
		Warehouses: cfg.TPCC.Workload.Warehouses,
		Partitions: cfg.Vmem.Partitions,
		DurationMS: cfg.TPCC.Duration.Milliseconds(),
	}
	for _, shards := range cfg.Shards {
		tc := cfg.TPCC
		tc.TableShards = shards
		name := fmt.Sprintf("%d shard(s)", shards)
		for _, clients := range cfg.Clients {
			pt, err := RunTPCCPoint(tc, cfg.Vmem, name, clients)
			if err != nil {
				return nil, fmt.Errorf("bench: shard sweep %s × %d clients: %w", name, clients, err)
			}
			run.Points = append(run.Points, pt)
		}
	}
	return run, nil
}

// Fig13Configs returns the paper's RSWS-count series.
type Fig13Config struct {
	Name string
	Vmem vmem.Config
}

// Fig13Series enumerates the Fig. 13 configurations.
func Fig13Series() []Fig13Config {
	return []Fig13Config{
		{Name: "No RSWS updates", Vmem: vmem.Config{Mode: vmem.ModeBaseline}},
		{Name: "1024 RSWSs", Vmem: vmem.Config{Partitions: 1024}},
		{Name: "128 RSWSs", Vmem: vmem.Config{Partitions: 128}},
		{Name: "16 RSWSs", Vmem: vmem.Config{Partitions: 16}},
		{Name: "4 RSWSs", Vmem: vmem.Config{Partitions: 4}},
		{Name: "1 RSWS", Vmem: vmem.Config{Partitions: 1}},
	}
}
