// Package bench implements the experiment harness that regenerates every
// figure in the paper's evaluation (§6): the micro-benchmarks of Fig. 9
// (read/write latency by configuration) and Fig. 10 (latency vs.
// verification frequency), the MB-Tree comparison of Fig. 11, the TPC-H
// macro-benchmark of Fig. 12 and the TPC-C concurrency experiment of
// Fig. 13, plus ablations for the §4.3 design choices. Both the
// veridb-bench binary and the repo-level testing.B benchmarks call into
// this package, so numbers printed by either agree.
package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"veridb/internal/enclave"
	"veridb/internal/mbtree"
	"veridb/internal/record"
	"veridb/internal/storage"
	"veridb/internal/vmem"
)

// MicroConfig sizes the §6.1 micro-benchmark: an initial database of
// integer-keyed records with 500-byte string values, then a mixed stream
// of Get/Insert/Delete/Update operations in roughly equal shares.
type MicroConfig struct {
	Vmem        vmem.Config
	InitialRows int // paper: 1 M; scaled default 100 k
	Ops         int // paper: 10 k
	VerifyEvery int // ops per page scan; 0 disables background verification
	Seed        int64
}

func (c MicroConfig) withDefaults() MicroConfig {
	if c.InitialRows <= 0 {
		c.InitialRows = 100_000
	}
	if c.Ops <= 0 {
		c.Ops = 10_000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// OpLatencies reports mean per-operation latency by kind.
type OpLatencies struct {
	Get, Insert, Delete, Update time.Duration
	Counts                      [4]int
}

// value500 builds the paper's 500-byte values.
func value500(rng *rand.Rand) record.Value {
	b := make([]byte, 500)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return record.Text(string(b))
}

// kvSpec is the micro-benchmark table: 4-byte-int-keyed 500-byte values.
func kvSpec() storage.TableSpec {
	return storage.TableSpec{
		Name: "kv",
		Schema: record.NewSchema(
			record.Column{Name: "k", Type: record.TypeInt},
			record.Column{Name: "v", Type: record.TypeText},
		),
		PrimaryKey: 0,
	}
}

// setupMicro loads the initial state: keys 2,4,...,2N so inserted odd keys
// always split an existing ⟨key, nKey⟩ interval, exercising the chain
// maintenance the paper measures.
func setupMicro(cfg MicroConfig) (*storage.Table, *vmem.Memory, *rand.Rand, error) {
	mem, err := vmem.New(enclave.NewForTest(uint64(cfg.Seed)), cfg.Vmem)
	if err != nil {
		return nil, nil, nil, err
	}
	st := storage.NewStore(mem)
	t, err := st.CreateTable(kvSpec())
	if err != nil {
		return nil, nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 1; i <= cfg.InitialRows; i++ {
		if err := t.Insert(record.Tuple{record.Int(int64(i) * 2), value500(rng)}); err != nil {
			return nil, nil, nil, err
		}
	}
	return t, mem, rng, nil
}

// RunMicro executes the §6.1 workload and reports mean latencies.
func RunMicro(cfg MicroConfig) (OpLatencies, error) {
	cfg = cfg.withDefaults()
	t, mem, rng, err := setupMicro(cfg)
	if err != nil {
		return OpLatencies{}, err
	}
	if cfg.VerifyEvery > 0 {
		if err := mem.StartVerifier(cfg.VerifyEvery); err != nil {
			return OpLatencies{}, err
		}
		defer mem.StopVerifier()
	}
	// Pre-generate values and key choices: only the storage operation
	// itself belongs inside the timed section.
	vals := make([]record.Value, 64)
	for i := range vals {
		vals[i] = value500(rng)
	}
	var total [4]time.Duration
	var counts [4]int
	inserted := make([]int64, 0, cfg.Ops) // odd keys currently present
	maxEven := int64(cfg.InitialRows) * 2
	for i := 0; i < cfg.Ops; i++ {
		op := i % 4 // equal shares, interleaved
		v := vals[i%len(vals)]
		getKey := 2 * (1 + rng.Int63n(int64(cfg.InitialRows)))
		oddKey := 2*rng.Int63n(maxEven/2) + 1
		if op == 2 && len(inserted) == 0 {
			// Ensure the delete has a victim; setup is untimed.
			if err := t.Insert(record.Tuple{record.Int(oddKey), v}); err == nil {
				inserted = append(inserted, oddKey)
			}
		}
		start := time.Now()
		switch op {
		case 0: // Get
			if _, _, err := t.SearchPK(record.Int(getKey)); err != nil {
				return OpLatencies{}, err
			}
		case 1: // Insert (fresh odd key)
			err := t.Insert(record.Tuple{record.Int(oddKey), v})
			if err == nil {
				inserted = append(inserted, oddKey)
			} else if !errors.Is(err, storage.ErrDuplicateKey) {
				return OpLatencies{}, err
			}
		case 2: // Delete (a previously inserted key)
			if len(inserted) > 0 {
				k := inserted[len(inserted)-1]
				inserted = inserted[:len(inserted)-1]
				if err := t.Delete(record.Int(k)); err != nil {
					return OpLatencies{}, err
				}
			}
		case 3: // Update (same-size value: in place)
			if err := t.Update(record.Int(getKey), record.Tuple{record.Int(getKey), v}); err != nil {
				return OpLatencies{}, err
			}
		}
		total[op] += time.Since(start)
		counts[op]++
	}
	if err := mem.Alarm(); err != nil {
		return OpLatencies{}, fmt.Errorf("bench: verification alarm during clean run: %w", err)
	}
	out := OpLatencies{Counts: counts}
	if counts[0] > 0 {
		out.Get = total[0] / time.Duration(counts[0])
	}
	if counts[1] > 0 {
		out.Insert = total[1] / time.Duration(counts[1])
	}
	if counts[2] > 0 {
		out.Delete = total[2] / time.Duration(counts[2])
	}
	if counts[3] > 0 {
		out.Update = total[3] / time.Duration(counts[3])
	}
	return out, nil
}

// Fig9Config names one Fig. 9 series.
type Fig9Config struct {
	Name string
	Vmem vmem.Config
}

// Fig9Configs returns the paper's three configurations.
func Fig9Configs() []Fig9Config {
	return []Fig9Config{
		{Name: "RSWS w/ Metadata", Vmem: vmem.Config{VerifyMetadata: true}},
		{Name: "RSWS", Vmem: vmem.Config{}},
		{Name: "Baseline", Vmem: vmem.Config{Mode: vmem.ModeBaseline}},
	}
}

// Fig10Frequencies returns the paper's x-axis (operations per page scan).
func Fig10Frequencies() []int { return []int{50, 100, 200, 500, 1000} }

// RunMBTreeMicro executes the same workload against the MB-Tree baseline
// (§6.2): writes rewrite the root-to-leaf hash path under the global root
// lock; reads build the verification object.
func RunMBTreeMicro(cfg MicroConfig) (OpLatencies, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := mbtree.New(mbtree.DefaultFanout)
	root := tr.Root()
	key := func(k int64) []byte {
		return []byte{byte(k >> 24), byte(k >> 16), byte(k >> 8), byte(k)} // 4-byte keys, as §6.1
	}
	val := func() []byte {
		b := make([]byte, 500)
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		return b
	}
	for i := 1; i <= cfg.InitialRows; i++ {
		root = tr.Insert(key(int64(i)*2), val())
	}
	vals := make([][]byte, 64)
	for i := range vals {
		vals[i] = val()
	}
	var total [4]time.Duration
	var counts [4]int
	var inserted []int64
	maxEven := int64(cfg.InitialRows) * 2
	for i := 0; i < cfg.Ops; i++ {
		op := i % 4
		v := vals[i%len(vals)]
		getKey := 2 * (1 + rng.Int63n(int64(cfg.InitialRows)))
		oddKey := 2*rng.Int63n(maxEven/2) + 1
		if op == 2 && len(inserted) == 0 {
			tr.Insert(key(oddKey), v)
			inserted = append(inserted, oddKey)
		}
		start := time.Now()
		switch op {
		case 0:
			// A read hands back a VO that must regenerate the root hash —
			// that regeneration is the MB-Tree's verification work, the
			// counterpart of VeriDB's RSWS maintenance.
			got, proof, ok := tr.Get(key(getKey))
			if !ok {
				return OpLatencies{}, fmt.Errorf("bench: mbtree lost key %d", getKey)
			}
			if err := mbtree.Verify(root, key(getKey), got, true, proof); err != nil {
				return OpLatencies{}, err
			}
		case 1:
			root = tr.Insert(key(oddKey), v)
			inserted = append(inserted, oddKey)
		case 2:
			k := inserted[len(inserted)-1]
			inserted = inserted[:len(inserted)-1]
			root, _ = tr.Delete(key(k))
		case 3:
			root = tr.Insert(key(getKey), v) // replace = update
		}
		total[op] += time.Since(start)
		counts[op]++
	}
	out := OpLatencies{Counts: counts}
	out.Get = total[0] / time.Duration(counts[0])
	out.Insert = total[1] / time.Duration(counts[1])
	out.Delete = total[2] / time.Duration(counts[2])
	out.Update = total[3] / time.Duration(counts[3])
	return out, nil
}
