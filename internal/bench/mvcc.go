package bench

// MVCC snapshot-read benchmark: the tentpole measurement for snapshot-
// consistent verified scans. A no-reader TPC-C run sets the writer
// baseline; the concurrent run adds a reader that continuously pins
// snapshots and drives long verified scans over the stock table,
// asserting repeat-scan bit-identity (two scans of the same pinned
// snapshot must return byte-identical rows no matter what the writers
// do in between). Snapshot readers take no write latches past chain
// verification, so writer throughput should retain ≥ 90% of baseline.

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"veridb/internal/enclave"
	"veridb/internal/record"
	"veridb/internal/storage"
	"veridb/internal/vmem"
	"veridb/internal/workload/tpcc"
)

// MVCCConfig sizes the snapshot-read benchmark.
type MVCCConfig struct {
	Workload tpcc.Config
	// Duration each phase (baseline, concurrent) runs for.
	Duration time.Duration
	// Clients is the TPC-C writer count (default 8).
	Clients int
	// VerifyEvery paces the background verifier (0 disables).
	VerifyEvery int
	// TableShards is the per-table hash-shard count (0 or 1: unsharded).
	TableShards int
	Seed        int64
}

func (c MVCCConfig) withDefaults() MVCCConfig {
	if c.Workload.Warehouses == 0 {
		c.Workload = tpcc.Config{Warehouses: 20, Customers: 10, Items: 200}
	}
	if c.Duration == 0 {
		c.Duration = 2 * time.Second
	}
	if c.Clients == 0 {
		c.Clients = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// MVCCRun is the BENCH_mvcc.json payload.
type MVCCRun struct {
	Warehouses int
	Clients    int
	Shards     int
	DurationMS int64
	// BaselineTPS is writer throughput with no concurrent readers.
	BaselineTPS float64
	// ConcurrentTPS is writer throughput with the snapshot reader running.
	ConcurrentTPS float64
	// Retention is ConcurrentTPS / BaselineTPS (the ≥ 0.9 target).
	Retention float64
	// ReaderSnapshots counts pinned snapshots the reader completed; every
	// one was scanned twice with byte-identical results.
	ReaderSnapshots int
	// ReaderRows is the total rows the reader drained across all scans.
	ReaderRows int
}

// mvccPhase runs the TPC-C writers for cfg.Duration, optionally with the
// snapshot reader, over a freshly populated store.
func mvccPhase(cfg MVCCConfig, withReader bool) (tps float64, snaps, rows int, err error) {
	mem, err := vmem.New(enclave.NewForTest(uint64(cfg.Seed)), vmem.Config{Partitions: 16})
	if err != nil {
		return 0, 0, 0, err
	}
	st := storage.NewStore(mem)
	if cfg.TableShards > 0 {
		st.SetDefaultShards(cfg.TableShards)
	}
	tables, err := tpcc.CreateTables(st)
	if err != nil {
		return 0, 0, 0, err
	}
	if err := tpcc.Populate(tables, cfg.Workload, cfg.Seed); err != nil {
		return 0, 0, 0, err
	}
	if cfg.VerifyEvery > 0 {
		if err := mem.StartVerifier(cfg.VerifyEvery); err != nil {
			return 0, 0, 0, err
		}
		defer mem.StopVerifier()
	}
	var done atomic.Bool
	var txns atomic.Int64
	errCh := make(chan error, cfg.Clients+1)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			w := tpcc.NewWorker(tables, cfg.Workload, c, cfg.Seed*1000+int64(c))
			for !done.Load() {
				if err := w.Run(); err != nil {
					errCh <- err
					return
				}
				txns.Add(1)
			}
		}(c)
	}
	var nSnaps, nRows atomic.Int64
	if withReader {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				snap := st.OpenSnapshot()
				first, n, err := mvccScanDigest(tables.Stock, snap)
				if err != nil {
					snap.Close()
					errCh <- err
					return
				}
				second, n2, err := mvccScanDigest(tables.Stock, snap)
				snap.Close()
				if err != nil {
					errCh <- err
					return
				}
				if n != n2 || !bytes.Equal(first, second) {
					errCh <- fmt.Errorf("bench: repeat scan of snapshot %d diverged: %d rows %x vs %d rows %x",
						snap.Seq(), n, first, n2, second)
					return
				}
				nSnaps.Add(1)
				nRows.Add(int64(n + n2))
			}
		}()
	}
	time.Sleep(cfg.Duration)
	done.Store(true)
	wg.Wait()
	select {
	case err := <-errCh:
		return 0, 0, 0, err
	default:
	}
	if err := mem.Alarm(); err != nil {
		return 0, 0, 0, fmt.Errorf("bench: verification alarm in clean MVCC run: %w", err)
	}
	return float64(txns.Load()) / cfg.Duration.Seconds(),
		int(nSnaps.Load()), int(nRows.Load()), nil
}

// mvccScanDigest drains one verified sequential scan of t as of snap and
// returns a digest of the row bytes plus the row count.
func mvccScanDigest(t *storage.Table, snap *storage.Snapshot) ([]byte, int, error) {
	it, err := t.SeqScanAt(snap)
	if err != nil {
		return nil, 0, err
	}
	defer it.Close()
	h := sha256.New()
	n := 0
	batch := storage.NewRowBatch(storage.DefaultBatchCapacity)
	for {
		k, err := it.NextBatch(batch)
		if err != nil {
			return nil, 0, err
		}
		if k == 0 {
			break
		}
		for i := 0; i < k; i++ {
			h.Write(record.Encode(&record.Record{Data: batch.Row(i)}))
			n++
		}
	}
	return h.Sum(nil), n, nil
}

// RunMVCC measures snapshot-read retention: writer throughput with and
// without a concurrent snapshot-scanning reader.
func RunMVCC(cfg MVCCConfig) (*MVCCRun, error) {
	cfg = cfg.withDefaults()
	base, _, _, err := mvccPhase(cfg, false)
	if err != nil {
		return nil, fmt.Errorf("bench: MVCC baseline phase: %w", err)
	}
	conc, snaps, rows, err := mvccPhase(cfg, true)
	if err != nil {
		return nil, fmt.Errorf("bench: MVCC concurrent phase: %w", err)
	}
	run := &MVCCRun{
		Warehouses:      cfg.Workload.Warehouses,
		Clients:         cfg.Clients,
		Shards:          cfg.TableShards,
		DurationMS:      cfg.Duration.Milliseconds(),
		BaselineTPS:     base,
		ConcurrentTPS:   conc,
		ReaderSnapshots: snaps,
		ReaderRows:      rows,
	}
	if base > 0 {
		run.Retention = conc / base
	}
	return run, nil
}
