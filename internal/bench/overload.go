package bench

// Overload-protection benchmark: the proof-under-load for deadline
// propagation, memory budgets and graceful shedding. An unloaded phase
// measures the p99 of authenticated point queries through the full
// portal path; the loaded phase then drives 4x the admission capacity
// (plus pathological workers: huge sorts, abandoned snapshot pins, slow
// LIMITed readers) against an instance with a bounded admission queue,
// a process memory budget, statement deadlines and a session idle
// reaper. Every delivered response is MAC-verified; every shed request
// must carry a typed overload refusal with a positive RetryAfter hint.
// After the storm drains, goroutine count, tracked memory (net of the
// response cache) and snapshot pins must return to baseline.

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"veridb/internal/client"
	"veridb/internal/core"
	"veridb/internal/govern"
	"veridb/internal/storage"
)

// OverloadConfig sizes the overload benchmark.
type OverloadConfig struct {
	// Rows seeds the scanned table.
	Rows int
	// Duration is the loaded-phase storm length.
	Duration time.Duration
	// Workers is the point-query worker count (offered load; default 8,
	// 4x the default MaxConcurrent of 2).
	Workers int
	// MaxConcurrent / QueueDepth shape the admission gate under test.
	MaxConcurrent int
	QueueDepth    int
	Seed          uint64
}

func (c OverloadConfig) withDefaults() OverloadConfig {
	if c.Rows == 0 {
		c.Rows = 2000
	}
	if c.Duration == 0 {
		c.Duration = 2 * time.Second
	}
	if c.Workers == 0 {
		c.Workers = 8
	}
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 2
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// OverloadRun is the BENCH_overload.json payload.
type OverloadRun struct {
	Rows          int   `json:"rows"`
	Workers       int   `json:"workers"`
	MaxConcurrent int   `json:"max_concurrent"`
	QueueDepth    int   `json:"queue_depth"`
	DurationMS    int64 `json:"duration_ms"`

	// UnloadedP99 / LoadedP99 are point-query latencies through the
	// authenticated portal path, one worker vs. the full storm (non-shed
	// responses only). P99Ratio is their quotient (target: <= 3).
	UnloadedP99US float64 `json:"unloaded_p99_us"`
	LoadedP99US   float64 `json:"loaded_p99_us"`
	P99Ratio      float64 `json:"p99_ratio"`

	// Delivered counts MAC-verified non-shed responses (successes and
	// authenticated execution errors); Shed counts typed overload
	// refusals, every one carrying a positive RetryAfter hint.
	Delivered        int64 `json:"delivered"`
	Shed             int64 `json:"shed"`
	AllShedRetryable bool  `json:"all_shed_retryable"`
	// Timeouts counts statements cancelled by the statement deadline,
	// SessionsExpired abandoned pins the idle reaper released, and
	// BudgetDenied reservations refused by the memory budget — each
	// pathological worker must actually trip its protection.
	Timeouts        int64 `json:"timeouts"`
	SessionsExpired int64 `json:"sessions_expired"`
	BudgetDenied    int64 `json:"budget_denied"`

	// MemHighWater is the budget's peak tracked bytes during the storm.
	MemHighWater int64 `json:"mem_high_water"`
	// BaselineMem is the post-seed tracked memory floor (version-chain
	// images of the seeded rows) the leak check compares against.
	BaselineMem int64 `json:"baseline_mem"`
	// Post-drain leak checks: tracked memory net of the response cache
	// and the seed floor (must be 0), live snapshot pins, and goroutines
	// vs. the pre-open baseline.
	PostDrainMemUsed      int64 `json:"post_drain_mem_used"`
	PostDrainPins         int   `json:"post_drain_pins"`
	BaselineGoroutines    int   `json:"baseline_goroutines"`
	PostCloseGoroutines   int   `json:"post_close_goroutines"`
	ResponseCacheBytes    int64 `json:"response_cache_bytes"`
	ResponseCacheEntries  int   `json:"response_cache_entries"`
	ResponseCacheEvicted  int64 `json:"response_cache_evicted"`
	AdmissionAdmitted     int64 `json:"admission_admitted"`
	AdmissionQueuedOnWait int64 `json:"admission_queued"`
}

// overloadSeed opens a database, seeds the kv table and provisions n
// client credentials named w0..w(n-1). The config mirrors the public
// package's defaults (16 RSWS partitions, 256-row batches, 128-entry plan
// cache) so the measured path matches what veridb.Open serves.
func overloadSeed(cfg OverloadConfig, ccfg core.Config, nClients int) (*core.DB, []*client.Client, error) {
	ccfg.Seed = cfg.Seed
	ccfg.Memory.Partitions = 16
	ccfg.ExecBatchSize = storage.DefaultBatchCapacity
	ccfg.PlanCacheSize = 128
	db, err := core.Open(ccfg)
	if err != nil {
		return nil, nil, err
	}
	if _, err := db.Execute(`CREATE TABLE kv (id INT PRIMARY KEY, val INT)`); err != nil {
		db.Close()
		return nil, nil, err
	}
	for i := 0; i < cfg.Rows; i++ {
		if _, err := db.Execute(fmt.Sprintf(`INSERT INTO kv VALUES (%d, %d)`, i, (i*7919)%cfg.Rows)); err != nil {
			db.Close()
			return nil, nil, err
		}
	}
	clients := make([]*client.Client, nClients)
	for i := range clients {
		id := fmt.Sprintf("w%d", i)
		key := []byte(fmt.Sprintf("overload-key-%02d", i))
		db.Enclave().ProvisionMACKey(id, key)
		clients[i] = client.New(id, key)
	}
	return db, clients, nil
}

// overloadPoint issues one authenticated point query and verifies the
// response MAC. It returns the latency, whether the response was a shed
// refusal (with its typed error), and any protocol failure.
func overloadPoint(db *core.DB, c *client.Client, id int) (time.Duration, *govern.OverloadedError, error) {
	req := c.NewRequest(fmt.Sprintf(`SELECT val FROM kv WHERE id = %d`, id))
	start := time.Now()
	resp, err := db.Portal().Serve(req)
	lat := time.Since(start)
	if err != nil {
		return 0, nil, fmt.Errorf("bench: portal refused authenticated request: %w", err)
	}
	verr := c.VerifyResponse(req, resp)
	if verr == nil {
		return lat, nil, nil
	}
	var oe *govern.OverloadedError
	if errors.As(verr, &oe) {
		return lat, oe, nil
	}
	var srvErr *client.ServerError
	if errors.As(verr, &srvErr) {
		// Authenticated execution error (deadline, budget, expiry):
		// delivered and MAC-verified, just not a success.
		return lat, nil, nil
	}
	return 0, nil, fmt.Errorf("bench: response failed verification: %w", verr)
}

// unloadedP99 measures the point-query p99 with one worker and no
// governors — the denominator for the loaded-phase latency bound.
func unloadedP99(cfg OverloadConfig) (time.Duration, error) {
	db, clients, err := overloadSeed(cfg, core.Config{}, 1)
	if err != nil {
		return 0, err
	}
	defer db.Close()
	const samples = 1000
	lats := make([]time.Duration, 0, samples)
	for i := 0; i < samples; i++ {
		lat, oe, err := overloadPoint(db, clients[0], i%cfg.Rows)
		if err != nil {
			return 0, err
		}
		if oe != nil {
			return 0, fmt.Errorf("bench: shed with no admission gate configured")
		}
		lats = append(lats, lat)
	}
	_, p99 := latencyPercentiles(lats)
	return p99, nil
}

// RunOverload drives the storm and returns the measured run. Violations
// of the protection invariants (unverifiable responses, sheds without a
// retry hint, leaked pins/memory/goroutines) are errors, not data.
func RunOverload(cfg OverloadConfig) (*OverloadRun, error) {
	cfg = cfg.withDefaults()
	basep99, err := unloadedP99(cfg)
	if err != nil {
		return nil, fmt.Errorf("bench: unloaded phase: %w", err)
	}
	// Queued statements wait at most ~one unloaded p99 before shedding:
	// the bounded-latency contract (non-shed p99 <= 3x unloaded) is an
	// admission-policy property, so the bench sets the policy to match.
	maxWait := basep99
	if maxWait < 100*time.Microsecond {
		maxWait = 100 * time.Microsecond
	}
	if maxWait > 50*time.Millisecond {
		maxWait = 50 * time.Millisecond
	}

	runtime.GC()
	baselineG := runtime.NumGoroutine()

	// +3 pathological clients: sorter, abandoner, slow reader.
	nClients := cfg.Workers + 3
	db, clients, err := overloadSeed(cfg, core.Config{
		StatementTimeout:        200 * time.Millisecond,
		MemBudget:               64 << 20,
		MaxConcurrentStatements: cfg.MaxConcurrent,
		AdmissionQueueDepth:     cfg.QueueDepth,
		AdmissionMaxWait:        maxWait,
		SessionMaxIdle:          50 * time.Millisecond,
		// A tight cache bound exercises byte eviction continuously and
		// keeps GC pauses (heap churn) out of the latency tail.
		ResponseCacheBytes: 2 << 20,
	}, nClients)
	if err != nil {
		return nil, fmt.Errorf("bench: loaded phase: %w", err)
	}
	// The seeded rows' version-chain images are tracked, legitimate,
	// persistent memory: the leak check is against this floor, not zero.
	baselineMem := db.GovernStats().MemUsed

	var (
		done      atomic.Bool
		delivered atomic.Int64
		shed      atomic.Int64
		badShed   atomic.Int64
		timeouts  atomic.Int64
		latMu     sync.Mutex
		lats      []time.Duration
	)
	errCh := make(chan error, nClients)
	var wg sync.WaitGroup

	// Point-query storm: Workers clients issuing back to back, honoring
	// the RetryAfter hint when shed (the protocol's backpressure).
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := clients[w]
			for i := w; !done.Load(); i += 13 {
				lat, oe, err := overloadPoint(db, c, i%cfg.Rows)
				if err != nil {
					errCh <- err
					return
				}
				if oe != nil {
					shed.Add(1)
					if oe.RetryAfter <= 0 {
						badShed.Add(1)
					}
					sleep := oe.RetryAfter
					if sleep > 20*time.Millisecond {
						sleep = 20 * time.Millisecond
					}
					time.Sleep(sleep)
					continue
				}
				delivered.Add(1)
				latMu.Lock()
				lats = append(lats, lat)
				latMu.Unlock()
			}
		}(w)
	}

	pathological := func(c *client.Client, query func(i int) string, onServerErr func(msg string)) {
		defer wg.Done()
		for i := 0; !done.Load(); i++ {
			req := c.NewRequest(query(i))
			resp, err := db.Portal().Serve(req)
			if err != nil {
				errCh <- fmt.Errorf("bench: portal refused authenticated request: %w", err)
				return
			}
			verr := c.VerifyResponse(req, resp)
			if verr == nil {
				continue
			}
			var oe *govern.OverloadedError
			if errors.As(verr, &oe) {
				shed.Add(1)
				if oe.RetryAfter <= 0 {
					badShed.Add(1)
				}
				time.Sleep(oe.RetryAfter)
				continue
			}
			var srvErr *client.ServerError
			if errors.As(verr, &srvErr) {
				onServerErr(srvErr.Msg)
				continue
			}
			errCh <- fmt.Errorf("bench: response failed verification: %w", verr)
			return
		}
	}

	// Sorter: full-table ORDER BY under a tiny authenticated per-request
	// deadline — the materialisation races the deadline and loses, proving
	// cancellation releases the sort's reservation and latches mid-flight.
	sortC := clients[cfg.Workers]
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			req := sortC.NewRequestTimeout(`SELECT * FROM kv ORDER BY val`, time.Millisecond)
			resp, err := db.Portal().Serve(req)
			if err != nil {
				errCh <- fmt.Errorf("bench: portal refused authenticated request: %w", err)
				return
			}
			verr := sortC.VerifyResponse(req, resp)
			if verr == nil {
				continue
			}
			var oe *govern.OverloadedError
			if errors.As(verr, &oe) {
				shed.Add(1)
				if oe.RetryAfter <= 0 {
					badShed.Add(1)
				}
				time.Sleep(oe.RetryAfter)
				continue
			}
			var srvErr *client.ServerError
			if !errors.As(verr, &srvErr) {
				errCh <- fmt.Errorf("bench: response failed verification: %w", verr)
				return
			}
			if strings.Contains(srvErr.Msg, "deadline") || strings.Contains(srvErr.Msg, "cancel") {
				timeouts.Add(1)
			}
		}
	}()
	// Abandoner: pins snapshots and never commits; the idle reaper must
	// release them (the expiry error on the next pin attempt is expected).
	wg.Add(1)
	go pathological(clients[cfg.Workers+1], func(int) string {
		return `BEGIN SNAPSHOT`
	}, func(msg string) {
		time.Sleep(20 * time.Millisecond) // let the reaper catch the pin
	})
	// Slow reader: LIMITed range scans with tiny client deadlines.
	slowC := clients[cfg.Workers+2]
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !done.Load(); i++ {
			req := slowC.NewRequestTimeout(`SELECT id FROM kv WHERE val < 1000 LIMIT 64`, 100*time.Millisecond)
			resp, err := db.Portal().Serve(req)
			if err != nil {
				errCh <- fmt.Errorf("bench: portal refused authenticated request: %w", err)
				return
			}
			if verr := slowC.VerifyResponse(req, resp); verr != nil {
				var srvErr *client.ServerError
				if !errors.As(verr, &srvErr) {
					errCh <- fmt.Errorf("bench: response failed verification: %w", verr)
					return
				}
				var oe *govern.OverloadedError
				if errors.As(verr, &oe) {
					shed.Add(1)
					if oe.RetryAfter <= 0 {
						badShed.Add(1)
					}
					time.Sleep(oe.RetryAfter)
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(cfg.Duration)
	done.Store(true)
	wg.Wait()
	select {
	case err := <-errCh:
		db.Close()
		return nil, err
	default:
	}

	// Drain: admission must empty, abandoned pins must expire, and the
	// budget must return to exactly the response-cache residue.
	var gs core.GovernStats
	deadline := time.Now().Add(3 * time.Second)
	for {
		gs = db.GovernStats()
		if gs.Admission.InFlight == 0 && gs.Admission.Waiting == 0 &&
			gs.SnapshotPins == 0 && gs.MemUsed == gs.ResponseCache.Bytes+baselineMem {
			break
		}
		if time.Now().After(deadline) {
			db.Close()
			return nil, fmt.Errorf("bench: storm did not drain: inflight=%d waiting=%d pins=%d mem=%d cache=%d baseline=%d",
				gs.Admission.InFlight, gs.Admission.Waiting, gs.SnapshotPins,
				gs.MemUsed, gs.ResponseCache.Bytes, baselineMem)
		}
		time.Sleep(10 * time.Millisecond)
	}
	db.Close()

	// Goroutines: everything the storm spawned (merge producers, reaper,
	// verifier) must be gone after Close.
	var postG int
	for i := 0; ; i++ {
		runtime.GC()
		postG = runtime.NumGoroutine()
		if postG <= baselineG+2 || i >= 50 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if postG > baselineG+2 {
		return nil, fmt.Errorf("bench: goroutine leak: baseline %d, after close %d", baselineG, postG)
	}
	if badShed.Load() > 0 {
		return nil, fmt.Errorf("bench: %d shed responses lacked a RetryAfter hint", badShed.Load())
	}

	_, loadedP99 := latencyPercentiles(lats)
	run := &OverloadRun{
		Rows:          cfg.Rows,
		Workers:       cfg.Workers,
		MaxConcurrent: cfg.MaxConcurrent,
		QueueDepth:    cfg.QueueDepth,
		DurationMS:    cfg.Duration.Milliseconds(),

		UnloadedP99US: float64(basep99.Nanoseconds()) / 1e3,
		LoadedP99US:   float64(loadedP99.Nanoseconds()) / 1e3,

		Delivered:        delivered.Load(),
		Shed:             shed.Load(),
		AllShedRetryable: badShed.Load() == 0,
		Timeouts:         timeouts.Load(),
		SessionsExpired:  gs.SessionsExpired,
		BudgetDenied:     gs.MemDenied,

		MemHighWater:          gs.MemHighWater,
		BaselineMem:           baselineMem,
		PostDrainMemUsed:      gs.MemUsed - gs.ResponseCache.Bytes - baselineMem,
		PostDrainPins:         gs.SnapshotPins,
		BaselineGoroutines:    baselineG,
		PostCloseGoroutines:   postG,
		ResponseCacheBytes:    gs.ResponseCache.Bytes,
		ResponseCacheEntries:  gs.ResponseCache.Entries,
		ResponseCacheEvicted:  gs.ResponseCache.Evictions,
		AdmissionAdmitted:     gs.Admission.Admitted,
		AdmissionQueuedOnWait: gs.Admission.Queued,
	}
	if basep99 > 0 {
		run.P99Ratio = float64(loadedP99) / float64(basep99)
	}
	return run, nil
}
