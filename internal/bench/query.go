package bench

import (
	"fmt"
	"time"

	"veridb/internal/core"
	"veridb/internal/engine"
	"veridb/internal/record"
	"veridb/internal/sql"
)

// ExecBatchConfig sizes the vectorized-execution sweep: the same query set
// runs at each batch size over the same verified table, so the only moving
// part is how many rows each operator-to-operator call hands over.
type ExecBatchConfig struct {
	// Rows in the fact table (default 30 000).
	Rows int
	// Sizes is the ExecBatchSize sweep (default 1, 64, 256; 1 is the
	// legacy tuple-at-a-time path).
	Sizes []int
	// Reps per measurement; the minimum is kept (default 3).
	Reps int
	Seed int64
}

func (c ExecBatchConfig) withDefaults() ExecBatchConfig {
	if c.Rows <= 0 {
		c.Rows = 30_000
	}
	if len(c.Sizes) == 0 {
		c.Sizes = []int{1, 64, 256}
	}
	if c.Reps <= 0 {
		c.Reps = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ExecBatchPoint is one (operator, batch size) measurement.
type ExecBatchPoint struct {
	// Op names the operator dominating the measured plan.
	Op        string
	BatchSize int
	// Latency is the best-of-reps execution time (plan excluded).
	Latency time.Duration
	// Rows the query returned (sanity: identical across batch sizes).
	Rows int
}

// ExecBatchRun is the BENCH_query.json payload.
type ExecBatchRun struct {
	TableRows int
	Sizes     []int
	Points    []ExecBatchPoint
	// Speedup maps operator name to latency(batch=1) / latency(largest
	// batch) — above 1.0 means vectorization won.
	Speedup map[string]float64
}

// execBatchQueries maps each measurement to the plan it exercises. Each
// query is chosen so one operator dominates: the bare scan+project, a
// selective filter, a grouped aggregate, a sort with limit, and a join.
var execBatchJobs = []struct {
	op  string
	sql string
}{
	{"scan", `SELECT id, cat, qty, price FROM items`},
	{"filter", `SELECT id FROM items WHERE qty > 6 AND cat <> 3`},
	{"aggregate", `SELECT cat, COUNT(*), SUM(price), AVG(qty) FROM items GROUP BY cat`},
	{"sort", `SELECT id FROM items ORDER BY price DESC LIMIT 100`},
	{"join", `SELECT i.id, c.label FROM items i JOIN cats c ON i.cat = c.cat WHERE i.qty = 12`},
}

// execBatchDB opens a database at one batch size and loads the dataset
// through the verified write path.
func execBatchDB(cfg ExecBatchConfig, size int) (*core.DB, error) {
	db, err := core.Open(core.Config{Seed: uint64(cfg.Seed), ExecBatchSize: size})
	if err != nil {
		return nil, err
	}
	stmts := []string{
		`CREATE TABLE items (id INT PRIMARY KEY, cat INT, qty INT, price FLOAT)`,
		`CREATE TABLE cats (cat INT PRIMARY KEY, label TEXT)`,
	}
	for _, ddl := range stmts {
		if _, err := db.Execute(ddl); err != nil {
			return nil, err
		}
	}
	items, err := db.Store().Table("items")
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Rows; i++ {
		row := record.Tuple{
			record.Int(int64(i)), record.Int(int64(i % 16)),
			record.Int(int64(i % 13)), record.Float(float64(i) * 0.25),
		}
		if err := items.Insert(row); err != nil {
			return nil, err
		}
	}
	cats, err := db.Store().Table("cats")
	if err != nil {
		return nil, err
	}
	for c := 0; c < 16; c++ {
		if err := cats.Insert(record.Tuple{record.Int(int64(c)), record.Text(fmt.Sprintf("cat-%d", c))}); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// runExecBatchQuery plans and drains one query the way core.DB does for
// the given batch size, returning the drain time and row count.
func runExecBatchQuery(db *core.DB, query string, size int) (time.Duration, int, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return 0, 0, err
	}
	op, err := db.Plan(stmt.(*sql.Select))
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	var rows []record.Tuple
	if size > 1 {
		rows, err = engine.DrainBatches(engine.AsBatch(op), size)
	} else {
		rows, err = engine.Drain(op)
	}
	if err != nil {
		return 0, 0, err
	}
	return time.Since(start), len(rows), nil
}

// RunExecBatch measures per-operator query latency across execution batch
// sizes (Fig. 14 shape: the same plans, scalar vs. vectorized). Row counts
// are asserted identical across sizes — a batch-size-dependent result is a
// correctness bug, not a data point.
func RunExecBatch(cfg ExecBatchConfig) (*ExecBatchRun, error) {
	cfg = cfg.withDefaults()
	run := &ExecBatchRun{TableRows: cfg.Rows, Sizes: cfg.Sizes, Speedup: make(map[string]float64)}
	rowsAt := make(map[string]int) // op -> result rows at the first size
	best := make(map[int]map[string]time.Duration)
	for _, size := range cfg.Sizes {
		if size < 1 {
			return nil, fmt.Errorf("bench: batch size %d out of range", size)
		}
		db, err := execBatchDB(cfg, size)
		if err != nil {
			return nil, err
		}
		best[size] = make(map[string]time.Duration)
		for _, j := range execBatchJobs {
			var lat time.Duration
			var nrows int
			for rep := 0; rep < cfg.Reps; rep++ {
				d, n, err := runExecBatchQuery(db, j.sql, size)
				if err != nil {
					db.Close()
					return nil, fmt.Errorf("bench: %s at batch %d: %w", j.op, size, err)
				}
				if rep == 0 || d < lat {
					lat = d
				}
				nrows = n
			}
			if want, ok := rowsAt[j.op]; ok && want != nrows {
				db.Close()
				return nil, fmt.Errorf("bench: %s returned %d rows at batch %d, %d at batch %d",
					j.op, nrows, size, want, cfg.Sizes[0])
			}
			rowsAt[j.op] = nrows
			best[size][j.op] = lat
			run.Points = append(run.Points, ExecBatchPoint{
				Op: j.op, BatchSize: size, Latency: lat, Rows: nrows,
			})
		}
		db.Close()
	}
	// Speedup of the largest batch over tuple-at-a-time, when both ran.
	smallest, largest := cfg.Sizes[0], cfg.Sizes[0]
	for _, s := range cfg.Sizes {
		if s < smallest {
			smallest = s
		}
		if s > largest {
			largest = s
		}
	}
	if smallest != largest {
		for _, j := range execBatchJobs {
			if b := best[largest][j.op]; b > 0 {
				run.Speedup[j.op] = float64(best[smallest][j.op]) / float64(b)
			}
		}
	}
	return run, nil
}
