package bench

import (
	"fmt"
	"testing"
)

func TestRunExecBatchSmall(t *testing.T) {
	run, err := RunExecBatch(ExecBatchConfig{Rows: 2000, Sizes: []int{1, 8}, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Points) != 2*len(execBatchJobs) {
		t.Fatalf("points = %d", len(run.Points))
	}
	for _, pt := range run.Points {
		if pt.Latency <= 0 {
			t.Fatalf("degenerate point %+v", pt)
		}
	}
	// RunExecBatch fails internally on row-count divergence; pin the scan
	// and aggregate shapes here too.
	byOp := make(map[string]int)
	for _, pt := range run.Points {
		byOp[pt.Op] = pt.Rows
	}
	if byOp["scan"] != 2000 || byOp["aggregate"] != 16 || byOp["sort"] != 100 {
		t.Fatalf("row counts %v", byOp)
	}
	if len(run.Speedup) != len(execBatchJobs) {
		t.Fatalf("speedup entries %v", run.Speedup)
	}
}

// BenchmarkExecBatch times the full-scan drain at each batch size so
// `go test -bench ExecBatch` tracks the vectorization win across PRs.
func BenchmarkExecBatch(b *testing.B) {
	for _, size := range []int{1, 64, 256} {
		b.Run(fmt.Sprintf("batch%d", size), func(b *testing.B) {
			cfg := ExecBatchConfig{Rows: 20_000}.withDefaults()
			db, err := execBatchDB(cfg, size)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := runExecBatchQuery(db, execBatchJobs[0].sql, size); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
