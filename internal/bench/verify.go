package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"veridb/internal/enclave"
	"veridb/internal/vmem"
)

// VerifyScalingConfig sizes the verification-scaling experiment: a memory
// of Pages pages, each holding RecordsPerPage records of RecordBytes, is
// fully verified under each worker count in Workers. Full-scan mode is
// forced so every pass re-hashes every cell — the workload whose PRF cost
// dominates verification (§6.1) and that the parallel pipeline targets.
type VerifyScalingConfig struct {
	Pages          int   // distinct pages (recorded run: ≥10k)
	RecordsPerPage int   // records inserted per page
	RecordBytes    int   // bytes per record
	Partitions     int   // RSWS partitions (§4.3)
	Passes         int   // timed full passes per point
	Workers        []int // worker counts to sweep
	Seed           int64
}

func (c VerifyScalingConfig) withDefaults() VerifyScalingConfig {
	if c.Pages <= 0 {
		c.Pages = 10_000
	}
	if c.RecordsPerPage <= 0 {
		c.RecordsPerPage = 8
	}
	if c.RecordBytes <= 0 {
		c.RecordBytes = 64
	}
	if c.Partitions <= 0 {
		c.Partitions = 16
	}
	if c.Passes <= 0 {
		c.Passes = 3
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1, 2, 4, 8}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// VerifyScalingPoint is one worker count's measurement.
type VerifyScalingPoint struct {
	Workers            int           `json:"workers"`
	FullScan           time.Duration `json:"full_scan_ns"`
	PagesPerSecond     float64       `json:"pages_per_second"`
	RotationsPerSecond float64       `json:"rotations_per_second"`
	Speedup            float64       `json:"speedup_vs_serial"`
	Checksum           string        `json:"resident_checksum"`
}

// VerifyScalingRun is the whole sweep, shaped for JSON emission
// (BENCH_verify.json) so the perf trajectory is comparable across PRs.
type VerifyScalingRun struct {
	Pages          int                  `json:"pages"`
	RecordsPerPage int                  `json:"records_per_page"`
	RecordBytes    int                  `json:"record_bytes"`
	Partitions     int                  `json:"partitions"`
	Passes         int                  `json:"passes"`
	Points         []VerifyScalingPoint `json:"points"`
}

// setupVerifyMemory builds the scaling experiment's memory: Pages pages
// filled with deterministic records. The PRF key derives from the seed, so
// two memories built from the same config hold identical verified sets and
// must produce identical resident checksums when scanned.
func setupVerifyMemory(cfg VerifyScalingConfig, workers int) (*vmem.Memory, error) {
	m, err := vmem.New(enclave.NewForTest(uint64(cfg.Seed)), vmem.Config{
		Partitions:    cfg.Partitions,
		FullScan:      true,
		VerifyWorkers: workers,
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rec := make([]byte, cfg.RecordBytes)
	for p := 0; p < cfg.Pages; p++ {
		pid, err := m.NewPage()
		if err != nil {
			return nil, err
		}
		for r := 0; r < cfg.RecordsPerPage; r++ {
			rng.Read(rec)
			if _, err := m.Insert(pid, rec); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

// RunVerifyScaling measures full-memory verification latency and epoch-
// rotation throughput at each worker count. Every point's resident
// checksum must agree with the serial point's: the parallel XOR fold is
// exact, not approximate — a mismatch is returned as an error.
func RunVerifyScaling(cfg VerifyScalingConfig) (*VerifyScalingRun, error) {
	cfg = cfg.withDefaults()
	run := &VerifyScalingRun{
		Pages:          cfg.Pages,
		RecordsPerPage: cfg.RecordsPerPage,
		RecordBytes:    cfg.RecordBytes,
		Partitions:     cfg.Partitions,
		Passes:         cfg.Passes,
	}
	var serialChecksum string
	var serialLatency time.Duration
	for _, w := range cfg.Workers {
		m, err := setupVerifyMemory(cfg, w)
		if err != nil {
			return nil, err
		}
		if err := m.VerifyAll(); err != nil { // warm-up pass, untimed
			return nil, fmt.Errorf("bench: warm-up pass (workers=%d): %w", w, err)
		}
		// Settle the heap so the first point doesn't absorb the GC cost of
		// growing into a fresh multi-thousand-page memory while later points
		// run against an already-sized heap.
		runtime.GC()
		before := m.Stats()
		start := time.Now()
		for p := 0; p < cfg.Passes; p++ {
			if err := m.VerifyAll(); err != nil {
				return nil, fmt.Errorf("bench: clean memory raised alarm (workers=%d): %w", w, err)
			}
		}
		elapsed := time.Since(start)
		after := m.Stats()
		pt := VerifyScalingPoint{
			Workers:            w,
			FullScan:           elapsed / time.Duration(cfg.Passes),
			PagesPerSecond:     float64(after.Scans-before.Scans) / elapsed.Seconds(),
			RotationsPerSecond: float64(after.Rotations-before.Rotations) / elapsed.Seconds(),
			Checksum:           m.ResidentChecksum().String(),
		}
		if w == 1 || serialChecksum == "" {
			serialChecksum = pt.Checksum
			serialLatency = pt.FullScan
		}
		if pt.Checksum != serialChecksum {
			return nil, fmt.Errorf("bench: workers=%d resident checksum %s != serial %s (parallel fold must be bit-identical)",
				w, pt.Checksum, serialChecksum)
		}
		if pt.FullScan > 0 {
			pt.Speedup = float64(serialLatency) / float64(pt.FullScan)
		}
		run.Points = append(run.Points, pt)
	}
	return run, nil
}
