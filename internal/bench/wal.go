// Durability benchmark: what the authenticated WAL costs on the write
// path and what recovery costs at restart. Each configuration runs the
// same insert workload three ways — in-memory (the paper's baseline),
// WAL-only durability (append + fsync per acked statement), and WAL +
// periodic checkpoints — then reopens the durable directory and times
// recovery (manifest/segment load, WAL tail replay, VerifyAll admission
// gate). The interesting numbers: the per-statement price of the
// fsync'd, MACed append, how checkpointing bounds recovery time, and
// recovery throughput in statements per second.
package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"veridb/internal/core"
)

// WALBenchConfig sizes the durability experiment.
type WALBenchConfig struct {
	Statements      int    // workload length per configuration
	CheckpointEvery int    // checkpoint interval for the checkpointed run
	Seed            uint64 // enclave PRF seed (determinism)
	Dir             string // scratch directory (empty = os.MkdirTemp)
}

func (c WALBenchConfig) withDefaults() WALBenchConfig {
	if c.Statements <= 0 {
		c.Statements = 2000
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 500
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// WALBenchMode is one configuration's measurement.
type WALBenchMode struct {
	Mode string `json:"mode"` // memory | wal | wal+checkpoint
	// AppendThroughput is acked statements per second during the
	// workload (for durable modes, each ack paid a MACed append+fsync).
	AppendThroughput float64 `json:"append_stmts_per_sec"`
	// MeanAppend is the mean wall time per acked statement.
	MeanAppend time.Duration `json:"mean_append_ns"`
	// P50Append / P99Append are per-statement ack latency percentiles.
	P50Append time.Duration `json:"p50_append_ns"`
	P99Append time.Duration `json:"p99_append_ns"`
	// Recovery is the full reopen latency: Open returning a verified
	// (or quarantined) image. Zero for the in-memory mode.
	Recovery time.Duration `json:"recovery_ns"`
	// RecoveredStatements is the WAL sequence number after recovery —
	// proof the whole workload survived.
	RecoveredStatements uint64 `json:"recovered_statements"`
	// WALBytes is the log size at shutdown (post-rotation tail for the
	// checkpointed mode).
	WALBytes int64 `json:"wal_bytes"`
}

// WALConcurrencyPoint is one cell of the concurrent-writer sweep: a
// client count crossed with group commit on or off. Latencies are
// per-statement ack times across every client; with group commit on,
// each ack still waited for its group's fsync — throughput gains come
// from amortising the fsync, never from acking early.
type WALConcurrencyPoint struct {
	Clients     int           `json:"clients"`
	GroupCommit bool          `json:"group_commit"`
	Throughput  float64       `json:"append_stmts_per_sec"`
	MeanAppend  time.Duration `json:"mean_append_ns"`
	P50Append   time.Duration `json:"p50_append_ns"`
	P99Append   time.Duration `json:"p99_append_ns"`
}

// WALBenchRun is the whole experiment, shaped for BENCH_wal.json.
type WALBenchRun struct {
	Statements      int            `json:"statements"`
	CheckpointEvery int            `json:"checkpoint_every"`
	Modes           []WALBenchMode `json:"modes"`
	// DurabilityOverhead is wal append throughput / memory throughput —
	// the fraction of baseline write speed that survives the fsync'd
	// authenticated append.
	DurabilityOverhead float64 `json:"wal_vs_memory_throughput_ratio"`
	// ConcurrencySweep crosses 1/2/4/8/16 concurrent writers with group
	// commit on and off over a shared durable database.
	ConcurrencySweep []WALConcurrencyPoint `json:"concurrency_sweep"`
}

// RunWALBench executes the experiment.
func RunWALBench(cfg WALBenchConfig) (*WALBenchRun, error) {
	cfg = cfg.withDefaults()
	scratch := cfg.Dir
	if scratch == "" {
		var err error
		scratch, err = os.MkdirTemp("", "veridb-walbench")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(scratch)
	}
	run := &WALBenchRun{Statements: cfg.Statements, CheckpointEvery: cfg.CheckpointEvery}
	modes := []struct {
		name string
		cfg  core.Config
	}{
		{"memory", core.Config{Seed: cfg.Seed}},
		{"wal", core.Config{Seed: cfg.Seed, DataDir: filepath.Join(scratch, "wal")}},
		{"wal+checkpoint", core.Config{
			Seed:            cfg.Seed,
			DataDir:         filepath.Join(scratch, "ckpt"),
			CheckpointEvery: cfg.CheckpointEvery,
		}},
	}
	for _, m := range modes {
		mode, err := runWALMode(m.name, m.cfg, cfg.Statements)
		if err != nil {
			return nil, fmt.Errorf("bench: wal mode %s: %w", m.name, err)
		}
		run.Modes = append(run.Modes, *mode)
	}
	if run.Modes[0].AppendThroughput > 0 {
		run.DurabilityOverhead = run.Modes[1].AppendThroughput / run.Modes[0].AppendThroughput
	}
	for _, clients := range []int{1, 2, 4, 8, 16} {
		for _, group := range []bool{false, true} {
			dir := filepath.Join(scratch, fmt.Sprintf("sweep-%d-%v", clients, group))
			pt, err := runWALConcurrent(clients, group, cfg.Statements, cfg.Seed, dir)
			if err != nil {
				return nil, fmt.Errorf("bench: wal sweep clients=%d group=%v: %w", clients, group, err)
			}
			run.ConcurrencySweep = append(run.ConcurrencySweep, *pt)
		}
	}
	return run, nil
}

// runWALConcurrent drives `clients` goroutines of inserts over disjoint
// key ranges against one durable database and reports aggregate
// throughput and per-ack latency percentiles. With group on, the commit
// pipeline runs with a 2ms window and an early close at the client
// count (every in-flight writer enqueued means nothing more can join
// the group); off is the serial one-fsync-per-statement path.
func runWALConcurrent(clients int, group bool, statements int, seed uint64, dir string) (*WALConcurrencyPoint, error) {
	c := core.Config{Seed: seed, DataDir: dir}
	if group {
		c.GroupCommitMaxDelay = 2 * time.Millisecond
		c.GroupCommitMaxBatch = clients
	}
	db, err := core.Open(c)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if _, err := db.Execute(`CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)`); err != nil {
		return nil, err
	}
	per := statements / clients
	if per < 1 {
		per = 1
	}
	lats := make([][]time.Duration, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lats[w] = make([]time.Duration, 0, per)
			for i := 0; i < per; i++ {
				k := w*per + i
				stmt := fmt.Sprintf(`INSERT INTO kv VALUES (%d, 'value-%08d')`, k, k)
				t0 := time.Now()
				if _, err := db.Execute(stmt); err != nil {
					errs[w] = err
					return
				}
				lats[w] = append(lats[w], time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var all []time.Duration
	var sum time.Duration
	for _, ls := range lats {
		all = append(all, ls...)
		for _, l := range ls {
			sum += l
		}
	}
	p50, p99 := latencyPercentiles(all)
	return &WALConcurrencyPoint{
		Clients:     clients,
		GroupCommit: group,
		Throughput:  float64(len(all)) / elapsed.Seconds(),
		MeanAppend:  sum / time.Duration(len(all)),
		P50Append:   p50,
		P99Append:   p99,
	}, nil
}

// latencyPercentiles returns the p50 and p99 of a sample set (zeroes for
// an empty set).
func latencyPercentiles(samples []time.Duration) (p50, p99 time.Duration) {
	if len(samples) == 0 {
		return 0, 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(s)-1))
		return s[i]
	}
	return at(0.50), at(0.99)
}

func runWALMode(name string, c core.Config, statements int) (*WALBenchMode, error) {
	db, err := core.Open(c)
	if err != nil {
		return nil, err
	}
	if _, err := db.Execute(`CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)`); err != nil {
		db.Close()
		return nil, err
	}
	lats := make([]time.Duration, 0, statements)
	start := time.Now()
	for i := 0; i < statements; i++ {
		stmt := fmt.Sprintf(`INSERT INTO kv VALUES (%d, 'value-%08d')`, i, i)
		t0 := time.Now()
		if _, err := db.Execute(stmt); err != nil {
			db.Close()
			return nil, err
		}
		lats = append(lats, time.Since(t0))
	}
	elapsed := time.Since(start)
	p50, p99 := latencyPercentiles(lats)
	mode := &WALBenchMode{
		Mode:             name,
		AppendThroughput: float64(statements) / elapsed.Seconds(),
		MeanAppend:       elapsed / time.Duration(statements),
		P50Append:        p50,
		P99Append:        p99,
	}
	if c.DataDir != "" {
		if path := db.WALPath(); path != "" {
			if fi, err := os.Stat(path); err == nil {
				mode.WALBytes = fi.Size()
			}
		}
	}
	db.Close()

	if c.DataDir != "" {
		recoverStart := time.Now()
		rdb, err := core.Open(c)
		if err != nil {
			return nil, err
		}
		mode.Recovery = time.Since(recoverStart)
		if qerr := rdb.QuarantineError(); qerr != nil {
			rdb.Close()
			return nil, fmt.Errorf("recovery quarantined: %w", qerr)
		}
		mode.RecoveredStatements = rdb.WALNextSeq()
		rdb.Close()
	}
	return mode, nil
}
