// Durability benchmark: what the authenticated WAL costs on the write
// path and what recovery costs at restart. Each configuration runs the
// same insert workload three ways — in-memory (the paper's baseline),
// WAL-only durability (append + fsync per acked statement), and WAL +
// periodic checkpoints — then reopens the durable directory and times
// recovery (manifest/segment load, WAL tail replay, VerifyAll admission
// gate). The interesting numbers: the per-statement price of the
// fsync'd, MACed append, how checkpointing bounds recovery time, and
// recovery throughput in statements per second.
package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"veridb/internal/core"
)

// WALBenchConfig sizes the durability experiment.
type WALBenchConfig struct {
	Statements      int    // workload length per configuration
	CheckpointEvery int    // checkpoint interval for the checkpointed run
	Seed            uint64 // enclave PRF seed (determinism)
	Dir             string // scratch directory (empty = os.MkdirTemp)
}

func (c WALBenchConfig) withDefaults() WALBenchConfig {
	if c.Statements <= 0 {
		c.Statements = 2000
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 500
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// WALBenchMode is one configuration's measurement.
type WALBenchMode struct {
	Mode string `json:"mode"` // memory | wal | wal+checkpoint
	// AppendThroughput is acked statements per second during the
	// workload (for durable modes, each ack paid a MACed append+fsync).
	AppendThroughput float64 `json:"append_stmts_per_sec"`
	// MeanAppend is the mean wall time per acked statement.
	MeanAppend time.Duration `json:"mean_append_ns"`
	// Recovery is the full reopen latency: Open returning a verified
	// (or quarantined) image. Zero for the in-memory mode.
	Recovery time.Duration `json:"recovery_ns"`
	// RecoveredStatements is the WAL sequence number after recovery —
	// proof the whole workload survived.
	RecoveredStatements uint64 `json:"recovered_statements"`
	// WALBytes is the log size at shutdown (post-rotation tail for the
	// checkpointed mode).
	WALBytes int64 `json:"wal_bytes"`
}

// WALBenchRun is the whole experiment, shaped for BENCH_wal.json.
type WALBenchRun struct {
	Statements      int            `json:"statements"`
	CheckpointEvery int            `json:"checkpoint_every"`
	Modes           []WALBenchMode `json:"modes"`
	// DurabilityOverhead is wal append throughput / memory throughput —
	// the fraction of baseline write speed that survives the fsync'd
	// authenticated append.
	DurabilityOverhead float64 `json:"wal_vs_memory_throughput_ratio"`
}

// RunWALBench executes the experiment.
func RunWALBench(cfg WALBenchConfig) (*WALBenchRun, error) {
	cfg = cfg.withDefaults()
	scratch := cfg.Dir
	if scratch == "" {
		var err error
		scratch, err = os.MkdirTemp("", "veridb-walbench")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(scratch)
	}
	run := &WALBenchRun{Statements: cfg.Statements, CheckpointEvery: cfg.CheckpointEvery}
	modes := []struct {
		name string
		cfg  core.Config
	}{
		{"memory", core.Config{Seed: cfg.Seed}},
		{"wal", core.Config{Seed: cfg.Seed, DataDir: filepath.Join(scratch, "wal")}},
		{"wal+checkpoint", core.Config{
			Seed:            cfg.Seed,
			DataDir:         filepath.Join(scratch, "ckpt"),
			CheckpointEvery: cfg.CheckpointEvery,
		}},
	}
	for _, m := range modes {
		mode, err := runWALMode(m.name, m.cfg, cfg.Statements)
		if err != nil {
			return nil, fmt.Errorf("bench: wal mode %s: %w", m.name, err)
		}
		run.Modes = append(run.Modes, *mode)
	}
	if run.Modes[0].AppendThroughput > 0 {
		run.DurabilityOverhead = run.Modes[1].AppendThroughput / run.Modes[0].AppendThroughput
	}
	return run, nil
}

func runWALMode(name string, c core.Config, statements int) (*WALBenchMode, error) {
	db, err := core.Open(c)
	if err != nil {
		return nil, err
	}
	if _, err := db.Execute(`CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)`); err != nil {
		db.Close()
		return nil, err
	}
	start := time.Now()
	for i := 0; i < statements; i++ {
		stmt := fmt.Sprintf(`INSERT INTO kv VALUES (%d, 'value-%08d')`, i, i)
		if _, err := db.Execute(stmt); err != nil {
			db.Close()
			return nil, err
		}
	}
	elapsed := time.Since(start)
	mode := &WALBenchMode{
		Mode:             name,
		AppendThroughput: float64(statements) / elapsed.Seconds(),
		MeanAppend:       elapsed / time.Duration(statements),
	}
	if c.DataDir != "" {
		if path := db.WALPath(); path != "" {
			if fi, err := os.Stat(path); err == nil {
				mode.WALBytes = fi.Size()
			}
		}
	}
	db.Close()

	if c.DataDir != "" {
		recoverStart := time.Now()
		rdb, err := core.Open(c)
		if err != nil {
			return nil, err
		}
		mode.Recovery = time.Since(recoverStart)
		if qerr := rdb.QuarantineError(); qerr != nil {
			rdb.Close()
			return nil, fmt.Errorf("recovery quarantined: %w", qerr)
		}
		mode.RecoveredStatements = rdb.WALNextSeq()
		rdb.Close()
	}
	return mode, nil
}
