package bench

// Wire-protocol benchmark: the proof for the pipelined binary path. A
// closed-loop load generator drives authenticated point queries over real
// TCP sockets against the full server stack (internal/server), sweeping
// protocol × concurrency:
//
//   - json: the legacy newline-delimited protocol. It cannot pipeline, so
//     concurrency n means n connections, each strictly serial — the best a
//     legacy client can do.
//   - binary: ONE connection with a client.Pipeline window of n — many
//     MAC-authenticated requests in flight, responses completing out of
//     order, one flush per burst on both sides.
//
// Every response is MAC-verified against its request. The binary codec
// carries typed row images, so verification is the real client check; the
// JSON protocol stringifies rows, so its legs reconstruct the typed tuples
// from the known kv schema (one INT column) before verifying — charging
// the JSON path its true decode cost rather than skipping the check.
//
// Loopback has no propagation delay, so by itself it cannot show what
// pipelining buys: both protocols collapse to the shared CPU cost of
// executing and endorsing the query. The sweep therefore models link
// latency the standard way — every client Write is delivered one round
// trip after it is issued (RTT, default 500µs, a typical cross-rack
// figure) without blocking the sender. The serial protocol pays the RTT
// once per request (it waits for each response); a pipelined sender
// overlaps the whole window with one delay. Set RTT negative to measure
// the raw loopback codec cost instead.
//
// The headline is SpeedupBinaryPipelined: binary at the deepest window vs
// json serial (one connection, one request at a time). The run hard-fails
// on any MAC-verification failure and on a goroutine leak after drain.

import (
	"bufio"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"veridb"
	"veridb/internal/client"
	"veridb/internal/portal"
	"veridb/internal/record"
	"veridb/internal/server"
)

// WireConfig sizes the wire-protocol benchmark.
type WireConfig struct {
	// Rows seeds the kv table the point queries hit.
	Rows int
	// Ops is the measured query count per leg (after warmup).
	Ops int
	// Inflights is the concurrency sweep, e.g. {1, 4, 16, 64}.
	Inflights []int
	// RTT is the modeled round-trip link latency paid per client Write
	// (see the package comment). Negative means zero; zero means the
	// 500µs default.
	RTT  time.Duration
	Seed uint64
}

func (c WireConfig) withDefaults() WireConfig {
	if c.Rows == 0 {
		c.Rows = 2000
	}
	if c.Ops == 0 {
		c.Ops = 2000
	}
	if len(c.Inflights) == 0 {
		c.Inflights = []int{1, 4, 16, 64}
	}
	if c.RTT == 0 {
		c.RTT = 500 * time.Microsecond
	} else if c.RTT < 0 {
		c.RTT = 0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// latencyConn models link latency: every Write is delivered one round
// trip after it was issued, in order, without blocking the sender — the
// bytes are "in flight" while the sender keeps going. A serial protocol
// still pays the full delay per request (it waits for the response before
// writing again); a pipelined sender overlaps the whole window with one
// delay. The round trip is folded into the request direction; responses
// return undelayed.
type latencyConn struct {
	net.Conn
	rtt  time.Duration
	q    chan delayedChunk
	done chan struct{}
	once sync.Once
}

type delayedChunk struct {
	at  time.Time
	buf []byte
}

func newLatencyConn(conn net.Conn, rtt time.Duration) net.Conn {
	if rtt <= 0 {
		return conn
	}
	l := &latencyConn{
		Conn: conn,
		rtt:  rtt,
		q:    make(chan delayedChunk, 1024),
		done: make(chan struct{}),
	}
	go l.forward()
	return l
}

func (l *latencyConn) forward() {
	for {
		select {
		case c := <-l.q:
			if d := time.Until(c.at); d > 0 {
				time.Sleep(d)
			}
			if _, err := l.Conn.Write(c.buf); err != nil {
				l.once.Do(func() { close(l.done) })
				return
			}
		case <-l.done:
			return
		}
	}
}

func (l *latencyConn) Write(p []byte) (int, error) {
	buf := append([]byte(nil), p...)
	select {
	case l.q <- delayedChunk{at: time.Now().Add(l.rtt), buf: buf}:
		return len(p), nil
	case <-l.done:
		return 0, net.ErrClosed
	}
}

func (l *latencyConn) Close() error {
	l.once.Do(func() { close(l.done) })
	return l.Conn.Close()
}

// WireLeg is one protocol × inflight measurement.
type WireLeg struct {
	Protocol string  `json:"protocol"`
	Inflight int     `json:"inflight"`
	Ops      int     `json:"ops"`
	QPS      float64 `json:"qps"`
	P50US    float64 `json:"p50_us"`
	P99US    float64 `json:"p99_us"`
	// Verified counts MAC-verified responses; it must equal Ops.
	Verified int64 `json:"verified"`
}

// WireRun is the BENCH_wire.json payload.
type WireRun struct {
	Rows  int       `json:"rows"`
	RTTUS float64   `json:"rtt_us"`
	Legs  []WireLeg `json:"legs"`
	// SpeedupBinaryPipelined is QPS(binary, deepest window) divided by
	// QPS(json, one serial connection) — the tentpole headline
	// (acceptance: >= 3).
	SpeedupBinaryPipelined float64 `json:"speedup_binary_pipelined"`
	BaselineGoroutines     int     `json:"baseline_goroutines"`
	PostDrainGoroutines    int     `json:"post_drain_goroutines"`
}

// legacy JSON wire shapes (the protocol is frozen; see cmd/veridb-server
// package docs for the message formats).
type legacyRequest struct {
	Op     string `json:"op"`
	Client string `json:"client,omitempty"`
	QID    uint64 `json:"qid,omitempty"`
	Query  string `json:"query,omitempty"`
	MAC    string `json:"mac,omitempty"`
}

type legacyResponse struct {
	QID         uint64     `json:"qid"`
	Seq         uint64     `json:"seq"`
	Columns     []string   `json:"columns,omitempty"`
	Rows        [][]string `json:"rows,omitempty"`
	Affected    int        `json:"affected"`
	Err         string     `json:"err,omitempty"`
	Quarantined bool       `json:"quarantined,omitempty"`
	MAC         string     `json:"mac"`
}

// RunWire executes the sweep and returns the measured run. Any
// MAC-verification failure, transport error, or post-drain goroutine leak
// fails the run.
func RunWire(cfg WireConfig) (*WireRun, error) {
	cfg = cfg.withDefaults()
	baselineG := runtime.NumGoroutine()

	db, err := veridb.Open(veridb.Config{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE kv (k INT PRIMARY KEY, v INT)`); err != nil {
		return nil, err
	}
	const batch = 500
	for lo := 0; lo < cfg.Rows; lo += batch {
		var sb strings.Builder
		sb.WriteString(`INSERT INTO kv VALUES `)
		for i := lo; i < lo+batch && i < cfg.Rows; i++ {
			if i > lo {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "(%d, %d)", i, i*7)
		}
		if _, err := db.Exec(sb.String()); err != nil {
			return nil, err
		}
	}
	key := []byte("wire-bench-secret")
	db.ProvisionClient("bench", key)
	c := client.New("bench", key)

	srv, err := server.New(server.Config{DB: db})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(ln)

	run := &WireRun{Rows: cfg.Rows, RTTUS: us(cfg.RTT), BaselineGoroutines: baselineG}
	var jsonSerial, binaryDeepest float64
	deepest := cfg.Inflights[0]
	for _, n := range cfg.Inflights {
		if n > deepest {
			deepest = n
		}
	}
	for _, proto := range []string{"json", "binary"} {
		for _, inflight := range cfg.Inflights {
			leg, err := runWireLeg(proto, inflight, cfg, c, ln.Addr().String())
			if err != nil {
				ln.Close()
				return nil, fmt.Errorf("%s inflight=%d: %w", proto, inflight, err)
			}
			run.Legs = append(run.Legs, *leg)
			if proto == "json" && inflight == 1 {
				jsonSerial = leg.QPS
			}
			if proto == "binary" && inflight == deepest {
				binaryDeepest = leg.QPS
			}
		}
	}
	if jsonSerial > 0 {
		run.SpeedupBinaryPipelined = binaryDeepest / jsonSerial
	}

	// Drain and leak-check: every connection goroutine, handler and writer
	// must be gone.
	ln.Close()
	if !srv.Drain(10 * time.Second) {
		return nil, fmt.Errorf("server did not drain after the sweep")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		run.PostDrainGoroutines = runtime.NumGoroutine()
		if run.PostDrainGoroutines <= baselineG {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("goroutine leak after drain: %d -> %d", baselineG, run.PostDrainGoroutines)
		}
		time.Sleep(20 * time.Millisecond)
	}
	return run, nil
}

// runWireLeg measures one protocol × inflight point: a closed loop of
// cfg.Ops point queries (after a short unmeasured warmup), latency per
// completed call.
func runWireLeg(proto string, inflight int, cfg WireConfig, c *client.Client, addr string) (*WireLeg, error) {
	warmup := inflight * 4
	if warmup > 200 {
		warmup = 200
	}
	total := cfg.Ops + warmup
	var next atomic.Int64 // op ticket; < warmup ops are unmeasured

	lats := make([]time.Duration, 0, cfg.Ops)
	var latMu sync.Mutex
	var verified atomic.Int64
	observe := func(measured bool, d time.Duration) {
		if !measured {
			return
		}
		latMu.Lock()
		lats = append(lats, d)
		latMu.Unlock()
	}

	var started time.Time
	var startOnce sync.Once
	markStart := func() { startOnce.Do(func() { started = time.Now() }) }

	oneQuery := func(do func(query string, req *portal.Request) (*portal.Response, error)) error {
		for {
			ticket := next.Add(1) - 1
			if ticket >= int64(total) {
				return nil
			}
			measured := ticket >= int64(warmup)
			if measured {
				markStart()
			}
			k := int(ticket) % cfg.Rows
			query := fmt.Sprintf(`SELECT v FROM kv WHERE k = %d`, k)
			t0 := time.Now()
			resp, err := do(query, nil)
			if err != nil {
				return err
			}
			observe(measured, time.Since(t0))
			verified.Add(1)
			if len(resp.Rows) != 1 {
				return fmt.Errorf("point query returned %d rows", len(resp.Rows))
			}
		}
	}

	var runErr error
	var wg sync.WaitGroup
	fail := func(err error) {
		latMu.Lock()
		if runErr == nil {
			runErr = err
		}
		latMu.Unlock()
	}

	dial := func() (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return newLatencyConn(conn, cfg.RTT), nil
	}

	switch proto {
	case "binary":
		conn, err := dial()
		if err != nil {
			return nil, err
		}
		p := client.NewPipeline(c, conn, client.PipelineConfig{MaxInflight: inflight})
		defer p.Close()
		for w := 0; w < inflight; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := oneQuery(func(q string, _ *portal.Request) (*portal.Response, error) {
					// Do verifies: MAC, sequence tracking, typed rows.
					return p.Do(q)
				}); err != nil {
					fail(err)
				}
			}()
		}
		wg.Wait()
	case "json":
		for w := 0; w < inflight; w++ {
			conn, err := dial()
			if err != nil {
				return nil, err
			}
			defer conn.Close()
			wg.Add(1)
			go func(conn net.Conn) {
				defer wg.Done()
				enc := json.NewEncoder(conn)
				sc := bufio.NewScanner(conn)
				if err := oneQuery(func(q string, _ *portal.Request) (*portal.Response, error) {
					return jsonRoundTrip(c, enc, sc, q)
				}); err != nil {
					fail(err)
				}
			}(conn)
		}
		wg.Wait()
	default:
		return nil, fmt.Errorf("unknown protocol %q", proto)
	}
	if runErr != nil {
		return nil, runErr
	}
	wall := time.Since(started)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	leg := &WireLeg{
		Protocol: proto,
		Inflight: inflight,
		Ops:      len(lats),
		Verified: verified.Load() - int64(warmup),
		QPS:      float64(len(lats)) / wall.Seconds(),
		P50US:    us(percentileDur(lats, 0.50)),
		P99US:    us(percentileDur(lats, 0.99)),
	}
	return leg, nil
}

// jsonRoundTrip drives one query over the legacy protocol and verifies
// the response MAC by reconstructing the typed tuples the server
// stringified (kv schema: single INT column).
func jsonRoundTrip(c *client.Client, enc *json.Encoder, sc *bufio.Scanner, query string) (*portal.Response, error) {
	req := c.NewRequest(query)
	if err := enc.Encode(legacyRequest{
		Op: "query", Client: req.ClientID, QID: req.QID, Query: req.Query,
		MAC: base64.StdEncoding.EncodeToString(req.MAC),
	}); err != nil {
		return nil, err
	}
	if !sc.Scan() {
		return nil, fmt.Errorf("connection closed mid-leg: %v", sc.Err())
	}
	var lr legacyResponse
	if err := json.Unmarshal(sc.Bytes(), &lr); err != nil {
		return nil, err
	}
	if lr.Err != "" {
		return nil, fmt.Errorf("server error: %s", lr.Err)
	}
	mac, err := base64.StdEncoding.DecodeString(lr.MAC)
	if err != nil {
		return nil, err
	}
	resp := &portal.Response{
		QID: lr.QID, Seq: lr.Seq, Columns: lr.Columns,
		Affected: lr.Affected, ErrMsg: lr.Err, Quarantined: lr.Quarantined,
		MAC: mac,
	}
	for _, row := range lr.Rows {
		tuple := make(record.Tuple, len(row))
		for i, cell := range row {
			n, err := strconv.ParseInt(cell, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("cannot reconstruct typed cell %q from JSON: %w", cell, err)
			}
			tuple[i] = record.Int(n)
		}
		resp.Rows = append(resp.Rows, tuple)
	}
	if err := c.VerifyResponse(req, resp); err != nil {
		return nil, fmt.Errorf("MAC verification failed over JSON: %w", err)
	}
	return resp, nil
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func percentileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
