// Package chaos is VeriDB's adversarial fault-injection harness. It
// implements the §3.1 threat model as executable faults: a deterministic,
// seeded injector interposes on untrusted memory through the vmem.Hook
// seam (bit flips, stale-page rollback/replay, dropped writes, torn
// writes, scheduled by protected-operation count) and on the wire through
// net.Listener/net.Conn wrappers (dropped connections, delayed and
// duplicated responses). The verification machinery must detect every
// memory fault, and the containment/failover pipeline (core.Supervisor)
// must recover from it; the chaos tests and bench.RunFaultRecovery drive
// both.
//
// Determinism: given the same seed, fault schedule and a single-threaded
// workload, the injector corrupts the same cells at the same operation
// counts on every run, so failures reproduce.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"veridb/internal/vmem"
)

// FaultKind names one class of untrusted-memory fault.
type FaultKind int

const (
	// BitFlip flips one bit of a stored record in place, bypassing every
	// protected interface (cosmic ray, or an adversary's direct write).
	BitFlip FaultKind = iota
	// Rollback snapshots pages when it arms and replays a stale image
	// later — the classic replay attack offline memory checking exists to
	// catch (versions make multiset elements distinct, Blum et al.).
	Rollback
	// DroppedWrite lets a protected update's accumulator bookkeeping
	// happen while the bytes never land in untrusted memory (lost DMA).
	DroppedWrite
	// TornWrite lands only the first half of a protected write's bytes,
	// leaving the rest stale (partial/torn write).
	TornWrite
)

func (k FaultKind) String() string {
	switch k {
	case BitFlip:
		return "bit-flip"
	case Rollback:
		return "rollback"
	case DroppedWrite:
		return "dropped-write"
	case TornWrite:
		return "torn-write"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// rollbackSnapshots is how many pages a Rollback fault records when it
// arms; at replay time the first one whose content has since changed is
// restored, so the replay observably rolls state back even if some
// snapshotted pages were never written again.
const rollbackSnapshots = 8

// MemFault schedules one memory fault. AtOp is the protected-operation
// count at which the fault arms. Write-path faults (DroppedWrite,
// TornWrite) fire on the first eligible protected write after arming;
// out-of-band faults (BitFlip, Rollback) fire on the first operation
// boundary after arming. ReplayAfter (Rollback only) is how many further
// operations separate the snapshot from the stale-image replay; zero
// means 128.
type MemFault struct {
	Kind        FaultKind
	AtOp        uint64
	ReplayAfter uint64
}

// Injected records one fault that actually fired.
type Injected struct {
	Kind FaultKind
	Op   uint64 // protected-op count when it fired
	Page uint64
	Slot int // -1 when the fault targets a whole page
}

func (i Injected) String() string {
	return fmt.Sprintf("%v@op%d page=%d slot=%d", i.Kind, i.Op, i.Page, i.Slot)
}

// replay is an armed Rollback waiting for its fire op.
type replay struct {
	fireAt uint64
	snaps  []*vmem.PageImage
}

// Injector is the deterministic memory-fault injector. It implements
// vmem.Hook; install it with Attach. All faults are scheduled up front
// (New) and fire at most once.
type Injector struct {
	mu      sync.Mutex
	rng     *rand.Rand
	mem     *vmem.Memory
	pending []MemFault
	replays []*replay
	fired   []Injected
	ops     uint64 // last op count seen by OpDone
	inHook  bool   // guards against re-entrant OpDone from our own Gets
}

// New builds an injector with a deterministic schedule. The seed drives
// every victim-selection decision.
func New(seed int64, faults ...MemFault) *Injector {
	in := &Injector{rng: rand.New(rand.NewSource(seed))}
	in.pending = append(in.pending, faults...)
	sort.SliceStable(in.pending, func(i, j int) bool { return in.pending[i].AtOp < in.pending[j].AtOp })
	return in
}

// Attach installs the injector as the memory's fault hook.
func (in *Injector) Attach(m *vmem.Memory) {
	in.mu.Lock()
	in.mem = m
	in.mu.Unlock()
	m.SetHook(in)
}

// Detach removes the injector from its memory.
func (in *Injector) Detach() {
	in.mu.Lock()
	m := in.mem
	in.mem = nil
	in.mu.Unlock()
	if m != nil {
		m.SetHook(nil)
	}
}

// Fired returns the faults that have fired so far, in firing order.
func (in *Injector) Fired() []Injected {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Injected(nil), in.fired...)
}

// MutateWrite implements vmem.Hook: it fires armed DroppedWrite/TornWrite
// faults on eligible protected writes. Called under the page lock; it must
// not (and does not) call back into the memory.
func (in *Injector) MutateWrite(pageID uint64, slot int, old, intended []byte) []byte {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, f := range in.pending {
		if f.AtOp > in.ops {
			break // schedule is sorted; nothing further is armed yet
		}
		switch f.Kind {
		case DroppedWrite:
			// Droppable only when the old image can be put back in place.
			if len(old) != len(intended) || bytesEqual(old, intended) {
				continue
			}
			in.pending = append(in.pending[:i], in.pending[i+1:]...)
			in.fired = append(in.fired, Injected{DroppedWrite, in.ops, pageID, slot})
			return append([]byte(nil), old...)
		case TornWrite:
			if len(intended) < 2 {
				continue
			}
			torn := append([]byte(nil), intended...)
			half := len(torn) / 2
			if len(old) == len(intended) {
				copy(torn[half:], old[half:])
			} else {
				for j := half; j < len(torn); j++ {
					torn[j] ^= 0x55
				}
			}
			if bytesEqual(torn, intended) {
				torn[len(torn)-1] ^= 0xA5
			}
			in.pending = append(in.pending[:i], in.pending[i+1:]...)
			in.fired = append(in.fired, Injected{TornWrite, in.ops, pageID, slot})
			return torn
		}
	}
	return intended
}

// OpDone implements vmem.Hook: it advances the operation clock and fires
// armed out-of-band faults (BitFlip, Rollback snapshots and replays).
// Called with all memory locks released.
func (in *Injector) OpDone(ops uint64) {
	in.mu.Lock()
	if in.inHook || in.mem == nil {
		in.mu.Unlock()
		return
	}
	in.ops = ops
	var flips int
	var arms []MemFault
	if len(in.pending) > 0 && in.pending[0].AtOp <= ops {
		keep := in.pending[:0]
		for _, f := range in.pending {
			switch {
			case f.AtOp > ops:
				keep = append(keep, f)
			case f.Kind == BitFlip:
				flips++
			case f.Kind == Rollback:
				arms = append(arms, f)
			default:
				// Write-path faults stay pending for MutateWrite.
				keep = append(keep, f)
			}
		}
		in.pending = keep
	}
	var due []*replay
	rest := in.replays[:0]
	for _, r := range in.replays {
		if r.fireAt <= ops {
			due = append(due, r)
		} else {
			rest = append(rest, r)
		}
	}
	in.replays = rest
	mem := in.mem
	in.inHook = true
	in.mu.Unlock()

	for i := 0; i < flips; i++ {
		in.fireBitFlip(mem, ops)
	}
	for _, f := range arms {
		in.armRollback(mem, f, ops)
	}
	var requeue []*replay
	for _, r := range due {
		if !in.fireRollback(mem, r, ops) {
			// No snapshotted page has changed yet; check again later.
			r.fireAt = ops + 64
			requeue = append(requeue, r)
		}
	}

	in.mu.Lock()
	in.inHook = false
	in.replays = append(in.replays, requeue...)
	in.mu.Unlock()
}

// victimCell picks a deterministic random live cell. Returns ok=false when
// the memory holds no suitable record.
func (in *Injector) victimCell(m *vmem.Memory) (page uint64, slot int, rec []byte, ok bool) {
	ids := sortedPageIDs(m)
	if len(ids) == 0 {
		return 0, 0, nil, false
	}
	in.mu.Lock()
	start := in.rng.Intn(len(ids))
	in.mu.Unlock()
	for off := 0; off < len(ids); off++ {
		pid := ids[(start+off)%len(ids)]
		found := -1
		var data []byte
		_ = m.Slots(pid, func(s int, r []byte) bool {
			if len(r) == 0 {
				return true
			}
			found, data = s, r
			return false
		})
		if found >= 0 {
			return pid, found, data, true
		}
	}
	return 0, 0, nil, false
}

// fireBitFlip flips one bit of a random live record, then touches the cell
// through the protected read path so the corrupt image is guaranteed to
// meet the read set within the current epoch (the same move the tamper
// demo makes: detection is only defined for data the application reads or
// verification scans).
func (in *Injector) fireBitFlip(m *vmem.Memory, ops uint64) {
	page, slot, rec, ok := in.victimCell(m)
	if !ok {
		return
	}
	in.mu.Lock()
	bit := in.rng.Intn(len(rec) * 8)
	in.mu.Unlock()
	rec[bit/8] ^= 1 << (bit % 8)
	if err := m.TamperRecord(page, slot, rec); err != nil {
		return
	}
	_, _ = m.Get(page, slot)
	in.mu.Lock()
	in.fired = append(in.fired, Injected{BitFlip, ops, page, slot})
	in.mu.Unlock()
}

// armRollback snapshots a handful of random pages for a later replay.
func (in *Injector) armRollback(m *vmem.Memory, f MemFault, ops uint64) {
	ids := sortedPageIDs(m)
	if len(ids) == 0 {
		return
	}
	in.mu.Lock()
	in.rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	in.mu.Unlock()
	n := rollbackSnapshots
	if n > len(ids) {
		n = len(ids)
	}
	r := &replay{fireAt: ops + f.ReplayAfter}
	if f.ReplayAfter == 0 {
		r.fireAt = ops + 128
	}
	for _, pid := range ids[:n] {
		if img, err := m.SnapshotPageRaw(pid); err == nil {
			r.snaps = append(r.snaps, img)
		}
	}
	if len(r.snaps) > 0 {
		in.mu.Lock()
		in.replays = append(in.replays, r)
		in.mu.Unlock()
	}
}

// fireRollback replays the first snapshotted page whose content has
// changed since the snapshot, then touches a live cell of the restored
// page. Reports false if every snapshot is still current (nothing to roll
// back yet).
func (in *Injector) fireRollback(m *vmem.Memory, r *replay, ops uint64) bool {
	for _, img := range r.snaps {
		cur, err := m.SnapshotPageRaw(img.ID)
		if err != nil {
			continue // page freed since the snapshot
		}
		if bytesEqual(cur.Buf, img.Buf) && uintsEqual(cur.Vers, img.Vers) {
			continue
		}
		if err := m.RestorePageRaw(img); err != nil {
			continue
		}
		slot := -1
		_ = m.Slots(img.ID, func(s int, rec []byte) bool {
			slot = s
			return false
		})
		if slot >= 0 {
			_, _ = m.Get(img.ID, slot)
		}
		in.mu.Lock()
		in.fired = append(in.fired, Injected{Rollback, ops, img.ID, slot})
		in.mu.Unlock()
		return true
	}
	return false
}

func sortedPageIDs(m *vmem.Memory) []uint64 {
	ids := m.PageIDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func uintsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Interface conformance pin.
var _ vmem.Hook = (*Injector)(nil)
