package chaos

import (
	"bufio"
	"errors"
	"net"
	"reflect"
	"testing"
	"time"

	"veridb/internal/enclave"
	"veridb/internal/vmem"
)

// harness is a small vmem instance plus a deterministic update workload.
type harness struct {
	mem   *vmem.Memory
	pages []uint64
	recs  int
	n     int // update counter
}

func newHarness(t *testing.T, pages, recsPerPage int) *harness {
	t.Helper()
	m, err := vmem.New(enclave.NewForTest(7), vmem.Config{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{mem: m, recs: recsPerPage}
	for p := 0; p < pages; p++ {
		pid, err := m.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		h.pages = append(h.pages, pid)
		for r := 0; r < recsPerPage; r++ {
			if _, err := m.Insert(pid, h.record(p, r, 0)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return h
}

// record builds a fixed-size deterministic record image.
func (h *harness) record(page, slot, gen int) []byte {
	rec := make([]byte, 32)
	for i := range rec {
		rec[i] = byte(page + 3*slot + 7*gen + i)
	}
	return rec
}

// step performs one same-size update, cycling over every cell.
func (h *harness) step(t *testing.T) {
	t.Helper()
	h.n++
	p := h.n % len(h.pages)
	s := h.n % h.recs
	if err := h.mem.Update(h.pages[p], s, h.record(p, s, h.n)); err != nil {
		t.Fatal(err)
	}
}

// run drives ops updates and returns nothing; faults fire along the way.
func (h *harness) run(t *testing.T, ops int) {
	t.Helper()
	for i := 0; i < ops; i++ {
		h.step(t)
	}
}

// expectAlarm asserts a clean memory before and a tamper alarm after.
func expectAlarm(t *testing.T, h *harness, in *Injector, kind FaultKind) {
	t.Helper()
	if err := h.mem.VerifyAll(); err == nil {
		t.Fatalf("%v fault fired but VerifyAll stayed clean (fired: %v)", kind, in.Fired())
	} else if !errors.Is(err, vmem.ErrTamperDetected) {
		t.Fatalf("unexpected verification error: %v", err)
	}
	if h.mem.Alarm() == nil {
		t.Fatal("alarm not sticky after detection")
	}
	fired := in.Fired()
	if len(fired) != 1 || fired[0].Kind != kind {
		t.Fatalf("fired log %v, want one %v", fired, kind)
	}
}

func TestBitFlipDetected(t *testing.T) {
	h := newHarness(t, 4, 8)
	base := h.mem.Stats().Ops
	in := New(1, MemFault{Kind: BitFlip, AtOp: base + 10})
	in.Attach(h.mem)
	defer in.Detach()
	h.run(t, 50)
	expectAlarm(t, h, in, BitFlip)
}

func TestDroppedWriteDetected(t *testing.T) {
	h := newHarness(t, 4, 8)
	base := h.mem.Stats().Ops
	in := New(2, MemFault{Kind: DroppedWrite, AtOp: base + 5})
	in.Attach(h.mem)
	defer in.Detach()
	h.run(t, 50)
	expectAlarm(t, h, in, DroppedWrite)
}

func TestTornWriteDetected(t *testing.T) {
	h := newHarness(t, 4, 8)
	base := h.mem.Stats().Ops
	in := New(3, MemFault{Kind: TornWrite, AtOp: base + 5})
	in.Attach(h.mem)
	defer in.Detach()
	h.run(t, 50)
	expectAlarm(t, h, in, TornWrite)
}

func TestRollbackDetected(t *testing.T) {
	h := newHarness(t, 4, 8)
	base := h.mem.Stats().Ops
	in := New(4, MemFault{Kind: Rollback, AtOp: base + 5, ReplayAfter: 20})
	in.Attach(h.mem)
	defer in.Detach()
	// Enough updates that every snapshotted page changes before the replay
	// and the replay itself fires.
	h.run(t, 100)
	expectAlarm(t, h, in, Rollback)
}

func TestNoFaultsNoAlarm(t *testing.T) {
	h := newHarness(t, 4, 8)
	in := New(5)
	in.Attach(h.mem)
	defer in.Detach()
	h.run(t, 50)
	if err := h.mem.VerifyAll(); err != nil {
		t.Fatalf("fault-free run raised alarm: %v", err)
	}
	if got := in.Fired(); len(got) != 0 {
		t.Fatalf("fired %v with an empty schedule", got)
	}
}

// TestDeterministicSchedule pins the injector's reproducibility: identical
// seeds, schedules and workloads fire identical faults.
func TestDeterministicSchedule(t *testing.T) {
	runOnce := func() []Injected {
		h := newHarness(t, 4, 8)
		base := h.mem.Stats().Ops
		in := New(42,
			MemFault{Kind: BitFlip, AtOp: base + 7},
			MemFault{Kind: TornWrite, AtOp: base + 19},
		)
		in.Attach(h.mem)
		defer in.Detach()
		h.run(t, 60)
		return in.Fired()
	}
	a, b := runOnce(), runOnce()
	if len(a) != 2 {
		t.Fatalf("fired %v, want 2 faults", a)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("schedules diverged:\n  %v\n  %v", a, b)
	}
}

// TestWireDuplicateAndDelay checks the conn wrapper duplicates and delays
// writes deterministically.
func TestWireDuplicateAndDelay(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	fc := WrapConn(a, WireConfig{DuplicateEveryWrites: 2})
	go func() {
		fc.Write([]byte("one\n"))
		fc.Write([]byte("two\n")) // duplicated
		fc.Write([]byte("three\n"))
	}()
	sc := bufio.NewScanner(b)
	var got []string
	for len(got) < 4 && sc.Scan() {
		got = append(got, sc.Text())
	}
	want := []string{"one", "two", "two", "three"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("wire saw %v, want %v", got, want)
	}
}

// TestWireDropAfterWrites checks the connection dies after the budget.
func TestWireDropAfterWrites(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	fc := WrapConn(a, WireConfig{DropAfterWrites: 1})
	done := make(chan error, 1)
	go func() {
		if _, err := fc.Write([]byte("ok\n")); err != nil {
			done <- err
			return
		}
		_, err := fc.Write([]byte("dropped\n"))
		done <- err
	}()
	sc := bufio.NewScanner(b)
	if !sc.Scan() || sc.Text() != "ok" {
		t.Fatalf("first write lost: %q", sc.Text())
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("write after drop budget succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("drop never happened")
	}
	if sc.Scan() {
		t.Fatalf("data after drop: %q", sc.Text())
	}
}
