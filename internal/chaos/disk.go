package chaos

// Disk faults: the durable-storage counterparts of the memory injector.
// The WAL and checkpoint files live on an untrusted disk (paper §2: the
// platform outside the enclave is adversarial, and that includes
// persistence), so the crash harness needs the same two fault families
// the memory side has — crash-shaped damage (torn tails, partial fsync
// visibility) that recovery must absorb by restoring the committed
// prefix, and tamper-shaped damage (bit flips, splices, deletions) that
// recovery must answer with quarantine. All injectors are deterministic:
// they take explicit offsets, or derive them from the target size, so a
// crash-matrix run replays identically.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
)

// TruncateAt cuts a file to size bytes: the canonical crash fault — a
// torn tail at a record boundary, or mid-record when size lands inside
// one. Truncating to the current size is a no-op crash (clean shutdown).
func TruncateAt(path string, size int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if size < 0 || size > fi.Size() {
		return fmt.Errorf("chaos: truncate %s to %d bytes (have %d)", filepath.Base(path), size, fi.Size())
	}
	return os.Truncate(path, size)
}

// TornWriteAt models a partial-fsync crash: everything from off is cut,
// then half of what was there comes back garbled — the sector that made
// it out of the drive cache XORed with a stuck pattern. Unlike a clean
// truncation this leaves structurally-present-but-wrong bytes at the
// tail, exercising the MAC half of the torn-tail classifier rather than
// the length half.
func TornWriteAt(path string, off int64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if off < 0 || off > int64(len(buf)) {
		return fmt.Errorf("chaos: tear %s at %d (have %d bytes)", filepath.Base(path), off, len(buf))
	}
	tail := buf[off:]
	keep := len(tail) / 2
	torn := append([]byte(nil), buf[:off]...)
	for i := 0; i < keep; i++ {
		torn = append(torn, tail[i]^0x55)
	}
	return os.WriteFile(path, torn, 0o644)
}

// FlipBit flips one bit at byteOff: the adversarial in-place edit. In
// the middle of a WAL, a segment or a manifest this must land in
// quarantine, never in silent acceptance or truncation.
func FlipBit(path string, byteOff int64, bit uint) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], byteOff); err != nil {
		return fmt.Errorf("chaos: flip in %s at %d: %w", filepath.Base(path), byteOff, err)
	}
	b[0] ^= 1 << (bit % 8)
	if _, err := f.WriteAt(b[:], byteOff); err != nil {
		return err
	}
	return f.Sync()
}

// CopyDir clones a data directory (flat: the WAL layout has no
// subdirectories) so a crash matrix can damage a copy per injection
// point while the pristine original keeps serving as the oracle input.
func CopyDir(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			return fmt.Errorf("chaos: %s contains unexpected directory %s", src, e.Name())
		}
		if err := copyFile(filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())); err != nil {
			return err
		}
	}
	return nil
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// FailingSync builds an fsync fault for the WAL's sync hook: the
// returned hook performs the first `after` syncs for real, then fails
// every later one with err — the drive "went away" mid-run. Once
// failing it never recovers, matching a real device error: the log
// layer must fence itself rather than retry into the void.
func FailingSync(after int64, err error) func(*os.File) error {
	var n atomic.Int64
	return func(f *os.File) error {
		if n.Add(1) <= after {
			return f.Sync()
		}
		return err
	}
}

// FileSize returns a file's size (crash matrices record WAL boundary
// offsets with it).
func FileSize(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}
