// Wire faults: net.Listener/net.Conn wrappers that model a flaky or
// adversarial network between clients and veridb-server — dropped
// connections, delayed responses and duplicated responses. The protocol's
// MACs, sequence numbers and the portal's retry cache must make every one
// of these survivable (or at least detectable); the client retry tests
// drive the wrappers against a live server.
package chaos

import (
	"net"
	"sync"
	"time"
)

// WireConfig schedules connection faults. All counters are per
// connection and deterministic: the Nth write (or accepted connection)
// always receives the same treatment, so wire-fault tests reproduce.
type WireConfig struct {
	// DropAfterWrites closes the connection immediately after this many
	// successful writes (0 = never). The peer observes a mid-session EOF —
	// a crashed or maliciously dropped session.
	DropAfterWrites int
	// DelayEveryWrites stalls every Nth write by Delay (0 = never).
	DelayEveryWrites int
	// Delay is the stall applied by DelayEveryWrites.
	Delay time.Duration
	// DuplicateEveryWrites rewrites every Nth payload twice (0 = never) —
	// a duplicated response on the wire, which the client must either
	// filter by qid or flag via its sequence tracker.
	DuplicateEveryWrites int
}

// WrapListener wraps every accepted connection in the wire-fault layer.
func WrapListener(ln net.Listener, cfg WireConfig) net.Listener {
	return &faultyListener{Listener: ln, cfg: cfg}
}

type faultyListener struct {
	net.Listener
	cfg WireConfig
}

func (l *faultyListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return WrapConn(c, l.cfg), nil
}

// WrapConn applies the wire-fault layer to one connection.
func WrapConn(c net.Conn, cfg WireConfig) net.Conn {
	return &faultyConn{Conn: c, cfg: cfg}
}

type faultyConn struct {
	net.Conn
	cfg WireConfig

	mu     sync.Mutex
	writes int
}

func (c *faultyConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	c.writes++
	n := c.writes
	c.mu.Unlock()
	if c.cfg.DropAfterWrites > 0 && n > c.cfg.DropAfterWrites {
		c.Conn.Close()
		return 0, net.ErrClosed
	}
	if c.cfg.DelayEveryWrites > 0 && n%c.cfg.DelayEveryWrites == 0 && c.cfg.Delay > 0 {
		time.Sleep(c.cfg.Delay)
	}
	wrote, err := c.Conn.Write(b)
	if err != nil {
		return wrote, err
	}
	if c.cfg.DuplicateEveryWrites > 0 && n%c.cfg.DuplicateEveryWrites == 0 {
		_, _ = c.Conn.Write(b) // duplicated payload; best effort
	}
	return wrote, err
}
