// Package client implements the user side of VeriDB's trust protocol
// (paper §5.1): remote attestation of the enclave, request signing with
// the pre-exchanged MAC key, response verification, and the rollback
// defence — a compact interval set of received sequence numbers in which
// any repetition is non-repudiable evidence of a rollback attack.
package client

import (
	"crypto/ed25519"
	"crypto/hmac"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"veridb/internal/enclave"
	"veridb/internal/govern"
	"veridb/internal/portal"
	"veridb/internal/record"
	"veridb/internal/sql"
)

// Errors raised during response verification.
var (
	// ErrBadMAC means the response was not produced by the enclave holding
	// the pre-exchanged key (or was modified in flight).
	ErrBadMAC = errors.New("client: response MAC invalid")
	// ErrRollback means a sequence number repeated: the server rolled the
	// database back to an earlier state (§5.1). Errors carrying the
	// evidence are *RollbackError values; errors.Is(err, ErrRollback)
	// matches both.
	ErrRollback = errors.New("client: repeated sequence number (rollback attack detected)")
	// ErrWrongQID means the response answers a different request.
	ErrWrongQID = errors.New("client: response does not match request qid")
	// ErrQuarantined means the server returned an authenticated
	// "integrity compromised" response: its verifier raised a tamper
	// alarm and it refuses to endorse results. Unlike ErrBadMAC this is
	// an honest signal — the response MAC verified, with the Quarantined
	// flag covered by the digest.
	ErrQuarantined = errors.New("client: server quarantined after integrity compromise")
)

// ServerError is an authenticated execution error: the response verified
// (MAC, sequence number) and carried the portal's error message. It is
// distinct from transport and integrity failures — the server answered
// honestly that the query failed. When the message carries a typed server
// condition the client recognises (today: govern's overload refusal), err
// holds the recovered typed error so errors.Is/As see through the string.
type ServerError struct {
	Msg string
	err error
}

func (e *ServerError) Error() string { return "client: server reported: " + e.Msg }

// Unwrap exposes the typed condition recovered from the message, if any,
// so errors.Is(err, govern.ErrOverloaded) matches across the wire.
func (e *ServerError) Unwrap() error { return e.err }

// RollbackError is the non-repudiable evidence of a rollback: the repeated
// sequence number and the interval of previously received numbers that
// already covers it. It unwraps to ErrRollback.
type RollbackError struct {
	Seq    uint64
	Lo, Hi uint64 // received interval already containing Seq
}

func (e *RollbackError) Error() string {
	return fmt.Sprintf("%v: seq %d already in [%d,%d]", ErrRollback, e.Seq, e.Lo, e.Hi)
}

// Unwrap lets errors.Is(err, ErrRollback) match the typed evidence.
func (e *RollbackError) Unwrap() error { return ErrRollback }

// SeqTracker records received sequence numbers as merged intervals, the
// paper's storage optimisation ("maintaining intervals of successive
// sequence numbers instead of individual numbers"). Add returns
// ErrRollback on any repeat. Out-of-order arrival (network reordering,
// footnote 1) is tolerated.
type SeqTracker struct {
	mu        sync.Mutex
	intervals [][2]uint64 // sorted, disjoint, non-adjacent [lo, hi]
}

// Add records seq, failing if it was seen before.
func (s *SeqTracker) Add(seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := sort.Search(len(s.intervals), func(i int) bool { return s.intervals[i][1] >= seq })
	if i < len(s.intervals) && s.intervals[i][0] <= seq {
		return &RollbackError{Seq: seq, Lo: s.intervals[i][0], Hi: s.intervals[i][1]}
	}
	// Merge with neighbours where adjacent.
	mergeLeft := i > 0 && s.intervals[i-1][1]+1 == seq
	mergeRight := i < len(s.intervals) && s.intervals[i][0] == seq+1
	switch {
	case mergeLeft && mergeRight:
		s.intervals[i-1][1] = s.intervals[i][1]
		s.intervals = append(s.intervals[:i], s.intervals[i+1:]...)
	case mergeLeft:
		s.intervals[i-1][1] = seq
	case mergeRight:
		s.intervals[i][0] = seq
	default:
		s.intervals = append(s.intervals, [2]uint64{})
		copy(s.intervals[i+1:], s.intervals[i:])
		s.intervals[i] = [2]uint64{seq, seq}
	}
	return nil
}

// Len returns the number of stored intervals (the client's storage cost).
func (s *SeqTracker) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.intervals)
}

// Max returns the largest sequence number seen (0 if none) — the floor a
// recovered portal must resume above.
func (s *SeqTracker) Max() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.intervals) == 0 {
		return 0
	}
	return s.intervals[len(s.intervals)-1][1]
}

// Intervals returns a copy of the interval set.
func (s *SeqTracker) Intervals() [][2]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([][2]uint64(nil), s.intervals...)
}

// Client is one VeriDB user: it holds the pre-exchanged MAC key, a query
// id counter, the sequence tracker, and the attested enclave identity.
type Client struct {
	ID  string
	key []byte

	mu      sync.Mutex
	nextQID uint64
	tracker SeqTracker

	attested ed25519.PublicKey
}

// New builds a client with the pre-exchanged key (provisioned into the
// enclave out of band, e.g. over the attested channel).
func New(id string, key []byte) *Client {
	return &Client{ID: id, key: append([]byte(nil), key...)}
}

// Attest verifies an enclave quote against the expected measurement and
// pins the attestation key for endorsement checks.
func (c *Client) Attest(q enclave.Quote, expectedMeasurement [32]byte, nonce []byte) error {
	pub, err := enclave.VerifyQuote(q, expectedMeasurement, nonce)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.attested = pub
	c.mu.Unlock()
	return nil
}

// NewRequest signs a query with a fresh qid.
func (c *Client) NewRequest(query string) portal.Request {
	return c.NewRequestTimeout(query, 0)
}

// NewRequestTimeout signs a query with a fresh qid and a per-request
// deadline the server enforces. The timeout is folded into the MAC, so a
// relay cannot strip or stretch it; a zero timeout yields the exact same
// request NewRequest produces.
func (c *Client) NewRequestTimeout(query string, timeout time.Duration) portal.Request {
	c.mu.Lock()
	c.nextQID++
	qid := c.nextQID
	c.mu.Unlock()
	var ms uint64
	if timeout > 0 {
		ms = uint64(timeout.Milliseconds())
		if ms == 0 {
			ms = 1 // sub-millisecond deadlines round up, not off
		}
	}
	return portal.Request{
		ClientID:  c.ID,
		QID:       qid,
		Query:     query,
		TimeoutMS: ms,
		MAC:       portal.SignRequestTimeout(c.key, c.ID, qid, query, ms),
	}
}

// ExecuteText renders an EXECUTE statement for a prepared statement with
// the given bound arguments — the client-side half of PREPARE/EXECUTE
// parameter binding. Values are embedded as SQL literals (quotes doubled,
// floats in decimal notation), so the resulting text round-trips through
// the server's parser to exactly these values.
func ExecuteText(name string, args ...record.Value) string {
	var sb strings.Builder
	sb.WriteString("EXECUTE ")
	sb.WriteString(name)
	sb.WriteString(" (")
	for i, a := range args {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(sql.FormatValue(a))
	}
	sb.WriteString(")")
	return sb.String()
}

// NewExecuteRequest signs an EXECUTE of the named prepared statement with
// the given arguments (see ExecuteText).
func (c *Client) NewExecuteRequest(name string, args ...record.Value) portal.Request {
	return c.NewRequest(ExecuteText(name, args...))
}

// NewBeginSnapshotRequest signs a BEGIN SNAPSHOT: the server pins a
// consistent read point for this client's session and returns its commit
// sequence in a single snapshot_seq column. Until the matching COMMIT,
// every query from this client reads that same snapshot and mutating
// statements are rejected.
func (c *Client) NewBeginSnapshotRequest() portal.Request {
	return c.NewRequest("BEGIN SNAPSHOT")
}

// NewCommitSnapshotRequest signs the COMMIT releasing this client's
// pinned snapshot.
func (c *Client) NewCommitSnapshotRequest() portal.Request {
	return c.NewRequest("COMMIT")
}

// VerifyResponse checks a response's MAC against the request and records
// its sequence number, detecting rollbacks (*RollbackError). A verified
// quarantine response returns ErrQuarantined; any other verified response
// with a non-empty ErrMsg is an authenticated execution error, returned
// as a plain error after verification succeeds.
func (c *Client) VerifyResponse(req portal.Request, resp *portal.Response) error {
	if resp.QID != req.QID {
		return fmt.Errorf("%w: got %d want %d", ErrWrongQID, resp.QID, req.QID)
	}
	want := portal.SignResponse(c.key, resp)
	if !hmac.Equal(want, resp.MAC) {
		return ErrBadMAC
	}
	if resp.Quarantined {
		// A quarantine response is a fencing signal, not a result: the
		// instance that issued it is being replaced, and its remaining
		// sequence numbers die with it. Recording them would falsely flag
		// the replacement (which resumes at the last *data* response's
		// floor) as a rollback.
		return fmt.Errorf("%w: %s", ErrQuarantined, resp.ErrMsg)
	}
	if err := c.tracker.Add(resp.Seq); err != nil {
		return err
	}
	if resp.ErrMsg != "" {
		se := &ServerError{Msg: resp.ErrMsg}
		if oe, ok := govern.ParseOverloaded(resp.ErrMsg); ok {
			se.err = oe
		}
		return se
	}
	return nil
}

// Tracker exposes the sequence tracker (for recovery floors and tests).
func (c *Client) Tracker() *SeqTracker { return &c.tracker }
