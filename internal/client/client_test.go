package client

import (
	"crypto/hmac"
	"errors"
	"math/rand"
	"testing"

	"veridb/internal/portal"
)

func TestSeqTrackerSequential(t *testing.T) {
	var s SeqTracker
	for i := uint64(1); i <= 100; i++ {
		if err := s.Add(i); err != nil {
			t.Fatalf("Add(%d): %v", i, err)
		}
	}
	if s.Len() != 1 {
		t.Fatalf("sequential numbers not merged: %d intervals", s.Len())
	}
	if s.Max() != 100 {
		t.Fatalf("Max = %d", s.Max())
	}
}

func TestSeqTrackerDetectsRepeat(t *testing.T) {
	var s SeqTracker
	for _, n := range []uint64{5, 6, 7} {
		if err := s.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []uint64{5, 6, 7} {
		if err := s.Add(n); !errors.Is(err, ErrRollback) {
			t.Fatalf("repeat of %d not detected: %v", n, err)
		}
	}
}

func TestSeqTrackerOutOfOrder(t *testing.T) {
	// Footnote 1: network reordering means numbers may arrive out of
	// order; only repetition is evidence.
	var s SeqTracker
	perm := rand.New(rand.NewSource(4)).Perm(500)
	for _, i := range perm {
		if err := s.Add(uint64(i + 1)); err != nil {
			t.Fatalf("Add(%d): %v", i+1, err)
		}
	}
	if s.Len() != 1 {
		t.Fatalf("full permutation not merged into one interval: %d", s.Len())
	}
}

func TestSeqTrackerGapsKeptSeparate(t *testing.T) {
	var s SeqTracker
	for _, n := range []uint64{1, 3, 5, 10} {
		if err := s.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 4 {
		t.Fatalf("intervals = %v", s.Intervals())
	}
	// Filling the gap merges.
	if err := s.Add(2); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(4); err != nil {
		t.Fatal(err)
	}
	got := s.Intervals()
	if len(got) != 2 || got[0] != [2]uint64{1, 5} || got[1] != [2]uint64{10, 10} {
		t.Fatalf("intervals = %v", got)
	}
}

func TestSeqTrackerMergeLeftOnly(t *testing.T) {
	var s SeqTracker
	s.Add(1)
	s.Add(2)
	s.Add(7)
	if err := s.Add(3); err != nil {
		t.Fatal(err)
	}
	got := s.Intervals()
	if len(got) != 2 || got[0] != [2]uint64{1, 3} {
		t.Fatalf("intervals = %v", got)
	}
}

func TestSeqTrackerInsideIntervalDetected(t *testing.T) {
	var s SeqTracker
	for i := uint64(10); i <= 20; i++ {
		s.Add(i)
	}
	if err := s.Add(15); !errors.Is(err, ErrRollback) {
		t.Fatalf("interior repeat not detected: %v", err)
	}
}

func TestNewRequestQIDsUnique(t *testing.T) {
	c := New("alice", []byte("key"))
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		r := c.NewRequest("SELECT 1")
		if seen[r.QID] {
			t.Fatalf("qid %d reused", r.QID)
		}
		seen[r.QID] = true
		if len(r.MAC) == 0 || r.ClientID != "alice" {
			t.Fatalf("bad request %+v", r)
		}
	}
}

func TestSnapshotRequestHelpers(t *testing.T) {
	c := New("alice", []byte("key"))
	begin := c.NewBeginSnapshotRequest()
	if begin.Query != "BEGIN SNAPSHOT" {
		t.Fatalf("begin query %q", begin.Query)
	}
	commit := c.NewCommitSnapshotRequest()
	if commit.Query != "COMMIT" {
		t.Fatalf("commit query %q", commit.Query)
	}
	if begin.QID == commit.QID {
		t.Fatal("qids collide")
	}
	for _, r := range []portal.Request{begin, commit} {
		want := portal.SignRequest([]byte("key"), "alice", r.QID, r.Query)
		if !hmac.Equal(want, r.MAC) {
			t.Fatalf("bad MAC on %q", r.Query)
		}
	}
}
