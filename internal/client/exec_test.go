package client

import (
	"testing"

	"veridb/internal/record"
)

// TestExecuteText: argument values render as parseable SQL literals —
// doubled quotes, decimal floats that stay floats, bool keywords.
func TestExecuteText(t *testing.T) {
	got := ExecuteText("ins", record.Int(7), record.Text("it's"), record.Float(2), record.Bool(true), record.Null(record.TypeText))
	want := `EXECUTE ins (7, 'it''s', 2.0, TRUE, NULL)`
	if got != want {
		t.Fatalf("ExecuteText = %q, want %q", got, want)
	}
	if got := ExecuteText("noargs"); got != "EXECUTE noargs ()" {
		t.Fatalf("ExecuteText with no args = %q", got)
	}
}
