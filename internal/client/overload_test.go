package client

import (
	"errors"
	"testing"
	"time"

	"veridb/internal/govern"
	"veridb/internal/portal"
)

// shedExec refuses the first n executions with a typed overload refusal,
// then serves normally.
type shedExec struct {
	sheds int
	calls int
}

func (e *shedExec) Execute(query string) (*portal.Result, error) {
	e.calls++
	if e.calls <= e.sheds {
		return nil, &govern.OverloadedError{RetryAfter: 25 * time.Millisecond}
	}
	return &portal.Result{Columns: []string{"q"}}, nil
}

// TestDoRetriesOverloadWithFreshQID: an authenticated overload refusal is
// retried — with a FRESH qid (the refusal is cached under the old one at
// the portal, so reusing it would replay the refusal forever) and after at
// least the server's RetryAfter hint.
func TestDoRetriesOverloadWithFreshQID(t *testing.T) {
	exec := &shedExec{sheds: 2}
	c, p, _ := newClientPortal(t, exec)
	var qids []uint64
	transport := TransportFunc(func(req portal.Request) (*portal.Response, error) {
		qids = append(qids, req.QID)
		return p.Serve(req)
	})
	var slept []time.Duration
	cfg := RetryConfig{Retries: 5, Backoff: time.Millisecond, sleep: func(d time.Duration) { slept = append(slept, d) }}
	resp, err := c.Do(transport, "SELECT 1", cfg)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if resp.ErrMsg != "" {
		t.Fatalf("final response carries error %q", resp.ErrMsg)
	}
	if exec.calls != 3 {
		t.Fatalf("executed %d times, want 2 sheds + 1 success", exec.calls)
	}
	if len(qids) != 3 {
		t.Fatalf("attempts = %d, want 3", len(qids))
	}
	if qids[0] == qids[1] || qids[1] == qids[2] {
		t.Fatalf("overload retry reused a qid: %v", qids)
	}
	for i, d := range slept {
		if d < 25*time.Millisecond {
			t.Fatalf("retry %d slept %v, shorter than the 25ms RetryAfter hint", i, d)
		}
	}
}

// TestDoGivesUpOverloadAfterRetryBudget: a server that sheds every attempt
// exhausts the retry budget and surfaces the typed overload error.
func TestDoGivesUpOverloadAfterRetryBudget(t *testing.T) {
	exec := &shedExec{sheds: 1 << 30}
	c, p, _ := newClientPortal(t, exec)
	transport := TransportFunc(func(req portal.Request) (*portal.Response, error) { return p.Serve(req) })
	_, err := c.Do(transport, "SELECT 1", noSleep(RetryConfig{Retries: 2, Backoff: time.Millisecond}))
	if !errors.Is(err, govern.ErrOverloaded) {
		t.Fatalf("want ErrOverloaded after budget, got %v", err)
	}
	if exec.calls != 3 {
		t.Fatalf("executed %d times, want 3 attempts", exec.calls)
	}
}

// TestVerifyResponseTypesOverload: the overload refusal survives the trip
// through the string-typed wire error and comes back as a typed
// *govern.OverloadedError with its RetryAfter hint intact.
func TestVerifyResponseTypesOverload(t *testing.T) {
	exec := &shedExec{sheds: 1}
	c, p, _ := newClientPortal(t, exec)
	req := c.NewRequest("SELECT 1")
	resp, err := p.Serve(req)
	if err != nil {
		t.Fatal(err)
	}
	verr := c.VerifyResponse(req, resp)
	var oe *govern.OverloadedError
	if !errors.As(verr, &oe) {
		t.Fatalf("verify error not typed: %v", verr)
	}
	if oe.RetryAfter != 25*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want 25ms", oe.RetryAfter)
	}
}
