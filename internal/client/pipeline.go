package client

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"

	"veridb/internal/enclave"
	"veridb/internal/govern"
	"veridb/internal/portal"
	"veridb/internal/wire"
)

// ErrPipelineClosed reports an operation on a pipeline whose connection is
// gone; the originating transport error (if any) is wrapped alongside it.
var ErrPipelineClosed = errors.New("client: pipeline closed")

// PipelineConfig tunes a pipelined binary-protocol connection.
type PipelineConfig struct {
	// MaxInflight is the in-flight window: how many requests may await
	// responses at once. Go blocks (backpressure) when the window is full.
	// Default 16.
	MaxInflight int
	// RetryTimeout is the per-attempt response deadline. When it elapses
	// the call is retransmitted with the SAME qid and MAC — the portal's
	// response cache makes the retry at-most-once: a finished query replays
	// its cached endorsement, an in-flight one answers "query id replayed"
	// (which the pipeline ignores; the original response is still coming).
	// 0 disables retransmission.
	RetryTimeout time.Duration
	// Retries bounds extra attempts per call: retransmissions plus
	// fresh-qid overload retries. Default 3.
	Retries int
	// Backoff is the base delay before an overload retry when the server's
	// RetryAfter hint is smaller. Default 5ms.
	Backoff time.Duration
	// MaxResponse caps one response frame's payload. Default 64 MiB (a
	// result set, not a request, sets the size here).
	MaxResponse int
}

func (cfg *PipelineConfig) fill() {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 16
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 3
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 5 * time.Millisecond
	}
	if cfg.MaxResponse <= 0 {
		cfg.MaxResponse = 64 << 20
	}
}

// Call is one in-flight pipelined request. Wait blocks for its completion.
type Call struct {
	// Resp and Err are valid after Wait returns (or done closes). For a
	// query, Err is the verification outcome — nil only for a MAC-verified,
	// sequence-tracked success.
	Resp *portal.Response
	Err  error

	kind    wire.Type
	query   string
	timeout time.Duration
	req     portal.Request
	qid     uint64
	payload []byte
	quote   enclave.Quote
	health  []byte

	attempts  int // attempts beyond the first
	completed bool
	timer     *time.Timer
	done      chan struct{}
}

// Wait blocks until the call completes and returns its outcome.
func (call *Call) Wait() (*portal.Response, error) {
	<-call.done
	return call.Resp, call.Err
}

// Attempts reports how many extra attempts (retransmissions or fresh-qid
// overload retries) the call took beyond its first send.
func (call *Call) Attempts() int { return call.attempts }

// Pipeline drives the binary wire protocol over one connection with many
// requests in flight: an in-flight window bounds outstanding calls, a
// writer goroutine batches frames per flush, and a reader goroutine
// demuxes responses by qid — they arrive in the server's completion order,
// not send order. Every response is MAC-verified against its request
// before the caller sees it. Safe for concurrent use.
type Pipeline struct {
	c    *Client
	conn net.Conn
	cfg  PipelineConfig

	window chan struct{} // in-flight slots
	sendq  chan *Call
	closed chan struct{}

	mu      sync.Mutex
	err     error
	pending map[uint64]*Call
}

// NewPipeline wraps an established connection. The pipeline owns the
// connection: Close tears it down, and any transport error fails every
// in-flight call.
func NewPipeline(c *Client, conn net.Conn, cfg PipelineConfig) *Pipeline {
	cfg.fill()
	p := &Pipeline{
		c:       c,
		conn:    conn,
		cfg:     cfg,
		window:  make(chan struct{}, cfg.MaxInflight),
		sendq:   make(chan *Call, 2*cfg.MaxInflight),
		closed:  make(chan struct{}),
		pending: make(map[uint64]*Call),
	}
	go p.writeLoop()
	go p.readLoop()
	return p
}

// nextQID allocates a fresh query id from the client's counter (shared
// with NewRequest, so pipelined and serial requests never collide).
func (p *Pipeline) nextQID() uint64 {
	p.c.mu.Lock()
	defer p.c.mu.Unlock()
	p.c.nextQID++
	return p.c.nextQID
}

// Go signs query with a fresh qid and sends it down the pipeline,
// returning immediately with the in-flight call. It blocks only when the
// in-flight window is full.
func (p *Pipeline) Go(query string) *Call {
	return p.GoTimeout(query, 0)
}

// GoTimeout is Go with a server-enforced per-request deadline (folded
// into the MAC; see NewRequestTimeout).
func (p *Pipeline) GoTimeout(query string, timeout time.Duration) *Call {
	req := p.c.NewRequestTimeout(query, timeout)
	call := &Call{
		kind:    wire.TQuery,
		query:   query,
		timeout: timeout,
		req:     req,
		qid:     req.QID,
		payload: wire.EncodeQuery(req),
		done:    make(chan struct{}),
	}
	p.launch(call)
	return call
}

// Do is the synchronous convenience: Go then Wait.
func (p *Pipeline) Do(query string) (*portal.Response, error) {
	return p.Go(query).Wait()
}

// Attest runs remote attestation through the pipeline (it shares the
// window and qid space with queries) and pins the enclave identity on
// success.
func (p *Pipeline) Attest(expectedMeasurement [32]byte, nonce []byte) error {
	call := &Call{
		kind:    wire.TAttest,
		qid:     p.nextQID(),
		payload: wire.EncodeAttest(nonce),
		done:    make(chan struct{}),
	}
	p.launch(call)
	if _, err := call.Wait(); err != nil {
		return err
	}
	return p.c.Attest(call.quote, expectedMeasurement, nonce)
}

// Health fetches the server's health snapshot (raw JSON, same shape as
// the legacy protocol's health response).
func (p *Pipeline) Health() ([]byte, error) {
	call := &Call{
		kind: wire.THealth,
		qid:  p.nextQID(),
		done: make(chan struct{}),
	}
	p.launch(call)
	if _, err := call.Wait(); err != nil {
		return nil, err
	}
	return call.health, nil
}

// launch claims a window slot, registers the call, and queues its first
// send. A dead pipeline completes the call immediately with its error.
func (p *Pipeline) launch(call *Call) {
	select {
	case p.window <- struct{}{}:
	case <-p.closed:
		call.Resp, call.Err = nil, p.closeErr()
		call.completed = true
		close(call.done)
		return
	}
	p.mu.Lock()
	if p.err != nil {
		err := p.err
		p.mu.Unlock()
		<-p.window
		call.Resp, call.Err = nil, err
		call.completed = true
		close(call.done)
		return
	}
	p.pending[call.qid] = call
	p.armTimerLocked(call)
	p.mu.Unlock()
	p.enqueue(call)
}

func (p *Pipeline) enqueue(call *Call) {
	select {
	case p.sendq <- call:
	case <-p.closed:
		p.mu.Lock()
		p.completeLocked(call, nil, p.closeErr())
		p.mu.Unlock()
	}
}

// armTimerLocked starts the retransmission timer for the next attempt.
func (p *Pipeline) armTimerLocked(call *Call) {
	if p.cfg.RetryTimeout <= 0 {
		return
	}
	if call.timer != nil {
		call.timer.Stop()
	}
	call.timer = time.AfterFunc(p.cfg.RetryTimeout, func() { p.retransmit(call) })
}

// retransmit re-sends a call that missed its response deadline, with the
// SAME qid and MAC (at-most-once; see PipelineConfig.RetryTimeout).
func (p *Pipeline) retransmit(call *Call) {
	p.mu.Lock()
	if call.completed || p.err != nil {
		p.mu.Unlock()
		return
	}
	if call.attempts >= p.cfg.Retries {
		p.completeLocked(call, nil, fmt.Errorf("client: qid %d: no response after %d attempts", call.qid, call.attempts+1))
		p.mu.Unlock()
		return
	}
	call.attempts++
	p.armTimerLocked(call)
	p.mu.Unlock()
	p.enqueue(call)
}

// retryFresh re-signs an overloaded call under a FRESH qid — the shed
// consumed the old one (the portal's replay window rejects its reuse) —
// and sends it again. Only queries are retried this way.
func (p *Pipeline) retryFresh(call *Call) {
	p.mu.Lock()
	if call.completed || p.err != nil {
		p.mu.Unlock()
		return
	}
	delete(p.pending, call.qid)
	req := p.c.NewRequestTimeout(call.query, call.timeout)
	call.req = req
	call.qid = req.QID
	call.payload = wire.EncodeQuery(req)
	call.attempts++
	p.pending[call.qid] = call
	p.armTimerLocked(call)
	p.mu.Unlock()
	p.enqueue(call)
}

// completeLocked finishes a call exactly once: result recorded, timer
// stopped, qid unregistered, window slot released, waiter woken.
func (p *Pipeline) completeLocked(call *Call, resp *portal.Response, err error) {
	if call.completed {
		return
	}
	call.completed = true
	if call.timer != nil {
		call.timer.Stop()
	}
	delete(p.pending, call.qid)
	call.Resp, call.Err = resp, err
	<-p.window
	close(call.done)
}

func (p *Pipeline) closeErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return p.err
	}
	return ErrPipelineClosed
}

// fatal kills the pipeline: records the first error, fails every pending
// call with it, and closes the connection (unblocking both loops).
func (p *Pipeline) fatal(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
		close(p.closed)
	}
	err = p.err
	for _, call := range p.pending {
		p.completeLocked(call, nil, err)
	}
	p.mu.Unlock()
	p.conn.Close()
}

// Close tears the pipeline down; in-flight calls fail with
// ErrPipelineClosed.
func (p *Pipeline) Close() error {
	p.fatal(fmt.Errorf("%w: closed by caller", ErrPipelineClosed))
	return nil
}

// writeLoop serializes frames onto the socket, draining every queued call
// before paying for a flush so a burst of sends shares syscalls.
func (p *Pipeline) writeLoop() {
	bw := bufio.NewWriter(p.conn)
	writeOne := func(call *Call) error {
		p.mu.Lock()
		f := wire.Frame{Type: call.kind, QID: call.qid, Payload: call.payload}
		skip := call.completed
		p.mu.Unlock()
		if skip {
			return nil
		}
		return wire.WriteFrame(bw, f)
	}
	for {
		select {
		case call := <-p.sendq:
			if err := writeOne(call); err != nil {
				p.fatal(fmt.Errorf("%w: write: %v", ErrPipelineClosed, err))
				return
			}
			for drained := false; !drained; {
				select {
				case next := <-p.sendq:
					if err := writeOne(next); err != nil {
						p.fatal(fmt.Errorf("%w: write: %v", ErrPipelineClosed, err))
						return
					}
				default:
					drained = true
				}
			}
			if err := bw.Flush(); err != nil {
				p.fatal(fmt.Errorf("%w: write: %v", ErrPipelineClosed, err))
				return
			}
		case <-p.closed:
			return
		}
	}
}

// replayedMarker identifies the portal's "already executing" answer to a
// retransmission; the original response is still on its way, so the
// refusal is informational, not terminal.
const replayedMarker = "query id replayed"

// readLoop demuxes response frames to their calls. A first byte of '{'
// means the peer answered in the legacy JSON protocol — the server sends
// its structured connection-capacity refusal that way on purpose — so the
// error line is surfaced instead of a bad-magic mystery.
func (p *Pipeline) readLoop() {
	br := bufio.NewReader(p.conn)
	for {
		first, err := br.Peek(1)
		if err != nil {
			p.fatal(fmt.Errorf("%w: read: %v", ErrPipelineClosed, err))
			return
		}
		if first[0] == '{' {
			line, _ := br.ReadString('\n')
			msg := strings.TrimSpace(line)
			if i := strings.Index(msg, `"err":"`); i >= 0 {
				if rest := msg[i+len(`"err":"`):]; strings.Contains(rest, `"`) {
					msg = rest[:strings.Index(rest, `"`)]
				}
			}
			p.fatal(fmt.Errorf("%w: server refused: %s", ErrPipelineClosed, msg))
			return
		}
		f, err := wire.ReadFrame(br, p.cfg.MaxResponse)
		if err != nil {
			p.fatal(fmt.Errorf("%w: read: %v", ErrPipelineClosed, err))
			return
		}
		p.dispatch(f)
	}
}

// dispatch routes one response frame to its pending call.
func (p *Pipeline) dispatch(f wire.Frame) {
	p.mu.Lock()
	call := p.pending[f.QID]
	p.mu.Unlock()
	if call == nil {
		// A late duplicate (the first copy of a retransmitted call already
		// completed it) or a response to an abandoned attempt. At-most-once
		// holds server-side; nothing to do here.
		return
	}
	switch f.Type {
	case wire.TResult:
		resp, err := wire.DecodeResult(f.QID, f.Payload)
		if err != nil {
			p.mu.Lock()
			p.completeLocked(call, nil, err)
			p.mu.Unlock()
			return
		}
		verr := p.c.VerifyResponse(call.req, resp)
		var oe *govern.OverloadedError
		if errors.As(verr, &oe) {
			p.mu.Lock()
			canRetry := !call.completed && call.attempts < p.cfg.Retries
			if canRetry {
				// Honor the server's hint (or our backoff, whichever is
				// larger) plus jitter, off the reader goroutine so one shed
				// call never stalls the window for the others.
				shift := call.attempts
				if shift > 10 {
					shift = 10 // cap the doubling; the jittered ceiling below rules
				}
				delay := p.cfg.Backoff << shift
				if oe.RetryAfter > delay {
					delay = oe.RetryAfter
				}
				if delay > time.Second {
					delay = time.Second
				}
				delay += time.Duration(rand.Int63n(int64(delay)/2 + 1))
				if call.timer != nil {
					call.timer.Stop() // the shed IS the response; don't retransmit the dead qid
				}
				time.AfterFunc(delay, func() { p.retryFresh(call) })
			} else {
				p.completeLocked(call, resp, verr)
			}
			p.mu.Unlock()
			return
		}
		p.mu.Lock()
		p.completeLocked(call, resp, verr)
		p.mu.Unlock()
	case wire.TQuote:
		q, err := wire.DecodeQuote(f.Payload)
		p.mu.Lock()
		call.quote = q
		p.completeLocked(call, nil, err)
		p.mu.Unlock()
	case wire.THealthInfo:
		p.mu.Lock()
		call.health = append([]byte(nil), f.Payload...)
		p.completeLocked(call, nil, nil)
		p.mu.Unlock()
	case wire.TError:
		msg := string(f.Payload)
		if strings.Contains(msg, replayedMarker) {
			// Our retransmission raced the original execution; the real
			// response is still coming under this qid. Keep waiting.
			return
		}
		var err error = &ServerError{Msg: msg}
		if tl, ok := wire.ParseTooLarge(msg); ok {
			err = &ServerError{Msg: msg, err: tl}
		}
		p.mu.Lock()
		p.completeLocked(call, nil, err)
		p.mu.Unlock()
	}
}
