package client_test

// Pipeline tests run against the real server stack (internal/server over
// TCP), not a mock: the contract under test is the wire behavior —
// out-of-order completion, per-frame shed handling, at-most-once
// retransmission — and only the real reader/writer/handler loops exhibit
// it. This file is an external test package because the veridb root
// package imports internal/client.

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"veridb"
	"veridb/internal/client"
	"veridb/internal/server"
	"veridb/internal/wire"
)

func startServer(t *testing.T, db *veridb.DB, cfg server.Config) net.Listener {
	t.Helper()
	cfg.DB = db
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close(); srv.Drain(5 * time.Second) })
	go srv.Serve(ln)
	return ln
}

func dialPipeline(t *testing.T, c *client.Client, addr string, cfg client.PipelineConfig) *client.Pipeline {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	p := client.NewPipeline(c, conn, cfg)
	t.Cleanup(func() { p.Close() })
	return p
}

func seedBig(t *testing.T, db *veridb.DB, rows int) {
	t.Helper()
	if _, err := db.Exec(`CREATE TABLE big (a INT PRIMARY KEY, b INT)`); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString(`INSERT INTO big VALUES `)
	for i := 0; i < rows; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "(%d, %d)", i, i)
	}
	if _, err := db.Exec(sb.String()); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineVerifiedQueriesAttestAndHealth pushes a window of concurrent
// queries through one connection and MAC-verifies every response; attest
// and health share the pipeline with them.
func TestPipelineVerifiedQueriesAttestAndHealth(t *testing.T) {
	db, err := veridb.Open(veridb.Config{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE t (a INT PRIMARY KEY, b TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three')`); err != nil {
		t.Fatal(err)
	}
	key := []byte("pipe-secret")
	db.ProvisionClient("alice", key)
	alice := client.New("alice", key)

	ln := startServer(t, db, server.Config{})
	p := dialPipeline(t, alice, ln.Addr().String(), client.PipelineConfig{MaxInflight: 4})

	if err := p.Attest(db.Measurement(), []byte("pipeline-nonce")); err != nil {
		t.Fatalf("attest over pipeline: %v", err)
	}

	calls := make([]*client.Call, 40)
	for i := range calls {
		calls[i] = p.Go(fmt.Sprintf(`SELECT b FROM t WHERE a = %d`, i%3+1))
	}
	for i, call := range calls {
		resp, err := call.Wait()
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if len(resp.Rows) != 1 {
			t.Fatalf("call %d: %+v", i, resp)
		}
	}
	// Every sequence number arrived exactly once: 40 data responses, no
	// rollback alarms, whatever order they completed in.
	if n := alice.Tracker().Max(); n == 0 {
		t.Fatal("tracker recorded nothing")
	}

	raw, err := p.Health()
	if err != nil {
		t.Fatalf("health over pipeline: %v", err)
	}
	if !strings.Contains(string(raw), `"epochs"`) {
		t.Fatalf("health payload %q", raw)
	}

	// An authenticated execution error surfaces as ServerError, verified.
	if _, err := p.Do(`SELECT b FROM nope`); err == nil {
		t.Fatal("query against missing table succeeded")
	} else {
		var se *client.ServerError
		if !errors.As(err, &se) {
			t.Fatalf("want ServerError, got %v", err)
		}
	}
}

// TestPipelineOverloadRetriesFreshQID: calls launched while the single
// admission slot is pinned are shed with the typed overload refusal; the
// pipeline retries them under fresh qids (the shed consumed the old ones)
// honoring RetryAfter, and they succeed once the slot frees — without the
// caller seeing any of it.
func TestPipelineOverloadRetriesFreshQID(t *testing.T) {
	db, err := veridb.Open(veridb.Config{
		Seed:                    22,
		MaxConcurrentStatements: 1,
		AdmissionMaxWait:        time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	seedBig(t, db, 20000)
	key := []byte("shed-pipe")
	db.ProvisionClient("alice", key)
	alice := client.New("alice", key)

	ln := startServer(t, db, server.Config{})
	p := dialPipeline(t, alice, ln.Addr().String(), client.PipelineConfig{
		MaxInflight: 8,
		Retries:     50,
		Backoff:     2 * time.Millisecond,
	})

	// Pin the only slot with a direct slow scan.
	hold := make(chan error, 1)
	go func() {
		_, err := db.Exec(`SELECT a, b FROM big WHERE b >= 0 ORDER BY a`)
		hold <- err
	}()
	for deadline := time.Now().Add(5 * time.Second); ; {
		if db.Govern().Admission.InFlight >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("direct statement never acquired the admission slot")
		}
	}

	calls := make([]*client.Call, 3)
	for i := range calls {
		calls[i] = p.Go(`SELECT a FROM big WHERE a = 1`)
	}
	if err := <-hold; err != nil {
		t.Fatalf("pinned statement failed: %v", err)
	}
	retried := 0
	for i, call := range calls {
		resp, err := call.Wait()
		if err != nil {
			t.Fatalf("call %d never recovered from shed: %v", i, err)
		}
		if len(resp.Rows) != 1 {
			t.Fatalf("call %d: %+v", i, resp)
		}
		if call.Attempts() > 0 {
			retried++
		}
	}
	if retried == 0 {
		t.Fatal("no call was shed while the slot was pinned — the test exercised nothing")
	}
	// The shed statistics confirm typed refusals happened server-side.
	if db.Govern().Admission.Shed == 0 {
		t.Fatal("admission gate recorded no sheds")
	}
}

// TestPipelineRetransmitIsAtMostOnce: a retransmission (same qid, same
// MAC) racing its original execution draws the portal's "query id
// replayed" refusal, which the pipeline ignores — the original response
// completes the call, exactly one execution happens, and the sequence
// tracker sees no duplicate.
func TestPipelineRetransmitIsAtMostOnce(t *testing.T) {
	db, err := veridb.Open(veridb.Config{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	seedBig(t, db, 20000)
	key := []byte("rexmit-pipe")
	db.ProvisionClient("alice", key)
	alice := client.New("alice", key)

	ln := startServer(t, db, server.Config{})
	p := dialPipeline(t, alice, ln.Addr().String(), client.PipelineConfig{
		MaxInflight:  4,
		RetryTimeout: 10 * time.Millisecond,
		Retries:      200,
	})

	// The scan takes many RetryTimeouts: the call retransmits while the
	// original executes.
	call := p.Go(`SELECT a, b FROM big WHERE b >= 0 ORDER BY a`)
	resp, rerr := call.Wait()
	if rerr != nil {
		t.Fatalf("slow call failed: %v", rerr)
	}
	if len(resp.Rows) != 20000 {
		t.Fatalf("scan returned %d rows", len(resp.Rows))
	}
	if call.Attempts() == 0 {
		t.Fatal("call never retransmitted — RetryTimeout did not fire")
	}
	// One more query: the connection survived the replay refusals.
	if resp, err := p.Do(`SELECT a FROM big WHERE a = 7`); err != nil || len(resp.Rows) != 1 {
		t.Fatalf("follow-up after retransmissions: %v %+v", err, resp)
	}
}

// TestPipelineSurfacesCapacityRefusal: the server's connection-capacity
// refusal is a JSON line even on a binary connection; the pipeline's
// first-byte fallback surfaces it as a structured error instead of a
// bad-magic mystery.
func TestPipelineSurfacesCapacityRefusal(t *testing.T) {
	db, err := veridb.Open(veridb.Config{Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	key := []byte("cap-pipe")
	db.ProvisionClient("alice", key)
	alice := client.New("alice", key)

	ln := startServer(t, db, server.Config{MaxConns: 1})

	// Occupy the only connection slot.
	holder, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	if err := wire.WriteFrame(holder, wire.Frame{Type: wire.THealth, QID: 1}); err != nil {
		t.Fatal(err)
	}
	// Wait until the holder is being served (its health response arrives).
	if _, err := wire.ReadFrame(holder, 0); err != nil {
		t.Fatalf("holder connection not serving: %v", err)
	}

	p := dialPipeline(t, alice, ln.Addr().String(), client.PipelineConfig{MaxInflight: 2})
	_, derr := p.Do(`SELECT 1`)
	if derr == nil {
		t.Fatal("call over refused connection succeeded")
	}
	if !errors.Is(derr, client.ErrPipelineClosed) || !strings.Contains(derr.Error(), "capacity") {
		t.Fatalf("refusal surfaced as %v", derr)
	}
	// Later calls fail fast rather than hanging on a dead window.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := p.Do(`SELECT 1`); err == nil {
			t.Error("call on dead pipeline succeeded")
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("call on dead pipeline hung")
	}
}

// TestPipelineServerVanishesMidFlight: the peer dying mid-pipeline fails
// every in-flight call with ErrPipelineClosed instead of stranding
// waiters.
func TestPipelineServerVanishesMidFlight(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- conn
	}()

	alice := client.New("alice", []byte("k"))
	p := dialPipeline(t, alice, ln.Addr().String(), client.PipelineConfig{MaxInflight: 4})
	calls := []*client.Call{p.Go(`SELECT 1`), p.Go(`SELECT 2`)}

	conn := <-accepted
	buf := make([]byte, 256)
	conn.Read(buf) // absorb some frames, then vanish
	conn.Close()

	for i, call := range calls {
		if _, err := call.Wait(); !errors.Is(err, client.ErrPipelineClosed) {
			t.Fatalf("call %d: want ErrPipelineClosed, got %v", i, err)
		}
	}
}
