// Retrying transport: timeouts and exponential backoff over an unreliable
// channel to the portal. Safe retries lean on two protocol properties:
// requests are idempotent at the portal (a retried qid returns the cached
// original endorsement, never a re-execution), and every response is
// MAC-verified after the transport returns it, so a retry can trust
// nothing about the channel.
package client

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"veridb/internal/govern"
	"veridb/internal/portal"
)

// ErrTimeout means an attempt (or the whole retry budget) ran out of time
// without a response.
var ErrTimeout = errors.New("client: request timed out")

// Transport delivers one signed request to the portal and returns its
// response. Implementations may be a TCP session, an in-process call, or
// a chaos-wrapped channel; RoundTrip errors are treated as retryable.
type Transport interface {
	RoundTrip(req portal.Request) (*portal.Response, error)
}

// TransportFunc adapts a function to the Transport interface.
type TransportFunc func(req portal.Request) (*portal.Response, error)

// RoundTrip implements Transport.
func (f TransportFunc) RoundTrip(req portal.Request) (*portal.Response, error) { return f(req) }

// RetryConfig bounds the retry loop.
type RetryConfig struct {
	// Timeout caps each attempt. Zero means 2s.
	Timeout time.Duration
	// Retries is how many re-sends follow the first attempt. Zero means 3.
	// Use -1 for no retries.
	Retries int
	// Backoff is the sleep before the first retry, doubling per attempt.
	// Zero means 10ms.
	Backoff time.Duration
	// sleep stubs the backoff delay in tests.
	sleep func(time.Duration)
}

func (cfg *RetryConfig) fill() {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.Retries == 0 {
		cfg.Retries = 3
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 10 * time.Millisecond
	}
	if cfg.sleep == nil {
		cfg.sleep = time.Sleep
	}
}

// Do signs query once and delivers it through t, retrying timed-out or
// failed attempts with exponential backoff. Every transport retry reuses
// the same qid and MAC, so the portal either serves the request once or
// replays the cached endorsement — at-most-once execution survives lost
// responses. The returned response is already verified (MAC, sequence
// number, quarantine flag); verification failures are never retried,
// because a forged or rolled-back response is evidence, not noise — with
// one exception: an authenticated overload refusal (govern.ErrOverloaded)
// is an honest "come back later", retried after the server's RetryAfter
// hint (or the exponential backoff, whichever is longer) plus jitter.
// Overload retries sign a FRESH qid: the refusal was endorsed and cached
// under the old one, so re-sending it would replay the refusal forever
// instead of re-attempting admission.
func (c *Client) Do(t Transport, query string, cfg RetryConfig) (*portal.Response, error) {
	cfg.fill()
	req := c.NewRequest(query)
	var lastErr error
	for attempt := 0; attempt <= cfg.Retries; attempt++ {
		if attempt > 0 {
			delay := cfg.Backoff << (attempt - 1)
			var oe *govern.OverloadedError
			if errors.As(lastErr, &oe) {
				if oe.RetryAfter > delay {
					delay = oe.RetryAfter
				}
				// Jitter de-synchronises a herd of shed clients that would
				// otherwise all honor the same RetryAfter hint at once.
				delay += time.Duration(rand.Int63n(int64(delay)/2 + 1))
				req = c.NewRequest(query)
			}
			cfg.sleep(delay)
		}
		resp, err := roundTripTimeout(t, req, cfg.Timeout)
		if err != nil {
			lastErr = err
			continue
		}
		verr := c.VerifyResponse(req, resp)
		if verr == nil {
			return resp, nil
		}
		if errors.Is(verr, govern.ErrOverloaded) {
			lastErr = verr
			continue
		}
		// Auth/integrity failures and ordinary execution errors terminate
		// the loop — retrying cannot make a forged response honest, and a
		// rollback or quarantine signal must reach the caller.
		return resp, verr
	}
	return nil, fmt.Errorf("client: qid %d failed after %d attempts: %w", req.QID, cfg.Retries+1, lastErr)
}

// roundTripTimeout runs one attempt with a deadline. A late response from
// an abandoned attempt is discarded: the retry already re-requested it
// under the same qid, so the portal's cache keeps the two consistent.
func roundTripTimeout(t Transport, req portal.Request, d time.Duration) (*portal.Response, error) {
	type result struct {
		resp *portal.Response
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		resp, err := t.RoundTrip(req)
		ch <- result{resp, err}
	}()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case r := <-ch:
		if r.err != nil {
			return nil, r.err
		}
		if r.resp == nil {
			return nil, errors.New("client: transport returned no response")
		}
		return r.resp, nil
	case <-timer.C:
		return nil, fmt.Errorf("%w: attempt exceeded %v", ErrTimeout, d)
	}
}
