package client

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"veridb/internal/enclave"
	"veridb/internal/portal"
)

// countExec counts executions so tests can pin at-most-once semantics.
type countExec struct{ n int }

func (e *countExec) Execute(query string) (*portal.Result, error) {
	e.n++
	return &portal.Result{Columns: []string{"q"}}, nil
}

func newClientPortal(t *testing.T, exec portal.Executor) (*Client, *portal.Portal, []byte) {
	t.Helper()
	enc := enclave.NewForTest(11)
	key := []byte("shared-key")
	enc.ProvisionMACKey("alice", key)
	return New("alice", key), portal.New(enc, exec), key
}

func noSleep(cfg RetryConfig) RetryConfig {
	cfg.sleep = func(time.Duration) {}
	return cfg
}

// TestDoRetriesLostResponse: the transport delivers the request but loses
// the response; the retry (same qid) gets the portal's cached endorsement
// and the query executes exactly once.
func TestDoRetriesLostResponse(t *testing.T) {
	exec := &countExec{}
	c, p, _ := newClientPortal(t, exec)
	calls := 0
	tr := TransportFunc(func(req portal.Request) (*portal.Response, error) {
		calls++
		resp, err := p.Serve(req)
		if calls == 1 {
			return nil, errors.New("connection reset (response lost)")
		}
		return resp, err
	})
	resp, err := c.Do(tr, "SELECT 1", noSleep(RetryConfig{Timeout: time.Second}))
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("transport called %d times, want 2", calls)
	}
	if exec.n != 1 {
		t.Fatalf("query executed %d times — retry was not idempotent", exec.n)
	}
	if resp.Seq == 0 {
		t.Fatalf("resp %+v", resp)
	}
}

// TestDoTimesOutHungTransport: a transport that never answers exhausts
// the per-attempt timeout and the retry budget.
func TestDoTimesOutHungTransport(t *testing.T) {
	c, _, _ := newClientPortal(t, &countExec{})
	// Each abandoned attempt's goroutine keeps running (it hangs forever),
	// so the counter is shared across goroutines — atomic, not plain int.
	var attempts atomic.Int32
	tr := TransportFunc(func(req portal.Request) (*portal.Response, error) {
		attempts.Add(1)
		select {} // hang forever
	})
	_, err := c.Do(tr, "SELECT 1", noSleep(RetryConfig{Timeout: 10 * time.Millisecond, Retries: 2}))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("hung transport returned %v", err)
	}
	if n := attempts.Load(); n != 3 {
		t.Fatalf("attempted %d times, want 3", n)
	}
}

// TestDoBackoffDoubles pins the exponential backoff schedule.
func TestDoBackoffDoubles(t *testing.T) {
	c, _, _ := newClientPortal(t, &countExec{})
	var slept []time.Duration
	cfg := RetryConfig{
		Timeout: time.Second,
		Retries: 3,
		Backoff: 10 * time.Millisecond,
		sleep:   func(d time.Duration) { slept = append(slept, d) },
	}
	tr := TransportFunc(func(req portal.Request) (*portal.Response, error) {
		return nil, errors.New("down")
	})
	if _, err := c.Do(tr, "SELECT 1", cfg); err == nil {
		t.Fatal("dead transport succeeded")
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("slept %v, want %v", slept, want)
		}
	}
}

// TestDoNeverRetriesForgedResponse: a MAC failure is evidence, not noise —
// the loop must stop immediately instead of re-requesting.
func TestDoNeverRetriesForgedResponse(t *testing.T) {
	c, _, _ := newClientPortal(t, &countExec{})
	calls := 0
	tr := TransportFunc(func(req portal.Request) (*portal.Response, error) {
		calls++
		return &portal.Response{QID: req.QID, Seq: 1, MAC: []byte("forged")}, nil
	})
	_, err := c.Do(tr, "SELECT 1", noSleep(RetryConfig{Timeout: time.Second, Retries: 5}))
	if !errors.Is(err, ErrBadMAC) {
		t.Fatalf("forged response returned %v", err)
	}
	if calls != 1 {
		t.Fatalf("forged response retried %d times", calls)
	}
}

// TestDoSurfacesQuarantine: an authenticated quarantine response comes
// back as ErrQuarantined, immediately and without retries.
func TestDoSurfacesQuarantine(t *testing.T) {
	qexec := &quarantinedExec{err: errors.New("tamper alarm: page 3")}
	c, p, _ := newClientPortal(t, qexec)
	calls := 0
	tr := TransportFunc(func(req portal.Request) (*portal.Response, error) {
		calls++
		return p.Serve(req)
	})
	resp, err := c.Do(tr, "SELECT 1", noSleep(RetryConfig{Timeout: time.Second, Retries: 5}))
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("quarantine surfaced as %v", err)
	}
	if calls != 1 {
		t.Fatalf("quarantine retried %d times", calls)
	}
	if resp == nil || !resp.Quarantined {
		t.Fatalf("resp %+v", resp)
	}
}

type quarantinedExec struct{ err error }

func (e *quarantinedExec) Execute(string) (*portal.Result, error) { return &portal.Result{}, nil }
func (e *quarantinedExec) QuarantineError() error                 { return e.err }

// TestVerifyResponseTypedRollback: a server replaying an old sequence
// number (state rollback) yields a *RollbackError carrying the evidence.
func TestVerifyResponseTypedRollback(t *testing.T) {
	c, p, key := newClientPortal(t, &countExec{})
	req1 := c.NewRequest("SELECT 1")
	resp1, err := p.Serve(req1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyResponse(req1, resp1); err != nil {
		t.Fatal(err)
	}
	// The "server" answers the next request with the previous sequence
	// number, properly MACed — exactly what a rolled-back-and-replayed
	// instance would produce.
	req2 := c.NewRequest("SELECT 2")
	rolled := &portal.Response{QID: req2.QID, Seq: resp1.Seq}
	rolled.MAC = portal.SignResponse(key, rolled)
	err = c.VerifyResponse(req2, rolled)
	var rb *RollbackError
	if !errors.As(err, &rb) {
		t.Fatalf("replayed seq returned %v, want *RollbackError", err)
	}
	if !errors.Is(err, ErrRollback) {
		t.Fatal("typed rollback does not match ErrRollback")
	}
	if rb.Seq != resp1.Seq || rb.Lo > rb.Seq || rb.Hi < rb.Seq {
		t.Fatalf("evidence %+v for replayed seq %d", rb, resp1.Seq)
	}
}
