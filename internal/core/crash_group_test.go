package core

// The crash-point matrix under group commit. The serial matrix reads its
// cut points off the WAL size after each ack; a group committer lands
// several records in one write+fsync, so per-ack sizes no longer fall on
// record boundaries and the acked order no longer equals the on-disk
// order. Both are re-derived from the log itself: wal.Boundaries scans
// the pristine file's length prefixes for record extents, and the
// committed statement order is the record order recovered from a copy
// (wal.Open may truncate torn tails in place, so the pristine file is
// never opened directly). Kill points inside a half-synced group are the
// interior record boundaries and midpoints of that group's extent; the
// recovered image must still equal the committed-prefix oracle exactly.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"veridb/internal/chaos"
	"veridb/internal/wal"
)

func TestCrashPointMatrixGroupCommit(t *testing.T) {
	workers, per := 4, 15
	if testing.Short() {
		workers, per = 2, 8
	}
	base := t.TempDir()
	pristine := filepath.Join(base, "pristine")

	db, err := Open(groupCommitConfig(pristine))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute(`CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := w*per + i
				if _, err := db.Execute(fmt.Sprintf(`INSERT INTO kv VALUES (%d, 'row-%d')`, k, k)); err != nil {
					t.Errorf("worker %d insert %d: %v", w, k, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	walName := filepath.Base(db.WALPath())
	db.Close()

	// Committed statement order = WAL record order, read from a copy.
	extract := filepath.Join(base, "extract")
	if err := chaos.CopyDir(pristine, extract); err != nil {
		t.Fatal(err)
	}
	l, rec, err := wal.Open(extract)
	if err != nil {
		t.Fatal(err)
	}
	stmts := make([]string, 0, len(rec.Tail))
	for _, r := range rec.Tail {
		stmts = append(stmts, string(r.Payload))
	}
	l.Close()
	if len(stmts) != 1+workers*per {
		t.Fatalf("pristine log holds %d records, want %d", len(stmts), 1+workers*per)
	}

	// Plain-Go row oracle over the committed order: states[k] is kv's
	// sorted row set after exactly k records.
	states := [][]string{nil}
	var rows []string
	for i, s := range stmts {
		if i == 0 {
			states = append(states, []string{}) // CREATE TABLE
			continue
		}
		var k int
		if _, err := fmt.Sscanf(s, "INSERT INTO kv VALUES (%d", &k); err != nil {
			t.Fatalf("unexpected WAL statement %q: %v", s, err)
		}
		rows = append(rows, fmt.Sprintf("%d|row-%d", k, k))
		snap := append([]string(nil), rows...)
		sort.Strings(snap)
		states = append(states, snap)
	}

	// Record extents from the structural scanner, not from ack-time file
	// sizes (those land mid-group).
	buf, err := os.ReadFile(filepath.Join(pristine, walName))
	if err != nil {
		t.Fatal(err)
	}
	boundaries := wal.Boundaries(buf)
	if len(boundaries) != len(stmts)+1 {
		t.Fatalf("scanner found %d boundaries, want %d", len(boundaries), len(stmts)+1)
	}

	type cutPoint struct {
		off  int64
		torn bool
	}
	var cuts []cutPoint
	for i := range boundaries {
		cuts = append(cuts, cutPoint{boundaries[i], false})
		cuts = append(cuts, cutPoint{boundaries[i], true})
		if i+1 < len(boundaries) {
			cuts = append(cuts, cutPoint{(boundaries[i] + boundaries[i+1]) / 2, false})
		}
	}
	cuts = append(cuts, cutPoint{0, false}, cutPoint{boundaries[0] / 2, false})
	sort.Slice(cuts, func(i, j int) bool { return cuts[i].off < cuts[j].off })

	o := newOracle(t, stmts)
	work := filepath.Join(base, "work")
	for _, c := range cuts {
		kind := "truncate"
		if c.torn {
			kind = "tear"
		}
		label := fmt.Sprintf("%s@%d", kind, c.off)
		os.RemoveAll(work)
		if err := chaos.CopyDir(pristine, work); err != nil {
			t.Fatal(err)
		}
		walFile := filepath.Join(work, walName)
		if c.torn {
			err = chaos.TornWriteAt(walFile, c.off)
		} else {
			err = chaos.TruncateAt(walFile, c.off)
		}
		if err != nil {
			t.Fatal(err)
		}
		k := committedPrefix(boundaries, c.off)
		recoverAndCheck(t, work, o, states[k], k, c.torn, label)
	}
}
