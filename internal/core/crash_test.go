package core

// The crash-point matrix: the headline proof that the authenticated WAL
// delivers exactly-the-committed-prefix recovery. A scripted workload
// runs against a durable database while the harness records the WAL byte
// offset after every acked statement; then, for every record boundary
// and every mid-record offset, a copy of the data directory is damaged
// the way a crash would damage it (clean truncation, torn half-synced
// tail) and recovered. The recovered image must equal an in-memory
// oracle that executed exactly the committed prefix — same rows, same
// WAL sequence number, same resident RSWS checksum (the oracle shares
// the deterministic Seed, so protected-op histories coincide) — or, for
// torn writes whose garbage is indistinguishable from tamper, land in
// quarantine. Zero acked-write loss, zero unacked resurrection, nothing
// in between.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"veridb/internal/chaos"
)

const crashSeed = 42

// crashWorkload builds n deterministic, always-succeeding statements —
// a CREATE TABLE followed by interleaved inserts, updates of live keys
// and deletes of the oldest live key — plus the committed-prefix oracle
// for rows: states[k] is kv's sorted "k|v" row set after exactly k
// statements (nil before the CREATE TABLE lands). Keeping the row oracle
// in plain Go matters: reading rows out of a protected database is
// itself a protected operation that bumps RSWS versions, so a database
// oracle could not be queried without perturbing its own checksum.
func crashWorkload(n int) (stmts []string, states [][]string) {
	stmts = []string{`CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)`}
	table := map[int]string{}
	snapshot := func() []string {
		var out []string
		for k, v := range table {
			out = append(out, fmt.Sprintf("%d|%s", k, v))
		}
		sort.Strings(out)
		return out
	}
	states = [][]string{nil, {}} // before and after CREATE TABLE
	var live []int
	next := 0
	for len(stmts) < n {
		i := len(stmts)
		switch {
		case i%11 == 0 && len(live) > 2:
			k := live[0]
			live = live[1:]
			stmts = append(stmts, fmt.Sprintf(`DELETE FROM kv WHERE k = %d`, k))
			delete(table, k)
		case i%7 == 0 && len(live) > 0:
			k := live[len(live)-1]
			stmts = append(stmts, fmt.Sprintf(`UPDATE kv SET v = 'u%d' WHERE k = %d`, i, k))
			table[k] = fmt.Sprintf("u%d", i)
		default:
			stmts = append(stmts, fmt.Sprintf(`INSERT INTO kv VALUES (%d, 'v%d')`, next, next))
			table[next] = fmt.Sprintf("v%d", next)
			live = append(live, next)
			next++
		}
		states = append(states, snapshot())
	}
	return stmts, states[:n+1]
}

// tableRows renders kv's rows sorted, or nil if the table doesn't exist
// yet (prefixes shorter than the CREATE TABLE).
func tableRows(t *testing.T, db *DB) []string {
	t.Helper()
	res, err := db.Execute(`SELECT k, v FROM kv`)
	if err != nil {
		if strings.Contains(err.Error(), "kv") { // unknown table
			return nil
		}
		t.Fatalf("SELECT: %v", err)
	}
	var out []string
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		out = append(out, strings.Join(parts, "|"))
	}
	sort.Strings(out)
	return out
}

func sameRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// oracle replays workload prefixes into a memory-only database with the
// same deterministic seed, advancing monotonically so a sorted sweep of
// cut points reuses one instance. It exists only to produce reference
// resident checksums; it is never queried (protected reads would bump
// RSWS versions and perturb the checksum). VerifyAll interleaving is
// checksum-neutral, so running it once per prefix matches a recovery
// that ran it once at the end.
type oracle struct {
	db    *DB
	stmts []string
	done  int
	sums  map[int]string
}

func newOracle(t *testing.T, stmts []string) *oracle {
	db, err := Open(Config{Seed: crashSeed})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return &oracle{db: db, stmts: stmts, sums: map[int]string{}}
}

// checksumAt returns the resident checksum after exactly k statements
// and a VerifyAll scan.
func (o *oracle) checksumAt(t *testing.T, k int) string {
	t.Helper()
	if sum, ok := o.sums[k]; ok {
		return sum
	}
	if k < o.done {
		t.Fatalf("oracle cannot rewind: at %d, asked for %d", o.done, k)
	}
	for ; o.done < k; o.done++ {
		if _, err := o.db.Execute(o.stmts[o.done]); err != nil {
			t.Fatalf("oracle statement %d (%s): %v", o.done, o.stmts[o.done], err)
		}
	}
	if err := o.db.Memory().VerifyAll(); err != nil {
		t.Fatalf("oracle VerifyAll at %d: %v", k, err)
	}
	sum := fmt.Sprintf("%v", o.db.Memory().ResidentChecksum())
	o.sums[k] = sum
	return sum
}

// runDurableWorkload executes stmts against a fresh durable database in
// dir and returns the WAL size after every statement: boundaries[k] is
// the log's byte size once exactly k statements are committed
// (boundaries[0] is the header).
func runDurableWorkload(t *testing.T, dir string, cfg Config, stmts []string) (boundaries []int64, walName string) {
	t.Helper()
	cfg.DataDir = dir
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	size, err := chaos.FileSize(db.WALPath())
	if err != nil {
		t.Fatal(err)
	}
	boundaries = append(boundaries, size)
	for i, s := range stmts {
		if _, err := db.Execute(s); err != nil {
			t.Fatalf("statement %d (%s): %v", i, s, err)
		}
		size, err := chaos.FileSize(db.WALPath())
		if err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, size)
	}
	return boundaries, filepath.Base(db.WALPath())
}

// committedPrefix maps a cut offset to the number of fully-synced
// statements below it.
func committedPrefix(boundaries []int64, cut int64) int {
	k := 0
	for i := 1; i < len(boundaries); i++ {
		if boundaries[i] <= cut {
			k = i
		}
	}
	return k
}

// recoverAndCheck recovers the damaged directory and asserts the exact
// committed prefix: k statements applied, WAL sequence k, resident
// checksum equal to the seed-matched oracle's, rows equal to the plain-Go
// row oracle. allowQuarantine admits the tamper verdict (torn-write
// garbage is sometimes indistinguishable from an adversarial edit);
// recovery-with-wrong-state is never admitted.
func recoverAndCheck(t *testing.T, dir string, o *oracle, wantRows []string, k int, allowQuarantine bool, label string) {
	t.Helper()
	db, err := Open(Config{Seed: crashSeed, DataDir: dir})
	if err != nil {
		t.Fatalf("%s: reopen: %v", label, err)
	}
	defer db.Close()
	if qerr := db.QuarantineError(); qerr != nil {
		if !allowQuarantine {
			t.Fatalf("%s: unexpected quarantine: %v", label, qerr)
		}
		// Quarantine must fence statements, not serve damaged state.
		if _, err := db.Execute(`SELECT k, v FROM kv`); !errors.Is(err, ErrQuarantined) {
			t.Fatalf("%s: quarantined DB served a query (err=%v)", label, err)
		}
		return
	}
	if got := db.WALNextSeq(); got != uint64(k) {
		t.Fatalf("%s: recovered WAL seq %d, want %d", label, got, k)
	}
	if err := db.Memory().VerifyAll(); err != nil {
		t.Fatalf("%s: VerifyAll after recovery: %v", label, err)
	}
	// Checksum before rows: the SELECT below performs protected reads
	// that bump RSWS versions and change the resident checksum.
	got, want := fmt.Sprintf("%v", db.Memory().ResidentChecksum()), o.checksumAt(t, k)
	if got != want {
		t.Fatalf("%s: resident checksum %s, oracle %s", label, got, want)
	}
	if gotRows := tableRows(t, db); !sameRows(gotRows, wantRows) {
		t.Fatalf("%s: recovered rows %v, want %v", label, gotRows, wantRows)
	}
}

// TestCrashPointMatrix kills the log at every record boundary and every
// mid-record offset of a 200-statement workload, by clean truncation and
// by torn half-synced writes, and requires exact committed-prefix
// recovery (or quarantine, for tears only) at each of the ~600 points.
func TestCrashPointMatrix(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 40
	}
	stmts, states := crashWorkload(n)
	base := t.TempDir()
	pristine := filepath.Join(base, "pristine")
	boundaries, walName := runDurableWorkload(t, pristine, Config{Seed: crashSeed}, stmts)

	// Cut points: each boundary, and the midpoint of each record's extent.
	type cutPoint struct {
		off  int64
		torn bool // TornWriteAt instead of TruncateAt
	}
	var cuts []cutPoint
	for i := range boundaries {
		cuts = append(cuts, cutPoint{boundaries[i], false})
		cuts = append(cuts, cutPoint{boundaries[i], true})
		if i+1 < len(boundaries) {
			cuts = append(cuts, cutPoint{(boundaries[i] + boundaries[i+1]) / 2, false})
		}
	}
	// Header damage: a crash during the very first fsync.
	cuts = append(cuts, cutPoint{0, false}, cutPoint{boundaries[0] / 2, false})
	sort.Slice(cuts, func(i, j int) bool { return cuts[i].off < cuts[j].off })

	o := newOracle(t, stmts)
	work := filepath.Join(base, "work")
	for _, c := range cuts {
		kind := "truncate"
		if c.torn {
			kind = "tear"
		}
		label := fmt.Sprintf("%s@%d", kind, c.off)
		os.RemoveAll(work)
		if err := chaos.CopyDir(pristine, work); err != nil {
			t.Fatal(err)
		}
		walFile := filepath.Join(work, walName)
		var err error
		if c.torn {
			err = chaos.TornWriteAt(walFile, c.off)
		} else {
			err = chaos.TruncateAt(walFile, c.off)
		}
		if err != nil {
			t.Fatal(err)
		}
		k := committedPrefix(boundaries, c.off)
		recoverAndCheck(t, work, o, states[k], k, c.torn, label)
	}
}

// TestCrashRecoveredDBKeepsWorking: after a mid-record crash the
// recovered instance accepts new writes, and a second recovery sees them
// appended cleanly after the surviving prefix.
func TestCrashRecoveredDBKeepsWorking(t *testing.T) {
	stmts, _ := crashWorkload(30)
	dir := t.TempDir()
	boundaries, walName := runDurableWorkload(t, dir, Config{Seed: crashSeed}, stmts)

	cut := (boundaries[20] + boundaries[21]) / 2
	if err := chaos.TruncateAt(filepath.Join(dir, walName), cut); err != nil {
		t.Fatal(err)
	}
	db, err := Open(Config{Seed: crashSeed, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if qerr := db.QuarantineError(); qerr != nil {
		t.Fatalf("clean truncation quarantined: %v", qerr)
	}
	if _, err := db.Execute(`INSERT INTO kv VALUES (9001, 'post-crash')`); err != nil {
		t.Fatal(err)
	}
	wantSeq := db.WALNextSeq()
	rows := tableRows(t, db)
	db.Close()

	db2, err := Open(Config{Seed: crashSeed, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if qerr := db2.QuarantineError(); qerr != nil {
		t.Fatalf("second recovery quarantined: %v", qerr)
	}
	if got := db2.WALNextSeq(); got != wantSeq {
		t.Fatalf("second recovery seq %d, want %d", got, wantSeq)
	}
	if got := tableRows(t, db2); !sameRows(got, rows) {
		t.Fatalf("second recovery rows %v, want %v", got, rows)
	}
}

// TestCrashPointMatrixWithCheckpoints reruns the boundary sweep over the
// final WAL generation of a workload that checkpointed several times.
// Segment restore rebuilds rows through the protected write interfaces
// with a fresh version history, so the assertion is rows + VerifyAll +
// sequence continuity rather than checksum equality.
func TestCrashPointMatrixWithCheckpoints(t *testing.T) {
	stmts, states := crashWorkload(60)
	cfg := Config{Seed: crashSeed, CheckpointEvery: 17}

	pristine := filepath.Join(t.TempDir(), "pristine")
	cfg.DataDir = pristine
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// boundary bookkeeping per statement: WAL file and size after ack.
	type mark struct {
		wal  string
		size int64
	}
	marks := []mark{}
	for i, s := range stmts {
		if _, err := db.Execute(s); err != nil {
			t.Fatalf("statement %d: %v", i, s)
		}
		size, err := chaos.FileSize(db.WALPath())
		if err != nil {
			t.Fatal(err)
		}
		marks = append(marks, mark{filepath.Base(db.WALPath()), size})
	}
	finalWAL := db.WALPath()
	headerSize, err := chaos.FileSize(finalWAL)
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	finalName := filepath.Base(finalWAL)
	_ = headerSize

	work := filepath.Join(t.TempDir(), "work")
	check := func(cut int64, k int, label string) {
		os.RemoveAll(work)
		if err := chaos.CopyDir(pristine, work); err != nil {
			t.Fatal(err)
		}
		if err := chaos.TruncateAt(filepath.Join(work, finalName), cut); err != nil {
			t.Fatal(err)
		}
		rdb, err := Open(Config{Seed: crashSeed, DataDir: work})
		if err != nil {
			t.Fatalf("%s: reopen: %v", label, err)
		}
		defer rdb.Close()
		if qerr := rdb.QuarantineError(); qerr != nil {
			t.Fatalf("%s: quarantined: %v", label, qerr)
		}
		if got := rdb.WALNextSeq(); got != uint64(k) {
			t.Fatalf("%s: seq %d, want %d", label, got, k)
		}
		if err := rdb.Memory().VerifyAll(); err != nil {
			t.Fatalf("%s: VerifyAll: %v", label, err)
		}
		if got := tableRows(t, rdb); !sameRows(got, states[k]) {
			t.Fatalf("%s: rows %v, want %v", label, got, states[k])
		}
	}

	// Sweep every boundary inside the final generation, plus one
	// mid-record point per record.
	prev := int64(-1)
	for i, m := range marks {
		if m.wal != finalName {
			continue
		}
		check(m.size, i+1, fmt.Sprintf("ckpt-boundary@%d", m.size))
		if prev >= 0 && m.size > prev {
			mid := (prev + m.size) / 2
			// committed prefix at mid is i (statement i+1 is torn).
			check(mid, i, fmt.Sprintf("ckpt-mid@%d", mid))
		}
		prev = m.size
	}
}

// TestMidLogBitFlipQuarantines: an in-place bit flip inside the WAL body
// — intact records behind it — is tamper, and the §5.1 containment
// posture applies: the instance opens, answers health checks, and fences
// every statement with ErrQuarantined.
func TestMidLogBitFlipQuarantines(t *testing.T) {
	stmts, _ := crashWorkload(40)
	dir := t.TempDir()
	boundaries, walName := runDurableWorkload(t, dir, Config{Seed: crashSeed}, stmts)

	// Flip one bit inside the first quarter of the log's record area.
	off := boundaries[0] + (boundaries[len(boundaries)-1]-boundaries[0])/4
	if err := chaos.FlipBit(filepath.Join(dir, walName), off, 3); err != nil {
		t.Fatal(err)
	}
	db, err := Open(Config{Seed: crashSeed, DataDir: dir})
	if err != nil {
		t.Fatalf("tampered open should quarantine, not error: %v", err)
	}
	defer db.Close()
	if qerr := db.QuarantineError(); qerr == nil {
		t.Fatal("bit-flipped WAL not quarantined")
	}
	if _, err := db.Execute(`SELECT k FROM kv`); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("statement on quarantined recovery: %v", err)
	}
	if _, err := db.Execute(`INSERT INTO kv VALUES (7, 'x')`); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("write on quarantined recovery: %v", err)
	}
}
