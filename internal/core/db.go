// Package core is the VeriDB kernel: it wires the simulated enclave, the
// write-read consistent memory, the verifiable storage, the query compiler
// and the execution engine into one database instance, and executes parsed
// SQL statements against it. The public veridb package wraps this.
package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"veridb/internal/enclave"
	"veridb/internal/engine"
	"veridb/internal/govern"
	"veridb/internal/plan"
	"veridb/internal/portal"
	"veridb/internal/record"
	"veridb/internal/sql"
	"veridb/internal/storage"
	"veridb/internal/vmem"
)

// Config assembles a database instance.
type Config struct {
	// Enclave configures the simulated SGX hardware.
	Enclave enclave.Config
	// Memory configures the write-read consistent memory (§4.1, §4.3).
	Memory vmem.Config
	// Join selects the default join strategy (§6.3 compares plans).
	Join plan.JoinStrategy
	// VerifyEveryOps starts the background verifier scanning one page per
	// this many operations (Fig. 10's x). Zero leaves verification manual.
	VerifyEveryOps int
	// TableShards is the hash-shard count for tables created through SQL
	// (each shard has its own latch, chains and pages). Zero or one keeps
	// the unsharded layout bit-for-bit.
	TableShards int
	// ExecBatchSize is the vectorized execution batch size: queries pull
	// batches of this many rows through the operator tree instead of one
	// tuple at a time. 1 forces the exact legacy tuple-at-a-time path;
	// values > 1 enable batching (the planner still drops trivially small
	// queries to the scalar path). Zero is mapped to the default by the
	// public veridb package.
	ExecBatchSize int
	// Seed, when nonzero, makes the enclave's PRF key deterministic
	// (benchmarks and tests only).
	Seed uint64
	// DataDir enables authenticated durable storage: every mutating
	// statement is appended to a MACed, sequence-chained WAL in this
	// directory before its result is acked, and Open recovers the image
	// (checkpoint segments + WAL tail) through the protected write
	// interfaces behind the VerifyAll gate. Empty keeps the database
	// purely in memory.
	DataDir string
	// CheckpointEvery flushes the verified tables into immutable segment
	// files and rotates the WAL after this many logged statements. Zero
	// disables automatic checkpoints (WAL-only durability); requires
	// DataDir.
	CheckpointEvery int
	// GroupCommitMaxDelay enables the WAL commit pipeline: concurrent
	// mutating statements that land within this window are written and
	// fsynced as one group, sharing the fsync cost. Zero keeps the serial
	// one-fsync-per-statement path (bit-identical default).
	GroupCommitMaxDelay time.Duration
	// GroupCommitMaxBatch closes a commit group early once it holds this
	// many statements, without waiting out the delay window. Zero means no
	// early close. Meaningful only with GroupCommitMaxDelay > 0.
	GroupCommitMaxBatch int
	// PlanCacheSize bounds the LRU cache of compiled statements keyed on
	// normalized SQL (repeated statement shapes skip the parser and
	// planner). Zero disables the cache; the public veridb package maps
	// its zero to a default.
	PlanCacheSize int
	// MVCCGCInterval runs the version garbage collector every interval,
	// reclaiming retired row versions below the watermark-and-pins floor.
	// Zero disables background collection (versions are still pruned
	// opportunistically as writers retire newer ones).
	MVCCGCInterval time.Duration
	// MaxVersionsPerRow caps retained versions per row key; once exceeded
	// the oldest is discarded and snapshots that needed it fail with
	// storage.ErrSnapshotTooOld. Zero retains versions until GC.
	MaxVersionsPerRow int
	// StatementTimeout bounds each statement's wall-clock execution: the
	// context threaded through the engine is cancelled at the deadline and
	// the statement fails with context.DeadlineExceeded, releasing its
	// scans, latches, snapshot pins and merge producers on the way out.
	// Zero disables the server-side deadline (per-request deadlines on the
	// wire still apply).
	StatementTimeout time.Duration
	// MemBudget caps the estimated bytes of statement materialisations,
	// MVCC version chains and the portal response cache, process-wide.
	// Statements that would exceed it fail fast with a typed
	// govern.ErrResourceExhausted; under sustained pressure spill-eligible
	// operators degrade to smaller batches first. Zero tracks usage
	// without refusing.
	MemBudget int64
	// MaxConcurrentStatements caps statements executing inside the kernel
	// at once; excess statements wait in a bounded admission queue and are
	// shed with a typed govern.ErrOverloaded (carrying a RetryAfter hint)
	// once the queue is full or AdmissionMaxWait elapses. Zero disables
	// admission control.
	MaxConcurrentStatements int
	// AdmissionQueueDepth bounds how many statements may wait for an
	// execution slot before new arrivals are shed immediately. Meaningful
	// only with MaxConcurrentStatements > 0.
	AdmissionQueueDepth int
	// AdmissionMaxWait bounds how long a queued statement waits for a slot
	// before being shed. Zero maps to a 50ms default. Meaningful only with
	// MaxConcurrentStatements > 0.
	AdmissionMaxWait time.Duration
	// SessionMaxIdle expires a client session's pinned snapshot (BEGIN
	// SNAPSHOT) after this much statement inactivity, unblocking version
	// GC when a client vanishes mid-session. The expired session's next
	// statement fails once with ErrSessionExpired. Zero never expires.
	SessionMaxIdle time.Duration
	// ResponseCacheBytes bounds the portal's retry-idempotence response
	// cache by total estimated bytes (oldest evicted first); the per-client
	// entry cap still applies. Zero keeps the portal default (16 MB).
	ResponseCacheBytes int64
}

// ErrQuarantined wraps every request rejected because the database's
// verifier raised a sticky tamper alarm: the state machine is fenced and
// only failover (Supervisor) or a fresh Recover can restore service.
var ErrQuarantined = errors.New("core: database quarantined after tamper alarm")

// ErrSessionExpired is returned once, on the first statement a client
// issues after the session reaper released its pinned snapshot for idling
// past SessionMaxIdle. The client re-pins with a fresh BEGIN SNAPSHOT.
var ErrSessionExpired = errors.New("core: session snapshot expired after idling past SessionMaxIdle; BEGIN SNAPSHOT again")

// DB is one VeriDB instance.
type DB struct {
	enc    *enclave.Enclave
	mem    *vmem.Memory
	store  *storage.Store
	portal *portal.Portal
	opts   plan.Options
	dur    *durable // nil in memory-only mode

	// planCache holds compiled statements keyed on normalized SQL; nil
	// when PlanCacheSize disables caching.
	planCache *plan.Cache
	// prepared is the PREPARE registry: statement templates by name.
	// Never logged to the WAL — clients re-prepare after a restart.
	prepMu   sync.Mutex
	prepared map[string]*sql.Prepare

	qmu  sync.Mutex
	qerr error // sticky quarantine error, set on first alarm observation

	// sessions tracks per-client snapshot state (BEGIN SNAPSHOT/COMMIT).
	// The portal routes each request through ExecuteSession with the
	// authenticated client ID; library calls share the "" session.
	sessMu   sync.Mutex
	sessions map[string]*session

	// Overload protection (see internal/govern): the process memory
	// budget, the bounded admission gate, and the statement deadline.
	budget      *govern.Budget
	admit       *govern.Admission
	stmtTimeout time.Duration

	// Session idle reaper (SessionMaxIdle): expires abandoned snapshot
	// pins so version GC is never held hostage by a vanished client.
	sessionMaxIdle time.Duration
	reaperStop     chan struct{}
	reaperWG       sync.WaitGroup
	sessExpired    atomic.Int64
}

// session is one client's statement context: at most a pinned read
// snapshot. While pinned, every SELECT reads the pinned committed state
// and mutating statements are rejected (the session is read-only).
type session struct {
	mu   sync.Mutex
	snap *storage.Snapshot
	// lastUse is the last statement touch; the reaper expires pinned
	// sessions idle past SessionMaxIdle.
	lastUse time.Time
	// expired marks a reaped session; its next statement fails once with
	// ErrSessionExpired so the client learns its pin is gone.
	expired bool
}

// pinned returns the session's snapshot, or nil.
func (s *session) pinned() *storage.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snap
}

// Open builds a database.
func Open(cfg Config) (*DB, error) {
	var enc *enclave.Enclave
	var err error
	if cfg.Seed != 0 {
		enc = enclave.NewForTest(cfg.Seed)
	} else if enc, err = enclave.New(cfg.Enclave); err != nil {
		return nil, err
	}
	mem, err := vmem.New(enc, cfg.Memory)
	if err != nil {
		return nil, err
	}
	st := storage.NewStore(mem)
	if cfg.TableShards > 0 {
		st.SetDefaultShards(cfg.TableShards)
	}
	if cfg.MaxVersionsPerRow > 0 {
		st.SetMaxVersions(cfg.MaxVersionsPerRow)
	}
	db := &DB{
		enc:            enc,
		mem:            mem,
		store:          st,
		opts:           plan.Options{Join: cfg.Join, ExecBatchSize: cfg.ExecBatchSize},
		planCache:      plan.NewCache(cfg.PlanCacheSize),
		prepared:       make(map[string]*sql.Prepare),
		sessions:       make(map[string]*session),
		budget:         govern.NewBudget(cfg.MemBudget),
		admit:          govern.NewAdmission(cfg.MaxConcurrentStatements, cfg.AdmissionQueueDepth, cfg.AdmissionMaxWait),
		stmtTimeout:    cfg.StatementTimeout,
		sessionMaxIdle: cfg.SessionMaxIdle,
	}
	st.SetBudget(db.budget)
	db.portal = portal.New(enc, db)
	db.portal.SetBudget(db.budget)
	if cfg.ResponseCacheBytes > 0 {
		db.portal.SetResponseCacheBytes(cfg.ResponseCacheBytes)
	}
	// Recovery runs before the background verifier starts: WAL replay
	// drives the protected interfaces at full speed and must not race a
	// scanner pool, and the recovered image is admitted through an
	// explicit VerifyAll gate inside openDurable instead.
	if cfg.DataDir != "" {
		if err := db.openDurable(cfg); err != nil {
			return nil, err
		}
	}
	// A recovery that found tamper leaves the instance quarantined; the
	// scanner pool stays down (QuarantineError would stop it on its first
	// observation anyway — starting it would only leak work and windows).
	if cfg.VerifyEveryOps > 0 && db.mem.Alarm() == nil {
		if err := mem.StartVerifier(cfg.VerifyEveryOps); err != nil {
			return nil, fmt.Errorf("core: starting background verifier: %w", err)
		}
	}
	// GC starts after recovery: replay churns versions that the very first
	// pass after open reclaims wholesale (nothing pins them).
	if cfg.MVCCGCInterval > 0 {
		if err := st.StartVersionGC(cfg.MVCCGCInterval); err != nil {
			return nil, fmt.Errorf("core: starting version GC: %w", err)
		}
	}
	if cfg.SessionMaxIdle > 0 {
		db.startSessionReaper(cfg.SessionMaxIdle)
	}
	return db, nil
}

// Enclave exposes the simulated enclave (attestation, key provisioning).
func (db *DB) Enclave() *enclave.Enclave { return db.enc }

// Memory exposes the write-read consistent memory (verification control).
func (db *DB) Memory() *vmem.Memory { return db.mem }

// Store exposes the verifiable storage (library-level access).
func (db *DB) Store() *storage.Store { return db.store }

// Portal exposes the query portal for authenticated client sessions.
func (db *DB) Portal() *portal.Portal { return db.portal }

// Close stops background verification and releases the WAL append
// handle. It is idempotent and safe to call concurrently with quarantine
// entry. Every acked statement is already fsynced, so Close never has
// dirty durable state to lose.
func (db *DB) Close() {
	db.mem.StopVerifier()
	db.store.StopVersionGC()
	db.stopSessionReaper()
	if db.dur != nil {
		db.dur.log.Close()
	}
}

// startSessionReaper launches the idle-session collector: every quarter of
// maxIdle it releases pinned snapshots whose session has not issued a
// statement within maxIdle, so an abandoned BEGIN SNAPSHOT stops pinning
// the version-GC floor.
func (db *DB) startSessionReaper(maxIdle time.Duration) {
	stop := make(chan struct{})
	db.reaperStop = stop
	interval := maxIdle / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	db.reaperWG.Add(1)
	go func() {
		defer db.reaperWG.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				db.reapIdleSessions(maxIdle)
			}
		}
	}()
}

func (db *DB) stopSessionReaper() {
	if db.reaperStop != nil {
		close(db.reaperStop)
		db.reaperWG.Wait()
		db.reaperStop = nil
	}
}

// reapIdleSessions closes the pinned snapshot of every session idle past
// maxIdle and marks it expired. A statement in flight refreshed its
// session's lastUse on entry, so only sessions with no recent statement
// activity qualify. Returns how many pins it released.
func (db *DB) reapIdleSessions(maxIdle time.Duration) int {
	db.sessMu.Lock()
	sessions := make([]*session, 0, len(db.sessions))
	for _, s := range db.sessions {
		sessions = append(sessions, s)
	}
	db.sessMu.Unlock()
	cutoff := time.Now().Add(-maxIdle)
	n := 0
	for _, s := range sessions {
		s.mu.Lock()
		if s.snap != nil && s.lastUse.Before(cutoff) {
			s.snap.Close()
			s.snap = nil
			s.expired = true
			n++
		}
		s.mu.Unlock()
	}
	if n > 0 {
		db.sessExpired.Add(int64(n))
	}
	return n
}

// touchSession records statement activity on the session and surfaces a
// pending expiry notice exactly once.
func (db *DB) touchSession(sess *session) error {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.lastUse = time.Now()
	if sess.expired {
		sess.expired = false
		return ErrSessionExpired
	}
	return nil
}

// QuarantineError returns the sticky quarantine error, entering the
// quarantined state on the first call that observes a tamper alarm. A
// quarantined DB fences every statement (the compromised state must never
// be endorsed) and stops its background scanner pool — further scanning of
// memory already known to be compromised is wasted work, and the alarm can
// never clear. Implements portal.Quarantiner.
func (db *DB) QuarantineError() error {
	db.qmu.Lock()
	if db.qerr != nil {
		err := db.qerr
		db.qmu.Unlock()
		return err
	}
	alarm := db.mem.Alarm()
	if alarm == nil {
		db.qmu.Unlock()
		return nil
	}
	db.qerr = fmt.Errorf("%w: %v", ErrQuarantined, alarm)
	err := db.qerr
	db.qmu.Unlock()
	// Outside qmu: StopVerifier waits for the pass in flight, and is
	// idempotent against a concurrent Close.
	db.mem.StopVerifier()
	return err
}

// Health is a point-in-time snapshot of the instance's integrity state:
// what a supervisor polls to decide on failover, and what an operator
// reads to understand an outage.
type Health struct {
	// Quarantined reports whether the DB has fenced itself after an alarm.
	Quarantined bool
	// Alarm is the sticky tamper alarm's text ("" while clean).
	Alarm string
	// Epochs is every RSWS partition's current verification epoch;
	// advancing epochs are evidence the verifier is making progress.
	Epochs []uint64
	// VerifierRunning reports whether the background scanner pool is
	// attached (quarantine and Close both stop it).
	VerifierRunning bool
	// Stats snapshots the memory's operation and verification counters.
	Stats vmem.Stats
}

// Health snapshots the instance's integrity state. Like Execute, it
// observes new alarms, so polling Health is enough to drive quarantine
// entry even on an otherwise idle instance.
func (db *DB) Health() Health {
	qerr := db.QuarantineError()
	h := Health{
		Quarantined:     qerr != nil,
		Epochs:          db.mem.Epochs(),
		VerifierRunning: db.mem.VerifierRunning(),
		Stats:           db.mem.Stats(),
	}
	if alarm := db.mem.Alarm(); alarm != nil {
		h.Alarm = alarm.Error()
	}
	return h
}

// Execute parses and runs one SQL statement. It implements
// portal.Executor, so authenticated requests route through the same path.
// With durable storage enabled, mutating statements go through the
// append-before-ack path: applied, then logged and fsynced, and only
// then acked. With the plan cache enabled, repeated statement text skips
// the parser (and, for SELECT, the planner) entirely.
func (db *DB) Execute(query string) (*portal.Result, error) {
	return db.ExecuteContext(context.Background(), "", query)
}

// ExecuteSession is Execute with a client identity: BEGIN SNAPSHOT and
// COMMIT act on (and SELECTs read through) the named client's session.
// The portal passes each request's authenticated client ID; plain Execute
// shares the anonymous "" session.
func (db *DB) ExecuteSession(clientID, query string) (*portal.Result, error) {
	return db.ExecuteContext(context.Background(), clientID, query)
}

// ExecuteContext is ExecuteSession under the caller's context: the
// statement is cancelled when ctx ends (and, with StatementTimeout set,
// when the server-side deadline elapses — whichever comes first), with
// every resource it held released through the operator Close chain. All
// statements pass the admission gate first; once the server is past
// MaxConcurrentStatements with a full queue, new statements are refused
// with a typed govern.ErrOverloaded. Integrity fences are checked before
// and after admission so quarantine is never masked as overload.
func (db *DB) ExecuteContext(ctx context.Context, clientID, query string) (*portal.Result, error) {
	// Fence first: a quarantined instance refuses with the quarantine
	// error no matter how loaded it is.
	if err := db.QuarantineError(); err != nil {
		return nil, err
	}
	if db.stmtTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, db.stmtTimeout)
		defer cancel()
	}
	release, err := db.admit.Acquire(ctx)
	if err != nil {
		// A quarantine raised while this statement waited takes precedence
		// over the shed: the client must learn the instance is fenced.
		if qerr := db.QuarantineError(); qerr != nil {
			return nil, qerr
		}
		return nil, err
	}
	defer release()
	return db.executeAdmitted(ctx, clientID, query)
}

// executeAdmitted runs one statement that already holds an admission slot.
func (db *DB) executeAdmitted(ctx context.Context, clientID, query string) (*portal.Result, error) {
	sess := db.sessionFor(clientID)
	if err := db.touchSession(sess); err != nil {
		return nil, err
	}
	if db.planCache != nil {
		if key, nerr := sql.Normalize(query); nerr == nil {
			if ent := db.planCache.Get(key, db.store.CatalogVersion()); ent != nil {
				res, err := db.executeCached(ctx, sess, query, ent)
				db.planCache.Return(ent)
				return res, err
			}
			// Capture the version before planning: a concurrent DDL
			// between here and Put leaves a stale version in the entry,
			// which the next Get discards.
			version := db.store.CatalogVersion()
			stmt, err := sql.Parse(query)
			if err != nil {
				return nil, err
			}
			res, op, err := db.dispatchOp(ctx, sess, query, stmt)
			if err == nil && cacheable(stmt) {
				db.planCache.Put(key, stmt, op, version)
			}
			return res, err
		}
		// Normalization failed to lex; fall through so Parse reports it.
	}
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	res, _, err := db.dispatchOp(ctx, sess, query, stmt)
	return res, err
}

// sessionFor returns (creating on first use) the session for a client ID.
func (db *DB) sessionFor(clientID string) *session {
	db.sessMu.Lock()
	defer db.sessMu.Unlock()
	s, ok := db.sessions[clientID]
	if !ok {
		s = &session{}
		db.sessions[clientID] = s
	}
	return s
}

// cacheable reports whether a statement's compilation is worth keeping:
// the repeated-shape statements (queries and DML). DDL and
// prepared-statement control flow always compile fresh.
func cacheable(stmt sql.Statement) bool {
	switch stmt.(type) {
	case *sql.Select, *sql.Insert, *sql.Update, *sql.Delete:
		return true
	}
	return false
}

// dispatchOp routes a parsed statement — prepared-statement expansion,
// durable DML through the WAL, SELECT through an explicitly captured
// plan (returned for caching), everything else to ExecuteStmt.
func (db *DB) dispatchOp(ctx context.Context, sess *session, query string, stmt sql.Statement) (*portal.Result, engine.Operator, error) {
	switch s := stmt.(type) {
	case *sql.ExecutePrepared:
		bound, text, err := db.bindPrepared(s)
		if err != nil {
			return nil, nil, err
		}
		if db.dur != nil && isMutating(bound) {
			res, err := db.executeDurable(ctx, sess, text, bound)
			return res, nil, err
		}
		res, err := db.executeStmtSess(ctx, sess, bound)
		return res, nil, err
	case *sql.Select:
		if err := db.QuarantineError(); err != nil {
			return nil, nil, err
		}
		op, err := plan.PlanSelect(db.store, s, db.opts)
		if err != nil {
			return nil, nil, err
		}
		res, err := db.runSelectOp(ctx, sess, op)
		return res, op, err
	}
	if db.dur != nil && isMutating(stmt) {
		res, err := db.executeDurable(ctx, sess, query, stmt)
		return res, nil, err
	}
	res, err := db.executeStmtSess(ctx, sess, stmt)
	return res, nil, err
}

// executeCached runs a checked-out cache entry. A cached SELECT reuses
// its compiled operator tree (reset, batch size re-derived); cached DML
// reuses the parsed AST and goes through the ordinary durable routing.
func (db *DB) executeCached(ctx context.Context, sess *session, query string, ent *plan.CacheEntry) (*portal.Result, error) {
	if ent.Op != nil {
		if err := db.QuarantineError(); err != nil {
			return nil, err
		}
		engine.ResetPlan(ent.Op)
		engine.SetBatchSize(ent.Op, plan.EffectiveBatchSize(ent.Op, db.opts.ExecBatchSize))
		return db.runSelectOp(ctx, sess, ent.Op)
	}
	if db.dur != nil && isMutating(ent.Stmt) {
		return db.executeDurable(ctx, sess, query, ent.Stmt)
	}
	return db.executeStmtSess(ctx, sess, ent.Stmt)
}

// bindPrepared resolves an EXECUTE against the registry: evaluates the
// constant arguments, substitutes them into a clone of the template, and
// (for durable DML) renders the bound statement back to SQL text — the
// form the WAL logs, so replay does not depend on the registry.
func (db *DB) bindPrepared(ex *sql.ExecutePrepared) (sql.Statement, string, error) {
	db.prepMu.Lock()
	prep, ok := db.prepared[ex.Name]
	db.prepMu.Unlock()
	if !ok {
		return nil, "", fmt.Errorf("core: no prepared statement %q", ex.Name)
	}
	if len(ex.Args) != prep.NumParams {
		return nil, "", fmt.Errorf("core: prepared statement %q wants %d arguments, got %d", ex.Name, prep.NumParams, len(ex.Args))
	}
	vals := make([]record.Value, len(ex.Args))
	for i, e := range ex.Args {
		v, err := evalConst(e)
		if err != nil {
			return nil, "", fmt.Errorf("core: EXECUTE argument %d: %w", i+1, err)
		}
		vals[i] = v
	}
	bound, err := sql.BindParams(prep.Stmt, vals)
	if err != nil {
		return nil, "", err
	}
	var text string
	if db.dur != nil && isMutating(bound) {
		if text, err = sql.Render(bound); err != nil {
			return nil, "", err
		}
	}
	return bound, text, nil
}

// PlanCacheStats snapshots the plan cache counters (zero when caching is
// disabled).
func (db *DB) PlanCacheStats() plan.CacheStats { return db.planCache.Stats() }

// GovernStats is a point-in-time snapshot of the overload-protection
// state: budget usage, admission counters, reaped sessions and live
// snapshot pins. The overload bench asserts its post-drain values.
type GovernStats struct {
	// MemUsed / MemLimit / MemHighWater / MemDenied mirror the budget.
	MemUsed      int64
	MemLimit     int64
	MemHighWater int64
	MemDenied    int64
	// Admission snapshots the shed/queue counters.
	Admission govern.AdmissionStats
	// SessionsExpired counts pinned sessions the idle reaper released.
	SessionsExpired int64
	// SnapshotPins is the number of snapshot pins currently held.
	SnapshotPins int
	// ResponseCache snapshots the portal response cache.
	ResponseCache portal.CacheStats
}

// GovernStats snapshots the overload-protection counters.
func (db *DB) GovernStats() GovernStats {
	return GovernStats{
		MemUsed:         db.budget.Used(),
		MemLimit:        db.budget.Limit(),
		MemHighWater:    db.budget.HighWater(),
		MemDenied:       db.budget.Denied(),
		Admission:       db.admit.Stats(),
		SessionsExpired: db.sessExpired.Load(),
		SnapshotPins:    db.store.SnapshotPins(),
		ResponseCache:   db.portal.CacheStats(),
	}
}

// Budget exposes the process memory budget (library-level access).
func (db *DB) Budget() *govern.Budget { return db.budget }

// ExecuteStmt runs a parsed statement. Once the verifier's alarm is sticky
// every statement — reads included — is fenced with ErrQuarantined:
// results computed from tampered state must never be endorsed.
// ExecuteStmt applies directly, bypassing the WAL: durable instances
// reach it through Execute (which logs mutations) and through recovery
// replay (which must not re-log); library callers driving ExecuteStmt on
// a durable instance forgo durability for those statements.
func (db *DB) ExecuteStmt(stmt sql.Statement) (*portal.Result, error) {
	return db.executeStmtSess(context.Background(), db.sessionFor(""), stmt)
}

func (db *DB) executeStmtSess(ctx context.Context, sess *session, stmt sql.Statement) (*portal.Result, error) {
	if err := db.QuarantineError(); err != nil {
		return nil, err
	}
	if isMutating(stmt) && sess.pinned() != nil {
		return nil, fmt.Errorf("core: session is read-only while a snapshot is pinned; COMMIT first")
	}
	switch s := stmt.(type) {
	case *sql.BeginSnapshot:
		sess.mu.Lock()
		defer sess.mu.Unlock()
		if sess.snap != nil {
			return nil, fmt.Errorf("core: session already holds a pinned snapshot (BEGIN SNAPSHOT without COMMIT)")
		}
		sess.snap = db.store.OpenSnapshot()
		return &portal.Result{
			Columns: []string{"snapshot_seq"},
			Rows:    []record.Tuple{{record.Int(int64(sess.snap.Seq()))}},
		}, nil
	case *sql.CommitSnapshot:
		sess.mu.Lock()
		defer sess.mu.Unlock()
		if sess.snap == nil {
			return nil, fmt.Errorf("core: COMMIT without a pinned snapshot (BEGIN SNAPSHOT first)")
		}
		sess.snap.Close()
		sess.snap = nil
		return &portal.Result{}, nil
	case *sql.CreateTable:
		return db.createTable(s)
	case *sql.DropTable:
		if err := db.store.DropTable(s.Name); err != nil {
			return nil, err
		}
		return &portal.Result{}, nil
	case *sql.Insert:
		return db.insert(s)
	case *sql.Update:
		return db.update(ctx, s)
	case *sql.Delete:
		return db.delete(ctx, s)
	case *sql.Select:
		return db.query(ctx, sess, s)
	case *sql.Prepare:
		db.prepMu.Lock()
		db.prepared[s.Name] = s
		db.prepMu.Unlock()
		return &portal.Result{}, nil
	case *sql.ExecutePrepared:
		bound, _, err := db.bindPrepared(s)
		if err != nil {
			return nil, err
		}
		return db.executeStmtSess(ctx, sess, bound)
	case *sql.Deallocate:
		db.prepMu.Lock()
		_, ok := db.prepared[s.Name]
		delete(db.prepared, s.Name)
		db.prepMu.Unlock()
		if !ok {
			return nil, fmt.Errorf("core: no prepared statement %q", s.Name)
		}
		return &portal.Result{}, nil
	case *sql.Explain:
		op, err := db.Plan(s.Query)
		if err != nil {
			return nil, err
		}
		res := &portal.Result{Columns: []string{"plan"}}
		for _, line := range strings.Split(strings.TrimRight(plan.Describe(op), "\n"), "\n") {
			res.Rows = append(res.Rows, record.Tuple{record.Text(line)})
		}
		return res, nil
	default:
		return nil, fmt.Errorf("core: unsupported statement %T", stmt)
	}
}

// Plan compiles a SELECT without running it (EXPLAIN support).
func (db *DB) Plan(sel *sql.Select) (engine.Operator, error) {
	return plan.PlanSelect(db.store, sel, db.opts)
}

func (db *DB) createTable(ct *sql.CreateTable) (*portal.Result, error) {
	if len(ct.Columns) == 0 {
		return nil, fmt.Errorf("core: table %q has no columns", ct.Name)
	}
	cols := make([]record.Column, len(ct.Columns))
	pk := -1
	for i, c := range ct.Columns {
		cols[i] = record.Column{Name: c.Name, Type: c.Type}
		if c.PrimaryKey {
			if pk != -1 {
				return nil, fmt.Errorf("core: table %q declares multiple primary keys", ct.Name)
			}
			pk = i
		}
	}
	if pk == -1 {
		pk = 0 // first column by convention
	}
	schema := record.NewSchema(cols...)
	var chains []int
	for _, idxCol := range ct.Indexes {
		ci := schema.ColIndex(idxCol)
		if ci < 0 {
			return nil, fmt.Errorf("core: INDEX names unknown column %q", idxCol)
		}
		chains = append(chains, ci)
	}
	_, err := db.store.CreateTable(storage.TableSpec{
		Name:         ct.Name,
		Schema:       schema,
		PrimaryKey:   pk,
		ChainColumns: chains,
	})
	if err != nil {
		return nil, err
	}
	return &portal.Result{}, nil
}

// evalConst evaluates an expression with no column references (INSERT
// values, SET right-hand sides without references).
func evalConst(e sql.Expr) (record.Value, error) {
	c, err := engine.Compile(e, engine.Schema{})
	if err != nil {
		return record.Value{}, err
	}
	return c.Eval(nil)
}

func (db *DB) insert(ins *sql.Insert) (*portal.Result, error) {
	t, err := db.store.Table(ins.Table)
	if err != nil {
		return nil, err
	}
	schema := t.Schema()
	// Column ordering: explicit list or schema order.
	order := make([]int, 0, schema.Len())
	if len(ins.Columns) == 0 {
		for i := 0; i < schema.Len(); i++ {
			order = append(order, i)
		}
	} else {
		for _, name := range ins.Columns {
			ci := schema.ColIndex(name)
			if ci < 0 {
				return nil, fmt.Errorf("core: table %q has no column %q", ins.Table, name)
			}
			order = append(order, ci)
		}
	}
	n := 0
	tups := make([]record.Tuple, 0, len(ins.Rows))
	for _, row := range ins.Rows {
		if len(row) != len(order) {
			return nil, fmt.Errorf("core: INSERT row has %d values for %d columns", len(row), len(order))
		}
		tup := make(record.Tuple, schema.Len())
		for i := range tup {
			tup[i] = record.Null(schema.Columns[i].Type)
		}
		for i, e := range row {
			v, err := evalConst(e)
			if err != nil {
				return nil, err
			}
			tup[order[i]] = v
		}
		tups = append(tups, tup)
	}
	// One commit timestamp for the whole statement: snapshots see all of
	// the INSERT's rows or none of them.
	if err := db.withCommit(func(c *storage.Commit) error {
		for _, tup := range tups {
			if err := t.InsertAt(tup, c); err != nil {
				return err
			}
			n++
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return &portal.Result{Affected: n}, nil
}

// withCommit runs f under a single commit timestamp. Every version f
// installs or retires shares the one sequence number, so a statement's
// effects become visible to snapshots atomically when the commit is done.
func (db *DB) withCommit(f func(c *storage.Commit) error) error {
	c := db.store.BeginCommit()
	defer c.Done()
	return f(c)
}

// matchingRows plans and materialises the rows of one table satisfying
// where (the scan closes before any write begins, so DML never deadlocks
// with its own read phase). The statement controls bound the read phase:
// cancellation unwinds it and the materialised rows charge the budget.
func (db *DB) matchingRows(ex *engine.Exec, t storage.Engine, where sql.Expr) ([]record.Tuple, error) {
	sel := &sql.Select{
		Items: []sql.SelectItem{{Star: true}},
		From:  []sql.TableRef{{Table: t.Name(), Alias: t.Name()}},
		Where: where,
		Limit: -1,
	}
	op, err := plan.PlanSelect(db.store, sel, db.opts)
	if err != nil {
		return nil, err
	}
	engine.SetExec(op, ex)
	return db.drainExec(op, plan.EffectiveBatchSize(op, db.opts.ExecBatchSize), ex)
}

// Budget-pressure degradation: once tracked memory passes this fraction of
// the budget, statements drop to the degraded batch size before reserving
// more — smaller materialisation steps under pressure, refusal only when
// the budget is actually gone.
const (
	degradePressure   = 0.5
	degradedBatchSize = 16
)

// drainExec runs a compiled plan to completion at batch size eff under the
// statement controls: batch-wise when vectorized, the legacy scalar path
// otherwise. Either way the rows come back in identical order, so the
// portal's response digest (which folds rows in emission order) is
// bit-identical across modes.
func (db *DB) drainExec(op engine.Operator, eff int, ex *engine.Exec) ([]record.Tuple, error) {
	if eff > 1 {
		return engine.DrainBatchesExec(engine.AsBatch(op), eff, ex)
	}
	return engine.DrainExec(op, ex)
}

func (db *DB) update(ctx context.Context, up *sql.Update) (*portal.Result, error) {
	t, err := db.store.Table(up.Table)
	if err != nil {
		return nil, err
	}
	schema := t.Schema()
	scanSchema := make(engine.Schema, schema.Len())
	for i, c := range schema.Columns {
		scanSchema[i] = engine.Col{Table: up.Table, Name: c.Name, Type: c.Type}
	}
	type setter struct {
		col  int
		expr *engine.Compiled
	}
	setters := make([]setter, len(up.Set))
	for i, a := range up.Set {
		ci := schema.ColIndex(a.Column)
		if ci < 0 {
			return nil, fmt.Errorf("core: table %q has no column %q", up.Table, a.Column)
		}
		c, err := engine.Compile(a.Value, scanSchema)
		if err != nil {
			return nil, err
		}
		setters[i] = setter{col: ci, expr: c}
	}
	// Cancellation applies to the read phase only: once the write loop
	// starts there is no undo log, so the statement runs to completion to
	// keep its effects atomic under the single commit timestamp.
	res := govern.NewReservation(db.budget)
	defer res.Release()
	rows, err := db.matchingRows(engine.NewExec(ctx, res), t, up.Where)
	if err != nil {
		return nil, err
	}
	pkCol := t.PrimaryKeyColumn()
	n := 0
	if err := db.withCommit(func(c *storage.Commit) error {
		for _, row := range rows {
			newTup := row.Clone()
			for _, s := range setters {
				v, err := s.expr.Eval(row)
				if err != nil {
					return err
				}
				newTup[s.col] = v
			}
			if err := t.UpdateAt(row[pkCol], newTup, c); err != nil {
				return err
			}
			n++
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return &portal.Result{Affected: n}, nil
}

func (db *DB) delete(ctx context.Context, del *sql.Delete) (*portal.Result, error) {
	t, err := db.store.Table(del.Table)
	if err != nil {
		return nil, err
	}
	// As in update: cancellation bounds the read phase; the write loop is
	// atomic and runs to completion.
	res := govern.NewReservation(db.budget)
	defer res.Release()
	rows, err := db.matchingRows(engine.NewExec(ctx, res), t, del.Where)
	if err != nil {
		return nil, err
	}
	pkCol := t.PrimaryKeyColumn()
	n := 0
	if err := db.withCommit(func(c *storage.Commit) error {
		for _, row := range rows {
			if err := t.DeleteAt(row[pkCol], c); err != nil {
				return err
			}
			n++
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return &portal.Result{Affected: n}, nil
}

func (db *DB) query(ctx context.Context, sess *session, sel *sql.Select) (*portal.Result, error) {
	op, err := plan.PlanSelect(db.store, sel, db.opts)
	if err != nil {
		return nil, err
	}
	return db.runSelectOp(ctx, sess, op)
}

// runSelectOp drains a compiled plan into a result. Every base-table scan
// in the plan reads one snapshot: the session's pinned one (BEGIN
// SNAPSHOT) when present, otherwise a statement snapshot opened at the
// current commit watermark and released when the drain finishes. Either
// way a multi-scan plan (joins, self-joins, spool refills) observes a
// single consistent committed state.
//
// The statement executes under its context and a statement-scoped memory
// reservation: cancellation unwinds at batch boundaries through the
// normal error path (the deferred snapshot close and the operator Close
// chain release everything the plan held), and every materialisation the
// plan performs is charged against the process budget, failing fast with
// govern.ErrResourceExhausted rather than growing the heap unbounded.
// Under budget pressure the plan degrades to a smaller batch size first.
func (db *DB) runSelectOp(ctx context.Context, sess *session, op engine.Operator) (*portal.Result, error) {
	res := govern.NewReservation(db.budget)
	defer res.Release()
	ex := engine.NewExec(ctx, res)
	engine.SetExec(op, ex)
	// Clear before the plan goes back into the cache, like the snapshot: a
	// cached operator must not retain a dead context across statements.
	defer engine.SetExec(op, nil)
	eff := plan.EffectiveBatchSize(op, db.opts.ExecBatchSize)
	if eff > degradedBatchSize && db.budget.Pressure() > degradePressure {
		eff = degradedBatchSize
		engine.SetBatchSize(op, eff)
	}
	snap := sess.pinned()
	if snap == nil {
		snap = db.store.OpenSnapshot()
		defer snap.Close()
	}
	engine.SetSnapshot(op, snap)
	// Clear before the plan goes back into the cache: a cached operator
	// must not retain a dangling snapshot across statements.
	defer engine.SetSnapshot(op, nil)
	rows, err := db.drainExec(op, eff, ex)
	if err != nil {
		return nil, err
	}
	cols := make([]string, len(op.Schema()))
	for i, c := range op.Schema() {
		cols[i] = c.Name
	}
	return &portal.Result{Columns: cols, Rows: rows}, nil
}

// recoveryAlarmEvery is how many replayed rows separate alarm checks
// during Recover. Coarse enough to stay off the hot path, fine enough
// that a mid-replay tamper aborts within one batch.
const recoveryAlarmEvery = 1024

// recoveryAlarm reports the first sticky alarm on either side of a
// recovery: corrupt source rows must not be re-endorsed, and a corrupted
// destination must not be admitted.
func recoveryAlarm(db, replica *DB) error {
	if err := replica.mem.Alarm(); err != nil {
		return fmt.Errorf("core: recovery source compromised: %w", err)
	}
	if err := db.mem.Alarm(); err != nil {
		return fmt.Errorf("core: recovery destination compromised: %w", err)
	}
	return nil
}

// Recover rebuilds this (fresh) database from a replica by replaying its
// schema and contents through the ordinary protected write interfaces
// (§5.1 "Recovery from failure": "these repeated writes use the same
// interfaces introduced in Section 4.2, and naturally update the states
// stored in SGX"). The always-running verifier covers the replay itself;
// Recover additionally polls both instances' alarms every batch of rows
// and aborts on the first tamper, and verifies the replica in full before
// resuming the portal's sequence counter — a compromised replica must
// never be replayed into service.
func (db *DB) Recover(replica *DB, seqFloor uint64) error {
	if err := recoveryAlarm(db, replica); err != nil {
		return err
	}
	replayed := 0
	for _, name := range replica.store.TableNames() {
		src, err := replica.store.Table(name)
		if err != nil {
			return err
		}
		spec := storage.TableSpec{
			Name:       name,
			Schema:     src.Schema(),
			PrimaryKey: src.PrimaryKeyColumn(),
		}
		for _, c := range src.ChainColumns()[1:] {
			spec.ChainColumns = append(spec.ChainColumns, c)
		}
		dst, err := db.store.Register(spec)
		if err != nil {
			return err
		}
		sc, err := src.SeqScan()
		if err != nil {
			return err
		}
		batch := storage.NewRowBatch(storage.DefaultBatchCapacity)
		for {
			n, err := sc.NextBatch(batch)
			if err != nil {
				return fmt.Errorf("core: recovery scan of %q: %w", name, err)
			}
			if n == 0 {
				break
			}
			for i := 0; i < n; i++ {
				if err := dst.Insert(batch.Row(i)); err != nil {
					return err
				}
				if replayed++; replayed%recoveryAlarmEvery == 0 {
					if err := recoveryAlarm(db, replica); err != nil {
						return err
					}
				}
			}
		}
	}
	// Full source verification closes the window between the last batch
	// check and the end of the replay: every source page's read-set image
	// must still reconcile with its write set.
	if err := replica.mem.VerifyAll(); err != nil {
		return fmt.Errorf("core: recovery source failed final verification: %w", err)
	}
	if err := recoveryAlarm(db, replica); err != nil {
		return err
	}
	db.portal.ResumeAt(seqFloor)
	return nil
}

// TableNames lists tables.
func (db *DB) TableNames() []string { return db.store.TableNames() }

// Explain returns a plan description for a SELECT.
func (db *DB) Explain(query string) (string, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return "", err
	}
	sel, ok := stmt.(*sql.Select)
	if !ok {
		return "", fmt.Errorf("core: EXPLAIN supports only SELECT, got %T", stmt)
	}
	op, err := db.Plan(sel)
	if err != nil {
		return "", err
	}
	return strings.TrimRight(plan.Describe(op), "\n"), nil
}
