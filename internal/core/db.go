// Package core is the VeriDB kernel: it wires the simulated enclave, the
// write-read consistent memory, the verifiable storage, the query compiler
// and the execution engine into one database instance, and executes parsed
// SQL statements against it. The public veridb package wraps this.
package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"veridb/internal/enclave"
	"veridb/internal/engine"
	"veridb/internal/plan"
	"veridb/internal/portal"
	"veridb/internal/record"
	"veridb/internal/sql"
	"veridb/internal/storage"
	"veridb/internal/vmem"
)

// Config assembles a database instance.
type Config struct {
	// Enclave configures the simulated SGX hardware.
	Enclave enclave.Config
	// Memory configures the write-read consistent memory (§4.1, §4.3).
	Memory vmem.Config
	// Join selects the default join strategy (§6.3 compares plans).
	Join plan.JoinStrategy
	// VerifyEveryOps starts the background verifier scanning one page per
	// this many operations (Fig. 10's x). Zero leaves verification manual.
	VerifyEveryOps int
	// TableShards is the hash-shard count for tables created through SQL
	// (each shard has its own latch, chains and pages). Zero or one keeps
	// the unsharded layout bit-for-bit.
	TableShards int
	// ExecBatchSize is the vectorized execution batch size: queries pull
	// batches of this many rows through the operator tree instead of one
	// tuple at a time. 1 forces the exact legacy tuple-at-a-time path;
	// values > 1 enable batching (the planner still drops trivially small
	// queries to the scalar path). Zero is mapped to the default by the
	// public veridb package.
	ExecBatchSize int
	// Seed, when nonzero, makes the enclave's PRF key deterministic
	// (benchmarks and tests only).
	Seed uint64
	// DataDir enables authenticated durable storage: every mutating
	// statement is appended to a MACed, sequence-chained WAL in this
	// directory before its result is acked, and Open recovers the image
	// (checkpoint segments + WAL tail) through the protected write
	// interfaces behind the VerifyAll gate. Empty keeps the database
	// purely in memory.
	DataDir string
	// CheckpointEvery flushes the verified tables into immutable segment
	// files and rotates the WAL after this many logged statements. Zero
	// disables automatic checkpoints (WAL-only durability); requires
	// DataDir.
	CheckpointEvery int
	// GroupCommitMaxDelay enables the WAL commit pipeline: concurrent
	// mutating statements that land within this window are written and
	// fsynced as one group, sharing the fsync cost. Zero keeps the serial
	// one-fsync-per-statement path (bit-identical default).
	GroupCommitMaxDelay time.Duration
	// GroupCommitMaxBatch closes a commit group early once it holds this
	// many statements, without waiting out the delay window. Zero means no
	// early close. Meaningful only with GroupCommitMaxDelay > 0.
	GroupCommitMaxBatch int
	// PlanCacheSize bounds the LRU cache of compiled statements keyed on
	// normalized SQL (repeated statement shapes skip the parser and
	// planner). Zero disables the cache; the public veridb package maps
	// its zero to a default.
	PlanCacheSize int
	// MVCCGCInterval runs the version garbage collector every interval,
	// reclaiming retired row versions below the watermark-and-pins floor.
	// Zero disables background collection (versions are still pruned
	// opportunistically as writers retire newer ones).
	MVCCGCInterval time.Duration
	// MaxVersionsPerRow caps retained versions per row key; once exceeded
	// the oldest is discarded and snapshots that needed it fail with
	// storage.ErrSnapshotTooOld. Zero retains versions until GC.
	MaxVersionsPerRow int
}

// ErrQuarantined wraps every request rejected because the database's
// verifier raised a sticky tamper alarm: the state machine is fenced and
// only failover (Supervisor) or a fresh Recover can restore service.
var ErrQuarantined = errors.New("core: database quarantined after tamper alarm")

// DB is one VeriDB instance.
type DB struct {
	enc    *enclave.Enclave
	mem    *vmem.Memory
	store  *storage.Store
	portal *portal.Portal
	opts   plan.Options
	dur    *durable // nil in memory-only mode

	// planCache holds compiled statements keyed on normalized SQL; nil
	// when PlanCacheSize disables caching.
	planCache *plan.Cache
	// prepared is the PREPARE registry: statement templates by name.
	// Never logged to the WAL — clients re-prepare after a restart.
	prepMu   sync.Mutex
	prepared map[string]*sql.Prepare

	qmu  sync.Mutex
	qerr error // sticky quarantine error, set on first alarm observation

	// sessions tracks per-client snapshot state (BEGIN SNAPSHOT/COMMIT).
	// The portal routes each request through ExecuteSession with the
	// authenticated client ID; library calls share the "" session.
	sessMu   sync.Mutex
	sessions map[string]*session
}

// session is one client's statement context: at most a pinned read
// snapshot. While pinned, every SELECT reads the pinned committed state
// and mutating statements are rejected (the session is read-only).
type session struct {
	mu   sync.Mutex
	snap *storage.Snapshot
}

// pinned returns the session's snapshot, or nil.
func (s *session) pinned() *storage.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snap
}

// Open builds a database.
func Open(cfg Config) (*DB, error) {
	var enc *enclave.Enclave
	var err error
	if cfg.Seed != 0 {
		enc = enclave.NewForTest(cfg.Seed)
	} else if enc, err = enclave.New(cfg.Enclave); err != nil {
		return nil, err
	}
	mem, err := vmem.New(enc, cfg.Memory)
	if err != nil {
		return nil, err
	}
	st := storage.NewStore(mem)
	if cfg.TableShards > 0 {
		st.SetDefaultShards(cfg.TableShards)
	}
	if cfg.MaxVersionsPerRow > 0 {
		st.SetMaxVersions(cfg.MaxVersionsPerRow)
	}
	db := &DB{
		enc:       enc,
		mem:       mem,
		store:     st,
		opts:      plan.Options{Join: cfg.Join, ExecBatchSize: cfg.ExecBatchSize},
		planCache: plan.NewCache(cfg.PlanCacheSize),
		prepared:  make(map[string]*sql.Prepare),
		sessions:  make(map[string]*session),
	}
	db.portal = portal.New(enc, db)
	// Recovery runs before the background verifier starts: WAL replay
	// drives the protected interfaces at full speed and must not race a
	// scanner pool, and the recovered image is admitted through an
	// explicit VerifyAll gate inside openDurable instead.
	if cfg.DataDir != "" {
		if err := db.openDurable(cfg); err != nil {
			return nil, err
		}
	}
	// A recovery that found tamper leaves the instance quarantined; the
	// scanner pool stays down (QuarantineError would stop it on its first
	// observation anyway — starting it would only leak work and windows).
	if cfg.VerifyEveryOps > 0 && db.mem.Alarm() == nil {
		if err := mem.StartVerifier(cfg.VerifyEveryOps); err != nil {
			return nil, fmt.Errorf("core: starting background verifier: %w", err)
		}
	}
	// GC starts after recovery: replay churns versions that the very first
	// pass after open reclaims wholesale (nothing pins them).
	if cfg.MVCCGCInterval > 0 {
		if err := st.StartVersionGC(cfg.MVCCGCInterval); err != nil {
			return nil, fmt.Errorf("core: starting version GC: %w", err)
		}
	}
	return db, nil
}

// Enclave exposes the simulated enclave (attestation, key provisioning).
func (db *DB) Enclave() *enclave.Enclave { return db.enc }

// Memory exposes the write-read consistent memory (verification control).
func (db *DB) Memory() *vmem.Memory { return db.mem }

// Store exposes the verifiable storage (library-level access).
func (db *DB) Store() *storage.Store { return db.store }

// Portal exposes the query portal for authenticated client sessions.
func (db *DB) Portal() *portal.Portal { return db.portal }

// Close stops background verification and releases the WAL append
// handle. It is idempotent and safe to call concurrently with quarantine
// entry. Every acked statement is already fsynced, so Close never has
// dirty durable state to lose.
func (db *DB) Close() {
	db.mem.StopVerifier()
	db.store.StopVersionGC()
	if db.dur != nil {
		db.dur.log.Close()
	}
}

// QuarantineError returns the sticky quarantine error, entering the
// quarantined state on the first call that observes a tamper alarm. A
// quarantined DB fences every statement (the compromised state must never
// be endorsed) and stops its background scanner pool — further scanning of
// memory already known to be compromised is wasted work, and the alarm can
// never clear. Implements portal.Quarantiner.
func (db *DB) QuarantineError() error {
	db.qmu.Lock()
	if db.qerr != nil {
		err := db.qerr
		db.qmu.Unlock()
		return err
	}
	alarm := db.mem.Alarm()
	if alarm == nil {
		db.qmu.Unlock()
		return nil
	}
	db.qerr = fmt.Errorf("%w: %v", ErrQuarantined, alarm)
	err := db.qerr
	db.qmu.Unlock()
	// Outside qmu: StopVerifier waits for the pass in flight, and is
	// idempotent against a concurrent Close.
	db.mem.StopVerifier()
	return err
}

// Health is a point-in-time snapshot of the instance's integrity state:
// what a supervisor polls to decide on failover, and what an operator
// reads to understand an outage.
type Health struct {
	// Quarantined reports whether the DB has fenced itself after an alarm.
	Quarantined bool
	// Alarm is the sticky tamper alarm's text ("" while clean).
	Alarm string
	// Epochs is every RSWS partition's current verification epoch;
	// advancing epochs are evidence the verifier is making progress.
	Epochs []uint64
	// VerifierRunning reports whether the background scanner pool is
	// attached (quarantine and Close both stop it).
	VerifierRunning bool
	// Stats snapshots the memory's operation and verification counters.
	Stats vmem.Stats
}

// Health snapshots the instance's integrity state. Like Execute, it
// observes new alarms, so polling Health is enough to drive quarantine
// entry even on an otherwise idle instance.
func (db *DB) Health() Health {
	qerr := db.QuarantineError()
	h := Health{
		Quarantined:     qerr != nil,
		Epochs:          db.mem.Epochs(),
		VerifierRunning: db.mem.VerifierRunning(),
		Stats:           db.mem.Stats(),
	}
	if alarm := db.mem.Alarm(); alarm != nil {
		h.Alarm = alarm.Error()
	}
	return h
}

// Execute parses and runs one SQL statement. It implements
// portal.Executor, so authenticated requests route through the same path.
// With durable storage enabled, mutating statements go through the
// append-before-ack path: applied, then logged and fsynced, and only
// then acked. With the plan cache enabled, repeated statement text skips
// the parser (and, for SELECT, the planner) entirely.
func (db *DB) Execute(query string) (*portal.Result, error) {
	return db.ExecuteSession("", query)
}

// ExecuteSession is Execute with a client identity: BEGIN SNAPSHOT and
// COMMIT act on (and SELECTs read through) the named client's session.
// The portal passes each request's authenticated client ID; plain Execute
// shares the anonymous "" session.
func (db *DB) ExecuteSession(clientID, query string) (*portal.Result, error) {
	sess := db.sessionFor(clientID)
	if db.planCache != nil {
		if key, nerr := sql.Normalize(query); nerr == nil {
			if ent := db.planCache.Get(key, db.store.CatalogVersion()); ent != nil {
				res, err := db.executeCached(sess, query, ent)
				db.planCache.Return(ent)
				return res, err
			}
			// Capture the version before planning: a concurrent DDL
			// between here and Put leaves a stale version in the entry,
			// which the next Get discards.
			version := db.store.CatalogVersion()
			stmt, err := sql.Parse(query)
			if err != nil {
				return nil, err
			}
			res, op, err := db.dispatchOp(sess, query, stmt)
			if err == nil && cacheable(stmt) {
				db.planCache.Put(key, stmt, op, version)
			}
			return res, err
		}
		// Normalization failed to lex; fall through so Parse reports it.
	}
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	res, _, err := db.dispatchOp(sess, query, stmt)
	return res, err
}

// sessionFor returns (creating on first use) the session for a client ID.
func (db *DB) sessionFor(clientID string) *session {
	db.sessMu.Lock()
	defer db.sessMu.Unlock()
	s, ok := db.sessions[clientID]
	if !ok {
		s = &session{}
		db.sessions[clientID] = s
	}
	return s
}

// cacheable reports whether a statement's compilation is worth keeping:
// the repeated-shape statements (queries and DML). DDL and
// prepared-statement control flow always compile fresh.
func cacheable(stmt sql.Statement) bool {
	switch stmt.(type) {
	case *sql.Select, *sql.Insert, *sql.Update, *sql.Delete:
		return true
	}
	return false
}

// dispatchOp routes a parsed statement — prepared-statement expansion,
// durable DML through the WAL, SELECT through an explicitly captured
// plan (returned for caching), everything else to ExecuteStmt.
func (db *DB) dispatchOp(sess *session, query string, stmt sql.Statement) (*portal.Result, engine.Operator, error) {
	switch s := stmt.(type) {
	case *sql.ExecutePrepared:
		bound, text, err := db.bindPrepared(s)
		if err != nil {
			return nil, nil, err
		}
		if db.dur != nil && isMutating(bound) {
			res, err := db.executeDurable(sess, text, bound)
			return res, nil, err
		}
		res, err := db.executeStmtSess(sess, bound)
		return res, nil, err
	case *sql.Select:
		if err := db.QuarantineError(); err != nil {
			return nil, nil, err
		}
		op, err := plan.PlanSelect(db.store, s, db.opts)
		if err != nil {
			return nil, nil, err
		}
		res, err := db.runSelectOp(sess, op)
		return res, op, err
	}
	if db.dur != nil && isMutating(stmt) {
		res, err := db.executeDurable(sess, query, stmt)
		return res, nil, err
	}
	res, err := db.executeStmtSess(sess, stmt)
	return res, nil, err
}

// executeCached runs a checked-out cache entry. A cached SELECT reuses
// its compiled operator tree (reset, batch size re-derived); cached DML
// reuses the parsed AST and goes through the ordinary durable routing.
func (db *DB) executeCached(sess *session, query string, ent *plan.CacheEntry) (*portal.Result, error) {
	if ent.Op != nil {
		if err := db.QuarantineError(); err != nil {
			return nil, err
		}
		engine.ResetPlan(ent.Op)
		engine.SetBatchSize(ent.Op, plan.EffectiveBatchSize(ent.Op, db.opts.ExecBatchSize))
		return db.runSelectOp(sess, ent.Op)
	}
	if db.dur != nil && isMutating(ent.Stmt) {
		return db.executeDurable(sess, query, ent.Stmt)
	}
	return db.executeStmtSess(sess, ent.Stmt)
}

// bindPrepared resolves an EXECUTE against the registry: evaluates the
// constant arguments, substitutes them into a clone of the template, and
// (for durable DML) renders the bound statement back to SQL text — the
// form the WAL logs, so replay does not depend on the registry.
func (db *DB) bindPrepared(ex *sql.ExecutePrepared) (sql.Statement, string, error) {
	db.prepMu.Lock()
	prep, ok := db.prepared[ex.Name]
	db.prepMu.Unlock()
	if !ok {
		return nil, "", fmt.Errorf("core: no prepared statement %q", ex.Name)
	}
	if len(ex.Args) != prep.NumParams {
		return nil, "", fmt.Errorf("core: prepared statement %q wants %d arguments, got %d", ex.Name, prep.NumParams, len(ex.Args))
	}
	vals := make([]record.Value, len(ex.Args))
	for i, e := range ex.Args {
		v, err := evalConst(e)
		if err != nil {
			return nil, "", fmt.Errorf("core: EXECUTE argument %d: %w", i+1, err)
		}
		vals[i] = v
	}
	bound, err := sql.BindParams(prep.Stmt, vals)
	if err != nil {
		return nil, "", err
	}
	var text string
	if db.dur != nil && isMutating(bound) {
		if text, err = sql.Render(bound); err != nil {
			return nil, "", err
		}
	}
	return bound, text, nil
}

// PlanCacheStats snapshots the plan cache counters (zero when caching is
// disabled).
func (db *DB) PlanCacheStats() plan.CacheStats { return db.planCache.Stats() }

// ExecuteStmt runs a parsed statement. Once the verifier's alarm is sticky
// every statement — reads included — is fenced with ErrQuarantined:
// results computed from tampered state must never be endorsed.
// ExecuteStmt applies directly, bypassing the WAL: durable instances
// reach it through Execute (which logs mutations) and through recovery
// replay (which must not re-log); library callers driving ExecuteStmt on
// a durable instance forgo durability for those statements.
func (db *DB) ExecuteStmt(stmt sql.Statement) (*portal.Result, error) {
	return db.executeStmtSess(db.sessionFor(""), stmt)
}

func (db *DB) executeStmtSess(sess *session, stmt sql.Statement) (*portal.Result, error) {
	if err := db.QuarantineError(); err != nil {
		return nil, err
	}
	if isMutating(stmt) && sess.pinned() != nil {
		return nil, fmt.Errorf("core: session is read-only while a snapshot is pinned; COMMIT first")
	}
	switch s := stmt.(type) {
	case *sql.BeginSnapshot:
		sess.mu.Lock()
		defer sess.mu.Unlock()
		if sess.snap != nil {
			return nil, fmt.Errorf("core: session already holds a pinned snapshot (BEGIN SNAPSHOT without COMMIT)")
		}
		sess.snap = db.store.OpenSnapshot()
		return &portal.Result{
			Columns: []string{"snapshot_seq"},
			Rows:    []record.Tuple{{record.Int(int64(sess.snap.Seq()))}},
		}, nil
	case *sql.CommitSnapshot:
		sess.mu.Lock()
		defer sess.mu.Unlock()
		if sess.snap == nil {
			return nil, fmt.Errorf("core: COMMIT without a pinned snapshot (BEGIN SNAPSHOT first)")
		}
		sess.snap.Close()
		sess.snap = nil
		return &portal.Result{}, nil
	case *sql.CreateTable:
		return db.createTable(s)
	case *sql.DropTable:
		if err := db.store.DropTable(s.Name); err != nil {
			return nil, err
		}
		return &portal.Result{}, nil
	case *sql.Insert:
		return db.insert(s)
	case *sql.Update:
		return db.update(s)
	case *sql.Delete:
		return db.delete(s)
	case *sql.Select:
		return db.query(sess, s)
	case *sql.Prepare:
		db.prepMu.Lock()
		db.prepared[s.Name] = s
		db.prepMu.Unlock()
		return &portal.Result{}, nil
	case *sql.ExecutePrepared:
		bound, _, err := db.bindPrepared(s)
		if err != nil {
			return nil, err
		}
		return db.executeStmtSess(sess, bound)
	case *sql.Deallocate:
		db.prepMu.Lock()
		_, ok := db.prepared[s.Name]
		delete(db.prepared, s.Name)
		db.prepMu.Unlock()
		if !ok {
			return nil, fmt.Errorf("core: no prepared statement %q", s.Name)
		}
		return &portal.Result{}, nil
	case *sql.Explain:
		op, err := db.Plan(s.Query)
		if err != nil {
			return nil, err
		}
		res := &portal.Result{Columns: []string{"plan"}}
		for _, line := range strings.Split(strings.TrimRight(plan.Describe(op), "\n"), "\n") {
			res.Rows = append(res.Rows, record.Tuple{record.Text(line)})
		}
		return res, nil
	default:
		return nil, fmt.Errorf("core: unsupported statement %T", stmt)
	}
}

// Plan compiles a SELECT without running it (EXPLAIN support).
func (db *DB) Plan(sel *sql.Select) (engine.Operator, error) {
	return plan.PlanSelect(db.store, sel, db.opts)
}

func (db *DB) createTable(ct *sql.CreateTable) (*portal.Result, error) {
	if len(ct.Columns) == 0 {
		return nil, fmt.Errorf("core: table %q has no columns", ct.Name)
	}
	cols := make([]record.Column, len(ct.Columns))
	pk := -1
	for i, c := range ct.Columns {
		cols[i] = record.Column{Name: c.Name, Type: c.Type}
		if c.PrimaryKey {
			if pk != -1 {
				return nil, fmt.Errorf("core: table %q declares multiple primary keys", ct.Name)
			}
			pk = i
		}
	}
	if pk == -1 {
		pk = 0 // first column by convention
	}
	schema := record.NewSchema(cols...)
	var chains []int
	for _, idxCol := range ct.Indexes {
		ci := schema.ColIndex(idxCol)
		if ci < 0 {
			return nil, fmt.Errorf("core: INDEX names unknown column %q", idxCol)
		}
		chains = append(chains, ci)
	}
	_, err := db.store.CreateTable(storage.TableSpec{
		Name:         ct.Name,
		Schema:       schema,
		PrimaryKey:   pk,
		ChainColumns: chains,
	})
	if err != nil {
		return nil, err
	}
	return &portal.Result{}, nil
}

// evalConst evaluates an expression with no column references (INSERT
// values, SET right-hand sides without references).
func evalConst(e sql.Expr) (record.Value, error) {
	c, err := engine.Compile(e, engine.Schema{})
	if err != nil {
		return record.Value{}, err
	}
	return c.Eval(nil)
}

func (db *DB) insert(ins *sql.Insert) (*portal.Result, error) {
	t, err := db.store.Table(ins.Table)
	if err != nil {
		return nil, err
	}
	schema := t.Schema()
	// Column ordering: explicit list or schema order.
	order := make([]int, 0, schema.Len())
	if len(ins.Columns) == 0 {
		for i := 0; i < schema.Len(); i++ {
			order = append(order, i)
		}
	} else {
		for _, name := range ins.Columns {
			ci := schema.ColIndex(name)
			if ci < 0 {
				return nil, fmt.Errorf("core: table %q has no column %q", ins.Table, name)
			}
			order = append(order, ci)
		}
	}
	n := 0
	tups := make([]record.Tuple, 0, len(ins.Rows))
	for _, row := range ins.Rows {
		if len(row) != len(order) {
			return nil, fmt.Errorf("core: INSERT row has %d values for %d columns", len(row), len(order))
		}
		tup := make(record.Tuple, schema.Len())
		for i := range tup {
			tup[i] = record.Null(schema.Columns[i].Type)
		}
		for i, e := range row {
			v, err := evalConst(e)
			if err != nil {
				return nil, err
			}
			tup[order[i]] = v
		}
		tups = append(tups, tup)
	}
	// One commit timestamp for the whole statement: snapshots see all of
	// the INSERT's rows or none of them.
	if err := db.withCommit(func(c *storage.Commit) error {
		for _, tup := range tups {
			if err := t.InsertAt(tup, c); err != nil {
				return err
			}
			n++
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return &portal.Result{Affected: n}, nil
}

// withCommit runs f under a single commit timestamp. Every version f
// installs or retires shares the one sequence number, so a statement's
// effects become visible to snapshots atomically when the commit is done.
func (db *DB) withCommit(f func(c *storage.Commit) error) error {
	c := db.store.BeginCommit()
	defer c.Done()
	return f(c)
}

// matchingRows plans and materialises the rows of one table satisfying
// where (the scan closes before any write begins, so DML never deadlocks
// with its own read phase).
func (db *DB) matchingRows(t storage.Engine, where sql.Expr) ([]record.Tuple, error) {
	sel := &sql.Select{
		Items: []sql.SelectItem{{Star: true}},
		From:  []sql.TableRef{{Table: t.Name(), Alias: t.Name()}},
		Where: where,
		Limit: -1,
	}
	op, err := plan.PlanSelect(db.store, sel, db.opts)
	if err != nil {
		return nil, err
	}
	return db.drain(op)
}

// drain runs a compiled plan to completion in the mode the planner fixed
// for it: batch-wise when vectorized, the legacy scalar Drain otherwise.
// Either way the rows come back in identical order, so the portal's
// response digest (which folds rows in emission order) is bit-identical
// across modes.
func (db *DB) drain(op engine.Operator) ([]record.Tuple, error) {
	if eff := plan.EffectiveBatchSize(op, db.opts.ExecBatchSize); eff > 1 {
		return engine.DrainBatches(engine.AsBatch(op), eff)
	}
	return engine.Drain(op)
}

func (db *DB) update(up *sql.Update) (*portal.Result, error) {
	t, err := db.store.Table(up.Table)
	if err != nil {
		return nil, err
	}
	schema := t.Schema()
	scanSchema := make(engine.Schema, schema.Len())
	for i, c := range schema.Columns {
		scanSchema[i] = engine.Col{Table: up.Table, Name: c.Name, Type: c.Type}
	}
	type setter struct {
		col  int
		expr *engine.Compiled
	}
	setters := make([]setter, len(up.Set))
	for i, a := range up.Set {
		ci := schema.ColIndex(a.Column)
		if ci < 0 {
			return nil, fmt.Errorf("core: table %q has no column %q", up.Table, a.Column)
		}
		c, err := engine.Compile(a.Value, scanSchema)
		if err != nil {
			return nil, err
		}
		setters[i] = setter{col: ci, expr: c}
	}
	rows, err := db.matchingRows(t, up.Where)
	if err != nil {
		return nil, err
	}
	pkCol := t.PrimaryKeyColumn()
	n := 0
	if err := db.withCommit(func(c *storage.Commit) error {
		for _, row := range rows {
			newTup := row.Clone()
			for _, s := range setters {
				v, err := s.expr.Eval(row)
				if err != nil {
					return err
				}
				newTup[s.col] = v
			}
			if err := t.UpdateAt(row[pkCol], newTup, c); err != nil {
				return err
			}
			n++
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return &portal.Result{Affected: n}, nil
}

func (db *DB) delete(del *sql.Delete) (*portal.Result, error) {
	t, err := db.store.Table(del.Table)
	if err != nil {
		return nil, err
	}
	rows, err := db.matchingRows(t, del.Where)
	if err != nil {
		return nil, err
	}
	pkCol := t.PrimaryKeyColumn()
	n := 0
	if err := db.withCommit(func(c *storage.Commit) error {
		for _, row := range rows {
			if err := t.DeleteAt(row[pkCol], c); err != nil {
				return err
			}
			n++
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return &portal.Result{Affected: n}, nil
}

func (db *DB) query(sess *session, sel *sql.Select) (*portal.Result, error) {
	op, err := plan.PlanSelect(db.store, sel, db.opts)
	if err != nil {
		return nil, err
	}
	return db.runSelectOp(sess, op)
}

// runSelectOp drains a compiled plan into a result. Every base-table scan
// in the plan reads one snapshot: the session's pinned one (BEGIN
// SNAPSHOT) when present, otherwise a statement snapshot opened at the
// current commit watermark and released when the drain finishes. Either
// way a multi-scan plan (joins, self-joins, spool refills) observes a
// single consistent committed state.
func (db *DB) runSelectOp(sess *session, op engine.Operator) (*portal.Result, error) {
	snap := sess.pinned()
	if snap == nil {
		snap = db.store.OpenSnapshot()
		defer snap.Close()
	}
	engine.SetSnapshot(op, snap)
	// Clear before the plan goes back into the cache: a cached operator
	// must not retain a dangling snapshot across statements.
	defer engine.SetSnapshot(op, nil)
	rows, err := db.drain(op)
	if err != nil {
		return nil, err
	}
	cols := make([]string, len(op.Schema()))
	for i, c := range op.Schema() {
		cols[i] = c.Name
	}
	return &portal.Result{Columns: cols, Rows: rows}, nil
}

// recoveryAlarmEvery is how many replayed rows separate alarm checks
// during Recover. Coarse enough to stay off the hot path, fine enough
// that a mid-replay tamper aborts within one batch.
const recoveryAlarmEvery = 1024

// recoveryAlarm reports the first sticky alarm on either side of a
// recovery: corrupt source rows must not be re-endorsed, and a corrupted
// destination must not be admitted.
func recoveryAlarm(db, replica *DB) error {
	if err := replica.mem.Alarm(); err != nil {
		return fmt.Errorf("core: recovery source compromised: %w", err)
	}
	if err := db.mem.Alarm(); err != nil {
		return fmt.Errorf("core: recovery destination compromised: %w", err)
	}
	return nil
}

// Recover rebuilds this (fresh) database from a replica by replaying its
// schema and contents through the ordinary protected write interfaces
// (§5.1 "Recovery from failure": "these repeated writes use the same
// interfaces introduced in Section 4.2, and naturally update the states
// stored in SGX"). The always-running verifier covers the replay itself;
// Recover additionally polls both instances' alarms every batch of rows
// and aborts on the first tamper, and verifies the replica in full before
// resuming the portal's sequence counter — a compromised replica must
// never be replayed into service.
func (db *DB) Recover(replica *DB, seqFloor uint64) error {
	if err := recoveryAlarm(db, replica); err != nil {
		return err
	}
	replayed := 0
	for _, name := range replica.store.TableNames() {
		src, err := replica.store.Table(name)
		if err != nil {
			return err
		}
		spec := storage.TableSpec{
			Name:       name,
			Schema:     src.Schema(),
			PrimaryKey: src.PrimaryKeyColumn(),
		}
		for _, c := range src.ChainColumns()[1:] {
			spec.ChainColumns = append(spec.ChainColumns, c)
		}
		dst, err := db.store.Register(spec)
		if err != nil {
			return err
		}
		sc, err := src.SeqScan()
		if err != nil {
			return err
		}
		batch := storage.NewRowBatch(storage.DefaultBatchCapacity)
		for {
			n, err := sc.NextBatch(batch)
			if err != nil {
				return fmt.Errorf("core: recovery scan of %q: %w", name, err)
			}
			if n == 0 {
				break
			}
			for i := 0; i < n; i++ {
				if err := dst.Insert(batch.Row(i)); err != nil {
					return err
				}
				if replayed++; replayed%recoveryAlarmEvery == 0 {
					if err := recoveryAlarm(db, replica); err != nil {
						return err
					}
				}
			}
		}
	}
	// Full source verification closes the window between the last batch
	// check and the end of the replay: every source page's read-set image
	// must still reconcile with its write set.
	if err := replica.mem.VerifyAll(); err != nil {
		return fmt.Errorf("core: recovery source failed final verification: %w", err)
	}
	if err := recoveryAlarm(db, replica); err != nil {
		return err
	}
	db.portal.ResumeAt(seqFloor)
	return nil
}

// TableNames lists tables.
func (db *DB) TableNames() []string { return db.store.TableNames() }

// Explain returns a plan description for a SELECT.
func (db *DB) Explain(query string) (string, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return "", err
	}
	sel, ok := stmt.(*sql.Select)
	if !ok {
		return "", fmt.Errorf("core: EXPLAIN supports only SELECT, got %T", stmt)
	}
	op, err := db.Plan(sel)
	if err != nil {
		return "", err
	}
	return strings.TrimRight(plan.Describe(op), "\n"), nil
}
