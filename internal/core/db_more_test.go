package core

import (
	"strings"
	"testing"

	"veridb/internal/record"
)

func TestExplainStatement(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	res := exec(t, db, `EXPLAIN SELECT q.id FROM quote q, inventory i WHERE q.id = i.id`)
	if len(res.Columns) != 1 || res.Columns[0] != "plan" {
		t.Fatalf("columns %v", res.Columns)
	}
	var lines []string
	for _, r := range res.Rows {
		lines = append(lines, r[0].S)
	}
	planText := strings.Join(lines, "\n")
	for _, want := range []string{"Project", "IndexJoin", "SeqScan"} {
		if !strings.Contains(planText, want) {
			t.Fatalf("plan missing %s:\n%s", want, planText)
		}
	}
	if _, err := db.Execute(`EXPLAIN INSERT INTO quote VALUES (9,9,9.0)`); err == nil {
		t.Fatal("EXPLAIN of DML accepted")
	}
}

func TestDropTableSQL(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	if _, err := db.Execute(`DROP TABLE quote`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute(`SELECT * FROM quote`); err == nil {
		t.Fatal("dropped table still queryable")
	}
	if _, err := db.Execute(`DROP TABLE quote`); err == nil {
		t.Fatal("double drop succeeded")
	}
	if err := db.Memory().VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateChangingPrimaryKeySQL(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	res := exec(t, db, `UPDATE quote SET id = id + 100 WHERE id = 2`)
	if res.Affected != 1 {
		t.Fatalf("affected %d", res.Affected)
	}
	rows := exec(t, db, `SELECT id FROM quote ORDER BY id`).Rows
	var ids []int64
	for _, r := range rows {
		ids = append(ids, r[0].I)
	}
	if len(ids) != 4 || ids[3] != 102 {
		t.Fatalf("ids %v", ids)
	}
	if err := db.Memory().VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertNullIntoChainedColumn(t *testing.T) {
	db := openTest(t)
	exec(t, db, `CREATE TABLE t (a INT PRIMARY KEY, b INT, INDEX(b))`)
	exec(t, db, `INSERT INTO t VALUES (1, NULL), (2, 5)`)
	rows := exec(t, db, `SELECT a FROM t WHERE b = 5`).Rows
	if len(rows) != 1 || rows[0][0].I != 2 {
		t.Fatalf("rows %v", rows)
	}
	// NULL row reachable by primary key, absent from the secondary chain.
	rows = exec(t, db, `SELECT a FROM t WHERE a = 1`).Rows
	if len(rows) != 1 {
		t.Fatalf("null-chained row lost: %v", rows)
	}
	if err := db.Memory().VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestWhereOnTextAndBool(t *testing.T) {
	db := openTest(t)
	exec(t, db, `CREATE TABLE flags (name TEXT PRIMARY KEY, active BOOL)`)
	exec(t, db, `INSERT INTO flags VALUES ('alpha', TRUE), ('beta', FALSE), ('gamma', TRUE)`)
	rows := exec(t, db, `SELECT name FROM flags WHERE active ORDER BY name`).Rows
	if len(rows) != 2 || rows[0][0].S != "alpha" || rows[1][0].S != "gamma" {
		t.Fatalf("rows %v", rows)
	}
	rows = exec(t, db, `SELECT name FROM flags WHERE name BETWEEN 'b' AND 'h'`).Rows
	if len(rows) != 2 {
		t.Fatalf("text range rows %v", rows)
	}
}

func TestArithmeticInProjectionAndWhere(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	// Exposures: id1=10000, id2=20000, id3=50000, id4=60000.
	rows := exec(t, db, `SELECT id, count * price AS exposure FROM quote WHERE count * price >= 50000 ORDER BY exposure DESC`).Rows
	if len(rows) != 2 {
		t.Fatalf("rows %v", rows)
	}
	if rows[0][1].F != 60000 { // id=4: 600 * 100
		t.Fatalf("top exposure %v", rows[0])
	}
}

func TestResultTupleIndependence(t *testing.T) {
	// Mutating returned rows must not corrupt stored data.
	db := openTest(t)
	seed(t, db)
	res := exec(t, db, `SELECT id, count FROM quote WHERE id = 1`)
	res.Rows[0][1] = record.Int(999999)
	res2 := exec(t, db, `SELECT count FROM quote WHERE id = 1`)
	if res2.Rows[0][0].I != 100 {
		t.Fatalf("stored data mutated through result: %v", res2.Rows)
	}
}
