package core

import (
	"bytes"
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"

	"veridb/internal/client"
	"veridb/internal/plan"
	"veridb/internal/portal"
	"veridb/internal/record"
	"veridb/internal/storage"
)

func openTest(t *testing.T) *DB {
	t.Helper()
	db, err := Open(Config{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return db
}

func exec(t *testing.T, db *DB, q string) *portal.Result {
	t.Helper()
	res, err := db.Execute(q)
	if err != nil {
		t.Fatalf("Execute(%q): %v", q, err)
	}
	return res
}

func seed(t *testing.T, db *DB) {
	t.Helper()
	exec(t, db, `CREATE TABLE quote (id INT PRIMARY KEY, count INT, price FLOAT, INDEX(count))`)
	exec(t, db, `CREATE TABLE inventory (id INT PRIMARY KEY, count INT, descr TEXT)`)
	exec(t, db, `INSERT INTO quote VALUES (1,100,100.0),(2,100,200.0),(3,500,100.0),(4,600,100.0)`)
	exec(t, db, `INSERT INTO inventory VALUES (1,50,'desc1'),(3,200,'desc3'),(4,100,'desc4'),(6,100,'desc6')`)
}

func TestEndToEndSQL(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	res := exec(t, db, `SELECT q.id, q.count, i.count
		FROM quote AS q, inventory AS i
		WHERE q.id = i.id AND q.count > i.count`)
	if len(res.Rows) != 3 {
		t.Fatalf("paper join: %v", res.Rows)
	}
	if res.Columns[0] != "id" || res.Columns[2] != "count" {
		t.Fatalf("columns %v", res.Columns)
	}
	if err := db.Memory().VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertWithColumnListAndNullDefaults(t *testing.T) {
	db := openTest(t)
	exec(t, db, `CREATE TABLE t (a INT PRIMARY KEY, b TEXT, c FLOAT)`)
	res := exec(t, db, `INSERT INTO t (c, a) VALUES (1.5, 10)`)
	if res.Affected != 1 {
		t.Fatalf("affected %d", res.Affected)
	}
	rows := exec(t, db, `SELECT a, b, c FROM t`).Rows
	if len(rows) != 1 || rows[0][0].I != 10 || !rows[0][1].Null || rows[0][2].F != 1.5 {
		t.Fatalf("row %v", rows)
	}
}

func TestUpdateWithExpressionsAndWhere(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	res := exec(t, db, `UPDATE quote SET count = count + 10, price = 1.0 WHERE id >= 3`)
	if res.Affected != 2 {
		t.Fatalf("affected %d", res.Affected)
	}
	rows := exec(t, db, `SELECT id, count, price FROM quote WHERE id >= 3`).Rows
	for _, r := range rows {
		want := map[int64]int64{3: 510, 4: 610}[r[0].I]
		if r[1].I != want || r[2].F != 1.0 {
			t.Fatalf("row %v", r)
		}
	}
	// Chained column updated: secondary chain must reflect new values.
	rows = exec(t, db, `SELECT id FROM quote WHERE count = 510`).Rows
	if len(rows) != 1 || rows[0][0].I != 3 {
		t.Fatalf("chain after update: %v", rows)
	}
}

func TestDeleteWithWhere(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	res := exec(t, db, `DELETE FROM quote WHERE count = 100`)
	if res.Affected != 2 {
		t.Fatalf("affected %d", res.Affected)
	}
	rows := exec(t, db, `SELECT id FROM quote`).Rows
	if len(rows) != 2 {
		t.Fatalf("remaining %v", rows)
	}
	if err := db.Memory().VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicatePKSurfacesError(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	_, err := db.Execute(`INSERT INTO quote VALUES (1, 1, 1.0)`)
	if !errors.Is(err, storage.ErrDuplicateKey) {
		t.Fatalf("err = %v", err)
	}
}

func TestAggregationEndToEnd(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	rows := exec(t, db, `SELECT count, COUNT(*) AS n, SUM(price) FROM quote GROUP BY count ORDER BY count`).Rows
	if len(rows) != 3 {
		t.Fatalf("%v", rows)
	}
	if rows[0][0].I != 100 || rows[0][1].I != 2 || rows[0][2].F != 300 {
		t.Fatalf("group row %v", rows[0])
	}
}

func TestExplain(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	out, err := db.Explain(`SELECT id FROM quote WHERE count = 100`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "RangeScan(quote as quote, col=count)") {
		t.Fatalf("explain:\n%s", out)
	}
	if _, err := db.Explain(`INSERT INTO quote VALUES (9,9,9.0)`); err == nil {
		t.Fatal("EXPLAIN of DML accepted")
	}
}

func TestCreateTableValidation(t *testing.T) {
	db := openTest(t)
	if _, err := db.Execute(`CREATE TABLE t (a INT PRIMARY KEY, b INT PRIMARY KEY)`); err == nil {
		t.Fatal("two primary keys accepted")
	}
	if _, err := db.Execute(`CREATE TABLE t (a INT, INDEX(zzz))`); err == nil {
		t.Fatal("index on unknown column accepted")
	}
	// No explicit pk: first column becomes the key.
	exec(t, db, `CREATE TABLE t (a INT, b INT)`)
	exec(t, db, `INSERT INTO t VALUES (1, 2)`)
	if _, err := db.Execute(`INSERT INTO t VALUES (1, 3)`); !errors.Is(err, storage.ErrDuplicateKey) {
		t.Fatalf("first-column pk not enforced: %v", err)
	}
}

func TestPortalClientRoundTrip(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	key := []byte("pre-exchanged-key")
	db.Enclave().ProvisionMACKey("alice", key)
	c := client.New("alice", key)

	// Attestation first (Fig. 2 step 1 presupposes an attested channel).
	nonce := []byte("n1")
	if err := c.Attest(db.Enclave().Attest(nonce), db.Enclave().Measurement(), nonce); err != nil {
		t.Fatal(err)
	}

	req := c.NewRequest(`SELECT id FROM quote WHERE id = 3`)
	resp, err := db.Portal().Serve(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyResponse(req, resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 1 || resp.Rows[0][0].I != 3 {
		t.Fatalf("rows %v", resp.Rows)
	}

	// Unauthorized client.
	bad := portal.Request{ClientID: "mallory", QID: 1, Query: "SELECT 1", MAC: []byte("x")}
	if _, err := db.Portal().Serve(bad); !errors.Is(err, portal.ErrUnauthorized) {
		t.Fatalf("mallory served: %v", err)
	}
	// Tampered query under a valid client.
	req2 := c.NewRequest(`SELECT id FROM quote`)
	req2.Query = `DELETE FROM quote`
	if _, err := db.Portal().Serve(req2); !errors.Is(err, portal.ErrUnauthorized) {
		t.Fatalf("tampered query served: %v", err)
	}
	// Replayed qid: the cached endorsement comes back instead of a
	// re-execution (retry idempotence for lost responses).
	again, err := db.Portal().Serve(req)
	if err != nil {
		t.Fatalf("cached replay rejected: %v", err)
	}
	if again.Seq != resp.Seq || !bytes.Equal(again.MAC, resp.MAC) {
		t.Fatalf("replay re-executed: seq %d vs %d", again.Seq, resp.Seq)
	}
}

func TestPortalResponseTamperDetected(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	key := []byte("k")
	db.Enclave().ProvisionMACKey("alice", key)
	c := client.New("alice", key)
	req := c.NewRequest(`SELECT id FROM quote WHERE id = 1`)
	resp, err := db.Portal().Serve(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Rows[0][0] = record.Int(999) // adversary edits the result in flight
	if err := c.VerifyResponse(req, resp); !errors.Is(err, client.ErrBadMAC) {
		t.Fatalf("tampered response accepted: %v", err)
	}
}

func TestRollbackAttackDetected(t *testing.T) {
	// The adversary wipes the enclave (power failure) and replays: the
	// restarted portal reissues low sequence numbers, which the client's
	// tracker flags (§5.1).
	db := openTest(t)
	seed(t, db)
	key := []byte("k")
	db.Enclave().ProvisionMACKey("alice", key)
	c := client.New("alice", key)
	for i := 0; i < 3; i++ {
		req := c.NewRequest(`SELECT id FROM quote WHERE id = 1`)
		resp, err := db.Portal().Serve(req)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.VerifyResponse(req, resp); err != nil {
			t.Fatal(err)
		}
	}
	// "Restart" without honest recovery: fresh DB, same MAC key, counter
	// back at zero.
	evil, err := Open(Config{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	defer evil.Close()
	exec(t, evil, `CREATE TABLE quote (id INT PRIMARY KEY, count INT, price FLOAT)`)
	exec(t, evil, `INSERT INTO quote VALUES (1,100,100.0)`)
	evil.Enclave().ProvisionMACKey("alice", key)
	// The evil instance has a different attestation key, but suppose the
	// client only checks MACs on this request: the sequence number still
	// gives the rollback away.
	sawRollback := false
	for i := 0; i < 4; i++ {
		req := c.NewRequest(`SELECT id FROM quote WHERE id = 1`)
		resp, err := evil.Portal().Serve(req)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.VerifyResponse(req, resp); errors.Is(err, client.ErrRollback) {
			sawRollback = true
			break
		}
	}
	if !sawRollback {
		t.Fatal("rollback went undetected")
	}
}

func TestHonestRecoveryResumesCleanly(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	key := []byte("k")
	db.Enclave().ProvisionMACKey("alice", key)
	c := client.New("alice", key)
	for i := 0; i < 5; i++ {
		req := c.NewRequest(`SELECT id FROM quote WHERE id = 1`)
		resp, _ := db.Portal().Serve(req)
		if err := c.VerifyResponse(req, resp); err != nil {
			t.Fatal(err)
		}
	}
	// Honest recovery: replay data from the replica (here: the old
	// instance itself) and resume the sequence above the client's maximum.
	recovered, err := Open(Config{Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if err := recovered.Recover(db, c.Tracker().Max()); err != nil {
		t.Fatal(err)
	}
	recovered.Enclave().ProvisionMACKey("alice", key)
	rows := exec(t, recovered, `SELECT id FROM quote`).Rows
	if len(rows) != 4 {
		t.Fatalf("recovered rows %v", rows)
	}
	if err := recovered.Memory().VerifyAll(); err != nil {
		t.Fatalf("recovered instance fails verification: %v", err)
	}
	for i := 0; i < 3; i++ {
		req := c.NewRequest(`SELECT id FROM quote WHERE id = 1`)
		resp, err := recovered.Portal().Serve(req)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.VerifyResponse(req, resp); err != nil {
			t.Fatalf("post-recovery response %d rejected: %v", i, err)
		}
	}
}

func TestAuthenticatedExecutionErrors(t *testing.T) {
	db := openTest(t)
	key := []byte("k")
	db.Enclave().ProvisionMACKey("alice", key)
	c := client.New("alice", key)
	req := c.NewRequest(`SELECT * FROM nope`)
	resp, err := db.Portal().Serve(req)
	if err != nil {
		t.Fatal(err)
	}
	err = c.VerifyResponse(req, resp)
	if err == nil || !strings.Contains(err.Error(), "no such table") {
		t.Fatalf("err = %v", err)
	}
}

func TestJoinStrategyConfig(t *testing.T) {
	for _, j := range []plan.JoinStrategy{plan.JoinAuto, plan.JoinMerge, plan.JoinNested, plan.JoinHash, plan.JoinIndex} {
		db, err := Open(Config{Seed: 7, Join: j})
		if err != nil {
			t.Fatal(err)
		}
		seed(t, db)
		rows := exec(t, db, `SELECT q.id FROM quote q, inventory i WHERE q.id = i.id`).Rows
		if len(rows) != 3 {
			t.Fatalf("join strategy %d: %v", j, rows)
		}
		db.Close()
	}
}

func TestBackgroundVerifierIntegration(t *testing.T) {
	db, err := Open(Config{Seed: 11, VerifyEveryOps: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	exec(t, db, `CREATE TABLE t (a INT PRIMARY KEY, b INT)`)
	for i := 0; i < 500; i++ {
		if _, err := db.Execute(`INSERT INTO t VALUES (` + itoa(i) + `, 1)`); err != nil {
			t.Fatal(err)
		}
	}
	// The verifier runs in background goroutines; on a single-CPU box the
	// insert loop can finish before they are ever scheduled, so give them
	// a bounded window to complete an epoch before stopping.
	deadline := time.Now().Add(5 * time.Second)
	for db.Memory().Stats().Rotations == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	db.Memory().StopVerifier()
	if db.Memory().Stats().Rotations == 0 {
		t.Fatal("background verifier never completed an epoch")
	}
	if err := db.Memory().Alarm(); err != nil {
		t.Fatalf("false alarm: %v", err)
	}
}

func itoa(i int) string { return strconv.Itoa(i) }
