package core

// This file is the durable-storage wiring: the append-before-ack
// discipline, checkpoint scheduling, and the recovery entry point.
// Everything here is gated on Config.DataDir — an in-memory database
// carries a nil durable state and executes bit-identically to
// pre-durability builds.

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"veridb/internal/portal"
	"veridb/internal/record"
	"veridb/internal/sql"
	"veridb/internal/storage"
	"veridb/internal/wal"
)

// durable is the per-DB durability state.
type durable struct {
	log *wal.Log
	// checkpointEvery triggers an automatic checkpoint after this many
	// logged statements; zero keeps durability WAL-only.
	checkpointEvery int

	// gate serialises logged statements against checkpoints: DML holds it
	// shared across apply+append, a checkpoint holds it exclusively while
	// it freezes the table images and rotates the WAL.
	gate sync.RWMutex
	// mu orders concurrent logged statements: the WAL must record
	// statements in the order their effects landed in memory, so apply and
	// append happen under one lock. Reads never take it.
	mu        sync.Mutex
	sinceCkpt int
	// broken is the sticky I/O failure: once an append cannot be made
	// durable, further writes are refused rather than silently acked
	// without durability.
	broken error
}

// ErrWALBroken wraps every statement rejected because a WAL append or
// sync failed: the write-ahead invariant (no ack before the record is on
// disk) can no longer be kept, so writes are fenced. Reads still serve.
var ErrWALBroken = errors.New("core: WAL append failed; refusing further writes")

// openDurable runs recovery for cfg.DataDir and attaches the WAL. Tamper
// anywhere in the durable state raises the memory's sticky alarm and
// returns nil: the DB opens quarantined, so the PR-4 containment path
// (fencing, supervisor failover) engages instead of silent acceptance.
// Environmental errors (I/O, permissions) fail the open.
func (db *DB) openDurable(cfg Config) error {
	log, rec, err := wal.Open(cfg.DataDir)
	if errors.Is(err, wal.ErrTamper) {
		db.mem.RaiseAlarm(err)
		return nil
	}
	if err != nil {
		return err
	}
	if err := db.replayRecovery(rec); err != nil {
		// Replay failures mean the authenticated log disagrees with what
		// the statements can actually do — corrupt state, not environment.
		db.mem.RaiseAlarm(fmt.Errorf("%w: %v", wal.ErrTamper, err))
		log.Close()
		return nil
	}
	// The recovered image is admitted only after the full verification
	// gate passes; a failure has already raised the sticky alarm.
	if err := db.mem.VerifyAll(); err != nil {
		log.Close()
		return nil
	}
	log.SetGroupCommit(cfg.GroupCommitMaxDelay, cfg.GroupCommitMaxBatch)
	db.dur = &durable{log: log, checkpointEvery: cfg.CheckpointEvery}
	return nil
}

// replayRecovery rebuilds the database image: checkpoint segments load
// through the ordinary protected write interfaces (every row re-enters
// the RSWS accounting, exactly like the §5.1 replica replay), then the
// WAL tail replays statement by statement through the parser and
// executor. The background verifier is not running yet — Open starts it
// only after recovery and its final verification complete.
func (db *DB) replayRecovery(rec *wal.Recovery) error {
	for _, img := range rec.Checkpoint {
		t, err := db.store.CreateTable(storage.TableSpec{
			Name:         img.Name,
			Schema:       record.NewSchema(img.Columns...),
			PrimaryKey:   img.PrimaryKey,
			ChainColumns: img.ChainColumns,
		})
		if err != nil {
			return fmt.Errorf("restoring table %q: %v", img.Name, err)
		}
		for i, row := range img.Rows {
			if err := t.Insert(row); err != nil {
				return fmt.Errorf("restoring table %q row %d: %v", img.Name, i, err)
			}
		}
	}
	for _, r := range rec.Tail {
		if r.Type != wal.RecStmt {
			return fmt.Errorf("WAL record %d has unknown type %d", r.Seq, r.Type)
		}
		stmt, err := sql.Parse(string(r.Payload))
		if err != nil {
			return fmt.Errorf("WAL record %d does not parse: %v", r.Seq, err)
		}
		if !isMutating(stmt) {
			return fmt.Errorf("WAL record %d is not a mutating statement", r.Seq)
		}
		// Only statements that fully succeeded were logged, so a replay
		// failure means the log and the rebuilt image diverged.
		if _, err := db.ExecuteStmt(stmt); err != nil {
			return fmt.Errorf("replaying WAL record %d: %v", r.Seq, err)
		}
	}
	return nil
}

// isMutating reports whether a statement changes database state (and so
// must be logged before its result is acked).
func isMutating(stmt sql.Statement) bool {
	switch stmt.(type) {
	case *sql.CreateTable, *sql.DropTable, *sql.Insert, *sql.Update, *sql.Delete:
		return true
	}
	return false
}

// executeDurable applies one mutating statement and appends it to the WAL
// before acking. The lock order (gate shared, then mu) keeps the log's
// statement order identical to the memory's apply order — the property
// replay equivalence rests on — while checkpoints exclude the whole path.
// Apply and enqueue happen under mu; the durability wait happens outside
// it, so concurrent statements can form a commit group and share one
// fsync (the statement gate stays held shared across the wait, which is
// how checkpoints quiesce in-flight groups). With group commit off the
// enqueue IS the fsync and the wait returns immediately — the serial
// PR-6 path, bit for bit.
//
// A crash between apply and fsync loses an unacked write (correct: the
// client never saw a success), and an append or group-fsync failure
// refuses the ack and fences further writes rather than acking a
// non-durable statement.
func (db *DB) executeDurable(ctx context.Context, sess *session, query string, stmt sql.Statement) (*portal.Result, error) {
	d := db.dur
	d.gate.RLock()
	d.mu.Lock()
	if d.broken != nil {
		err := d.broken
		d.mu.Unlock()
		d.gate.RUnlock()
		return nil, err
	}
	res, err := db.executeStmtSess(ctx, sess, stmt)
	if err != nil {
		d.mu.Unlock()
		d.gate.RUnlock()
		return nil, err
	}
	tk, werr := d.log.Enqueue(wal.RecStmt, []byte(query))
	if werr != nil {
		d.broken = fmt.Errorf("%w: %v", ErrWALBroken, werr)
		err := d.broken
		d.mu.Unlock()
		d.gate.RUnlock()
		return nil, err
	}
	d.mu.Unlock()
	if _, werr := tk.Wait(); werr != nil {
		d.mu.Lock()
		if d.broken == nil {
			d.broken = fmt.Errorf("%w: %v", ErrWALBroken, werr)
		}
		err := d.broken
		d.mu.Unlock()
		d.gate.RUnlock()
		return nil, err
	}
	d.mu.Lock()
	d.sinceCkpt++
	due := d.checkpointEvery > 0 && d.sinceCkpt >= d.checkpointEvery
	if due {
		// Reset before the checkpoint attempt so a failing checkpoint
		// retries at the next interval instead of on every statement.
		d.sinceCkpt = 0
	}
	d.mu.Unlock()
	d.gate.RUnlock()
	if due {
		// The statement is already durable in the old WAL; a checkpoint
		// failure costs compaction, not correctness.
		if cerr := db.Checkpoint(); cerr != nil && db.mem.Alarm() == nil {
			// Surfaced on the next Health poll via stats, not by failing a
			// statement that is already applied, logged and synced.
			_ = cerr
		}
	}
	return res, nil
}

// Checkpoint freezes the current verified table contents into immutable
// on-disk segments with a MACed manifest and rotates the WAL (bottom-up
// bulk build: each segment is the table's rows in primary-key order from
// a verified sequential scan). It requires a data dir. Automatic
// checkpoints ride the statement path every CheckpointEvery statements;
// this entry point lets operators and tests force one.
func (db *DB) Checkpoint() error {
	if err := db.QuarantineError(); err != nil {
		return err
	}
	d := db.dur
	if d == nil {
		return errors.New("core: checkpointing requires a data dir")
	}
	d.gate.Lock()
	defer d.gate.Unlock()
	images, err := db.tableImages()
	if err != nil {
		return err
	}
	if err := d.log.Checkpoint(images); err != nil {
		return err
	}
	d.mu.Lock()
	d.sinceCkpt = 0
	d.mu.Unlock()
	return nil
}

// tableImages snapshots every table through verified sequential scans.
// Callers hold the statement gate exclusively, so the images are a
// consistent cut of the database.
func (db *DB) tableImages() ([]*wal.TableImage, error) {
	var images []*wal.TableImage
	for _, name := range db.store.TableNames() {
		t, err := db.store.Table(name)
		if err != nil {
			return nil, err
		}
		img := &wal.TableImage{
			Name:         name,
			Columns:      t.Schema().Columns,
			PrimaryKey:   t.PrimaryKeyColumn(),
			ChainColumns: append([]int(nil), t.ChainColumns()[1:]...),
			Rows:         make([]record.Tuple, 0, t.RowCount()),
		}
		sc, err := t.SeqScan()
		if err != nil {
			return nil, err
		}
		batch := storage.NewRowBatch(storage.DefaultBatchCapacity)
		for {
			n, err := sc.NextBatch(batch)
			if err != nil {
				return nil, fmt.Errorf("core: checkpoint scan of %q: %w", name, err)
			}
			if n == 0 {
				break
			}
			for i := 0; i < n; i++ {
				img.Rows = append(img.Rows, batch.Row(i).Clone())
			}
		}
		images = append(images, img)
	}
	return images, nil
}

// WALPath returns the active WAL file path ("" in memory-only mode);
// crash harnesses cut the log here.
func (db *DB) WALPath() string {
	if db.dur == nil {
		return ""
	}
	return db.dur.log.Path()
}

// WALNextSeq returns the next WAL sequence number (0 in memory-only
// mode).
func (db *DB) WALNextSeq() uint64 {
	if db.dur == nil {
		return 0
	}
	return db.dur.log.NextSeq()
}
