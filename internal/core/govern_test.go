package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"veridb/internal/govern"
)

// openGovern opens a DB with overload-protection knobs and registers
// cleanup. Tests that need durable storage set cfg.DataDir themselves.
func openGovern(t *testing.T, cfg Config) *DB {
	t.Helper()
	if cfg.Seed == 0 {
		cfg.Seed = 99
	}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return db
}

// seedBig creates table big and fills it with n rows.
func seedBig(t *testing.T, db *DB, n int) {
	t.Helper()
	exec(t, db, `CREATE TABLE big (id INT PRIMARY KEY, val INT)`)
	var b strings.Builder
	b.WriteString("INSERT INTO big VALUES ")
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "(%d,%d)", i, (i*7919)%n)
	}
	exec(t, db, b.String())
}

// TestStatementTimeoutCancelsSelect: with StatementTimeout configured, a
// SELECT that cannot finish inside the deadline fails with
// context.DeadlineExceeded instead of running unboundedly. A nanosecond
// timeout is already expired when the drain starts, so the failure is
// deterministic. Inserts still land (the write path runs to completion to
// stay atomic), which is also what lets this test seed its own table.
func TestStatementTimeoutCancelsSelect(t *testing.T) {
	db := openGovern(t, Config{StatementTimeout: time.Nanosecond, ExecBatchSize: 64})
	seedBig(t, db, 200)
	_, err := db.Execute(`SELECT * FROM big`)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

// TestCancelledContextStopsSelect: a caller-cancelled context propagates
// through ExecuteContext into the engine and surfaces as context.Canceled.
func TestCancelledContextStopsSelect(t *testing.T) {
	db := openGovern(t, Config{})
	seedBig(t, db, 200)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.ExecuteContext(ctx, "", `SELECT * FROM big`)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	// The same statement succeeds on a live context: nothing was fenced.
	if _, err := db.ExecuteContext(context.Background(), "", `SELECT * FROM big`); err != nil {
		t.Fatalf("post-cancel statement: %v", err)
	}
}

// TestAdmissionShedsTypedOverload: with one slot and no queue, a second
// concurrent statement is refused with a typed *govern.OverloadedError
// carrying a RetryAfter hint, and admission resumes once the slot frees.
func TestAdmissionShedsTypedOverload(t *testing.T) {
	db := openGovern(t, Config{
		MaxConcurrentStatements: 1,
		AdmissionQueueDepth:     0,
		AdmissionMaxWait:        5 * time.Millisecond,
	})
	seedBig(t, db, 10)
	release, err := db.admit.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, err = db.Execute(`SELECT * FROM big`)
	if !errors.Is(err, govern.ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	var oe *govern.OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("shed error not typed: %v", err)
	}
	if oe.RetryAfter < time.Millisecond {
		t.Fatalf("RetryAfter hint missing: %v", oe.RetryAfter)
	}
	if got := db.GovernStats().Admission.Shed; got < 1 {
		t.Fatalf("shed counter = %d", got)
	}
	release()
	if _, err := db.Execute(`SELECT * FROM big`); err != nil {
		t.Fatalf("post-release statement: %v", err)
	}
}

// TestWALFenceNotMaskedByAdmission: statements queued in admission while
// the WAL fence trips drain with ErrWALBroken — an integrity refusal the
// client must see — never with a retryable ErrOverloaded that would invite
// pointless retries against a fenced instance.
func TestWALFenceNotMaskedByAdmission(t *testing.T) {
	db := openGovern(t, Config{
		DataDir:                 t.TempDir(),
		MaxConcurrentStatements: 1,
		AdmissionQueueDepth:     8,
		AdmissionMaxWait:        5 * time.Second,
	})
	exec(t, db, `CREATE TABLE big (id INT PRIMARY KEY, val INT)`)
	// Trip the sticky WAL fence the way a failed append would.
	db.dur.mu.Lock()
	db.dur.broken = fmt.Errorf("%w: injected append fault", ErrWALBroken)
	db.dur.mu.Unlock()
	// Hold the only slot so the writers below park in the queue.
	release, err := db.admit.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	errs := make([]error, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = db.Execute(fmt.Sprintf(`INSERT INTO big VALUES (%d,%d)`, i, i))
		}(i)
	}
	deadline := time.Now().Add(2 * time.Second)
	for db.admit.Stats().Waiting < writers {
		if time.Now().After(deadline) {
			release()
			t.Fatalf("writers never queued: %+v", db.admit.Stats())
		}
		time.Sleep(100 * time.Microsecond)
	}
	release()
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrWALBroken) {
			t.Fatalf("writer %d: want ErrWALBroken, got %v", i, err)
		}
		if errors.Is(err, govern.ErrOverloaded) {
			t.Fatalf("writer %d: fence masked as overload: %v", i, err)
		}
	}
}

// TestSessionExpiryUnblocksVersionGC: an abandoned BEGIN SNAPSHOT pins the
// version-GC floor; the reaper releases the pin, GC reclaims the retired
// versions, and the client's next statement gets ErrSessionExpired exactly
// once before service resumes.
func TestSessionExpiryUnblocksVersionGC(t *testing.T) {
	db := openGovern(t, Config{})
	exec(t, db, `CREATE TABLE big (id INT PRIMARY KEY, val INT)`)
	exec(t, db, `INSERT INTO big VALUES (0,0)`)
	if _, err := db.ExecuteSession("c1", `BEGIN SNAPSHOT`); err != nil {
		t.Fatal(err)
	}
	// Retire versions under the pin.
	for i := 1; i <= 5; i++ {
		exec(t, db, fmt.Sprintf(`UPDATE big SET val = %d WHERE id = 0`, i))
	}
	if pins := db.store.SnapshotPins(); pins != 1 {
		t.Fatalf("pins = %d, want 1", pins)
	}
	// A GC pass under the pin must keep the snapshot-visible version: the
	// pinned session still reads its original value.
	gcPinned := db.store.VersionGCPass()
	res, err := db.ExecuteSession("c1", `SELECT val FROM big WHERE id = 0`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 0 {
		t.Fatalf("pinned snapshot read %v, want original 0", res.Rows)
	}
	// Reap with a zero idle allowance: every idle pinned session expires.
	time.Sleep(time.Millisecond)
	if n := db.reapIdleSessions(0); n != 1 {
		t.Fatalf("reaped %d sessions, want 1", n)
	}
	if pins := db.store.SnapshotPins(); pins != 0 {
		t.Fatalf("pins = %d after reap, want 0", pins)
	}
	gcFree := db.store.VersionGCPass()
	if gcFree.Reclaimed == 0 {
		t.Fatal("GC reclaimed nothing after the pin was released")
	}
	if gcFree.Floor <= gcPinned.Floor {
		t.Fatalf("GC floor stuck at %d after reap (was %d)", gcFree.Floor, gcPinned.Floor)
	}
	if got := db.GovernStats().SessionsExpired; got != 1 {
		t.Fatalf("SessionsExpired = %d, want 1", got)
	}
	// Expiry notice exactly once, then normal service.
	if _, err := db.ExecuteSession("c1", `SELECT * FROM big`); !errors.Is(err, ErrSessionExpired) {
		t.Fatalf("want ErrSessionExpired, got %v", err)
	}
	if _, err := db.ExecuteSession("c1", `SELECT * FROM big`); err != nil {
		t.Fatalf("second statement after expiry: %v", err)
	}
}

// TestMemBudgetExhaustionTyped: a statement whose materialisations would
// exceed the process budget is refused with a typed
// govern.ErrResourceExhausted instead of growing the heap, while writes
// (whose committed state is charged unconditionally) keep landing.
func TestMemBudgetExhaustionTyped(t *testing.T) {
	db := openGovern(t, Config{MemBudget: 8 << 10})
	seedBig(t, db, 1000)
	_, err := db.Execute(`SELECT * FROM big`)
	if !errors.Is(err, govern.ErrResourceExhausted) {
		t.Fatalf("want ErrResourceExhausted, got %v", err)
	}
	if got := db.GovernStats().MemDenied; got < 1 {
		t.Fatalf("MemDenied = %d", got)
	}
	// Writes are never budget-refused: refusing the commit of an applied
	// statement would be worse than the memory it retains.
	if _, err := db.Execute(`INSERT INTO big VALUES (10000,1)`); err != nil {
		t.Fatalf("write past budget: %v", err)
	}
}

// TestCancelMidScanReleasesResources: repeatedly cancelling statements at
// arbitrary points mid-scan (sharded table, sort materialisation) leaks
// nothing — snapshot pins, reserved budget and goroutine count all return
// to their pre-storm baselines, and the instance still serves queries.
// The chaos CI job runs this under -race.
func TestCancelMidScanReleasesResources(t *testing.T) {
	db := openGovern(t, Config{TableShards: 4, ExecBatchSize: 64, MemBudget: 64 << 20})
	seedBig(t, db, 2000)
	baseMem := db.budget.Used()
	baseGoroutines := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		var ctx context.Context
		var cancel context.CancelFunc
		if i%5 == 0 {
			ctx, cancel = context.WithCancel(context.Background())
			cancel() // cancelled before the first batch
		} else {
			// Deadlines from 50µs to 200µs land at varying scan depths.
			ctx, cancel = context.WithTimeout(context.Background(), time.Duration(i%4+1)*50*time.Microsecond)
		}
		_, _ = db.ExecuteContext(ctx, "", `SELECT * FROM big ORDER BY val`)
		cancel()
	}
	if pins := db.store.SnapshotPins(); pins != 0 {
		t.Fatalf("leaked %d snapshot pins", pins)
	}
	if used := db.budget.Used(); used != baseMem {
		t.Fatalf("budget used %d, baseline %d: reservation leaked", used, baseMem)
	}
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= baseGoroutines {
			break
		}
		if i >= 100 {
			t.Fatalf("goroutines %d > baseline %d after cancel storm", runtime.NumGoroutine(), baseGoroutines)
		}
		time.Sleep(10 * time.Millisecond)
	}
	res := exec(t, db, `SELECT * FROM big WHERE id = 5`)
	if len(res.Rows) != 1 {
		t.Fatalf("post-storm query rows = %d", len(res.Rows))
	}
}
