package core

// Group-commit regression tests at the statement layer: the ack barrier
// (no Execute returns before its group's fsync), the sticky write fence
// on a failed group fsync, and end-to-end recovery of a concurrently
// group-committed workload.

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"veridb/internal/chaos"
)

// groupCommitConfig is the standard durable test config with the commit
// pipeline enabled.
func groupCommitConfig(dir string) Config {
	return Config{
		Seed:                crashSeed,
		DataDir:             dir,
		GroupCommitMaxDelay: 2 * time.Millisecond,
		GroupCommitMaxBatch: 8,
	}
}

// TestGroupCommitConcurrentDurableWorkload: concurrent writers on a
// group-committed durable database all ack, and a reopen recovers every
// acked row with a clean verification pass.
func TestGroupCommitConcurrentDurableWorkload(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(groupCommitConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute(`CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	const workers, per = 4, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := w*per + i
				if _, err := db.Execute(fmt.Sprintf(`INSERT INTO kv VALUES (%d, 'row-%d')`, k, k)); err != nil {
					t.Errorf("worker %d insert %d: %v", w, k, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	db.Close()

	re, err := Open(Config{Seed: crashSeed, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if qerr := re.QuarantineError(); qerr != nil {
		t.Fatalf("recovered DB quarantined: %v", qerr)
	}
	// CREATE + every acked INSERT must be in the log.
	if got := re.WALNextSeq(); got != uint64(1+workers*per) {
		t.Fatalf("recovered WAL seq %d, want %d", got, 1+workers*per)
	}
	res, err := re.Execute(`SELECT k FROM kv`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != workers*per {
		t.Fatalf("recovered %d rows, want %d", len(res.Rows), workers*per)
	}
	if err := re.Memory().VerifyAll(); err != nil {
		t.Fatalf("VerifyAll after recovery: %v", err)
	}
}

// TestGroupCommitFailedFsyncFencesWrites: when a group's fsync fails,
// every waiter of that group gets the error — none of them ack — and
// the database trips the sticky ErrWALBroken fence: later writes are
// refused before touching the WAL, while reads keep serving.
func TestGroupCommitFailedFsyncFencesWrites(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(groupCommitConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Execute(`CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}

	injected := errors.New("injected device failure")
	db.dur.log.SetSyncHook(chaos.FailingSync(0, injected))

	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, errs[w] = db.Execute(fmt.Sprintf(`INSERT INTO kv VALUES (%d, 'x')`, w))
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err == nil {
			t.Fatalf("worker %d acked a write whose group fsync failed", w)
		}
		if !errors.Is(err, ErrWALBroken) {
			t.Fatalf("worker %d error %v does not wrap ErrWALBroken", w, err)
		}
	}

	// The fence is sticky: later writes are refused outright, even after
	// the device "recovers" — durability of the tail is already in doubt.
	db.dur.log.SetSyncHook(nil)
	if _, err := db.Execute(`INSERT INTO kv VALUES (99, 'after')`); !errors.Is(err, ErrWALBroken) {
		t.Fatalf("write after fence returned %v, want ErrWALBroken", err)
	}
	// Reads still serve: the fence protects durability, not availability.
	if _, err := db.Execute(`SELECT k FROM kv`); err != nil {
		t.Fatalf("read on a write-fenced database: %v", err)
	}
}
