package core

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count drops back to at most
// want (scheduler teardown is asynchronous), failing after two seconds.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	t.Fatalf("goroutines leaked: %d > %d\n%s",
		runtime.NumGoroutine(), want, buf[:runtime.Stack(buf, true)])
}

// TestVerifierLifecycleNoLeak: opening a DB with a background verifier
// and closing it — or quarantining it — returns the process to its
// baseline goroutine count. Close is idempotent and safe to race with
// quarantine entry (both paths stop the scanner pool exactly once).
func TestVerifierLifecycleNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()

	// Plain open/close cycles.
	for i := 0; i < 3; i++ {
		db, err := Open(Config{Seed: uint64(i + 1), VerifyEveryOps: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !db.Memory().VerifierRunning() {
			t.Fatal("verifier not running after Open")
		}
		seedKV(t, db, 4)
		db.Close()
		if db.Memory().VerifierRunning() {
			t.Fatal("verifier still running after Close")
		}
		db.Close() // idempotent
	}
	waitGoroutines(t, base)

	// Quarantine entry stops the pool without Close.
	db, err := Open(Config{Seed: 50, VerifyEveryOps: 4})
	if err != nil {
		t.Fatal(err)
	}
	seedKV(t, db, 8)
	if err := tamperFirstRecord(db); err != nil {
		t.Fatal(err)
	}
	if err := db.Memory().VerifyAll(); err == nil {
		t.Fatal("tamper not detected")
	}
	if err := db.QuarantineError(); err == nil {
		t.Fatal("no quarantine after alarm")
	}
	if db.Memory().VerifierRunning() {
		t.Fatal("verifier still running after quarantine")
	}
	waitGoroutines(t, base)
	db.Close() // still safe after quarantine already stopped the pool

	// Concurrent quarantine entry and Close race for the same shutdown.
	db2, err := Open(Config{Seed: 51, VerifyEveryOps: 4})
	if err != nil {
		t.Fatal(err)
	}
	seedKV(t, db2, 8)
	if err := tamperFirstRecord(db2); err != nil {
		t.Fatal(err)
	}
	if err := db2.Memory().VerifyAll(); err == nil {
		t.Fatal("tamper not detected")
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				db2.Close()
			} else {
				db2.QuarantineError()
			}
		}(i)
	}
	wg.Wait()
	if db2.Memory().VerifierRunning() {
		t.Fatal("verifier survived concurrent Close/quarantine")
	}
	waitGoroutines(t, base)
}
