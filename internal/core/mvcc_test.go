package core

// Session-level MVCC tests: BEGIN SNAPSHOT / COMMIT through the SQL
// surface, snapshot isolation against an explicit committed-prefix
// oracle, and per-client session routing through the authenticated
// portal.

import (
	"bytes"
	"strings"
	"testing"

	"veridb/internal/client"
	"veridb/internal/record"
)

func TestSnapshotSessionStatements(t *testing.T) {
	db := openTest(t)
	seed(t, db)

	res, err := db.ExecuteSession("s1", `BEGIN SNAPSHOT`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "snapshot_seq" || len(res.Rows) != 1 {
		t.Fatalf("BEGIN SNAPSHOT result: %+v", res)
	}
	if res.Rows[0][0].I <= 0 {
		t.Fatalf("snapshot_seq %v", res.Rows[0][0])
	}

	// A second BEGIN without COMMIT is an error.
	if _, err := db.ExecuteSession("s1", `BEGIN SNAPSHOT`); err == nil || !strings.Contains(err.Error(), "already holds") {
		t.Fatalf("double BEGIN: %v", err)
	}
	// COMMIT without a snapshot is an error too (fresh session).
	if _, err := db.ExecuteSession("s2", `COMMIT`); err == nil || !strings.Contains(err.Error(), "without a pinned snapshot") {
		t.Fatalf("bare COMMIT: %v", err)
	}
	// The pinned session is read-only.
	if _, err := db.ExecuteSession("s1", `INSERT INTO quote VALUES (9, 9, 9.0)`); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("write under pinned snapshot: %v", err)
	}

	// Writes from other sessions proceed and are invisible to s1.
	exec(t, db, `INSERT INTO quote VALUES (10, 700, 7.0)`)
	exec(t, db, `DELETE FROM quote WHERE id = 1`)
	rows, err := db.ExecuteSession("s1", `SELECT id FROM quote ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 4 || rows.Rows[0][0].I != 1 || rows.Rows[3][0].I != 4 {
		t.Fatalf("pinned read saw concurrent writes: %v", rows.Rows)
	}

	// COMMIT releases the pin; the session now reads current state.
	if _, err := db.ExecuteSession("s1", `COMMIT`); err != nil {
		t.Fatal(err)
	}
	rows, err = db.ExecuteSession("s1", `SELECT id FROM quote ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 4 || rows.Rows[0][0].I != 2 || rows.Rows[3][0].I != 10 {
		t.Fatalf("post-COMMIT read: %v", rows.Rows)
	}
	// And can write again.
	if _, err := db.ExecuteSession("s1", `INSERT INTO quote VALUES (11, 1, 1.0)`); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotVsCommittedPrefixOracle pins a snapshot, replays the same
// committed prefix into a second database (the oracle), applies divergent
// writes to the first, and asserts the pinned session's results stay
// bit-identical to the oracle's current state — rows, columns, and
// row-encoding bytes.
func TestSnapshotVsCommittedPrefixOracle(t *testing.T) {
	db := openTest(t)
	oracle, err := Open(Config{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()

	prefix := []string{
		`CREATE TABLE acct (id INT PRIMARY KEY, bal INT, INDEX(bal))`,
		`INSERT INTO acct VALUES (1,100),(2,200),(3,300),(4,400),(5,500)`,
		`UPDATE acct SET bal = bal + 5 WHERE id <= 2`,
		`DELETE FROM acct WHERE id = 4`,
	}
	for _, q := range prefix {
		exec(t, db, q)
		if _, err := oracle.Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.ExecuteSession("reader", `BEGIN SNAPSHOT`); err != nil {
		t.Fatal(err)
	}
	// Divergent suffix on db only.
	exec(t, db, `INSERT INTO acct VALUES (6,600),(7,700)`)
	exec(t, db, `UPDATE acct SET bal = 0 WHERE bal > 250`)
	exec(t, db, `DELETE FROM acct WHERE id = 1`)

	queries := []string{
		`SELECT id, bal FROM acct ORDER BY id`,
		`SELECT id FROM acct WHERE bal > 150 ORDER BY id`,
		`SELECT COUNT(*) AS n, SUM(bal) FROM acct`,
	}
	for _, q := range queries {
		got, err := db.ExecuteSession("reader", q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracle.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("%s: %d rows vs oracle %d", q, len(got.Rows), len(want.Rows))
		}
		for i := range got.Rows {
			g := record.Encode(&record.Record{Data: got.Rows[i]})
			w := record.Encode(&record.Record{Data: want.Rows[i]})
			if !bytes.Equal(g, w) {
				t.Fatalf("%s row %d: %v vs oracle %v", q, i, got.Rows[i], want.Rows[i])
			}
		}
	}
	// Both sides verify clean.
	if err := db.Memory().VerifyAll(); err != nil {
		t.Fatal(err)
	}
	if err := oracle.Memory().VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

// TestPortalSessionsPerClient drives two authenticated clients through the
// portal: alice pins a snapshot, bob keeps writing; alice's endorsed
// results stay frozen (and repeat bit-identically modulo qid/seq) while
// bob's reflect his writes; alice's session is read-only until COMMIT.
func TestPortalSessionsPerClient(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	db.Enclave().ProvisionMACKey("alice", []byte("ka"))
	db.Enclave().ProvisionMACKey("bob", []byte("kb"))
	alice := client.New("alice", []byte("ka"))
	bob := client.New("bob", []byte("kb"))

	serve := func(c *client.Client, q string) (*struct {
		rows []record.Tuple
		err  string
	}, error) {
		req := c.NewRequest(q)
		resp, err := db.Portal().Serve(req)
		if err != nil {
			return nil, err
		}
		if verr := c.VerifyResponse(req, resp); verr != nil {
			if _, ok := verr.(*client.ServerError); !ok {
				return nil, verr
			}
		}
		return &struct {
			rows []record.Tuple
			err  string
		}{resp.Rows, resp.ErrMsg}, nil
	}

	if out, err := serve(alice, `BEGIN SNAPSHOT`); err != nil || out.err != "" {
		t.Fatalf("alice BEGIN SNAPSHOT: %v %q", err, out.err)
	}
	// Bob writes; his own reads see the write immediately.
	if out, err := serve(bob, `INSERT INTO quote VALUES (20, 999, 9.9)`); err != nil || out.err != "" {
		t.Fatalf("bob insert: %v %q", err, out.err)
	}
	if out, err := serve(bob, `SELECT id FROM quote WHERE id = 20`); err != nil || len(out.rows) != 1 {
		t.Fatalf("bob read: %v %+v", err, out)
	}
	// Alice's pinned session does not see bob's insert, twice over, with
	// bit-identical row bytes.
	var first []byte
	for i := 0; i < 2; i++ {
		out, err := serve(alice, `SELECT id, count FROM quote ORDER BY id`)
		if err != nil || out.err != "" {
			t.Fatalf("alice read %d: %v %q", i, err, out.err)
		}
		if len(out.rows) != 4 {
			t.Fatalf("alice read %d saw bob's write: %v", i, out.rows)
		}
		h := []byte{}
		for _, row := range out.rows {
			h = append(h, record.Encode(&record.Record{Data: row})...)
		}
		if first == nil {
			first = h
		} else if !bytes.Equal(first, h) {
			t.Fatalf("alice repeat read diverged")
		}
	}
	// Alice cannot write while pinned — an authenticated server error, not
	// an authorisation failure.
	out, err := serve(alice, `DELETE FROM quote WHERE id = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.err, "read-only") {
		t.Fatalf("alice write under pin: %q", out.err)
	}
	// COMMIT, then alice sees bob's row and can write.
	if out, err := serve(alice, `COMMIT`); err != nil || out.err != "" {
		t.Fatalf("alice COMMIT: %v %q", err, out.err)
	}
	if out, err := serve(alice, `SELECT id FROM quote WHERE id = 20`); err != nil || out.err != "" || len(out.rows) != 1 {
		t.Fatalf("alice post-COMMIT read: %v %+v", err, out)
	}
	if out, err := serve(alice, `DELETE FROM quote WHERE id = 20`); err != nil || out.err != "" {
		t.Fatalf("alice post-COMMIT delete: %v %q", err, out.err)
	}
	if err := db.Memory().VerifyAll(); err != nil {
		t.Fatal(err)
	}
}
