package core

// Plan-cache behavior at the statement layer: hits on repeated statement
// shapes (modulo whitespace/case normalization), invalidation on DDL and
// shard-layout changes, and — the soundness assertion — a dropped table
// never being served from a stale cached plan.

import (
	"strings"
	"testing"
)

func openCached(t *testing.T) *DB {
	t.Helper()
	db, err := Open(Config{Seed: 99, PlanCacheSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return db
}

func TestPlanCacheHitOnNormalizedText(t *testing.T) {
	db := openCached(t)
	seed(t, db)

	r1 := exec(t, db, `SELECT id FROM quote WHERE count = 100`)
	s0 := db.PlanCacheStats()
	if s0.Hits != 0 {
		t.Fatalf("first execution hit the cache: %+v", s0)
	}
	// Same statement shape, different whitespace and keyword case: the
	// normalized key is identical, so this is a hit.
	r2 := exec(t, db, "select  id\n\tfrom quote   where count = 100")
	s1 := db.PlanCacheStats()
	if s1.Hits != s0.Hits+1 {
		t.Fatalf("repeated statement missed the cache: before %+v after %+v", s0, s1)
	}
	if len(r1.Rows) != 2 || len(r2.Rows) != len(r1.Rows) {
		t.Fatalf("cached rows %v, fresh rows %v", r2.Rows, r1.Rows)
	}
	for i := range r1.Rows {
		if r1.Rows[i][0] != r2.Rows[i][0] {
			t.Fatalf("row %d: cached %v, fresh %v", i, r2.Rows[i], r1.Rows[i])
		}
	}
	// Different literals are different plans (scan bounds are embedded),
	// so this must NOT hit the count=100 entry.
	r3 := exec(t, db, `SELECT id FROM quote WHERE count = 500`)
	if len(r3.Rows) != 1 {
		t.Fatalf("literal-changed statement reused a stale plan: %v", r3.Rows)
	}
	if s2 := db.PlanCacheStats(); s2.Hits != s1.Hits {
		t.Fatalf("different literals counted as a hit: %+v", s2)
	}
}

func TestPlanCacheDDLInvalidation(t *testing.T) {
	db := openCached(t)
	seed(t, db)

	q := `SELECT id FROM quote WHERE count = 100`
	exec(t, db, q)
	exec(t, db, q)
	s0 := db.PlanCacheStats()
	if s0.Hits == 0 {
		t.Fatalf("warm-up did not populate the cache: %+v", s0)
	}

	// CREATE TABLE advances the catalog version: the cached plan is
	// discarded on next access and recompiled.
	exec(t, db, `CREATE TABLE extra (id INT PRIMARY KEY)`)
	res := exec(t, db, q)
	s1 := db.PlanCacheStats()
	if s1.Invalidations != s0.Invalidations+1 {
		t.Fatalf("CREATE TABLE did not invalidate: before %+v after %+v", s0, s1)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("recompiled plan returned %v", res.Rows)
	}
	if s2 := db.PlanCacheStats(); s2.Hits != s1.Hits+1 {
		exec(t, db, q) // the recompile re-populated the entry
		if s3 := db.PlanCacheStats(); s3.Hits != s1.Hits+1 {
			t.Fatalf("entry not re-populated after invalidation: %+v", s3)
		}
	}

	// DROP TABLE: a select cached against the dropped table must error,
	// never serve rows from a stale plan over freed pages.
	qi := `SELECT id FROM inventory`
	exec(t, db, qi)
	exec(t, db, qi)
	exec(t, db, `DROP TABLE inventory`)
	if _, err := db.Execute(qi); err == nil || !strings.Contains(err.Error(), "inventory") {
		t.Fatalf("select on dropped table returned %v, want unknown-table error", err)
	}
}

func TestPlanCacheShardLayoutInvalidation(t *testing.T) {
	db := openCached(t)
	seed(t, db)

	q := `SELECT id FROM quote WHERE count = 100`
	exec(t, db, q)
	exec(t, db, q)
	s0 := db.PlanCacheStats()

	// A shard-layout change advances the catalog version like DDL does:
	// plans compiled against the old layout are discarded.
	db.store.SetDefaultShards(4)
	res := exec(t, db, q)
	s1 := db.PlanCacheStats()
	if s1.Invalidations != s0.Invalidations+1 {
		t.Fatalf("shard-layout change did not invalidate: before %+v after %+v", s0, s1)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("recompiled plan returned %v", res.Rows)
	}
}
