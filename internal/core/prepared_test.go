package core

// PREPARE/EXECUTE round trips: parameter binding through the portal
// statement path, arity and registry errors, placeholder scoping, and —
// the durable case — WAL replay of EXECUTEd mutations, which are logged
// as rendered bound text so recovery is independent of the session's
// prepared-statement registry (lost on restart by design).

import (
	"strings"
	"testing"
)

func TestPrepareExecuteRoundTrip(t *testing.T) {
	db := openTest(t)
	seed(t, db)

	exec(t, db, `PREPARE getq AS SELECT id FROM quote WHERE count = ?`)
	res := exec(t, db, `EXECUTE getq (100)`)
	if len(res.Rows) != 2 {
		t.Fatalf("EXECUTE getq (100): %v", res.Rows)
	}
	res = exec(t, db, `EXECUTE getq (500)`)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 3 {
		t.Fatalf("EXECUTE getq (500): %v", res.Rows)
	}

	// Wrong arity, unknown name, and placeholders outside PREPARE are
	// all statement-level errors, not silent misbehavior.
	if _, err := db.Execute(`EXECUTE getq ()`); err == nil || !strings.Contains(err.Error(), "arguments") {
		t.Fatalf("arity mismatch returned %v", err)
	}
	if _, err := db.Execute(`EXECUTE nosuch (1)`); err == nil {
		t.Fatal("EXECUTE of unknown prepared statement succeeded")
	}
	if _, err := db.Execute(`SELECT id FROM quote WHERE count = ?`); err == nil {
		t.Fatal("bare ? outside PREPARE parsed")
	}

	exec(t, db, `DEALLOCATE getq`)
	if _, err := db.Execute(`EXECUTE getq (100)`); err == nil {
		t.Fatal("EXECUTE after DEALLOCATE succeeded")
	}
	if _, err := db.Execute(`DEALLOCATE getq`); err == nil {
		t.Fatal("double DEALLOCATE succeeded")
	}
}

func TestPrepareExecuteDurableReplay(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(groupCommitConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	exec(t, db, `CREATE TABLE kv (k INT PRIMARY KEY, v TEXT, f FLOAT, b BOOL)`)
	exec(t, db, `PREPARE ins AS INSERT INTO kv VALUES (?, ?, ?, ?)`)
	// Values chosen to stress the WAL text rendering: embedded quotes
	// must re-escape, integral floats must stay floats through a
	// re-parse, tiny floats must not render in exponent notation.
	exec(t, db, `EXECUTE ins (1, 'it''s', 2.0, TRUE)`)
	exec(t, db, `EXECUTE ins (2, '', 0.0000001, FALSE)`)
	exec(t, db, `EXECUTE ins (3, 'plain', -4.5, TRUE)`)
	want := exec(t, db, `SELECT k, v, f, b FROM kv`).Rows
	db.Close()

	re, err := Open(Config{Seed: crashSeed, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if qerr := re.QuarantineError(); qerr != nil {
		t.Fatalf("recovered DB quarantined: %v", qerr)
	}
	// CREATE + three logged EXECUTEs; the PREPARE itself is never logged.
	if got := re.WALNextSeq(); got != 4 {
		t.Fatalf("recovered WAL seq %d, want 4", got)
	}
	got := exec(t, re, `SELECT k, v, f, b FROM kv`).Rows
	if len(got) != len(want) {
		t.Fatalf("recovered %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		for c := range want[i] {
			if !got[i][c].Equal(want[i][c]) {
				t.Fatalf("row %d col %d: recovered %v, want %v", i, c, got[i][c], want[i][c])
			}
		}
	}
	if got[0][1].S != "it's" {
		t.Fatalf("quote escaping lost through replay: %q", got[0][1].S)
	}
	if err := re.Memory().VerifyAll(); err != nil {
		t.Fatalf("VerifyAll after replay: %v", err)
	}
	// The registry is session state: re-prepare after restart.
	if _, err := re.Execute(`EXECUTE ins (9, 'x', 1.0, TRUE)`); err == nil {
		t.Fatal("prepared statement survived a restart")
	}
}
