package core

// Golden-file recovery and recovery/verifier lifecycle regressions.
//
// The golden test recovers a pre-built data directory committed under
// testdata/ — checkpoint segments plus a WAL tail, byte-for-byte as a
// past version of the code wrote them — and pins the recovered state to
// a constant. It is the cross-version compatibility lock: a change to
// the record format, the MAC personals or the replay order that still
// round-trips against itself will fail here, where a same-binary
// round-trip test cannot notice. Regenerate (deliberately!) with:
//
//	VERIDB_UPDATE_GOLDEN=1 go test -run TestGenerateGoldenDataDir ./internal/core
//
// and update the pinned constants from the test's output.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"veridb/internal/chaos"
)

const (
	goldenDir = "testdata/durable-golden"
	// goldenSeed seeds the enclave PRF, making the replayed version
	// history — and with it the resident checksum — deterministic.
	goldenSeed = 42
	// goldenStatements is the workload length baked into the directory.
	goldenStatements = 25
	// goldenChecksumAfterRecovery pins the resident checksum after
	// recovering the committed directory and running one VerifyAll scan.
	goldenChecksumAfterRecovery = "545dbc39ff70b8ff"
)

func TestGoldenRecovery(t *testing.T) {
	if _, err := os.Stat(goldenDir); err != nil {
		t.Fatalf("golden data dir missing (run TestGenerateGoldenDataDir with VERIDB_UPDATE_GOLDEN=1): %v", err)
	}
	// Recover a copy: recovery truncates torn tails in place and appends
	// would dirty the committed bytes.
	work := filepath.Join(t.TempDir(), "golden")
	if err := chaos.CopyDir(goldenDir, work); err != nil {
		t.Fatal(err)
	}
	db, err := Open(Config{Seed: goldenSeed, DataDir: work})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if qerr := db.QuarantineError(); qerr != nil {
		t.Fatalf("golden recovery quarantined: %v", qerr)
	}
	if got := db.WALNextSeq(); got != goldenStatements {
		t.Fatalf("recovered WAL seq %d, want %d", got, goldenStatements)
	}
	if err := db.Memory().VerifyAll(); err != nil {
		t.Fatalf("VerifyAll: %v", err)
	}
	if got := fmt.Sprintf("%v", db.Memory().ResidentChecksum()); got != goldenChecksumAfterRecovery {
		t.Fatalf("recovered resident checksum %s, want pinned %s", got, goldenChecksumAfterRecovery)
	}
	_, states := crashWorkload(goldenStatements)
	if got := tableRows(t, db); !sameRows(got, states[goldenStatements]) {
		t.Fatalf("recovered rows %v, want %v", got, states[goldenStatements])
	}
}

// TestGenerateGoldenDataDir rebuilds testdata/durable-golden. Guarded:
// regenerating silently would defeat the test's purpose.
func TestGenerateGoldenDataDir(t *testing.T) {
	if os.Getenv("VERIDB_UPDATE_GOLDEN") == "" {
		t.Skip("set VERIDB_UPDATE_GOLDEN=1 to regenerate the golden data dir")
	}
	if err := os.RemoveAll(goldenDir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(goldenDir, 0o755); err != nil {
		t.Fatal(err)
	}
	stmts, _ := crashWorkload(goldenStatements)
	db, err := Open(Config{Seed: goldenSeed, DataDir: goldenDir, CheckpointEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stmts {
		if _, err := db.Execute(s); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()

	// Recover a copy and print the value to pin.
	check, err := Open(Config{Seed: goldenSeed, DataDir: mustCopy(t, goldenDir)})
	if err != nil {
		t.Fatal(err)
	}
	defer check.Close()
	if err := check.Memory().VerifyAll(); err != nil {
		t.Fatal(err)
	}
	t.Logf("pin goldenChecksumAfterRecovery = %q", fmt.Sprintf("%v", check.Memory().ResidentChecksum()))
}

func mustCopy(t *testing.T, src string) string {
	t.Helper()
	dst := filepath.Join(t.TempDir(), "copy")
	if err := chaos.CopyDir(src, dst); err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestRecoveryVerifierLifecycle: the background scanner must not observe
// the half-built image while WAL replay is in flight — Open starts it
// only after recovery passes the VerifyAll admission gate — and Close
// after a durable open leaks nothing.
func TestRecoveryVerifierLifecycle(t *testing.T) {
	base := runtime.NumGoroutine()
	dir := t.TempDir()
	stmts, _ := crashWorkload(20)

	for cycle := 0; cycle < 3; cycle++ {
		db, err := Open(Config{Seed: goldenSeed, DataDir: dir, VerifyEveryOps: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !db.Memory().VerifierRunning() {
			t.Fatal("verifier not running after clean durable open")
		}
		if cycle == 0 {
			for _, s := range stmts {
				if _, err := db.Execute(s); err != nil {
					t.Fatal(err)
				}
			}
		}
		if qerr := db.QuarantineError(); qerr != nil {
			t.Fatalf("cycle %d quarantined: %v", cycle, qerr)
		}
		db.Close()
		if db.Memory().VerifierRunning() {
			t.Fatal("verifier still running after Close")
		}
	}
	waitGoroutines(t, base)
}

// TestQuarantinedRecoveryLifecycle: recovering a tampered directory must
// quarantine without ever starting the background verifier (nothing to
// scan that could be trusted) and without leaking goroutines; statements
// stay fenced.
func TestQuarantinedRecoveryLifecycle(t *testing.T) {
	base := runtime.NumGoroutine()
	dir := t.TempDir()
	stmts, _ := crashWorkload(20)
	boundaries, walName := runDurableWorkload(t, dir, Config{Seed: goldenSeed}, stmts)

	mid := boundaries[0] + (boundaries[len(boundaries)-1]-boundaries[0])/3
	if err := chaos.FlipBit(filepath.Join(dir, walName), mid, 6); err != nil {
		t.Fatal(err)
	}
	db, err := Open(Config{Seed: goldenSeed, DataDir: dir, VerifyEveryOps: 4})
	if err != nil {
		t.Fatalf("tampered open should quarantine, not error: %v", err)
	}
	if db.Memory().VerifierRunning() {
		t.Fatal("verifier running on a quarantined recovery")
	}
	if qerr := db.QuarantineError(); qerr == nil {
		t.Fatal("tampered recovery not quarantined")
	}
	if _, err := db.Execute(`SELECT k FROM kv`); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("statement on quarantined recovery: %v", err)
	}
	db.Close()
	waitGoroutines(t, base)
}
