// Supervisor: automated replica failover. A quarantined instance (sticky
// tamper alarm, §4.3) can answer every request with an authenticated
// "integrity compromised" response, but it can never serve data again —
// recovery means rebuilding a fresh instance from a replica (§5.1) and
// proving the rebuild clean before admitting traffic. The Supervisor
// automates that pipeline: watch the alarm, rebuild, verify, swap.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"veridb/internal/portal"
)

// SupervisorConfig wires a Supervisor over an active instance.
type SupervisorConfig struct {
	// Active is the instance currently serving traffic.
	Active *DB
	// Replica supplies the honest state a replacement is rebuilt from
	// (§5.1's "replicas of the protected database on other machines").
	Replica *DB
	// Fresh builds an empty replacement instance. It must provision the
	// same client MAC keys as the failed instance (in production this is
	// re-attestation plus key re-exchange); the Supervisor only rebuilds
	// data. Called once per failover attempt.
	Fresh func() (*DB, error)
	// Poll is the alarm polling cadence. Zero means 5ms — comfortably
	// inside an epoch rotation, so detection latency is dominated by the
	// verifier, not the watcher.
	Poll time.Duration
}

// FailoverRecord describes one completed failover.
type FailoverRecord struct {
	// Alarm is the quarantine error that triggered the failover.
	Alarm string
	// SeqFloor is the sequence number the replacement resumed above.
	SeqFloor uint64
	// Detected is when the watcher observed the quarantine.
	Detected time.Time
	// Recovered is when the replacement was admitted (rebuilt + verified).
	Recovered time.Time
}

// Supervisor watches an instance's tamper alarm and fails over to a
// rebuilt replacement when it trips. Clients route requests through
// Serve, so a failover is transparent apart from a window of
// authenticated quarantine responses while the replacement is rebuilt.
type Supervisor struct {
	cfg    SupervisorConfig
	active atomic.Pointer[DB]

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	mu       sync.Mutex
	records  []FailoverRecord
	lastErr  error // last failed failover attempt, retried next poll
	failures int
}

// NewSupervisor starts watching. Close releases the watcher.
func NewSupervisor(cfg SupervisorConfig) (*Supervisor, error) {
	if cfg.Active == nil || cfg.Replica == nil || cfg.Fresh == nil {
		return nil, fmt.Errorf("core: supervisor needs Active, Replica and Fresh")
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 5 * time.Millisecond
	}
	s := &Supervisor{
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	s.active.Store(cfg.Active)
	go s.watch()
	return s, nil
}

// Active returns the instance currently serving traffic.
func (s *Supervisor) Active() *DB { return s.active.Load() }

// Serve routes one authenticated request to the active instance's portal.
// During a failover window the quarantined instance keeps answering (with
// authenticated quarantine responses); afterwards requests land on the
// replacement, whose sequence numbers continue above the floor.
func (s *Supervisor) Serve(req portal.Request) (*portal.Response, error) {
	return s.active.Load().Portal().Serve(req)
}

// Failovers returns the completed failovers, oldest first.
func (s *Supervisor) Failovers() []FailoverRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]FailoverRecord(nil), s.records...)
}

// Err returns the most recent failed failover attempt (nil when the last
// attempt succeeded or none was needed). Attempts are retried every poll.
func (s *Supervisor) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// Close stops the watcher. The active instance keeps serving.
func (s *Supervisor) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

func (s *Supervisor) watch() {
	defer close(s.done)
	tick := time.NewTicker(s.cfg.Poll)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
		}
		db := s.active.Load()
		qerr := db.QuarantineError()
		if qerr == nil {
			continue
		}
		detected := time.Now()
		fresh, floor, err := s.failover(db)
		s.mu.Lock()
		if err != nil {
			s.lastErr = err
			s.failures++
			s.mu.Unlock()
			continue // the replica may still be warming; retry next poll
		}
		s.lastErr = nil
		s.records = append(s.records, FailoverRecord{
			Alarm:     qerr.Error(),
			SeqFloor:  floor,
			Detected:  detected,
			Recovered: time.Now(),
		})
		s.mu.Unlock()
		s.active.Store(fresh)
	}
}

// failover rebuilds a replacement from the replica and gates it on a full
// verification pass. The replacement is only admitted once every page of
// the rebuilt state reconciles — a failover must never trade one
// compromised instance for another. The sequence floor is read after
// quarantine entry: the quarantined portal assigns each seq before its
// quarantine check, so every data response's seq is ≤ the floor, and the
// replacement's numbering continues above everything a client recorded.
func (s *Supervisor) failover(failed *DB) (*DB, uint64, error) {
	floor := failed.Portal().Seq()
	fresh, err := s.cfg.Fresh()
	if err != nil {
		return nil, 0, fmt.Errorf("core: failover: building replacement: %w", err)
	}
	if err := fresh.Recover(s.cfg.Replica, floor); err != nil {
		fresh.Close()
		return nil, 0, fmt.Errorf("core: failover: rebuilding from replica: %w", err)
	}
	if err := fresh.mem.VerifyAll(); err != nil {
		fresh.Close()
		return nil, 0, fmt.Errorf("core: failover: replacement failed verification: %w", err)
	}
	// The quarantined portal kept consuming seqs for its fencing
	// responses while we rebuilt; raise the floor once more so even
	// those are never reissued.
	fresh.portal.ResumeAt(failed.Portal().Seq())
	return fresh, floor, nil
}
