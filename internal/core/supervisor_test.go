package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"veridb/internal/chaos"
	"veridb/internal/client"
	"veridb/internal/portal"
	"veridb/internal/record"
	"veridb/internal/vmem"
)

// mkInstance builds a DB with a running background verifier and the test
// client provisioned — the shape of every instance in a failover chain
// (active, replica, replacements).
func mkInstance(t *testing.T, seed uint64, key []byte) *DB {
	t.Helper()
	db, err := Open(Config{Seed: seed, VerifyEveryOps: 4})
	if err != nil {
		t.Fatal(err)
	}
	db.Enclave().ProvisionMACKey("alice", key)
	t.Cleanup(db.Close)
	return db
}

func seedKV(t *testing.T, db *DB, rows int) {
	t.Helper()
	exec(t, db, `CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)`)
	for i := 0; i < rows; i++ {
		exec(t, db, fmt.Sprintf(`INSERT INTO kv VALUES (%d, 'v%d')`, i, i))
	}
}

// TestSupervisorFailoverEndToEnd is the chaos pipeline in one test: a
// seeded bit flip lands mid-workload, the background verifier raises the
// alarm, the portal fences with authenticated quarantine responses, the
// supervisor rebuilds a replacement from the replica, gates it on a full
// verification pass, and the client — same session, same tracker —
// resumes with sequence continuity and verified data.
func TestSupervisorFailoverEndToEnd(t *testing.T) {
	key := []byte("pre-exchanged")
	active := mkInstance(t, 101, key)
	replica := mkInstance(t, 202, key)
	seedKV(t, active, 64)
	seedKV(t, replica, 64)

	var freshSeed uint64 = 300
	sup, err := NewSupervisor(SupervisorConfig{
		Active:  active,
		Replica: replica,
		Fresh: func() (*DB, error) {
			freshSeed++
			return mkInstance(t, freshSeed, key), nil
		},
		Poll: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()

	c := client.New("alice", key)
	tr := client.TransportFunc(func(req portal.Request) (*portal.Response, error) {
		return sup.Serve(req)
	})

	// Arm one bit flip a short way into the workload.
	in := chaos.New(9, chaos.MemFault{Kind: chaos.BitFlip, AtOp: active.Memory().Stats().Ops + 40})
	in.Attach(active.Memory())
	defer in.Detach()

	var sawQuarantine, recovered bool
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && !recovered {
		resp, err := c.Do(tr, `SELECT v FROM kv WHERE k = 7`,
			client.RetryConfig{Timeout: 5 * time.Second, Retries: 1})
		switch {
		case errors.Is(err, client.ErrQuarantined):
			// Authenticated fencing: VerifyResponse only returns
			// ErrQuarantined after the MAC (covering the flag) checked out.
			sawQuarantine = true
		case errors.Is(err, client.ErrRollback):
			t.Fatalf("sequence continuity broken across failover: %v", err)
		case err != nil:
			t.Fatalf("workload query failed: %v", err)
		case sawQuarantine:
			// First clean response after the quarantine window: we are on
			// the replacement. Its data must be the replica's.
			if len(resp.Rows) != 1 || resp.Rows[0][0].S != "v7" {
				t.Fatalf("recovered instance returned %v", resp.Rows)
			}
			recovered = true
		}
	}
	if !sawQuarantine {
		t.Fatal("bit flip never produced a quarantine response")
	}
	if !recovered {
		t.Fatalf("failover never completed: supervisor err %v", sup.Err())
	}

	recs := sup.Failovers()
	if len(recs) != 1 {
		t.Fatalf("failovers %v, want exactly one", recs)
	}
	if recs[0].Alarm == "" || recs[0].SeqFloor == 0 {
		t.Fatalf("record %+v missing evidence", recs[0])
	}
	if recs[0].Recovered.Before(recs[0].Detected) {
		t.Fatalf("record %+v recovered before detection", recs[0])
	}
	if sup.Active() == active {
		t.Fatal("supervisor still routes to the quarantined instance")
	}
	// Quarantine stopped the failed instance's scanner pool.
	if active.Memory().VerifierRunning() {
		t.Fatal("quarantined instance's verifier still running")
	}
	// The replacement keeps serving: a further workload burst stays clean
	// and strictly sequenced (the tracker would flag any repeat).
	for i := 0; i < 20; i++ {
		if _, err := c.Do(tr, `SELECT v FROM kv WHERE k = 3`,
			client.RetryConfig{Timeout: 5 * time.Second}); err != nil {
			t.Fatalf("post-failover query %d: %v", i, err)
		}
	}
	// The failed instance answers direct requests with its quarantine
	// error, still fenced.
	if err := active.QuarantineError(); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("failed instance reports %v", err)
	}
}

// TestSupervisorLeavesCleanInstanceAlone: no alarm, no failover.
func TestSupervisorLeavesCleanInstanceAlone(t *testing.T) {
	key := []byte("k")
	active := mkInstance(t, 111, key)
	replica := mkInstance(t, 222, key)
	seedKV(t, active, 8)
	seedKV(t, replica, 8)
	sup, err := NewSupervisor(SupervisorConfig{
		Active:  active,
		Replica: replica,
		Fresh:   func() (*DB, error) { return mkInstance(t, 333, key), nil },
		Poll:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	time.Sleep(20 * time.Millisecond)
	if got := sup.Failovers(); len(got) != 0 {
		t.Fatalf("clean instance failed over: %v", got)
	}
	if sup.Active() != active {
		t.Fatal("active instance changed without an alarm")
	}
}

// TestRecoverAbortsOnTamperedReplica: tampering with the replica
// mid-recovery (or before it) must abort the rebuild with the tamper
// alarm — a compromised source is never replayed into service.
func TestRecoverAbortsOnTamperedReplica(t *testing.T) {
	key := []byte("k")
	replica := mkInstance(t, 501, key)
	seedKV(t, replica, 32)
	// Corrupt one replica record out of band and touch it so the alarm
	// is pending evidence for the next verification pass.
	if err := tamperFirstRecord(replica); err != nil {
		t.Fatal(err)
	}
	fresh := mkInstance(t, 502, key)
	err := fresh.Recover(replica, 0)
	if err == nil {
		t.Fatal("recovery from tampered replica succeeded")
	}
	if !errors.Is(err, ErrQuarantined) && !errors.Is(err, vmem.ErrTamperDetected) {
		t.Fatalf("recovery failed with %v, want tamper evidence", err)
	}
}

// tamperFirstRecord silently corrupts one kv row through the raw tamper
// interface (bypassing the protected write path): the replacement image
// is a *valid* encoding of a different tuple, so the storage layer
// decodes it happily and only multiset verification can tell it from the
// written one. The touch afterwards folds the corrupt image into the read
// set, so Recover's final verification pass is guaranteed to alarm.
func tamperFirstRecord(db *DB) error {
	m := db.Memory()
	for _, pid := range m.PageIDs() {
		slot := -1
		var forged []byte
		_ = m.Slots(pid, func(s int, raw []byte) bool {
			r, err := record.Decode(raw)
			if err != nil || len(r.Data) != 2 || r.Data[1].S == "" {
				return true // not a kv row (catalog, index, ...)
			}
			evil := r.Clone()
			evil.Data[1] = record.Text("x" + evil.Data[1].S[1:])
			enc := record.Encode(evil)
			if len(enc) != len(raw) {
				return true
			}
			slot, forged = s, enc
			return false
		})
		if slot < 0 {
			continue
		}
		if err := m.TamperRecord(pid, slot, forged); err != nil {
			return err
		}
		_, _ = m.Get(pid, slot)
		return nil
	}
	return errors.New("no record to tamper")
}
