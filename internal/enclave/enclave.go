// Package enclave simulates the Intel SGX trusted execution environment
// that VeriDB relies on (paper §2.1, §3.1). No SGX hardware is assumed:
// the enclave is an in-process object whose private state is unexported and
// only reachable through ECall-shaped methods, so the trust boundary the
// paper draws (attested code + small sealed state inside; everything else
// outside) is enforced by the type system instead of by the CPU.
//
// What the simulation preserves from real SGX, because VeriDB's design and
// evaluation depend on it:
//
//   - A measured identity (MRENCLAVE analogue) and remote attestation: the
//     enclave holds an Ed25519 key whose public half is bound to the
//     measurement in a quote the client can verify.
//   - A limited EPC: the enclave accounts every byte of protected state and
//     refuses to exceed its budget, so "keep the whole database in EPC" is
//     as impractical here as on hardware (§1, §3.3).
//   - Expensive boundary crossings: ECalls/OCalls can charge a configurable
//     cycle cost (~8000 cycles reported by the paper §2.1), letting the
//     ablation benches measure the cost of not colocating the query engine
//     with the storage interface.
//   - Monotonic counters and sealed keys for the portal's rollback defence
//     and the RSWS PRF key.
package enclave

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"veridb/internal/sethash"
)

// DefaultEPCBytes is the usable enclave page cache budget. Real SGX v1
// reserves 128 MB with ~96 MB usable (§2.1, §3.3); the simulation defaults
// to the same figure.
const DefaultEPCBytes = 96 << 20

// DefaultECallCycles is the boundary-crossing cost reported by the paper
// (§2.1, citing HotCalls/Eleos: ~8000 cycles per ECall).
const DefaultECallCycles = 8000

// ErrEPCExhausted is returned when reserving protected memory would exceed
// the enclave's EPC budget.
var ErrEPCExhausted = errors.New("enclave: EPC budget exhausted")

// Config controls the simulated hardware.
type Config struct {
	// EPCBytes is the protected-memory budget. Zero means DefaultEPCBytes.
	EPCBytes int64
	// ECallCycles is the simulated cost of one boundary crossing in CPU
	// cycles. Zero disables crossing-cost simulation (the default for
	// correctness tests; benches opt in).
	ECallCycles int64
	// CPUGHz converts cycles to wall time when ECallCycles > 0. Zero means
	// 3.8 GHz, the paper's Xeon E3-1270 v6.
	CPUGHz float64
	// Measurement overrides the enclave identity hash input; empty uses a
	// fixed VeriDB identity string.
	Measurement string
}

// Enclave is a simulated SGX enclave instance. All fields are private: the
// only way to interact with enclave state is through its methods, which
// model ECalls.
type Enclave struct {
	measurement [32]byte
	signPriv    ed25519.PrivateKey
	signPub     ed25519.PublicKey

	epcBudget int64
	epcUsed   atomic.Int64

	ecallCycles int64
	cyclePeriod time.Duration // duration of one simulated cycle batch
	ecalls      atomic.Int64
	ocalls      atomic.Int64

	mu       sync.Mutex
	counters map[string]*atomic.Uint64
	prfKey   *sethash.Key
	macKeys  map[string][]byte // per-client pre-exchanged MAC keys (§5.1)
}

// New initialises an enclave, generating its attestation keypair and the
// sealed PRF key for the write-read consistent memory.
func New(cfg Config) (*Enclave, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("enclave: generating attestation key: %w", err)
	}
	prf, err := sethash.NewKey()
	if err != nil {
		return nil, err
	}
	m := cfg.Measurement
	if m == "" {
		m = "veridb-enclave-v1"
	}
	e := &Enclave{
		measurement: sha256.Sum256([]byte(m)),
		signPriv:    priv,
		signPub:     pub,
		epcBudget:   cfg.EPCBytes,
		ecallCycles: cfg.ECallCycles,
		counters:    make(map[string]*atomic.Uint64),
		prfKey:      prf,
		macKeys:     make(map[string][]byte),
	}
	if e.epcBudget == 0 {
		e.epcBudget = DefaultEPCBytes
	}
	ghz := cfg.CPUGHz
	if ghz == 0 {
		ghz = 3.8
	}
	e.cyclePeriod = time.Duration(float64(time.Second) / (ghz * 1e9) * float64(e.ecallCycles))
	return e, nil
}

// NewForTest builds a deterministic enclave for tests and benchmarks: the
// PRF key derives from seed so runs are reproducible.
func NewForTest(seed uint64) *Enclave {
	e, err := New(Config{})
	if err != nil {
		panic(err)
	}
	e.prfKey = sethash.KeyFromSeed(seed)
	return e
}

// Measurement returns the enclave identity hash (MRENCLAVE analogue).
func (e *Enclave) Measurement() [32]byte { return e.measurement }

// PRFKey exposes the sealed set-hash key to trusted in-enclave components
// (the vmem partitions). It never crosses the boundary in a real system;
// callers outside internal/ cannot reach it because the package is internal
// and the key type has no serialisation.
func (e *Enclave) PRFKey() *sethash.Key { return e.prfKey }

// ECall models entering the enclave: it charges the configured crossing
// cost and counts the call. Components on the hot path call it once per
// boundary crossing; colocated components (the VeriDB design, §3.3) avoid
// it entirely.
func (e *Enclave) ECall() {
	e.ecalls.Add(1)
	if e.ecallCycles > 0 {
		spin(e.cyclePeriod)
	}
}

// OCall models leaving the enclave to invoke untrusted code.
func (e *Enclave) OCall() {
	e.ocalls.Add(1)
	if e.ecallCycles > 0 {
		spin(e.cyclePeriod)
	}
}

// spin busy-waits for d. Sleeping is useless at sub-microsecond scale, and
// a real ECall burns cycles rather than yielding, so the simulation does too.
func spin(d time.Duration) {
	start := time.Now()
	for time.Since(start) < d {
	}
}

// Stats reports boundary-crossing counts and EPC usage.
type Stats struct {
	ECalls   int64
	OCalls   int64
	EPCUsed  int64
	EPCLimit int64
}

// Stats returns a snapshot of the enclave's resource counters.
func (e *Enclave) Stats() Stats {
	return Stats{
		ECalls:   e.ecalls.Load(),
		OCalls:   e.ocalls.Load(),
		EPCUsed:  e.epcUsed.Load(),
		EPCLimit: e.epcBudget,
	}
}

// ReserveEPC accounts n bytes of protected memory, failing if the budget
// would be exceeded. VeriDB keeps only RSWS accumulators, portal state and
// per-query operator state in EPC, so this should never trip in practice;
// the failure mode exists so tests can demonstrate why the database itself
// cannot live inside the enclave.
func (e *Enclave) ReserveEPC(n int64) error {
	if n < 0 {
		return fmt.Errorf("enclave: negative EPC reservation %d", n)
	}
	for {
		used := e.epcUsed.Load()
		if used+n > e.epcBudget {
			return fmt.Errorf("%w: used %d + requested %d > budget %d",
				ErrEPCExhausted, used, n, e.epcBudget)
		}
		if e.epcUsed.CompareAndSwap(used, used+n) {
			return nil
		}
	}
}

// ReleaseEPC returns n bytes to the budget.
func (e *Enclave) ReleaseEPC(n int64) {
	if n < 0 {
		return
	}
	e.epcUsed.Add(-n)
}

// MonotonicCounter returns the named strictly-increasing counter, creating
// it at zero. The portal uses one for query sequence numbers (§5.1).
func (e *Enclave) MonotonicCounter(name string) *atomic.Uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	c, ok := e.counters[name]
	if !ok {
		c = &atomic.Uint64{}
		e.counters[name] = c
	}
	return c
}

// ProvisionMACKey installs a pre-exchanged client MAC key (paper §5.1: "the
// client and its trusted query execution engine maintain a pre-exchanged
// key k"). In a deployment this would arrive over the attested channel.
func (e *Enclave) ProvisionMACKey(clientID string, key []byte) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.macKeys[clientID] = append([]byte(nil), key...)
}

// MACKey fetches a provisioned client key.
func (e *Enclave) MACKey(clientID string) ([]byte, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	k, ok := e.macKeys[clientID]
	return k, ok
}

// Quote is a simulated attestation quote: it binds the enclave measurement
// and attestation public key to a client-supplied nonce, signed by the
// enclave. Real SGX routes this through the quoting enclave and IAS/DCAP;
// the trust argument (verify signature, compare measurement) is the same.
type Quote struct {
	Measurement [32]byte
	PublicKey   ed25519.PublicKey
	Nonce       []byte
	Signature   []byte
}

// Attest produces a quote over the given freshness nonce.
func (e *Enclave) Attest(nonce []byte) Quote {
	body := quoteBody(e.measurement, e.signPub, nonce)
	return Quote{
		Measurement: e.measurement,
		PublicKey:   e.signPub,
		Nonce:       append([]byte(nil), nonce...),
		Signature:   ed25519.Sign(e.signPriv, body),
	}
}

// VerifyQuote checks a quote against an expected measurement and the nonce
// the verifier chose. It returns the attested public key on success, which
// the client then uses to check result endorsements.
func VerifyQuote(q Quote, expectedMeasurement [32]byte, nonce []byte) (ed25519.PublicKey, error) {
	if q.Measurement != expectedMeasurement {
		return nil, errors.New("enclave: attestation measurement mismatch")
	}
	if !hmac.Equal(q.Nonce, nonce) {
		return nil, errors.New("enclave: attestation nonce mismatch")
	}
	if !ed25519.Verify(q.PublicKey, quoteBody(q.Measurement, q.PublicKey, q.Nonce), q.Signature) {
		return nil, errors.New("enclave: attestation signature invalid")
	}
	return q.PublicKey, nil
}

func quoteBody(m [32]byte, pub ed25519.PublicKey, nonce []byte) []byte {
	b := make([]byte, 0, 32+len(pub)+len(nonce))
	b = append(b, m[:]...)
	b = append(b, pub...)
	b = append(b, nonce...)
	return b
}

// Endorse signs payload with the enclave's attestation key. The query
// engine endorses results on their way back to the client (Fig. 2 step 7).
func (e *Enclave) Endorse(payload []byte) []byte {
	return ed25519.Sign(e.signPriv, payload)
}

// VerifyEndorsement checks an endorsement against an attested public key.
func VerifyEndorsement(pub ed25519.PublicKey, payload, sig []byte) bool {
	return ed25519.Verify(pub, payload, sig)
}
