package enclave

import (
	"bytes"
	"sync"
	"testing"
)

func TestAttestationRoundTrip(t *testing.T) {
	e, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	nonce := []byte("client-nonce-1")
	q := e.Attest(nonce)
	pub, err := VerifyQuote(q, e.Measurement(), nonce)
	if err != nil {
		t.Fatalf("valid quote rejected: %v", err)
	}
	if !bytes.Equal(pub, q.PublicKey) {
		t.Fatal("returned public key differs from quote")
	}
}

func TestAttestationRejectsWrongMeasurement(t *testing.T) {
	e, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	q := e.Attest([]byte("n"))
	var other [32]byte
	other[0] = 0xFF
	if _, err := VerifyQuote(q, other, []byte("n")); err == nil {
		t.Fatal("quote with wrong measurement accepted")
	}
}

func TestAttestationRejectsStaleNonce(t *testing.T) {
	e, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	q := e.Attest([]byte("fresh"))
	if _, err := VerifyQuote(q, e.Measurement(), []byte("replayed")); err == nil {
		t.Fatal("quote with wrong nonce accepted")
	}
}

func TestAttestationRejectsForgedSignature(t *testing.T) {
	e, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	q := e.Attest([]byte("n"))
	q.Signature[0] ^= 0x01
	if _, err := VerifyQuote(q, e.Measurement(), []byte("n")); err == nil {
		t.Fatal("quote with corrupted signature accepted")
	}
}

func TestEndorsement(t *testing.T) {
	e, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	q := e.Attest([]byte("n"))
	pub, err := VerifyQuote(q, e.Measurement(), []byte("n"))
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("query result digest")
	sig := e.Endorse(payload)
	if !VerifyEndorsement(pub, payload, sig) {
		t.Fatal("valid endorsement rejected")
	}
	if VerifyEndorsement(pub, []byte("tampered"), sig) {
		t.Fatal("endorsement verified against different payload")
	}
}

func TestEPCBudget(t *testing.T) {
	e, err := New(Config{EPCBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ReserveEPC(512); err != nil {
		t.Fatalf("reserve within budget failed: %v", err)
	}
	if err := e.ReserveEPC(512); err != nil {
		t.Fatalf("reserve exactly to budget failed: %v", err)
	}
	if err := e.ReserveEPC(1); err == nil {
		t.Fatal("reserve beyond budget succeeded")
	}
	e.ReleaseEPC(512)
	if err := e.ReserveEPC(256); err != nil {
		t.Fatalf("reserve after release failed: %v", err)
	}
	if got := e.Stats().EPCUsed; got != 768 {
		t.Fatalf("EPCUsed = %d, want 768", got)
	}
}

func TestEPCRejectsNegative(t *testing.T) {
	e, _ := New(Config{EPCBytes: 1024})
	if err := e.ReserveEPC(-1); err == nil {
		t.Fatal("negative reservation accepted")
	}
}

func TestEPCConcurrentReservations(t *testing.T) {
	e, _ := New(Config{EPCBytes: 1000})
	var wg sync.WaitGroup
	granted := make(chan int64, 100)
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if e.ReserveEPC(25) == nil {
				granted <- 25
			}
		}()
	}
	wg.Wait()
	close(granted)
	var total int64
	for g := range granted {
		total += g
	}
	if total > 1000 {
		t.Fatalf("concurrent reservations oversubscribed EPC: granted %d of 1000", total)
	}
	if total != e.Stats().EPCUsed {
		t.Fatalf("accounting mismatch: granted %d, used %d", total, e.Stats().EPCUsed)
	}
}

func TestMonotonicCounter(t *testing.T) {
	e, _ := New(Config{})
	c := e.MonotonicCounter("seq")
	if c.Add(1) != 1 || c.Add(1) != 2 {
		t.Fatal("counter did not increase monotonically")
	}
	if e.MonotonicCounter("seq") != c {
		t.Fatal("counter identity not stable across lookups")
	}
	if e.MonotonicCounter("other").Load() != 0 {
		t.Fatal("distinct counter names share state")
	}
}

func TestECallAccounting(t *testing.T) {
	e, _ := New(Config{}) // zero cycle cost: crossings are counted, not slowed
	for i := 0; i < 5; i++ {
		e.ECall()
	}
	e.OCall()
	s := e.Stats()
	if s.ECalls != 5 || s.OCalls != 1 {
		t.Fatalf("stats = %+v, want 5 ecalls / 1 ocall", s)
	}
}

func TestMACKeyProvisioning(t *testing.T) {
	e, _ := New(Config{})
	if _, ok := e.MACKey("alice"); ok {
		t.Fatal("unprovisioned key reported present")
	}
	key := []byte{1, 2, 3}
	e.ProvisionMACKey("alice", key)
	key[0] = 99 // enclave must have taken a private copy
	got, ok := e.MACKey("alice")
	if !ok || !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("MACKey = %v, %v", got, ok)
	}
}

func TestNewForTestDeterministicPRF(t *testing.T) {
	a := NewForTest(42).PRFKey().PRF(1, []byte("x"))
	b := NewForTest(42).PRFKey().PRF(1, []byte("x"))
	if !a.Equal(&b) {
		t.Fatal("NewForTest PRF key not deterministic")
	}
}

func BenchmarkECallCrossing(b *testing.B) {
	e, _ := New(Config{ECallCycles: DefaultECallCycles})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ECall()
	}
}
