package engine

import (
	"fmt"

	"veridb/internal/record"
)

// AggFunc enumerates the supported aggregates.
type AggFunc int

const (
	// AggCount is COUNT(expr) or COUNT(*).
	AggCount AggFunc = iota
	// AggSum is SUM(expr).
	AggSum
	// AggAvg is AVG(expr).
	AggAvg
	// AggMin is MIN(expr).
	AggMin
	// AggMax is MAX(expr).
	AggMax
)

// AggFuncByName maps SQL names to functions.
func AggFuncByName(name string) (AggFunc, error) {
	switch name {
	case "COUNT":
		return AggCount, nil
	case "SUM":
		return AggSum, nil
	case "AVG":
		return AggAvg, nil
	case "MIN":
		return AggMin, nil
	case "MAX":
		return AggMax, nil
	default:
		return 0, fmt.Errorf("engine: unknown aggregate %q", name)
	}
}

// AggSpec is one aggregate output column.
type AggSpec struct {
	Func AggFunc
	Arg  *Compiled // nil for COUNT(*)
	Name string    // output column name
}

// resultType of the aggregate column.
func (a AggSpec) resultType() record.Type {
	switch a.Func {
	case AggCount:
		return record.TypeInt
	case AggAvg:
		return record.TypeFloat
	default:
		if a.Arg != nil {
			return a.Arg.Type()
		}
		return record.TypeInt
	}
}

// aggState accumulates one aggregate within one group.
type aggState struct {
	count   int64
	sumI    int64
	sumF    float64
	isFloat bool
	min     record.Value
	max     record.Value
	started bool
}

func (st *aggState) add(spec AggSpec, v record.Value) error {
	if v.Null {
		return nil // SQL semantics: aggregates skip NULLs
	}
	st.count++
	switch spec.Func {
	case AggCount:
		return nil
	case AggSum, AggAvg:
		switch v.Type {
		case record.TypeInt:
			st.sumI += v.I
			st.sumF += float64(v.I)
		case record.TypeFloat:
			st.isFloat = true
			st.sumF += v.F
		default:
			return fmt.Errorf("engine: SUM/AVG over %s", v.Type)
		}
	case AggMin, AggMax:
		if !st.started {
			st.min, st.max, st.started = v, v, true
			return nil
		}
		if c, err := v.Compare(st.min); err != nil {
			return err
		} else if c < 0 {
			st.min = v
		}
		if c, err := v.Compare(st.max); err != nil {
			return err
		} else if c > 0 {
			st.max = v
		}
	}
	return nil
}

func (st *aggState) result(spec AggSpec) record.Value {
	switch spec.Func {
	case AggCount:
		return record.Int(st.count)
	case AggSum:
		if st.count == 0 {
			return record.Null(spec.resultType())
		}
		if spec.resultType() == record.TypeFloat || st.isFloat {
			return record.Float(st.sumF)
		}
		return record.Int(st.sumI)
	case AggAvg:
		if st.count == 0 {
			return record.Null(record.TypeFloat)
		}
		return record.Float(st.sumF / float64(st.count))
	case AggMin:
		if !st.started {
			return record.Null(spec.resultType())
		}
		return st.min
	case AggMax:
		if !st.started {
			return record.Null(spec.resultType())
		}
		return st.max
	}
	return record.Null(record.TypeInt)
}

// HashAggregate groups the child by GroupBy expressions and computes the
// aggregate columns. Output schema: group columns first (named by their
// source expressions), then aggregate columns. With no GroupBy it emits
// exactly one row (global aggregation), even over empty input.
type HashAggregate struct {
	Child   Operator
	GroupBy []*Compiled
	Names   []string // names for the group columns
	Aggs    []AggSpec

	batch int   // execution mode; see SetBatchSize
	exec  *Exec // statement controls; see SetExec
	out   []record.Tuple
	pos   int
}

// Schema exposes group columns then aggregate columns.
func (h *HashAggregate) Schema() Schema {
	out := make(Schema, 0, len(h.GroupBy)+len(h.Aggs))
	for i, g := range h.GroupBy {
		out = append(out, Col{Name: h.Names[i], Type: g.Type()})
	}
	for _, a := range h.Aggs {
		out = append(out, Col{Name: a.Name, Type: a.resultType()})
	}
	return out
}

// Open drains the child and aggregates.
func (h *HashAggregate) Open() error {
	h.out, h.pos = nil, 0
	type group struct {
		keyVals []record.Value
		states  []aggState
	}
	groups := map[string]*group{}
	var order []string // deterministic output order: first appearance

	if err := h.Child.Open(); err != nil {
		return err
	}
	defer h.Child.Close()
	// Accumulation is inherently per-row; the cursor keeps the child's
	// subtree vectorized underneath when the aggregate runs batched.
	cur := newBatchCursor(h.Child, h.batch)
	for row := 0; ; row++ {
		if row%ctxCheckStride == 0 {
			if err := h.exec.Err(); err != nil {
				return err
			}
		}
		t, ok, err := cur.next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		keyVals := make([]record.Value, len(h.GroupBy))
		for i, g := range h.GroupBy {
			if keyVals[i], err = g.Eval(t); err != nil {
				return err
			}
		}
		gk := groupKey(keyVals)
		gr, ok := groups[gk]
		if !ok {
			gr = &group{keyVals: keyVals, states: make([]aggState, len(h.Aggs))}
			groups[gk] = gr
			order = append(order, gk)
		}
		for i, spec := range h.Aggs {
			v := record.Int(1) // COUNT(*) counts rows
			if spec.Arg != nil {
				if v, err = spec.Arg.Eval(t); err != nil {
					return err
				}
			}
			if err := gr.states[i].add(spec, v); err != nil {
				return err
			}
		}
	}
	if len(groups) == 0 && len(h.GroupBy) == 0 {
		// Global aggregation over empty input: one row of empty states.
		gr := &group{states: make([]aggState, len(h.Aggs))}
		groups[""] = gr
		order = append(order, "")
	}
	for _, gk := range order {
		gr := groups[gk]
		row := make(record.Tuple, 0, len(h.GroupBy)+len(h.Aggs))
		row = append(row, gr.keyVals...)
		for i, spec := range h.Aggs {
			row = append(row, gr.states[i].result(spec))
		}
		h.out = append(h.out, row)
	}
	// The grouped output lives until the statement drains it; the input
	// rows were consumed streaming, so the output buffer is this
	// operator's materialisation footprint.
	return h.exec.ChargeTuples(h.out)
}

// Next emits the next group row.
func (h *HashAggregate) Next() (record.Tuple, bool, error) {
	if h.pos >= len(h.out) {
		return nil, false, nil
	}
	t := h.out[h.pos]
	h.pos++
	return t, true, nil
}

// NextBatch emits the next run of group rows.
func (h *HashAggregate) NextBatch(dst *RowBatch) (int, error) {
	return emitRows(h.out, &h.pos, dst)
}

// Close releases the grouped rows.
func (h *HashAggregate) Close() error {
	h.out = nil
	return nil
}
