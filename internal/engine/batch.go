package engine

import (
	"veridb/internal/record"
	"veridb/internal/storage"
)

// RowBatch is the unit of data flow for the vectorized execution path: a
// reusable, capacity-bounded batch of rows plus an optional selection
// vector. It is the same type the storage iterators fill, so a batch can
// travel from the verified scan leaf to the portal without reshaping.
type RowBatch = storage.RowBatch

// NewRowBatch allocates a batch with the given capacity.
func NewRowBatch(capacity int) *RowBatch { return storage.NewRowBatch(capacity) }

// BatchOperator is the vectorized half of the executor: every engine
// operator implements it alongside the scalar Operator interface.
// NextBatch fills dst with up to cap(dst.Rows) output rows and returns the
// number of live rows; (0, nil) means the operator is exhausted. Filters
// mark rows dead through dst.Sel instead of compacting, so consumers must
// read rows through dst.Row(i) / dst.Live().
//
// Batched and scalar execution of the same tree produce identical rows in
// identical order — batching amortises the per-row interface-call chain
// (and lets filters share row memory via selection vectors) but never
// reorders, merges or drops work. The batched-vs-scalar oracle property
// tests pin this, down to the portal's MACed response digests.
type BatchOperator interface {
	Operator
	NextBatch(dst *RowBatch) (int, error)
}

// AsBatch returns the operator's vectorized form: the operator itself when
// it is batch-native (every engine operator is), or a fallback adapter
// that fills batches through Next for foreign Operator implementations.
func AsBatch(op Operator) BatchOperator {
	if b, ok := op.(BatchOperator); ok {
		return b
	}
	return &scalarBatch{op}
}

// scalarBatch adapts a row-at-a-time Operator to BatchOperator.
type scalarBatch struct{ op Operator }

func (s *scalarBatch) Schema() Schema { return s.op.Schema() }
func (s *scalarBatch) Open() error    { return s.op.Open() }
func (s *scalarBatch) Close() error   { return s.op.Close() }
func (s *scalarBatch) Next() (record.Tuple, bool, error) {
	return s.op.Next()
}
func (s *scalarBatch) NextBatch(dst *RowBatch) (int, error) {
	return storage.FillBatch(s.op.Next, dst)
}

// SetBatchSize walks the operator tree and fixes every operator's
// execution mode before Open: n > 1 makes pipeline-breaking operators
// (sort, materialise, aggregate build, join build sides) drain their
// children batch-wise and makes streaming operators pull through batch
// cursors; n <= 1 is the exact legacy tuple-at-a-time path. The mode must
// be set before Open because pipeline breakers consume their children
// inside Open.
func SetBatchSize(op Operator, n int) {
	switch x := op.(type) {
	case *TableScan, *Values:
		// Leaves: batch size arrives through the dst capacity.
	case *Filter:
		SetBatchSize(x.Child, n)
	case *Project:
		SetBatchSize(x.Child, n)
	case *Limit:
		SetBatchSize(x.Child, n)
	case *Sort:
		x.batch = n
		SetBatchSize(x.Child, n)
	case *Materialize:
		x.batch = n
		SetBatchSize(x.Child, n)
	case *HashAggregate:
		x.batch = n
		SetBatchSize(x.Child, n)
	case *NestedLoopJoin:
		x.batch = n
		SetBatchSize(x.Outer, n)
		SetBatchSize(x.Inner, n)
	case *IndexJoin:
		x.batch = n
		SetBatchSize(x.Outer, n)
	case *MergeJoin:
		x.batch = n
		SetBatchSize(x.Left, n)
		SetBatchSize(x.Right, n)
	case *HashJoin:
		x.batch = n
		SetBatchSize(x.Left, n)
		SetBatchSize(x.Right, n)
	case *Spool:
		x.batch = n
		SetBatchSize(x.Child, n)
	}
}

// ResetPlan walks a compiled operator tree and clears every piece of
// cross-execution state, so a cached plan re-executes as if freshly
// built. Most operators already reset fully in Open; the exceptions are
// the buffering operators whose Open is deliberately fill-once within a
// query (Materialize's row buffer, Spool's temp table) — reuse across
// queries must clear them or the second execution serves the first
// execution's rows.
func ResetPlan(op Operator) {
	switch x := op.(type) {
	case *TableScan, *Values:
	case *Filter:
		ResetPlan(x.Child)
	case *Project:
		ResetPlan(x.Child)
	case *Limit:
		ResetPlan(x.Child)
	case *Sort:
		ResetPlan(x.Child)
	case *Materialize:
		x.rows, x.filled, x.pos = nil, false, 0
		ResetPlan(x.Child)
	case *HashAggregate:
		ResetPlan(x.Child)
	case *NestedLoopJoin:
		ResetPlan(x.Outer)
		ResetPlan(x.Inner)
	case *IndexJoin:
		ResetPlan(x.Outer)
	case *MergeJoin:
		ResetPlan(x.Left)
		ResetPlan(x.Right)
	case *HashJoin:
		ResetPlan(x.Left)
		ResetPlan(x.Right)
	case *Spool:
		_ = x.Drop() // releases the temp table; next Open refills
		ResetPlan(x.Child)
	}
}

// DrainBatches runs a batch operator to completion with the given batch
// size and returns all rows, in the same order the scalar Drain would.
func DrainBatches(b BatchOperator, size int) ([]record.Tuple, error) {
	if err := b.Open(); err != nil {
		return nil, err
	}
	defer b.Close()
	batch := NewRowBatch(size)
	var out []record.Tuple
	for {
		n, err := b.NextBatch(batch)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
		for i := 0; i < n; i++ {
			out = append(out, batch.Row(i))
		}
	}
}

// drainChild drains a pipeline breaker's input in the operator's execution
// mode: batch-wise when batch > 1, through the scalar path otherwise. Row
// order is identical either way. The statement controls (ex may be nil)
// bound the drain: cancellation is checked at batch boundaries and the
// materialised rows are charged to the statement's memory reservation.
func drainChild(child Operator, batch int, ex *Exec) ([]record.Tuple, error) {
	if batch > 1 {
		return DrainBatchesExec(AsBatch(child), batch, ex)
	}
	return DrainExec(child, ex)
}

// batchCursor adapts a child to row-at-a-time consumption while pulling
// batch-wise underneath: operators whose logic is inherently per-row
// (merge-join advance, nested-loop outer, aggregate accumulation) read
// through a cursor so the child's whole subtree still executes vectorized.
// With batch <= 1 the cursor is a transparent pass-through to child.Next —
// the exact legacy path.
type batchCursor struct {
	child Operator
	bop   BatchOperator // nil: scalar pass-through
	buf   *RowBatch
	pos   int
}

func newBatchCursor(child Operator, batch int) *batchCursor {
	c := &batchCursor{child: child}
	if batch > 1 {
		c.bop = AsBatch(child)
		c.buf = NewRowBatch(batch)
	}
	return c
}

// reset rewinds the cursor after the child was re-opened.
func (c *batchCursor) reset() {
	if c.buf != nil {
		c.buf.Reset()
	}
	c.pos = 0
}

func (c *batchCursor) next() (record.Tuple, bool, error) {
	if c.bop == nil {
		return c.child.Next()
	}
	if c.pos < c.buf.Live() {
		t := c.buf.Row(c.pos)
		c.pos++
		return t, true, nil
	}
	n, err := c.bop.NextBatch(c.buf)
	if err != nil {
		return nil, false, err
	}
	if n == 0 {
		return nil, false, nil
	}
	c.pos = 1
	return c.buf.Row(0), true, nil
}

// Every engine operator is batch-native.
var (
	_ BatchOperator = (*TableScan)(nil)
	_ BatchOperator = (*Filter)(nil)
	_ BatchOperator = (*Project)(nil)
	_ BatchOperator = (*Limit)(nil)
	_ BatchOperator = (*Sort)(nil)
	_ BatchOperator = (*Materialize)(nil)
	_ BatchOperator = (*Values)(nil)
	_ BatchOperator = (*HashAggregate)(nil)
	_ BatchOperator = (*NestedLoopJoin)(nil)
	_ BatchOperator = (*IndexJoin)(nil)
	_ BatchOperator = (*MergeJoin)(nil)
	_ BatchOperator = (*HashJoin)(nil)
	_ BatchOperator = (*Spool)(nil)
	_ BatchOperator = (*scalarBatch)(nil)
)

// emitRows copies the next chunk of a materialised row buffer into dst —
// the shared NextBatch body for operators that buffer their output (Sort,
// Materialize, HashAggregate, Values).
func emitRows(rows []record.Tuple, pos *int, dst *RowBatch) (int, error) {
	dst.Reset()
	for *pos < len(rows) && dst.N < len(dst.Rows) {
		dst.Rows[dst.N] = rows[*pos]
		dst.N++
		*pos++
	}
	return dst.N, nil
}
