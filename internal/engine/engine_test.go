package engine

import (
	"fmt"
	"strings"
	"testing"

	"veridb/internal/enclave"
	"veridb/internal/record"
	"veridb/internal/sql"
	"veridb/internal/storage"
	"veridb/internal/vmem"
)

func compileStr(t *testing.T, src string, s Schema) *Compiled {
	t.Helper()
	st, err := sql.Parse("SELECT * FROM t WHERE " + src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	c, err := Compile(st.(*sql.Select).Where, s)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return c
}

func compileValue(t *testing.T, src string, s Schema) *Compiled {
	t.Helper()
	st, err := sql.Parse("SELECT " + src + " FROM t")
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	c, err := Compile(st.(*sql.Select).Items[0].Expr, s)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return c
}

var testSchema = Schema{
	{Table: "t", Name: "a", Type: record.TypeInt},
	{Table: "t", Name: "b", Type: record.TypeFloat},
	{Table: "t", Name: "s", Type: record.TypeText},
	{Table: "t", Name: "f", Type: record.TypeBool},
}

func row(a int64, b float64, s string, f bool) record.Tuple {
	return record.Tuple{record.Int(a), record.Float(b), record.Text(s), record.Bool(f)}
}

func TestCompileArithmeticAndComparison(t *testing.T) {
	r := row(6, 2.5, "x", true)
	cases := map[string]record.Value{
		"a + 1":                 record.Int(7),
		"a - 10":                record.Int(-4),
		"a * a":                 record.Int(36),
		"a / 4":                 record.Int(1), // integer division
		"a % 4":                 record.Int(2),
		"a + b":                 record.Float(8.5),
		"b * 2":                 record.Float(5.0),
		"a / 4.0":               record.Float(1.5),
		"-a":                    record.Int(-6),
		"a = 6":                 record.Bool(true),
		"a <> 6":                record.Bool(false),
		"a < b":                 record.Bool(false),
		"b <= 2.5":              record.Bool(true),
		"s = 'x'":               record.Bool(true),
		"f = TRUE":              record.Bool(true),
		"NOT f":                 record.Bool(false),
		"a > 5 AND f":           record.Bool(true),
		"a > 9 OR f":            record.Bool(true),
		"a BETWEEN 6 AND 7":     record.Bool(true),
		"a NOT BETWEEN 6 AND 7": record.Bool(false),
		"s IN ('y', 'x')":       record.Bool(true),
		"s NOT IN ('y')":        record.Bool(true),
		"s IS NULL":             record.Bool(false),
		"s IS NOT NULL":         record.Bool(true),
	}
	for src, want := range cases {
		c := compileValue(t, src, testSchema)
		got, err := c.Eval(r)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if !got.Equal(want) {
			t.Fatalf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{"zzz = 1", "q.a = 1", "s + 1 = 2", "NOT a", "a AND f", "SUM(a) > 1"}
	for _, src := range bad {
		st, err := sql.Parse("SELECT * FROM t WHERE " + src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		c, err := Compile(st.(*sql.Select).Where, testSchema)
		if err != nil {
			continue // compile-time rejection is fine
		}
		if _, err := c.Eval(row(1, 1, "x", true)); err == nil {
			t.Fatalf("%q evaluated without error", src)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	for _, src := range []string{"a / 0", "a % 0", "b / 0.0"} {
		c := compileValue(t, src, testSchema)
		if _, err := c.Eval(row(1, 1, "x", true)); err == nil {
			t.Fatalf("%q did not error", src)
		}
	}
}

func TestNullPropagation(t *testing.T) {
	s := Schema{{Table: "t", Name: "a", Type: record.TypeInt}}
	r := record.Tuple{record.Null(record.TypeInt)}
	c := compileValue(t, "a + 1", s)
	v, err := c.Eval(r)
	if err != nil || !v.Null {
		t.Fatalf("NULL+1 = %v, %v", v, err)
	}
	c = compileStr(t, "a = 1", s)
	pass, err := c.EvalBool(r)
	if err != nil || pass {
		t.Fatalf("NULL=1 passed filter: %v %v", pass, err)
	}
	c = compileStr(t, "a IS NULL", s)
	if pass, _ := c.EvalBool(r); !pass {
		t.Fatal("IS NULL false for null")
	}
}

func TestResolveAmbiguity(t *testing.T) {
	s := Schema{
		{Table: "x", Name: "id", Type: record.TypeInt},
		{Table: "y", Name: "id", Type: record.TypeInt},
	}
	if _, err := s.Resolve("", "id"); err == nil {
		t.Fatal("ambiguous reference accepted")
	}
	if i, err := s.Resolve("y", "id"); err != nil || i != 1 {
		t.Fatalf("qualified resolve: %d, %v", i, err)
	}
}

func valuesOp(rows ...record.Tuple) *Values {
	return &Values{Cols: testSchema, Rows: rows}
}

func TestFilterProjectLimit(t *testing.T) {
	src := valuesOp(
		row(1, 1.0, "a", true),
		row(2, 2.0, "b", false),
		row(3, 3.0, "c", true),
		row(4, 4.0, "d", true),
	)
	f := &Filter{Child: src, Pred: compileStr(t, "f AND a > 1", testSchema)}
	pr := &Project{
		Child: f,
		Exprs: []*Compiled{compileValue(t, "a * 10", testSchema), compileValue(t, "s", testSchema)},
		Names: []string{"a10", "s"},
	}
	lim := &Limit{Child: pr, N: 1}
	rows, err := Drain(lim)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].I != 30 || rows[0][1].S != "c" {
		t.Fatalf("rows = %v", rows)
	}
	if got := pr.Schema(); got[0].Name != "a10" || got[0].Type != record.TypeInt {
		t.Fatalf("schema %v", got)
	}
}

func TestSortAscDescStable(t *testing.T) {
	src := valuesOp(
		row(2, 9.0, "x", true),
		row(1, 5.0, "y", true),
		row(2, 1.0, "z", true),
		row(1, 7.0, "w", true),
	)
	s := &Sort{Child: src, Keys: []SortKey{
		{Expr: compileValue(t, "a", testSchema)},
		{Expr: compileValue(t, "b", testSchema), Desc: true},
	}}
	rows, err := Drain(s)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, r := range rows {
		got = append(got, fmt.Sprintf("%d/%g", r[0].I, r[1].F))
	}
	if strings.Join(got, " ") != "1/7 1/5 2/9 2/1" {
		t.Fatalf("sorted %v", got)
	}
}

func TestHashAggregateGrouped(t *testing.T) {
	src := valuesOp(
		row(1, 10.0, "g1", true),
		row(2, 20.0, "g1", true),
		row(3, 30.0, "g2", true),
		row(4, 0.0, "g2", true),
		row(5, 5.0, "g2", true),
	)
	agg := &HashAggregate{
		Child:   src,
		GroupBy: []*Compiled{compileValue(t, "s", testSchema)},
		Names:   []string{"s"},
		Aggs: []AggSpec{
			{Func: AggCount, Name: "cnt"},
			{Func: AggSum, Arg: compileValue(t, "b", testSchema), Name: "total"},
			{Func: AggAvg, Arg: compileValue(t, "b", testSchema), Name: "avg"},
			{Func: AggMin, Arg: compileValue(t, "a", testSchema), Name: "lo"},
			{Func: AggMax, Arg: compileValue(t, "a", testSchema), Name: "hi"},
		},
	}
	rows, err := Drain(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("groups %d", len(rows))
	}
	byName := map[string]record.Tuple{}
	for _, r := range rows {
		byName[r[0].S] = r
	}
	g1 := byName["g1"]
	if g1[1].I != 2 || g1[2].F != 30 || g1[3].F != 15 || g1[4].I != 1 || g1[5].I != 2 {
		t.Fatalf("g1 = %v", g1)
	}
	g2 := byName["g2"]
	if g2[1].I != 3 || g2[2].F != 35 || g2[4].I != 3 || g2[5].I != 5 {
		t.Fatalf("g2 = %v", g2)
	}
}

func TestGlobalAggregateOverEmptyInput(t *testing.T) {
	agg := &HashAggregate{
		Child: valuesOp(),
		Aggs: []AggSpec{
			{Func: AggCount, Name: "cnt"},
			{Func: AggSum, Arg: compileValue(t, "a", testSchema), Name: "sum"},
			{Func: AggMin, Arg: compileValue(t, "a", testSchema), Name: "min"},
		},
	}
	rows, err := Drain(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows %d", len(rows))
	}
	if rows[0][0].I != 0 || !rows[0][1].Null || !rows[0][2].Null {
		t.Fatalf("empty aggregate = %v", rows[0])
	}
}

func TestAggregatesSkipNulls(t *testing.T) {
	src := &Values{Cols: Schema{{Name: "a", Type: record.TypeInt}}, Rows: []record.Tuple{
		{record.Int(10)}, {record.Null(record.TypeInt)}, {record.Int(20)},
	}}
	aCol := Schema{{Name: "a", Type: record.TypeInt}}
	agg := &HashAggregate{
		Child: src,
		Aggs: []AggSpec{
			{Func: AggCount, Arg: compileValue(t, "a", aCol), Name: "cnt"},
			{Func: AggCount, Name: "cntStar"},
			{Func: AggAvg, Arg: compileValue(t, "a", aCol), Name: "avg"},
		},
	}
	rows, err := Drain(agg)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].I != 2 || rows[0][1].I != 3 || rows[0][2].F != 15 {
		t.Fatalf("%v", rows[0])
	}
}

// join test fixtures: the paper's quote/inventory tables (Fig. 8).
func quoteInventory(t *testing.T) (*storage.Table, *storage.Table, *storage.Store) {
	t.Helper()
	mem, err := vmem.New(enclave.NewForTest(123), vmem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	st := storage.NewStore(mem)
	quote, err := st.CreateTable(storage.TableSpec{
		Name: "quote",
		Schema: record.NewSchema(
			record.Column{Name: "id", Type: record.TypeInt},
			record.Column{Name: "count", Type: record.TypeInt},
			record.Column{Name: "price", Type: record.TypeFloat},
		),
		PrimaryKey: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	inv, err := st.CreateTable(storage.TableSpec{
		Name: "inventory",
		Schema: record.NewSchema(
			record.Column{Name: "id", Type: record.TypeInt},
			record.Column{Name: "count", Type: record.TypeInt},
			record.Column{Name: "desc", Type: record.TypeText},
		),
		PrimaryKey: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 8 contents (ids as integers 1..6).
	for _, r := range [][3]int64{{1, 100, 100}, {2, 100, 200}, {3, 500, 100}, {4, 600, 100}} {
		if err := quote.Insert(record.Tuple{record.Int(r[0]), record.Int(r[1]), record.Float(float64(r[2]))}); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range [][2]int64{{1, 50}, {3, 200}, {4, 100}, {6, 100}} {
		if err := inv.Insert(record.Tuple{record.Int(r[0]), record.Int(r[1]), record.Text(fmt.Sprintf("desc%d", r[0]))}); err != nil {
			t.Fatal(err)
		}
	}
	return quote, inv, st
}

// paperJoinResult is the §5.4 expected output: quotes whose count exceeds
// the inventory balance: (1,100,50) and (3,500,200) and (4,600,100).
func checkPaperJoin(t *testing.T, rows []record.Tuple) {
	t.Helper()
	if len(rows) != 3 {
		t.Fatalf("join rows = %d (%v), want 3", len(rows), rows)
	}
	want := map[int64][2]int64{1: {100, 50}, 3: {500, 200}, 4: {600, 100}}
	for _, r := range rows {
		w, ok := want[r[0].I]
		if !ok || r[1].I != w[0] || r[2].I != w[1] {
			t.Fatalf("unexpected join row %v", r)
		}
	}
}

func TestIndexJoinPaperExample(t *testing.T) {
	quote, inv, st := quoteInventory(t)
	outer := NewTableScan(quote, "q")
	j := &IndexJoin{
		Outer:      outer,
		InnerTable: inv,
		InnerAlias: "i",
		InnerCol:   0,
		OuterKey:   compileValue(t, "q.id", outer.Schema()),
	}
	j.Residual = compileStr(t, "q.count > i.count", j.Schema())
	pr := projectCols(t, j, "q.id", "q.count", "i.count")
	rows, err := Drain(pr)
	if err != nil {
		t.Fatal(err)
	}
	checkPaperJoin(t, rows)
	if err := st.Memory().VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func projectCols(t *testing.T, child Operator, cols ...string) *Project {
	t.Helper()
	exprs := make([]*Compiled, len(cols))
	names := make([]string, len(cols))
	for i, c := range cols {
		st, err := sql.Parse("SELECT " + c + " FROM t")
		if err != nil {
			t.Fatal(err)
		}
		e, err := Compile(st.(*sql.Select).Items[0].Expr, child.Schema())
		if err != nil {
			t.Fatal(err)
		}
		exprs[i] = e
		names[i] = c
	}
	return &Project{Child: child, Exprs: exprs, Names: names}
}

func TestNestedLoopJoinPaperExample(t *testing.T) {
	quote, inv, _ := quoteInventory(t)
	j := &NestedLoopJoin{
		Outer: NewTableScan(quote, "q"),
		Inner: NewTableScan(inv, "i"),
	}
	j.On = compileStr(t, "q.id = i.id AND q.count > i.count", j.Schema())
	rows, err := Drain(projectCols(t, j, "q.id", "q.count", "i.count"))
	if err != nil {
		t.Fatal(err)
	}
	checkPaperJoin(t, rows)
}

func TestMergeJoinPaperExample(t *testing.T) {
	quote, inv, _ := quoteInventory(t)
	l := NewTableScan(quote, "q") // chain scans emit in pk order: presorted
	r := NewTableScan(inv, "i")
	j := &MergeJoin{
		Left:     l,
		Right:    r,
		LeftKey:  compileValue(t, "q.id", l.Schema()),
		RightKey: compileValue(t, "i.id", r.Schema()),
	}
	j.Residual = compileStr(t, "q.count > i.count", j.Schema())
	rows, err := Drain(projectCols(t, j, "q.id", "q.count", "i.count"))
	if err != nil {
		t.Fatal(err)
	}
	checkPaperJoin(t, rows)
}

func TestHashJoinPaperExample(t *testing.T) {
	quote, inv, _ := quoteInventory(t)
	l := NewTableScan(quote, "q")
	r := NewTableScan(inv, "i")
	j := &HashJoin{
		Left:     l,
		Right:    r,
		LeftKey:  compileValue(t, "q.id", l.Schema()),
		RightKey: compileValue(t, "i.id", r.Schema()),
	}
	j.Residual = compileStr(t, "q.count > i.count", j.Schema())
	rows, err := Drain(projectCols(t, j, "q.id", "q.count", "i.count"))
	if err != nil {
		t.Fatal(err)
	}
	checkPaperJoin(t, rows)
}

func TestMergeJoinDuplicateKeys(t *testing.T) {
	ls := Schema{{Table: "l", Name: "k", Type: record.TypeInt}, {Table: "l", Name: "v", Type: record.TypeText}}
	rs := Schema{{Table: "r", Name: "k", Type: record.TypeInt}, {Table: "r", Name: "w", Type: record.TypeText}}
	mk := func(k int64, s string) record.Tuple { return record.Tuple{record.Int(k), record.Text(s)} }
	left := &Values{Cols: ls, Rows: []record.Tuple{mk(1, "a"), mk(2, "b1"), mk(2, "b2"), mk(3, "c")}}
	right := &Values{Cols: rs, Rows: []record.Tuple{mk(2, "x"), mk(2, "y"), mk(4, "z")}}
	j := &MergeJoin{
		Left: left, Right: right,
		LeftKey:  compileValue(t, "l.k", ls),
		RightKey: compileValue(t, "r.k", rs),
	}
	rows, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // (b1,x)(b1,y)(b2,x)(b2,y)
		t.Fatalf("rows = %d: %v", len(rows), rows)
	}
}

func TestRangeScanOperator(t *testing.T) {
	quote, _, _ := quoteInventory(t)
	lo, hi := record.Int(2), record.Int(3)
	scan := NewRangeScan(quote, "q", 0, &lo, &hi)
	rows, err := Drain(scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0].I != 2 || rows[1][0].I != 3 {
		t.Fatalf("range rows %v", rows)
	}
	if scan.Visited() < 2 {
		t.Fatalf("Visited = %d", scan.Visited())
	}
}

func TestOperatorReopen(t *testing.T) {
	quote, _, _ := quoteInventory(t)
	scan := NewTableScan(quote, "q")
	r1, err := Drain(scan)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Drain(scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) || len(r1) != 4 {
		t.Fatalf("reopen changed results: %d vs %d", len(r1), len(r2))
	}
}
