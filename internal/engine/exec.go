package engine

import (
	"context"

	"veridb/internal/govern"
	"veridb/internal/record"
)

// Exec carries the per-statement execution controls: the caller's context
// for cooperative cancellation and a govern.Reservation charged for every
// materialisation the statement performs (sort buffers, hash-join build
// sides, aggregate output, spooled rows, drained results). Operators check
// the context at batch boundaries — between batches on the vectorized
// path, every ctxCheckStride rows on the scalar path — so a cancelled or
// timed-out statement unwinds through the normal error path and the
// existing Close/defer chains release scans, latches, snapshot pins and
// merge producers.
//
// A nil *Exec disables both controls; every method is nil-safe, so legacy
// call sites need no guards.
type Exec struct {
	ctx context.Context
	res *govern.Reservation
}

// ctxCheckStride is how many scalar rows flow between context checks. The
// vectorized path checks once per batch instead.
const ctxCheckStride = 64

// NewExec builds the statement controls. ctx may be nil (treated as
// background); res may be nil (no memory accounting).
func NewExec(ctx context.Context, res *govern.Reservation) *Exec {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Exec{ctx: ctx, res: res}
}

// Err reports the statement's cancellation state: the context error once
// the deadline passed or the caller cancelled, nil otherwise.
func (e *Exec) Err() error {
	if e == nil || e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}

// ChargeTuples reserves budget for rows the statement just materialised,
// failing with govern.ErrResourceExhausted when the process budget cannot
// cover them.
func (e *Exec) ChargeTuples(rows []record.Tuple) error {
	if e == nil || e.res == nil || len(rows) == 0 {
		return nil
	}
	var n int64
	for _, t := range rows {
		n += record.TupleBytes(t)
	}
	return e.res.Grow(n)
}

// ChargeBytes reserves n estimated bytes for the statement.
func (e *Exec) ChargeBytes(n int64) error {
	if e == nil || e.res == nil {
		return nil
	}
	return e.res.Grow(n)
}

// SetExec walks an operator tree and attaches the statement controls to
// every operator that reads storage or materialises state. nil detaches
// them (the plan cache re-targets cached trees per execution). Call before
// Open, like SetBatchSize and SetSnapshot.
func SetExec(op Operator, ex *Exec) {
	switch x := op.(type) {
	case *TableScan:
		x.exec = ex
	case *Values:
	case *Filter:
		SetExec(x.Child, ex)
	case *Project:
		SetExec(x.Child, ex)
	case *Limit:
		SetExec(x.Child, ex)
	case *Sort:
		x.exec = ex
		SetExec(x.Child, ex)
	case *Materialize:
		x.exec = ex
		SetExec(x.Child, ex)
	case *HashAggregate:
		x.exec = ex
		SetExec(x.Child, ex)
	case *NestedLoopJoin:
		SetExec(x.Outer, ex)
		SetExec(x.Inner, ex)
	case *IndexJoin:
		SetExec(x.Outer, ex)
	case *MergeJoin:
		SetExec(x.Left, ex)
		SetExec(x.Right, ex)
	case *HashJoin:
		x.exec = ex
		SetExec(x.Left, ex)
		SetExec(x.Right, ex)
	case *Spool:
		x.exec = ex
		SetExec(x.Child, ex)
	}
}

// DrainExec runs an operator to completion under the statement controls:
// the context is checked every ctxCheckStride rows and the drained rows
// are charged to the reservation as they accumulate.
func DrainExec(op Operator, ex *Exec) ([]record.Tuple, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []record.Tuple
	var pending int64
	for {
		t, ok, err := op.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			if err := ex.ChargeBytes(pending); err != nil {
				return nil, err
			}
			return out, nil
		}
		out = append(out, t)
		pending += record.TupleBytes(t)
		if len(out)%ctxCheckStride == 0 {
			if err := ex.Err(); err != nil {
				return nil, err
			}
			if err := ex.ChargeBytes(pending); err != nil {
				return nil, err
			}
			pending = 0
		}
	}
}

// DrainBatchesExec runs a batch operator to completion with the given
// batch size under the statement controls, checking the context and
// charging the reservation once per batch.
func DrainBatchesExec(b BatchOperator, size int, ex *Exec) ([]record.Tuple, error) {
	if err := b.Open(); err != nil {
		return nil, err
	}
	defer b.Close()
	batch := NewRowBatch(size)
	var out []record.Tuple
	for {
		if err := ex.Err(); err != nil {
			return nil, err
		}
		n, err := b.NextBatch(batch)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
		start := len(out)
		for i := 0; i < n; i++ {
			out = append(out, batch.Row(i))
		}
		if err := ex.ChargeTuples(out[start:]); err != nil {
			return nil, err
		}
	}
}
