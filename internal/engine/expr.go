// Package engine implements VeriDB's query execution engine: volcano-style
// relational operators (paper §5.4) whose leaf nodes are the verified
// access methods of the storage layer. The engine conceptually runs inside
// the SGX enclave, colocated with the storage interfaces (§3.3), so an
// operator's output is trusted whenever its inputs are; all integrity
// checking concentrates in the scan leaves.
package engine

import (
	"fmt"
	"strings"

	"veridb/internal/record"
	"veridb/internal/sql"
)

// Col describes one column of an operator's output schema.
type Col struct {
	Table string // binding alias; empty for computed columns
	Name  string
	Type  record.Type
}

// Schema is an ordered operator output description.
type Schema []Col

// Resolve finds the position of a column reference; table may be empty for
// unqualified references, which must then be unambiguous.
func (s Schema) Resolve(table, name string) (int, error) {
	found := -1
	for i, c := range s {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if table != "" && !strings.EqualFold(c.Table, table) {
			continue
		}
		if found != -1 {
			return 0, fmt.Errorf("engine: ambiguous column %q", name)
		}
		found = i
	}
	if found == -1 {
		ref := name
		if table != "" {
			ref = table + "." + name
		}
		return 0, fmt.Errorf("engine: unknown column %q", ref)
	}
	return found, nil
}

// Compiled is an executable expression bound to a schema.
type Compiled struct {
	eval func(record.Tuple) (record.Value, error)
	typ  record.Type
	src  string
}

// Type returns the expression's static result type.
func (c *Compiled) Type() record.Type { return c.typ }

// Eval evaluates against a tuple of the bound schema.
func (c *Compiled) Eval(t record.Tuple) (record.Value, error) { return c.eval(t) }

// String returns the source form.
func (c *Compiled) String() string { return c.src }

// EvalBool evaluates a predicate; NULL results are false (two-valued
// semantics, documented in the package README).
func (c *Compiled) EvalBool(t record.Tuple) (bool, error) {
	v, err := c.eval(t)
	if err != nil {
		return false, err
	}
	if v.Null {
		return false, nil
	}
	if v.Type != record.TypeBool {
		return false, fmt.Errorf("engine: predicate %s evaluated to %s, not BOOL", c.src, v.Type)
	}
	return v.B, nil
}

// Compile binds a SQL expression to a schema. Aggregate calls are rejected;
// the planner routes them through the aggregation operator instead.
func Compile(e sql.Expr, s Schema) (*Compiled, error) {
	ev, typ, err := compile(e, s)
	if err != nil {
		return nil, err
	}
	return &Compiled{eval: ev, typ: typ, src: e.String()}, nil
}

type evalFn func(record.Tuple) (record.Value, error)

func compile(e sql.Expr, s Schema) (evalFn, record.Type, error) {
	switch x := e.(type) {
	case *sql.Literal:
		v := x.Val
		return func(record.Tuple) (record.Value, error) { return v, nil }, v.Type, nil
	case *sql.ColumnRef:
		i, err := s.Resolve(x.Table, x.Column)
		if err != nil {
			return nil, 0, err
		}
		typ := s[i].Type
		return func(t record.Tuple) (record.Value, error) {
			if i >= len(t) {
				return record.Value{}, fmt.Errorf("engine: tuple too short for column %d", i)
			}
			return t[i], nil
		}, typ, nil
	case *sql.UnaryExpr:
		inner, typ, err := compile(x.E, s)
		if err != nil {
			return nil, 0, err
		}
		switch x.Op {
		case "NOT":
			return func(t record.Tuple) (record.Value, error) {
				v, err := inner(t)
				if err != nil {
					return record.Value{}, err
				}
				if v.Null {
					return record.Null(record.TypeBool), nil
				}
				if v.Type != record.TypeBool {
					return record.Value{}, fmt.Errorf("engine: NOT applied to %s", v.Type)
				}
				return record.Bool(!v.B), nil
			}, record.TypeBool, nil
		case "-":
			return func(t record.Tuple) (record.Value, error) {
				v, err := inner(t)
				if err != nil {
					return record.Value{}, err
				}
				if v.Null {
					return v, nil
				}
				switch v.Type {
				case record.TypeInt:
					return record.Int(-v.I), nil
				case record.TypeFloat:
					return record.Float(-v.F), nil
				default:
					return record.Value{}, fmt.Errorf("engine: negating %s", v.Type)
				}
			}, typ, nil
		default:
			return nil, 0, fmt.Errorf("engine: unknown unary op %q", x.Op)
		}
	case *sql.BinaryExpr:
		return compileBinary(x, s)
	case *sql.BetweenExpr:
		lo := &sql.BinaryExpr{Op: ">=", L: x.E, R: x.Lo}
		hi := &sql.BinaryExpr{Op: "<=", L: x.E, R: x.Hi}
		var both sql.Expr = &sql.BinaryExpr{Op: "AND", L: lo, R: hi}
		if x.Negated {
			both = &sql.UnaryExpr{Op: "NOT", E: both}
		}
		return compile(both, s)
	case *sql.InExpr:
		var ors sql.Expr
		for _, item := range x.List {
			eq := &sql.BinaryExpr{Op: "=", L: x.E, R: item}
			if ors == nil {
				ors = eq
			} else {
				ors = &sql.BinaryExpr{Op: "OR", L: ors, R: eq}
			}
		}
		if ors == nil {
			ors = &sql.Literal{Val: record.Bool(false)}
		}
		if x.Negated {
			ors = &sql.UnaryExpr{Op: "NOT", E: ors}
		}
		return compile(ors, s)
	case *sql.IsNullExpr:
		inner, _, err := compile(x.E, s)
		if err != nil {
			return nil, 0, err
		}
		neg := x.Negated
		return func(t record.Tuple) (record.Value, error) {
			v, err := inner(t)
			if err != nil {
				return record.Value{}, err
			}
			return record.Bool(v.Null != neg), nil
		}, record.TypeBool, nil
	case *sql.FuncCall:
		return nil, 0, fmt.Errorf("engine: aggregate %s outside an aggregation context", x.Name)
	default:
		return nil, 0, fmt.Errorf("engine: unsupported expression %T", e)
	}
}

func compileBinary(x *sql.BinaryExpr, s Schema) (evalFn, record.Type, error) {
	l, lt, err := compile(x.L, s)
	if err != nil {
		return nil, 0, err
	}
	r, rt, err := compile(x.R, s)
	if err != nil {
		return nil, 0, err
	}
	switch x.Op {
	case "AND", "OR":
		and := x.Op == "AND"
		return func(t record.Tuple) (record.Value, error) {
			lv, err := l(t)
			if err != nil {
				return record.Value{}, err
			}
			if !lv.Null && lv.Type != record.TypeBool {
				return record.Value{}, fmt.Errorf("engine: %s operand is %s", x.Op, lv.Type)
			}
			// Short circuit on the determining value.
			if !lv.Null {
				if and && !lv.B {
					return record.Bool(false), nil
				}
				if !and && lv.B {
					return record.Bool(true), nil
				}
			}
			rv, err := r(t)
			if err != nil {
				return record.Value{}, err
			}
			if !rv.Null && rv.Type != record.TypeBool {
				return record.Value{}, fmt.Errorf("engine: %s operand is %s", x.Op, rv.Type)
			}
			if lv.Null || rv.Null {
				return record.Null(record.TypeBool), nil
			}
			if and {
				return record.Bool(lv.B && rv.B), nil
			}
			return record.Bool(lv.B || rv.B), nil
		}, record.TypeBool, nil
	case "=", "<>", "<", "<=", ">", ">=":
		op := x.Op
		return func(t record.Tuple) (record.Value, error) {
			lv, err := l(t)
			if err != nil {
				return record.Value{}, err
			}
			rv, err := r(t)
			if err != nil {
				return record.Value{}, err
			}
			if lv.Null || rv.Null {
				return record.Null(record.TypeBool), nil
			}
			c, err := lv.Compare(rv)
			if err != nil {
				return record.Value{}, fmt.Errorf("engine: %s: %w", op, err)
			}
			var b bool
			switch op {
			case "=":
				b = c == 0
			case "<>":
				b = c != 0
			case "<":
				b = c < 0
			case "<=":
				b = c <= 0
			case ">":
				b = c > 0
			case ">=":
				b = c >= 0
			}
			return record.Bool(b), nil
		}, record.TypeBool, nil
	case "+", "-", "*", "/", "%":
		op := x.Op
		outType := record.TypeInt
		if lt == record.TypeFloat || rt == record.TypeFloat {
			outType = record.TypeFloat
		}
		return func(t record.Tuple) (record.Value, error) {
			lv, err := l(t)
			if err != nil {
				return record.Value{}, err
			}
			rv, err := r(t)
			if err != nil {
				return record.Value{}, err
			}
			if lv.Null || rv.Null {
				return record.Null(outType), nil
			}
			return arith(op, lv, rv)
		}, outType, nil
	default:
		return nil, 0, fmt.Errorf("engine: unknown binary op %q", x.Op)
	}
}

func arith(op string, a, b record.Value) (record.Value, error) {
	if a.Type == record.TypeInt && b.Type == record.TypeInt {
		switch op {
		case "+":
			return record.Int(a.I + b.I), nil
		case "-":
			return record.Int(a.I - b.I), nil
		case "*":
			return record.Int(a.I * b.I), nil
		case "/":
			if b.I == 0 {
				return record.Value{}, fmt.Errorf("engine: integer division by zero")
			}
			return record.Int(a.I / b.I), nil
		case "%":
			if b.I == 0 {
				return record.Value{}, fmt.Errorf("engine: modulo by zero")
			}
			return record.Int(a.I % b.I), nil
		}
	}
	af, err := a.AsFloat()
	if err != nil {
		return record.Value{}, fmt.Errorf("engine: %s: %w", op, err)
	}
	bf, err := b.AsFloat()
	if err != nil {
		return record.Value{}, fmt.Errorf("engine: %s: %w", op, err)
	}
	switch op {
	case "+":
		return record.Float(af + bf), nil
	case "-":
		return record.Float(af - bf), nil
	case "*":
		return record.Float(af * bf), nil
	case "/":
		if bf == 0 {
			return record.Value{}, fmt.Errorf("engine: division by zero")
		}
		return record.Float(af / bf), nil
	case "%":
		return record.Value{}, fmt.Errorf("engine: %% needs integer operands")
	}
	return record.Value{}, fmt.Errorf("engine: bad arithmetic op %q", op)
}

// groupKey encodes a tuple of values into a comparable map key.
func groupKey(vals []record.Value) string {
	var sb strings.Builder
	for _, v := range vals {
		if v.Null {
			sb.WriteString("N;")
			continue
		}
		k, err := record.KeyOf(v)
		if err != nil {
			sb.WriteString("E;")
			continue
		}
		b := k.Encode()
		sb.WriteByte(byte(len(b)))
		sb.Write(b)
		sb.WriteByte(';')
	}
	return sb.String()
}
