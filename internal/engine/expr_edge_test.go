package engine

import (
	"fmt"
	"strings"
	"testing"

	"veridb/internal/record"
)

// nullRow is a tuple of all-NULL values matching testSchema.
func nullRow() record.Tuple {
	return record.Tuple{
		record.Null(record.TypeInt), record.Null(record.TypeFloat),
		record.Null(record.TypeText), record.Null(record.TypeBool),
	}
}

// TestExprNullPropagation pins SQL three-valued logic: comparisons against
// NULL are NULL (and a NULL predicate excludes the row), NULL short-circuits
// correctly through AND/OR, and IS NULL is the one comparison that sees
// NULL as a value.
func TestExprNullPropagation(t *testing.T) {
	n := nullRow()
	for _, src := range []string{"a = 6", "a <> 6", "a < 3", "a >= 3", "s = 'x'", "b > 0.5", "f = TRUE"} {
		c := compileStr(t, src, testSchema)
		v, err := c.Eval(n)
		if err != nil {
			t.Fatalf("%s over NULL row: %v", src, err)
		}
		if !v.Null {
			t.Errorf("%s over NULL row = %v, want NULL", src, v)
		}
		pass, err := c.EvalBool(n)
		if err != nil || pass {
			t.Errorf("%s over NULL row passes the filter (pass=%v err=%v)", src, pass, err)
		}
	}
	// AND/OR short-circuit only on a determined LEFT operand; a NULL left
	// makes the whole conjunction/disjunction NULL. Pin both directions so
	// the scalar and batched paths can't silently diverge on this.
	det := map[string]struct {
		want record.Value
	}{
		"FALSE AND a = 6": {record.Bool(false)}, // determined left short-circuits
		"TRUE OR a = 6":   {record.Bool(true)},
	}
	for src, tc := range det {
		v, err := compileStr(t, src, testSchema).Eval(n)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if v.Null || v.B != tc.want.B {
			t.Errorf("%s over NULL row = %v, want %v", src, v, tc.want)
		}
	}
	// NULL left operand propagates, whatever the right side says.
	for _, src := range []string{"a = 6 AND FALSE", "a = 6 OR TRUE", "a = 6 AND TRUE", "a = 6 OR FALSE"} {
		v, err := compileStr(t, src, testSchema).Eval(n)
		if err != nil || !v.Null {
			t.Errorf("%s over NULL row = %v err=%v, want NULL", src, v, err)
		}
	}
	// IS NULL treats NULL as a value, not a contagion.
	for src, want := range map[string]bool{"a IS NULL": true, "a IS NOT NULL": false} {
		v, err := compileStr(t, src, testSchema).Eval(n)
		if err != nil || v.Null || v.B != want {
			t.Errorf("%s over NULL row = %v err=%v, want %v", src, v, err, want)
		}
	}
	// NULL propagates through arithmetic into comparisons.
	if v, err := compileValue(t, "a + 1", testSchema).Eval(n); err != nil || !v.Null {
		t.Errorf("a + 1 over NULL row = %v err=%v, want NULL", v, err)
	}
}

// TestExprMixedTypeErrors pins the runtime errors for type-confused
// arithmetic: text operands, float modulo, and division by zero.
func TestExprMixedTypeErrors(t *testing.T) {
	r := row(6, 2.5, "x", true)
	cases := map[string]string{
		"s + 1":   "",                 // text has no float form
		"s * 2.0": "",                 // same, reversed promotion
		"a % 2.5": "integer operands", // modulo demands ints
		"a / 0":   "division by zero", // integer path
		"b / 0.0": "division by zero", // float path
		"a % 0":   "modulo by zero",
	}
	for src, frag := range cases {
		c := compileValue(t, src, testSchema)
		_, err := c.Eval(r)
		if err == nil {
			t.Errorf("%s evaluated cleanly, want error", src)
			continue
		}
		if frag != "" && !strings.Contains(err.Error(), frag) {
			t.Errorf("%s error %q does not mention %q", src, err, frag)
		}
	}
	// Int/float promotion is NOT an error.
	if v, err := compileValue(t, "a + b", testSchema).Eval(r); err != nil || v.F != 8.5 {
		t.Errorf("a + b = %v err=%v, want 8.5", v, err)
	}
}

// TestExprStringOrdering pins lexicographic TEXT comparison, including
// prefix ordering and case sensitivity (byte order, like SQL's default
// binary collation).
func TestExprStringOrdering(t *testing.T) {
	cases := []struct {
		s    string
		expr string
		want bool
	}{
		{"apple", "s < 'banana'", true},
		{"banana", "s < 'apple'", false},
		{"app", "s < 'apple'", true},       // prefix sorts first
		{"apple", "s <= 'apple'", true},    // equality on boundary
		{"Zebra", "s < 'apple'", true},     // 'Z' (0x5A) < 'a' (0x61)
		{"b", "s > 'a' AND s < 'c'", true}, // range bracketing
		{"", "s < 'a'", true},              // empty string sorts first
	}
	for _, tc := range cases {
		r := record.Tuple{record.Int(0), record.Float(0), record.Text(tc.s), record.Bool(false)}
		pass, err := compileStr(t, tc.expr, testSchema).EvalBool(r)
		if err != nil {
			t.Fatalf("%q %s: %v", tc.s, tc.expr, err)
		}
		if pass != tc.want {
			t.Errorf("%q %s = %v, want %v", tc.s, tc.expr, pass, tc.want)
		}
	}
}

// edgeRows is a small input mixing NULLs, negative numbers, empty strings
// and boundary values — the rows the oracle below pushes through filters
// and projections.
func edgeRows() []record.Tuple {
	rows := []record.Tuple{
		row(6, 2.5, "x", true),
		row(-3, -0.5, "", false),
		row(0, 0, "apple", true),
		nullRow(),
		row(7, 3.5, "Zebra", false),
		{record.Null(record.TypeInt), record.Float(1), record.Text("b"), record.Bool(true)},
		{record.Int(5), record.Null(record.TypeFloat), record.Null(record.TypeText), record.Bool(false)},
	}
	return rows
}

// TestExprScalarVsBatchOracle runs Filter/Project pipelines over the edge
// rows through the scalar path and the batched path at several batch sizes.
// Rows, order and values must be identical — NULL handling and selection
// vectors must not diverge between the two execution modes.
func TestExprScalarVsBatchOracle(t *testing.T) {
	preds := []string{
		"a > 0",
		"a IS NULL OR s IS NULL",
		"s < 'c' AND s IS NOT NULL",
		"a + 1 > 0 OR f",
		"b >= 0.0",
	}
	build := func(pred string) Operator {
		vals := &Values{Cols: testSchema, Rows: edgeRows()}
		f := &Filter{Child: vals, Pred: compileStr(t, pred, testSchema)}
		return &Project{
			Child: f,
			Exprs: []*Compiled{
				compileValue(t, "a", testSchema),
				compileValue(t, "s", testSchema),
			},
			Names: []string{"a", "s"},
		}
	}
	for _, pred := range preds {
		want, err := Drain(build(pred))
		if err != nil {
			t.Fatalf("%s scalar: %v", pred, err)
		}
		for _, size := range []int{1, 2, 3, 256} {
			op := build(pred)
			SetBatchSize(op, size)
			got, err := DrainBatches(AsBatch(op), size)
			if err != nil {
				t.Fatalf("%s batch=%d: %v", pred, size, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s batch=%d: %d rows, scalar %d", pred, size, len(got), len(want))
			}
			for i := range got {
				if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
					t.Fatalf("%s batch=%d row %d: %v vs scalar %v", pred, size, i, got[i], want[i])
				}
			}
		}
	}
	// Errors surface identically: a mid-stream eval error aborts both modes.
	bad := func() Operator {
		vals := &Values{Cols: testSchema, Rows: edgeRows()}
		return &Filter{Child: vals, Pred: compileStr(t, "a / (a - 6) > 0", testSchema)}
	}
	if _, err := Drain(bad()); err == nil {
		t.Fatal("scalar path swallowed division by zero")
	}
	for _, size := range []int{2, 256} {
		op := bad()
		SetBatchSize(op, size)
		if _, err := DrainBatches(AsBatch(op), size); err == nil {
			t.Fatalf("batch=%d path swallowed division by zero", size)
		}
	}
}
