package engine

import (
	"veridb/internal/record"
	"veridb/internal/storage"
)

// concatSchema joins two schemas side by side.
func concatSchema(l, r Schema) Schema {
	out := make(Schema, 0, len(l)+len(r))
	out = append(out, l...)
	out = append(out, r...)
	return out
}

func concatTuples(l, r record.Tuple) record.Tuple {
	out := make(record.Tuple, 0, len(l)+len(r))
	out = append(out, l...)
	out = append(out, r...)
	return out
}

// NestedLoopJoin re-opens the inner operator for every outer row and emits
// concatenated rows passing On (which may be nil for a cross product).
// This is the Q19 "NestedLoopJoin" plan shape of §6.3.
type NestedLoopJoin struct {
	Outer, Inner Operator
	On           *Compiled // compiled against the concatenated schema

	batch      int // execution mode; see SetBatchSize
	ocur, icur *batchCursor
	cur        record.Tuple
	innerOpen  bool
}

// Schema concatenates outer and inner schemas.
func (j *NestedLoopJoin) Schema() Schema {
	return concatSchema(j.Outer.Schema(), j.Inner.Schema())
}

// Open opens the outer side.
func (j *NestedLoopJoin) Open() error {
	j.cur = nil
	j.innerOpen = false
	j.ocur = newBatchCursor(j.Outer, j.batch)
	j.icur = newBatchCursor(j.Inner, j.batch)
	return j.Outer.Open()
}

// Next emits the next joined row. Both sides are pulled through batch
// cursors, so their subtrees run vectorized while the join logic itself
// stays per-row.
func (j *NestedLoopJoin) Next() (record.Tuple, bool, error) {
	for {
		if j.cur == nil {
			t, ok, err := j.ocur.next()
			if err != nil || !ok {
				return nil, false, err
			}
			j.cur = t
			if j.innerOpen {
				j.Inner.Close()
			}
			if err := j.Inner.Open(); err != nil {
				return nil, false, err
			}
			j.icur.reset()
			j.innerOpen = true
		}
		it, ok, err := j.icur.next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			j.cur = nil
			continue
		}
		row := concatTuples(j.cur, it)
		if j.On != nil {
			pass, err := j.On.EvalBool(row)
			if err != nil {
				return nil, false, err
			}
			if !pass {
				continue
			}
		}
		return row, true, nil
	}
}

// Close closes both sides.
func (j *NestedLoopJoin) Close() error {
	if j.innerOpen {
		j.Inner.Close()
		j.innerOpen = false
	}
	return j.Outer.Close()
}

// NextBatch fills dst with joined rows; inputs stream batch-wise through
// the cursors.
func (j *NestedLoopJoin) NextBatch(dst *RowBatch) (int, error) {
	return storage.FillBatch(j.Next, dst)
}

// IndexJoin pulls, for each outer row, the matching inner rows through the
// verified index search / range scan on the inner table's chain — the
// paper's running example plan (Fig. 7: Join with IndexSearch on
// inventory.id).
type IndexJoin struct {
	Outer      Operator
	InnerTable storage.Engine
	InnerAlias string
	// InnerCol is the chained inner column the key probes.
	InnerCol int
	// OuterKey computes the probe value from the outer row.
	OuterKey *Compiled
	// Residual filters concatenated rows (nil: none).
	Residual *Compiled
	// Snap, when set, resolves inner-side probes against the same pinned
	// snapshot as the rest of the statement (see engine.SetSnapshot).
	Snap *storage.Snapshot

	batch   int // execution mode; see SetBatchSize
	ocur    *batchCursor
	pb      *RowBatch // probe-scan scratch batch
	cur     record.Tuple
	matches []record.Tuple
	mi      int
}

// Schema concatenates outer and inner schemas.
func (j *IndexJoin) Schema() Schema {
	cols := j.InnerTable.Schema().Columns
	inner := make(Schema, len(cols))
	for i, c := range cols {
		inner[i] = Col{Table: j.InnerAlias, Name: c.Name, Type: c.Type}
	}
	return concatSchema(j.Outer.Schema(), inner)
}

// Open opens the outer side.
func (j *IndexJoin) Open() error {
	j.cur, j.matches, j.mi = nil, nil, 0
	j.ocur = newBatchCursor(j.Outer, j.batch)
	return j.Outer.Open()
}

// Next emits the next joined row.
func (j *IndexJoin) Next() (record.Tuple, bool, error) {
	for {
		for j.mi < len(j.matches) {
			row := concatTuples(j.cur, j.matches[j.mi])
			j.mi++
			if j.Residual != nil {
				pass, err := j.Residual.EvalBool(row)
				if err != nil {
					return nil, false, err
				}
				if !pass {
					continue
				}
			}
			return row, true, nil
		}
		t, ok, err := j.ocur.next()
		if err != nil || !ok {
			return nil, false, err
		}
		j.cur = t
		key, err := j.OuterKey.Eval(t)
		if err != nil {
			return nil, false, err
		}
		j.matches, err = j.probe(key)
		if err != nil {
			return nil, false, err
		}
		j.mi = 0
	}
}

// probe fetches verified matches for one key value.
func (j *IndexJoin) probe(key record.Value) ([]record.Tuple, error) {
	if key.Null {
		return nil, nil // NULL joins nothing
	}
	if j.InnerCol == j.InnerTable.PrimaryKeyColumn() {
		// The probe routes to the single shard owning the key.
		var (
			tup record.Tuple
			ev  storage.Evidence
			err error
		)
		if j.Snap != nil {
			tup, ev, err = j.InnerTable.GetAt(key, j.Snap)
		} else {
			tup, ev, err = j.InnerTable.Get(key)
		}
		if err != nil {
			return nil, err
		}
		if !ev.Found {
			return nil, nil
		}
		return []record.Tuple{tup}, nil
	}
	// Secondary-chain probes fan out: every shard's sub-chain contributes
	// its matches (and its absence proof) for the key.
	var (
		sc  storage.Iterator
		err error
	)
	if j.Snap != nil {
		sc, err = j.InnerTable.RangeScanAt(j.InnerCol, &key, &key, j.Snap)
	} else {
		sc, err = j.InnerTable.RangeScan(j.InnerCol, &key, &key)
	}
	if err != nil {
		return nil, err
	}
	defer sc.Close()
	if j.batch > 1 {
		// Batched probe drain: the verified scan fills the scratch batch.
		if j.pb == nil || j.pb.Cap() != j.batch {
			j.pb = NewRowBatch(j.batch)
		}
		var out []record.Tuple
		for {
			n, err := sc.NextBatch(j.pb)
			if err != nil {
				return nil, err
			}
			if n == 0 {
				return out, nil
			}
			for i := 0; i < n; i++ {
				out = append(out, j.pb.Row(i))
			}
		}
	}
	var out []record.Tuple
	for {
		t, ok, err := sc.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, t)
	}
}

// Close closes the outer side.
func (j *IndexJoin) Close() error {
	j.matches = nil
	return j.Outer.Close()
}

// NextBatch fills dst with joined rows; the outer input and the probe
// drains stream batch-wise.
func (j *IndexJoin) NextBatch(dst *RowBatch) (int, error) {
	return storage.FillBatch(j.Next, dst)
}

// MergeJoin equi-joins two inputs already sorted on their join keys —
// Q19's low-compute plan in §6.3. Duplicate key groups on the right are
// buffered.
type MergeJoin struct {
	Left, Right        Operator
	LeftKey, RightKey  *Compiled // compiled against the respective schemas
	Residual           *Compiled // against the concatenated schema; may be nil
	batch              int       // execution mode; see SetBatchSize
	lc, rc             *batchCursor
	lrow               record.Tuple
	lkey               record.Value
	group              []record.Tuple // right rows sharing the current key
	gi                 int
	rrow               record.Tuple // right look-ahead
	rkey               record.Value
	leftDone, skipSame bool
}

// Schema concatenates the inputs.
func (j *MergeJoin) Schema() Schema {
	return concatSchema(j.Left.Schema(), j.Right.Schema())
}

// Open opens both inputs.
func (j *MergeJoin) Open() error {
	j.lrow, j.group, j.gi, j.rrow = nil, nil, 0, nil
	j.leftDone, j.skipSame = false, false
	j.lc = newBatchCursor(j.Left, j.batch)
	j.rc = newBatchCursor(j.Right, j.batch)
	if err := j.Left.Open(); err != nil {
		return err
	}
	if err := j.Right.Open(); err != nil {
		j.Left.Close()
		return err
	}
	return j.advanceRight()
}

func (j *MergeJoin) advanceLeft() error {
	t, ok, err := j.lc.next()
	if err != nil {
		return err
	}
	if !ok {
		j.leftDone = true
		j.lrow = nil
		return nil
	}
	j.lrow = t
	j.lkey, err = j.LeftKey.Eval(t)
	return err
}

func (j *MergeJoin) advanceRight() error {
	t, ok, err := j.rc.next()
	if err != nil {
		return err
	}
	if !ok {
		j.rrow = nil
		return nil
	}
	j.rrow = t
	j.rkey, err = j.RightKey.Eval(t)
	return err
}

// fillGroup collects all right rows equal to key into the group buffer.
func (j *MergeJoin) fillGroup(key record.Value) error {
	j.group = j.group[:0]
	for j.rrow != nil {
		c, err := j.rkey.Compare(key)
		if err != nil {
			return err
		}
		if c != 0 {
			break
		}
		j.group = append(j.group, j.rrow)
		if err := j.advanceRight(); err != nil {
			return err
		}
	}
	return nil
}

// Next emits the next joined row.
func (j *MergeJoin) Next() (record.Tuple, bool, error) {
	for {
		for j.gi < len(j.group) {
			row := concatTuples(j.lrow, j.group[j.gi])
			j.gi++
			if j.Residual != nil {
				pass, err := j.Residual.EvalBool(row)
				if err != nil {
					return nil, false, err
				}
				if !pass {
					continue
				}
			}
			return row, true, nil
		}
		// Need a new left row.
		prevKey := j.lkey
		hadLeft := j.lrow != nil
		if err := j.advanceLeft(); err != nil {
			return nil, false, err
		}
		if j.leftDone {
			return nil, false, nil
		}
		if j.lkey.Null {
			j.group, j.gi = nil, 0 // NULL keys join nothing
			continue
		}
		// Same key as the previous left row: reuse the group.
		if hadLeft && !prevKey.Null {
			if c, err := j.lkey.Compare(prevKey); err == nil && c == 0 {
				j.gi = 0
				continue
			}
		}
		// Advance the right side to the new key.
		for j.rrow != nil {
			c, err := j.rkey.Compare(j.lkey)
			if err != nil {
				return nil, false, err
			}
			if c >= 0 {
				break
			}
			if err := j.advanceRight(); err != nil {
				return nil, false, err
			}
		}
		if err := j.fillGroup(j.lkey); err != nil {
			return nil, false, err
		}
		j.gi = 0
		if len(j.group) == 0 {
			continue
		}
	}
}

// Close closes both inputs.
func (j *MergeJoin) Close() error {
	err1 := j.Left.Close()
	err2 := j.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// NextBatch fills dst with joined rows; both sorted inputs stream
// batch-wise through the cursors.
func (j *MergeJoin) NextBatch(dst *RowBatch) (int, error) {
	return storage.FillBatch(j.Next, dst)
}

// HashJoin builds a hash table on the right input and probes with the
// left — the fallback equi-join when no chain serves the join column.
type HashJoin struct {
	Left, Right       Operator
	LeftKey, RightKey *Compiled
	Residual          *Compiled

	batch   int   // execution mode; see SetBatchSize
	exec    *Exec // statement controls; see SetExec
	lcur    *batchCursor
	table   map[string][]record.Tuple
	cur     record.Tuple
	matches []record.Tuple
	mi      int
}

// Schema concatenates the inputs.
func (j *HashJoin) Schema() Schema {
	return concatSchema(j.Left.Schema(), j.Right.Schema())
}

// Open drains the right (build) input into the hash table — batch-wise
// when the join runs vectorized.
func (j *HashJoin) Open() error {
	j.table = make(map[string][]record.Tuple)
	j.cur, j.matches, j.mi = nil, nil, 0
	j.lcur = newBatchCursor(j.Left, j.batch)
	rows, err := drainChild(j.Right, j.batch, j.exec)
	if err != nil {
		return err
	}
	for _, r := range rows {
		k, err := j.RightKey.Eval(r)
		if err != nil {
			return err
		}
		if k.Null {
			continue
		}
		gk := groupKey([]record.Value{k})
		j.table[gk] = append(j.table[gk], r)
	}
	return j.Left.Open()
}

// Next probes the table with successive left rows.
func (j *HashJoin) Next() (record.Tuple, bool, error) {
	for {
		for j.mi < len(j.matches) {
			row := concatTuples(j.cur, j.matches[j.mi])
			j.mi++
			if j.Residual != nil {
				pass, err := j.Residual.EvalBool(row)
				if err != nil {
					return nil, false, err
				}
				if !pass {
					continue
				}
			}
			return row, true, nil
		}
		t, ok, err := j.lcur.next()
		if err != nil || !ok {
			return nil, false, err
		}
		j.cur = t
		k, err := j.LeftKey.Eval(t)
		if err != nil {
			return nil, false, err
		}
		if k.Null {
			j.matches = nil
			continue
		}
		j.matches = j.table[groupKey([]record.Value{k})]
		j.mi = 0
	}
}

// Close closes the left input and drops the table.
func (j *HashJoin) Close() error {
	j.table = nil
	return j.Left.Close()
}

// NextBatch fills dst with joined rows; the probe input streams batch-wise
// through the cursor and the build side was drained batch-wise in Open.
func (j *HashJoin) NextBatch(dst *RowBatch) (int, error) {
	return storage.FillBatch(j.Next, dst)
}
