package engine

import (
	"fmt"
	"sort"

	"veridb/internal/record"
	"veridb/internal/storage"
)

// Operator is the volcano iterator interface (§5.4: "the operators in the
// execution engine, when triggered, output one tuple"). Open may be called
// again after Close to restart the operator (nested-loop inners rely on
// this).
type Operator interface {
	Schema() Schema
	Open() error
	Next() (record.Tuple, bool, error)
	Close() error
}

// Drain runs an operator to completion and returns all rows.
func Drain(op Operator) ([]record.Tuple, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []record.Tuple
	for {
		t, ok, err := op.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, t)
	}
}

// TableScan is the verified sequential/range scan leaf (§5.2). With no
// bounds it scans the whole primary chain ("SeqScan, treated as RangeScan
// for range (⊥,⊤)", §5.4); with bounds on a chained column it becomes a
// verified range scan on that column's chain.
type TableScan struct {
	Table storage.Engine
	Alias string
	// Col is the bounded column index; -1 scans the primary chain fully.
	Col    int
	Lo, Hi *record.Value
	// Snap, when set, resolves the scan against a pinned snapshot instead
	// of the latest committed state (see engine.SetSnapshot). The scan
	// borrows the snapshot — the statement that pinned it closes it.
	Snap *storage.Snapshot

	exec    *Exec // statement controls; see SetExec
	sc      storage.Iterator
	visited int
	rowsOut int // scalar rows since the last context check
}

// NewTableScan builds a full scan over the primary chain.
func NewTableScan(t storage.Engine, alias string) *TableScan {
	return &TableScan{Table: t, Alias: alias, Col: -1}
}

// NewRangeScan builds a verified range scan on col's chain.
func NewRangeScan(t storage.Engine, alias string, col int, lo, hi *record.Value) *TableScan {
	return &TableScan{Table: t, Alias: alias, Col: col, Lo: lo, Hi: hi}
}

// Schema exposes the table's columns under the scan's alias.
func (s *TableScan) Schema() Schema {
	cols := s.Table.Schema().Columns
	out := make(Schema, len(cols))
	for i, c := range cols {
		out[i] = Col{Table: s.Alias, Name: c.Name, Type: c.Type}
	}
	return out
}

// Open starts (or restarts) the verified scan.
func (s *TableScan) Open() error {
	if s.sc != nil {
		s.sc.Close()
		s.sc = nil
	}
	var err error
	switch {
	case s.Snap != nil && s.Col < 0:
		s.sc, err = s.Table.SeqScanAt(s.Snap)
	case s.Snap != nil:
		s.sc, err = s.Table.RangeScanAt(s.Col, s.Lo, s.Hi, s.Snap)
	case s.Col < 0:
		// SeqScan iterates every shard; on a sharded table the storage
		// layer fans the per-shard sub-scans out across VerifyWorkers.
		s.sc, err = s.Table.SeqScan()
	default:
		s.sc, err = s.Table.RangeScan(s.Col, s.Lo, s.Hi)
	}
	return err
}

// Next returns the next verified tuple.
func (s *TableScan) Next() (record.Tuple, bool, error) {
	if s.sc == nil {
		return nil, false, fmt.Errorf("engine: scan of %q not open", s.Table.Name())
	}
	if s.rowsOut++; s.rowsOut >= ctxCheckStride {
		s.rowsOut = 0
		if err := s.exec.Err(); err != nil {
			return nil, false, err
		}
	}
	t, ok, err := s.sc.Next()
	if !ok {
		s.visited = s.sc.Visited()
	}
	return t, ok, err
}

// Close releases the scan (and its shared table lock).
func (s *TableScan) Close() error {
	if s.sc != nil {
		s.visited = s.sc.Visited()
		s.sc.Close()
		s.sc = nil
	}
	return nil
}

// Visited reports chain records read, including verification boundaries.
func (s *TableScan) Visited() int { return s.visited }

// NextBatch pulls a verified batch straight from the storage iterator; each
// row passed the same per-row chain checks as on the Next path.
func (s *TableScan) NextBatch(dst *RowBatch) (int, error) {
	if s.sc == nil {
		return 0, fmt.Errorf("engine: scan of %q not open", s.Table.Name())
	}
	if err := s.exec.Err(); err != nil {
		return 0, err
	}
	n, err := s.sc.NextBatch(dst)
	if err != nil || n == 0 {
		s.visited = s.sc.Visited()
	}
	return n, err
}

// Filter drops rows failing the predicate.
type Filter struct {
	Child Operator
	Pred  *Compiled

	bchild BatchOperator // lazy: batched view of Child
	sel    []int         // selection scratch, reused across batches
}

// Schema returns the child schema.
func (f *Filter) Schema() Schema { return f.Child.Schema() }

// Open opens the child.
func (f *Filter) Open() error { return f.Child.Open() }

// Next returns the next passing row.
func (f *Filter) Next() (record.Tuple, bool, error) {
	for {
		t, ok, err := f.Child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		pass, err := f.Pred.EvalBool(t)
		if err != nil {
			return nil, false, err
		}
		if pass {
			return t, true, nil
		}
	}
}

// Close closes the child.
func (f *Filter) Close() error { return f.Child.Close() }

// NextBatch fills dst from the child and marks failing rows dead through
// the selection vector instead of compacting, so stacked filters touch each
// row's memory once. A return of 0 means the input is exhausted — batches
// whose rows all fail are retried internally, never surfaced.
func (f *Filter) NextBatch(dst *RowBatch) (int, error) {
	if f.bchild == nil {
		f.bchild = AsBatch(f.Child)
	}
	for {
		n, err := f.bchild.NextBatch(dst)
		if err != nil {
			return 0, err
		}
		if n == 0 {
			return 0, nil
		}
		if dst.Sel != nil {
			// Compose with the upstream selection in place; writes trail
			// reads, so compacting into the same slice is safe.
			keep := dst.Sel[:0]
			for _, idx := range dst.Sel {
				pass, err := f.Pred.EvalBool(dst.Rows[idx])
				if err != nil {
					return 0, err
				}
				if pass {
					keep = append(keep, idx)
				}
			}
			dst.Sel = keep
		} else {
			if cap(f.sel) < dst.N {
				f.sel = make([]int, 0, len(dst.Rows))
			}
			sel := f.sel[:0]
			for i := 0; i < dst.N; i++ {
				pass, err := f.Pred.EvalBool(dst.Rows[i])
				if err != nil {
					return 0, err
				}
				if pass {
					sel = append(sel, i)
				}
			}
			f.sel = sel
			dst.Sel = sel
		}
		if live := dst.Live(); live > 0 {
			return live, nil
		}
	}
}

// Project computes output expressions per row.
type Project struct {
	Child Operator
	Exprs []*Compiled
	Names []string

	bchild BatchOperator // lazy: batched view of Child
	in     *RowBatch     // input scratch, reused across batches
}

// Schema derives from the compiled expressions.
func (p *Project) Schema() Schema {
	out := make(Schema, len(p.Exprs))
	for i, e := range p.Exprs {
		name := p.Names[i]
		out[i] = Col{Name: name, Type: e.Type()}
	}
	return out
}

// Open opens the child.
func (p *Project) Open() error { return p.Child.Open() }

// Next projects the next row.
func (p *Project) Next() (record.Tuple, bool, error) {
	t, ok, err := p.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(record.Tuple, len(p.Exprs))
	for i, e := range p.Exprs {
		if out[i], err = e.Eval(t); err != nil {
			return nil, false, err
		}
	}
	return out, true, nil
}

// Close closes the child.
func (p *Project) Close() error { return p.Child.Close() }

// NextBatch projects a child batch into fresh output tuples. Dead input
// rows are skipped, so the output batch is dense (no selection).
func (p *Project) NextBatch(dst *RowBatch) (int, error) {
	if p.bchild == nil {
		p.bchild = AsBatch(p.Child)
	}
	if p.in == nil || p.in.Cap() != dst.Cap() {
		p.in = NewRowBatch(dst.Cap())
	}
	n, err := p.bchild.NextBatch(p.in)
	if err != nil {
		return 0, err
	}
	dst.Reset()
	if n == 0 {
		return 0, nil
	}
	for i, live := 0, p.in.Live(); i < live; i++ {
		t := p.in.Row(i)
		out := make(record.Tuple, len(p.Exprs))
		for k, e := range p.Exprs {
			if out[k], err = e.Eval(t); err != nil {
				return 0, err
			}
		}
		dst.Rows[dst.N] = out
		dst.N++
	}
	return dst.N, nil
}

// Limit stops after N rows.
type Limit struct {
	Child Operator
	N     int
	seen  int

	bchild BatchOperator // lazy: batched view of Child
}

// Schema returns the child schema.
func (l *Limit) Schema() Schema { return l.Child.Schema() }

// Open opens the child and resets the counter.
func (l *Limit) Open() error {
	l.seen = 0
	return l.Child.Open()
}

// Next forwards until the limit is reached.
func (l *Limit) Next() (record.Tuple, bool, error) {
	if l.seen >= l.N {
		return nil, false, nil
	}
	t, ok, err := l.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return t, true, nil
}

// Close closes the child.
func (l *Limit) Close() error { return l.Child.Close() }

// NextBatch truncates the child's batch to the rows still allowed: a
// shrunk selection (or N) drops the overflow without copying. Hitting the
// limit leaves the child mid-stream — Close abandons it early, which is why
// scan producers hang their lifetime on a context (storage/merge.go).
func (l *Limit) NextBatch(dst *RowBatch) (int, error) {
	if l.bchild == nil {
		l.bchild = AsBatch(l.Child)
	}
	if l.seen >= l.N {
		return 0, nil
	}
	n, err := l.bchild.NextBatch(dst)
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, nil
	}
	if remain := l.N - l.seen; n > remain {
		if dst.Sel != nil {
			dst.Sel = dst.Sel[:remain]
		} else {
			dst.N = remain
		}
		n = remain
	}
	l.seen += n
	return n, nil
}

// SortKey is one ORDER BY key.
type SortKey struct {
	Expr *Compiled
	Desc bool
}

// Sort materialises the child and emits rows in key order. Operator state
// beyond a handful of rows conceptually spills to the verifiable storage
// rather than EPC (§5.4 discusses the options); the simulation keeps it in
// the enclave's accounted memory.
type Sort struct {
	Child Operator
	Keys  []SortKey

	batch int   // execution mode; see SetBatchSize
	exec  *Exec // statement controls; see SetExec
	rows  []record.Tuple
	pos   int
}

// Schema returns the child schema.
func (s *Sort) Schema() Schema { return s.Child.Schema() }

// Open drains and sorts the child.
func (s *Sort) Open() error {
	s.rows, s.pos = nil, 0
	rows, err := drainChild(s.Child, s.batch, s.exec)
	if err != nil {
		return err
	}
	keys := make([][]record.Value, len(rows))
	for i, r := range rows {
		keys[i] = make([]record.Value, len(s.Keys))
		for j, k := range s.Keys {
			v, err := k.Expr.Eval(r)
			if err != nil {
				return err
			}
			keys[i][j] = v
		}
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	var sortErr error
	sort.SliceStable(idx, func(a, b int) bool {
		for j, k := range s.Keys {
			c, err := keys[idx[a]][j].Compare(keys[idx[b]][j])
			if err != nil && sortErr == nil {
				sortErr = err
			}
			if c != 0 {
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	if sortErr != nil {
		return sortErr
	}
	s.rows = make([]record.Tuple, len(rows))
	for i, j := range idx {
		s.rows[i] = rows[j]
	}
	return nil
}

// Next emits the next sorted row.
func (s *Sort) Next() (record.Tuple, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	t := s.rows[s.pos]
	s.pos++
	return t, true, nil
}

// NextBatch emits the next run of sorted rows.
func (s *Sort) NextBatch(dst *RowBatch) (int, error) {
	return emitRows(s.rows, &s.pos, dst)
}

// Close releases the materialised rows.
func (s *Sort) Close() error {
	s.rows = nil
	return nil
}

// Materialize drains its child once and replays the buffered rows on every
// subsequent Open — the materialisation point §6.3's NestedLoopJoin plan
// puts on the inner loop so the inner table's verified scan runs once, not
// once per outer row. The buffer conceptually lives in the verifiable
// storage when it outgrows the EPC (§5.4).
type Materialize struct {
	Child Operator

	batch  int   // execution mode; see SetBatchSize
	exec   *Exec // statement controls; see SetExec
	rows   []record.Tuple
	filled bool
	pos    int
}

// Schema returns the child schema.
func (m *Materialize) Schema() Schema { return m.Child.Schema() }

// Open fills the buffer on first use and rewinds on every use.
func (m *Materialize) Open() error {
	if !m.filled {
		rows, err := drainChild(m.Child, m.batch, m.exec)
		if err != nil {
			return err
		}
		m.rows = rows
		m.filled = true
	}
	m.pos = 0
	return nil
}

// Next replays the next buffered row.
func (m *Materialize) Next() (record.Tuple, bool, error) {
	if m.pos >= len(m.rows) {
		return nil, false, nil
	}
	t := m.rows[m.pos]
	m.pos++
	return t, true, nil
}

// NextBatch replays the next run of buffered rows.
func (m *Materialize) NextBatch(dst *RowBatch) (int, error) {
	return emitRows(m.rows, &m.pos, dst)
}

// Close keeps the buffer for re-opens; the operator is per-query.
func (m *Materialize) Close() error { return nil }

// Values is a constant-rows operator (tests and VALUES-style plumbing).
type Values struct {
	Cols Schema
	Rows []record.Tuple
	pos  int
}

// Schema returns the declared columns.
func (v *Values) Schema() Schema { return v.Cols }

// Open resets the cursor.
func (v *Values) Open() error { v.pos = 0; return nil }

// Next emits the next constant row.
func (v *Values) Next() (record.Tuple, bool, error) {
	if v.pos >= len(v.Rows) {
		return nil, false, nil
	}
	t := v.Rows[v.pos]
	v.pos++
	return t, true, nil
}

// NextBatch emits the next run of constant rows.
func (v *Values) NextBatch(dst *RowBatch) (int, error) {
	return emitRows(v.Rows, &v.pos, dst)
}

// Close is a no-op.
func (v *Values) Close() error { return nil }
