package engine

import (
	"testing"

	"veridb/internal/record"
	"veridb/internal/storage"
)

// groupedSpec is a table with a secondary chain on its second column.
func groupedSpec() storage.TableSpec {
	return storage.TableSpec{
		Name: "grouped",
		Schema: record.NewSchema(
			record.Column{Name: "id", Type: record.TypeInt},
			record.Column{Name: "grp", Type: record.TypeInt},
		),
		PrimaryKey:   0,
		ChainColumns: []int{1},
	}
}

// countingOp wraps Values and counts Opens, to pin Materialize semantics.
type countingOp struct {
	Values
	opens int
}

func (c *countingOp) Open() error {
	c.opens++
	return c.Values.Open()
}

func TestMaterializeDrainsChildOnce(t *testing.T) {
	src := &countingOp{Values: Values{
		Cols: Schema{{Name: "a", Type: record.TypeInt}},
		Rows: []record.Tuple{{record.Int(1)}, {record.Int(2)}},
	}}
	m := &Materialize{Child: src}
	for round := 0; round < 3; round++ {
		rows, err := Drain(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 {
			t.Fatalf("round %d: %d rows", round, len(rows))
		}
	}
	if src.opens != 1 {
		t.Fatalf("child opened %d times, want 1", src.opens)
	}
}

func TestNestedLoopWithMaterializedInner(t *testing.T) {
	quote, inv, _ := quoteInventory(t)
	innerScan := NewTableScan(inv, "i")
	j := &NestedLoopJoin{
		Outer: NewTableScan(quote, "q"),
		Inner: &Materialize{Child: innerScan},
	}
	j.On = compileStr(t, "q.id = i.id AND q.count > i.count", j.Schema())
	rows, err := Drain(projectCols(t, j, "q.id", "q.count", "i.count"))
	if err != nil {
		t.Fatal(err)
	}
	checkPaperJoin(t, rows)
	// The inner verified scan ran exactly once despite 4 outer rows.
	if v := innerScan.Visited(); v == 0 || v > 10 {
		t.Fatalf("inner scan visited %d chain records", v)
	}
}

func TestIndexJoinOnSecondaryChain(t *testing.T) {
	// Join probing a non-primary chained column with duplicates.
	quote, _, st := quoteInventory(t)
	// Build a table with a secondary chain on "grp".
	grp, err := st.CreateTable(groupedSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 9; i++ {
		if err := grp.Insert(record.Tuple{record.Int(i), record.Int(i % 3)}); err != nil {
			t.Fatal(err)
		}
	}
	outer := NewTableScan(quote, "q")
	j := &IndexJoin{
		Outer:      outer,
		InnerTable: grp,
		InnerAlias: "g",
		InnerCol:   1, // grp column with chain
		OuterKey:   compileValue(t, "q.id % 3", outer.Schema()),
	}
	rows, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	// Each of the 4 quote rows matches 3 grp rows (grp values 0,1,2 each
	// appear 3 times).
	if len(rows) != 12 {
		t.Fatalf("rows %d, want 12", len(rows))
	}
}

func TestLimitZero(t *testing.T) {
	src := valuesOp(row(1, 1, "a", true))
	rows, err := Drain(&Limit{Child: src, N: 0})
	if err != nil || len(rows) != 0 {
		t.Fatalf("LIMIT 0: %v, %v", rows, err)
	}
}

func TestSortEmptyInput(t *testing.T) {
	s := &Sort{Child: valuesOp(), Keys: []SortKey{{Expr: compileValue(t, "a", testSchema)}}}
	rows, err := Drain(s)
	if err != nil || len(rows) != 0 {
		t.Fatalf("empty sort: %v, %v", rows, err)
	}
}

func TestHashJoinEmptyBuildSide(t *testing.T) {
	ls := Schema{{Table: "l", Name: "k", Type: record.TypeInt}}
	j := &HashJoin{
		Left:     &Values{Cols: ls, Rows: []record.Tuple{{record.Int(1)}}},
		Right:    &Values{Cols: Schema{{Table: "r", Name: "k", Type: record.TypeInt}}},
		LeftKey:  compileValue(t, "l.k", ls),
		RightKey: compileValue(t, "r.k", Schema{{Table: "r", Name: "k", Type: record.TypeInt}}),
	}
	rows, err := Drain(j)
	if err != nil || len(rows) != 0 {
		t.Fatalf("empty build side: %v, %v", rows, err)
	}
}

func TestMergeJoinEmptySides(t *testing.T) {
	ls := Schema{{Table: "l", Name: "k", Type: record.TypeInt}}
	rs := Schema{{Table: "r", Name: "k", Type: record.TypeInt}}
	for name, rows := range map[string][2][]record.Tuple{
		"bothEmpty":  {nil, nil},
		"leftEmpty":  {nil, {{record.Int(1)}}},
		"rightEmpty": {{{record.Int(1)}}, nil},
	} {
		j := &MergeJoin{
			Left:     &Values{Cols: ls, Rows: rows[0]},
			Right:    &Values{Cols: rs, Rows: rows[1]},
			LeftKey:  compileValue(t, "l.k", ls),
			RightKey: compileValue(t, "r.k", rs),
		}
		out, err := Drain(j)
		if err != nil || len(out) != 0 {
			t.Fatalf("%s: %v, %v", name, out, err)
		}
	}
}
