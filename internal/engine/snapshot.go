package engine

import "veridb/internal/storage"

// SetSnapshot walks an operator tree and points every storage-reading leaf
// — table scans and index-join inner probes — at the given pinned
// snapshot, so the whole statement reads one consistent committed state
// regardless of concurrent writers. nil clears the snapshot (the plan
// cache re-targets cached trees per execution). The tree borrows the
// snapshot: the caller that pinned it closes it after the statement
// drains. Call before Open, like SetBatchSize.
func SetSnapshot(op Operator, snap *storage.Snapshot) {
	switch x := op.(type) {
	case *TableScan:
		x.Snap = snap
	case *Values:
	case *Filter:
		SetSnapshot(x.Child, snap)
	case *Project:
		SetSnapshot(x.Child, snap)
	case *Limit:
		SetSnapshot(x.Child, snap)
	case *Sort:
		SetSnapshot(x.Child, snap)
	case *Materialize:
		SetSnapshot(x.Child, snap)
	case *HashAggregate:
		SetSnapshot(x.Child, snap)
	case *NestedLoopJoin:
		SetSnapshot(x.Outer, snap)
		SetSnapshot(x.Inner, snap)
	case *IndexJoin:
		x.Snap = snap
		SetSnapshot(x.Outer, snap)
	case *MergeJoin:
		SetSnapshot(x.Left, snap)
		SetSnapshot(x.Right, snap)
	case *HashJoin:
		SetSnapshot(x.Left, snap)
		SetSnapshot(x.Right, snap)
	case *Spool:
		// The spool's temp table is ephemeral (created mid-statement, after
		// the snapshot pinned) and deliberately outside MVCC; only its
		// child reads versioned tables.
		SetSnapshot(x.Child, snap)
	}
}
