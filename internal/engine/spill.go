package engine

import (
	"fmt"
	"sync/atomic"

	"veridb/internal/record"
	"veridb/internal/storage"
)

// spoolSeq distinguishes concurrently created spool tables.
var spoolSeq atomic.Uint64

// Spool is a materialisation point whose buffer lives in the *verifiable
// storage* rather than enclave memory — the extension §5.4 sketches for
// intermediate state that outgrows the EPC: "we can reuse the trusted
// storage of VeriDB for storing the intermediate results (i.e., treat the
// intermediate state as additional external data). Such approach avoids
// heavy-weight secure swap."
//
// On first Open the child is drained into a temporary table keyed by row
// number; every replay is a verified sequential scan of that table, so
// spilled intermediates enjoy exactly the integrity guarantees of base
// data: tampering with a spooled row is caught like tampering with any
// other record. Close drops the temporary table (reading its rows back
// out of the write-read consistent memory).
type Spool struct {
	Child Operator
	// Store hosts the temporary table.
	Store storage.Catalog

	batch  int   // execution mode; see SetBatchSize
	exec   *Exec // statement controls; see SetExec
	table  storage.Engine
	name   string
	sc     storage.Iterator
	filled bool
}

// Schema returns the child schema.
func (s *Spool) Schema() Schema { return s.Child.Schema() }

// Open spills the child on first use and (re)starts a verified scan of
// the spooled rows.
func (s *Spool) Open() error {
	if !s.filled {
		if err := s.fill(); err != nil {
			return err
		}
		s.filled = true
	}
	if s.sc != nil {
		s.sc.Close()
	}
	var err error
	s.sc, err = s.table.SeqScan()
	return err
}

// fill creates the temporary table and drains the child into it. On any
// error after the table exists — a child error mid-drain, a failed insert —
// the half-filled table is dropped before the error propagates, so failed
// queries leave no orphaned __spool_* tables in the catalog (their pages
// would otherwise stay in the verified set and bloat every VerifyAll).
func (s *Spool) fill() (err error) {
	childSchema := s.Child.Schema()
	cols := make([]record.Column, 0, len(childSchema)+1)
	cols = append(cols, record.Column{Name: "__row", Type: record.TypeInt})
	for i, c := range childSchema {
		cols = append(cols, record.Column{
			Name: fmt.Sprintf("c%d_%s", i, c.Name),
			Type: c.Type,
		})
	}
	s.name = fmt.Sprintf("__spool_%d", spoolSeq.Add(1))
	// Spools are filled and replayed by one goroutine in row order; a
	// single shard keeps the scan a straight chain walk.
	t, err := s.Store.Register(storage.TableSpec{
		Name:       s.name,
		Schema:     record.NewSchema(cols...),
		PrimaryKey: 0,
		Shards:     1,
		// Statement-scoped spill target: versioning it would only pin its
		// short-lived rows, and a statement snapshot pinned before the spool
		// existed must still be allowed to replay it.
		Ephemeral: true,
	})
	if err != nil {
		return err
	}
	s.table = t
	defer func() {
		if err != nil {
			s.Store.DropTable(s.name)
			s.table = nil
		}
	}()
	if err := s.Child.Open(); err != nil {
		return err
	}
	defer s.Child.Close()
	cur := newBatchCursor(s.Child, s.batch)
	row := int64(0)
	var pending int64
	for {
		if row%ctxCheckStride == 0 {
			if err := s.exec.Err(); err != nil {
				return err
			}
			// Spooled rows land in the verified store's heap; charge them
			// like any other materialisation so a runaway spill hits the
			// budget instead of the allocator.
			if err := s.exec.ChargeBytes(pending); err != nil {
				return err
			}
			pending = 0
		}
		tup, ok, err := cur.next()
		if err != nil {
			return err
		}
		if !ok {
			return s.exec.ChargeBytes(pending)
		}
		spilled := make(record.Tuple, 0, len(tup)+1)
		spilled = append(spilled, record.Int(row))
		spilled = append(spilled, tup...)
		if err := t.Insert(spilled); err != nil {
			return err
		}
		row++
		pending += record.TupleBytes(spilled)
	}
}

// Next replays the next spooled row through the verified scan, stripping
// the row-number column.
func (s *Spool) Next() (record.Tuple, bool, error) {
	if s.sc == nil {
		return nil, false, fmt.Errorf("engine: spool not open")
	}
	tup, ok, err := s.sc.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	return tup[1:], true, nil
}

// NextBatch replays the next batch of spooled rows through the verified
// scan, stripping the row-number column in place (the scan decodes fresh
// tuples, so re-slicing is safe).
func (s *Spool) NextBatch(dst *RowBatch) (int, error) {
	if s.sc == nil {
		return 0, fmt.Errorf("engine: spool not open")
	}
	n, err := s.sc.NextBatch(dst)
	if err != nil {
		return 0, err
	}
	for i := 0; i < n; i++ {
		dst.Rows[i] = dst.Rows[i][1:]
	}
	return n, nil
}

// Close releases the current scan; the spool table persists for re-opens
// until Drop.
func (s *Spool) Close() error {
	if s.sc != nil {
		s.sc.Close()
		s.sc = nil
	}
	return nil
}

// Drop removes the temporary table from the store (and its pages from the
// verified set). Callers run it when the query finishes.
func (s *Spool) Drop() error {
	s.Close()
	if s.table == nil {
		return nil
	}
	s.table = nil
	s.filled = false
	return s.Store.DropTable(s.name)
}
