package engine

import (
	"errors"
	"fmt"
	"testing"

	"veridb/internal/enclave"
	"veridb/internal/record"
	"veridb/internal/storage"
	"veridb/internal/vmem"
)

func spillFixture(t *testing.T) (*storage.Store, *storage.Table) {
	t.Helper()
	mem, err := vmem.New(enclave.NewForTest(31), vmem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	st := storage.NewStore(mem)
	tb, err := st.CreateTable(storage.TableSpec{
		Name: "src",
		Schema: record.NewSchema(
			record.Column{Name: "id", Type: record.TypeInt},
			record.Column{Name: "payload", Type: record.TypeText},
		),
		PrimaryKey: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		if err := tb.Insert(record.Tuple{record.Int(int64(i)), record.Text(fmt.Sprintf("p%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	return st, tb
}

func TestSpoolMatchesMaterialize(t *testing.T) {
	st, tb := spillFixture(t)
	sp := &Spool{Child: NewTableScan(tb, "src"), Store: st}
	m := &Materialize{Child: NewTableScan(tb, "src")}
	for round := 0; round < 3; round++ { // replays included
		got, err := Drain(sp)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Drain(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) || len(got) != 50 {
			t.Fatalf("round %d: %d vs %d rows", round, len(got), len(want))
		}
		for i := range got {
			if len(got[i]) != len(want[i]) || got[i][0].I != want[i][0].I || got[i][1].S != want[i][1].S {
				t.Fatalf("round %d row %d: %v vs %v", round, i, got[i], want[i])
			}
		}
	}
	if err := sp.Drop(); err != nil {
		t.Fatal(err)
	}
	if err := st.Memory().VerifyAll(); err != nil {
		t.Fatalf("spool lifecycle unbalanced the sets: %v", err)
	}
}

func TestSpoolSchemaAndRowOrder(t *testing.T) {
	st, tb := spillFixture(t)
	sp := &Spool{Child: NewTableScan(tb, "src"), Store: st}
	defer sp.Drop()
	if got := sp.Schema(); len(got) != 2 || got[0].Name != "id" {
		t.Fatalf("schema %v", got)
	}
	rows, err := Drain(sp)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r[0].I != int64(i+1) {
			t.Fatalf("row %d out of spool order: %v", i, r)
		}
	}
}

// TestSpoolTamperDetected is the point of the extension: spilled
// intermediate state is itself in the verified set, so an adversary who
// corrupts a temp-table record is detected like any other tampering.
func TestSpoolTamperDetected(t *testing.T) {
	st, tb := spillFixture(t)
	sp := &Spool{Child: NewTableScan(tb, "src"), Store: st}
	if _, err := Drain(sp); err != nil {
		t.Fatal(err)
	}
	// Corrupt a record in whichever page holds spooled rows: pick any
	// record and flip a byte via the adversary interface.
	mem := st.Memory()
	tampered := false
	for _, pid := range mem.PageIDs() {
		victim := -1
		var payload []byte
		mem.Slots(pid, func(slot int, rec []byte) bool {
			victim = slot
			payload = append([]byte(nil), rec...)
			return false
		})
		if victim >= 0 && len(payload) > 0 {
			payload[len(payload)-1] ^= 0xFF
			if mem.TamperRecord(pid, victim, payload) == nil {
				mem.Get(pid, victim) // mark touched
				tampered = true
				break
			}
		}
	}
	if !tampered {
		t.Fatal("no record to tamper")
	}
	if err := mem.VerifyAll(); !errors.Is(err, vmem.ErrTamperDetected) {
		t.Fatalf("spool tampering undetected: %v", err)
	}
}

func TestSpoolOnEmptyChild(t *testing.T) {
	st, _ := spillFixture(t)
	sp := &Spool{Child: &Values{Cols: Schema{{Name: "a", Type: record.TypeInt}}}, Store: st}
	defer sp.Drop()
	rows, err := Drain(sp)
	if err != nil || len(rows) != 0 {
		t.Fatalf("empty spool: %v, %v", rows, err)
	}
}

// failAfter emits n rows, then fails. It simulates a child erroring
// mid-drain (verification failure, bad expression) while the spool's temp
// table is already half filled.
type failAfter struct {
	n    int
	seen int
}

func (f *failAfter) Schema() Schema { return Schema{{Name: "a", Type: record.TypeInt}} }
func (f *failAfter) Open() error    { f.seen = 0; return nil }
func (f *failAfter) Close() error   { return nil }
func (f *failAfter) Next() (record.Tuple, bool, error) {
	if f.seen >= f.n {
		return nil, false, errors.New("child failed mid-drain")
	}
	f.seen++
	return record.Tuple{record.Int(int64(f.seen))}, true, nil
}

// countSpoolTables counts leftover __spool_* temp tables in the catalog.
func countSpoolTables(st *storage.Store) int {
	n := 0
	for _, name := range st.TableNames() {
		if len(name) >= 8 && name[:8] == "__spool_" {
			n++
		}
	}
	return n
}

// TestSpoolCleanupOnFillError pins the error-path cleanup: a child that
// fails mid-spill must not leave an orphaned half-filled temp table behind
// (its pages would stay in the verified set and bloat every later scan).
func TestSpoolCleanupOnFillError(t *testing.T) {
	st, _ := spillFixture(t)
	for _, batch := range []int{0, 8} { // scalar and vectorized fills
		sp := &Spool{Child: &failAfter{n: 20}, Store: st, batch: batch}
		if err := sp.Open(); err == nil {
			t.Fatalf("batch=%d: spool of failing child opened cleanly", batch)
		}
		if n := countSpoolTables(st); n != 0 {
			t.Fatalf("batch=%d: %d orphaned __spool_ tables after failed fill", batch, n)
		}
		// The spool must stay reusable: a later Open retries the fill.
		if sp.table != nil || sp.filled {
			t.Fatalf("batch=%d: spool kept stale fill state", batch)
		}
	}
	// The memory must still verify: registered-then-dropped pages left
	// balanced read/write sets.
	if err := st.Memory().VerifyAll(); err != nil {
		t.Fatalf("failed fill unbalanced the sets: %v", err)
	}
}

// TestSpoolBatchedReplayMatchesScalar replays the same spool batch-wise
// and row-at-a-time; the row-number column must be stripped identically.
func TestSpoolBatchedReplayMatchesScalar(t *testing.T) {
	st, tb := spillFixture(t)
	sp := &Spool{Child: NewTableScan(tb, "src"), Store: st}
	defer sp.Drop()
	want, err := Drain(sp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DrainBatches(sp, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || len(got) != 50 {
		t.Fatalf("batched replay %d rows, scalar %d", len(got), len(want))
	}
	for i := range got {
		if len(got[i]) != 2 || got[i][0].I != want[i][0].I || got[i][1].S != want[i][1].S {
			t.Fatalf("row %d: batched %v, scalar %v", i, got[i], want[i])
		}
	}
}
