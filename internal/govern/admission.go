package govern

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// ErrOverloaded is the sentinel wrapped by every load-shedding refusal.
// Callers match it with errors.Is.
var ErrOverloaded = errors.New("govern: server overloaded")

// overloadedMarker is the machine-parseable tail appended to every
// OverloadedError message. It survives the trip through the portal's
// string-typed error field, so the wire client can recover the typed
// error (and its RetryAfter hint) with ParseOverloaded.
const overloadedMarker = "retry-after="

// OverloadedError is the typed refusal returned when admission sheds a
// statement. RetryAfter is the server's backoff hint. It unwraps to
// ErrOverloaded.
type OverloadedError struct {
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("govern: server overloaded; %s%dms", overloadedMarker, e.RetryAfter.Milliseconds())
}

func (e *OverloadedError) Unwrap() error { return ErrOverloaded }

// ParseOverloaded recovers a typed *OverloadedError from an error message
// that crossed the wire as a string. ok is false when the message does not
// carry the overload marker.
func ParseOverloaded(msg string) (*OverloadedError, bool) {
	i := strings.Index(msg, overloadedMarker)
	if i < 0 {
		return nil, false
	}
	rest := msg[i+len(overloadedMarker):]
	end := strings.IndexFunc(rest, func(r rune) bool { return r < '0' || r > '9' })
	if end == 0 {
		return nil, false
	}
	if end < 0 {
		end = len(rest)
	}
	ms, err := strconv.ParseInt(rest[:end], 10, 64)
	if err != nil {
		return nil, false
	}
	return &OverloadedError{RetryAfter: time.Duration(ms) * time.Millisecond}, true
}

// AdmissionStats is a point-in-time snapshot of the admission queue.
type AdmissionStats struct {
	Admitted int64 // statements that got a slot
	Queued   int64 // statements that waited in the queue before a slot
	Shed     int64 // statements refused with ErrOverloaded
	InFlight int64 // slots currently held
	Waiting  int64 // statements currently parked in the queue
}

// Admission bounds statement concurrency with a slot pool and a finite
// wait queue. A statement either takes a free slot immediately, waits in
// the queue up to maxWait (or its context deadline, whichever is sooner),
// or is shed with a typed *OverloadedError carrying a retry hint.
//
// A nil *Admission admits everything: Acquire returns a no-op release.
type Admission struct {
	slots    chan struct{}
	queueCap int64
	maxWait  time.Duration

	admitted atomic.Int64
	queued   atomic.Int64
	shed     atomic.Int64
	inFlight atomic.Int64
	waiting  atomic.Int64
}

// NewAdmission builds an admission gate with maxConcurrent slots, at most
// queueDepth statements waiting behind them, and maxWait as the longest a
// queued statement will park before being shed. maxConcurrent <= 0
// disables the gate (returns nil).
func NewAdmission(maxConcurrent, queueDepth int, maxWait time.Duration) *Admission {
	if maxConcurrent <= 0 {
		return nil
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	if maxWait <= 0 {
		maxWait = 50 * time.Millisecond
	}
	return &Admission{
		slots:    make(chan struct{}, maxConcurrent),
		queueCap: int64(queueDepth),
		maxWait:  maxWait,
	}
}

// Acquire claims an execution slot, waiting in the bounded queue if none
// is free. The returned release function MUST be called exactly once when
// the statement finishes. On refusal it returns a *OverloadedError whose
// RetryAfter reflects the current queue depth, or ctx.Err() if the
// caller's context died while waiting.
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	if a == nil {
		return func() {}, nil
	}
	// Fast path: free slot, no queueing.
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		a.inFlight.Add(1)
		return a.release, nil
	default:
	}
	// Queue full → shed immediately rather than park.
	if a.waiting.Load() >= a.queueCap {
		a.shed.Add(1)
		return nil, a.refusal()
	}
	a.waiting.Add(1)
	defer a.waiting.Add(-1)
	timer := time.NewTimer(a.maxWait)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		a.queued.Add(1)
		a.inFlight.Add(1)
		return a.release, nil
	case <-timer.C:
		a.shed.Add(1)
		return nil, a.refusal()
	case <-ctx.Done():
		a.shed.Add(1)
		return nil, ctx.Err()
	}
}

func (a *Admission) release() {
	a.inFlight.Add(-1)
	<-a.slots
}

// refusal builds the shed error with a retry hint scaled to how backed up
// the server is: one maxWait per queued-or-running statement ahead of the
// caller. The hint is clamped to [1ms, 2s] — the wire encoding carries
// whole milliseconds, so anything smaller would parse back as "no hint".
func (a *Admission) refusal() *OverloadedError {
	depth := a.waiting.Load() + a.inFlight.Load()
	if depth < 1 {
		depth = 1
	}
	after := time.Duration(depth) * a.maxWait
	if after < time.Millisecond {
		after = time.Millisecond
	}
	if after > 2*time.Second {
		after = 2 * time.Second
	}
	return &OverloadedError{RetryAfter: after}
}

// Stats snapshots the admission counters. Zero-valued for a nil gate.
func (a *Admission) Stats() AdmissionStats {
	if a == nil {
		return AdmissionStats{}
	}
	return AdmissionStats{
		Admitted: a.admitted.Load(),
		Queued:   a.queued.Load(),
		Shed:     a.shed.Load(),
		InFlight: a.inFlight.Load(),
		Waiting:  a.waiting.Load(),
	}
}
