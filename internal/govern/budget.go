// Package govern implements the overload-protection primitives shared by
// the server stack: a process-wide memory budget charged by the execution
// engine, the portal response cache, and MVCC version chains; and a bounded
// admission queue that sheds load with typed, retryable refusals once the
// server is past capacity.
//
// The budget is advisory bookkeeping, not an allocator: callers estimate
// bytes (see internal/record's TupleBytes) and charge/release around the
// allocations they already make. Two charging disciplines coexist:
//
//   - Reserve/Release (via Reservation): statement-scoped, failing. A
//     statement that would push usage past the limit gets a typed
//     ErrResourceExhausted before the allocation happens, and everything it
//     reserved is returned when the statement finishes.
//   - Charge/Release: unconditional, for long-lived structures (MVCC version
//     chains, response cache entries) whose growth cannot fail a committed
//     write retroactively. These elevate Used so that *future* reservations
//     observe the pressure and fail or degrade.
package govern

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrResourceExhausted is the sentinel wrapped by every budget refusal.
// Callers match it with errors.Is.
var ErrResourceExhausted = errors.New("govern: memory budget exhausted")

// ResourceExhaustedError carries the sizing context of a refused
// reservation. It unwraps to ErrResourceExhausted.
type ResourceExhaustedError struct {
	Requested int64 // bytes the caller asked for
	Used      int64 // bytes tracked at refusal time
	Limit     int64 // configured budget
}

func (e *ResourceExhaustedError) Error() string {
	return fmt.Sprintf("govern: memory budget exhausted (requested %d bytes, %d of %d in use)",
		e.Requested, e.Used, e.Limit)
}

func (e *ResourceExhaustedError) Unwrap() error { return ErrResourceExhausted }

// Budget tracks estimated memory use against a fixed limit. A nil *Budget
// is valid and tracks nothing: every method is a cheap no-op, so call sites
// never need nil guards. Limit <= 0 means "track but never refuse".
type Budget struct {
	limit     int64
	used      atomic.Int64
	highWater atomic.Int64
	denied    atomic.Int64
}

// NewBudget returns a tracker refusing reservations past limit bytes.
// limit <= 0 disables refusal but still tracks usage.
func NewBudget(limit int64) *Budget {
	return &Budget{limit: limit}
}

// Reserve attempts to claim n bytes, failing with *ResourceExhaustedError
// if the claim would exceed the limit. n <= 0 always succeeds.
func (b *Budget) Reserve(n int64) error {
	if b == nil || n <= 0 {
		return nil
	}
	for {
		cur := b.used.Load()
		next := cur + n
		if b.limit > 0 && next > b.limit {
			b.denied.Add(1)
			return &ResourceExhaustedError{Requested: n, Used: cur, Limit: b.limit}
		}
		if b.used.CompareAndSwap(cur, next) {
			b.bumpHighWater(next)
			return nil
		}
	}
}

// Charge claims n bytes unconditionally. Used for growth that cannot fail
// (a committed write's new MVCC version, a response-cache insert): the
// overshoot is visible to subsequent Reserve calls, which is how pressure
// propagates to shed-eligible work.
func (b *Budget) Charge(n int64) {
	if b == nil || n <= 0 {
		return
	}
	b.bumpHighWater(b.used.Add(n))
}

// Release returns n bytes to the budget. Releasing more than was charged
// clamps at zero rather than going negative (the estimates are inexact by
// design; a clamp keeps one bad estimate from poisoning the counter).
func (b *Budget) Release(n int64) {
	if b == nil || n <= 0 {
		return
	}
	if v := b.used.Add(-n); v < 0 {
		// Rare by construction; restore the deficit so Used stays >= 0.
		b.used.Add(-v)
	}
}

// Used reports the bytes currently tracked.
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// Limit reports the configured budget (0 if tracking-only or nil).
func (b *Budget) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.limit
}

// HighWater reports the maximum bytes ever tracked.
func (b *Budget) HighWater() int64 {
	if b == nil {
		return 0
	}
	return b.highWater.Load()
}

// Denied reports how many reservations were refused.
func (b *Budget) Denied() int64 {
	if b == nil {
		return 0
	}
	return b.denied.Load()
}

// Pressure reports Used/Limit in [0,1+]; 0 when unlimited or nil. The
// engine uses this to degrade batch sizes before reservations start
// failing outright.
func (b *Budget) Pressure() float64 {
	if b == nil || b.limit <= 0 {
		return 0
	}
	return float64(b.used.Load()) / float64(b.limit)
}

func (b *Budget) bumpHighWater(v int64) {
	for {
		hw := b.highWater.Load()
		if v <= hw || b.highWater.CompareAndSwap(hw, v) {
			return
		}
	}
}

// Reservation accumulates statement-scoped budget claims so one Release
// at statement end returns everything, even when the statement died
// mid-operator. A nil *Reservation is valid and tracks nothing.
type Reservation struct {
	b    *Budget
	held atomic.Int64
}

// NewReservation opens a statement-scoped accumulator against b (which may
// be nil).
func NewReservation(b *Budget) *Reservation {
	return &Reservation{b: b}
}

// Grow reserves n more bytes for the statement.
func (r *Reservation) Grow(n int64) error {
	if r == nil || r.b == nil || n <= 0 {
		return nil
	}
	if err := r.b.Reserve(n); err != nil {
		return err
	}
	r.held.Add(n)
	return nil
}

// Held reports the bytes this reservation currently holds.
func (r *Reservation) Held() int64 {
	if r == nil {
		return 0
	}
	return r.held.Load()
}

// Release returns every byte held. Safe to call more than once.
func (r *Reservation) Release() {
	if r == nil || r.b == nil {
		return
	}
	if n := r.held.Swap(0); n > 0 {
		r.b.Release(n)
	}
}
