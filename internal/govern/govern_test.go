package govern

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestBudgetReserveRefusesPastLimit(t *testing.T) {
	b := NewBudget(1000)
	if err := b.Reserve(600); err != nil {
		t.Fatalf("first reserve: %v", err)
	}
	err := b.Reserve(500)
	if !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("want ErrResourceExhausted, got %v", err)
	}
	var re *ResourceExhaustedError
	if !errors.As(err, &re) {
		t.Fatalf("want *ResourceExhaustedError, got %T", err)
	}
	if re.Requested != 500 || re.Used != 600 || re.Limit != 1000 {
		t.Fatalf("bad sizing context: %+v", re)
	}
	if b.Denied() != 1 {
		t.Fatalf("denied = %d, want 1", b.Denied())
	}
	b.Release(600)
	if b.Used() != 0 {
		t.Fatalf("used = %d after full release", b.Used())
	}
	if err := b.Reserve(500); err != nil {
		t.Fatalf("reserve after release: %v", err)
	}
}

func TestBudgetChargeIsUnconditionalAndVisible(t *testing.T) {
	b := NewBudget(100)
	b.Charge(150) // must not fail even though it overshoots
	if b.Used() != 150 {
		t.Fatalf("used = %d, want 150", b.Used())
	}
	if err := b.Reserve(1); !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("reserve under overshoot: want refusal, got %v", err)
	}
	if b.Pressure() <= 1 {
		t.Fatalf("pressure = %v, want > 1", b.Pressure())
	}
	b.Release(150)
	if b.Used() != 0 {
		t.Fatalf("used = %d after release", b.Used())
	}
}

func TestBudgetReleaseClampsAtZero(t *testing.T) {
	b := NewBudget(100)
	b.Charge(10)
	b.Release(50)
	if got := b.Used(); got != 0 {
		t.Fatalf("used = %d, want 0 (clamped)", got)
	}
}

func TestBudgetNilIsNoop(t *testing.T) {
	var b *Budget
	if err := b.Reserve(1 << 40); err != nil {
		t.Fatalf("nil budget reserve: %v", err)
	}
	b.Charge(1)
	b.Release(1)
	if b.Used() != 0 || b.Pressure() != 0 || b.HighWater() != 0 || b.Denied() != 0 || b.Limit() != 0 {
		t.Fatal("nil budget should report zeros")
	}
}

func TestBudgetUnlimitedTracksButNeverRefuses(t *testing.T) {
	b := NewBudget(0)
	if err := b.Reserve(1 << 40); err != nil {
		t.Fatalf("unlimited reserve: %v", err)
	}
	if b.Used() != 1<<40 {
		t.Fatalf("used = %d", b.Used())
	}
	if b.Pressure() != 0 {
		t.Fatalf("pressure = %v, want 0 for unlimited", b.Pressure())
	}
}

func TestBudgetHighWater(t *testing.T) {
	b := NewBudget(0)
	b.Charge(100)
	b.Release(100)
	b.Charge(40)
	if b.HighWater() != 100 {
		t.Fatalf("highwater = %d, want 100", b.HighWater())
	}
}

func TestBudgetConcurrentChargesBalance(t *testing.T) {
	b := NewBudget(0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				b.Charge(7)
				b.Release(7)
			}
		}()
	}
	wg.Wait()
	if b.Used() != 0 {
		t.Fatalf("used = %d after balanced ops", b.Used())
	}
}

func TestReservationReleasesEverything(t *testing.T) {
	b := NewBudget(1000)
	r := NewReservation(b)
	if err := r.Grow(300); err != nil {
		t.Fatal(err)
	}
	if err := r.Grow(200); err != nil {
		t.Fatal(err)
	}
	if r.Held() != 500 || b.Used() != 500 {
		t.Fatalf("held=%d used=%d", r.Held(), b.Used())
	}
	r.Release()
	r.Release() // idempotent
	if r.Held() != 0 || b.Used() != 0 {
		t.Fatalf("after release: held=%d used=%d", r.Held(), b.Used())
	}
}

func TestReservationGrowFailureLeavesHeldConsistent(t *testing.T) {
	b := NewBudget(100)
	r := NewReservation(b)
	if err := r.Grow(80); err != nil {
		t.Fatal(err)
	}
	if err := r.Grow(50); !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("want refusal, got %v", err)
	}
	if r.Held() != 80 {
		t.Fatalf("held = %d, want 80 (failed grow must not count)", r.Held())
	}
	r.Release()
	if b.Used() != 0 {
		t.Fatalf("used = %d", b.Used())
	}
}

func TestReservationNil(t *testing.T) {
	var r *Reservation
	if err := r.Grow(10); err != nil {
		t.Fatal(err)
	}
	r.Release()
	if r.Held() != 0 {
		t.Fatal("nil reservation holds nothing")
	}
}

func TestAdmissionImmediateSlot(t *testing.T) {
	a := NewAdmission(2, 4, 10*time.Millisecond)
	rel1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if s := a.Stats(); s.InFlight != 2 || s.Admitted != 2 {
		t.Fatalf("stats = %+v", s)
	}
	rel1()
	rel2()
	if s := a.Stats(); s.InFlight != 0 {
		t.Fatalf("stats after release = %+v", s)
	}
}

func TestAdmissionShedsWhenSaturated(t *testing.T) {
	a := NewAdmission(1, 0, 5*time.Millisecond)
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	_, err = a.Acquire(context.Background())
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("want *OverloadedError, got %T", err)
	}
	if oe.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", oe.RetryAfter)
	}
	if s := a.Stats(); s.Shed != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAdmissionQueueAdmitsAfterRelease(t *testing.T) {
	a := NewAdmission(1, 2, time.Second)
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		r2, err := a.Acquire(context.Background())
		if err == nil {
			r2()
		}
		done <- err
	}()
	// Wait until the second acquire is parked in the queue.
	deadline := time.Now().Add(time.Second)
	for a.Stats().Waiting == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	rel()
	if err := <-done; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	if s := a.Stats(); s.Queued != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAdmissionMaxWaitSheds(t *testing.T) {
	a := NewAdmission(1, 4, 10*time.Millisecond)
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	start := time.Now()
	_, err = a.Acquire(context.Background())
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("shed too fast (%v); should have waited ~maxWait", elapsed)
	}
}

func TestAdmissionContextCancelWhileQueued(t *testing.T) {
	a := NewAdmission(1, 4, time.Minute)
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx)
		done <- err
	}()
	deadline := time.Now().Add(time.Second)
	for a.Stats().Waiting == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestAdmissionNilAdmitsEverything(t *testing.T) {
	var a *Admission
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel()
	if s := a.Stats(); s != (AdmissionStats{}) {
		t.Fatalf("nil stats = %+v", s)
	}
}

func TestParseOverloadedRoundTrip(t *testing.T) {
	oe := &OverloadedError{RetryAfter: 250 * time.Millisecond}
	wrapped := "core: statement refused: " + oe.Error()
	got, ok := ParseOverloaded(wrapped)
	if !ok {
		t.Fatalf("ParseOverloaded failed on %q", wrapped)
	}
	if got.RetryAfter != 250*time.Millisecond {
		t.Fatalf("RetryAfter = %v", got.RetryAfter)
	}
	if !errors.Is(got, ErrOverloaded) {
		t.Fatal("parsed error must unwrap to ErrOverloaded")
	}
	if _, ok := ParseOverloaded("some other error"); ok {
		t.Fatal("false positive on unrelated message")
	}
	if _, ok := ParseOverloaded("retry-after=ms"); ok {
		t.Fatal("false positive on empty digits")
	}
}
