// Package index provides the untrusted in-memory B-tree that maps chain
// keys to record locations (paper §5.2: the access methods fetch
// (page, index) pairs from "an index stored in untrusted memory (the index
// does not need to be verifiable)"). VeriDB's integrity never depends on
// this structure: a wrong or malicious answer either fails the access
// method's ⟨key, nKey⟩ verification or surfaces as memory tampering. It
// only needs to be fast.
//
// Keys are byte slices compared lexicographically; callers encode chain
// keys with record.Key.Encode, whose byte order matches value order.
package index

import (
	"bytes"
	"fmt"
	"strings"
)

// Loc is a record location in the verifiable storage.
type Loc struct {
	Page uint64
	Slot int
}

// degree is the minimum child count of an internal node (order 2*degree).
const degree = 32

const (
	maxKeys = 2*degree - 1
	minKeys = degree - 1
)

type node struct {
	keys     [][]byte
	vals     []Loc
	children []*node // nil for leaves
}

func (n *node) leaf() bool { return n.children == nil }

// find returns the index of the first key >= k and whether it equals k.
func (n *node) find(k []byte) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.keys[mid], k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.keys) && bytes.Equal(n.keys[lo], k) {
		return lo, true
	}
	return lo, false
}

// BTree is a mutable ordered map from byte keys to locations. It is not
// safe for concurrent mutation; the storage layer guards each chain's index
// with its own lock.
type BTree struct {
	root *node
	size int
}

// New returns an empty tree.
func New() *BTree { return &BTree{root: &node{}} }

// Len returns the number of keys.
func (t *BTree) Len() int { return t.size }

// Get returns the location stored for key.
func (t *BTree) Get(key []byte) (Loc, bool) {
	n := t.root
	for {
		i, eq := n.find(key)
		if eq {
			return n.vals[i], true
		}
		if n.leaf() {
			return Loc{}, false
		}
		n = n.children[i]
	}
}

// Set inserts key → loc, replacing any existing entry. It reports whether
// a new key was inserted.
func (t *BTree) Set(key []byte, loc Loc) bool {
	key = append([]byte(nil), key...)
	if len(t.root.keys) == maxKeys {
		old := t.root
		t.root = &node{children: []*node{old}}
		t.root.splitChild(0)
	}
	inserted := t.root.insertNonFull(key, loc)
	if inserted {
		t.size++
	}
	return inserted
}

func (n *node) splitChild(i int) {
	child := n.children[i]
	mid := maxKeys / 2
	right := &node{
		keys: append([][]byte(nil), child.keys[mid+1:]...),
		vals: append([]Loc(nil), child.vals[mid+1:]...),
	}
	if !child.leaf() {
		right.children = append([]*node(nil), child.children[mid+1:]...)
	}
	upKey, upVal := child.keys[mid], child.vals[mid]
	child.keys = child.keys[:mid]
	child.vals = child.vals[:mid]
	if !child.leaf() {
		child.children = child.children[:mid+1]
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = upKey
	n.vals = append(n.vals, Loc{})
	copy(n.vals[i+1:], n.vals[i:])
	n.vals[i] = upVal
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

func (n *node) insertNonFull(key []byte, loc Loc) bool {
	for {
		i, eq := n.find(key)
		if eq {
			n.vals[i] = loc
			return false
		}
		if n.leaf() {
			n.keys = append(n.keys, nil)
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = key
			n.vals = append(n.vals, Loc{})
			copy(n.vals[i+1:], n.vals[i:])
			n.vals[i] = loc
			return true
		}
		if len(n.children[i].keys) == maxKeys {
			n.splitChild(i)
			if c := bytes.Compare(key, n.keys[i]); c == 0 {
				n.vals[i] = loc
				return false
			} else if c > 0 {
				i++
			}
		}
		n = n.children[i]
	}
}

// Delete removes key, reporting whether it was present.
func (t *BTree) Delete(key []byte) bool {
	if t.size == 0 {
		return false
	}
	deleted := t.root.delete(key)
	if len(t.root.keys) == 0 && !t.root.leaf() {
		t.root = t.root.children[0]
	}
	if deleted {
		t.size--
	}
	return deleted
}

// delete removes key from the subtree; the caller guarantees n has more
// than minKeys keys unless it is the root.
func (n *node) delete(key []byte) bool {
	i, eq := n.find(key)
	if n.leaf() {
		if !eq {
			return false
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		return true
	}
	if eq {
		// Replace with predecessor (from left child) or successor, pulled
		// from whichever side can afford to lose a key.
		if len(n.children[i].keys) > minKeys {
			pk, pv := n.children[i].max()
			n.keys[i], n.vals[i] = pk, pv
			return n.children[i].delete(pk)
		}
		if len(n.children[i+1].keys) > minKeys {
			sk, sv := n.children[i+1].min()
			n.keys[i], n.vals[i] = sk, sv
			return n.children[i+1].delete(sk)
		}
		n.mergeChildren(i)
		return n.children[i].delete(key)
	}
	// Descend, topping the child up first if it is minimal. Rotations and
	// merges shift separators, so the descent position is recomputed; the
	// target can never become a separator here (rotated-up keys come from
	// subtrees the target is provably outside of).
	if len(n.children[i].keys) == minKeys {
		switch {
		case i > 0 && len(n.children[i-1].keys) > minKeys:
			n.rotateRight(i)
		case i < len(n.children)-1 && len(n.children[i+1].keys) > minKeys:
			n.rotateLeft(i)
		case i > 0:
			n.mergeChildren(i - 1)
		default:
			n.mergeChildren(i)
		}
		i, _ = n.find(key)
	}
	return n.children[i].delete(key)
}

// rotateRight moves a key from child i-1 through the separator into child i.
func (n *node) rotateRight(i int) {
	left, right := n.children[i-1], n.children[i]
	right.keys = append(right.keys, nil)
	copy(right.keys[1:], right.keys)
	right.keys[0] = n.keys[i-1]
	right.vals = append(right.vals, Loc{})
	copy(right.vals[1:], right.vals)
	right.vals[0] = n.vals[i-1]
	n.keys[i-1] = left.keys[len(left.keys)-1]
	n.vals[i-1] = left.vals[len(left.vals)-1]
	left.keys = left.keys[:len(left.keys)-1]
	left.vals = left.vals[:len(left.vals)-1]
	if !left.leaf() {
		right.children = append(right.children, nil)
		copy(right.children[1:], right.children)
		right.children[0] = left.children[len(left.children)-1]
		left.children = left.children[:len(left.children)-1]
	}
}

// rotateLeft moves a key from child i+1 through the separator into child i.
func (n *node) rotateLeft(i int) {
	left, right := n.children[i], n.children[i+1]
	left.keys = append(left.keys, n.keys[i])
	left.vals = append(left.vals, n.vals[i])
	n.keys[i] = right.keys[0]
	n.vals[i] = right.vals[0]
	right.keys = append(right.keys[:0], right.keys[1:]...)
	right.vals = append(right.vals[:0], right.vals[1:]...)
	if !left.leaf() {
		left.children = append(left.children, right.children[0])
		right.children = append(right.children[:0], right.children[1:]...)
	}
}

// mergeChildren folds child i+1 and the separator key into child i.
func (n *node) mergeChildren(i int) {
	left, right := n.children[i], n.children[i+1]
	left.keys = append(left.keys, n.keys[i])
	left.keys = append(left.keys, right.keys...)
	left.vals = append(left.vals, n.vals[i])
	left.vals = append(left.vals, right.vals...)
	left.children = append(left.children, right.children...)
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

func (n *node) min() ([]byte, Loc) {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.keys[0], n.vals[0]
}

func (n *node) max() ([]byte, Loc) {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.keys[len(n.keys)-1], n.vals[len(n.vals)-1]
}

// Min returns the smallest key.
func (t *BTree) Min() ([]byte, Loc, bool) {
	if t.size == 0 {
		return nil, Loc{}, false
	}
	k, v := t.root.min()
	return k, v, true
}

// Max returns the largest key.
func (t *BTree) Max() ([]byte, Loc, bool) {
	if t.size == 0 {
		return nil, Loc{}, false
	}
	k, v := t.root.max()
	return k, v, true
}

// SeekLE returns the greatest entry with key ≤ target. This is the lookup
// the verified access methods build on: it lands on the record whose
// ⟨key, nKey⟩ interval covers the target (§5.2 index search).
func (t *BTree) SeekLE(target []byte) ([]byte, Loc, bool) {
	var bk []byte
	var bv Loc
	found := false
	n := t.root
	for {
		i, eq := n.find(target)
		if eq {
			return n.keys[i], n.vals[i], true
		}
		if i > 0 {
			bk, bv = n.keys[i-1], n.vals[i-1]
			found = true
		}
		if n.leaf() {
			return bk, bv, found
		}
		n = n.children[i]
	}
}

// SeekLT returns the greatest entry with key strictly < target. Chain
// maintenance uses it to find a record's predecessor.
func (t *BTree) SeekLT(target []byte) ([]byte, Loc, bool) {
	var bk []byte
	var bv Loc
	found := false
	n := t.root
	for {
		i, eq := n.find(target)
		if eq {
			// Entry i equals target: predecessor is the max of child i, or
			// the best seen so far for leaves.
			if !n.leaf() {
				k, v := n.children[i].max()
				return k, v, true
			}
			if i > 0 {
				return n.keys[i-1], n.vals[i-1], true
			}
			return bk, bv, found
		}
		if i > 0 {
			bk, bv = n.keys[i-1], n.vals[i-1]
			found = true
		}
		if n.leaf() {
			return bk, bv, found
		}
		n = n.children[i]
	}
}

// SeekGE returns the smallest entry with key ≥ target.
func (t *BTree) SeekGE(target []byte) ([]byte, Loc, bool) {
	var bk []byte
	var bv Loc
	found := false
	n := t.root
	for {
		i, eq := n.find(target)
		if eq {
			return n.keys[i], n.vals[i], true
		}
		if i < len(n.keys) {
			bk, bv = n.keys[i], n.vals[i]
			found = true
		}
		if n.leaf() {
			return bk, bv, found
		}
		n = n.children[i]
	}
}

// Ascend visits entries with key ≥ from in ascending order until fn
// returns false. A nil from starts at the minimum.
func (t *BTree) Ascend(from []byte, fn func(key []byte, loc Loc) bool) {
	t.root.ascend(from, fn)
}

func (n *node) ascend(from []byte, fn func([]byte, Loc) bool) bool {
	i := 0
	if from != nil {
		i, _ = n.find(from)
	}
	for ; i < len(n.keys); i++ {
		if !n.leaf() {
			if !n.children[i].ascend(from, fn) {
				return false
			}
		}
		if from == nil || bytes.Compare(n.keys[i], from) >= 0 {
			if !fn(n.keys[i], n.vals[i]) {
				return false
			}
		}
		from = nil // after the first qualifying position, visit everything
	}
	if !n.leaf() {
		return n.children[len(n.keys)].ascend(from, fn)
	}
	return true
}

// check validates B-tree invariants; tests use it.
func (t *BTree) check() error {
	var prev []byte
	first := true
	count := 0
	var walk func(n *node, root bool, depth int) (int, error)
	walk = func(n *node, root bool, depth int) (int, error) {
		if !root && len(n.keys) < minKeys {
			return 0, fmt.Errorf("node underflow: %d keys", len(n.keys))
		}
		if len(n.keys) > maxKeys {
			return 0, fmt.Errorf("node overflow: %d keys", len(n.keys))
		}
		if len(n.keys) != len(n.vals) {
			return 0, fmt.Errorf("keys/vals mismatch")
		}
		if n.leaf() {
			for _, k := range n.keys {
				if !first && bytes.Compare(prev, k) >= 0 {
					return 0, fmt.Errorf("order violation at %x", k)
				}
				prev, first = k, false
				count++
			}
			return depth, nil
		}
		if len(n.children) != len(n.keys)+1 {
			return 0, fmt.Errorf("children count %d for %d keys", len(n.children), len(n.keys))
		}
		leafDepth := -1
		for i, c := range n.children {
			d, err := walk(c, false, depth+1)
			if err != nil {
				return 0, err
			}
			if leafDepth == -1 {
				leafDepth = d
			} else if d != leafDepth {
				return 0, fmt.Errorf("unbalanced: leaf depths %d and %d", leafDepth, d)
			}
			if i < len(n.keys) {
				if !first && bytes.Compare(prev, n.keys[i]) >= 0 {
					return 0, fmt.Errorf("order violation at separator %x", n.keys[i])
				}
				prev, first = n.keys[i], false
				count++
			}
		}
		return leafDepth, nil
	}
	if _, err := walk(t.root, true, 0); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("size %d but %d keys found", t.size, count)
	}
	return nil
}

// String renders a compact structural dump for debugging.
func (t *BTree) String() string {
	var b strings.Builder
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		fmt.Fprintf(&b, "%s%d keys\n", strings.Repeat("  ", depth), len(n.keys))
		for _, c := range n.children {
			walk(c, depth+1)
		}
	}
	walk(t.root, 0)
	return b.String()
}
