package index

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func k(i int) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return b[:]
}

func TestSetGetBasic(t *testing.T) {
	tr := New()
	if _, ok := tr.Get(k(1)); ok {
		t.Fatal("empty tree returned a value")
	}
	if !tr.Set(k(1), Loc{Page: 10, Slot: 2}) {
		t.Fatal("fresh insert reported as replacement")
	}
	got, ok := tr.Get(k(1))
	if !ok || got != (Loc{Page: 10, Slot: 2}) {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if tr.Set(k(1), Loc{Page: 11, Slot: 3}) {
		t.Fatal("replacement reported as fresh insert")
	}
	got, _ = tr.Get(k(1))
	if got != (Loc{Page: 11, Slot: 3}) {
		t.Fatalf("replacement lost: %+v", got)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestSetCopiesKey(t *testing.T) {
	tr := New()
	key := []byte("mutable")
	tr.Set(key, Loc{Page: 1})
	key[0] = 'X'
	if _, ok := tr.Get([]byte("mutable")); !ok {
		t.Fatal("tree aliased the caller's key slice")
	}
}

func TestLargeSequentialAndReverse(t *testing.T) {
	for _, dir := range []string{"fwd", "rev"} {
		tr := New()
		n := 10000
		for i := 0; i < n; i++ {
			j := i
			if dir == "rev" {
				j = n - 1 - i
			}
			tr.Set(k(j), Loc{Page: uint64(j)})
		}
		if tr.Len() != n {
			t.Fatalf("%s: Len = %d", dir, tr.Len())
		}
		if err := tr.check(); err != nil {
			t.Fatalf("%s: invariants: %v", dir, err)
		}
		for i := 0; i < n; i++ {
			got, ok := tr.Get(k(i))
			if !ok || got.Page != uint64(i) {
				t.Fatalf("%s: Get(%d) = %+v, %v", dir, i, got, ok)
			}
		}
	}
}

func TestDeleteEverything(t *testing.T) {
	tr := New()
	n := 5000
	perm := rand.New(rand.NewSource(3)).Perm(n)
	for _, i := range perm {
		tr.Set(k(i), Loc{Page: uint64(i)})
	}
	perm2 := rand.New(rand.NewSource(4)).Perm(n)
	for step, i := range perm2 {
		if !tr.Delete(k(i)) {
			t.Fatalf("Delete(%d) failed", i)
		}
		if step%500 == 0 {
			if err := tr.check(); err != nil {
				t.Fatalf("after %d deletes: %v", step+1, err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	if tr.Delete(k(0)) {
		t.Fatal("delete from empty tree succeeded")
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Set(k(i*2), Loc{})
	}
	if tr.Delete(k(1)) {
		t.Fatal("deleted a key that was never inserted")
	}
	if tr.Len() != 100 {
		t.Fatalf("Len changed: %d", tr.Len())
	}
}

func TestSeekLE(t *testing.T) {
	tr := New()
	for i := 10; i <= 100; i += 10 {
		tr.Set(k(i), Loc{Page: uint64(i)})
	}
	cases := []struct {
		target int
		want   int
		ok     bool
	}{
		{5, 0, false},  // below minimum
		{10, 10, true}, // exact minimum
		{15, 10, true}, // between
		{100, 100, true},
		{999, 100, true}, // above maximum
		{55, 50, true},
	}
	for _, c := range cases {
		key, loc, ok := tr.SeekLE(k(c.target))
		if ok != c.ok {
			t.Fatalf("SeekLE(%d) ok = %v", c.target, ok)
		}
		if ok && (!bytes.Equal(key, k(c.want)) || loc.Page != uint64(c.want)) {
			t.Fatalf("SeekLE(%d) = %x/%d, want %d", c.target, key, loc.Page, c.want)
		}
	}
}

func TestSeekLT(t *testing.T) {
	tr := New()
	for i := 10; i <= 100; i += 10 {
		tr.Set(k(i), Loc{Page: uint64(i)})
	}
	cases := []struct {
		target int
		want   int
		ok     bool
	}{
		{10, 0, false}, // nothing strictly below the minimum
		{11, 10, true},
		{20, 10, true}, // exact key: strict predecessor
		{55, 50, true},
		{999, 100, true},
	}
	for _, c := range cases {
		key, _, ok := tr.SeekLT(k(c.target))
		if ok != c.ok {
			t.Fatalf("SeekLT(%d) ok = %v", c.target, ok)
		}
		if ok && !bytes.Equal(key, k(c.want)) {
			t.Fatalf("SeekLT(%d) = %x, want %d", c.target, key, c.want)
		}
	}
	// Deep-tree exact-key predecessor: exercise the internal-node path.
	big := New()
	for i := 0; i < 5000; i++ {
		big.Set(k(i*2), Loc{})
	}
	for _, probe := range []int{2, 1000, 4444, 9998} {
		key, _, ok := big.SeekLT(k(probe))
		want := (probe - 1) / 2 * 2
		if probe%2 == 0 {
			want = probe - 2
		}
		if !ok || !bytes.Equal(key, k(want)) {
			t.Fatalf("SeekLT(%d) = %x, %v; want %d", probe, key, ok, want)
		}
	}
}

func TestSeekGE(t *testing.T) {
	tr := New()
	for i := 10; i <= 100; i += 10 {
		tr.Set(k(i), Loc{Page: uint64(i)})
	}
	cases := []struct {
		target int
		want   int
		ok     bool
	}{
		{5, 10, true},
		{10, 10, true},
		{15, 20, true},
		{100, 100, true},
		{101, 0, false},
	}
	for _, c := range cases {
		key, _, ok := tr.SeekGE(k(c.target))
		if ok != c.ok {
			t.Fatalf("SeekGE(%d) ok = %v", c.target, ok)
		}
		if ok && !bytes.Equal(key, k(c.want)) {
			t.Fatalf("SeekGE(%d) = %x, want %d", c.target, key, c.want)
		}
	}
}

func TestMinMax(t *testing.T) {
	tr := New()
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatal("Max on empty tree")
	}
	for _, i := range rand.New(rand.NewSource(9)).Perm(1000) {
		tr.Set(k(i), Loc{})
	}
	mink, _, _ := tr.Min()
	maxk, _, _ := tr.Max()
	if !bytes.Equal(mink, k(0)) || !bytes.Equal(maxk, k(999)) {
		t.Fatalf("Min/Max = %x/%x", mink, maxk)
	}
}

func TestAscendFull(t *testing.T) {
	tr := New()
	n := 3000
	for _, i := range rand.New(rand.NewSource(1)).Perm(n) {
		tr.Set(k(i), Loc{Page: uint64(i)})
	}
	var visited []int
	tr.Ascend(nil, func(key []byte, loc Loc) bool {
		visited = append(visited, int(binary.BigEndian.Uint64(key)))
		return true
	})
	if len(visited) != n {
		t.Fatalf("visited %d of %d", len(visited), n)
	}
	if !sort.IntsAreSorted(visited) {
		t.Fatal("Ascend out of order")
	}
}

func TestAscendFrom(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Set(k(i*2), Loc{}) // evens only
	}
	var visited []int
	tr.Ascend(k(51), func(key []byte, _ Loc) bool {
		visited = append(visited, int(binary.BigEndian.Uint64(key)))
		return len(visited) < 5
	})
	want := []int{52, 54, 56, 58, 60}
	if fmt.Sprint(visited) != fmt.Sprint(want) {
		t.Fatalf("Ascend from 51 = %v, want %v", visited, want)
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Set(k(i), Loc{})
	}
	count := 0
	tr.Ascend(nil, func([]byte, Loc) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("early stop visited %d", count)
	}
}

// TestAgainstShadowMap drives random operations against a sorted shadow and
// checks every query answer plus structural invariants.
func TestAgainstShadowMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		shadow := map[string]Loc{}
		for op := 0; op < 2000; op++ {
			key := k(rng.Intn(500))
			switch rng.Intn(3) {
			case 0:
				loc := Loc{Page: rng.Uint64(), Slot: rng.Intn(100)}
				tr.Set(key, loc)
				shadow[string(key)] = loc
			case 1:
				got := tr.Delete(key)
				_, want := shadow[string(key)]
				if got != want {
					return false
				}
				delete(shadow, string(key))
			case 2:
				got, ok := tr.Get(key)
				want, wok := shadow[string(key)]
				if ok != wok || (ok && got != want) {
					return false
				}
			}
		}
		if tr.Len() != len(shadow) {
			return false
		}
		if err := tr.check(); err != nil {
			return false
		}
		// SeekLE agreement on every possible target.
		keys := make([]string, 0, len(shadow))
		for s := range shadow {
			keys = append(keys, s)
		}
		sort.Strings(keys)
		for probe := 0; probe < 520; probe += 7 {
			target := k(probe)
			i := sort.SearchStrings(keys, string(target))
			var want string
			haveWant := false
			if i < len(keys) && keys[i] == string(target) {
				want, haveWant = keys[i], true
			} else if i > 0 {
				want, haveWant = keys[i-1], true
			}
			gk, _, ok := tr.SeekLE(target)
			if ok != haveWant || (ok && string(gk) != want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestVariableLengthKeys(t *testing.T) {
	tr := New()
	words := []string{"", "a", "aa", "ab", "b", "ba", "z", "zz", "zzz"}
	for i, w := range words {
		tr.Set([]byte(w), Loc{Slot: i})
	}
	var got []string
	tr.Ascend(nil, func(key []byte, _ Loc) bool {
		got = append(got, string(key))
		return true
	})
	if fmt.Sprint(got) != fmt.Sprint(words) {
		t.Fatalf("order %v", got)
	}
	gk, _, ok := tr.SeekLE([]byte("aab"))
	if !ok || string(gk) != "aa" {
		t.Fatalf("SeekLE(aab) = %q, %v", gk, ok)
	}
}

func BenchmarkSet(b *testing.B) {
	tr := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Set(k(i), Loc{Page: uint64(i)})
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New()
	for i := 0; i < 1_000_000; i++ {
		tr.Set(k(i), Loc{Page: uint64(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(k(i % 1_000_000))
	}
}

func BenchmarkSeekLE(b *testing.B) {
	tr := New()
	for i := 0; i < 1_000_000; i++ {
		tr.Set(k(i*2), Loc{Page: uint64(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.SeekLE(k(i % 2_000_000))
	}
}
