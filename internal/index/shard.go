package index

// Shard routing. A sharded table keeps one B-tree family per shard; the
// storage router picks the family by hashing the encoded chain key. The
// hash lives in this package because it is part of the same untrusted
// location-lookup machinery: a wrong shard assignment is caught exactly
// like a wrong (page, index) pair — the access method's ⟨key, nKey⟩
// verification fails in the shard that was consulted, because that shard's
// own ⊥/⊤-anchored chain proves the key absent there while the insert-time
// routing (which uses the same deterministic function inside the enclave)
// guarantees the key could live nowhere else.

// fnvOffset and fnvPrime are the FNV-1a 64-bit parameters.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// Fingerprint hashes an encoded key with FNV-1a (64-bit). Deterministic
// across processes and runs: shard routing must be a pure function of the
// key so recovery re-routes every record identically.
func Fingerprint(key []byte) uint64 {
	h := uint64(fnvOffset)
	for _, b := range key {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}

// ShardOf maps an encoded key to one of n shards. n must be ≥ 1.
func ShardOf(key []byte, n int) int {
	if n <= 1 {
		return 0
	}
	return int(Fingerprint(key) % uint64(n))
}
