// Package mbtree implements the MB-Tree (Merkle B+-tree, Li et al.,
// SIGMOD 2006) that the paper uses as the representative MHT-based
// comparison system (§6.2). Every node carries the hash of its subtree;
// the client trusts only the root hash. Reads return a verification
// object (VO) — the target leaf's content plus the separator keys and
// child hashes along the path — from which the client rebuilds the root.
// Writes rewrite the hashes on the root-to-leaf path.
//
// The structural property the paper's comparison hinges on is retained
// deliberately: every operation, read or write, runs under one global
// lock, because each read's VO must be consistent with the current root
// hash and each write replaces that root ("the root hash is essentially a
// concurrency bottleneck", §1).
package mbtree

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
)

// Hash is a subtree digest.
type Hash [sha256.Size]byte

// DefaultFanout is the default maximum number of keys per node.
const DefaultFanout = 64

// Tree is a Merkle B+-tree.
type Tree struct {
	mu      sync.Mutex // the global root-hash lock
	fanout  int
	root    *node
	size    int
	hashOps uint64 // node rehash count (overhead metric)
}

type node struct {
	leaf     bool
	keys     [][]byte
	vals     [][]byte // leaves only
	ehash    []Hash   // leaves only: per-entry H(key ‖ val)
	children []*node  // internal only; len(keys)+1
	hash     Hash
}

// New builds an empty tree. fanout ≤ 3 falls back to DefaultFanout.
func New(fanout int) *Tree {
	if fanout <= 3 {
		fanout = DefaultFanout
	}
	t := &Tree{fanout: fanout, root: &node{leaf: true}}
	t.rehash(t.root)
	return t
}

// Len returns the number of records.
func (t *Tree) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.size
}

// Root returns the current root hash; the client records it after every
// acknowledged write.
func (t *Tree) Root() Hash {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root.hash
}

// HashOps returns how many node hashes have been computed (both for VOs
// and for write-path maintenance).
func (t *Tree) HashOps() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hashOps
}

func writeCounted(h interface{ Write([]byte) (int, error) }, b []byte) {
	var n [4]byte
	l := len(b)
	n[0], n[1], n[2], n[3] = byte(l), byte(l>>8), byte(l>>16), byte(l>>24)
	h.Write(n[:])
	h.Write(b)
}

// entryHash digests one record: the leaf stores these per entry, so point
// VOs ship 32-byte hashes instead of full values and the verifier only
// re-hashes the one record it received.
func entryHash(key, val []byte) Hash {
	h := sha256.New()
	h.Write([]byte{0x02})
	writeCounted(h, key)
	writeCounted(h, val)
	var out Hash
	h.Sum(out[:0])
	return out
}

// hashLeaf digests a leaf: its keys and its per-entry hashes.
func hashLeaf(keys [][]byte, ehash []Hash) Hash {
	h := sha256.New()
	h.Write([]byte{0x00})
	for i := range keys {
		writeCounted(h, keys[i])
		h.Write(ehash[i][:])
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

// hashInternal digests an internal node: separators and child hashes.
func hashInternal(keys [][]byte, childHashes []Hash) Hash {
	h := sha256.New()
	h.Write([]byte{0x01})
	for _, k := range keys {
		writeCounted(h, k)
	}
	for _, c := range childHashes {
		h.Write(c[:])
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

func (t *Tree) rehash(n *node) {
	t.hashOps++
	if n.leaf {
		n.hash = hashLeaf(n.keys, n.ehash)
		return
	}
	hs := make([]Hash, len(n.children))
	for i, c := range n.children {
		hs[i] = c.hash
	}
	n.hash = hashInternal(n.keys, hs)
}

// findChild returns the child index key descends into: the first separator
// strictly greater than key.
func (n *node) findChild(key []byte) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.keys[mid], key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// leafPos returns the position of key in a leaf and whether it is present.
func (n *node) leafPos(key []byte) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.keys) && bytes.Equal(n.keys[lo], key)
}

// PathStep is one internal node on a VO path, top-down.
type PathStep struct {
	Keys        [][]byte
	ChildHashes []Hash
	ChildIdx    int
}

// Proof is the verification object for a point read: the target leaf's
// keys and per-entry hashes plus the path. It proves presence (key in
// LeafKeys, with the returned value matching its entry hash) and absence
// (key falls in this leaf's range but not among its keys) alike.
type Proof struct {
	LeafKeys   [][]byte
	LeafHashes []Hash
	Path       []PathStep // root first
}

// Get returns the value for key together with its VO.
func (t *Tree) Get(key []byte) ([]byte, Proof, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var proof Proof
	n := t.root
	for !n.leaf {
		i := n.findChild(key)
		step := PathStep{
			Keys:        append([][]byte(nil), n.keys...),
			ChildHashes: make([]Hash, len(n.children)),
			ChildIdx:    i,
		}
		for j, c := range n.children {
			step.ChildHashes[j] = c.hash
		}
		proof.Path = append(proof.Path, step)
		n = n.children[i]
	}
	proof.LeafKeys = append([][]byte(nil), n.keys...)
	proof.LeafHashes = append([]Hash(nil), n.ehash...)
	i, found := n.leafPos(key)
	if !found {
		return nil, proof, false
	}
	return append([]byte(nil), n.vals[i]...), proof, true
}

// Verify checks a Get result against a trusted root hash. found/val must
// match what the server claimed; it returns an error when the VO does not
// authenticate that claim.
func Verify(root Hash, key, val []byte, found bool, proof Proof) error {
	if len(proof.LeafKeys) != len(proof.LeafHashes) {
		return errors.New("mbtree: malformed leaf proof")
	}
	cur := hashLeaf(proof.LeafKeys, proof.LeafHashes)
	for i := len(proof.Path) - 1; i >= 0; i-- {
		st := proof.Path[i]
		if st.ChildIdx < 0 || st.ChildIdx >= len(st.ChildHashes) || len(st.ChildHashes) != len(st.Keys)+1 {
			return errors.New("mbtree: malformed path step")
		}
		if st.ChildHashes[st.ChildIdx] != cur {
			return errors.New("mbtree: path hash mismatch")
		}
		// The separators must route key into this child, otherwise the
		// leaf shown is not the leaf responsible for key and an absence
		// claim would be unsound.
		if st.ChildIdx > 0 && bytes.Compare(st.Keys[st.ChildIdx-1], key) > 0 {
			return errors.New("mbtree: path does not cover key (left separator)")
		}
		if st.ChildIdx < len(st.Keys) && bytes.Compare(st.Keys[st.ChildIdx], key) <= 0 {
			return errors.New("mbtree: path does not cover key (right separator)")
		}
		cur = hashInternal(st.Keys, st.ChildHashes)
	}
	if cur != root {
		return errors.New("mbtree: root hash mismatch")
	}
	for i, k := range proof.LeafKeys {
		if bytes.Equal(k, key) {
			if !found {
				return errors.New("mbtree: server claimed absence for a present key")
			}
			if entryHash(key, val) != proof.LeafHashes[i] {
				return errors.New("mbtree: value does not match authenticated leaf")
			}
			return nil
		}
	}
	if found {
		return errors.New("mbtree: server claimed presence for an absent key")
	}
	return nil
}

// Insert adds or replaces key → val and returns the new root hash.
func (t *Tree) Insert(key, val []byte) Hash {
	key = append([]byte(nil), key...)
	val = append([]byte(nil), val...)
	t.mu.Lock()
	defer t.mu.Unlock()
	promoted, right, added := t.insert(t.root, key, val)
	if right != nil {
		newRoot := &node{
			keys:     [][]byte{promoted},
			children: []*node{t.root, right},
		}
		t.rehash(newRoot)
		t.root = newRoot
	}
	if added {
		t.size++
	}
	return t.root.hash
}

func (t *Tree) insert(n *node, key, val []byte) (promoted []byte, right *node, added bool) {
	if n.leaf {
		i, found := n.leafPos(key)
		if found {
			n.vals[i] = val
			n.ehash[i] = entryHash(key, val)
			t.hashOps++
		} else {
			n.keys = append(n.keys, nil)
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = key
			n.vals = append(n.vals, nil)
			copy(n.vals[i+1:], n.vals[i:])
			n.vals[i] = val
			n.ehash = append(n.ehash, Hash{})
			copy(n.ehash[i+1:], n.ehash[i:])
			n.ehash[i] = entryHash(key, val)
			t.hashOps++
			added = true
		}
		if len(n.keys) > t.fanout {
			mid := len(n.keys) / 2
			r := &node{
				leaf:  true,
				keys:  append([][]byte(nil), n.keys[mid:]...),
				vals:  append([][]byte(nil), n.vals[mid:]...),
				ehash: append([]Hash(nil), n.ehash[mid:]...),
			}
			n.keys = n.keys[:mid]
			n.vals = n.vals[:mid]
			n.ehash = n.ehash[:mid]
			t.rehash(n)
			t.rehash(r)
			return r.keys[0], r, added
		}
		t.rehash(n)
		return nil, nil, added
	}
	i := n.findChild(key)
	promoted, right, added = t.insert(n.children[i], key, val)
	if right != nil {
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = promoted
		n.children = append(n.children, nil)
		copy(n.children[i+2:], n.children[i+1:])
		n.children[i+1] = right
		if len(n.keys) > t.fanout {
			mid := len(n.keys) / 2
			upKey := n.keys[mid]
			r := &node{
				keys:     append([][]byte(nil), n.keys[mid+1:]...),
				children: append([]*node(nil), n.children[mid+1:]...),
			}
			n.keys = n.keys[:mid]
			n.children = n.children[:mid+1]
			t.rehash(n)
			t.rehash(r)
			return upKey, r, added
		}
	}
	t.rehash(n)
	return nil, nil, added
}

// Delete removes key, reporting presence, and returns the new root hash.
// Leaves are not rebalanced (lazy deletion): the hash path is rewritten,
// which is the cost component the comparison measures; sparse leaves only
// waste space.
func (t *Tree) Delete(key []byte) (Hash, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	removed := t.delete(t.root, key)
	if removed {
		t.size--
	}
	return t.root.hash, removed
}

func (t *Tree) delete(n *node, key []byte) bool {
	if n.leaf {
		i, found := n.leafPos(key)
		if !found {
			return false
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		n.ehash = append(n.ehash[:i], n.ehash[i+1:]...)
		t.rehash(n)
		return true
	}
	i := n.findChild(key)
	removed := t.delete(n.children[i], key)
	if removed {
		t.rehash(n)
	}
	return removed
}

// RangePair is one record returned by a range scan.
type RangePair struct {
	Key, Val []byte
}

// RangeLeaf is one leaf in a range VO: the point-proof shape plus the
// values of the in-range entries (out-of-range entries are covered by
// their entry hashes alone).
type RangeLeaf struct {
	Proof
	Vals [][]byte // parallel to LeafKeys; nil for out-of-range entries
}

// RangeProof authenticates a range scan: one VO per leaf in the contiguous
// span of leaves from the one responsible for lo to the one responsible
// for hi. The verifier checks each leaf against the root, that the first
// and last leaves cover the range endpoints, and that consecutive leaf
// paths are structurally adjacent (no leaf skipped).
type RangeProof struct {
	Leaves []RangeLeaf
}

// Range returns all records with lo ≤ key ≤ hi plus a completeness proof.
func (t *Tree) Range(lo, hi []byte) ([]RangePair, RangeProof, error) {
	if bytes.Compare(lo, hi) > 0 {
		return nil, RangeProof{}, fmt.Errorf("mbtree: inverted range")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	first, _ := t.peekLeaf(lo)
	last, _ := t.peekLeaf(hi)
	var proof RangeProof
	var out []RangePair
	collecting := false
	done := false
	var steps []PathStep
	var dfs func(n *node)
	dfs = func(n *node) {
		if done {
			return
		}
		if n.leaf {
			if n == first {
				collecting = true
			}
			if collecting {
				lp := RangeLeaf{Proof: Proof{
					LeafKeys:   append([][]byte(nil), n.keys...),
					LeafHashes: append([]Hash(nil), n.ehash...),
					Path:       append([]PathStep(nil), steps...),
				}}
				lp.Vals = make([][]byte, len(n.keys))
				for i, k := range n.keys {
					if bytes.Compare(k, lo) >= 0 && bytes.Compare(k, hi) <= 0 {
						v := append([]byte(nil), n.vals[i]...)
						lp.Vals[i] = v
						out = append(out, RangePair{
							Key: append([]byte(nil), k...),
							Val: v,
						})
					}
				}
				proof.Leaves = append(proof.Leaves, lp)
			}
			if n == last {
				done = true
			}
			return
		}
		for i, c := range n.children {
			st := PathStep{
				Keys:        append([][]byte(nil), n.keys...),
				ChildHashes: make([]Hash, len(n.children)),
				ChildIdx:    i,
			}
			for j, ch := range n.children {
				st.ChildHashes[j] = ch.hash
			}
			steps = append(steps, st)
			dfs(c)
			steps = steps[:len(steps)-1]
			if done {
				return
			}
		}
	}
	dfs(t.root)
	return out, proof, nil
}

func (t *Tree) peekLeaf(key []byte) (*node, int) {
	n := t.root
	for !n.leaf {
		n = n.children[n.findChild(key)]
	}
	i, _ := n.leafPos(key)
	return n, i
}

// verifyPath checks a proof's hash chain against the root without any
// coverage or claim checks.
func verifyPath(root Hash, proof Proof) error {
	if len(proof.LeafKeys) != len(proof.LeafHashes) {
		return errors.New("mbtree: malformed leaf proof")
	}
	cur := hashLeaf(proof.LeafKeys, proof.LeafHashes)
	for i := len(proof.Path) - 1; i >= 0; i-- {
		st := proof.Path[i]
		if st.ChildIdx < 0 || st.ChildIdx >= len(st.ChildHashes) || len(st.ChildHashes) != len(st.Keys)+1 {
			return errors.New("mbtree: malformed path step")
		}
		if st.ChildHashes[st.ChildIdx] != cur {
			return errors.New("mbtree: path hash mismatch")
		}
		cur = hashInternal(st.Keys, st.ChildHashes)
	}
	if cur != root {
		return errors.New("mbtree: root hash mismatch")
	}
	return nil
}

// covers checks the separator conditions routing key into the proof's leaf.
func covers(proof Proof, key []byte) error {
	for _, st := range proof.Path {
		if st.ChildIdx > 0 && bytes.Compare(st.Keys[st.ChildIdx-1], key) > 0 {
			return errors.New("mbtree: path does not cover key (left separator)")
		}
		if st.ChildIdx < len(st.Keys) && bytes.Compare(st.Keys[st.ChildIdx], key) <= 0 {
			return errors.New("mbtree: path does not cover key (right separator)")
		}
	}
	return nil
}

// sameStepNode reports whether two path steps describe the same node.
func sameStepNode(a, b PathStep) bool {
	if len(a.Keys) != len(b.Keys) || len(a.ChildHashes) != len(b.ChildHashes) {
		return false
	}
	for i := range a.Keys {
		if !bytes.Equal(a.Keys[i], b.Keys[i]) {
			return false
		}
	}
	for i := range a.ChildHashes {
		if a.ChildHashes[i] != b.ChildHashes[i] {
			return false
		}
	}
	return true
}

// adjacent checks that q's leaf is the immediate right neighbour of p's:
// the paths share nodes above some divergence level, diverge by exactly
// one child position there, then hug the right and left spines below.
func adjacent(p, q Proof) error {
	if len(p.Path) != len(q.Path) {
		return errors.New("mbtree: adjacent leaves at different depths")
	}
	div := -1
	for i := range p.Path {
		if !sameStepNode(p.Path[i], q.Path[i]) || p.Path[i].ChildIdx != q.Path[i].ChildIdx {
			div = i
			break
		}
	}
	if div == -1 {
		return errors.New("mbtree: duplicate leaf in range proof")
	}
	if !sameStepNode(p.Path[div], q.Path[div]) || q.Path[div].ChildIdx != p.Path[div].ChildIdx+1 {
		return errors.New("mbtree: leaves not adjacent at divergence")
	}
	for i := div + 1; i < len(p.Path); i++ {
		if p.Path[i].ChildIdx != len(p.Path[i].ChildHashes)-1 {
			return errors.New("mbtree: left path not on right spine below divergence")
		}
		if q.Path[i].ChildIdx != 0 {
			return errors.New("mbtree: right path not on left spine below divergence")
		}
	}
	return nil
}

// VerifyRange checks a range result: every leaf must authenticate against
// the root, the first and last leaves must cover the range endpoints,
// consecutive leaves must be adjacent, and the returned pairs must equal
// the in-range content of the authenticated leaves.
func VerifyRange(root Hash, lo, hi []byte, pairs []RangePair, proof RangeProof) error {
	if len(proof.Leaves) == 0 {
		return errors.New("mbtree: empty range proof")
	}
	var collected []RangePair
	for li, lp := range proof.Leaves {
		if err := verifyPath(root, lp.Proof); err != nil {
			return fmt.Errorf("mbtree: leaf %d: %w", li, err)
		}
		if li > 0 {
			if err := adjacent(proof.Leaves[li-1].Proof, lp.Proof); err != nil {
				return fmt.Errorf("mbtree: leaves %d,%d: %w", li-1, li, err)
			}
		}
		if len(lp.Vals) != len(lp.LeafKeys) {
			return fmt.Errorf("mbtree: leaf %d: values not parallel to keys", li)
		}
		for i, k := range lp.LeafKeys {
			if bytes.Compare(k, lo) >= 0 && bytes.Compare(k, hi) <= 0 {
				if lp.Vals[i] == nil {
					return fmt.Errorf("mbtree: leaf %d: in-range value omitted", li)
				}
				// The returned value must match the authenticated entry.
				if entryHash(k, lp.Vals[i]) != lp.LeafHashes[i] {
					return fmt.Errorf("mbtree: leaf %d: value does not match entry hash", li)
				}
				collected = append(collected, RangePair{Key: k, Val: lp.Vals[i]})
			}
		}
	}
	if err := covers(proof.Leaves[0].Proof, lo); err != nil {
		return fmt.Errorf("mbtree: range start: %w", err)
	}
	if err := covers(proof.Leaves[len(proof.Leaves)-1].Proof, hi); err != nil {
		return fmt.Errorf("mbtree: range end: %w", err)
	}
	if len(collected) != len(pairs) {
		return fmt.Errorf("mbtree: server returned %d pairs, proof authenticates %d", len(pairs), len(collected))
	}
	for i := range pairs {
		if !bytes.Equal(pairs[i].Key, collected[i].Key) || !bytes.Equal(pairs[i].Val, collected[i].Val) {
			return fmt.Errorf("mbtree: pair %d does not match authenticated content", i)
		}
	}
	return nil
}
