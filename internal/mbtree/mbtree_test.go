package mbtree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
)

func k(i int) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return b[:]
}

func v(i int) []byte { return []byte(fmt.Sprintf("value-%d", i)) }

func TestInsertGetVerify(t *testing.T) {
	tr := New(8) // small fanout: force deep trees
	root := tr.Root()
	for i := 0; i < 500; i++ {
		root = tr.Insert(k(i*2), v(i*2))
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < 500; i++ {
		val, proof, found := tr.Get(k(i * 2))
		if !found || !bytes.Equal(val, v(i*2)) {
			t.Fatalf("Get(%d) = %q, %v", i*2, val, found)
		}
		if err := Verify(root, k(i*2), val, true, proof); err != nil {
			t.Fatalf("valid presence proof rejected for %d: %v", i*2, err)
		}
	}
	// Absence proofs for every odd key.
	for i := 0; i < 500; i++ {
		val, proof, found := tr.Get(k(i*2 + 1))
		if found {
			t.Fatalf("phantom key %d", i*2+1)
		}
		if err := Verify(root, k(i*2+1), val, false, proof); err != nil {
			t.Fatalf("valid absence proof rejected for %d: %v", i*2+1, err)
		}
	}
}

func TestReplaceValue(t *testing.T) {
	tr := New(8)
	tr.Insert(k(1), v(1))
	root := tr.Insert(k(1), []byte("updated"))
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after replace", tr.Len())
	}
	val, proof, found := tr.Get(k(1))
	if !found || string(val) != "updated" {
		t.Fatalf("Get = %q", val)
	}
	if err := Verify(root, k(1), val, true, proof); err != nil {
		t.Fatal(err)
	}
}

func TestStaleRootRejectsProof(t *testing.T) {
	tr := New(8)
	var oldRoot Hash
	for i := 0; i < 100; i++ {
		r := tr.Insert(k(i), v(i))
		if i == 50 {
			oldRoot = r
		}
	}
	val, proof, _ := tr.Get(k(10))
	if err := Verify(oldRoot, k(10), val, true, proof); err == nil {
		t.Fatal("proof verified against stale root (rollback undetected)")
	}
}

func TestForgedValueRejected(t *testing.T) {
	tr := New(8)
	var root Hash
	for i := 0; i < 100; i++ {
		root = tr.Insert(k(i), v(i))
	}
	_, proof, _ := tr.Get(k(10))
	if err := Verify(root, k(10), []byte("forged"), true, proof); err == nil {
		t.Fatal("forged value accepted")
	}
}

func TestFalseAbsenceRejected(t *testing.T) {
	tr := New(8)
	var root Hash
	for i := 0; i < 100; i++ {
		root = tr.Insert(k(i), v(i))
	}
	_, proof, _ := tr.Get(k(10))
	// Server claims key 10 is absent while showing the honest leaf.
	if err := Verify(root, k(10), nil, false, proof); err == nil {
		t.Fatal("false absence accepted")
	}
	// Server shows a different (honest) leaf that does not cover key 10.
	_, wrongLeafProof, _ := tr.Get(k(90))
	if err := Verify(root, k(10), nil, false, wrongLeafProof); err == nil {
		t.Fatal("absence via non-covering leaf accepted")
	}
}

func TestDelete(t *testing.T) {
	tr := New(8)
	var root Hash
	for i := 0; i < 200; i++ {
		root = tr.Insert(k(i), v(i))
	}
	root, removed := tr.Delete(k(77))
	if !removed {
		t.Fatal("delete missed")
	}
	if _, again := tr.Delete(k(77)); again {
		t.Fatal("double delete succeeded")
	}
	if tr.Len() != 199 {
		t.Fatalf("Len = %d", tr.Len())
	}
	val, proof, found := tr.Get(k(77))
	if found {
		t.Fatal("deleted key still present")
	}
	if err := Verify(root, k(77), val, false, proof); err != nil {
		t.Fatalf("absence after delete unverifiable: %v", err)
	}
	// Survivors still verify.
	val, proof, _ = tr.Get(k(78))
	if err := Verify(root, k(78), val, true, proof); err != nil {
		t.Fatal(err)
	}
}

func TestRangeScanAndVerify(t *testing.T) {
	tr := New(8)
	var root Hash
	for i := 0; i < 300; i++ {
		root = tr.Insert(k(i*2), v(i*2))
	}
	for _, c := range [][2]int{{10, 50}, {0, 598}, {599, 700}, {100, 100}, {101, 101}} {
		lo, hi := k(c[0]), k(c[1])
		pairs, proof, err := tr.Range(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		var want int
		for i := 0; i < 300; i++ {
			if key := i * 2; key >= c[0] && key <= c[1] {
				want++
			}
		}
		if len(pairs) != want {
			t.Fatalf("range [%d,%d]: %d pairs, want %d", c[0], c[1], len(pairs), want)
		}
		if err := VerifyRange(root, lo, hi, pairs, proof); err != nil {
			t.Fatalf("range [%d,%d] proof rejected: %v", c[0], c[1], err)
		}
	}
}

func TestRangeOmissionDetected(t *testing.T) {
	tr := New(8)
	var root Hash
	for i := 0; i < 300; i++ {
		root = tr.Insert(k(i*2), v(i*2))
	}
	pairs, proof, _ := tr.Range(k(10), k(50))
	short := append([]RangePair(nil), pairs[:len(pairs)-1]...)
	if err := VerifyRange(root, k(10), k(50), short, proof); err == nil {
		t.Fatal("dropped pair not detected")
	}
	forged := append([]RangePair(nil), pairs...)
	forged[0].Val = []byte("forged")
	if err := VerifyRange(root, k(10), k(50), forged, proof); err == nil {
		t.Fatal("forged pair not detected")
	}
}

func TestRandomAgainstShadow(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tr := New(16)
	shadow := map[string][]byte{}
	var root Hash = tr.Root()
	for op := 0; op < 5000; op++ {
		key := k(rng.Intn(800))
		switch rng.Intn(3) {
		case 0:
			val := []byte(fmt.Sprintf("v%d", rng.Intn(1e6)))
			root = tr.Insert(key, val)
			shadow[string(key)] = val
		case 1:
			_, removed := tr.Delete(key)
			if _, want := shadow[string(key)]; want != removed {
				t.Fatalf("op %d: delete mismatch", op)
			}
			root = tr.Root()
			delete(shadow, string(key))
		case 2:
			val, proof, found := tr.Get(key)
			want, exists := shadow[string(key)]
			if found != exists || (found && !bytes.Equal(val, want)) {
				t.Fatalf("op %d: get mismatch", op)
			}
			if err := Verify(root, key, val, found, proof); err != nil {
				t.Fatalf("op %d: proof rejected: %v", op, err)
			}
		}
	}
	if tr.Len() != len(shadow) {
		t.Fatalf("Len %d, shadow %d", tr.Len(), len(shadow))
	}
}

func TestHashOpsGrow(t *testing.T) {
	tr := New(8)
	before := tr.HashOps()
	tr.Insert(k(1), v(1))
	if tr.HashOps() <= before {
		t.Fatal("insert did not count hash work")
	}
}

func TestEmptyTreeAbsence(t *testing.T) {
	tr := New(8)
	root := tr.Root()
	val, proof, found := tr.Get(k(5))
	if found {
		t.Fatal("empty tree found a key")
	}
	if err := Verify(root, k(5), val, false, proof); err != nil {
		t.Fatalf("empty-tree absence proof rejected: %v", err)
	}
}

func TestInvertedRange(t *testing.T) {
	tr := New(8)
	if _, _, err := tr.Range(k(5), k(1)); err == nil {
		t.Fatal("inverted range accepted")
	}
}
