// Package merkle implements the classic Merkle hash tree over a static
// sorted sequence of records (paper §2.2, Fig. 1): the client keeps only
// the root hash; the server proves membership with an audit path, and
// proves range-scan completeness by returning one extra record on each side
// of the range plus the hashes needed to rebuild the root (Example 2.1).
//
// It exists as the background building block and for the documentation
// examples; the dynamic MHT-based comparison system is internal/mbtree.
package merkle

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
)

// HashSize is the digest size used throughout.
const HashSize = sha256.Size

// Hash is a node digest.
type Hash [HashSize]byte

func leafHash(key, val []byte) Hash {
	h := sha256.New()
	h.Write([]byte{0x00}) // domain-separate leaves from internal nodes
	var n [8]byte
	for i, v := range len64(key) {
		n[i] = v
	}
	h.Write(n[:])
	h.Write(key)
	h.Write(val)
	var out Hash
	h.Sum(out[:0])
	return out
}

func len64(b []byte) [8]byte {
	var n [8]byte
	l := uint64(len(b))
	for i := 0; i < 8; i++ {
		n[i] = byte(l >> (8 * i))
	}
	return n
}

func nodeHash(l, r Hash) Hash {
	h := sha256.New()
	h.Write([]byte{0x01})
	h.Write(l[:])
	h.Write(r[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// Pair is one keyed record.
type Pair struct {
	Key, Val []byte
}

// Tree is a Merkle hash tree over a sorted, static set of pairs.
type Tree struct {
	pairs  []Pair
	levels [][]Hash // levels[0] = leaf hashes ... last = [root]
}

// Build constructs the tree; pairs are sorted by key (copied, not aliased).
func Build(pairs []Pair) *Tree {
	ps := make([]Pair, len(pairs))
	for i, p := range pairs {
		ps[i] = Pair{append([]byte(nil), p.Key...), append([]byte(nil), p.Val...)}
	}
	sort.Slice(ps, func(i, j int) bool { return bytes.Compare(ps[i].Key, ps[j].Key) < 0 })
	t := &Tree{pairs: ps}
	if len(ps) == 0 {
		return t
	}
	leaves := make([]Hash, len(ps))
	for i, p := range ps {
		leaves[i] = leafHash(p.Key, p.Val)
	}
	t.levels = [][]Hash{leaves}
	for cur := leaves; len(cur) > 1; {
		next := make([]Hash, 0, (len(cur)+1)/2)
		for i := 0; i < len(cur); i += 2 {
			if i+1 < len(cur) {
				next = append(next, nodeHash(cur[i], cur[i+1]))
			} else {
				next = append(next, cur[i]) // odd node promotes
			}
		}
		t.levels = append(t.levels, next)
		cur = next
	}
	return t
}

// Root returns the root hash (zero for an empty tree).
func (t *Tree) Root() Hash {
	if len(t.levels) == 0 {
		return Hash{}
	}
	top := t.levels[len(t.levels)-1]
	return top[0]
}

// Len returns the number of records.
func (t *Tree) Len() int { return len(t.pairs) }

// AuditStep is one sibling on an audit path.
type AuditStep struct {
	Sibling Hash
	Left    bool // sibling sits to the left of the running hash
}

// MembershipProof proves one pair is in the tree.
type MembershipProof struct {
	Index int
	Path  []AuditStep
}

// Prove returns the pair at key and its membership proof.
func (t *Tree) Prove(key []byte) (Pair, MembershipProof, error) {
	i := sort.Search(len(t.pairs), func(i int) bool { return bytes.Compare(t.pairs[i].Key, key) >= 0 })
	if i >= len(t.pairs) || !bytes.Equal(t.pairs[i].Key, key) {
		return Pair{}, MembershipProof{}, fmt.Errorf("merkle: key %x not present", key)
	}
	return t.pairs[i], MembershipProof{Index: i, Path: t.auditPath(i)}, nil
}

func (t *Tree) auditPath(i int) []AuditStep {
	var path []AuditStep
	for lvl := 0; lvl < len(t.levels)-1; lvl++ {
		nodes := t.levels[lvl]
		sib := i ^ 1
		if sib < len(nodes) {
			path = append(path, AuditStep{Sibling: nodes[sib], Left: sib < i})
		}
		i /= 2
	}
	return path
}

// VerifyMembership checks a membership proof against a trusted root.
func VerifyMembership(root Hash, p Pair, proof MembershipProof) bool {
	h := leafHash(p.Key, p.Val)
	for _, st := range proof.Path {
		if st.Left {
			h = nodeHash(st.Sibling, h)
		} else {
			h = nodeHash(h, st.Sibling)
		}
	}
	return h == root
}

// RangeProof proves that the records with lo ≤ key ≤ hi are exactly the
// in-range subset of Pairs: it includes one boundary record below lo and
// one above hi when they exist (Example 2.1's k2 and k6), plus per-level
// fringe hashes (the yellow nodes of Fig. 1) that let the verifier rebuild
// the root from the contiguous leaf span.
type RangeProof struct {
	Pairs      []Pair // boundary-extended, sorted
	FirstIndex int    // leaf index of Pairs[0]
	LeftEdge   bool   // Pairs[0] is the tree minimum (no left boundary exists)
	RightEdge  bool   // last pair is the tree maximum
	// LeftFringe[l] is the hash immediately left of the span at level l
	// (nil when the span is level-aligned); RightFringe[l] likewise on the
	// right (nil when the span ends the level or pairs internally).
	LeftFringe  []*Hash
	RightFringe []*Hash
}

// ProveRange builds the completeness proof for [lo, hi].
func (t *Tree) ProveRange(lo, hi []byte) (RangeProof, error) {
	if bytes.Compare(lo, hi) > 0 {
		return RangeProof{}, errors.New("merkle: empty range")
	}
	if len(t.pairs) == 0 {
		return RangeProof{}, errors.New("merkle: empty tree")
	}
	i := sort.Search(len(t.pairs), func(i int) bool { return bytes.Compare(t.pairs[i].Key, lo) >= 0 })
	j := sort.Search(len(t.pairs), func(i int) bool { return bytes.Compare(t.pairs[i].Key, hi) > 0 })
	// Extend with boundary records (k2 and k6 in Example 2.1).
	first := i
	if first > 0 {
		first--
	}
	last := j // exclusive
	if last < len(t.pairs) {
		last++
	}
	if last <= first {
		last = first + 1
	}
	p := RangeProof{
		Pairs:      append([]Pair(nil), t.pairs[first:last]...),
		FirstIndex: first,
		LeftEdge:   first == 0,
		RightEdge:  last == len(t.pairs),
	}
	s, e := first, last-1
	for lvl := 0; lvl < len(t.levels)-1; lvl++ {
		nodes := t.levels[lvl]
		if s%2 == 1 {
			h := nodes[s-1]
			p.LeftFringe = append(p.LeftFringe, &h)
			s--
		} else {
			p.LeftFringe = append(p.LeftFringe, nil)
		}
		if e%2 == 0 && e+1 < len(nodes) {
			h := nodes[e+1]
			p.RightFringe = append(p.RightFringe, &h)
			e++
		} else {
			p.RightFringe = append(p.RightFringe, nil)
		}
		s, e = s/2, e/2
	}
	return p, nil
}

// VerifyRange checks a range proof against the root and returns the
// records inside [lo, hi]. It fails if the proof does not reconstruct the
// root or the boundary conditions do not hold.
func VerifyRange(root Hash, lo, hi []byte, proof RangeProof) ([]Pair, error) {
	ps := proof.Pairs
	if len(ps) == 0 {
		return nil, errors.New("merkle: empty proof")
	}
	if len(proof.LeftFringe) != len(proof.RightFringe) {
		return nil, errors.New("merkle: fringe length mismatch")
	}
	for i := 1; i < len(ps); i++ {
		if bytes.Compare(ps[i-1].Key, ps[i].Key) >= 0 {
			return nil, errors.New("merkle: proof records out of order")
		}
	}
	// Boundary checks: the extremes must bracket the range (or be edges).
	if !proof.LeftEdge && bytes.Compare(ps[0].Key, lo) >= 0 {
		return nil, errors.New("merkle: left boundary does not precede range")
	}
	if proof.LeftEdge && proof.FirstIndex != 0 {
		return nil, errors.New("merkle: left edge flag with nonzero index")
	}
	if !proof.RightEdge && bytes.Compare(ps[len(ps)-1].Key, hi) <= 0 {
		return nil, errors.New("merkle: right boundary does not follow range")
	}
	hashes := make([]Hash, len(ps))
	for i, p := range ps {
		hashes[i] = leafHash(p.Key, p.Val)
	}
	s := proof.FirstIndex
	for lvl := 0; lvl < len(proof.LeftFringe); lvl++ {
		if lf := proof.LeftFringe[lvl]; lf != nil {
			if s%2 != 1 {
				return nil, errors.New("merkle: unexpected left fringe")
			}
			hashes = append([]Hash{*lf}, hashes...)
			s--
		} else if s%2 == 1 {
			return nil, errors.New("merkle: missing left fringe")
		}
		if rf := proof.RightFringe[lvl]; rf != nil {
			if (s+len(hashes))%2 != 1 {
				return nil, errors.New("merkle: unexpected right fringe")
			}
			hashes = append(hashes, *rf)
		}
		var next []Hash
		i := 0
		for ; i+1 < len(hashes); i += 2 {
			next = append(next, nodeHash(hashes[i], hashes[i+1]))
		}
		if i < len(hashes) {
			next = append(next, hashes[i]) // odd promotion at level end
		}
		hashes = next
		s /= 2
	}
	if len(hashes) != 1 || hashes[0] != root {
		return nil, errors.New("merkle: root mismatch")
	}
	var out []Pair
	for _, p := range ps {
		if bytes.Compare(p.Key, lo) >= 0 && bytes.Compare(p.Key, hi) <= 0 {
			out = append(out, p)
		}
	}
	return out, nil
}
