package merkle

import (
	"encoding/binary"
	"fmt"
	"testing"
	"testing/quick"
)

func pairN(i int) Pair {
	var k [8]byte
	binary.BigEndian.PutUint64(k[:], uint64(i))
	return Pair{Key: k[:], Val: []byte(fmt.Sprintf("value-%d", i))}
}

func buildN(n int) *Tree {
	ps := make([]Pair, n)
	for i := range ps {
		ps[i] = pairN(i * 2) // even keys only: odd probes test absence
	}
	return Build(ps)
}

func key(i int) []byte {
	var k [8]byte
	binary.BigEndian.PutUint64(k[:], uint64(i))
	return k[:]
}

func TestEmptyTree(t *testing.T) {
	tr := Build(nil)
	if tr.Len() != 0 {
		t.Fatal("empty tree has records")
	}
	var zero Hash
	if tr.Root() != zero {
		t.Fatal("empty root not zero")
	}
	if _, err := tr.ProveRange(key(1), key(2)); err == nil {
		t.Fatal("range proof over empty tree")
	}
}

func TestMembership(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 9, 100, 1000} {
		tr := buildN(n)
		root := tr.Root()
		for i := 0; i < n; i++ {
			p, proof, err := tr.Prove(key(i * 2))
			if err != nil {
				t.Fatalf("n=%d: Prove(%d): %v", n, i*2, err)
			}
			if !VerifyMembership(root, p, proof) {
				t.Fatalf("n=%d: valid proof for %d rejected", n, i*2)
			}
			// Tampered value fails.
			bad := Pair{Key: p.Key, Val: []byte("forged")}
			if VerifyMembership(root, bad, proof) {
				t.Fatalf("n=%d: forged value accepted for %d", n, i*2)
			}
		}
		if _, _, err := tr.Prove(key(1)); err == nil {
			t.Fatalf("n=%d: proved absent key", n)
		}
	}
}

func TestRangeProofExhaustive(t *testing.T) {
	// Every (lo, hi) window over trees of many sizes, including non-power-
	// of-two leaf counts where odd promotions occur.
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 33} {
		tr := buildN(n)
		root := tr.Root()
		maxKey := n * 2
		for lo := -1; lo <= maxKey+1; lo += 1 {
			for hi := lo; hi <= maxKey+2; hi += 3 {
				proof, err := tr.ProveRange(key(lo+1), key(hi+1))
				if err != nil {
					t.Fatalf("n=%d ProveRange(%d,%d): %v", n, lo+1, hi+1, err)
				}
				got, err := VerifyRange(root, key(lo+1), key(hi+1), proof)
				if err != nil {
					t.Fatalf("n=%d VerifyRange(%d,%d): %v", n, lo+1, hi+1, err)
				}
				var want int
				for i := 0; i < n; i++ {
					if k := i * 2; k >= lo+1 && k <= hi+1 {
						want++
					}
				}
				if len(got) != want {
					t.Fatalf("n=%d range [%d,%d]: got %d records, want %d", n, lo+1, hi+1, len(got), want)
				}
			}
		}
	}
}

func TestRangeProofDetectsOmission(t *testing.T) {
	tr := buildN(16)
	root := tr.Root()
	proof, err := tr.ProveRange(key(6), key(14))
	if err != nil {
		t.Fatal(err)
	}
	// Omit an interior record (silent omission attack).
	tampered := proof
	tampered.Pairs = append([]Pair(nil), proof.Pairs...)
	tampered.Pairs = append(tampered.Pairs[:2], tampered.Pairs[3:]...)
	if _, err := VerifyRange(root, key(6), key(14), tampered); err == nil {
		t.Fatal("omitted record not detected")
	}
}

func TestRangeProofDetectsSubstitution(t *testing.T) {
	tr := buildN(16)
	root := tr.Root()
	proof, _ := tr.ProveRange(key(6), key(14))
	tampered := proof
	tampered.Pairs = append([]Pair(nil), proof.Pairs...)
	tampered.Pairs[1] = Pair{Key: tampered.Pairs[1].Key, Val: []byte("forged")}
	if _, err := VerifyRange(root, key(6), key(14), tampered); err == nil {
		t.Fatal("substituted value not detected")
	}
}

func TestRangeProofDetectsBoundaryLies(t *testing.T) {
	tr := buildN(16)
	root := tr.Root()
	// Claim the range ends at 14 when records above exist: drop the upper
	// boundary record and flag RightEdge.
	proof, _ := tr.ProveRange(key(6), key(14))
	tampered := proof
	tampered.Pairs = append([]Pair(nil), proof.Pairs[:len(proof.Pairs)-1]...)
	tampered.RightEdge = true
	if _, err := VerifyRange(root, key(6), key(14), tampered); err == nil {
		t.Fatal("fake right edge not detected")
	}
	// Same on the left.
	tampered = proof
	tampered.Pairs = append([]Pair(nil), proof.Pairs[1:]...)
	tampered.LeftEdge = true
	tampered.FirstIndex = 0
	if _, err := VerifyRange(root, key(6), key(14), tampered); err == nil {
		t.Fatal("fake left edge not detected")
	}
}

func TestRangeWrongRootFails(t *testing.T) {
	tr := buildN(8)
	proof, _ := tr.ProveRange(key(2), key(6))
	var wrong Hash
	wrong[3] = 0xAA
	if _, err := VerifyRange(wrong, key(2), key(6), proof); err == nil {
		t.Fatal("wrong root accepted")
	}
}

func TestBuildSortsAndCopies(t *testing.T) {
	ps := []Pair{pairN(4), pairN(0), pairN(2)}
	tr := Build(ps)
	ps[0].Val[0] = 'X' // mutate caller slice
	p, proof, err := tr.Prove(key(4))
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyMembership(tr.Root(), p, proof) {
		t.Fatal("tree aliased caller memory")
	}
}

func TestRootChangesWithContent(t *testing.T) {
	f := func(a, b uint32) bool {
		if a == b {
			return true
		}
		t1 := Build([]Pair{{Key: key(int(a)), Val: []byte("v")}})
		t2 := Build([]Pair{{Key: key(int(b)), Val: []byte("v")}})
		return t1.Root() != t2.Root()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
