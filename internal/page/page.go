// Package page implements the slotted, Postgres-style page layout that
// VeriDB's storage layer is built on (paper §4.2: "the structure of a
// VeriDB page resembles classic page designs in database systems like
// Postgres"). A page is a fixed-size byte array holding
//
//   - a header with space-accounting metadata,
//   - a line-pointer (slot) directory growing from the front, and
//   - record bytes growing from the back.
//
// Records are addressed by stable slot numbers; deleting a record
// tombstones its slot without moving other records (the deferred-
// reclamation optimisation of §4.3), and Compact gathers the surviving
// records back into a contiguous region while preserving slot numbers.
//
// This package is pure layout: it knows nothing about verification. The
// vmem package layers read-write set maintenance on top.
package page

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	// HeaderSize is the byte length of the page header.
	HeaderSize = 16
	// SlotSize is the byte length of one line-pointer entry.
	SlotSize = 8
	// DefaultSize is the default page capacity, matching the paper's 8 KB
	// example (§4.3).
	DefaultSize = 8192
	// MaxSlots bounds the slot directory so slot numbers fit in 15 bits of
	// a vmem address.
	MaxSlots = 1 << 15
)

// Errors returned by page operations.
var (
	ErrPageFull    = errors.New("page: not enough free space")
	ErrBadSlot     = errors.New("page: slot out of range")
	ErrDeadSlot    = errors.New("page: slot is not live")
	ErrTooLarge    = errors.New("page: record larger than page capacity")
	ErrEmptyRecord = errors.New("page: empty record")
)

// Header field offsets within the page buffer.
const (
	offSlotCount = 0  // uint16: number of slot-directory entries
	offFreeEnd   = 2  // uint32: records occupy [freeEnd, len(buf))
	offLiveBytes = 6  // uint32: bytes held by live records
	offDeadBytes = 10 // uint32: bytes held by tombstoned records
	offFlags     = 14 // uint16: reserved
)

// Page is a slotted page over a private byte buffer.
type Page struct {
	buf []byte
}

// New allocates an empty page of the given size.
func New(size int) *Page {
	if size < HeaderSize+SlotSize {
		size = DefaultSize
	}
	p := &Page{buf: make([]byte, size)}
	p.setFreeEnd(uint32(size))
	return p
}

// Size returns the page capacity in bytes.
func (p *Page) Size() int { return len(p.buf) }

func (p *Page) slotCount() int      { return int(binary.LittleEndian.Uint16(p.buf[offSlotCount:])) }
func (p *Page) setSlotCount(n int)  { binary.LittleEndian.PutUint16(p.buf[offSlotCount:], uint16(n)) }
func (p *Page) freeEnd() uint32     { return binary.LittleEndian.Uint32(p.buf[offFreeEnd:]) }
func (p *Page) setFreeEnd(v uint32) { binary.LittleEndian.PutUint32(p.buf[offFreeEnd:], v) }
func (p *Page) liveBytes() uint32   { return binary.LittleEndian.Uint32(p.buf[offLiveBytes:]) }
func (p *Page) setLive(v uint32)    { binary.LittleEndian.PutUint32(p.buf[offLiveBytes:], v) }
func (p *Page) deadBytes() uint32   { return binary.LittleEndian.Uint32(p.buf[offDeadBytes:]) }
func (p *Page) setDead(v uint32)    { binary.LittleEndian.PutUint32(p.buf[offDeadBytes:], v) }

// slotBase returns the buffer offset of slot i's line pointer.
func slotBase(i int) int { return HeaderSize + i*SlotSize }

// slot reads line pointer i: record offset and length. offset==0 marks a
// dead or never-used slot (offset 0 lies inside the header, so it can never
// be a valid record position).
func (p *Page) slot(i int) (off, length uint32) {
	b := slotBase(i)
	return binary.LittleEndian.Uint32(p.buf[b:]), binary.LittleEndian.Uint32(p.buf[b+4:])
}

func (p *Page) setSlot(i int, off, length uint32) {
	b := slotBase(i)
	binary.LittleEndian.PutUint32(p.buf[b:], off)
	binary.LittleEndian.PutUint32(p.buf[b+4:], length)
}

// dirEnd returns the buffer offset one past the slot directory.
func (p *Page) dirEnd() uint32 { return uint32(slotBase(p.slotCount())) }

// ContiguousFree returns the bytes available between the slot directory and
// the record heap, i.e. what Insert can use without compaction.
func (p *Page) ContiguousFree() int { return int(p.freeEnd()) - int(p.dirEnd()) }

// ReclaimableBytes returns bytes held by tombstoned records that Compact
// would recover.
func (p *Page) ReclaimableBytes() int { return int(p.deadBytes()) }

// SlotCount returns the number of slot-directory entries (live and dead).
func (p *Page) SlotCount() int { return p.slotCount() }

// LiveRecords counts live slots.
func (p *Page) LiveRecords() int {
	n := 0
	for i := 0; i < p.slotCount(); i++ {
		if off, _ := p.slot(i); off != 0 {
			n++
		}
	}
	return n
}

// SlotLive reports whether slot i currently holds a record.
func (p *Page) SlotLive(i int) bool {
	if i < 0 || i >= p.slotCount() {
		return false
	}
	off, _ := p.slot(i)
	return off != 0
}

// Get returns the record bytes stored in slot i. The returned slice aliases
// the page buffer; callers that retain it must copy.
func (p *Page) Get(i int) ([]byte, error) {
	if i < 0 || i >= p.slotCount() {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadSlot, i, p.slotCount())
	}
	off, length := p.slot(i)
	if off == 0 {
		return nil, fmt.Errorf("%w: %d", ErrDeadSlot, i)
	}
	return p.buf[off : off+length], nil
}

// Insert stores rec in the page, reusing a dead slot if one exists, and
// returns the slot number. It fails with ErrPageFull when neither the
// contiguous free region nor compaction can produce enough space; callers
// then try another page.
func (p *Page) Insert(rec []byte) (int, error) {
	if len(rec) == 0 {
		return 0, ErrEmptyRecord
	}
	if len(rec) > len(p.buf)-HeaderSize-SlotSize {
		return 0, fmt.Errorf("%w: %d bytes into %d-byte page", ErrTooLarge, len(rec), len(p.buf))
	}
	if slot, ok := p.tryInsert(rec); ok {
		return slot, nil
	}
	// Compaction can only help when the combined free space would fit the
	// record; otherwise fail fast rather than moving bytes for nothing.
	if p.ContiguousFree()+int(p.deadBytes()) < len(rec)+SlotSize {
		return 0, ErrPageFull
	}
	// Deferred reclamation means free space may be fragmented across
	// tombstones; compaction can recover it (§4.3).
	p.Compact()
	if slot, ok := p.tryInsert(rec); ok {
		return slot, nil
	}
	return 0, ErrPageFull
}

// tryInsert places rec using only the contiguous free region, reusing a
// dead slot when one exists. It reports false when the page, as currently
// laid out, cannot hold the record.
func (p *Page) tryInsert(rec []byte) (int, bool) {
	slot := -1
	for i := 0; i < p.slotCount(); i++ {
		if off, _ := p.slot(i); off == 0 {
			slot = i
			break
		}
	}
	needDir := 0
	if slot == -1 {
		if p.slotCount() >= MaxSlots {
			return 0, false
		}
		needDir = SlotSize
	}
	if p.ContiguousFree()-needDir < len(rec) {
		return 0, false
	}
	if slot == -1 {
		slot = p.slotCount()
		p.setSlotCount(slot + 1)
	}
	off := p.freeEnd() - uint32(len(rec))
	copy(p.buf[off:], rec)
	p.setFreeEnd(off)
	p.setSlot(slot, off, uint32(len(rec)))
	p.setLive(p.liveBytes() + uint32(len(rec)))
	return slot, true
}

// Delete tombstones slot i without moving any bytes; the space becomes
// reclaimable at the next Compact (deferred reclamation, §4.3).
func (p *Page) Delete(i int) error {
	if i < 0 || i >= p.slotCount() {
		return fmt.Errorf("%w: %d of %d", ErrBadSlot, i, p.slotCount())
	}
	off, length := p.slot(i)
	if off == 0 {
		return fmt.Errorf("%w: %d", ErrDeadSlot, i)
	}
	p.setSlot(i, 0, 0)
	p.setLive(p.liveBytes() - length)
	p.setDead(p.deadBytes() + length)
	return nil
}

// Update replaces the record in slot i. If the new record fits in the old
// record's space it is written in place; otherwise the old space is
// tombstoned and the record re-inserted at the heap frontier under the same
// slot number. Returns ErrPageFull if the page cannot hold the new size, in
// which case the caller relocates the record to another page (paper §4.2:
// an oversized update "will need to perform a delete followed by an insert,
// which may happen on a different page").
func (p *Page) Update(i int, rec []byte) error {
	if i < 0 || i >= p.slotCount() {
		return fmt.Errorf("%w: %d of %d", ErrBadSlot, i, p.slotCount())
	}
	off, length := p.slot(i)
	if off == 0 {
		return fmt.Errorf("%w: %d", ErrDeadSlot, i)
	}
	if len(rec) == 0 {
		return ErrEmptyRecord
	}
	if uint32(len(rec)) <= length {
		copy(p.buf[off:], rec)
		if uint32(len(rec)) < length {
			// Shrink in place; trailing bytes become dead space.
			p.setSlot(i, off, uint32(len(rec)))
			p.setLive(p.liveBytes() - (length - uint32(len(rec))))
			p.setDead(p.deadBytes() + (length - uint32(len(rec))))
		}
		return nil
	}
	// Grow: need fresh heap space for the new image. Compact with the old
	// image still live (so its slot survives), then retry; the old image's
	// space is released after the new one is written.
	if p.ContiguousFree() < len(rec) {
		p.Compact()
		off, length = p.slot(i)
		if p.ContiguousFree() < len(rec) {
			return ErrPageFull
		}
	}
	newOff := p.freeEnd() - uint32(len(rec))
	copy(p.buf[newOff:], rec)
	p.setFreeEnd(newOff)
	p.setSlot(i, newOff, uint32(len(rec)))
	p.setLive(p.liveBytes() + uint32(len(rec)) - length)
	p.setDead(p.deadBytes() + length)
	return nil
}

// Compact rewrites all live records into a contiguous region at the back of
// the page, preserving slot numbers, and zeroes the dead-byte counter. It
// is what the paper runs as a side task of the verification scan (§4.3).
func (p *Page) Compact() {
	type liveRec struct {
		slot int
		data []byte
	}
	var recs []liveRec
	for i := 0; i < p.slotCount(); i++ {
		off, length := p.slot(i)
		if off != 0 {
			// Copy out: destinations may overlap sources.
			recs = append(recs, liveRec{i, append([]byte(nil), p.buf[off:off+length]...)})
		}
	}
	end := uint32(len(p.buf))
	for _, r := range recs {
		end -= uint32(len(r.data))
		copy(p.buf[end:], r.data)
		p.setSlot(r.slot, end, uint32(len(r.data)))
	}
	p.setFreeEnd(end)
	p.setDead(0)
	// Drop trailing dead slots so the directory can shrink.
	n := p.slotCount()
	for n > 0 {
		if off, _ := p.slot(n - 1); off != 0 {
			break
		}
		n--
	}
	p.setSlotCount(n)
}

// Slots iterates live slots in slot order, invoking fn with the slot number
// and record bytes (aliasing the buffer). Iteration stops if fn returns
// false.
func (p *Page) Slots(fn func(slot int, rec []byte) bool) {
	for i := 0; i < p.slotCount(); i++ {
		off, length := p.slot(i)
		if off == 0 {
			continue
		}
		if !fn(i, p.buf[off:off+length]) {
			return
		}
	}
}

// SlotPointerBytes returns the raw line-pointer entry for slot i. The
// storage layer treats line pointers as metadata cells when metadata
// verification is enabled (§4.3 discusses excluding them).
func (p *Page) SlotPointerBytes(i int) []byte {
	if i < 0 || i >= p.slotCount() {
		return nil
	}
	b := slotBase(i)
	return p.buf[b : b+SlotSize]
}

// RawBuffer exposes the underlying byte buffer. It exists so tests and the
// tamper demo can mutate memory the way an adversary with host access would
// (bypassing every protected interface); regular code must never use it.
func (p *Page) RawBuffer() []byte { return p.buf }
