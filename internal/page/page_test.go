package page

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertGetRoundTrip(t *testing.T) {
	p := New(DefaultSize)
	recs := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	slots := make([]int, len(recs))
	for i, r := range recs {
		s, err := p.Insert(r)
		if err != nil {
			t.Fatal(err)
		}
		slots[i] = s
	}
	for i, r := range recs {
		got, err := p.Get(slots[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, r) {
			t.Fatalf("slot %d: got %q want %q", slots[i], got, r)
		}
	}
	if p.LiveRecords() != 3 {
		t.Fatalf("LiveRecords = %d, want 3", p.LiveRecords())
	}
}

func TestInsertEmptyRecord(t *testing.T) {
	p := New(DefaultSize)
	if _, err := p.Insert(nil); !errors.Is(err, ErrEmptyRecord) {
		t.Fatalf("err = %v, want ErrEmptyRecord", err)
	}
}

func TestInsertTooLarge(t *testing.T) {
	p := New(256)
	if _, err := p.Insert(make([]byte, 512)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestGetBadSlot(t *testing.T) {
	p := New(DefaultSize)
	if _, err := p.Get(0); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("err = %v, want ErrBadSlot", err)
	}
	if _, err := p.Get(-1); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("err = %v, want ErrBadSlot", err)
	}
}

func TestDeleteTombstonesWithoutMoving(t *testing.T) {
	p := New(DefaultSize)
	s1, _ := p.Insert([]byte("first"))
	s2, _ := p.Insert([]byte("second"))
	if err := p.Delete(s1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(s1); !errors.Is(err, ErrDeadSlot) {
		t.Fatalf("deleted slot readable: %v", err)
	}
	got, err := p.Get(s2)
	if err != nil || !bytes.Equal(got, []byte("second")) {
		t.Fatalf("survivor corrupted: %q, %v", got, err)
	}
	if p.ReclaimableBytes() != len("first") {
		t.Fatalf("ReclaimableBytes = %d", p.ReclaimableBytes())
	}
	if err := p.Delete(s1); !errors.Is(err, ErrDeadSlot) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestSlotReuseAfterDelete(t *testing.T) {
	p := New(DefaultSize)
	s1, _ := p.Insert([]byte("aaa"))
	p.Insert([]byte("bbb"))
	if err := p.Delete(s1); err != nil {
		t.Fatal(err)
	}
	s3, err := p.Insert([]byte("ccc"))
	if err != nil {
		t.Fatal(err)
	}
	if s3 != s1 {
		t.Fatalf("dead slot not reused: got %d want %d", s3, s1)
	}
}

func TestUpdateInPlace(t *testing.T) {
	p := New(DefaultSize)
	s, _ := p.Insert([]byte("longvalue"))
	if err := p.Update(s, []byte("short")); err != nil {
		t.Fatal(err)
	}
	got, _ := p.Get(s)
	if !bytes.Equal(got, []byte("short")) {
		t.Fatalf("got %q", got)
	}
	if p.ReclaimableBytes() != len("longvalue")-len("short") {
		t.Fatalf("shrink did not account dead bytes: %d", p.ReclaimableBytes())
	}
}

func TestUpdateGrow(t *testing.T) {
	p := New(DefaultSize)
	s, _ := p.Insert([]byte("tiny"))
	big := bytes.Repeat([]byte("x"), 100)
	if err := p.Update(s, big); err != nil {
		t.Fatal(err)
	}
	got, _ := p.Get(s)
	if !bytes.Equal(got, big) {
		t.Fatal("grown record corrupted")
	}
}

func TestUpdateDeadSlot(t *testing.T) {
	p := New(DefaultSize)
	s, _ := p.Insert([]byte("x"))
	p.Delete(s)
	if err := p.Update(s, []byte("y")); !errors.Is(err, ErrDeadSlot) {
		t.Fatalf("err = %v", err)
	}
}

func TestPageFull(t *testing.T) {
	p := New(256)
	var n int
	for {
		if _, err := p.Insert(bytes.Repeat([]byte("r"), 20)); err != nil {
			if !errors.Is(err, ErrPageFull) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		n++
	}
	if n == 0 {
		t.Fatal("no record fit in a 256-byte page")
	}
}

func TestInsertCompactsFragmentedSpace(t *testing.T) {
	p := New(512)
	var slots []int
	rec := bytes.Repeat([]byte("a"), 40)
	for {
		s, err := p.Insert(rec)
		if err != nil {
			break
		}
		slots = append(slots, s)
	}
	// Free every other record: contiguous space stays ~0 but dead space grows.
	for i := 0; i < len(slots); i += 2 {
		if err := p.Delete(slots[i]); err != nil {
			t.Fatal(err)
		}
	}
	big := bytes.Repeat([]byte("b"), 60)
	s, err := p.Insert(big)
	if err != nil {
		t.Fatalf("insert after fragmentation failed: %v (free=%d dead=%d)",
			err, p.ContiguousFree(), p.ReclaimableBytes())
	}
	got, _ := p.Get(s)
	if !bytes.Equal(got, big) {
		t.Fatal("record corrupted after implicit compaction")
	}
	// Survivors intact.
	for i := 1; i < len(slots); i += 2 {
		got, err := p.Get(slots[i])
		if err != nil || !bytes.Equal(got, rec) {
			t.Fatalf("survivor %d corrupted after compaction", slots[i])
		}
	}
}

func TestCompactPreservesSlotsAndReclaims(t *testing.T) {
	p := New(DefaultSize)
	s1, _ := p.Insert([]byte("one"))
	s2, _ := p.Insert([]byte("two"))
	s3, _ := p.Insert([]byte("three"))
	p.Delete(s2)
	before := p.ContiguousFree()
	p.Compact()
	if p.ReclaimableBytes() != 0 {
		t.Fatalf("dead bytes remain after Compact: %d", p.ReclaimableBytes())
	}
	if p.ContiguousFree() <= before {
		t.Fatalf("Compact did not grow free space: %d -> %d", before, p.ContiguousFree())
	}
	for s, want := range map[int]string{s1: "one", s3: "three"} {
		got, err := p.Get(s)
		if err != nil || !bytes.Equal(got, []byte(want)) {
			t.Fatalf("slot %d after Compact: %q, %v", s, got, err)
		}
	}
	if p.SlotLive(s2) {
		t.Fatal("deleted slot live after Compact")
	}
}

func TestCompactDropsTrailingDeadSlots(t *testing.T) {
	p := New(DefaultSize)
	p.Insert([]byte("keep"))
	s2, _ := p.Insert([]byte("drop"))
	p.Delete(s2)
	p.Compact()
	if p.SlotCount() != 1 {
		t.Fatalf("SlotCount = %d, want 1", p.SlotCount())
	}
}

func TestSlotsIteration(t *testing.T) {
	p := New(DefaultSize)
	p.Insert([]byte("a"))
	s2, _ := p.Insert([]byte("b"))
	p.Insert([]byte("c"))
	p.Delete(s2)
	var seen []string
	p.Slots(func(slot int, rec []byte) bool {
		seen = append(seen, string(rec))
		return true
	})
	if fmt.Sprint(seen) != "[a c]" {
		t.Fatalf("Slots visited %v", seen)
	}
	// Early termination.
	count := 0
	p.Slots(func(int, []byte) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestSlotPointerBytes(t *testing.T) {
	p := New(DefaultSize)
	s, _ := p.Insert([]byte("rec"))
	ptr := p.SlotPointerBytes(s)
	if len(ptr) != SlotSize {
		t.Fatalf("pointer length %d", len(ptr))
	}
	if p.SlotPointerBytes(99) != nil {
		t.Fatal("out-of-range pointer not nil")
	}
}

// TestSpaceAccountingInvariant checks, under a random workload, that the
// header's space accounting always matches the slot directory's ground
// truth and that all live records stay readable and correct.
func TestSpaceAccountingInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := New(1024)
		shadow := map[int][]byte{} // slot -> expected record
		for op := 0; op < 200; op++ {
			switch rng.Intn(3) {
			case 0: // insert
				rec := make([]byte, 1+rng.Intn(64))
				rng.Read(rec)
				if s, err := p.Insert(rec); err == nil {
					shadow[s] = rec
				}
			case 1: // delete random live slot
				for s := range shadow {
					if err := p.Delete(s); err != nil {
						return false
					}
					delete(shadow, s)
					break
				}
			case 2: // update random live slot
				for s := range shadow {
					rec := make([]byte, 1+rng.Intn(64))
					rng.Read(rec)
					if err := p.Update(s, rec); err == nil {
						shadow[s] = rec
					} else if !errors.Is(err, ErrPageFull) {
						return false
					}
					break
				}
			}
			if op%37 == 0 {
				p.Compact()
			}
		}
		if p.LiveRecords() != len(shadow) {
			return false
		}
		for s, want := range shadow {
			got, err := p.Get(s)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert500B(b *testing.B) {
	rec := make([]byte, 500)
	p := New(DefaultSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Insert(rec); err != nil {
			p = New(DefaultSize)
			i--
		}
	}
}

func BenchmarkGet(b *testing.B) {
	p := New(DefaultSize)
	s, _ := p.Insert(make([]byte, 500))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Get(s); err != nil {
			b.Fatal(err)
		}
	}
}
