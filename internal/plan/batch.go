package plan

import (
	"veridb/internal/engine"
)

// smallInputRows is the cutoff below which batching is pointless: a query
// whose leaf tables together hold at most this many rows fits in a single
// partial batch, so the planner keeps the tuple-at-a-time path and skips
// the batch machinery (cursor buffers, scratch batches) entirely.
const smallInputRows = 16

// EffectiveBatchSize decides the execution mode for a compiled plan:
// the configured batch size, or 1 (the exact legacy tuple-at-a-time path)
// when batching is disabled or the plan's inputs are trivially small.
// Operator trees containing node types the planner does not know are
// treated as large — unknown cardinality must not silently lose the
// configured vectorization.
func EffectiveBatchSize(op engine.Operator, configured int) int {
	if configured <= 1 {
		return 1
	}
	if rows, known := leafRows(op); known && rows <= smallInputRows {
		return 1
	}
	return configured
}

// leafRows sums the row counts of the plan's leaf inputs; known is false
// when the tree contains an operator whose input size cannot be derived.
func leafRows(op engine.Operator) (rows int, known bool) {
	switch x := op.(type) {
	case *engine.TableScan:
		return x.Table.RowCount(), true
	case *engine.Values:
		return len(x.Rows), true
	case *engine.Filter:
		return leafRows(x.Child)
	case *engine.Project:
		return leafRows(x.Child)
	case *engine.Limit:
		return leafRows(x.Child)
	case *engine.Sort:
		return leafRows(x.Child)
	case *engine.Materialize:
		return leafRows(x.Child)
	case *engine.HashAggregate:
		return leafRows(x.Child)
	case *engine.Spool:
		return leafRows(x.Child)
	case *engine.NestedLoopJoin:
		o, ok1 := leafRows(x.Outer)
		i, ok2 := leafRows(x.Inner)
		return o + i, ok1 && ok2
	case *engine.IndexJoin:
		o, ok := leafRows(x.Outer)
		return o + x.InnerTable.RowCount(), ok
	case *engine.MergeJoin:
		l, ok1 := leafRows(x.Left)
		r, ok2 := leafRows(x.Right)
		return l + r, ok1 && ok2
	case *engine.HashJoin:
		l, ok1 := leafRows(x.Left)
		r, ok2 := leafRows(x.Right)
		return l + r, ok1 && ok2
	default:
		return 0, false
	}
}
