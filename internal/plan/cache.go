package plan

// The plan cache: an LRU over compiled statements keyed on normalized
// SQL text. Entries are checked out exclusively — a hit removes the
// entry from circulation until Return — because both the planner and the
// executor mutate what they hold: qualifyRefs writes owner names into
// the shared AST, and buffering operators (Materialize) carry row state
// across Open/Close. Exclusive checkout makes reuse race-free without
// cloning; a second concurrent execution of the same statement simply
// misses and compiles fresh.
//
// Validity is keyed on the storage catalog version: any CREATE/DROP
// TABLE or shard-layout change advances it, and Get discards entries
// planned under an older version (DDL invalidation). Literal values are
// part of the key text, which is exactly the soundness condition — a
// cached Select plan embeds its scan bounds.

import (
	"container/list"
	"sync"

	"veridb/internal/engine"
	"veridb/internal/sql"
)

// CacheEntry is one cached statement: the parsed AST, the compiled
// operator tree for SELECTs (nil otherwise), and the catalog version the
// plan is valid under.
type CacheEntry struct {
	key     string
	Stmt    sql.Statement
	Op      engine.Operator
	Version uint64
	busy    bool
}

// CacheStats counts cache traffic.
type CacheStats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Invalidations uint64 `json:"invalidations"`
	Entries       int    `json:"entries"`
}

// Cache is a bounded LRU of compiled statements. All methods are safe
// for concurrent use.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element // of *CacheEntry
	lru     *list.List               // front = most recent
	stats   CacheStats
}

// NewCache builds a cache bounded to cap entries; cap < 1 returns nil
// (caching disabled — a nil *Cache is safe to call).
func NewCache(cap int) *Cache {
	if cap < 1 {
		return nil
	}
	return &Cache{cap: cap, entries: make(map[string]*list.Element), lru: list.New()}
}

// Get checks an entry out, or returns nil on a miss. An entry planned
// under a different catalog version is discarded (invalidation), and an
// entry already checked out by a concurrent caller counts as a miss.
// The caller owns a returned entry exclusively until Return.
func (c *Cache) Get(key string, version uint64) *CacheEntry {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil
	}
	ent := el.Value.(*CacheEntry)
	if ent.Version != version {
		c.stats.Invalidations++
		c.stats.Misses++
		delete(c.entries, key)
		c.lru.Remove(el)
		return nil
	}
	if ent.busy {
		c.stats.Misses++
		return nil
	}
	ent.busy = true
	c.lru.MoveToFront(el)
	c.stats.Hits++
	return ent
}

// Return hands a checked-out entry back to circulation. If the entry was
// displaced while out (overwritten by Put, or purged), it is dropped.
func (c *Cache) Return(ent *CacheEntry) {
	if c == nil || ent == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[ent.key]; ok && el.Value.(*CacheEntry) == ent {
		ent.busy = false
	}
}

// Put inserts a freshly compiled statement. An existing entry for the
// key is kept (the concurrent compiler that lost the race discards its
// copy); beyond capacity the least-recently-used idle entry is evicted.
func (c *Cache) Put(key string, stmt sql.Statement, op engine.Operator, version uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	ent := &CacheEntry{key: key, Stmt: stmt, Op: op, Version: version}
	c.entries[key] = c.lru.PushFront(ent)
	for c.lru.Len() > c.cap {
		evicted := false
		for el := c.lru.Back(); el != nil; el = el.Prev() {
			if e := el.Value.(*CacheEntry); !e.busy {
				delete(c.entries, e.key)
				c.lru.Remove(el)
				evicted = true
				break
			}
		}
		if !evicted {
			break // every entry is checked out; tolerate the overshoot
		}
	}
}

// Purge empties the cache (manual invalidation).
func (c *Cache) Purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Invalidations += uint64(len(c.entries))
	c.entries = make(map[string]*list.Element)
	c.lru.Init()
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	return s
}
