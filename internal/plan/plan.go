// Package plan is VeriDB's query compiler: it turns parsed SELECT
// statements into trees of engine operators whose leaves are the verified
// access methods. Compilation and optimisation run inside the (simulated)
// enclave, because verifying plan/query equivalence after the fact is
// NP-hard (paper §3.3 "Query compiler").
//
// The optimisations implemented are the ones the paper's evaluation
// exercises: predicate pushdown into chain range scans, join algorithm
// selection (index-nested-loop against a chained column, sort-merge, hash,
// or plain nested loop — §6.3 runs Q19 under both MergeJoin and
// NestedLoopJoin plans), and aggregate planning for the SPJA queries.
package plan

import (
	"fmt"
	"strings"

	"veridb/internal/engine"
	"veridb/internal/record"
	"veridb/internal/sql"
	"veridb/internal/storage"
)

// Catalog resolves table names to their storage engines; *storage.Store
// satisfies it. The planner sees only the Engine seam, never the concrete
// sharded table.
type Catalog interface {
	Table(name string) (storage.Engine, error)
}

// JoinStrategy forces a join algorithm; JoinAuto picks per join.
type JoinStrategy int

const (
	// JoinAuto selects index-nested-loop when the inner join column has a
	// chain, otherwise hash join.
	JoinAuto JoinStrategy = iota
	// JoinIndex forces index-nested-loop joins.
	JoinIndex
	// JoinMerge forces sort-merge joins.
	JoinMerge
	// JoinHash forces hash joins.
	JoinHash
	// JoinNested forces naive nested-loop joins (the Q19 comparison plan).
	JoinNested
)

// Options tune planning.
type Options struct {
	Join JoinStrategy
	// ExecBatchSize is the vectorized execution batch size; <= 1 compiles
	// the exact legacy tuple-at-a-time plan. The planner may still fall
	// back to tuple-at-a-time for trivially small inputs
	// (EffectiveBatchSize).
	ExecBatchSize int
}

// binding is one FROM/JOIN table with its alias.
type binding struct {
	alias string
	table storage.Engine
}

// PlanSelect compiles a SELECT into an operator tree.
func PlanSelect(cat Catalog, sel *sql.Select, opt Options) (engine.Operator, error) {
	if len(sel.From) == 0 {
		return nil, fmt.Errorf("plan: SELECT without FROM")
	}
	var binds []binding
	seen := map[string]bool{}
	addBind := func(ref sql.TableRef) error {
		t, err := cat.Table(ref.Table)
		if err != nil {
			return err
		}
		key := strings.ToLower(ref.Alias)
		if seen[key] {
			return fmt.Errorf("plan: duplicate table alias %q", ref.Alias)
		}
		seen[key] = true
		binds = append(binds, binding{alias: ref.Alias, table: t})
		return nil
	}
	for _, ref := range sel.From {
		if err := addBind(ref); err != nil {
			return nil, err
		}
	}
	conjuncts := splitAnd(sel.Where)
	for _, j := range sel.Joins {
		if err := addBind(j.Ref); err != nil {
			return nil, err
		}
		conjuncts = append(conjuncts, splitAnd(j.On)...)
	}
	// Qualify unqualified column references: join detection and pushdown
	// reason about which table an expression touches, so every ref that
	// names a column of exactly one bound table gets that table's alias;
	// a name owned by several tables is an error, as in standard SQL.
	for _, c := range conjuncts {
		if err := qualifyRefs(c, binds); err != nil {
			return nil, err
		}
	}

	// Build one access path per binding with its single-table predicates
	// pushed down, then join left-deep in FROM order.
	used := make([]bool, len(conjuncts))
	op, err := accessPath(binds[0], conjuncts, used)
	if err != nil {
		return nil, err
	}
	joined := map[string]bool{strings.ToLower(binds[0].alias): true}
	for _, b := range binds[1:] {
		op, err = planJoin(op, b, joined, conjuncts, used, opt)
		if err != nil {
			return nil, err
		}
		joined[strings.ToLower(b.alias)] = true
	}
	// Residual conjuncts (multi-table predicates not absorbed by joins).
	op, err = applyResidual(op, conjuncts, used)
	if err != nil {
		return nil, err
	}
	op, err = finishSelect(op, sel)
	if err != nil {
		return nil, err
	}
	// Fix the execution mode before the tree opens: pipeline breakers
	// consume their children inside Open, so the batch-vs-scalar choice
	// must be baked into the plan, not made at drain time.
	engine.SetBatchSize(op, EffectiveBatchSize(op, opt.ExecBatchSize))
	return op, nil
}

// qualifyRefs fills in the table alias of unqualified column references
// that resolve to exactly one binding. A name owned by several bound
// tables is ambiguous and rejected; unknown names are left for expression
// compilation to report.
func qualifyRefs(e sql.Expr, binds []binding) error {
	switch x := e.(type) {
	case *sql.ColumnRef:
		if x.Table != "" {
			return nil
		}
		owner := ""
		for _, b := range binds {
			if b.table.Schema().ColIndex(x.Column) >= 0 {
				if owner != "" {
					return fmt.Errorf("plan: column %q is ambiguous (in %q and %q)", x.Column, owner, b.alias)
				}
				owner = b.alias
			}
		}
		if owner != "" {
			x.Table = owner
		}
		return nil
	case *sql.BinaryExpr:
		if err := qualifyRefs(x.L, binds); err != nil {
			return err
		}
		return qualifyRefs(x.R, binds)
	case *sql.UnaryExpr:
		return qualifyRefs(x.E, binds)
	case *sql.BetweenExpr:
		if err := qualifyRefs(x.E, binds); err != nil {
			return err
		}
		if err := qualifyRefs(x.Lo, binds); err != nil {
			return err
		}
		return qualifyRefs(x.Hi, binds)
	case *sql.InExpr:
		if err := qualifyRefs(x.E, binds); err != nil {
			return err
		}
		for _, i := range x.List {
			if err := qualifyRefs(i, binds); err != nil {
				return err
			}
		}
		return nil
	case *sql.IsNullExpr:
		return qualifyRefs(x.E, binds)
	case *sql.FuncCall:
		if x.Arg != nil {
			return qualifyRefs(x.Arg, binds)
		}
	}
	return nil
}

// splitAnd flattens a conjunction.
func splitAnd(e sql.Expr) []sql.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sql.BinaryExpr); ok && b.Op == "AND" {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []sql.Expr{e}
}

// exprAliases collects the table aliases an expression references; refs
// with empty table qualifiers yield "".
func exprAliases(e sql.Expr, out map[string]bool) {
	switch x := e.(type) {
	case *sql.ColumnRef:
		out[strings.ToLower(x.Table)] = true
	case *sql.BinaryExpr:
		exprAliases(x.L, out)
		exprAliases(x.R, out)
	case *sql.UnaryExpr:
		exprAliases(x.E, out)
	case *sql.BetweenExpr:
		exprAliases(x.E, out)
		exprAliases(x.Lo, out)
		exprAliases(x.Hi, out)
	case *sql.InExpr:
		exprAliases(x.E, out)
		for _, i := range x.List {
			exprAliases(i, out)
		}
	case *sql.IsNullExpr:
		exprAliases(x.E, out)
	case *sql.FuncCall:
		if x.Arg != nil {
			exprAliases(x.Arg, out)
		}
	}
}

// referencesOnly reports whether e touches only the given alias (or is
// unqualified, which the caller resolves by schema).
func referencesOnly(e sql.Expr, alias string) bool {
	refs := map[string]bool{}
	exprAliases(e, refs)
	for a := range refs {
		if a != "" && a != strings.ToLower(alias) {
			return false
		}
	}
	return true
}

// rangeBound is one extracted comparison against a literal.
type rangeBound struct {
	col string
	lo  *record.Value
	hi  *record.Value
}

// extractBound recognises col ⊙ literal (possibly reversed) and BETWEEN.
func extractBound(e sql.Expr) *rangeBound {
	switch x := e.(type) {
	case *sql.BinaryExpr:
		col, okL := x.L.(*sql.ColumnRef)
		lit, okR := x.R.(*sql.Literal)
		op := x.Op
		if !okL || !okR {
			// literal ⊙ col: flip.
			lit2, okL2 := x.L.(*sql.Literal)
			col2, okR2 := x.R.(*sql.ColumnRef)
			if !okL2 || !okR2 {
				return nil
			}
			col, lit = col2, lit2
			switch op {
			case "<":
				op = ">"
			case "<=":
				op = ">="
			case ">":
				op = "<"
			case ">=":
				op = "<="
			}
		}
		if lit.Val.Null {
			return nil
		}
		v := lit.Val
		switch op {
		case "=":
			return &rangeBound{col: col.Column, lo: &v, hi: &v}
		case "<", "<=":
			return &rangeBound{col: col.Column, hi: &v}
		case ">", ">=":
			return &rangeBound{col: col.Column, lo: &v}
		}
	case *sql.BetweenExpr:
		if x.Negated {
			return nil
		}
		col, ok := x.E.(*sql.ColumnRef)
		if !ok {
			return nil
		}
		lo, okLo := x.Lo.(*sql.Literal)
		hi, okHi := x.Hi.(*sql.Literal)
		if !okLo || !okHi || lo.Val.Null || hi.Val.Null {
			return nil
		}
		lv, hv := lo.Val, hi.Val
		return &rangeBound{col: col.Column, lo: &lv, hi: &hv}
	}
	return nil
}

// accessPath builds the scan for one table: a verified range scan on the
// most constrained chained column, with every pushed-down predicate kept
// as a filter above it (bounds are a performance device; the filter is the
// semantic truth, so strict/non-strict handling stays trivial).
func accessPath(b binding, conjuncts []sql.Expr, used []bool) (engine.Operator, error) {
	scan := engine.NewTableScan(b.table, b.alias)
	schema := scan.Schema()

	type colBounds struct {
		lo, hi *record.Value
		eq     bool
	}
	bounds := map[int]*colBounds{} // column index -> bounds
	var pushed []sql.Expr
	for i, c := range conjuncts {
		if used[i] || !referencesOnly(c, b.alias) {
			continue
		}
		// Confirm the expression actually compiles against this table
		// alone (unqualified refs may belong to another table).
		if _, err := engine.Compile(c, schema); err != nil {
			continue
		}
		pushed = append(pushed, c)
		used[i] = true
		if rb := extractBound(c); rb != nil {
			ci := b.table.Schema().ColIndex(rb.col)
			if ci < 0 || b.table.ChainFor(ci) < 0 {
				continue
			}
			cb := bounds[ci]
			if cb == nil {
				cb = &colBounds{}
				bounds[ci] = cb
			}
			if rb.lo != nil && (cb.lo == nil || mustLess(*cb.lo, *rb.lo)) {
				cb.lo = rb.lo
			}
			if rb.hi != nil && (cb.hi == nil || mustLess(*rb.hi, *cb.hi)) {
				cb.hi = rb.hi
			}
			if rb.lo != nil && rb.hi != nil {
				cb.eq = true
			}
		}
	}
	// Choose the best bounded chain: equality beats half-open ranges.
	bestCol, bestScore := -1, 0
	for ci, cb := range bounds {
		score := 0
		if cb.lo != nil {
			score++
		}
		if cb.hi != nil {
			score++
		}
		if cb.eq {
			score++
		}
		if cb.eq && ci == b.table.PrimaryKeyColumn() && b.table.ShardCount() > 1 {
			// Shard-aware costing: a primary-key equality routes to a
			// single shard, while an equally tight secondary-chain scan
			// must visit every shard for its per-shard absence proofs.
			score++
		}
		if score > bestScore {
			bestScore, bestCol = score, ci
		}
	}
	var op engine.Operator = scan
	if bestCol >= 0 {
		cb := bounds[bestCol]
		op = engine.NewRangeScan(b.table, b.alias, bestCol, cb.lo, cb.hi)
	}
	for _, c := range pushed {
		pred, err := engine.Compile(c, schema)
		if err != nil {
			return nil, err
		}
		op = &engine.Filter{Child: op, Pred: pred}
	}
	return op, nil
}

func mustLess(a, b record.Value) bool {
	c, err := a.Compare(b)
	return err == nil && c < 0
}

// equiJoinConjunct finds a conjunct of the form left.x = right.y linking
// the joined aliases to the new binding.
func equiJoinConjunct(conjuncts []sql.Expr, used []bool, joined map[string]bool, b binding) (idx int, leftKey, rightKey *sql.ColumnRef) {
	for i, c := range conjuncts {
		if used[i] {
			continue
		}
		be, ok := c.(*sql.BinaryExpr)
		if !ok || be.Op != "=" {
			continue
		}
		l, lok := be.L.(*sql.ColumnRef)
		r, rok := be.R.(*sql.ColumnRef)
		if !lok || !rok {
			continue
		}
		la, ra := strings.ToLower(l.Table), strings.ToLower(r.Table)
		ba := strings.ToLower(b.alias)
		switch {
		case joined[la] && ra == ba:
			return i, l, r
		case joined[ra] && la == ba:
			return i, r, l
		}
	}
	return -1, nil, nil
}

// planJoin attaches binding b to the current plan.
func planJoin(left engine.Operator, b binding, joined map[string]bool, conjuncts []sql.Expr, used []bool, opt Options) (engine.Operator, error) {
	ji, lk, rk := equiJoinConjunct(conjuncts, used, joined, b)
	strategy := opt.Join
	if ji < 0 && strategy != JoinNested {
		// No equi-join condition: only a nested loop applies.
		strategy = JoinNested
	}
	if strategy == JoinAuto {
		ci := b.table.Schema().ColIndex(rk.Column)
		if ci >= 0 && b.table.ChainFor(ci) >= 0 {
			strategy = JoinIndex
		} else {
			strategy = JoinHash
		}
	}
	switch strategy {
	case JoinIndex:
		ci := b.table.Schema().ColIndex(rk.Column)
		if ci < 0 {
			return nil, fmt.Errorf("plan: join column %q not in table %q", rk.Column, b.table.Name())
		}
		if b.table.ChainFor(ci) < 0 {
			// Fall back to hash when the inner column has no chain.
			return planHashJoin(left, b, lk, rk, conjuncts, used)
		}
		outerKey, err := engine.Compile(lk, left.Schema())
		if err != nil {
			return nil, err
		}
		used[ji] = true
		j := &engine.IndexJoin{
			Outer:      left,
			InnerTable: b.table,
			InnerAlias: b.alias,
			InnerCol:   ci,
			OuterKey:   outerKey,
		}
		return withJoinResidual(j, b, conjuncts, used)
	case JoinMerge:
		inner, err := accessPath(b, conjuncts, used)
		if err != nil {
			return nil, err
		}
		leftKey, err := engine.Compile(lk, left.Schema())
		if err != nil {
			return nil, err
		}
		rightKey, err := engine.Compile(rk, inner.Schema())
		if err != nil {
			return nil, err
		}
		used[ji] = true
		j := &engine.MergeJoin{
			Left:     &engine.Sort{Child: left, Keys: []engine.SortKey{{Expr: leftKey}}},
			Right:    &engine.Sort{Child: inner, Keys: []engine.SortKey{{Expr: rightKey}}},
			LeftKey:  leftKey,
			RightKey: rightKey,
		}
		return withJoinResidual(j, b, conjuncts, used)
	case JoinHash:
		used[ji] = true
		return planHashJoin(left, b, lk, rk, conjuncts, used)
	case JoinNested:
		inner, err := accessPath(b, conjuncts, used)
		if err != nil {
			return nil, err
		}
		// Materialise the inner side so its verified scan runs once (§6.3:
		// the Q19 plan "uses NestedLoopJoin and materialize the Select
		// result on inner loop").
		j := &engine.NestedLoopJoin{Outer: left, Inner: &engine.Materialize{Child: inner}}
		if ji >= 0 {
			// Keep the equi-condition as part of the nested loop's
			// predicate (the naive plan the paper compares against).
			pred, err := engine.Compile(conjuncts[ji], j.Schema())
			if err != nil {
				return nil, err
			}
			j.On = pred
			used[ji] = true
		}
		return withJoinResidual(j, b, conjuncts, used)
	default:
		return nil, fmt.Errorf("plan: unknown join strategy %d", opt.Join)
	}
}

func planHashJoin(left engine.Operator, b binding, lk, rk *sql.ColumnRef, conjuncts []sql.Expr, used []bool) (engine.Operator, error) {
	inner, err := accessPath(b, conjuncts, used)
	if err != nil {
		return nil, err
	}
	leftKey, err := engine.Compile(lk, left.Schema())
	if err != nil {
		return nil, err
	}
	rightKey, err := engine.Compile(rk, inner.Schema())
	if err != nil {
		return nil, err
	}
	j := &engine.HashJoin{Left: left, Right: inner, LeftKey: leftKey, RightKey: rightKey}
	return withJoinResidual(j, b, conjuncts, used)
}

// withJoinResidual attaches any remaining conjuncts that are now fully
// resolvable against the join's combined schema.
func withJoinResidual(j engine.Operator, b binding, conjuncts []sql.Expr, used []bool) (engine.Operator, error) {
	schema := j.Schema()
	op := j
	for i, c := range conjuncts {
		if used[i] {
			continue
		}
		pred, err := engine.Compile(c, schema)
		if err != nil {
			continue // belongs to a later join
		}
		used[i] = true
		op = &engine.Filter{Child: op, Pred: pred}
	}
	return op, nil
}

func applyResidual(op engine.Operator, conjuncts []sql.Expr, used []bool) (engine.Operator, error) {
	for i, c := range conjuncts {
		if used[i] {
			continue
		}
		pred, err := engine.Compile(c, op.Schema())
		if err != nil {
			return nil, fmt.Errorf("plan: predicate %s: %w", c, err)
		}
		used[i] = true
		op = &engine.Filter{Child: op, Pred: pred}
	}
	return op, nil
}
