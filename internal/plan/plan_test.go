package plan

import (
	"fmt"
	"strings"
	"testing"

	"veridb/internal/enclave"
	"veridb/internal/engine"
	"veridb/internal/record"
	"veridb/internal/sql"
	"veridb/internal/storage"
	"veridb/internal/vmem"
)

// fixture builds the paper's quote/inventory tables plus an orders table
// with a secondary chain, populated deterministically.
func fixture(t *testing.T) *storage.Store {
	t.Helper()
	mem, err := vmem.New(enclave.NewForTest(5), vmem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	st := storage.NewStore(mem)
	quote, err := st.CreateTable(storage.TableSpec{
		Name: "quote",
		Schema: record.NewSchema(
			record.Column{Name: "id", Type: record.TypeInt},
			record.Column{Name: "count", Type: record.TypeInt},
			record.Column{Name: "price", Type: record.TypeFloat},
		),
		PrimaryKey: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	inv, err := st.CreateTable(storage.TableSpec{
		Name: "inventory",
		Schema: record.NewSchema(
			record.Column{Name: "id", Type: record.TypeInt},
			record.Column{Name: "count", Type: record.TypeInt},
			record.Column{Name: "descr", Type: record.TypeText},
		),
		PrimaryKey: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	orders, err := st.CreateTable(storage.TableSpec{
		Name: "orders",
		Schema: record.NewSchema(
			record.Column{Name: "oid", Type: record.TypeInt},
			record.Column{Name: "cust", Type: record.TypeInt},
			record.Column{Name: "total", Type: record.TypeFloat},
			record.Column{Name: "region", Type: record.TypeText},
		),
		PrimaryKey:   0,
		ChainColumns: []int{1}, // chain on cust
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][3]int64{{1, 100, 100}, {2, 100, 200}, {3, 500, 100}, {4, 600, 100}} {
		quote.Insert(record.Tuple{record.Int(r[0]), record.Int(r[1]), record.Float(float64(r[2]))})
	}
	for _, r := range [][2]int64{{1, 50}, {3, 200}, {4, 100}, {6, 100}} {
		inv.Insert(record.Tuple{record.Int(r[0]), record.Int(r[1]), record.Text(fmt.Sprintf("desc%d", r[0]))})
	}
	regions := []string{"east", "west"}
	for i := int64(1); i <= 20; i++ {
		orders.Insert(record.Tuple{
			record.Int(i), record.Int(i % 5), record.Float(float64(i) * 10),
			record.Text(regions[i%2]),
		})
	}
	return st
}

func run(t *testing.T, st *storage.Store, query string, opt Options) []record.Tuple {
	t.Helper()
	stmt, err := sql.Parse(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	op, err := PlanSelect(st, stmt.(*sql.Select), opt)
	if err != nil {
		t.Fatalf("plan %q: %v", query, err)
	}
	rows, err := engine.Drain(op)
	if err != nil {
		t.Fatalf("run %q: %v", query, err)
	}
	return rows
}

func rowStrings(rows []record.Tuple) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

func TestSelectStar(t *testing.T) {
	st := fixture(t)
	rows := run(t, st, `SELECT * FROM quote`, Options{})
	if len(rows) != 4 || len(rows[0]) != 3 {
		t.Fatalf("rows %v", rowStrings(rows))
	}
	if rows[0][0].I != 1 { // chain order
		t.Fatalf("first row %v", rows[0])
	}
}

func TestWherePushdownRangeScan(t *testing.T) {
	st := fixture(t)
	stmt, _ := sql.Parse(`SELECT id FROM quote WHERE id >= 2 AND id <= 3`)
	op, err := PlanSelect(st, stmt.(*sql.Select), Options{})
	if err != nil {
		t.Fatal(err)
	}
	desc := Describe(op)
	if !strings.Contains(desc, "RangeScan") {
		t.Fatalf("no pushdown:\n%s", desc)
	}
	rows, err := engine.Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0].I != 2 || rows[1][0].I != 3 {
		t.Fatalf("rows %v", rowStrings(rows))
	}
}

func TestStrictBoundsRespected(t *testing.T) {
	st := fixture(t)
	rows := run(t, st, `SELECT id FROM quote WHERE id > 2 AND id < 4`, Options{})
	if len(rows) != 1 || rows[0][0].I != 3 {
		t.Fatalf("strict range rows %v", rowStrings(rows))
	}
}

func TestSecondaryChainPushdown(t *testing.T) {
	st := fixture(t)
	stmt, _ := sql.Parse(`SELECT oid FROM orders WHERE cust = 2`)
	op, err := PlanSelect(st, stmt.(*sql.Select), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Describe(op), "RangeScan(orders as orders, col=cust)") {
		t.Fatalf("no secondary pushdown:\n%s", Describe(op))
	}
	rows, err := engine.Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // oids 2,7,12,17
		t.Fatalf("rows %v", rowStrings(rows))
	}
}

func TestPaperJoinAllStrategies(t *testing.T) {
	query := `SELECT q.id, q.count, i.count
		FROM quote AS q, inventory AS i
		WHERE q.id = i.id AND q.count > i.count`
	for name, opt := range map[string]Options{
		"auto":   {},
		"index":  {Join: JoinIndex},
		"merge":  {Join: JoinMerge},
		"hash":   {Join: JoinHash},
		"nested": {Join: JoinNested},
	} {
		t.Run(name, func(t *testing.T) {
			st := fixture(t)
			rows := run(t, st, query, opt)
			if len(rows) != 3 {
				t.Fatalf("%s: %d rows: %v", name, len(rows), rowStrings(rows))
			}
			want := map[int64][2]int64{1: {100, 50}, 3: {500, 200}, 4: {600, 100}}
			for _, r := range rows {
				w, ok := want[r[0].I]
				if !ok || r[1].I != w[0] || r[2].I != w[1] {
					t.Fatalf("%s: bad row %v", name, r)
				}
			}
			if err := st.Memory().VerifyAll(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestJoinOnSyntax(t *testing.T) {
	st := fixture(t)
	rows := run(t, st, `SELECT q.id FROM quote q JOIN inventory i ON q.id = i.id`, Options{})
	if len(rows) != 3 {
		t.Fatalf("rows %v", rowStrings(rows))
	}
}

func TestAggregatesGlobal(t *testing.T) {
	st := fixture(t)
	rows := run(t, st, `SELECT COUNT(*), SUM(total), AVG(total), MIN(oid), MAX(oid) FROM orders`, Options{})
	if len(rows) != 1 {
		t.Fatalf("rows %d", len(rows))
	}
	r := rows[0]
	if r[0].I != 20 || r[1].F != 2100 || r[2].F != 105 || r[3].I != 1 || r[4].I != 20 {
		t.Fatalf("aggregates %v", rowStrings(rows))
	}
}

func TestGroupByHavingOrder(t *testing.T) {
	st := fixture(t)
	rows := run(t, st, `
		SELECT region, COUNT(*) AS n, SUM(total) AS revenue
		FROM orders
		GROUP BY region
		HAVING COUNT(*) > 1
		ORDER BY region`, Options{})
	if len(rows) != 2 {
		t.Fatalf("rows %v", rowStrings(rows))
	}
	if rows[0][0].S != "east" || rows[0][1].I != 10 {
		t.Fatalf("east row %v", rows[0])
	}
	if rows[1][0].S != "west" || rows[1][1].I != 10 {
		t.Fatalf("west row %v", rows[1])
	}
	// east: even oids 2..20 → sum 10*(2+20)/2*10 = 1100
	if rows[0][2].F != 1100 || rows[1][2].F != 1000 {
		t.Fatalf("revenue %v", rowStrings(rows))
	}
}

func TestGroupByExprArithmetic(t *testing.T) {
	st := fixture(t)
	rows := run(t, st, `SELECT cust % 2, COUNT(*) FROM orders GROUP BY cust % 2 ORDER BY cust % 2`, Options{})
	// i=1..20, cust=i%5: each cust 0..4 has 4 rows. cust%2==0 covers
	// custs {0,2,4} = 12 rows; cust%2==1 covers {1,3} = 8 rows.
	if len(rows) != 2 || rows[0][1].I != 12 || rows[1][1].I != 8 {
		t.Fatalf("rows %v", rowStrings(rows))
	}
}

func TestOrderByDescLimit(t *testing.T) {
	st := fixture(t)
	rows := run(t, st, `SELECT oid FROM orders ORDER BY total DESC LIMIT 3`, Options{})
	if len(rows) != 3 || rows[0][0].I != 20 || rows[1][0].I != 19 || rows[2][0].I != 18 {
		t.Fatalf("rows %v", rowStrings(rows))
	}
}

func TestProjectionAliasAndExpr(t *testing.T) {
	st := fixture(t)
	rows := run(t, st, `SELECT oid * 2 AS double_id FROM orders WHERE oid = 5`, Options{})
	if len(rows) != 1 || rows[0][0].I != 10 {
		t.Fatalf("rows %v", rowStrings(rows))
	}
	stmt, _ := sql.Parse(`SELECT oid * 2 AS double_id FROM orders`)
	op, _ := PlanSelect(st, stmt.(*sql.Select), Options{})
	if op.Schema()[0].Name != "double_id" {
		t.Fatalf("schema %v", op.Schema())
	}
}

func TestOrderByAliasAfterProjection(t *testing.T) {
	st := fixture(t)
	rows := run(t, st, `SELECT oid * 2 AS d FROM orders ORDER BY d DESC LIMIT 2`, Options{})
	if len(rows) != 2 || rows[0][0].I != 40 {
		t.Fatalf("rows %v", rowStrings(rows))
	}
}

func TestThreeWayJoin(t *testing.T) {
	st := fixture(t)
	rows := run(t, st, `
		SELECT q.id, o.oid
		FROM quote q, inventory i, orders o
		WHERE q.id = i.id AND o.cust = q.id AND o.total >= 100`, Options{})
	// quote⋈inventory ids: 1,3,4; orders with cust in {1,3,4} and total>=100:
	// cust=1: oids 11,16 (totals 110,160); cust=3: 13,18; cust=4: 14,19.
	if len(rows) != 6 {
		t.Fatalf("rows %v", rowStrings(rows))
	}
	if err := st.Memory().VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestPlanErrors(t *testing.T) {
	st := fixture(t)
	bad := []string{
		`SELECT * FROM missing`,
		`SELECT zzz FROM quote`,
		`SELECT q.id FROM quote q, quote q`,     // duplicate alias
		`SELECT id, COUNT(*) FROM quote`,        // bare column with aggregate
		`SELECT * FROM quote GROUP BY id`,       // * with aggregation
		`SELECT id FROM quote WHERE i.count= 1`, // unknown alias
	}
	for _, q := range bad {
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if _, err := PlanSelect(st, stmt.(*sql.Select), Options{}); err == nil {
			t.Fatalf("planned %q without error", q)
		}
	}
}

func TestUnqualifiedJoinColumnsGetQualified(t *testing.T) {
	// Q19-style: the equi-join condition names unqualified columns from
	// two different tables; the planner must still detect the equi-join
	// rather than degrading to a nested loop.
	st := fixture(t)
	stmt, _ := sql.Parse(`SELECT price FROM quote, inventory WHERE descr = 'desc1' AND price > 50`)
	// quote has price, inventory has descr: both refs are resolvable.
	if _, err := PlanSelect(st, stmt.(*sql.Select), Options{}); err != nil {
		t.Fatalf("unqualified single-table predicates: %v", err)
	}
	// Forced merge join on unqualified join columns must produce MergeJoin.
	stmt, _ = sql.Parse(`SELECT price FROM quote, orders WHERE oid = id`)
	op, err := PlanSelect(st, stmt.(*sql.Select), Options{Join: JoinMerge})
	if err != nil {
		t.Fatal(err)
	}
	if desc := Describe(op); !strings.Contains(desc, "MergeJoin") {
		t.Fatalf("unqualified equi-join did not plan a merge join:\n%s", desc)
	}
	rows, err := engine.Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // oids 1..4 match quote ids 1..4
		t.Fatalf("rows %v", rowStrings(rows))
	}
	// Ambiguous unqualified ref still errors cleanly.
	stmt, _ = sql.Parse(`SELECT price FROM quote, inventory WHERE count = 100`)
	if _, err := PlanSelect(st, stmt.(*sql.Select), Options{}); err == nil {
		t.Fatal("ambiguous column accepted")
	}
}

func TestBetweenPushdown(t *testing.T) {
	st := fixture(t)
	rows := run(t, st, `SELECT oid FROM orders WHERE oid BETWEEN 5 AND 7`, Options{})
	if len(rows) != 3 || rows[0][0].I != 5 || rows[2][0].I != 7 {
		t.Fatalf("rows %v", rowStrings(rows))
	}
}

func TestDescribeShapes(t *testing.T) {
	st := fixture(t)
	stmt, _ := sql.Parse(`SELECT region, COUNT(*) FROM orders WHERE oid > 3 GROUP BY region ORDER BY region LIMIT 1`)
	op, err := PlanSelect(st, stmt.(*sql.Select), Options{})
	if err != nil {
		t.Fatal(err)
	}
	desc := Describe(op)
	for _, want := range []string{"Limit", "Project", "Sort", "HashAggregate", "Filter", "RangeScan"} {
		if !strings.Contains(desc, want) {
			t.Fatalf("Describe missing %s:\n%s", want, desc)
		}
	}
}
