package plan

import (
	"fmt"
	"strings"

	"veridb/internal/engine"
	"veridb/internal/sql"
)

// hasAggregate reports whether the expression tree contains an aggregate.
func hasAggregate(e sql.Expr) bool {
	switch x := e.(type) {
	case *sql.FuncCall:
		return true
	case *sql.BinaryExpr:
		return hasAggregate(x.L) || hasAggregate(x.R)
	case *sql.UnaryExpr:
		return hasAggregate(x.E)
	case *sql.BetweenExpr:
		return hasAggregate(x.E) || hasAggregate(x.Lo) || hasAggregate(x.Hi)
	case *sql.InExpr:
		if hasAggregate(x.E) {
			return true
		}
		for _, i := range x.List {
			if hasAggregate(i) {
				return true
			}
		}
	case *sql.IsNullExpr:
		return hasAggregate(x.E)
	}
	return false
}

// collectAggs gathers distinct aggregate calls (by source form).
func collectAggs(e sql.Expr, into map[string]*sql.FuncCall, order *[]string) {
	switch x := e.(type) {
	case *sql.FuncCall:
		key := x.String()
		if _, ok := into[key]; !ok {
			into[key] = x
			*order = append(*order, key)
		}
	case *sql.BinaryExpr:
		collectAggs(x.L, into, order)
		collectAggs(x.R, into, order)
	case *sql.UnaryExpr:
		collectAggs(x.E, into, order)
	case *sql.BetweenExpr:
		collectAggs(x.E, into, order)
		collectAggs(x.Lo, into, order)
		collectAggs(x.Hi, into, order)
	case *sql.InExpr:
		collectAggs(x.E, into, order)
		for _, i := range x.List {
			collectAggs(i, into, order)
		}
	case *sql.IsNullExpr:
		collectAggs(x.E, into, order)
	}
}

// rewriteForAgg replaces group-by expressions and aggregate calls with
// references to the aggregate operator's output columns. Matching is by
// source form, the standard trick for deciding "appears in GROUP BY".
func rewriteForAgg(e sql.Expr, names map[string]string) (sql.Expr, error) {
	if e == nil {
		return nil, nil
	}
	if name, ok := names[e.String()]; ok {
		return &sql.ColumnRef{Column: name}, nil
	}
	switch x := e.(type) {
	case *sql.ColumnRef:
		return nil, fmt.Errorf("plan: column %s must appear in GROUP BY or inside an aggregate", x)
	case *sql.Literal:
		return x, nil
	case *sql.FuncCall:
		// Every aggregate was registered; reaching here means a nested or
		// unknown call.
		return nil, fmt.Errorf("plan: unsupported aggregate use %s", x)
	case *sql.BinaryExpr:
		l, err := rewriteForAgg(x.L, names)
		if err != nil {
			return nil, err
		}
		r, err := rewriteForAgg(x.R, names)
		if err != nil {
			return nil, err
		}
		return &sql.BinaryExpr{Op: x.Op, L: l, R: r}, nil
	case *sql.UnaryExpr:
		inner, err := rewriteForAgg(x.E, names)
		if err != nil {
			return nil, err
		}
		return &sql.UnaryExpr{Op: x.Op, E: inner}, nil
	case *sql.BetweenExpr:
		ne, err := rewriteForAgg(x.E, names)
		if err != nil {
			return nil, err
		}
		lo, err := rewriteForAgg(x.Lo, names)
		if err != nil {
			return nil, err
		}
		hi, err := rewriteForAgg(x.Hi, names)
		if err != nil {
			return nil, err
		}
		return &sql.BetweenExpr{E: ne, Lo: lo, Hi: hi, Negated: x.Negated}, nil
	case *sql.InExpr:
		ne, err := rewriteForAgg(x.E, names)
		if err != nil {
			return nil, err
		}
		list := make([]sql.Expr, len(x.List))
		for i, item := range x.List {
			if list[i], err = rewriteForAgg(item, names); err != nil {
				return nil, err
			}
		}
		return &sql.InExpr{E: ne, List: list, Negated: x.Negated}, nil
	case *sql.IsNullExpr:
		ne, err := rewriteForAgg(x.E, names)
		if err != nil {
			return nil, err
		}
		return &sql.IsNullExpr{E: ne, Negated: x.Negated}, nil
	default:
		return nil, fmt.Errorf("plan: unsupported expression %T under aggregation", e)
	}
}

// finishSelect layers aggregation, HAVING, projection, ORDER BY and LIMIT
// over the joined/filtered input.
func finishSelect(op engine.Operator, sel *sql.Select) (engine.Operator, error) {
	needsAgg := len(sel.GroupBy) > 0 || sel.Having != nil
	for _, item := range sel.Items {
		if !item.Star && hasAggregate(item.Expr) {
			needsAgg = true
		}
	}
	for _, o := range sel.OrderBy {
		if hasAggregate(o.Expr) {
			needsAgg = true
		}
	}

	inSchema := op.Schema()
	var projExprs []sql.Expr
	var projNames []string
	orderExprs := make([]sql.Expr, len(sel.OrderBy))
	for i, o := range sel.OrderBy {
		orderExprs[i] = o.Expr
	}
	having := sel.Having

	if needsAgg {
		// Build the aggregate operator: group columns then aggregates.
		names := map[string]string{} // source form -> agg output column
		var groupCompiled []*engine.Compiled
		var groupNames []string
		for i, g := range sel.GroupBy {
			c, err := engine.Compile(g, inSchema)
			if err != nil {
				return nil, err
			}
			name := fmt.Sprintf("group%d", i)
			if ref, ok := g.(*sql.ColumnRef); ok {
				name = ref.Column
			}
			groupCompiled = append(groupCompiled, c)
			groupNames = append(groupNames, name)
			names[g.String()] = name
		}
		aggCalls := map[string]*sql.FuncCall{}
		var aggOrder []string
		for _, item := range sel.Items {
			if !item.Star {
				collectAggs(item.Expr, aggCalls, &aggOrder)
			}
		}
		if having != nil {
			collectAggs(having, aggCalls, &aggOrder)
		}
		for _, o := range sel.OrderBy {
			collectAggs(o.Expr, aggCalls, &aggOrder)
		}
		var specs []engine.AggSpec
		for i, key := range aggOrder {
			fc := aggCalls[key]
			fn, err := engine.AggFuncByName(fc.Name)
			if err != nil {
				return nil, err
			}
			spec := engine.AggSpec{Func: fn, Name: fmt.Sprintf("agg%d", i)}
			if !fc.Star {
				arg, err := engine.Compile(fc.Arg, inSchema)
				if err != nil {
					return nil, err
				}
				spec.Arg = arg
			}
			specs = append(specs, spec)
			names[key] = spec.Name
		}
		op = &engine.HashAggregate{
			Child:   op,
			GroupBy: groupCompiled,
			Names:   groupNames,
			Aggs:    specs,
		}
		// Rewrite downstream expressions against the aggregate schema.
		if having != nil {
			var err error
			if having, err = rewriteForAgg(having, names); err != nil {
				return nil, err
			}
		}
		for i := range orderExprs {
			var err error
			if orderExprs[i], err = rewriteForAgg(orderExprs[i], names); err != nil {
				return nil, err
			}
		}
		for _, item := range sel.Items {
			if item.Star {
				return nil, fmt.Errorf("plan: SELECT * cannot be combined with aggregation")
			}
			re, err := rewriteForAgg(item.Expr, names)
			if err != nil {
				return nil, err
			}
			projExprs = append(projExprs, re)
			projNames = append(projNames, itemName(item))
		}
	} else {
		for _, item := range sel.Items {
			if item.Star {
				for _, c := range op.Schema() {
					projExprs = append(projExprs, &sql.ColumnRef{Table: c.Table, Column: c.Name})
					projNames = append(projNames, c.Name)
				}
				continue
			}
			projExprs = append(projExprs, item.Expr)
			projNames = append(projNames, itemName(item))
		}
	}

	if having != nil {
		pred, err := engine.Compile(having, op.Schema())
		if err != nil {
			return nil, err
		}
		op = &engine.Filter{Child: op, Pred: pred}
	}
	// ORDER BY before projection (it may reference non-projected columns);
	// fall back to after-projection aliases if that fails.
	var sortKeys []engine.SortKey
	sortAfterProject := false
	for i, oe := range orderExprs {
		c, err := engine.Compile(oe, op.Schema())
		if err != nil {
			sortAfterProject = true
			break
		}
		sortKeys = append(sortKeys, engine.SortKey{Expr: c, Desc: sel.OrderBy[i].Desc})
	}
	if len(sel.OrderBy) > 0 && !sortAfterProject {
		op = &engine.Sort{Child: op, Keys: sortKeys}
	}
	// Projection.
	exprs := make([]*engine.Compiled, len(projExprs))
	for i, pe := range projExprs {
		c, err := engine.Compile(pe, op.Schema())
		if err != nil {
			return nil, err
		}
		exprs[i] = c
	}
	op = &engine.Project{Child: op, Exprs: exprs, Names: projNames}
	if sortAfterProject {
		keys := make([]engine.SortKey, len(orderExprs))
		for i, oe := range orderExprs {
			c, err := engine.Compile(oe, op.Schema())
			if err != nil {
				return nil, fmt.Errorf("plan: ORDER BY %s: %w", oe, err)
			}
			keys[i] = engine.SortKey{Expr: c, Desc: sel.OrderBy[i].Desc}
		}
		op = &engine.Sort{Child: op, Keys: keys}
	}
	if sel.Limit >= 0 {
		op = &engine.Limit{Child: op, N: sel.Limit}
	}
	return op, nil
}

// itemName derives the output column name for a select item.
func itemName(item sql.SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	if ref, ok := item.Expr.(*sql.ColumnRef); ok {
		return ref.Column
	}
	return item.Expr.String()
}

// Describe renders an operator tree for EXPLAIN-style output.
func Describe(op engine.Operator) string {
	var sb strings.Builder
	describe(op, 0, &sb)
	return sb.String()
}

func describe(op engine.Operator, depth int, sb *strings.Builder) {
	indent := strings.Repeat("  ", depth)
	switch x := op.(type) {
	case *engine.TableScan:
		if x.Col < 0 {
			fmt.Fprintf(sb, "%sSeqScan(%s as %s)\n", indent, x.Table.Name(), x.Alias)
		} else {
			fmt.Fprintf(sb, "%sRangeScan(%s as %s, col=%s)\n", indent, x.Table.Name(), x.Alias,
				x.Table.Schema().Columns[x.Col].Name)
		}
	case *engine.Filter:
		fmt.Fprintf(sb, "%sFilter(%s)\n", indent, x.Pred)
		describe(x.Child, depth+1, sb)
	case *engine.Project:
		fmt.Fprintf(sb, "%sProject(%s)\n", indent, strings.Join(x.Names, ", "))
		describe(x.Child, depth+1, sb)
	case *engine.Limit:
		fmt.Fprintf(sb, "%sLimit(%d)\n", indent, x.N)
		describe(x.Child, depth+1, sb)
	case *engine.Sort:
		fmt.Fprintf(sb, "%sSort\n", indent)
		describe(x.Child, depth+1, sb)
	case *engine.HashAggregate:
		fmt.Fprintf(sb, "%sHashAggregate(groups=%d, aggs=%d)\n", indent, len(x.GroupBy), len(x.Aggs))
		describe(x.Child, depth+1, sb)
	case *engine.IndexJoin:
		fmt.Fprintf(sb, "%sIndexJoin(inner=%s as %s, key=%s)\n", indent, x.InnerTable.Name(), x.InnerAlias, x.OuterKey)
		describe(x.Outer, depth+1, sb)
	case *engine.NestedLoopJoin:
		fmt.Fprintf(sb, "%sNestedLoopJoin\n", indent)
		describe(x.Outer, depth+1, sb)
		describe(x.Inner, depth+1, sb)
	case *engine.MergeJoin:
		fmt.Fprintf(sb, "%sMergeJoin\n", indent)
		describe(x.Left, depth+1, sb)
		describe(x.Right, depth+1, sb)
	case *engine.HashJoin:
		fmt.Fprintf(sb, "%sHashJoin\n", indent)
		describe(x.Left, depth+1, sb)
		describe(x.Right, depth+1, sb)
	case *engine.Values:
		fmt.Fprintf(sb, "%sValues(%d rows)\n", indent, len(x.Rows))
	default:
		fmt.Fprintf(sb, "%s%T\n", indent, op)
	}
}
