package portal

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"veridb/internal/govern"
	"veridb/internal/record"
)

// wideExec returns a response of roughly width bytes for any query, so
// tests can fill the byte-bounded response cache quickly.
type wideExec struct{ width int }

func (e *wideExec) Execute(query string) (*Result, error) {
	return &Result{
		Columns: []string{"payload"},
		Rows:    []record.Tuple{{record.Text(strings.Repeat("x", e.width))}},
	}, nil
}

func serveOK(t *testing.T, p *Portal, key []byte, qid uint64) *Response {
	t.Helper()
	req := Request{ClientID: "alice", QID: qid, Query: "SELECT 1"}
	req.MAC = SignRequest(key, req.ClientID, req.QID, req.Query)
	resp, err := p.Serve(req)
	if err != nil {
		t.Fatalf("qid %d: %v", qid, err)
	}
	return resp
}

// TestResponseCacheByteBound: the response cache never holds more than the
// configured byte budget — oldest endorsements are evicted first, the
// eviction counter advances, and a replay of an evicted qid is refused
// while a still-cached qid replays fine.
func TestResponseCacheByteBound(t *testing.T) {
	p, key := newPortal(t, &wideExec{width: 1024})
	p.SetResponseCacheBytes(4096)
	const n = 20
	for qid := uint64(1); qid <= n; qid++ {
		serveOK(t, p, key, qid)
	}
	st := p.CacheStats()
	if st.Bytes > 4096 {
		t.Fatalf("cache holds %d bytes past the 4096 bound", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions despite overflow")
	}
	if st.Entries >= n {
		t.Fatalf("all %d entries retained under a bound that fits ~3", n)
	}
	// Oldest-first: qid 1 is gone, the newest qid is still cached.
	old := Request{ClientID: "alice", QID: 1, Query: "SELECT 1"}
	old.MAC = SignRequest(key, old.ClientID, old.QID, old.Query)
	if _, err := p.Serve(old); !errors.Is(err, ErrReplayedQID) {
		t.Fatalf("evicted replay served: %v", err)
	}
	fresh := Request{ClientID: "alice", QID: n, Query: "SELECT 1"}
	fresh.MAC = SignRequest(key, fresh.ClientID, fresh.QID, fresh.Query)
	if _, err := p.Serve(fresh); err != nil {
		t.Fatalf("cached replay rejected: %v", err)
	}
}

// TestResponseCacheChargesBudget: every cached byte is charged to the
// process budget and released on eviction, so the cache's footprint is
// visible to (and bounded with) the rest of the memory governor.
func TestResponseCacheChargesBudget(t *testing.T) {
	p, key := newPortal(t, &wideExec{width: 512})
	b := govern.NewBudget(0) // track-only
	p.SetBudget(b)
	for qid := uint64(1); qid <= 8; qid++ {
		serveOK(t, p, key, qid)
	}
	if used, cached := b.Used(), p.CacheStats().Bytes; used != cached {
		t.Fatalf("budget used %d != cached bytes %d", used, cached)
	}
	// Shrinking the bound evicts immediately and releases the charges.
	p.SetResponseCacheBytes(1024)
	st := p.CacheStats()
	if st.Bytes > 1024 {
		t.Fatalf("cache holds %d bytes after shrink to 1024", st.Bytes)
	}
	if used := b.Used(); used != st.Bytes {
		t.Fatalf("budget used %d != cached bytes %d after shrink", used, st.Bytes)
	}
}

// TestSignRequestTimeoutZeroCompat: a zero timeout folds nothing extra
// into the MAC — byte-identical to the legacy SignRequest, so old clients
// and new portals interoperate.
func TestSignRequestTimeoutZeroCompat(t *testing.T) {
	key := []byte("shared")
	legacy := SignRequest(key, "alice", 7, "SELECT 1")
	zero := SignRequestTimeout(key, "alice", 7, "SELECT 1", 0)
	if !bytes.Equal(legacy, zero) {
		t.Fatal("zero-timeout MAC differs from legacy SignRequest")
	}
	if with := SignRequestTimeout(key, "alice", 7, "SELECT 1", 250); bytes.Equal(with, legacy) {
		t.Fatal("timeout not folded into the MAC")
	}
}

// ctxExec records the context the portal dispatched with.
type ctxExec struct {
	echoExec
	deadline bool
}

func (e *ctxExec) ExecuteContext(ctx context.Context, clientID, query string) (*Result, error) {
	_, e.deadline = ctx.Deadline()
	return e.echoExec.Execute(query)
}

// TestTimeoutIsAuthenticatedAndDispatched: the per-request timeout is
// covered by the request MAC (a relay cannot stretch or strip it), and a
// nonzero timeout reaches a ContextExecutor as a real context deadline.
func TestTimeoutIsAuthenticatedAndDispatched(t *testing.T) {
	ex := &ctxExec{}
	p, key := newPortal(t, ex)
	req := Request{ClientID: "alice", QID: 3, Query: "SELECT 1", TimeoutMS: 50}
	req.MAC = SignRequestTimeout(key, req.ClientID, req.QID, req.Query, req.TimeoutMS)
	// Tampered timeout → MAC reject, never executed.
	forged := req
	forged.TimeoutMS = 5000
	if _, err := p.Serve(forged); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("stretched timeout accepted: %v", err)
	}
	start := time.Now()
	if _, err := p.Serve(req); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("dispatch stalled")
	}
	if !ex.deadline {
		t.Fatal("executor context carried no deadline for TimeoutMS=50")
	}
}
