package portal

// Concurrency audit for the pipelined wire path: the binary protocol puts
// many requests from ONE connection in flight through Serve at once, so
// the portal must sequence, execute, endorse and cache them concurrently
// — distinct qids each executing exactly once with distinct sequence
// numbers, and a replayed qid never executing twice no matter how many
// copies race.

import (
	"bytes"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"veridb/internal/record"
)

// countingExec counts executions and can block until released, to hold
// many Serve calls in the execution window at once.
type countingExec struct {
	calls atomic.Int64
	gate  chan struct{} // non-nil: Execute blocks until closed
}

func (e *countingExec) Execute(query string) (*Result, error) {
	e.calls.Add(1)
	if e.gate != nil {
		<-e.gate
	}
	return &Result{Columns: []string{"q"}, Rows: []record.Tuple{{record.Text(query)}}}, nil
}

// TestServeConcurrentDistinctQIDs drives many Serve calls in parallel for
// one client: every response MAC-verifies, every sequence number is
// distinct, and the executor ran exactly once per request.
func TestServeConcurrentDistinctQIDs(t *testing.T) {
	exec := &countingExec{}
	p, key := newPortal(t, exec)

	const n = 64
	resps := make([]*Response, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			qid := uint64(i + 1)
			req := Request{ClientID: "alice", QID: qid, Query: "SELECT 1"}
			req.MAC = SignRequest(key, req.ClientID, req.QID, req.Query)
			resps[i], errs[i] = p.Serve(req)
		}(i)
	}
	wg.Wait()

	seqs := make(map[uint64]bool, n)
	for i, resp := range resps {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if resp.ErrMsg != "" {
			t.Fatalf("request %d: %+v", i, resp)
		}
		if !bytes.Equal(resp.MAC, SignResponse(key, resp)) {
			t.Fatalf("request %d: response MAC does not verify", i)
		}
		if seqs[resp.Seq] {
			t.Fatalf("sequence number %d issued twice", resp.Seq)
		}
		seqs[resp.Seq] = true
	}
	if got := exec.calls.Load(); got != n {
		t.Fatalf("executor ran %d times for %d requests", got, n)
	}
}

// TestServeConcurrentSameQIDExecutesOnce races many copies of ONE request
// (same qid, same MAC — a pipelined client retransmitting) while the
// first execution is parked inside the executor: exactly one copy
// executes; the rest are rejected with ErrReplayedQID while it is in
// flight, and replayed from the cache (bit-identical endorsement) after
// it completes.
func TestServeConcurrentSameQIDExecutesOnce(t *testing.T) {
	exec := &countingExec{gate: make(chan struct{})}
	p, key := newPortal(t, exec)

	req := Request{ClientID: "alice", QID: 7, Query: "SELECT 1"}
	req.MAC = SignRequest(key, req.ClientID, req.QID, req.Query)

	first := make(chan *Response, 1)
	go func() {
		resp, err := p.Serve(req)
		if err != nil {
			t.Errorf("original request failed: %v", err)
		}
		first <- resp
	}()
	// Wait until the original is parked inside Execute.
	for exec.calls.Load() == 0 {
		runtime.Gosched()
	}

	// Racing copies while the original is in flight: rejected, not re-run.
	const racers = 16
	var wg sync.WaitGroup
	var replays atomic.Int64
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Serve(req); err != nil {
				replays.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := replays.Load(); got != racers {
		t.Fatalf("%d of %d in-flight replays were not rejected", racers-got, racers)
	}

	close(exec.gate)
	orig := <-first

	// After completion the cached endorsement replays bit-identically.
	cached, err := p.Serve(req)
	if err != nil {
		t.Fatalf("post-completion replay: %v", err)
	}
	if cached.Seq != orig.Seq || !bytes.Equal(cached.MAC, orig.MAC) {
		t.Fatalf("cached replay differs: %+v vs %+v", cached, orig)
	}
	if got := exec.calls.Load(); got != 1 {
		t.Fatalf("executor ran %d times for one qid", got)
	}
}
