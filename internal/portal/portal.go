// Package portal implements VeriDB's query portal (paper §5.1): the
// enclave-resident entry point that authorises client queries, assigns
// strictly increasing sequence numbers (the rollback defence), executes
// them, and endorses results on the way back to the client (Fig. 2 steps
// 1 and 7).
package portal

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"veridb/internal/enclave"
	"veridb/internal/record"
)

// Errors raised by the portal.
var (
	// ErrUnauthorized covers unknown clients and MAC mismatches: the query
	// was not initiated by the claimed client (§5.1 "otherwise an
	// adversarial service provider can launch a SQL query to modify the
	// database in any way it wants").
	ErrUnauthorized = errors.New("portal: query authorization failed")
	// ErrReplayedQID means a query id was seen before: a replayed request.
	ErrReplayedQID = errors.New("portal: query id replayed")
)

// Result is a query outcome produced by the trusted executor.
type Result struct {
	Columns  []string
	Rows     []record.Tuple
	Affected int
}

// Executor runs an authorised query inside the trust boundary. The core
// package provides the implementation.
type Executor interface {
	Execute(query string) (*Result, error)
}

// SessionExecutor is implemented by executors that keep per-client session
// state (core.DB does: BEGIN SNAPSHOT pins a read point for the issuing
// client only). When the executor supports it, the portal routes each
// authenticated request under the client's own session so one client's
// pinned snapshot never leaks into another's queries.
type SessionExecutor interface {
	Executor
	ExecuteSession(clientID, query string) (*Result, error)
}

// Request is an authenticated client query.
type Request struct {
	ClientID string
	QID      uint64 // unique per client; replays are rejected
	Query    string
	MAC      []byte // HMAC(k, clientID ‖ qid ‖ query)
}

// Response carries the result, its sequence number and the portal's MAC.
type Response struct {
	QID      uint64
	Seq      uint64 // strictly increasing; repeats reveal rollback (§5.1)
	Columns  []string
	Rows     []record.Tuple
	Affected int
	ErrMsg   string // execution error, authenticated like any result
	// Quarantined marks an authenticated "integrity compromised" response:
	// the database's verifier raised a sticky tamper alarm and the portal
	// refuses to endorse results from the compromised state. The flag is
	// part of the MACed digest, so a client can distinguish an honest
	// quarantine from a lying server stripping or forging errors.
	Quarantined bool
	MAC         []byte // HMAC(k, "resp" ‖ qid ‖ seq ‖ digest)
}

// Quarantiner is implemented by executors that can report a sticky
// integrity compromise (core.DB does). A non-nil QuarantineError fences
// execution: the portal answers every request with an authenticated
// quarantine response instead of endorsing results from tampered state.
type Quarantiner interface {
	QuarantineError() error
}

// responseCacheSize bounds the per-client last-response cache. A retried
// request whose original response was already evicted gets ErrReplayedQID
// again — the cache trades a little enclave memory for retry idempotence,
// not unbounded history.
const responseCacheSize = 128

// clientState is the portal's per-client replay defence: the full set of
// served qids (replays are never re-executed) plus a bounded cache of the
// most recent endorsed responses so a client retrying a lost response gets
// the original endorsement back instead of an error.
type clientState struct {
	seen  map[uint64]bool
	cache map[uint64]*Response
	order []uint64 // cached qids, oldest first (eviction order)
}

// Portal is the enclave-resident query gateway.
type Portal struct {
	enc  *enclave.Enclave
	exec Executor
	seq  *atomic.Uint64

	mu      sync.Mutex
	clients map[string]*clientState
}

// New builds a portal over an enclave and executor.
func New(enc *enclave.Enclave, exec Executor) *Portal {
	return &Portal{
		enc:     enc,
		exec:    exec,
		seq:     enc.MonotonicCounter("portal-seq"),
		clients: make(map[string]*clientState),
	}
}

// Seq returns the highest sequence number assigned so far — the floor a
// failover replacement must resume above for clients to observe seq
// continuity.
func (p *Portal) Seq() uint64 { return p.seq.Load() }

// SignRequest computes the request MAC with the pre-exchanged key. The
// client package calls this on its own copy of the key.
func SignRequest(key []byte, clientID string, qid uint64, query string) []byte {
	mac := hmac.New(sha256.New, key)
	writeField(mac, []byte("req"))
	writeField(mac, []byte(clientID))
	var q [8]byte
	binary.LittleEndian.PutUint64(q[:], qid)
	writeField(mac, q[:])
	writeField(mac, []byte(query))
	return mac.Sum(nil)
}

// ResponseDigest deterministically hashes a response's payload.
func ResponseDigest(resp *Response) []byte {
	h := sha256.New()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], resp.QID)
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], resp.Seq)
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], uint64(resp.Affected))
	h.Write(b[:])
	for _, c := range resp.Columns {
		writeField(h, []byte(c))
	}
	for _, row := range resp.Rows {
		writeField(h, record.Encode(&record.Record{Data: row}))
	}
	writeField(h, []byte(resp.ErrMsg))
	q := byte(0)
	if resp.Quarantined {
		q = 1
	}
	writeField(h, []byte{q})
	return h.Sum(nil)
}

// SignResponse computes the response MAC.
func SignResponse(key []byte, resp *Response) []byte {
	mac := hmac.New(sha256.New, key)
	writeField(mac, []byte("resp"))
	writeField(mac, ResponseDigest(resp))
	return mac.Sum(nil)
}

func writeField(h interface{ Write([]byte) (int, error) }, b []byte) {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(b)))
	h.Write(n[:])
	h.Write(b)
}

// Serve authorises and executes one request (Fig. 2 steps 1–7). Every
// response — including execution failures and integrity quarantines — is
// sequenced and MACed so the client can detect tampering with the error
// channel too. A replayed qid whose original response is still cached
// returns that cached endorsement (idempotent client retries after a lost
// response); a replayed qid with no cached response is rejected.
func (p *Portal) Serve(req Request) (*Response, error) {
	p.enc.ECall() // the query enters the enclave
	key, ok := p.enc.MACKey(req.ClientID)
	if !ok {
		return nil, fmt.Errorf("%w: unknown client %q", ErrUnauthorized, req.ClientID)
	}
	want := SignRequest(key, req.ClientID, req.QID, req.Query)
	if !hmac.Equal(want, req.MAC) {
		return nil, fmt.Errorf("%w: MAC mismatch for client %q", ErrUnauthorized, req.ClientID)
	}
	p.mu.Lock()
	st := p.clients[req.ClientID]
	if st == nil {
		st = &clientState{seen: make(map[uint64]bool), cache: make(map[uint64]*Response)}
		p.clients[req.ClientID] = st
	}
	if st.seen[req.QID] {
		cached := st.cache[req.QID]
		p.mu.Unlock()
		if cached != nil {
			return cached, nil
		}
		// Evicted, or the first execution is still in flight: the retry
		// must not re-execute (at-most-once), so reject it.
		return nil, fmt.Errorf("%w: client %q qid %d", ErrReplayedQID, req.ClientID, req.QID)
	}
	st.seen[req.QID] = true
	p.mu.Unlock()

	resp := &Response{QID: req.QID, Seq: p.seq.Add(1)}
	if q, ok := p.exec.(Quarantiner); ok {
		if qerr := q.QuarantineError(); qerr != nil {
			// The database is fenced: endorse the quarantine itself, never
			// a result computed from tampered state.
			resp.Quarantined = true
			resp.ErrMsg = qerr.Error()
			resp.MAC = SignResponse(key, resp)
			p.cacheResponse(st, resp)
			return resp, nil
		}
	}
	var res *Result
	var err error
	if se, ok := p.exec.(SessionExecutor); ok {
		res, err = se.ExecuteSession(req.ClientID, req.Query)
	} else {
		res, err = p.exec.Execute(req.Query)
	}
	if err != nil {
		resp.ErrMsg = err.Error()
	} else {
		resp.Columns = res.Columns
		resp.Rows = res.Rows
		resp.Affected = res.Affected
	}
	resp.MAC = SignResponse(key, resp)
	p.cacheResponse(st, resp)
	return resp, nil
}

// cacheResponse stores an endorsed response for retry idempotence,
// evicting the oldest cached entry beyond the per-client budget.
func (p *Portal) cacheResponse(st *clientState, resp *Response) {
	p.mu.Lock()
	st.cache[resp.QID] = resp
	st.order = append(st.order, resp.QID)
	for len(st.order) > responseCacheSize {
		delete(st.cache, st.order[0])
		st.order = st.order[1:]
	}
	p.mu.Unlock()
}

// ResumeAt fast-forwards the sequence counter after recovery. A machine
// failure wipes the enclave (and, for an in-memory database, the data);
// recovery replays writes from a replica and must resume sequencing above
// every number the client has already seen, which the client supplies
// (§5.1: defending rollback "crucially relies on a trusted persistent
// storage" — here, the client's own interval list).
func (p *Portal) ResumeAt(floor uint64) {
	for {
		cur := p.seq.Load()
		if cur >= floor {
			return
		}
		if p.seq.CompareAndSwap(cur, floor) {
			return
		}
	}
}
