// Package portal implements VeriDB's query portal (paper §5.1): the
// enclave-resident entry point that authorises client queries, assigns
// strictly increasing sequence numbers (the rollback defence), executes
// them, and endorses results on the way back to the client (Fig. 2 steps
// 1 and 7).
package portal

import (
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"veridb/internal/enclave"
	"veridb/internal/govern"
	"veridb/internal/record"
)

// Errors raised by the portal.
var (
	// ErrUnauthorized covers unknown clients and MAC mismatches: the query
	// was not initiated by the claimed client (§5.1 "otherwise an
	// adversarial service provider can launch a SQL query to modify the
	// database in any way it wants").
	ErrUnauthorized = errors.New("portal: query authorization failed")
	// ErrReplayedQID means a query id was seen before: a replayed request.
	ErrReplayedQID = errors.New("portal: query id replayed")
)

// Result is a query outcome produced by the trusted executor.
type Result struct {
	Columns  []string
	Rows     []record.Tuple
	Affected int
}

// Executor runs an authorised query inside the trust boundary. The core
// package provides the implementation.
type Executor interface {
	Execute(query string) (*Result, error)
}

// SessionExecutor is implemented by executors that keep per-client session
// state (core.DB does: BEGIN SNAPSHOT pins a read point for the issuing
// client only). When the executor supports it, the portal routes each
// authenticated request under the client's own session so one client's
// pinned snapshot never leaks into another's queries.
type SessionExecutor interface {
	Executor
	ExecuteSession(clientID, query string) (*Result, error)
}

// ContextExecutor is implemented by executors that honor per-request
// deadlines and cancellation (core.DB does). When the executor supports
// it, the portal derives a context from the request's TimeoutMS and the
// statement is cancelled — resources released — once it elapses.
type ContextExecutor interface {
	Executor
	ExecuteContext(ctx context.Context, clientID, query string) (*Result, error)
}

// Request is an authenticated client query.
type Request struct {
	ClientID string
	QID      uint64 // unique per client; replays are rejected
	Query    string
	// TimeoutMS, when nonzero, is the client's per-request deadline in
	// milliseconds; the server's own StatementTimeout still applies
	// (whichever is sooner wins). Folded into the MAC only when set, so
	// requests without a deadline authenticate exactly as before.
	TimeoutMS uint64
	MAC       []byte // HMAC(k, clientID ‖ qid ‖ query [‖ timeout])
}

// Response carries the result, its sequence number and the portal's MAC.
type Response struct {
	QID      uint64
	Seq      uint64 // strictly increasing; repeats reveal rollback (§5.1)
	Columns  []string
	Rows     []record.Tuple
	Affected int
	ErrMsg   string // execution error, authenticated like any result
	// Quarantined marks an authenticated "integrity compromised" response:
	// the database's verifier raised a sticky tamper alarm and the portal
	// refuses to endorse results from the compromised state. The flag is
	// part of the MACed digest, so a client can distinguish an honest
	// quarantine from a lying server stripping or forging errors.
	Quarantined bool
	MAC         []byte // HMAC(k, "resp" ‖ qid ‖ seq ‖ digest)
}

// Quarantiner is implemented by executors that can report a sticky
// integrity compromise (core.DB does). A non-nil QuarantineError fences
// execution: the portal answers every request with an authenticated
// quarantine response instead of endorsing results from tampered state.
type Quarantiner interface {
	QuarantineError() error
}

// responseCacheSize bounds the per-client last-response cache. A retried
// request whose original response was already evicted gets ErrReplayedQID
// again — the cache trades a little enclave memory for retry idempotence,
// not unbounded history.
const responseCacheSize = 128

// defaultResponseCacheBytes bounds the response cache's total estimated
// bytes across all clients: a handful of very large result sets must not
// dwarf the per-client entry limit. Oldest entries are evicted first.
const defaultResponseCacheBytes = 16 << 20

// clientState is the portal's per-client replay defence: the full set of
// served qids (replays are never re-executed) plus a bounded cache of the
// most recent endorsed responses so a client retrying a lost response gets
// the original endorsement back instead of an error.
type clientState struct {
	seen  map[uint64]bool
	cache map[uint64]*Response
	size  map[uint64]int64 // cached entry byte estimates (for eviction)
	order []uint64         // cached qids, oldest first (eviction order)
}

// cacheRef identifies one cached response in global insertion order.
type cacheRef struct {
	st  *clientState
	qid uint64
}

// Portal is the enclave-resident query gateway.
type Portal struct {
	enc  *enclave.Enclave
	exec Executor
	seq  *atomic.Uint64

	mu      sync.Mutex
	clients map[string]*clientState
	// Response-cache byte accounting: total estimated bytes, the bound,
	// the global oldest-first eviction order, and the eviction counter.
	cacheBytes int64
	cacheMax   int64
	cacheOrder []cacheRef
	evictions  int64
	// budget, when set, is charged for cached response bytes so the cache
	// participates in the process memory governor.
	budget *govern.Budget
}

// New builds a portal over an enclave and executor.
func New(enc *enclave.Enclave, exec Executor) *Portal {
	return &Portal{
		enc:      enc,
		exec:     exec,
		seq:      enc.MonotonicCounter("portal-seq"),
		clients:  make(map[string]*clientState),
		cacheMax: defaultResponseCacheBytes,
	}
}

// SetBudget charges cached response bytes against the process memory
// budget (nil detaches). Call before serving traffic.
func (p *Portal) SetBudget(b *govern.Budget) {
	p.mu.Lock()
	p.budget = b
	p.mu.Unlock()
}

// SetResponseCacheBytes bounds the response cache's total estimated bytes;
// n <= 0 restores the default. Shrinking evicts oldest-first immediately.
func (p *Portal) SetResponseCacheBytes(n int64) {
	p.mu.Lock()
	if n <= 0 {
		n = defaultResponseCacheBytes
	}
	p.cacheMax = n
	p.evictOverBytesLocked()
	p.mu.Unlock()
}

// CacheStats is a point-in-time snapshot of the response cache.
type CacheStats struct {
	// Entries is the number of cached responses across all clients.
	Entries int
	// Bytes is the estimated total size of cached responses.
	Bytes int64
	// Evictions counts responses dropped by either bound (per-client
	// entries or total bytes) since the portal started.
	Evictions int64
}

// CacheStats snapshots the response-cache counters.
func (p *Portal) CacheStats() CacheStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	entries := 0
	for _, st := range p.clients {
		entries += len(st.cache)
	}
	return CacheStats{Entries: entries, Bytes: p.cacheBytes, Evictions: p.evictions}
}

// responseBytes estimates a cached response's heap footprint.
func responseBytes(resp *Response) int64 {
	n := int64(160) // struct, slice headers, MAC backing array
	n += int64(len(resp.ErrMsg) + len(resp.MAC))
	for _, c := range resp.Columns {
		n += 16 + int64(len(c))
	}
	for _, row := range resp.Rows {
		n += record.TupleBytes(row)
	}
	return n
}

// Seq returns the highest sequence number assigned so far — the floor a
// failover replacement must resume above for clients to observe seq
// continuity.
func (p *Portal) Seq() uint64 { return p.seq.Load() }

// SignRequest computes the request MAC with the pre-exchanged key. The
// client package calls this on its own copy of the key.
func SignRequest(key []byte, clientID string, qid uint64, query string) []byte {
	return SignRequestTimeout(key, clientID, qid, query, 0)
}

// SignRequestTimeout is SignRequest for requests carrying a per-request
// deadline. A zero timeout yields the exact legacy MAC (the field is
// folded in only when set), so deadline-less clients and servers remain
// bit-compatible; a nonzero timeout is authenticated so a relay cannot
// strip or stretch a client's deadline.
func SignRequestTimeout(key []byte, clientID string, qid uint64, query string, timeoutMS uint64) []byte {
	mac := hmac.New(sha256.New, key)
	writeField(mac, []byte("req"))
	writeField(mac, []byte(clientID))
	var q [8]byte
	binary.LittleEndian.PutUint64(q[:], qid)
	writeField(mac, q[:])
	writeField(mac, []byte(query))
	if timeoutMS != 0 {
		var t [8]byte
		binary.LittleEndian.PutUint64(t[:], timeoutMS)
		writeField(mac, []byte("deadline"))
		writeField(mac, t[:])
	}
	return mac.Sum(nil)
}

// ResponseDigest deterministically hashes a response's payload.
func ResponseDigest(resp *Response) []byte {
	h := sha256.New()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], resp.QID)
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], resp.Seq)
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], uint64(resp.Affected))
	h.Write(b[:])
	for _, c := range resp.Columns {
		writeField(h, []byte(c))
	}
	for _, row := range resp.Rows {
		writeField(h, record.Encode(&record.Record{Data: row}))
	}
	writeField(h, []byte(resp.ErrMsg))
	q := byte(0)
	if resp.Quarantined {
		q = 1
	}
	writeField(h, []byte{q})
	return h.Sum(nil)
}

// SignResponse computes the response MAC.
func SignResponse(key []byte, resp *Response) []byte {
	mac := hmac.New(sha256.New, key)
	writeField(mac, []byte("resp"))
	writeField(mac, ResponseDigest(resp))
	return mac.Sum(nil)
}

func writeField(h interface{ Write([]byte) (int, error) }, b []byte) {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(b)))
	h.Write(n[:])
	h.Write(b)
}

// Serve authorises and executes one request (Fig. 2 steps 1–7). Every
// response — including execution failures and integrity quarantines — is
// sequenced and MACed so the client can detect tampering with the error
// channel too. A replayed qid whose original response is still cached
// returns that cached endorsement (idempotent client retries after a lost
// response); a replayed qid with no cached response is rejected.
func (p *Portal) Serve(req Request) (*Response, error) {
	p.enc.ECall() // the query enters the enclave
	key, ok := p.enc.MACKey(req.ClientID)
	if !ok {
		return nil, fmt.Errorf("%w: unknown client %q", ErrUnauthorized, req.ClientID)
	}
	want := SignRequestTimeout(key, req.ClientID, req.QID, req.Query, req.TimeoutMS)
	if !hmac.Equal(want, req.MAC) {
		return nil, fmt.Errorf("%w: MAC mismatch for client %q", ErrUnauthorized, req.ClientID)
	}
	p.mu.Lock()
	st := p.clients[req.ClientID]
	if st == nil {
		st = &clientState{
			seen:  make(map[uint64]bool),
			cache: make(map[uint64]*Response),
			size:  make(map[uint64]int64),
		}
		p.clients[req.ClientID] = st
	}
	if st.seen[req.QID] {
		cached := st.cache[req.QID]
		p.mu.Unlock()
		if cached != nil {
			return cached, nil
		}
		// Evicted, or the first execution is still in flight: the retry
		// must not re-execute (at-most-once), so reject it.
		return nil, fmt.Errorf("%w: client %q qid %d", ErrReplayedQID, req.ClientID, req.QID)
	}
	st.seen[req.QID] = true
	p.mu.Unlock()

	resp := &Response{QID: req.QID, Seq: p.seq.Add(1)}
	if q, ok := p.exec.(Quarantiner); ok {
		if qerr := q.QuarantineError(); qerr != nil {
			// The database is fenced: endorse the quarantine itself, never
			// a result computed from tampered state.
			resp.Quarantined = true
			resp.ErrMsg = qerr.Error()
			resp.MAC = SignResponse(key, resp)
			p.cacheResponse(st, resp)
			return resp, nil
		}
	}
	var res *Result
	var err error
	if ce, ok := p.exec.(ContextExecutor); ok {
		ctx := context.Background()
		if req.TimeoutMS > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
			defer cancel()
		}
		res, err = ce.ExecuteContext(ctx, req.ClientID, req.Query)
	} else if se, ok := p.exec.(SessionExecutor); ok {
		res, err = se.ExecuteSession(req.ClientID, req.Query)
	} else {
		res, err = p.exec.Execute(req.Query)
	}
	if err != nil {
		resp.ErrMsg = err.Error()
	} else {
		resp.Columns = res.Columns
		resp.Rows = res.Rows
		resp.Affected = res.Affected
	}
	resp.MAC = SignResponse(key, resp)
	p.cacheResponse(st, resp)
	return resp, nil
}

// cacheResponse stores an endorsed response for retry idempotence. Two
// bounds apply: the per-client entry cap (replay-window depth) and the
// portal-wide byte cap (total memory), both evicting oldest-first. Cached
// bytes are charged to the process budget unconditionally — the cache is
// already-committed memory, so overshoot shows up as pressure for future
// reservations rather than failing the response that was just served.
func (p *Portal) cacheResponse(st *clientState, resp *Response) {
	sz := responseBytes(resp)
	p.mu.Lock()
	st.cache[resp.QID] = resp
	st.size[resp.QID] = sz
	st.order = append(st.order, resp.QID)
	p.cacheOrder = append(p.cacheOrder, cacheRef{st: st, qid: resp.QID})
	p.cacheBytes += sz
	p.budget.Charge(sz)
	for len(st.order) > responseCacheSize {
		p.dropEntryLocked(st, st.order[0])
		st.order = st.order[1:]
	}
	p.evictOverBytesLocked()
	p.mu.Unlock()
}

// evictOverBytesLocked drops oldest entries until the cache fits cacheMax.
// Refs whose entry was already removed by the per-client cap are skipped
// (dropEntryLocked no-ops on absent qids).
func (p *Portal) evictOverBytesLocked() {
	for p.cacheBytes > p.cacheMax && len(p.cacheOrder) > 0 {
		ref := p.cacheOrder[0]
		p.cacheOrder = p.cacheOrder[1:]
		p.dropEntryLocked(ref.st, ref.qid)
	}
}

// dropEntryLocked removes one cached response, returning its bytes to the
// accounting and the budget. No-op if the entry is already gone.
func (p *Portal) dropEntryLocked(st *clientState, qid uint64) {
	sz, ok := st.size[qid]
	if !ok {
		return
	}
	delete(st.cache, qid)
	delete(st.size, qid)
	p.cacheBytes -= sz
	p.budget.Release(sz)
	p.evictions++
}

// ResumeAt fast-forwards the sequence counter after recovery. A machine
// failure wipes the enclave (and, for an in-memory database, the data);
// recovery replays writes from a replica and must resume sequencing above
// every number the client has already seen, which the client supplies
// (§5.1: defending rollback "crucially relies on a trusted persistent
// storage" — here, the client's own interval list).
func (p *Portal) ResumeAt(floor uint64) {
	for {
		cur := p.seq.Load()
		if cur >= floor {
			return
		}
		if p.seq.CompareAndSwap(cur, floor) {
			return
		}
	}
}
