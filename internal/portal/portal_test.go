package portal

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"veridb/internal/enclave"
	"veridb/internal/record"
)

// echoExec returns a fixed row for any query.
type echoExec struct{ fail bool }

func (e *echoExec) Execute(query string) (*Result, error) {
	if e.fail {
		return nil, errors.New("boom")
	}
	return &Result{
		Columns: []string{"q"},
		Rows:    []record.Tuple{{record.Text(query)}},
	}, nil
}

func newPortal(t *testing.T, exec Executor) (*Portal, []byte) {
	t.Helper()
	enc := enclave.NewForTest(3)
	key := []byte("shared")
	enc.ProvisionMACKey("alice", key)
	return New(enc, exec), key
}

func TestServeHappyPath(t *testing.T) {
	p, key := newPortal(t, &echoExec{})
	req := Request{ClientID: "alice", QID: 1, Query: "SELECT 1"}
	req.MAC = SignRequest(key, req.ClientID, req.QID, req.Query)
	resp, err := p.Serve(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Seq != 1 || resp.QID != 1 || len(resp.Rows) != 1 {
		t.Fatalf("resp %+v", resp)
	}
	if !bytes.Equal(resp.MAC, SignResponse(key, resp)) {
		t.Fatal("response MAC does not verify")
	}
}

func TestServeRejectsBadMACAndUnknownClient(t *testing.T) {
	p, key := newPortal(t, &echoExec{})
	req := Request{ClientID: "alice", QID: 1, Query: "SELECT 1", MAC: []byte("junk")}
	if _, err := p.Serve(req); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("bad MAC served: %v", err)
	}
	req = Request{ClientID: "nobody", QID: 1, Query: "SELECT 1"}
	req.MAC = SignRequest(key, req.ClientID, req.QID, req.Query)
	if _, err := p.Serve(req); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("unknown client served: %v", err)
	}
}

// TestReplayReturnsCachedResponse: a replayed qid whose response is still
// cached returns the identical original endorsement (retry idempotence) —
// it is never re-executed, and the seq counter does not advance.
func TestReplayReturnsCachedResponse(t *testing.T) {
	p, key := newPortal(t, &echoExec{})
	req := Request{ClientID: "alice", QID: 9, Query: "SELECT 1"}
	req.MAC = SignRequest(key, req.ClientID, req.QID, req.Query)
	first, err := p.Serve(req)
	if err != nil {
		t.Fatal(err)
	}
	again, err := p.Serve(req)
	if err != nil {
		t.Fatalf("cached retry rejected: %v", err)
	}
	if again != first {
		t.Fatalf("retry re-executed: %+v vs %+v", again, first)
	}
	if got := p.Seq(); got != first.Seq {
		t.Fatalf("retry advanced seq to %d", got)
	}
}

// TestEvictedReplayRejected: once the original response falls out of the
// bounded cache, a replayed qid is rejected (at-most-once execution).
func TestEvictedReplayRejected(t *testing.T) {
	p, key := newPortal(t, &echoExec{})
	req := Request{ClientID: "alice", QID: 1, Query: "SELECT 1"}
	req.MAC = SignRequest(key, req.ClientID, req.QID, req.Query)
	if _, err := p.Serve(req); err != nil {
		t.Fatal(err)
	}
	// Push qid 1 out of the FIFO cache.
	for i := 0; i < responseCacheSize; i++ {
		qid := uint64(i + 2)
		r := Request{ClientID: "alice", QID: qid, Query: "SELECT 1"}
		r.MAC = SignRequest(key, r.ClientID, r.QID, r.Query)
		if _, err := p.Serve(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Serve(req); !errors.Is(err, ErrReplayedQID) {
		t.Fatalf("evicted replay served: %v", err)
	}
}

// quarantineExec reports a sticky compromise through the Quarantiner
// interface; Execute must never be reached once it trips.
type quarantineExec struct {
	echoExec
	qerr error
}

func (q *quarantineExec) QuarantineError() error { return q.qerr }

// TestQuarantinedResponsesAreAuthenticated: a fenced executor yields a
// MACed response with the Quarantined flag folded into the digest, so a
// client can tell an honest quarantine from a forged one.
func TestQuarantinedResponsesAreAuthenticated(t *testing.T) {
	exec := &quarantineExec{qerr: errors.New("tamper alarm")}
	p, key := newPortal(t, exec)
	req := Request{ClientID: "alice", QID: 1, Query: "SELECT 1"}
	req.MAC = SignRequest(key, req.ClientID, req.QID, req.Query)
	resp, err := p.Serve(req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Quarantined || resp.ErrMsg != "tamper alarm" || len(resp.Rows) != 0 {
		t.Fatalf("resp %+v", resp)
	}
	if !bytes.Equal(resp.MAC, SignResponse(key, resp)) {
		t.Fatal("quarantine response MAC does not verify")
	}
	// Stripping the flag must break the MAC: the flag is part of the digest.
	stripped := *resp
	stripped.Quarantined = false
	if bytes.Equal(SignResponse(key, &stripped), resp.MAC) {
		t.Fatal("Quarantined flag not covered by the response MAC")
	}
	// A clean executor keeps serving normally through the same path.
	exec.qerr = nil
	req2 := Request{ClientID: "alice", QID: 2, Query: "SELECT 2"}
	req2.MAC = SignRequest(key, req2.ClientID, req2.QID, req2.Query)
	resp2, err := p.Serve(req2)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Quarantined || len(resp2.Rows) != 1 {
		t.Fatalf("clean executor resp %+v", resp2)
	}
}

func TestExecutionErrorsAreSequencedAndMACed(t *testing.T) {
	p, key := newPortal(t, &echoExec{fail: true})
	req := Request{ClientID: "alice", QID: 1, Query: "SELECT 1"}
	req.MAC = SignRequest(key, req.ClientID, req.QID, req.Query)
	resp, err := p.Serve(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ErrMsg != "boom" || resp.Seq == 0 {
		t.Fatalf("resp %+v", resp)
	}
	if !bytes.Equal(resp.MAC, SignResponse(key, resp)) {
		t.Fatal("error response MAC invalid")
	}
}

func TestSequenceStrictlyIncreasesUnderConcurrency(t *testing.T) {
	p, key := newPortal(t, &echoExec{})
	var mu sync.Mutex
	seen := map[uint64]bool{}
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := Request{ClientID: "alice", QID: uint64(i + 1), Query: "SELECT 1"}
			req.MAC = SignRequest(key, req.ClientID, req.QID, req.Query)
			resp, err := p.Serve(req)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			if seen[resp.Seq] {
				t.Errorf("sequence %d issued twice", resp.Seq)
			}
			seen[resp.Seq] = true
			mu.Unlock()
		}(i)
	}
	wg.Wait()
}

func TestResumeAt(t *testing.T) {
	p, key := newPortal(t, &echoExec{})
	p.ResumeAt(1000)
	req := Request{ClientID: "alice", QID: 1, Query: "SELECT 1"}
	req.MAC = SignRequest(key, req.ClientID, req.QID, req.Query)
	resp, err := p.Serve(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Seq != 1001 {
		t.Fatalf("Seq = %d after ResumeAt(1000)", resp.Seq)
	}
	p.ResumeAt(5) // lower floor is a no-op
	resp2, _ := p.Serve(Request{ClientID: "alice", QID: 2, Query: "SELECT 1",
		MAC: SignRequest(key, "alice", 2, "SELECT 1")})
	if resp2.Seq != 1002 {
		t.Fatalf("Seq = %d, floor lowered the counter", resp2.Seq)
	}
}

func TestResponseDigestSensitivity(t *testing.T) {
	base := &Response{QID: 1, Seq: 2, Columns: []string{"a"},
		Rows: []record.Tuple{{record.Int(1)}}}
	d1 := ResponseDigest(base)
	variants := []*Response{
		{QID: 2, Seq: 2, Columns: []string{"a"}, Rows: base.Rows},
		{QID: 1, Seq: 3, Columns: []string{"a"}, Rows: base.Rows},
		{QID: 1, Seq: 2, Columns: []string{"b"}, Rows: base.Rows},
		{QID: 1, Seq: 2, Columns: []string{"a"}, Rows: []record.Tuple{{record.Int(2)}}},
		{QID: 1, Seq: 2, Columns: []string{"a"}, Rows: base.Rows, ErrMsg: "x"},
		{QID: 1, Seq: 2, Columns: []string{"a"}, Rows: base.Rows, Affected: 1},
	}
	for i, v := range variants {
		if bytes.Equal(d1, ResponseDigest(v)) {
			t.Fatalf("variant %d has identical digest", i)
		}
	}
	if !bytes.Equal(d1, ResponseDigest(base)) {
		t.Fatal("digest not deterministic")
	}
}
