package record

// Memory-footprint estimators used by the govern budget. These are
// deliberately cheap approximations of the in-heap size of a Value/Tuple
// (struct layout plus string payload), not serialized sizes: the budget
// guards the Go heap, and a consistent over-count beats an exact but
// expensive one.

// valueStructBytes is the flat size of the Value struct itself: Type/Null/B
// pack with padding alongside I, F, and the string header, landing at 48
// bytes on 64-bit platforms. Kept as a constant so the estimate is stable
// across architectures.
const valueStructBytes = 48

// tupleHeaderBytes covers the Tuple slice header.
const tupleHeaderBytes = 24

// ValueBytes estimates the heap footprint of one Value.
func ValueBytes(v Value) int64 {
	return valueStructBytes + int64(len(v.S))
}

// TupleBytes estimates the heap footprint of one Tuple, including its
// slice header and string payloads.
func TupleBytes(t Tuple) int64 {
	n := int64(tupleHeaderBytes)
	for _, v := range t {
		n += ValueBytes(v)
	}
	return n
}
