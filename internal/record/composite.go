package record

import "fmt"

// Composite keys make secondary access-method chains total orders even when
// the indexed column has duplicate values: the chain key is the pair
// (column value, primary key), encoded order-preservingly. The paper's
// ⟨key, nKey⟩ verification (§5.2–5.3) requires chain keys to be unique;
// primary keys provide the tie-break exactly as secondary indexes do in
// conventional databases.
//
// Encoding: the value bytes are escaped (0x00 → 0x00 0xFF) and terminated
// with 0x00 0x00, then the primary-key bytes follow verbatim. Escaping
// keeps byte order equal to (value, pk) lexicographic order even for
// variable-length TEXT values where one value is a prefix of another.

// escapeAppend appends the escaped image of b plus the terminator.
func escapeAppend(dst, b []byte) []byte {
	for _, c := range b {
		if c == 0x00 {
			dst = append(dst, 0x00, 0xFF)
		} else {
			dst = append(dst, c)
		}
	}
	return append(dst, 0x00, 0x00)
}

// CompositeKey builds the secondary-chain key for (value, primaryKey).
func CompositeKey(v Value, pk Key) (Key, error) {
	vk, err := KeyOf(v)
	if err != nil {
		return Key{}, fmt.Errorf("record: composite key value: %w", err)
	}
	if pk.Kind != KindNormal {
		return Key{}, fmt.Errorf("record: composite key needs a normal primary key, got %v", pk)
	}
	b := escapeAppend(nil, vk.B)
	b = append(b, pk.B...)
	return Key{Kind: KindNormal, B: b}, nil
}

// CompositeLow returns a key that sorts ≤ every composite key whose value
// component is v: the range-scan lower bound for value v.
func CompositeLow(v Value) (Key, error) {
	vk, err := KeyOf(v)
	if err != nil {
		return Key{}, err
	}
	return Key{Kind: KindNormal, B: escapeAppend(nil, vk.B)}, nil
}

// CompositeHigh returns a key that sorts > every composite key whose value
// component is ≤ v and < every composite key whose value component is > v:
// the range-scan upper bound for value v.
func CompositeHigh(v Value) (Key, error) {
	vk, err := KeyOf(v)
	if err != nil {
		return Key{}, err
	}
	b := escapeAppend(nil, vk.B)
	// Bump the terminator's second byte: (value, anything) uses 0x00 0x00,
	// every strictly greater value escapes to something above 0x00 0x01.
	b[len(b)-1] = 0x01
	return Key{Kind: KindNormal, B: b}, nil
}
