package record

import (
	"math/rand"
	"sort"
	"testing"
)

func comp(t *testing.T, v Value, pk int64) Key {
	t.Helper()
	k, err := CompositeKey(v, MustKeyOf(Int(pk)))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestCompositeOrderMatchesPairOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type pair struct {
		v  Value
		pk int64
	}
	var pairs []pair
	words := []string{"", "a", "ab", "abc", "b", "a\x00", "a\x00b", "a\xff", "\x00", "\x00\x00"}
	for _, w := range words {
		for i := 0; i < 4; i++ {
			pairs = append(pairs, pair{Text(w), rng.Int63n(100)})
		}
	}
	// Sort by (value, pk) semantically.
	want := append([]pair(nil), pairs...)
	sort.Slice(want, func(i, j int) bool {
		c, _ := want[i].v.Compare(want[j].v)
		if c != 0 {
			return c < 0
		}
		return want[i].pk < want[j].pk
	})
	// Sort by encoded composite key.
	got := append([]pair(nil), pairs...)
	sort.Slice(got, func(i, j int) bool {
		return comp(t, got[i].v, got[i].pk).Compare(comp(t, got[j].v, got[j].pk)) < 0
	})
	for i := range want {
		cw, _ := want[i].v.Compare(got[i].v)
		if cw != 0 || want[i].pk != got[i].pk {
			t.Fatalf("position %d: want (%v,%d) got (%v,%d)", i, want[i].v, want[i].pk, got[i].v, got[i].pk)
		}
	}
}

func TestCompositeBounds(t *testing.T) {
	values := []Value{Int(5), Int(6), Int(7)}
	pks := []int64{1, 50, 999}
	low6, err := CompositeLow(Int(6))
	if err != nil {
		t.Fatal(err)
	}
	high6, err := CompositeHigh(Int(6))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range values {
		for _, pk := range pks {
			k := comp(t, v, pk)
			inRange := low6.Compare(k) <= 0 && k.Compare(high6) < 0
			if (v.I == 6) != inRange {
				t.Fatalf("value %v pk %d: inRange=%v", v, pk, inRange)
			}
		}
	}
}

func TestCompositeBoundsTextPrefixes(t *testing.T) {
	// "ab" range must not capture "abc" even though "ab" prefixes it.
	lowAB, _ := CompositeLow(Text("ab"))
	highAB, _ := CompositeHigh(Text("ab"))
	in := comp(t, Text("ab"), 7)
	out := comp(t, Text("abc"), 7)
	outLow := comp(t, Text("aa"), 7)
	if !(lowAB.Compare(in) <= 0 && in.Compare(highAB) < 0) {
		t.Fatal("(ab,7) outside [low(ab), high(ab))")
	}
	if out.Compare(highAB) < 0 {
		t.Fatal("(abc,7) inside high(ab) bound")
	}
	if outLow.Compare(lowAB) >= 0 {
		t.Fatal("(aa,7) not below low(ab)")
	}
}

func TestCompositeValueWithZeros(t *testing.T) {
	// Values containing 0x00 must still order correctly against bounds.
	v := Text("a\x00b")
	low, _ := CompositeLow(v)
	high, _ := CompositeHigh(v)
	k := comp(t, v, 1)
	if !(low.Compare(k) <= 0 && k.Compare(high) < 0) {
		t.Fatal("zero-containing value escapes its own range")
	}
	other := comp(t, Text("a"), 1)
	if !(other.Compare(low) < 0) {
		t.Fatal(`"a" not below low("a\x00b")`)
	}
}

func TestCompositeRejectsBadInputs(t *testing.T) {
	if _, err := CompositeKey(Null(TypeInt), MustKeyOf(Int(1))); err == nil {
		t.Fatal("NULL value accepted")
	}
	if _, err := CompositeKey(Int(1), Bottom()); err == nil {
		t.Fatal("sentinel primary key accepted")
	}
	if _, err := CompositeLow(Null(TypeInt)); err == nil {
		t.Fatal("NULL low bound accepted")
	}
	if _, err := CompositeHigh(Null(TypeInt)); err == nil {
		t.Fatal("NULL high bound accepted")
	}
}
