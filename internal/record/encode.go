package record

import (
	"encoding/binary"
	"fmt"
	"math"
)

// ChainLink is one ⟨key_i, nKey_i⟩ pair of the extended storage model
// (Definition 5.2). A record with k access-method chains stores k links.
// Sentinel records carry KindNull links for chains they do not anchor.
type ChainLink struct {
	Key  Key
	NKey Key
}

// Record is the unit the verifiable storage layer stores: the chain links
// that serve as presence/absence evidence plus the full data tuple.
// Sentinel records have a nil Data tuple.
type Record struct {
	Links []ChainLink
	Data  Tuple
}

// IsSentinel reports whether the record is a chain anchor rather than a
// data row.
func (r *Record) IsSentinel() bool { return r.Data == nil }

// Clone deep-copies the record.
func (r *Record) Clone() *Record {
	out := &Record{Links: make([]ChainLink, len(r.Links))}
	copy(out.Links, r.Links)
	if r.Data != nil {
		out.Data = r.Data.Clone()
	}
	return out
}

// value type tags for the tuple encoding; bit 7 marks NULL.
const (
	tagInt   byte = 0
	tagFloat byte = 1
	tagText  byte = 2
	tagBool  byte = 3
	nullBit  byte = 0x80
)

// Encode serialises the record. The format is self-describing (no schema
// needed to decode) and deterministic, which matters because these bytes
// are exactly what the PRF in the write-read consistent memory covers.
func Encode(r *Record) []byte {
	var buf []byte
	buf = append(buf, byte(len(r.Links)))
	for _, l := range r.Links {
		buf = appendKey(buf, l.Key)
		buf = appendKey(buf, l.NKey)
	}
	if r.Data == nil {
		buf = append(buf, 0xFF) // sentinel marker
		return buf
	}
	if len(r.Data) > 0xFE {
		panic(fmt.Sprintf("record: tuple arity %d exceeds encoding limit", len(r.Data)))
	}
	buf = append(buf, byte(len(r.Data)))
	for _, v := range r.Data {
		buf = appendValue(buf, v)
	}
	return buf
}

func appendKey(buf []byte, k Key) []byte {
	buf = append(buf, byte(k.Kind))
	if k.Kind == KindNormal {
		buf = binary.AppendUvarint(buf, uint64(len(k.B)))
		buf = append(buf, k.B...)
	}
	return buf
}

func appendValue(buf []byte, v Value) []byte {
	tag := byte(v.Type)
	if v.Null {
		buf = append(buf, tag|nullBit)
		return buf
	}
	buf = append(buf, tag)
	switch v.Type {
	case TypeInt:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.I))
	case TypeFloat:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
	case TypeText:
		buf = binary.AppendUvarint(buf, uint64(len(v.S)))
		buf = append(buf, v.S...)
	case TypeBool:
		b := byte(0)
		if v.B {
			b = 1
		}
		buf = append(buf, b)
	default:
		panic(fmt.Sprintf("record: unencodable type %s", v.Type))
	}
	return buf
}

// Decode parses an Encode image.
func Decode(buf []byte) (*Record, error) {
	d := decoder{buf: buf}
	nLinks, err := d.byte()
	if err != nil {
		return nil, err
	}
	r := &Record{Links: make([]ChainLink, nLinks)}
	for i := range r.Links {
		if r.Links[i].Key, err = d.key(); err != nil {
			return nil, err
		}
		if r.Links[i].NKey, err = d.key(); err != nil {
			return nil, err
		}
	}
	arity, err := d.byte()
	if err != nil {
		return nil, err
	}
	if arity == 0xFF {
		if len(d.buf) != d.off {
			return nil, fmt.Errorf("record: %d trailing bytes after sentinel", len(d.buf)-d.off)
		}
		return r, nil
	}
	r.Data = make(Tuple, arity)
	for i := range r.Data {
		if r.Data[i], err = d.value(); err != nil {
			return nil, err
		}
	}
	if len(d.buf) != d.off {
		return nil, fmt.Errorf("record: %d trailing bytes", len(d.buf)-d.off)
	}
	return r, nil
}

type decoder struct {
	buf []byte
	off int
}

func (d *decoder) byte() (byte, error) {
	if d.off >= len(d.buf) {
		return 0, fmt.Errorf("record: truncated encoding at offset %d", d.off)
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *decoder) take(n int) ([]byte, error) {
	if n < 0 || d.off+n > len(d.buf) {
		return nil, fmt.Errorf("record: truncated encoding (need %d bytes at %d of %d)", n, d.off, len(d.buf))
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("record: bad uvarint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *decoder) key() (Key, error) {
	kb, err := d.byte()
	if err != nil {
		return Key{}, err
	}
	kind := KeyKind(kb)
	switch kind {
	case KindNull, KindBottom, KindTop:
		return Key{Kind: kind}, nil
	case KindNormal:
		n, err := d.uvarint()
		if err != nil {
			return Key{}, err
		}
		b, err := d.take(int(n))
		if err != nil {
			return Key{}, err
		}
		return Key{Kind: kind, B: append([]byte(nil), b...)}, nil
	default:
		return Key{}, fmt.Errorf("record: bad key kind %d", kb)
	}
}

func (d *decoder) value() (Value, error) {
	tag, err := d.byte()
	if err != nil {
		return Value{}, err
	}
	null := tag&nullBit != 0
	typ := Type(tag &^ nullBit)
	if typ > TypeBool {
		return Value{}, fmt.Errorf("record: bad value tag %#x", tag)
	}
	if null {
		return Null(typ), nil
	}
	switch typ {
	case TypeInt:
		b, err := d.take(8)
		if err != nil {
			return Value{}, err
		}
		return Int(int64(binary.LittleEndian.Uint64(b))), nil
	case TypeFloat:
		b, err := d.take(8)
		if err != nil {
			return Value{}, err
		}
		return Float(math.Float64frombits(binary.LittleEndian.Uint64(b))), nil
	case TypeText:
		n, err := d.uvarint()
		if err != nil {
			return Value{}, err
		}
		b, err := d.take(int(n))
		if err != nil {
			return Value{}, err
		}
		return Text(string(b)), nil
	case TypeBool:
		b, err := d.byte()
		if err != nil {
			return Value{}, err
		}
		return Bool(b != 0), nil
	default:
		return Value{}, fmt.Errorf("record: bad type %d", typ)
	}
}
