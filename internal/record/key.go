package record

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// KeyKind distinguishes real keys from the ⊥/⊤ sentinels of Definition 4.2
// and the "not in this chain" marker used by multi-chain sentinel records
// (Fig. 6 stores a dash for chains a record does not participate in).
type KeyKind byte

const (
	// KindNull marks a record that does not participate in a chain.
	KindNull KeyKind = 0
	// KindBottom is ⊥, smaller than every real key.
	KindBottom KeyKind = 1
	// KindNormal is a real key derived from a column value.
	KindNormal KeyKind = 2
	// KindTop is ⊤, larger than every real key.
	KindTop KeyKind = 3
)

// Key is a chain key: a sentinel or an order-preserving encoding of a
// column value. Comparing encoded keys bytewise agrees with comparing the
// original values, which lets the untrusted index treat keys opaquely.
type Key struct {
	Kind KeyKind
	B    []byte // order-preserving value bytes; nil for sentinels
}

// Bottom is the ⊥ sentinel key.
func Bottom() Key { return Key{Kind: KindBottom} }

// Top is the ⊤ sentinel key.
func Top() Key { return Key{Kind: KindTop} }

// NullKey marks chain non-participation.
func NullKey() Key { return Key{Kind: KindNull} }

// KeyOf derives the chain key for a value. NULL column values cannot be
// chain keys (the chains define a total order over present keys).
func KeyOf(v Value) (Key, error) {
	if v.Null {
		return Key{}, fmt.Errorf("record: NULL cannot be a chain key")
	}
	switch v.Type {
	case TypeInt:
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(v.I)^(1<<63))
		return Key{Kind: KindNormal, B: b[:]}, nil
	case TypeFloat:
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], floatOrderBits(v.F))
		return Key{Kind: KindNormal, B: b[:]}, nil
	case TypeText:
		return Key{Kind: KindNormal, B: []byte(v.S)}, nil
	case TypeBool:
		if v.B {
			return Key{Kind: KindNormal, B: []byte{1}}, nil
		}
		return Key{Kind: KindNormal, B: []byte{0}}, nil
	default:
		return Key{}, fmt.Errorf("record: unkeyable type %s", v.Type)
	}
}

// MustKeyOf is KeyOf for values statically known to be non-NULL.
func MustKeyOf(v Value) Key {
	k, err := KeyOf(v)
	if err != nil {
		panic(err)
	}
	return k
}

// IsSentinel reports whether the key is ⊥ or ⊤.
func (k Key) IsSentinel() bool { return k.Kind == KindBottom || k.Kind == KindTop }

// IsNull reports whether the key marks chain non-participation.
func (k Key) IsNull() bool { return k.Kind == KindNull }

// Compare orders keys: ⊥ < every normal key < ⊤. Null keys are not
// ordered; comparing one panics (they never enter an index or a chain).
func (k Key) Compare(o Key) int {
	if k.Kind == KindNull || o.Kind == KindNull {
		panic("record: comparing a null chain key")
	}
	if k.Kind != o.Kind {
		if k.Kind < o.Kind {
			return -1
		}
		return 1
	}
	if k.Kind != KindNormal {
		return 0
	}
	return bytes.Compare(k.B, o.B)
}

// Equal reports key equality.
func (k Key) Equal(o Key) bool {
	if k.Kind != o.Kind {
		return false
	}
	if k.Kind != KindNormal {
		return true
	}
	return bytes.Equal(k.B, o.B)
}

// Encode renders the key as bytes whose bytewise order equals Compare
// order: one kind byte followed by the value bytes. Null keys have no
// encoding.
func (k Key) Encode() []byte {
	if k.Kind == KindNull {
		panic("record: encoding a null chain key")
	}
	out := make([]byte, 1+len(k.B))
	out[0] = byte(k.Kind)
	copy(out[1:], k.B)
	return out
}

// DecodeKey parses an Encode image.
func DecodeKey(b []byte) (Key, error) {
	if len(b) == 0 {
		return Key{}, fmt.Errorf("record: empty key encoding")
	}
	kind := KeyKind(b[0])
	switch kind {
	case KindBottom, KindTop:
		if len(b) != 1 {
			return Key{}, fmt.Errorf("record: sentinel key with payload")
		}
		return Key{Kind: kind}, nil
	case KindNormal:
		return Key{Kind: kind, B: append([]byte(nil), b[1:]...)}, nil
	default:
		return Key{}, fmt.Errorf("record: bad key kind %d", b[0])
	}
}

// String renders the key for logs and proofs.
func (k Key) String() string {
	switch k.Kind {
	case KindNull:
		return "—"
	case KindBottom:
		return "⊥"
	case KindTop:
		return "⊤"
	default:
		return fmt.Sprintf("k(%x)", k.B)
	}
}
