package record

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueCompareInts(t *testing.T) {
	cases := []struct {
		a, b int64
		want int
	}{{1, 2, -1}, {2, 1, 1}, {5, 5, 0}, {-3, 3, -1}, {math.MinInt64, math.MaxInt64, -1}}
	for _, c := range cases {
		got, err := Int(c.a).Compare(Int(c.b))
		if err != nil || got != c.want {
			t.Fatalf("Compare(%d,%d) = %d, %v", c.a, c.b, got, err)
		}
	}
}

func TestValueCompareMixedNumeric(t *testing.T) {
	if c, err := Int(2).Compare(Float(2.5)); err != nil || c != -1 {
		t.Fatalf("2 vs 2.5 = %d, %v", c, err)
	}
	if c, err := Float(2.0).Compare(Int(2)); err != nil || c != 0 {
		t.Fatalf("2.0 vs 2 = %d, %v", c, err)
	}
}

func TestValueCompareTextAndBool(t *testing.T) {
	if c, _ := Text("abc").Compare(Text("abd")); c != -1 {
		t.Fatal("text order wrong")
	}
	if c, _ := Bool(false).Compare(Bool(true)); c != -1 {
		t.Fatal("bool order wrong")
	}
}

func TestValueCompareTypeMismatch(t *testing.T) {
	if _, err := Text("x").Compare(Int(1)); err == nil {
		t.Fatal("text/int comparison did not error")
	}
	if _, err := Bool(true).Compare(Float(1)); err == nil {
		t.Fatal("bool/float comparison did not error")
	}
}

func TestNullOrdering(t *testing.T) {
	if c, _ := Null(TypeInt).Compare(Int(-100)); c != -1 {
		t.Fatal("NULL must sort first")
	}
	if c, _ := Null(TypeInt).Compare(Null(TypeText)); c != 0 {
		t.Fatal("NULLs must compare equal")
	}
	if Int(0).Equal(Null(TypeInt)) {
		t.Fatal("0 equals NULL")
	}
}

func TestValueString(t *testing.T) {
	for want, v := range map[string]Value{
		"42": Int(42), "1.5": Float(1.5), "hi": Text("hi"),
		"true": Bool(true), "NULL": Null(TypeInt),
	} {
		if got := v.String(); got != want {
			t.Fatalf("String(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestSchemaValidateAndCoerce(t *testing.T) {
	s := NewSchema(Column{"id", TypeInt}, Column{"price", TypeFloat}, Column{"name", TypeText})
	if err := s.Validate(Tuple{Int(1), Float(9.5), Text("a")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(Tuple{Int(1), Int(9), Text("a")}); err != nil {
		t.Fatalf("int literal for float column rejected: %v", err)
	}
	if err := s.Validate(Tuple{Int(1), Float(9.5)}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if err := s.Validate(Tuple{Text("x"), Float(9.5), Text("a")}); err == nil {
		t.Fatal("type mismatch accepted")
	}
	co := s.Coerce(Tuple{Int(1), Int(9), Text("a")})
	if co[1].Type != TypeFloat || co[1].F != 9 {
		t.Fatalf("coercion failed: %+v", co[1])
	}
	if s.ColIndex("price") != 1 || s.ColIndex("missing") != -1 {
		t.Fatal("ColIndex wrong")
	}
}

// TestKeyOrderPreserving is the load-bearing property: bytewise comparison
// of encoded keys must equal value comparison, for every type. The
// untrusted index depends on it.
func TestKeyOrderPreserving(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	gens := map[string]func() Value{
		"int":   func() Value { return Int(rng.Int63() - rng.Int63()) },
		"float": func() Value { return Float((rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(20)-10))) },
		"text": func() Value {
			b := make([]byte, rng.Intn(12))
			rng.Read(b)
			return Text(string(b))
		},
		"bool": func() Value { return Bool(rng.Intn(2) == 1) },
	}
	for name, gen := range gens {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 2000; i++ {
				a, b := gen(), gen()
				ka, kb := MustKeyOf(a), MustKeyOf(b)
				wantCmp, err := a.Compare(b)
				if err != nil {
					t.Fatal(err)
				}
				if got := ka.Compare(kb); got != wantCmp {
					t.Fatalf("key order %v vs %v: key=%d value=%d", a, b, got, wantCmp)
				}
				if got := bytes.Compare(ka.Encode(), kb.Encode()); got != wantCmp {
					t.Fatalf("encoded order %v vs %v: bytes=%d value=%d", a, b, got, wantCmp)
				}
			}
		})
	}
}

func TestSentinelOrdering(t *testing.T) {
	k := MustKeyOf(Int(math.MinInt64))
	if Bottom().Compare(k) != -1 || k.Compare(Bottom()) != 1 {
		t.Fatal("⊥ not below minimal key")
	}
	k = MustKeyOf(Int(math.MaxInt64))
	if Top().Compare(k) != 1 || k.Compare(Top()) != -1 {
		t.Fatal("⊤ not above maximal key")
	}
	if Bottom().Compare(Top()) != -1 {
		t.Fatal("⊥ not below ⊤")
	}
	if Bottom().Compare(Bottom()) != 0 || Top().Compare(Top()) != 0 {
		t.Fatal("sentinel self-comparison not equal")
	}
	// Encoded order too.
	if bytes.Compare(Bottom().Encode(), k.Encode()) != -1 {
		t.Fatal("encoded ⊥ not minimal")
	}
	if bytes.Compare(Top().Encode(), MustKeyOf(Text("zzzz")).Encode()) != 1 {
		t.Fatal("encoded ⊤ not maximal")
	}
}

func TestKeyOfNullFails(t *testing.T) {
	if _, err := KeyOf(Null(TypeInt)); err == nil {
		t.Fatal("NULL key accepted")
	}
}

func TestNullKeyPanicsOnCompare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("comparing null key did not panic")
		}
	}()
	NullKey().Compare(Bottom())
}

func TestKeyEncodeDecodeRoundTrip(t *testing.T) {
	keys := []Key{Bottom(), Top(), MustKeyOf(Int(7)), MustKeyOf(Text("hello")), MustKeyOf(Float(-2.5))}
	for _, k := range keys {
		got, err := DecodeKey(k.Encode())
		if err != nil || !got.Equal(k) {
			t.Fatalf("round trip %v: %v, %v", k, got, err)
		}
	}
	if _, err := DecodeKey(nil); err == nil {
		t.Fatal("empty key decoded")
	}
	if _, err := DecodeKey([]byte{99}); err == nil {
		t.Fatal("bad kind decoded")
	}
}

func TestRecordEncodeDecodeRoundTrip(t *testing.T) {
	r := &Record{
		Links: []ChainLink{
			{Key: MustKeyOf(Int(10)), NKey: MustKeyOf(Int(20))},
			{Key: NullKey(), NKey: NullKey()},
			{Key: Bottom(), NKey: Top()},
		},
		Data: Tuple{Int(10), Float(1.25), Text("payload"), Bool(true), Null(TypeText)},
	}
	got, err := Decode(Encode(r))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, r)
	}
}

func TestSentinelRecordRoundTrip(t *testing.T) {
	r := &Record{Links: []ChainLink{{Key: Bottom(), NKey: Top()}}}
	if !r.IsSentinel() {
		t.Fatal("nil-data record not sentinel")
	}
	got, err := Decode(Encode(r))
	if err != nil || !got.IsSentinel() {
		t.Fatalf("sentinel round trip: %+v, %v", got, err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("sentinel mismatch: %+v vs %+v", got, r)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	bad := [][]byte{
		{},                 // empty
		{1},                // truncated link
		{0, 5},             // bad arity marker then truncation
		{1, 2, 3},          // normal key, bad varint/truncation
		{0, 1, byte(0xC0)}, // bad value tag
	}
	for _, b := range bad {
		if _, err := Decode(b); err == nil {
			t.Fatalf("garbage %v decoded", b)
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	r := &Record{Links: []ChainLink{{Key: Bottom(), NKey: Top()}}, Data: Tuple{Int(1)}}
	enc := append(Encode(r), 0x00)
	if _, err := Decode(enc); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// TestEncodeDeterministic pins that encoding is a pure function of the
// record: the PRF in vmem covers these bytes, so nondeterminism would break
// verification.
func TestEncodeDeterministic(t *testing.T) {
	f := func(id int64, price float64, name string, flag bool) bool {
		r := &Record{
			Links: []ChainLink{{Key: MustKeyOf(Int(id)), NKey: Top()}},
			Data:  Tuple{Int(id), Float(price), Text(name), Bool(flag)},
		}
		return bytes.Equal(Encode(r), Encode(r.Clone()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(id int64, price float64, name string, flag bool, null bool) bool {
		tup := Tuple{Int(id), Float(price), Text(name), Bool(flag)}
		if null {
			tup = append(tup, Null(TypeFloat))
		}
		r := &Record{
			Links: []ChainLink{{Key: MustKeyOf(Int(id)), NKey: MustKeyOf(Text(name + "x"))}},
			Data:  tup,
		}
		got, err := Decode(Encode(r))
		return err == nil && reflect.DeepEqual(got, r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := &Record{
		Links: []ChainLink{{Key: MustKeyOf(Int(1)), NKey: Top()}},
		Data:  Tuple{Text("a")},
	}
	c := r.Clone()
	c.Links[0].NKey = Bottom()
	c.Data[0] = Text("b")
	if r.Links[0].NKey.Kind != KindTop || r.Data[0].S != "a" {
		t.Fatal("Clone shares state")
	}
}

func TestFloatKeySpecials(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -1, -0.0, 0.0, 1, 1e300, math.Inf(1)}
	for i := 0; i < len(vals)-1; i++ {
		a, b := MustKeyOf(Float(vals[i])), MustKeyOf(Float(vals[i+1]))
		if a.Compare(b) > 0 {
			t.Fatalf("float key order broken at %g vs %g", vals[i], vals[i+1])
		}
	}
}
