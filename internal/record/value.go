// Package record defines VeriDB's tuple model: typed values, table
// schemas, and the extended storage record of Definition 4.2 / 5.2 in which
// every row carries, for each indexed column, its key and the next-smallest
// key (the ⟨key, nKey⟩ chain links that make single-record presence and
// absence proofs possible).
package record

import (
	"fmt"
	"math"
	"strconv"
)

// Type enumerates VeriDB's column types.
type Type int

const (
	// TypeInt is a 64-bit signed integer.
	TypeInt Type = iota
	// TypeFloat is a 64-bit IEEE float.
	TypeFloat
	// TypeText is a byte string.
	TypeText
	// TypeBool is a boolean.
	TypeBool
)

// String returns the SQL spelling of the type.
func (t Type) String() string {
	switch t {
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeText:
		return "TEXT"
	case TypeBool:
		return "BOOL"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Value is one typed SQL value. The zero value is a NULL INT.
type Value struct {
	Type Type
	Null bool
	I    int64
	F    float64
	S    string
	B    bool
}

// Int builds an INT value.
func Int(v int64) Value { return Value{Type: TypeInt, I: v} }

// Float builds a FLOAT value.
func Float(v float64) Value { return Value{Type: TypeFloat, F: v} }

// Text builds a TEXT value.
func Text(s string) Value { return Value{Type: TypeText, S: s} }

// Bool builds a BOOL value.
func Bool(b bool) Value { return Value{Type: TypeBool, B: b} }

// Null builds a NULL of the given type.
func Null(t Type) Value { return Value{Type: t, Null: true} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Null }

// AsFloat widens numeric values to float64 for mixed-type arithmetic.
func (v Value) AsFloat() (float64, error) {
	switch v.Type {
	case TypeInt:
		return float64(v.I), nil
	case TypeFloat:
		return v.F, nil
	default:
		return 0, fmt.Errorf("record: %s value is not numeric", v.Type)
	}
}

// Compare orders two values: -1, 0, +1. NULLs sort before all non-NULLs
// (and equal to each other), matching index ordering semantics. Numeric
// types compare across INT/FLOAT; otherwise types must match.
func (v Value) Compare(o Value) (int, error) {
	if v.Null || o.Null {
		switch {
		case v.Null && o.Null:
			return 0, nil
		case v.Null:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if (v.Type == TypeInt || v.Type == TypeFloat) && (o.Type == TypeInt || o.Type == TypeFloat) {
		if v.Type == TypeInt && o.Type == TypeInt {
			switch {
			case v.I < o.I:
				return -1, nil
			case v.I > o.I:
				return 1, nil
			default:
				return 0, nil
			}
		}
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if v.Type != o.Type {
		return 0, fmt.Errorf("record: cannot compare %s with %s", v.Type, o.Type)
	}
	switch v.Type {
	case TypeText:
		switch {
		case v.S < o.S:
			return -1, nil
		case v.S > o.S:
			return 1, nil
		default:
			return 0, nil
		}
	case TypeBool:
		switch {
		case !v.B && o.B:
			return -1, nil
		case v.B && !o.B:
			return 1, nil
		default:
			return 0, nil
		}
	default:
		return 0, fmt.Errorf("record: uncomparable type %s", v.Type)
	}
}

// Equal reports whether two values are equal under Compare semantics, with
// NULL equal only to NULL.
func (v Value) Equal(o Value) bool {
	c, err := v.Compare(o)
	return err == nil && c == 0
}

// String renders the value for display.
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.Type {
	case TypeInt:
		return strconv.FormatInt(v.I, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TypeText:
		return v.S
	case TypeBool:
		if v.B {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("Value(%d)", int(v.Type))
	}
}

// Tuple is one row of values.
type Tuple []Value

// Clone deep-copies a tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Column describes one table column.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered set of columns.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema { return &Schema{Columns: cols} }

// ColIndex returns the index of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Len returns the column count.
func (s *Schema) Len() int { return len(s.Columns) }

// Validate checks a tuple against the schema (arity and non-null types).
func (s *Schema) Validate(t Tuple) error {
	if len(t) != len(s.Columns) {
		return fmt.Errorf("record: tuple has %d values, schema %q needs %d",
			len(t), s.names(), len(s.Columns))
	}
	for i, v := range t {
		if v.Null {
			continue
		}
		want := s.Columns[i].Type
		if v.Type == want {
			continue
		}
		// INT literals are acceptable for FLOAT columns.
		if want == TypeFloat && v.Type == TypeInt {
			continue
		}
		return fmt.Errorf("record: column %q wants %s, got %s", s.Columns[i].Name, want, v.Type)
	}
	return nil
}

// Coerce normalises a validated tuple to the schema's types (widening INT
// literals stored into FLOAT columns).
func (s *Schema) Coerce(t Tuple) Tuple {
	out := t.Clone()
	for i := range out {
		if !out[i].Null && s.Columns[i].Type == TypeFloat && out[i].Type == TypeInt {
			out[i] = Float(float64(out[i].I))
		}
		if out[i].Null {
			out[i].Type = s.Columns[i].Type
		}
	}
	return out
}

func (s *Schema) names() []string {
	n := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		n[i] = c.Name
	}
	return n
}

// floatOrderBits maps a float64 onto a uint64 whose unsigned order matches
// the float order (NaNs sort above +Inf).
func floatOrderBits(f float64) uint64 {
	b := math.Float64bits(f)
	if b&(1<<63) != 0 {
		return ^b // negative: flip everything
	}
	return b | 1<<63 // positive: set the sign bit
}
