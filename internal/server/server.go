// Package server hosts VeriDB's TCP front end: the connection loop that
// exposes a veridb.DB over the paper's client protocol (Fig. 2). Two wire
// encodings share one port:
//
//   - The legacy newline-delimited JSON protocol, handled one request at a
//     time per connection, bit-identical to earlier releases.
//   - The length-prefixed binary protocol (internal/wire) with
//     per-connection pipelining: a reader goroutine demuxes frames into
//     bounded per-request handler goroutines and a single writer goroutine
//     serializes completions, so responses may return out of order,
//     matched to requests by qid.
//
// The first byte of a connection selects the protocol: wire.Magic0 routes
// to the binary path, anything else (in practice '{') to the JSON path.
// Oversized messages are refused with the same typed wire.TooLargeError
// through both protocols before the connection closes.
package server

import (
	"bufio"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"veridb"
	"veridb/internal/record"
	"veridb/internal/wire"
)

// Wire protocol modes for Config.Wire.
const (
	// WireAuto sniffs the first byte of each connection (the default).
	WireAuto = "auto"
	// WireJSON accepts only the legacy JSON protocol.
	WireJSON = "json"
	// WireBinary accepts only the binary protocol.
	WireBinary = "binary"
)

// Config tunes the front end. Zero values take the documented defaults.
type Config struct {
	// DB is the database instance to serve. Required.
	DB *veridb.DB
	// Wire selects the accepted protocol(s): WireAuto (default), WireJSON
	// or WireBinary.
	Wire string
	// MaxMessage caps one request's size in bytes — the JSON line limit
	// and the binary frame payload limit are the same knob. Default 1 MiB.
	MaxMessage int
	// MaxInflight bounds per-connection pipelined query handlers on the
	// binary path. The database's own admission gate (if configured) still
	// sheds beyond its slots; this bound keeps one connection from
	// spawning unbounded goroutines regardless. Default 64.
	MaxInflight int
	// IOTimeout is the per-read and per-write deadline (0 = none).
	IOTimeout time.Duration
	// MaxConns caps concurrent connections (0 = unlimited); excess
	// connections get a structured refusal, never a silent RST.
	MaxConns int
}

// DefaultMaxInflight bounds per-connection pipelining when Config leaves
// MaxInflight zero.
const DefaultMaxInflight = 64

// Server is the connection-handling state shared by every session.
type Server struct {
	db          *veridb.DB
	wire        string
	maxMessage  int
	maxInflight int
	ioTimeout   time.Duration
	sem         chan struct{} // connection-cap semaphore (nil = uncapped)
	wg          sync.WaitGroup
}

// New builds a server over an open database.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, errors.New("server: Config.DB is required")
	}
	switch cfg.Wire {
	case "", WireAuto:
		cfg.Wire = WireAuto
	case WireJSON, WireBinary:
	default:
		return nil, fmt.Errorf("server: unknown wire mode %q (want %s, %s or %s)", cfg.Wire, WireAuto, WireJSON, WireBinary)
	}
	if cfg.MaxMessage <= 0 {
		cfg.MaxMessage = wire.DefaultMaxPayload
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	s := &Server{
		db:          cfg.DB,
		wire:        cfg.Wire,
		maxMessage:  cfg.MaxMessage,
		maxInflight: cfg.MaxInflight,
		ioTimeout:   cfg.IOTimeout,
	}
	if cfg.MaxConns > 0 {
		s.sem = make(chan struct{}, cfg.MaxConns)
	}
	return s, nil
}

// Serve accepts connections until the listener closes, then returns nil.
// Callers drain in-flight sessions with Drain.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if s.sem != nil {
			select {
			case s.sem <- struct{}{}:
			default:
				// Over capacity: a structured refusal beats a silent RST.
				// The refusal is a JSON line — a binary client surfaces it
				// through its bad-magic fallback (see client.Pipeline).
				s.writeLine(conn, map[string]string{"err": "server at connection capacity"})
				conn.Close()
				continue
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if s.sem != nil {
				defer func() { <-s.sem }()
			}
			s.Handle(conn)
		}()
	}
}

// Drain waits for in-flight connections, up to timeout (0 waits forever).
// It reports whether the server drained fully.
func (s *Server) Drain(timeout time.Duration) bool {
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if timeout <= 0 {
		<-done
		return true
	}
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}

// Handle runs one connection to completion: sniff the protocol from the
// first byte (unless Config.Wire pinned one), then hand off to the
// protocol loop.
func (s *Server) Handle(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	mode := s.wire
	if mode == WireAuto {
		if s.ioTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.ioTimeout))
		}
		first, err := br.Peek(1)
		if err != nil {
			return
		}
		if first[0] == wire.Magic0 {
			mode = WireBinary
		} else {
			mode = WireJSON
		}
	}
	if mode == WireBinary {
		s.handleBinary(conn, br)
		return
	}
	s.handleJSON(conn, br)
}

// --- Legacy JSON protocol (bit-identical to prior releases) ---

type wireRequest struct {
	Op     string `json:"op"`
	Nonce  string `json:"nonce,omitempty"`
	Client string `json:"client,omitempty"`
	QID    uint64 `json:"qid,omitempty"`
	Query  string `json:"query,omitempty"`
	// TimeoutMS is an optional per-request deadline in milliseconds,
	// folded into the MAC when nonzero (see portal.SignRequestTimeout).
	TimeoutMS uint64 `json:"timeout_ms,omitempty"`
	MAC       string `json:"mac,omitempty"`
}

type wireResponse struct {
	QID         uint64     `json:"qid"`
	Seq         uint64     `json:"seq"`
	Columns     []string   `json:"columns,omitempty"`
	Rows        [][]string `json:"rows,omitempty"`
	Affected    int        `json:"affected"`
	Err         string     `json:"err,omitempty"`
	Quarantined bool       `json:"quarantined,omitempty"`
	MAC         string     `json:"mac"`
}

type wireQuote struct {
	Measurement string `json:"measurement"`
	PublicKey   string `json:"publicKey"`
	Nonce       string `json:"nonce"`
	Signature   string `json:"signature"`
}

type wireHealth struct {
	Quarantined     bool       `json:"quarantined"`
	Alarm           string     `json:"alarm,omitempty"`
	VerifierRunning bool       `json:"verifierRunning"`
	Epochs          []uint64   `json:"epochs"`
	Govern          wireGovern `json:"govern"`
}

// wireGovern is the overload-protection slice of the health response:
// what a capacity planner watches (high-water memory, shed counts) and
// what a load balancer keys on (in-flight and waiting depths).
type wireGovern struct {
	MemUsed            int64 `json:"memUsed"`
	MemLimit           int64 `json:"memLimit"`
	MemHighWater       int64 `json:"memHighWater"`
	MemDenied          int64 `json:"memDenied"`
	InFlight           int64 `json:"inFlight"`
	Waiting            int64 `json:"waiting"`
	Shed               int64 `json:"shed"`
	SessionsExpired    int64 `json:"sessionsExpired"`
	SnapshotPins       int   `json:"snapshotPins"`
	ResponseCacheBytes int64 `json:"responseCacheBytes"`
}

// writeLine encodes one JSON line under the write deadline.
func (s *Server) writeLine(conn net.Conn, v any) error {
	if s.ioTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.ioTimeout))
	}
	return json.NewEncoder(conn).Encode(v)
}

// handleJSON runs one legacy session: read a line under the deadline,
// dispatch, answer. Oversized requests get a structured error carrying
// the typed wire.TooLargeError message before the connection closes — a
// silently dropped session is indistinguishable from an adversarial one,
// so the server never drops silently.
func (s *Server) handleJSON(conn net.Conn, br *bufio.Reader) {
	sc := bufio.NewScanner(br)
	// Scanner's limit is max(cap(buf), maxMessage): keep the initial
	// buffer at or below the message limit so the limit actually binds.
	initial := 64 * 1024
	if initial > s.maxMessage {
		initial = s.maxMessage
	}
	sc.Buffer(make([]byte, initial), s.maxMessage)
	for {
		if s.ioTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.ioTimeout))
		}
		if !sc.Scan() {
			if errors.Is(sc.Err(), bufio.ErrTooLong) {
				s.writeLine(conn, map[string]string{
					"err": wire.NewTooLarge(s.maxMessage, 0).Error(),
				})
			}
			return
		}
		var req wireRequest
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			s.writeLine(conn, map[string]string{"err": "bad request: " + err.Error()})
			continue
		}
		if err := s.dispatchJSON(conn, req); err != nil {
			return // write failed: the peer is gone
		}
	}
}

func (s *Server) dispatchJSON(conn net.Conn, req wireRequest) error {
	switch req.Op {
	case "attest":
		nonce, err := base64.StdEncoding.DecodeString(req.Nonce)
		if err != nil {
			return s.writeLine(conn, map[string]string{"err": "bad nonce"})
		}
		q := s.db.Attest(nonce)
		m := s.db.Measurement()
		return s.writeLine(conn, wireQuote{
			Measurement: base64.StdEncoding.EncodeToString(m[:]),
			PublicKey:   base64.StdEncoding.EncodeToString(q.PublicKey),
			Nonce:       base64.StdEncoding.EncodeToString(q.Nonce),
			Signature:   base64.StdEncoding.EncodeToString(q.Signature),
		})
	case "query":
		mac, err := base64.StdEncoding.DecodeString(req.MAC)
		if err != nil {
			return s.writeLine(conn, map[string]string{"err": "bad mac encoding"})
		}
		resp, err := s.db.Serve(veridb.Request{
			ClientID: req.Client, QID: req.QID, Query: req.Query,
			TimeoutMS: req.TimeoutMS, MAC: mac,
		})
		if err != nil {
			// Authorisation failures have no authenticated response.
			return s.writeLine(conn, map[string]string{"err": err.Error()})
		}
		out := wireResponse{
			QID: resp.QID, Seq: resp.Seq, Columns: resp.Columns,
			Affected: resp.Affected, Err: resp.ErrMsg,
			Quarantined: resp.Quarantined,
			MAC:         base64.StdEncoding.EncodeToString(resp.MAC),
		}
		for _, row := range resp.Rows {
			out.Rows = append(out.Rows, renderRow(row))
		}
		return s.writeLine(conn, out)
	case "health":
		return s.writeLine(conn, s.health())
	default:
		return s.writeLine(conn, map[string]string{"err": fmt.Sprintf("unknown op %q", req.Op)})
	}
}

func (s *Server) health() wireHealth {
	h := s.db.Health()
	g := s.db.Govern()
	return wireHealth{
		Quarantined:     h.Quarantined,
		Alarm:           h.Alarm,
		VerifierRunning: h.VerifierRunning,
		Epochs:          h.Epochs,
		Govern: wireGovern{
			MemUsed:            g.MemUsed,
			MemLimit:           g.MemLimit,
			MemHighWater:       g.MemHighWater,
			MemDenied:          g.MemDenied,
			InFlight:           g.Admission.InFlight,
			Waiting:            g.Admission.Waiting,
			Shed:               g.Admission.Shed,
			SessionsExpired:    g.SessionsExpired,
			SnapshotPins:       g.SnapshotPins,
			ResponseCacheBytes: g.ResponseCache.Bytes,
		},
	}
}

func renderRow(row record.Tuple) []string {
	out := make([]string, len(row))
	for i, v := range row {
		out[i] = v.String()
	}
	return out
}

// --- Binary protocol: pipelined frames ---

// handleBinary runs one pipelined session. Three goroutine roles share the
// connection:
//
//   - this goroutine reads frames and demuxes: queries spawn handler
//     goroutines (at most maxInflight concurrent per connection); attest
//     and health are answered inline (they touch no database state worth
//     parallelising).
//   - handler goroutines execute through the portal — which already sheds
//     past the admission gate's slots — and hand their completion to the
//     writer. Completions are written in completion order, not arrival
//     order; the client matches them by qid.
//   - one writer goroutine serializes frames onto the socket, draining
//     every ready completion before each flush so bursts of small
//     responses share syscalls.
//
// Teardown never leaks a goroutine: when the writer dies (peer gone, write
// error) it closes writerDone, unblocking any handler parked on the
// completion channel; when the reader stops it waits out the handlers,
// closes the completion channel, and the writer exits after the drain.
func (s *Server) handleBinary(conn net.Conn, br *bufio.Reader) {
	out := make(chan wire.Frame, s.maxInflight)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		bw := bufio.NewWriter(conn)
		for f := range out {
			for {
				if s.ioTimeout > 0 {
					conn.SetWriteDeadline(time.Now().Add(s.ioTimeout))
				}
				if err := wire.WriteFrame(bw, f); err != nil {
					return
				}
				// Drain ready completions before paying for a flush.
				var ok bool
				select {
				case f, ok = <-out:
					if !ok {
						bw.Flush()
						return
					}
					continue
				default:
				}
				break
			}
			if err := bw.Flush(); err != nil {
				return
			}
		}
		bw.Flush()
	}()

	// send hands a completion to the writer unless the writer is gone —
	// a handler must never park forever on a dead connection.
	send := func(f wire.Frame) bool {
		select {
		case out <- f:
			return true
		case <-writerDone:
			return false
		}
	}
	refuse := func(qid uint64, msg string) bool {
		return send(wire.Frame{Type: wire.TError, QID: qid, Payload: []byte(msg)})
	}

	inflight := make(chan struct{}, s.maxInflight)
	var handlers sync.WaitGroup
reading:
	for {
		if s.ioTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.ioTimeout))
		}
		f, err := wire.ReadFrame(br, s.maxMessage)
		if err != nil {
			// An over-limit frame is refused by address (type and qid
			// survive the typed error) and then, like the legacy path, the
			// connection closes: the payload was never read, so the stream
			// position is unrecoverable.
			if errors.Is(err, wire.ErrTooLarge) {
				refuse(f.QID, err.Error())
			} else if !errors.Is(err, io.EOF) && !errors.Is(err, wire.ErrTruncated) {
				refuse(f.QID, err.Error())
			}
			break
		}
		switch f.Type {
		case wire.TQuery:
			req, derr := wire.DecodeQuery(f.QID, f.Payload)
			if derr != nil {
				if !refuse(f.QID, "bad request: "+derr.Error()) {
					break reading
				}
				continue
			}
			// Bound pipelining: a connection gets at most maxInflight
			// concurrent handlers; beyond that the reader itself waits,
			// exerting backpressure on the socket instead of buffering
			// unbounded goroutines. The admission gate inside the database
			// sheds independently (typed, per-frame, with a RetryAfter
			// hint) once its slots and queue fill.
			select {
			case inflight <- struct{}{}:
			case <-writerDone:
				break reading
			}
			handlers.Add(1)
			go func() {
				defer handlers.Done()
				defer func() { <-inflight }()
				resp, serr := s.db.Serve(req)
				if serr != nil {
					// Authorisation failures have no authenticated
					// response (same contract as the JSON path).
					refuse(req.QID, serr.Error())
					return
				}
				send(wire.Frame{Type: wire.TResult, QID: resp.QID, Payload: wire.EncodeResult(resp)})
			}()
		case wire.TAttest:
			nonce, derr := wire.DecodeAttest(f.Payload)
			if derr != nil {
				if !refuse(f.QID, "bad nonce: "+derr.Error()) {
					break reading
				}
				continue
			}
			q := s.db.Attest(nonce)
			if !send(wire.Frame{Type: wire.TQuote, QID: f.QID, Payload: wire.EncodeQuote(q)}) {
				break reading
			}
		case wire.THealth:
			payload, merr := json.Marshal(s.health())
			if merr != nil {
				payload = []byte("{}")
			}
			if !send(wire.Frame{Type: wire.THealthInfo, QID: f.QID, Payload: payload}) {
				break reading
			}
		default:
			if !refuse(f.QID, fmt.Sprintf("unexpected frame type %q", f.Type)) {
				break reading
			}
		}
	}
	handlers.Wait()
	close(out)
	<-writerDone
}
