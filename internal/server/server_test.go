package server

import (
	"bufio"
	"crypto/ed25519"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"veridb"
	"veridb/internal/client"
	"veridb/internal/enclave"
	"veridb/internal/govern"
	"veridb/internal/portal"
	"veridb/internal/wire"
)

// serveTCP runs a server with cfg on an ephemeral port.
func serveTCP(t *testing.T, cfg Config) net.Listener {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close(); srv.Drain(5 * time.Second) })
	go srv.Serve(ln)
	return ln
}

func openDB(t *testing.T, cfg veridb.Config) *veridb.DB {
	t.Helper()
	db, err := veridb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func mustExec(t *testing.T, db *veridb.DB, stmts ...string) {
	t.Helper()
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
}

// --- Legacy JSON protocol (moved from cmd/veridb-server, behavior
// unchanged except the typed oversized-message refusal) ---

// TestServerProtocolRoundTrip drives the full legacy client protocol over
// the wire: attestation, an authenticated query, and rejection of a forged
// request.
func TestServerProtocolRoundTrip(t *testing.T) {
	db := openDB(t, veridb.Config{Seed: 1})
	mustExec(t, db,
		`CREATE TABLE t (a INT PRIMARY KEY, b TEXT)`,
		`INSERT INTO t VALUES (1, 'hello'), (2, 'world')`)
	key := []byte("wire-secret")
	db.ProvisionClient("alice", key)

	ln := serveTCP(t, Config{DB: db})

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	sc := bufio.NewScanner(conn)

	// Attestation.
	nonce := []byte("fresh-nonce")
	if err := enc.Encode(wireRequest{Op: "attest", Nonce: base64.StdEncoding.EncodeToString(nonce)}); err != nil {
		t.Fatal(err)
	}
	if !sc.Scan() {
		t.Fatal("no attestation response")
	}
	var q wireQuote
	if err := json.Unmarshal(sc.Bytes(), &q); err != nil {
		t.Fatal(err)
	}
	mBytes, _ := base64.StdEncoding.DecodeString(q.Measurement)
	pub, _ := base64.StdEncoding.DecodeString(q.PublicKey)
	sig, _ := base64.StdEncoding.DecodeString(q.Signature)
	var m [32]byte
	copy(m[:], mBytes)
	if m != db.Measurement() {
		t.Fatal("measurement mismatch over the wire")
	}
	if _, err := enclave.VerifyQuote(enclave.Quote{
		Measurement: m, PublicKey: ed25519.PublicKey(pub), Nonce: nonce, Signature: sig,
	}, db.Measurement(), nonce); err != nil {
		t.Fatalf("wire quote rejected: %v", err)
	}

	// Authenticated query.
	query := `SELECT b FROM t WHERE a = 2`
	mac := portal.SignRequest(key, "alice", 1, query)
	if err := enc.Encode(wireRequest{
		Op: "query", Client: "alice", QID: 1, Query: query,
		MAC: base64.StdEncoding.EncodeToString(mac),
	}); err != nil {
		t.Fatal(err)
	}
	if !sc.Scan() {
		t.Fatal("no query response")
	}
	var resp wireResponse
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err != "" || len(resp.Rows) != 1 || resp.Rows[0][0] != "world" {
		t.Fatalf("response %+v", resp)
	}
	if resp.Seq == 0 || resp.MAC == "" {
		t.Fatalf("response missing sequencing/MAC: %+v", resp)
	}

	// Forged MAC is rejected without an authenticated response.
	if err := enc.Encode(wireRequest{
		Op: "query", Client: "alice", QID: 2, Query: query,
		MAC: base64.StdEncoding.EncodeToString([]byte("forged")),
	}); err != nil {
		t.Fatal(err)
	}
	if !sc.Scan() {
		t.Fatal("no rejection response")
	}
	if !strings.Contains(sc.Text(), "authorization failed") {
		t.Fatalf("forged request not rejected: %s", sc.Text())
	}

	// Unknown op.
	enc.Encode(wireRequest{Op: "shutdown"})
	if !sc.Scan() || !strings.Contains(sc.Text(), "unknown op") {
		t.Fatalf("unknown op not rejected: %s", sc.Text())
	}
}

// TestServerRejectsOversizedLineWithStructuredError: a request beyond the
// message limit gets a JSON error carrying the typed wire.TooLargeError
// message before the connection closes — never a silent drop, and the
// refusal parses back to the same typed error the binary protocol uses.
func TestServerRejectsOversizedLineWithStructuredError(t *testing.T) {
	db := openDB(t, veridb.Config{Seed: 2})
	ln := serveTCP(t, Config{DB: db, MaxMessage: 256})

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	big := strings.Repeat("x", 1024)
	if _, err := conn.Write([]byte(`{"op":"query","query":"` + big + "\"}\n")); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		t.Fatal("oversized request dropped silently")
	}
	var resp map[string]string
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		t.Fatalf("unparseable error response %q: %v", sc.Text(), err)
	}
	tl, ok := wire.ParseTooLarge(resp["err"])
	if !ok || tl.Limit != 256 {
		t.Fatalf("refusal %q did not parse as a typed too-large error (%+v, %v)", resp["err"], tl, ok)
	}
	// The connection is closed after the refusal.
	if sc.Scan() {
		t.Fatalf("connection still open after oversized request: %q", sc.Text())
	}
}

// TestServerConnectionDeadline: an idle session is reaped once the
// per-connection read deadline elapses (the deadline also covers the
// protocol-sniffing first byte).
func TestServerConnectionDeadline(t *testing.T) {
	db := openDB(t, veridb.Config{Seed: 3})
	ln := serveTCP(t, Config{DB: db, IOTimeout: 50 * time.Millisecond})

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	// Send nothing; the server should hang up on its own.
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("idle connection not closed by deadline")
	}
}

// TestServerHealthOp: the health operation reports the verifier state and
// flips to quarantined after injected tampering is detected.
func TestServerHealthOp(t *testing.T) {
	db := openDB(t, veridb.Config{Seed: 4})
	mustExec(t, db,
		`CREATE TABLE t (a INT PRIMARY KEY, b TEXT)`,
		`INSERT INTO t VALUES (1, 'hello')`)
	ln := serveTCP(t, Config{DB: db})

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	sc := bufio.NewScanner(conn)

	health := func() wireHealth {
		t.Helper()
		if err := enc.Encode(wireRequest{Op: "health"}); err != nil {
			t.Fatal(err)
		}
		if !sc.Scan() {
			t.Fatal("no health response")
		}
		var h wireHealth
		if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
			t.Fatal(err)
		}
		return h
	}

	if h := health(); h.Quarantined || h.Alarm != "" {
		t.Fatalf("clean instance reports %+v", h)
	}
	if err := db.InjectTamper("t"); err != nil {
		t.Fatal(err)
	}
	if err := db.Verify(); err == nil {
		t.Fatal("tamper not detected")
	}
	if h := health(); !h.Quarantined || h.Alarm == "" {
		t.Fatalf("tampered instance reports %+v", h)
	}

	// Queries are now fenced with an authenticated quarantine response.
	key := []byte("k")
	db.ProvisionClient("alice", key)
	query := `SELECT b FROM t WHERE a = 1`
	mac := portal.SignRequest(key, "alice", 1, query)
	if err := enc.Encode(wireRequest{
		Op: "query", Client: "alice", QID: 1, Query: query,
		MAC: base64.StdEncoding.EncodeToString(mac),
	}); err != nil {
		t.Fatal(err)
	}
	if !sc.Scan() {
		t.Fatal("no query response")
	}
	var resp wireResponse
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Quarantined || resp.MAC == "" || len(resp.Rows) != 0 {
		t.Fatalf("quarantined query answered %+v", resp)
	}
}

// TestServerSnapshotSessionOverWire drives BEGIN SNAPSHOT / COMMIT over
// TCP with the client package's request helpers: the pinned client's
// reads stay frozen while another wire client writes, the pinned session
// is read-only, and COMMIT releases the pin.
func TestServerSnapshotSessionOverWire(t *testing.T) {
	db := openDB(t, veridb.Config{Seed: 3})
	mustExec(t, db,
		`CREATE TABLE t (a INT PRIMARY KEY, b INT)`,
		`INSERT INTO t VALUES (1, 10), (2, 20)`)
	db.ProvisionClient("alice", []byte("ka"))
	db.ProvisionClient("bob", []byte("kb"))
	alice := client.New("alice", []byte("ka"))
	bob := client.New("bob", []byte("kb"))

	ln := serveTCP(t, Config{DB: db})
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	sc := bufio.NewScanner(conn)

	send := func(req portal.Request) wireResponse {
		t.Helper()
		if err := enc.Encode(wireRequest{
			Op: "query", Client: req.ClientID, QID: req.QID, Query: req.Query,
			MAC: base64.StdEncoding.EncodeToString(req.MAC),
		}); err != nil {
			t.Fatal(err)
		}
		if !sc.Scan() {
			t.Fatal("no response")
		}
		var resp wireResponse
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	begin := send(alice.NewBeginSnapshotRequest())
	if begin.Err != "" || len(begin.Rows) != 1 || begin.Columns[0] != "snapshot_seq" {
		t.Fatalf("BEGIN SNAPSHOT over wire: %+v", begin)
	}
	if r := send(bob.NewRequest(`INSERT INTO t VALUES (3, 30)`)); r.Err != "" {
		t.Fatalf("bob insert: %+v", r)
	}
	if r := send(alice.NewRequest(`SELECT a FROM t ORDER BY a`)); r.Err != "" || len(r.Rows) != 2 {
		t.Fatalf("alice pinned read saw bob's write: %+v", r)
	}
	if r := send(bob.NewRequest(`SELECT a FROM t ORDER BY a`)); r.Err != "" || len(r.Rows) != 3 {
		t.Fatalf("bob read: %+v", r)
	}
	if r := send(alice.NewRequest(`DELETE FROM t WHERE a = 1`)); !strings.Contains(r.Err, "read-only") {
		t.Fatalf("alice write under pin: %+v", r)
	}
	if r := send(alice.NewCommitSnapshotRequest()); r.Err != "" {
		t.Fatalf("alice COMMIT: %+v", r)
	}
	if r := send(alice.NewRequest(`SELECT a FROM t ORDER BY a`)); r.Err != "" || len(r.Rows) != 3 {
		t.Fatalf("alice post-COMMIT read: %+v", r)
	}
}

// --- Binary protocol ---

// binConn wraps a raw connection speaking frames.
type binConn struct {
	t    *testing.T
	conn net.Conn
	br   *bufio.Reader
}

func dialBinary(t *testing.T, addr string) *binConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &binConn{t: t, conn: conn, br: bufio.NewReader(conn)}
}

func (b *binConn) write(f wire.Frame) {
	b.t.Helper()
	if err := wire.WriteFrame(b.conn, f); err != nil {
		b.t.Fatal(err)
	}
}

func (b *binConn) read() wire.Frame {
	b.t.Helper()
	b.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	f, err := wire.ReadFrame(b.br, 0)
	if err != nil {
		b.t.Fatalf("read frame: %v", err)
	}
	return f
}

func (b *binConn) query(req portal.Request) {
	b.write(wire.Frame{Type: wire.TQuery, QID: req.QID, Payload: wire.EncodeQuery(req)})
}

// TestBinaryPipelinedRoundTrip pushes a window of pipelined queries down
// one connection, then attestation and health, and MAC-verifies every
// response client-side — the binary codec carries typed row images, so
// the client checks the portal's endorsement end to end (the legacy JSON
// path cannot: it stringifies rows).
func TestBinaryPipelinedRoundTrip(t *testing.T) {
	db := openDB(t, veridb.Config{Seed: 5})
	mustExec(t, db, `CREATE TABLE t (a INT PRIMARY KEY, b TEXT)`,
		`INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three')`)
	key := []byte("bin-secret")
	db.ProvisionClient("alice", key)
	alice := client.New("alice", key)

	ln := serveTCP(t, Config{DB: db})
	bc := dialBinary(t, ln.Addr().String())

	// Pipeline 8 queries: write them all before reading anything.
	reqs := make(map[uint64]portal.Request, 8)
	for i := 0; i < 8; i++ {
		req := alice.NewRequest(fmt.Sprintf(`SELECT b FROM t WHERE a = %d`, i%3+1))
		reqs[req.QID] = req
		bc.query(req)
	}
	for i := 0; i < 8; i++ {
		f := bc.read()
		if f.Type != wire.TResult {
			t.Fatalf("frame %d: type %v payload %q", i, f.Type, f.Payload)
		}
		req, ok := reqs[f.QID]
		if !ok {
			t.Fatalf("response for unknown qid %d", f.QID)
		}
		delete(reqs, f.QID)
		resp, err := wire.DecodeResult(f.QID, f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if err := alice.VerifyResponse(req, resp); err != nil {
			t.Fatalf("qid %d fails MAC verification: %v", f.QID, err)
		}
		if resp.ErrMsg != "" || len(resp.Rows) != 1 {
			t.Fatalf("qid %d: %+v", f.QID, resp)
		}
	}
	if len(reqs) != 0 {
		t.Fatalf("%d responses missing", len(reqs))
	}

	// Attestation over the binary protocol.
	nonce := []byte("bin-nonce")
	bc.write(wire.Frame{Type: wire.TAttest, QID: 100, Payload: wire.EncodeAttest(nonce)})
	f := bc.read()
	if f.Type != wire.TQuote || f.QID != 100 {
		t.Fatalf("attest answered with %v qid %d", f.Type, f.QID)
	}
	q, err := wire.DecodeQuote(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.Attest(q, db.Measurement(), nonce); err != nil {
		t.Fatalf("binary quote rejected: %v", err)
	}

	// Health over the binary protocol (JSON payload, same shape).
	bc.write(wire.Frame{Type: wire.THealth, QID: 101})
	f = bc.read()
	if f.Type != wire.THealthInfo || f.QID != 101 {
		t.Fatalf("health answered with %v qid %d", f.Type, f.QID)
	}
	var h wireHealth
	if err := json.Unmarshal(f.Payload, &h); err != nil {
		t.Fatal(err)
	}
	if h.Quarantined || h.Alarm != "" {
		t.Fatalf("health %+v", h)
	}

	// A forged MAC gets an unauthenticated TError, and the connection
	// keeps serving afterwards.
	forged := alice.NewRequest(`SELECT 1`)
	forged.MAC = []byte("forged")
	bc.query(forged)
	f = bc.read()
	if f.Type != wire.TError || !strings.Contains(string(f.Payload), "authorization failed") {
		t.Fatalf("forged request answered with %v %q", f.Type, f.Payload)
	}
	ok := alice.NewRequest(`SELECT b FROM t WHERE a = 1`)
	bc.query(ok)
	f = bc.read()
	if f.Type != wire.TResult || f.QID != ok.QID {
		t.Fatalf("connection unusable after refusal: %v %q", f.Type, f.Payload)
	}
}

// TestBinaryOutOfOrderCompletion: a slow scan pipelined ahead of a point
// lookup completes after it — the writer emits responses in completion
// order and the client matches by qid. Scheduling is probabilistic, so the
// test retries; one out-of-order observation proves the path.
func TestBinaryOutOfOrderCompletion(t *testing.T) {
	db := openDB(t, veridb.Config{Seed: 6})
	mustExec(t, db, `CREATE TABLE big (a INT PRIMARY KEY, b INT)`,
		`CREATE TABLE small (a INT PRIMARY KEY, b INT)`,
		`INSERT INTO small VALUES (1, 10)`)
	var sb strings.Builder
	sb.WriteString(`INSERT INTO big VALUES `)
	for i := 0; i < 4000; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "(%d, %d)", i, i)
	}
	mustExec(t, db, sb.String())
	key := []byte("ooo-secret")
	db.ProvisionClient("alice", key)
	alice := client.New("alice", key)

	ln := serveTCP(t, Config{DB: db})

	for attempt := 0; attempt < 10; attempt++ {
		bc := dialBinary(t, ln.Addr().String())
		slow := alice.NewRequest(`SELECT a, b FROM big WHERE b >= 0 ORDER BY a`)
		fast := alice.NewRequest(`SELECT b FROM small WHERE a = 1`)
		bc.query(slow)
		bc.query(fast)
		first, second := bc.read(), bc.read()
		for _, f := range []wire.Frame{first, second} {
			if f.Type != wire.TResult {
				t.Fatalf("type %v payload %q", f.Type, f.Payload)
			}
			req := slow
			if f.QID == fast.QID {
				req = fast
			}
			resp, err := wire.DecodeResult(f.QID, f.Payload)
			if err != nil {
				t.Fatal(err)
			}
			if err := alice.VerifyResponse(req, resp); err != nil {
				t.Fatalf("qid %d fails MAC verification: %v", f.QID, err)
			}
		}
		if first.QID == fast.QID && second.QID == slow.QID {
			return // out-of-order completion observed
		}
		bc.conn.Close()
	}
	t.Fatal("pipelined fast query never completed ahead of the slow scan")
}

// TestBinaryPerFrameOverload: with a one-slot admission gate (no queue)
// and the slot pinned by a direct slow statement, every query in a
// pipelined burst is refused per-frame with a typed ErrOverloaded carrying
// a RetryAfter hint — the refusals don't stall the window or poison the
// connection, and a fresh-qid retry succeeds once the slot frees.
func TestBinaryPerFrameOverload(t *testing.T) {
	db := openDB(t, veridb.Config{
		Seed:                    7,
		MaxConcurrentStatements: 1,
		AdmissionMaxWait:        time.Millisecond,
	})
	mustExec(t, db, `CREATE TABLE big (a INT PRIMARY KEY, b INT)`)
	var sb strings.Builder
	sb.WriteString(`INSERT INTO big VALUES `)
	for i := 0; i < 20000; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "(%d, %d)", i, i)
	}
	mustExec(t, db, sb.String())
	key := []byte("shed-secret")
	db.ProvisionClient("alice", key)
	alice := client.New("alice", key)

	ln := serveTCP(t, Config{DB: db})
	bc := dialBinary(t, ln.Addr().String())

	// Pin the only admission slot with a direct slow scan, then wait until
	// the gate reports it in flight.
	hold := make(chan error, 1)
	go func() {
		_, err := db.Exec(`SELECT a, b FROM big WHERE b >= 0 ORDER BY a`)
		hold <- err
	}()
	for deadline := time.Now().Add(5 * time.Second); ; {
		if db.Govern().Admission.InFlight >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("direct statement never acquired the admission slot")
		}
	}

	const burst = 16
	reqs := make(map[uint64]portal.Request, burst)
	for i := 0; i < burst; i++ {
		req := alice.NewRequest(`SELECT a FROM big WHERE a = 1`)
		reqs[req.QID] = req
		bc.query(req)
	}
	for i := 0; i < burst; i++ {
		f := bc.read()
		req, ok := reqs[f.QID]
		if !ok {
			t.Fatalf("response for unknown qid %d", f.QID)
		}
		delete(reqs, f.QID)
		// A shed is still an authenticated response: the portal endorses
		// the refusal so a middlebox cannot forge overload signals.
		if f.Type != wire.TResult {
			t.Fatalf("qid %d answered with %v (%q) while the slot was pinned", f.QID, f.Type, f.Payload)
		}
		resp, err := wire.DecodeResult(f.QID, f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if verr := alice.VerifyResponse(req, resp); !errors.Is(verr, govern.ErrOverloaded) {
			t.Fatalf("qid %d: want a MAC-verified overload refusal, got %v (resp %+v)", f.QID, verr, resp)
		}
		oe, ok := govern.ParseOverloaded(resp.ErrMsg)
		if !ok || oe.RetryAfter <= 0 {
			t.Fatalf("overload refusal without a RetryAfter hint: %q", resp.ErrMsg)
		}
	}
	if err := <-hold; err != nil {
		t.Fatalf("pinned statement failed: %v", err)
	}
	// Shed load did not poison the connection: a retry with a FRESH qid
	// succeeds once the slot frees (the shed qids were consumed — the
	// portal's at-most-once window rejects their reuse, so the client must
	// and does sign a new qid).
	retry := alice.NewRequest(`SELECT a FROM big WHERE a = 1`)
	bc.query(retry)
	f := bc.read()
	if f.Type != wire.TResult || f.QID != retry.QID {
		t.Fatalf("post-shed retry answered with %v %q", f.Type, f.Payload)
	}
}

// TestBinaryOversizedFrameTypedRefusal: a frame declaring a payload past
// the cap is refused by address — the TError carries the offending qid and
// a message that parses back to the typed too-large error, matching the
// legacy path's refusal — then the connection closes.
func TestBinaryOversizedFrameTypedRefusal(t *testing.T) {
	db := openDB(t, veridb.Config{Seed: 8})
	ln := serveTCP(t, Config{DB: db, MaxMessage: 256})
	bc := dialBinary(t, ln.Addr().String())

	// Header only: declares 1024 payload bytes against a 256-byte cap.
	hdr := wire.AppendHeader(nil, wire.TQuery, 77, 1024)
	if _, err := bc.conn.Write(hdr); err != nil {
		t.Fatal(err)
	}
	f := bc.read()
	if f.Type != wire.TError || f.QID != 77 {
		t.Fatalf("refusal %v qid %d", f.Type, f.QID)
	}
	tl, ok := wire.ParseTooLarge(string(f.Payload))
	if !ok || tl.Limit != 256 {
		t.Fatalf("refusal %q did not parse as typed too-large (%+v, %v)", f.Payload, tl, ok)
	}
	// Connection closes after the refusal, like the legacy path.
	bc.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := wire.ReadFrame(bc.br, 0); err == nil {
		t.Fatal("connection still open after oversized frame")
	}
}

// TestBinaryAbruptDisconnectLeaksNothing: killing a client mid-pipeline
// (responses unread, handlers in flight) must unwind the reader, all
// handler goroutines, and the writer.
func TestBinaryAbruptDisconnectLeaksNothing(t *testing.T) {
	db := openDB(t, veridb.Config{Seed: 9})
	mustExec(t, db, `CREATE TABLE big (a INT PRIMARY KEY, b INT)`)
	var sb strings.Builder
	sb.WriteString(`INSERT INTO big VALUES `)
	for i := 0; i < 2000; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "(%d, %d)", i, i)
	}
	mustExec(t, db, sb.String())
	key := []byte("leak-secret")
	db.ProvisionClient("alice", key)
	alice := client.New("alice", key)

	srv, err := New(Config{DB: db, MaxInflight: 4})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go srv.Serve(ln)

	before := runtime.NumGoroutine()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// Fill the pipeline with slow scans, read nothing, and vanish.
	for i := 0; i < 8; i++ {
		req := alice.NewRequest(`SELECT a, b FROM big WHERE b >= 0 ORDER BY a`)
		if err := wire.WriteFrame(conn, wire.Frame{Type: wire.TQuery, QID: req.QID, Payload: wire.EncodeQuery(req)}); err != nil {
			t.Fatal(err)
		}
	}
	conn.Close()

	// The session must fully unwind: reader, handlers, writer.
	ln.Close()
	if !srv.Drain(10 * time.Second) {
		t.Fatal("server did not drain after abrupt client disconnect")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after disconnect: %d -> %d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The database is still healthy and serving (no pinned state left by
	// the dead connection).
	if _, err := db.Exec(`INSERT INTO big VALUES (100000, 1)`); err != nil {
		t.Fatalf("database unusable after disconnect: %v", err)
	}
}

// TestDualProtocolSniffing: one listener serves a legacy JSON connection
// and a binary connection side by side; pinned modes refuse the other
// protocol's first byte instead of misparsing it.
func TestDualProtocolSniffing(t *testing.T) {
	db := openDB(t, veridb.Config{Seed: 10})
	mustExec(t, db, `CREATE TABLE t (a INT PRIMARY KEY)`, `INSERT INTO t VALUES (1)`)
	key := []byte("sniff-secret")
	db.ProvisionClient("alice", key)
	alice := client.New("alice", key)

	ln := serveTCP(t, Config{DB: db})

	// Legacy JSON connection.
	jc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer jc.Close()
	req := alice.NewRequest(`SELECT a FROM t`)
	if err := json.NewEncoder(jc).Encode(wireRequest{
		Op: "query", Client: req.ClientID, QID: req.QID, Query: req.Query,
		MAC: base64.StdEncoding.EncodeToString(req.MAC),
	}); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(jc)
	if !sc.Scan() {
		t.Fatal("no JSON response")
	}
	var jresp wireResponse
	if err := json.Unmarshal(sc.Bytes(), &jresp); err != nil {
		t.Fatal(err)
	}
	if jresp.Err != "" || len(jresp.Rows) != 1 {
		t.Fatalf("JSON leg: %+v", jresp)
	}

	// Binary connection on the same listener.
	bc := dialBinary(t, ln.Addr().String())
	breq := alice.NewRequest(`SELECT a FROM t`)
	bc.query(breq)
	f := bc.read()
	if f.Type != wire.TResult || f.QID != breq.QID {
		t.Fatalf("binary leg: %v %q", f.Type, f.Payload)
	}
	resp, err := wire.DecodeResult(f.QID, f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.VerifyResponse(breq, resp); err != nil {
		t.Fatal(err)
	}

	// A json-pinned server treats a binary frame as a (malformed) JSON
	// line — it never reaches the binary path.
	jln := serveTCP(t, Config{DB: db, Wire: WireJSON})
	pc, err := net.Dial("tcp", jln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	wire.WriteFrame(pc, wire.Frame{Type: wire.THealth, QID: 1})
	pc.Write([]byte("\n"))
	pc.SetReadDeadline(time.Now().Add(5 * time.Second))
	psc := bufio.NewScanner(pc)
	if !psc.Scan() || !strings.Contains(psc.Text(), "bad request") {
		t.Fatalf("json-pinned server did not refuse a binary frame as bad JSON: %q", psc.Text())
	}
}
