// Package sethash implements the cryptographic primitives underlying
// VeriDB's write-read consistent memory (paper §4.1): a keyed pseudo-random
// function over (address, data) pairs and an XOR-homomorphic multiset hash.
//
// The multiset hash of a set S is
//
//	h(S) = XOR over (addr, data) in S of PRF_k(addr ‖ data)
//
// so that h can be maintained incrementally under insertion (fold one more
// PRF image in) and two multisets are equal iff their hashes are equal,
// except with negligible probability. The paper uses 64-byte accumulators;
// we realise PRF_k with HMAC-SHA-512, which yields exactly 64 bytes.
package sethash

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha512"
	"crypto/subtle"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"sync"
)

// Size is the byte length of PRF outputs and multiset-hash accumulators.
const Size = sha512.Size // 64 bytes, matching the paper's accumulators

// Digest is a single 64-byte PRF image or multiset-hash accumulator.
type Digest [Size]byte

// Zero reports whether d is the all-zero digest (the hash of the empty set).
func (d *Digest) Zero() bool {
	var z Digest
	return subtle.ConstantTimeCompare(d[:], z[:]) == 1
}

// Equal reports whether d and o are identical, in constant time.
func (d *Digest) Equal(o *Digest) bool {
	return subtle.ConstantTimeCompare(d[:], o[:]) == 1
}

// XOR folds o into d in place. Because XOR is its own inverse, the same
// operation both inserts into and removes from a multiset accumulator.
//
// The fold works eight uint64 words at a time rather than byte-wise: the
// accumulator fold sits on the verification scan's hot path (one XOR per
// live cell per scan), and the word loads/stores compile to plain 64-bit
// moves. Loading and storing through the same byte order keeps the result
// independent of host endianness.
func (d *Digest) XOR(o *Digest) {
	for i := 0; i < Size; i += 8 {
		binary.LittleEndian.PutUint64(d[i:i+8],
			binary.LittleEndian.Uint64(d[i:i+8])^binary.LittleEndian.Uint64(o[i:i+8]))
	}
}

// String renders the first eight bytes as hex, enough for logs and tests.
func (d Digest) String() string {
	return hex.EncodeToString(d[:8])
}

// Key is a PRF key. It must stay inside the (simulated) enclave: an
// adversary that learns it can forge set-hash updates.
//
// The key owns a pool of keyed HMAC states: re-deriving the inner/outer
// pads on every evaluation would double the hashing work on the hot path
// the paper's Fig. 9 measures.
type Key struct {
	k    [32]byte
	pool sync.Pool
}

func (k *Key) mac() hash.Hash {
	if h, ok := k.pool.Get().(hash.Hash); ok {
		h.Reset()
		return h
	}
	return hmac.New(sha512.New, k.k[:])
}

func (k *Key) put(h hash.Hash) { k.pool.Put(h) }

// NewKey draws a fresh random PRF key.
func NewKey() (*Key, error) {
	var k Key
	if _, err := rand.Read(k.k[:]); err != nil {
		return nil, fmt.Errorf("sethash: generating PRF key: %w", err)
	}
	return &k, nil
}

// KeyFromSeed derives a deterministic key from seed. Intended for tests and
// reproducible benchmarks; production callers should use NewKey.
func KeyFromSeed(seed uint64) *Key {
	var k Key
	sum := sha512.Sum512(binary.LittleEndian.AppendUint64([]byte("veridb-sethash-seed:"), seed))
	copy(k.k[:], sum[:32])
	return &k
}

// PRF computes PRF_k(addr ‖ data): the image of one (address, data) pair.
func (k *Key) PRF(addr uint64, data []byte) Digest {
	return k.PRFv(addr, 0, data)
}

// PRFv computes PRF_k(addr ‖ ver ‖ data): the image of a versioned cell.
// Blum-style offline checking timestamps every entry so the read and write
// multisets contain only distinct elements, which makes the XOR set hash a
// sound multiset hash (even multiplicities would otherwise cancel).
func (k *Key) PRFv(addr, ver uint64, data []byte) Digest {
	mac := k.mac()
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[:8], addr)
	binary.LittleEndian.PutUint64(hdr[8:], ver)
	mac.Write(hdr[:])
	mac.Write(data)
	var d Digest
	mac.Sum(d[:0])
	k.put(mac)
	return d
}

// PRFvInto computes PRF_k(addr ‖ ver ‖ data) directly into out, avoiding
// the 64-byte return-value copy of PRFv. Equivalent to *out = k.PRFv(...).
func (k *Key) PRFvInto(addr, ver uint64, data []byte, out *Digest) {
	mac := k.mac()
	prfvInto(mac, addr, ver, data, out)
	k.put(mac)
}

func prfvInto(mac hash.Hash, addr, ver uint64, data []byte, out *Digest) {
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[:8], addr)
	binary.LittleEndian.PutUint64(hdr[8:], ver)
	mac.Write(hdr[:])
	mac.Write(data)
	mac.Sum(out[:0])
}

// Hasher is a batch PRF evaluator: it checks one keyed HMAC state out of
// the key's pool and reuses it for every evaluation until Close. Scanners
// that evaluate thousands of PRFs per page (vmem's verification workers)
// use one Hasher per worker, paying the pool synchronisation once per
// batch instead of once per cell. A Hasher is not safe for concurrent use.
type Hasher struct {
	k   *Key
	mac hash.Hash
}

// NewHasher checks an HMAC state out of the pool. Callers must Close.
func (k *Key) NewHasher() *Hasher {
	return &Hasher{k: k, mac: k.mac()}
}

// PRFvInto evaluates PRF_k(addr ‖ ver ‖ data) into out.
func (h *Hasher) PRFvInto(addr, ver uint64, data []byte, out *Digest) {
	h.mac.Reset()
	prfvInto(h.mac, addr, ver, data, out)
}

// Close returns the HMAC state to the key's pool.
func (h *Hasher) Close() {
	if h.mac != nil {
		h.k.put(h.mac)
		h.mac = nil
	}
}

// Accumulator is an incrementally maintained multiset hash h(S). The zero
// value is the hash of the empty multiset and is ready to use. Accumulator
// is not safe for concurrent use; callers (the vmem RSWS partitions) guard
// it with their own locks, mirroring the paper's RSWS locks.
type Accumulator struct {
	h Digest
}

// Add folds the pair (addr, data) into the multiset.
func (a *Accumulator) Add(k *Key, addr uint64, data []byte) {
	d := k.PRF(addr, data)
	a.h.XOR(&d)
}

// AddDigest folds a precomputed PRF image into the multiset. Callers that
// need the same image in two accumulators (e.g. a read updates both h(RS)
// and h(WS), Alg. 1 lines 3–5) compute the PRF once and fold it twice.
func (a *Accumulator) AddDigest(d *Digest) {
	a.h.XOR(d)
}

// Sum returns the current accumulator value.
func (a *Accumulator) Sum() Digest { return a.h }

// Reset returns the accumulator to the empty-set hash.
func (a *Accumulator) Reset() { a.h = Digest{} }

// Equal reports whether two accumulators hash the same multiset.
func (a *Accumulator) Equal(b *Accumulator) bool {
	return a.h.Equal(&b.h)
}
