package sethash

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPRFDeterministic(t *testing.T) {
	k := KeyFromSeed(1)
	a := k.PRF(42, []byte("hello"))
	b := k.PRF(42, []byte("hello"))
	if !a.Equal(&b) {
		t.Fatal("PRF not deterministic for identical inputs")
	}
}

func TestPRFDistinguishesAddr(t *testing.T) {
	k := KeyFromSeed(1)
	a := k.PRF(1, []byte("x"))
	b := k.PRF(2, []byte("x"))
	if a.Equal(&b) {
		t.Fatal("PRF collided on distinct addresses")
	}
}

func TestPRFDistinguishesData(t *testing.T) {
	k := KeyFromSeed(1)
	a := k.PRF(1, []byte("x"))
	b := k.PRF(1, []byte("y"))
	if a.Equal(&b) {
		t.Fatal("PRF collided on distinct data")
	}
}

func TestPRFKeyed(t *testing.T) {
	a := KeyFromSeed(1).PRF(1, []byte("x"))
	b := KeyFromSeed(2).PRF(1, []byte("x"))
	if a.Equal(&b) {
		t.Fatal("PRF output identical under different keys")
	}
}

func TestPRFBoundaryConcatenation(t *testing.T) {
	// (addr, data) must be injectively encoded: moving a byte between the
	// two halves must change the image. addr is fixed-width so this holds.
	k := KeyFromSeed(3)
	a := k.PRF(0x01, []byte{0x02})
	b := k.PRF(0x0102, nil)
	if a.Equal(&b) {
		t.Fatal("PRF encoding is not injective across the addr/data boundary")
	}
}

func TestNewKeyRandom(t *testing.T) {
	k1, err := NewKey()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := NewKey()
	if err != nil {
		t.Fatal(err)
	}
	a := k1.PRF(1, []byte("x"))
	b := k2.PRF(1, []byte("x"))
	if a.Equal(&b) {
		t.Fatal("two fresh keys produced identical PRF output")
	}
}

func TestZeroDigest(t *testing.T) {
	var d Digest
	if !d.Zero() {
		t.Fatal("zero value not reported as zero")
	}
	d[0] = 1
	if d.Zero() {
		t.Fatal("nonzero digest reported as zero")
	}
}

func TestAccumulatorEmptyEqualsEmpty(t *testing.T) {
	var a, b Accumulator
	if !a.Equal(&b) {
		t.Fatal("two empty accumulators differ")
	}
	s := a.Sum()
	if !s.Zero() {
		t.Fatal("empty accumulator sum is not zero")
	}
}

func TestAccumulatorOrderIndependence(t *testing.T) {
	k := KeyFromSeed(7)
	pairs := [][2]any{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 64; i++ {
		data := make([]byte, 1+rng.Intn(32))
		rng.Read(data)
		pairs = append(pairs, [2]any{uint64(i), data})
	}
	var fwd, rev Accumulator
	for _, p := range pairs {
		fwd.Add(k, p[0].(uint64), p[1].([]byte))
	}
	for i := len(pairs) - 1; i >= 0; i-- {
		rev.Add(k, pairs[i][0].(uint64), pairs[i][1].([]byte))
	}
	if !fwd.Equal(&rev) {
		t.Fatal("multiset hash depends on insertion order")
	}
}

func TestAccumulatorSelfInverse(t *testing.T) {
	k := KeyFromSeed(9)
	var a Accumulator
	a.Add(k, 5, []byte("payload"))
	a.Add(k, 5, []byte("payload")) // XOR cancels: even multiplicity vanishes
	s := a.Sum()
	if !s.Zero() {
		t.Fatal("adding the same element twice did not cancel")
	}
}

func TestAccumulatorReset(t *testing.T) {
	k := KeyFromSeed(9)
	var a Accumulator
	a.Add(k, 1, []byte("x"))
	a.Reset()
	s := a.Sum()
	if !s.Zero() {
		t.Fatal("reset did not clear the accumulator")
	}
}

func TestAddDigestMatchesAdd(t *testing.T) {
	k := KeyFromSeed(11)
	var a, b Accumulator
	a.Add(k, 99, []byte("value"))
	d := k.PRF(99, []byte("value"))
	b.AddDigest(&d)
	if !a.Equal(&b) {
		t.Fatal("AddDigest disagrees with Add")
	}
}

// TestReadWriteConsistencyProperty is the core soundness property of §4.1:
// if the reads on each address interleave exactly with the writes (every
// read returns the most recent write), then after the final scan the read
// set equals the write set — and if any read returns tampered data, they
// differ.
func TestReadWriteConsistencyProperty(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		k := KeyFromSeed(uint64(seed))
		rng := rand.New(rand.NewSource(seed))
		mem := map[uint64][]byte{}
		var rs, ws Accumulator
		// Initial registration: seed WS with initial contents.
		for addr := uint64(0); addr < 8; addr++ {
			v := []byte{byte(rng.Intn(256))}
			mem[addr] = v
			ws.Add(k, addr, v)
		}
		for i := 0; i < int(nOps); i++ {
			addr := uint64(rng.Intn(8))
			if rng.Intn(2) == 0 { // read: fold into RS, virtual write-back into WS
				rs.Add(k, addr, mem[addr])
				ws.Add(k, addr, mem[addr])
			} else { // write: old into RS, new into WS
				rs.Add(k, addr, mem[addr])
				v := []byte{byte(rng.Intn(256))}
				mem[addr] = v
				ws.Add(k, addr, v)
			}
		}
		// Verification scan: read everything once.
		for addr := uint64(0); addr < 8; addr++ {
			rs.Add(k, addr, mem[addr])
		}
		return rs.Equal(&ws)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTamperBreaksConsistency(t *testing.T) {
	k := KeyFromSeed(13)
	mem := map[uint64][]byte{0: {1}, 1: {2}}
	var rs, ws Accumulator
	for a, v := range mem {
		ws.Add(k, a, v)
	}
	mem[1] = []byte{99} // adversary writes around the protected interface
	for a, v := range mem {
		rs.Add(k, a, v)
	}
	if rs.Equal(&ws) {
		t.Fatal("tampered memory passed the consistency check")
	}
}

// xorBytewise is the pre-optimisation byte-at-a-time fold, kept here as
// the reference the word-wise XOR must agree with (and the baseline
// BenchmarkDigestXOR compares against).
func xorBytewise(d, o *Digest) {
	for i := range d {
		d[i] ^= o[i]
	}
}

func TestXORMatchesBytewiseReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var a, b, ref Digest
		rng.Read(a[:])
		rng.Read(b[:])
		ref = a
		xorBytewise(&ref, &b)
		a.XOR(&b)
		return a.Equal(&ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestXORSelfCancels(t *testing.T) {
	var a, b Digest
	rand.New(rand.NewSource(5)).Read(a[:])
	b = a
	a.XOR(&b)
	if !a.Zero() {
		t.Fatal("d XOR d is not zero")
	}
}

func TestPRFvIntoMatchesPRFv(t *testing.T) {
	k := KeyFromSeed(21)
	data := []byte("cell-payload")
	want := k.PRFv(7, 3, data)
	var got Digest
	k.PRFvInto(7, 3, data, &got)
	if !got.Equal(&want) {
		t.Fatal("PRFvInto disagrees with PRFv")
	}
}

func TestHasherMatchesPRFv(t *testing.T) {
	k := KeyFromSeed(22)
	h := k.NewHasher()
	defer h.Close()
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 64; i++ {
		data := make([]byte, rng.Intn(128))
		rng.Read(data)
		addr, ver := rng.Uint64(), rng.Uint64()
		want := k.PRFv(addr, ver, data)
		var got Digest
		h.PRFvInto(addr, ver, data, &got)
		if !got.Equal(&want) {
			t.Fatalf("evaluation %d: Hasher disagrees with PRFv", i)
		}
	}
}

func TestHasherCloseIdempotent(t *testing.T) {
	k := KeyFromSeed(23)
	h := k.NewHasher()
	h.Close()
	h.Close() // second close must not panic or double-pool the state
}

func TestDigestString(t *testing.T) {
	var d Digest
	d[0] = 0xAB
	if got := d.String(); got != "ab00000000000000" {
		t.Fatalf("String() = %q", got)
	}
}

func BenchmarkPRF500B(b *testing.B) {
	k := KeyFromSeed(1)
	data := make([]byte, 500)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = k.PRF(uint64(i), data)
	}
}

func BenchmarkAccumulatorAdd500B(b *testing.B) {
	k := KeyFromSeed(1)
	data := make([]byte, 500)
	var a Accumulator
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Add(k, uint64(i), data)
	}
}

// BenchmarkDigestXOR pins the word-wise fold's win over the byte-wise
// reference; the scan fold path executes one of these per live cell.
func BenchmarkDigestXOR(b *testing.B) {
	var d, o Digest
	rand.New(rand.NewSource(1)).Read(o[:])
	b.Run("wordwise", func(b *testing.B) {
		b.SetBytes(Size)
		for i := 0; i < b.N; i++ {
			d.XOR(&o)
		}
	})
	b.Run("bytewise", func(b *testing.B) {
		b.SetBytes(Size)
		for i := 0; i < b.N; i++ {
			xorBytewise(&d, &o)
		}
	})
}

// BenchmarkPRFvInto measures the batch path against the per-call pool
// round-trip of PRFv.
func BenchmarkPRFvInto(b *testing.B) {
	k := KeyFromSeed(1)
	data := make([]byte, 500)
	b.Run("pooledPerCall", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			_ = k.PRFv(uint64(i), 1, data)
		}
	})
	b.Run("hasherBatch", func(b *testing.B) {
		h := k.NewHasher()
		defer h.Close()
		var d Digest
		b.SetBytes(int64(len(data)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.PRFvInto(uint64(i), 1, data, &d)
		}
	})
}
