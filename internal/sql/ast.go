package sql

import (
	"fmt"
	"strings"

	"veridb/internal/record"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       record.Type
	PrimaryKey bool
}

// CreateTable is CREATE TABLE name (cols..., INDEX(col)...).
type CreateTable struct {
	Name    string
	Columns []ColumnDef
	Indexes []string // chain columns beyond the primary key (§5.3)
}

// DropTable is DROP TABLE name.
type DropTable struct{ Name string }

// Explain is EXPLAIN SELECT ...: it asks for the physical plan instead of
// executing the query.
type Explain struct{ Query *Select }

// Insert is INSERT INTO name [(cols)] VALUES (...), (...).
type Insert struct {
	Table   string
	Columns []string // empty: schema order
	Rows    [][]Expr
}

// Assignment is one SET col = expr.
type Assignment struct {
	Column string
	Value  Expr
}

// Update is UPDATE name SET ... [WHERE ...].
type Update struct {
	Table string
	Set   []Assignment
	Where Expr
}

// Delete is DELETE FROM name [WHERE ...].
type Delete struct {
	Table string
	Where Expr
}

// SelectItem is one projection: expression plus optional alias; a bare *
// is represented by Star.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
}

// TableRef is one FROM entry.
type TableRef struct {
	Table string
	Alias string
}

// JoinClause is an explicit JOIN ... ON.
type JoinClause struct {
	Ref TableRef
	On  Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Select is the SPJA query form.
type Select struct {
	Items   []SelectItem
	From    []TableRef
	Joins   []JoinClause
	Where   Expr
	GroupBy []Expr
	Having  Expr
	OrderBy []OrderItem
	Limit   int // -1: none
}

// Prepare is PREPARE name AS <statement>: it registers a parameterized
// statement template (with ? placeholders) under a name, so EXECUTE can
// replay the shape without resending or re-parsing the text.
type Prepare struct {
	Name string
	Stmt Statement // SELECT, INSERT, UPDATE or DELETE template
	// NumParams is how many ? placeholders the template holds; EXECUTE
	// must bind exactly this many arguments.
	NumParams int
}

// ExecutePrepared is EXECUTE name [(args...)]: it binds constant
// arguments to a prepared template's placeholders and runs it.
type ExecutePrepared struct {
	Name string
	Args []Expr // constant expressions, one per placeholder
}

// Deallocate is DEALLOCATE name: it drops a prepared statement.
type Deallocate struct{ Name string }

// BeginSnapshot is BEGIN SNAPSHOT: it pins the session's read point at
// the current commit watermark. Until COMMIT, every SELECT in the session
// reads that one consistent committed state; mutating statements are
// rejected (the session is read-only while pinned).
type BeginSnapshot struct{}

// CommitSnapshot is COMMIT: it releases the session's pinned snapshot.
type CommitSnapshot struct{}

func (*CreateTable) stmt()     {}
func (*DropTable) stmt()       {}
func (*Explain) stmt()         {}
func (*Insert) stmt()          {}
func (*Update) stmt()          {}
func (*Delete) stmt()          {}
func (*Select) stmt()          {}
func (*Prepare) stmt()         {}
func (*ExecutePrepared) stmt() {}
func (*Deallocate) stmt()      {}
func (*BeginSnapshot) stmt()   {}
func (*CommitSnapshot) stmt()  {}

// Expr is any expression node.
type Expr interface {
	expr()
	String() string
}

// ColumnRef is a possibly qualified column reference.
type ColumnRef struct {
	Table  string // alias or table name; empty if unqualified
	Column string
}

// Literal is a constant value.
type Literal struct{ Val record.Value }

// Param is one ? placeholder inside a PREPARE template. Index is the
// 0-based ordinal of the placeholder in statement text order; BindParams
// substitutes the matching argument before execution.
type Param struct{ Index int }

// BinaryExpr applies Op to L and R. Ops: OR AND = <> < <= > >= + - * / %.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// UnaryExpr applies Op (NOT, -) to E.
type UnaryExpr struct {
	Op string
	E  Expr
}

// FuncCall is an aggregate call: COUNT(*), SUM(e), AVG(e), MIN(e), MAX(e).
type FuncCall struct {
	Name string // upper case
	Arg  Expr   // nil for COUNT(*)
	Star bool
}

// BetweenExpr is e BETWEEN lo AND hi (inclusive both ends).
type BetweenExpr struct {
	E, Lo, Hi Expr
	Negated   bool
}

// InExpr is e IN (list...).
type InExpr struct {
	E       Expr
	List    []Expr
	Negated bool
}

// IsNullExpr is e IS [NOT] NULL.
type IsNullExpr struct {
	E       Expr
	Negated bool
}

func (*ColumnRef) expr()   {}
func (*Literal) expr()     {}
func (*Param) expr()       {}
func (*BinaryExpr) expr()  {}
func (*UnaryExpr) expr()   {}
func (*FuncCall) expr()    {}
func (*BetweenExpr) expr() {}
func (*InExpr) expr()      {}
func (*IsNullExpr) expr()  {}

func (c *ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}
func (l *Literal) String() string {
	if !l.Val.Null && l.Val.Type == record.TypeText {
		return "'" + strings.ReplaceAll(l.Val.S, "'", "''") + "'"
	}
	return l.Val.String()
}
func (p *Param) String() string { return "?" }
func (b *BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}
func (u *UnaryExpr) String() string { return fmt.Sprintf("(%s %s)", u.Op, u.E) }
func (f *FuncCall) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	return fmt.Sprintf("%s(%s)", f.Name, f.Arg)
}
func (b *BetweenExpr) String() string {
	n := ""
	if b.Negated {
		n = "NOT "
	}
	return fmt.Sprintf("(%s %sBETWEEN %s AND %s)", b.E, n, b.Lo, b.Hi)
}
func (i *InExpr) String() string {
	parts := make([]string, len(i.List))
	for j, e := range i.List {
		parts[j] = e.String()
	}
	n := ""
	if i.Negated {
		n = "NOT "
	}
	return fmt.Sprintf("(%s %sIN (%s))", i.E, n, strings.Join(parts, ", "))
}
func (i *IsNullExpr) String() string {
	if i.Negated {
		return fmt.Sprintf("(%s IS NOT NULL)", i.E)
	}
	return fmt.Sprintf("(%s IS NULL)", i.E)
}
