package sql

// Parameter binding and statement rendering for prepared statements.
// BindParams deep-clones a PREPARE template with every ? placeholder
// replaced by its bound argument, so the original template survives for
// the next EXECUTE and concurrent bindings never share expression nodes.
// Render turns a bound mutating statement back into parseable SQL text —
// that text is what the WAL logs, so recovery replays a plain statement
// with no dependency on the session's prepared-statement registry.

import (
	"fmt"
	"strconv"
	"strings"

	"veridb/internal/record"
)

// BindParams returns a copy of the template with params[i] substituted
// for the placeholder of index i. The argument count must match exactly.
func BindParams(stmt Statement, params []record.Value) (Statement, error) {
	n := CountParams(stmt)
	if len(params) != n {
		return nil, fmt.Errorf("sql: statement wants %d parameters, got %d", n, len(params))
	}
	return cloneStmt(stmt, params)
}

// CountParams counts the ? placeholders in a statement.
func CountParams(stmt Statement) int {
	max := -1
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case nil:
		case *Param:
			if x.Index > max {
				max = x.Index
			}
		case *BinaryExpr:
			walk(x.L)
			walk(x.R)
		case *UnaryExpr:
			walk(x.E)
		case *FuncCall:
			walk(x.Arg)
		case *BetweenExpr:
			walk(x.E)
			walk(x.Lo)
			walk(x.Hi)
		case *InExpr:
			walk(x.E)
			for _, v := range x.List {
				walk(v)
			}
		case *IsNullExpr:
			walk(x.E)
		}
	}
	forEachExpr(stmt, walk)
	return max + 1
}

// forEachExpr visits every expression root of a statement.
func forEachExpr(stmt Statement, fn func(Expr)) {
	switch s := stmt.(type) {
	case *Insert:
		for _, row := range s.Rows {
			for _, e := range row {
				fn(e)
			}
		}
	case *Update:
		for _, a := range s.Set {
			fn(a.Value)
		}
		fn(s.Where)
	case *Delete:
		fn(s.Where)
	case *Select:
		for _, it := range s.Items {
			fn(it.Expr)
		}
		for _, j := range s.Joins {
			fn(j.On)
		}
		fn(s.Where)
		for _, e := range s.GroupBy {
			fn(e)
		}
		fn(s.Having)
		for _, o := range s.OrderBy {
			fn(o.Expr)
		}
	}
}

// cloneStmt deep-copies a statement; params, when non-nil, substitutes
// placeholders (nil params leaves them in place — a pure clone).
func cloneStmt(stmt Statement, params []record.Value) (Statement, error) {
	switch s := stmt.(type) {
	case *Insert:
		out := &Insert{Table: s.Table, Columns: append([]string(nil), s.Columns...)}
		for _, row := range s.Rows {
			nr := make([]Expr, len(row))
			for i, e := range row {
				var err error
				if nr[i], err = cloneExpr(e, params); err != nil {
					return nil, err
				}
			}
			out.Rows = append(out.Rows, nr)
		}
		return out, nil
	case *Update:
		out := &Update{Table: s.Table}
		for _, a := range s.Set {
			v, err := cloneExpr(a.Value, params)
			if err != nil {
				return nil, err
			}
			out.Set = append(out.Set, Assignment{Column: a.Column, Value: v})
		}
		var err error
		if out.Where, err = cloneExpr(s.Where, params); err != nil {
			return nil, err
		}
		return out, nil
	case *Delete:
		w, err := cloneExpr(s.Where, params)
		if err != nil {
			return nil, err
		}
		return &Delete{Table: s.Table, Where: w}, nil
	case *Select:
		out := &Select{
			From:  append([]TableRef(nil), s.From...),
			Limit: s.Limit,
		}
		for _, it := range s.Items {
			e, err := cloneExpr(it.Expr, params)
			if err != nil {
				return nil, err
			}
			out.Items = append(out.Items, SelectItem{Expr: e, Alias: it.Alias, Star: it.Star})
		}
		for _, j := range s.Joins {
			on, err := cloneExpr(j.On, params)
			if err != nil {
				return nil, err
			}
			out.Joins = append(out.Joins, JoinClause{Ref: j.Ref, On: on})
		}
		var err error
		if out.Where, err = cloneExpr(s.Where, params); err != nil {
			return nil, err
		}
		for _, e := range s.GroupBy {
			g, err := cloneExpr(e, params)
			if err != nil {
				return nil, err
			}
			out.GroupBy = append(out.GroupBy, g)
		}
		if out.Having, err = cloneExpr(s.Having, params); err != nil {
			return nil, err
		}
		for _, o := range s.OrderBy {
			e, err := cloneExpr(o.Expr, params)
			if err != nil {
				return nil, err
			}
			out.OrderBy = append(out.OrderBy, OrderItem{Expr: e, Desc: o.Desc})
		}
		return out, nil
	default:
		return nil, fmt.Errorf("sql: cannot bind parameters into %T", stmt)
	}
}

func cloneExpr(e Expr, params []record.Value) (Expr, error) {
	switch x := e.(type) {
	case nil:
		return nil, nil
	case *Param:
		if params == nil {
			return &Param{Index: x.Index}, nil
		}
		if x.Index < 0 || x.Index >= len(params) {
			return nil, fmt.Errorf("sql: placeholder %d out of range (%d bound)", x.Index+1, len(params))
		}
		return &Literal{Val: params[x.Index]}, nil
	case *ColumnRef:
		return &ColumnRef{Table: x.Table, Column: x.Column}, nil
	case *Literal:
		return &Literal{Val: x.Val}, nil
	case *BinaryExpr:
		l, err := cloneExpr(x.L, params)
		if err != nil {
			return nil, err
		}
		r, err := cloneExpr(x.R, params)
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: x.Op, L: l, R: r}, nil
	case *UnaryExpr:
		c, err := cloneExpr(x.E, params)
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: x.Op, E: c}, nil
	case *FuncCall:
		arg, err := cloneExpr(x.Arg, params)
		if err != nil {
			return nil, err
		}
		return &FuncCall{Name: x.Name, Arg: arg, Star: x.Star}, nil
	case *BetweenExpr:
		c, err := cloneExpr(x.E, params)
		if err != nil {
			return nil, err
		}
		lo, err := cloneExpr(x.Lo, params)
		if err != nil {
			return nil, err
		}
		hi, err := cloneExpr(x.Hi, params)
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: c, Lo: lo, Hi: hi, Negated: x.Negated}, nil
	case *InExpr:
		c, err := cloneExpr(x.E, params)
		if err != nil {
			return nil, err
		}
		out := &InExpr{E: c, Negated: x.Negated}
		for _, v := range x.List {
			cv, err := cloneExpr(v, params)
			if err != nil {
				return nil, err
			}
			out.List = append(out.List, cv)
		}
		return out, nil
	case *IsNullExpr:
		c, err := cloneExpr(x.E, params)
		if err != nil {
			return nil, err
		}
		return &IsNullExpr{E: c, Negated: x.Negated}, nil
	default:
		return nil, fmt.Errorf("sql: cannot clone expression %T", e)
	}
}

// Render turns a bound DML statement back into SQL text that Parse
// accepts and that evaluates to the same values — the form the WAL logs
// for replay. Float literals render in non-exponent decimal (the lexer
// has no exponent support) and text literals double embedded quotes.
func Render(stmt Statement) (string, error) {
	var sb strings.Builder
	switch s := stmt.(type) {
	case *Insert:
		sb.WriteString("INSERT INTO ")
		sb.WriteString(s.Table)
		if len(s.Columns) > 0 {
			sb.WriteString(" (")
			sb.WriteString(strings.Join(s.Columns, ", "))
			sb.WriteString(")")
		}
		sb.WriteString(" VALUES ")
		for i, row := range s.Rows {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString("(")
			for j, e := range row {
				if j > 0 {
					sb.WriteString(", ")
				}
				if err := renderExpr(&sb, e); err != nil {
					return "", err
				}
			}
			sb.WriteString(")")
		}
	case *Update:
		sb.WriteString("UPDATE ")
		sb.WriteString(s.Table)
		sb.WriteString(" SET ")
		for i, a := range s.Set {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(a.Column)
			sb.WriteString(" = ")
			if err := renderExpr(&sb, a.Value); err != nil {
				return "", err
			}
		}
		if s.Where != nil {
			sb.WriteString(" WHERE ")
			if err := renderExpr(&sb, s.Where); err != nil {
				return "", err
			}
		}
	case *Delete:
		sb.WriteString("DELETE FROM ")
		sb.WriteString(s.Table)
		if s.Where != nil {
			sb.WriteString(" WHERE ")
			if err := renderExpr(&sb, s.Where); err != nil {
				return "", err
			}
		}
	default:
		return "", fmt.Errorf("sql: cannot render %T", stmt)
	}
	return sb.String(), nil
}

func renderExpr(sb *strings.Builder, e Expr) error {
	switch x := e.(type) {
	case *Literal:
		sb.WriteString(renderLiteral(x.Val))
		return nil
	case *ColumnRef:
		sb.WriteString(x.String())
		return nil
	case *BinaryExpr:
		sb.WriteString("(")
		if err := renderExpr(sb, x.L); err != nil {
			return err
		}
		sb.WriteString(" " + x.Op + " ")
		if err := renderExpr(sb, x.R); err != nil {
			return err
		}
		sb.WriteString(")")
		return nil
	case *UnaryExpr:
		sb.WriteString("(" + x.Op + " ")
		if err := renderExpr(sb, x.E); err != nil {
			return err
		}
		sb.WriteString(")")
		return nil
	case *FuncCall:
		if x.Star {
			sb.WriteString(x.Name + "(*)")
			return nil
		}
		sb.WriteString(x.Name + "(")
		if err := renderExpr(sb, x.Arg); err != nil {
			return err
		}
		sb.WriteString(")")
		return nil
	case *BetweenExpr:
		sb.WriteString("(")
		if err := renderExpr(sb, x.E); err != nil {
			return err
		}
		if x.Negated {
			sb.WriteString(" NOT")
		}
		sb.WriteString(" BETWEEN ")
		if err := renderExpr(sb, x.Lo); err != nil {
			return err
		}
		sb.WriteString(" AND ")
		if err := renderExpr(sb, x.Hi); err != nil {
			return err
		}
		sb.WriteString(")")
		return nil
	case *InExpr:
		sb.WriteString("(")
		if err := renderExpr(sb, x.E); err != nil {
			return err
		}
		if x.Negated {
			sb.WriteString(" NOT")
		}
		sb.WriteString(" IN (")
		for i, v := range x.List {
			if i > 0 {
				sb.WriteString(", ")
			}
			if err := renderExpr(sb, v); err != nil {
				return err
			}
		}
		sb.WriteString("))")
		return nil
	case *IsNullExpr:
		sb.WriteString("(")
		if err := renderExpr(sb, x.E); err != nil {
			return err
		}
		if x.Negated {
			sb.WriteString(" IS NOT NULL)")
		} else {
			sb.WriteString(" IS NULL)")
		}
		return nil
	default:
		return fmt.Errorf("sql: cannot render expression %T", e)
	}
}

// FormatValue renders one value as a SQL literal that Parse reproduces
// exactly — what clients embed into EXECUTE argument lists.
func FormatValue(v record.Value) string { return renderLiteral(v) }

// renderLiteral formats one value so the lexer and parser reproduce it
// exactly: decimal floats (never exponent notation), doubled quotes in
// text, NULL/TRUE/FALSE keywords.
func renderLiteral(v record.Value) string {
	if v.Null {
		return "NULL"
	}
	switch v.Type {
	case record.TypeInt:
		return strconv.FormatInt(v.I, 10)
	case record.TypeFloat:
		s := strconv.FormatFloat(v.F, 'f', -1, 64)
		if !strings.Contains(s, ".") {
			s += ".0" // keep the float type through re-parsing
		}
		return s
	case record.TypeText:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case record.TypeBool:
		if v.B {
			return "TRUE"
		}
		return "FALSE"
	default:
		return v.String()
	}
}

// Normalize canonicalises statement text for use as a plan-cache key:
// lexes and rejoins with single spaces, so case of keywords, whitespace
// and comments do not fragment the cache. Distinct literals stay
// distinct keys — a cached plan embeds its literals (scan bounds are
// extracted from them), so textual identity is exactly the soundness
// condition for reuse.
func Normalize(src string) (string, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for _, t := range toks {
		if t.Kind == TokEOF {
			break
		}
		if t.Kind == TokSymbol && t.Text == ";" {
			continue // statement terminator is not part of the shape
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		if t.Kind == TokString {
			sb.WriteString("'" + strings.ReplaceAll(t.Text, "'", "''") + "'")
		} else {
			sb.WriteString(t.Text)
		}
	}
	return sb.String(), nil
}
