package sql

import (
	"fmt"
	"strings"
)

// Lexer turns SQL text into tokens.
type Lexer struct {
	src string
	pos int
}

// NewLexer builds a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Tokenize lexes the whole input.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func isSpace(c byte) bool  { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLetter(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	// Skip whitespace and -- comments.
	for {
		for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
			l.pos++
		}
		if l.peek() == '-' && l.peek2() == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case isLetter(c):
		for l.pos < len(l.src) && (isLetter(l.src[l.pos]) || isDigit(l.src[l.pos])) {
			l.pos++
		}
		word := l.src[start:l.pos]
		upper := strings.ToUpper(word)
		if keywords[upper] {
			return Token{Kind: TokKeyword, Text: upper, Pos: start}, nil
		}
		return Token{Kind: TokIdent, Text: word, Pos: start}, nil
	case isDigit(c) || (c == '.' && isDigit(l.peek2())):
		seenDot := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if isDigit(ch) {
				l.pos++
				continue
			}
			if ch == '.' && !seenDot {
				seenDot = true
				l.pos++
				continue
			}
			break
		}
		return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}, nil
	case c == '\'':
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, fmt.Errorf("sql: unterminated string literal at offset %d", start)
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				if l.peek2() == '\'' { // escaped quote: ''
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return Token{Kind: TokString, Text: sb.String(), Pos: start}, nil
			}
			sb.WriteByte(ch)
			l.pos++
		}
	default:
		// Two-character operators first.
		two := ""
		if l.pos+1 < len(l.src) {
			two = l.src[l.pos : l.pos+2]
		}
		switch two {
		case "<=", ">=", "<>", "!=":
			l.pos += 2
			return Token{Kind: TokSymbol, Text: two, Pos: start}, nil
		}
		switch c {
		case '=', '<', '>', '(', ')', ',', '*', '+', '-', '/', '.', ';', '%', '?':
			l.pos++
			return Token{Kind: TokSymbol, Text: string(c), Pos: start}, nil
		}
		return Token{}, fmt.Errorf("sql: unexpected character %q at offset %d", c, l.pos)
	}
}
