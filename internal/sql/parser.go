package sql

import (
	"fmt"
	"strconv"
	"strings"

	"veridb/internal/record"
)

// Parser is a recursive-descent parser over the token stream.
type Parser struct {
	toks []Token
	pos  int
	// nparams counts ? placeholders seen in the current top-level
	// statement; placeholders are legal only inside a PREPARE template.
	nparams int
}

// Parse parses a single statement (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	st, err := p.topStatement()
	if err != nil {
		return nil, err
	}
	p.acceptSymbol(";")
	if !p.atEOF() {
		return nil, fmt.Errorf("sql: trailing input starting at %s", p.cur())
	}
	return st, nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(src string) ([]Statement, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	var out []Statement
	for {
		for p.acceptSymbol(";") {
		}
		if p.atEOF() {
			return out, nil
		}
		st, err := p.topStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
}

// topStatement parses one statement and enforces that ? placeholders
// appear only under PREPARE.
func (p *Parser) topStatement() (Statement, error) {
	p.nparams = 0
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	if p.nparams > 0 {
		if _, ok := st.(*Prepare); !ok {
			return nil, fmt.Errorf("sql: ? placeholders are only valid inside PREPARE")
		}
	}
	return st, nil
}

func (p *Parser) cur() Token { return p.toks[p.pos] }
func (p *Parser) atEOF() bool {
	return p.cur().Kind == TokEOF
}
func (p *Parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *Parser) acceptKeyword(kw string) bool {
	if t := p.cur(); t.Kind == TokKeyword && t.Text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sql: expected %s, found %s at offset %d", kw, p.cur(), p.cur().Pos)
	}
	return nil
}

func (p *Parser) acceptSymbol(sym string) bool {
	if t := p.cur(); t.Kind == TokSymbol && t.Text == sym {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return fmt.Errorf("sql: expected %q, found %s at offset %d", sym, p.cur(), p.cur().Pos)
	}
	return nil
}

func (p *Parser) ident() (string, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return "", fmt.Errorf("sql: expected identifier, found %s at offset %d", t, t.Pos)
	}
	p.pos++
	return t.Text, nil
}

func (p *Parser) statement() (Statement, error) {
	t := p.cur()
	if t.Kind != TokKeyword {
		return nil, fmt.Errorf("sql: expected statement keyword, found %s at offset %d", t, t.Pos)
	}
	switch t.Text {
	case "SELECT":
		return p.selectStmt()
	case "INSERT":
		return p.insertStmt()
	case "UPDATE":
		return p.updateStmt()
	case "DELETE":
		return p.deleteStmt()
	case "CREATE":
		return p.createStmt()
	case "DROP":
		return p.dropStmt()
	case "EXPLAIN":
		p.advance()
		inner, err := p.statement()
		if err != nil {
			return nil, err
		}
		sel, ok := inner.(*Select)
		if !ok {
			return nil, fmt.Errorf("sql: EXPLAIN supports only SELECT")
		}
		return &Explain{Query: sel}, nil
	case "PREPARE":
		return p.prepareStmt()
	case "EXECUTE":
		return p.executeStmt()
	case "DEALLOCATE":
		p.advance()
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &Deallocate{Name: name}, nil
	case "BEGIN":
		p.advance()
		if err := p.expectKeyword("SNAPSHOT"); err != nil {
			return nil, err
		}
		return &BeginSnapshot{}, nil
	case "COMMIT":
		p.advance()
		return &CommitSnapshot{}, nil
	default:
		return nil, fmt.Errorf("sql: unsupported statement %s at offset %d", t, t.Pos)
	}
}

// prepareStmt parses PREPARE name AS <statement>. The template may hold
// ? placeholders; their count is recorded for EXECUTE-time arity checks.
func (p *Parser) prepareStmt() (Statement, error) {
	p.advance() // PREPARE
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	inner, err := p.statement()
	if err != nil {
		return nil, err
	}
	switch inner.(type) {
	case *Select, *Insert, *Update, *Delete:
	default:
		return nil, fmt.Errorf("sql: PREPARE supports SELECT, INSERT, UPDATE and DELETE, got %T", inner)
	}
	return &Prepare{Name: name, Stmt: inner, NumParams: p.nparams}, nil
}

// executeStmt parses EXECUTE name [(args...)]. Arguments are constant
// expressions bound positionally to the template's placeholders.
func (p *Parser) executeStmt() (Statement, error) {
	p.advance() // EXECUTE
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ex := &ExecutePrepared{Name: name}
	if p.acceptSymbol("(") {
		if !p.acceptSymbol(")") {
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				ex.Args = append(ex.Args, e)
				if p.acceptSymbol(",") {
					continue
				}
				break
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
		}
	}
	return ex, nil
}

func (p *Parser) createStmt() (Statement, error) {
	p.advance() // CREATE
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name}
	for {
		if p.acceptKeyword("PRIMARY") {
			// table-level PRIMARY KEY (col)
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			found := false
			for i := range ct.Columns {
				if strings.EqualFold(ct.Columns[i].Name, col) {
					ct.Columns[i].PrimaryKey = true
					found = true
				}
			}
			if !found {
				return nil, fmt.Errorf("sql: PRIMARY KEY names unknown column %q", col)
			}
		} else if p.acceptKeyword("INDEX") {
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			ct.Indexes = append(ct.Indexes, col)
		} else {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			typ, err := p.columnType()
			if err != nil {
				return nil, err
			}
			def := ColumnDef{Name: col, Type: typ}
			if p.acceptKeyword("PRIMARY") {
				if err := p.expectKeyword("KEY"); err != nil {
					return nil, err
				}
				def.PrimaryKey = true
			}
			ct.Columns = append(ct.Columns, def)
		}
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *Parser) columnType() (record.Type, error) {
	t := p.cur()
	if t.Kind != TokKeyword {
		return 0, fmt.Errorf("sql: expected column type, found %s at offset %d", t, t.Pos)
	}
	p.pos++
	switch t.Text {
	case "INT":
		return record.TypeInt, nil
	case "FLOAT":
		return record.TypeFloat, nil
	case "TEXT":
		return record.TypeText, nil
	case "BOOL":
		return record.TypeBool, nil
	default:
		return 0, fmt.Errorf("sql: unknown type %s at offset %d", t, t.Pos)
	}
}

func (p *Parser) dropStmt() (Statement, error) {
	p.advance() // DROP
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropTable{Name: name}, nil
}

func (p *Parser) insertStmt() (Statement, error) {
	p.advance() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: name}
	if p.acceptSymbol("(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	return ins, nil
}

func (p *Parser) updateStmt() (Statement, error) {
	p.advance() // UPDATE
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	up := &Update{Table: name}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		up.Set = append(up.Set, Assignment{Column: col, Value: val})
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if p.acceptKeyword("WHERE") {
		if up.Where, err = p.expr(); err != nil {
			return nil, err
		}
	}
	return up, nil
}

func (p *Parser) deleteStmt() (Statement, error) {
	p.advance() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: name}
	if p.acceptKeyword("WHERE") {
		if del.Where, err = p.expr(); err != nil {
			return nil, err
		}
	}
	return del, nil
}

func (p *Parser) tableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name, Alias: name}
	if p.acceptKeyword("AS") {
		if ref.Alias, err = p.ident(); err != nil {
			return TableRef{}, err
		}
	} else if p.cur().Kind == TokIdent {
		ref.Alias = p.advance().Text
	}
	return ref, nil
}

func (p *Parser) selectStmt() (Statement, error) {
	p.advance() // SELECT
	sel := &Select{Limit: -1}
	for {
		if p.acceptSymbol("*") {
			sel.Items = append(sel.Items, SelectItem{Star: true})
		} else {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKeyword("AS") {
				a, err := p.ident()
				if err != nil {
					return nil, err
				}
				item.Alias = a
			} else if p.cur().Kind == TokIdent {
				item.Alias = p.advance().Text
			}
			sel.Items = append(sel.Items, item)
		}
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, ref)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	for {
		if p.acceptKeyword("INNER") {
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		} else if !p.acceptKeyword("JOIN") {
			break
		}
		ref, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		on, err := p.expr()
		if err != nil {
			return nil, err
		}
		sel.Joins = append(sel.Joins, JoinClause{Ref: ref, On: on})
	}
	var err error
	if p.acceptKeyword("WHERE") {
		if sel.Where, err = p.expr(); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("HAVING") {
		if sel.Having, err = p.expr(); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.cur()
		if t.Kind != TokNumber {
			return nil, fmt.Errorf("sql: LIMIT wants a number, found %s", t)
		}
		p.pos++
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sql: bad LIMIT %q", t.Text)
		}
		sel.Limit = n
	}
	return sel, nil
}

// Expression grammar, loosest to tightest:
//
//	expr     := andExpr (OR andExpr)*
//	andExpr  := notExpr (AND notExpr)*
//	notExpr  := NOT notExpr | predicate
//	predicate:= addExpr [cmpOp addExpr | BETWEEN .. AND .. | IN (..) | IS [NOT] NULL]
//	addExpr  := mulExpr ((+|-) mulExpr)*
//	mulExpr  := unary ((*|/|%) unary)*
//	unary    := - unary | primary
//	primary  := literal | columnRef | aggCall | ( expr )
func (p *Parser) expr() (Expr, error) { return p.orExpr() }

func (p *Parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) notExpr() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", E: e}, nil
	}
	return p.predicate()
}

func (p *Parser) predicate() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if t := p.cur(); t.Kind == TokSymbol {
		switch t.Text {
		case "=", "<", "<=", ">", ">=", "<>", "!=":
			p.pos++
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			op := t.Text
			if op == "!=" {
				op = "<>"
			}
			return &BinaryExpr{Op: op, L: l, R: r}, nil
		}
	}
	negated := false
	if p.cur().Kind == TokKeyword && p.cur().Text == "NOT" &&
		p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == TokKeyword &&
		(p.toks[p.pos+1].Text == "BETWEEN" || p.toks[p.pos+1].Text == "IN") {
		p.pos++
		negated = true
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: l, Lo: lo, Hi: hi, Negated: negated}, nil
	}
	if p.acceptKeyword("IN") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &InExpr{E: l, List: list, Negated: negated}, nil
	}
	if negated {
		return nil, fmt.Errorf("sql: dangling NOT before %s", p.cur())
	}
	if p.acceptKeyword("IS") {
		neg := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{E: l, Negated: neg}, nil
	}
	return l, nil
}

func (p *Parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind == TokSymbol && (t.Text == "+" || t.Text == "-") {
			p.pos++
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: t.Text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *Parser) mulExpr() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind == TokSymbol && (t.Text == "*" || t.Text == "/" || t.Text == "%") {
			p.pos++
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: t.Text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *Parser) unary() (Expr, error) {
	if p.acceptSymbol("-") {
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", E: e}, nil
	}
	return p.primary()
}

var aggFuncs = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}

func (p *Parser) primary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.pos++
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad float literal %q", t.Text)
			}
			return &Literal{Val: record.Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad int literal %q", t.Text)
		}
		return &Literal{Val: record.Int(i)}, nil
	case TokString:
		p.pos++
		return &Literal{Val: record.Text(t.Text)}, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.pos++
			return &Literal{Val: record.Null(record.TypeInt)}, nil
		case "TRUE":
			p.pos++
			return &Literal{Val: record.Bool(true)}, nil
		case "FALSE":
			p.pos++
			return &Literal{Val: record.Bool(false)}, nil
		}
		return nil, fmt.Errorf("sql: unexpected keyword %s in expression at offset %d", t, t.Pos)
	case TokIdent:
		p.pos++
		// Aggregate names are context-sensitive, not reserved: the paper's
		// example tables use "count" as a column name (Fig. 8).
		if upper := strings.ToUpper(t.Text); aggFuncs[upper] &&
			p.cur().Kind == TokSymbol && p.cur().Text == "(" {
			p.pos++ // consume (
			fc := &FuncCall{Name: upper}
			if p.acceptSymbol("*") {
				if upper != "COUNT" {
					return nil, fmt.Errorf("sql: %s(*) is not valid", upper)
				}
				fc.Star = true
			} else {
				p.acceptKeyword("DISTINCT") // parsed, treated as plain (documented)
				arg, err := p.expr()
				if err != nil {
					return nil, err
				}
				fc.Arg = arg
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		if p.acceptSymbol(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.Text, Column: col}, nil
		}
		return &ColumnRef{Column: t.Text}, nil
	case TokSymbol:
		if t.Text == "(" {
			p.pos++
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.Text == "?" {
			p.pos++
			prm := &Param{Index: p.nparams}
			p.nparams++
			return prm, nil
		}
	}
	return nil, fmt.Errorf("sql: unexpected %s in expression at offset %d", t, t.Pos)
}
