package sql

import (
	"strings"
	"testing"

	"veridb/internal/record"
)

func parseSelect(t *testing.T, src string) *Select {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	sel, ok := st.(*Select)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *Select", src, st)
	}
	return sel
}

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize("SELECT a, 'it''s' FROM t -- comment\nWHERE x >= 1.5;")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
		texts = append(texts, tk.Text)
	}
	want := []string{"SELECT", "a", ",", "it's", "FROM", "t", "WHERE", "x", ">=", "1.5", ";", ""}
	for i, w := range want {
		if texts[i] != w {
			t.Fatalf("token %d = %q, want %q (all: %v)", i, texts[i], w, texts)
		}
	}
	if kinds[3] != TokString || kinds[9] != TokNumber {
		t.Fatalf("kinds wrong: %v", kinds)
	}
}

func TestTokenizeErrors(t *testing.T) {
	if _, err := Tokenize("SELECT 'unterminated"); err == nil {
		t.Fatal("unterminated string accepted")
	}
	if _, err := Tokenize("SELECT @x"); err == nil {
		t.Fatal("bad character accepted")
	}
}

func TestParseCreateTable(t *testing.T) {
	st, err := Parse(`CREATE TABLE quote (
		id INT PRIMARY KEY,
		count INT,
		price FLOAT,
		note TEXT,
		INDEX(count),
		INDEX(price)
	)`)
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTable)
	if ct.Name != "quote" || len(ct.Columns) != 4 {
		t.Fatalf("parsed %+v", ct)
	}
	if !ct.Columns[0].PrimaryKey || ct.Columns[0].Type != record.TypeInt {
		t.Fatalf("pk column %+v", ct.Columns[0])
	}
	if len(ct.Indexes) != 2 || ct.Indexes[0] != "count" {
		t.Fatalf("indexes %v", ct.Indexes)
	}
}

func TestParseCreateTableTableLevelPK(t *testing.T) {
	st, err := Parse(`CREATE TABLE t (a INT, b TEXT, PRIMARY KEY (b))`)
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTable)
	if ct.Columns[0].PrimaryKey || !ct.Columns[1].PrimaryKey {
		t.Fatalf("%+v", ct.Columns)
	}
	if _, err := Parse(`CREATE TABLE t (a INT, PRIMARY KEY (zzz))`); err == nil {
		t.Fatal("unknown pk column accepted")
	}
}

func TestParseInsert(t *testing.T) {
	st, err := Parse(`INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)`)
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*Insert)
	if ins.Table != "t" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("%+v", ins)
	}
	if lit := ins.Rows[0][1].(*Literal); lit.Val.S != "x" {
		t.Fatalf("row value %v", lit)
	}
	if lit := ins.Rows[1][1].(*Literal); !lit.Val.Null {
		t.Fatal("NULL literal lost")
	}
}

func TestParseUpdateDelete(t *testing.T) {
	st, err := Parse(`UPDATE t SET a = a + 1, b = 'y' WHERE id = 5`)
	if err != nil {
		t.Fatal(err)
	}
	up := st.(*Update)
	if len(up.Set) != 2 || up.Where == nil {
		t.Fatalf("%+v", up)
	}
	st, err = Parse(`DELETE FROM t WHERE id > 3 AND id < 9`)
	if err != nil {
		t.Fatal(err)
	}
	del := st.(*Delete)
	if del.Table != "t" || del.Where == nil {
		t.Fatalf("%+v", del)
	}
	st, err = Parse(`DELETE FROM t`)
	if err != nil || st.(*Delete).Where != nil {
		t.Fatalf("unconditional delete: %v", err)
	}
}

func TestParseSelectStar(t *testing.T) {
	sel := parseSelect(t, `SELECT * FROM quote`)
	if len(sel.Items) != 1 || !sel.Items[0].Star {
		t.Fatalf("%+v", sel.Items)
	}
	if sel.From[0].Table != "quote" || sel.From[0].Alias != "quote" {
		t.Fatalf("%+v", sel.From)
	}
}

func TestParsePaperExampleQuery(t *testing.T) {
	// The §5.4 running example.
	sel := parseSelect(t, `
		SELECT q.id, q.count, i.count
		FROM quote AS q, inventory AS i
		WHERE q.id = i.id AND q.count > i.count`)
	if len(sel.Items) != 3 || len(sel.From) != 2 {
		t.Fatalf("%+v", sel)
	}
	if sel.From[0].Alias != "q" || sel.From[1].Alias != "i" {
		t.Fatalf("aliases %+v", sel.From)
	}
	w := sel.Where.(*BinaryExpr)
	if w.Op != "AND" {
		t.Fatalf("where %v", sel.Where)
	}
}

func TestParseJoinOn(t *testing.T) {
	sel := parseSelect(t, `SELECT a.x FROM a JOIN b ON a.id = b.id WHERE a.x > 1`)
	if len(sel.Joins) != 1 || sel.Joins[0].Ref.Table != "b" {
		t.Fatalf("%+v", sel.Joins)
	}
	sel = parseSelect(t, `SELECT a.x FROM a INNER JOIN b ON a.id = b.id`)
	if len(sel.Joins) != 1 {
		t.Fatalf("%+v", sel.Joins)
	}
}

func TestParseAggregatesAndGroupBy(t *testing.T) {
	sel := parseSelect(t, `
		SELECT flag, COUNT(*), SUM(qty * price) AS revenue, AVG(disc), MIN(qty), MAX(qty)
		FROM lineitem
		WHERE ship <= 100
		GROUP BY flag
		HAVING COUNT(*) > 10
		ORDER BY flag DESC
		LIMIT 5`)
	if len(sel.Items) != 6 {
		t.Fatalf("items %d", len(sel.Items))
	}
	if fc := sel.Items[1].Expr.(*FuncCall); fc.Name != "COUNT" || !fc.Star {
		t.Fatalf("%+v", fc)
	}
	if sel.Items[2].Alias != "revenue" {
		t.Fatalf("alias %q", sel.Items[2].Alias)
	}
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Fatalf("group %v having %v", sel.GroupBy, sel.Having)
	}
	if len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Fatalf("order %+v", sel.OrderBy)
	}
	if sel.Limit != 5 {
		t.Fatalf("limit %d", sel.Limit)
	}
}

func TestParseBetweenInIsNull(t *testing.T) {
	sel := parseSelect(t, `SELECT * FROM t WHERE a BETWEEN 1 AND 10 AND b IN ('x','y') AND c IS NOT NULL AND d NOT IN (1) AND e NOT BETWEEN 2 AND 3`)
	s := sel.Where.String()
	for _, frag := range []string{"BETWEEN 1 AND 10", "IN ('x', 'y')", "IS NOT NULL", "NOT IN (1)", "NOT BETWEEN 2 AND 3"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("where %q missing %q", s, frag)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	sel := parseSelect(t, `SELECT * FROM t WHERE a + b * 2 = 7 OR NOT c < 1 AND d = 2`)
	got := sel.Where.String()
	want := "(((a + (b * 2)) = 7) OR ((NOT (c < 1)) AND (d = 2)))"
	if got != want {
		t.Fatalf("precedence: got %s want %s", got, want)
	}
}

func TestParseUnaryMinusAndFloat(t *testing.T) {
	sel := parseSelect(t, `SELECT -x, 0.5, .25 FROM t`)
	if u := sel.Items[0].Expr.(*UnaryExpr); u.Op != "-" {
		t.Fatalf("%+v", u)
	}
	if l := sel.Items[1].Expr.(*Literal); l.Val.F != 0.5 {
		t.Fatalf("%v", l)
	}
	if l := sel.Items[2].Expr.(*Literal); l.Val.F != 0.25 {
		t.Fatalf("%v", l)
	}
}

func TestParseNotEqualSpellings(t *testing.T) {
	for _, op := range []string{"<>", "!="} {
		sel := parseSelect(t, `SELECT * FROM t WHERE a `+op+` 1`)
		if b := sel.Where.(*BinaryExpr); b.Op != "<>" {
			t.Fatalf("op %q parsed as %q", op, b.Op)
		}
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript(`
		CREATE TABLE t (a INT PRIMARY KEY);
		INSERT INTO t VALUES (1);
		SELECT * FROM t;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("parsed %d statements", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC * FROM t",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"INSERT INTO t VALUES 1",
		"UPDATE t SET",
		"CREATE TABLE t ()",
		"SELECT * FROM t LIMIT x",
		"SELECT SUM(*) FROM t",
		"SELECT * FROM t extra garbage following",
		"SELECT a b c FROM t",
		"DELETE t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Fatalf("Parse(%q) succeeded", src)
		}
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	sel := parseSelect(t, `select x from t where x > 1 order by x limit 3`)
	if sel.Limit != 3 || len(sel.OrderBy) != 1 {
		t.Fatalf("%+v", sel)
	}
}

func TestExprStringRoundTrips(t *testing.T) {
	// String() output must itself re-parse to an identical tree for a
	// sample of shapes (used in error messages and plan dumps).
	exprs := []string{
		"(a = 1)",
		"((a + b) * 2)",
		"(COUNT(*) > 10)",
		"(x BETWEEN 1 AND 2)",
		"(name IN ('a', 'b'))",
	}
	for _, e := range exprs {
		sel := parseSelect(t, "SELECT * FROM t WHERE "+e)
		again := parseSelect(t, "SELECT * FROM t WHERE "+sel.Where.String())
		if sel.Where.String() != again.Where.String() {
			t.Fatalf("%q: %q != %q", e, sel.Where.String(), again.Where.String())
		}
	}
}
