// Package sql implements VeriDB's SQL front end: a lexer, an AST, and a
// recursive-descent parser for the SPJA dialect the paper targets (§3.2:
// "we focus on SPJA queries") plus the DDL/DML needed to run them —
// CREATE TABLE, INSERT, UPDATE, DELETE and SELECT with joins, grouping,
// ordering and limits. Compilation happens inside the enclave (§3.3), so
// the parser is deliberately dependency-free.
package sql

import "fmt"

// TokenKind classifies lexer output.
type TokenKind int

const (
	// TokEOF ends the stream.
	TokEOF TokenKind = iota
	// TokIdent is an identifier or unreserved keyword.
	TokIdent
	// TokKeyword is a reserved word, normalised to upper case.
	TokKeyword
	// TokNumber is an integer or decimal literal.
	TokNumber
	// TokString is a single-quoted string literal.
	TokString
	// TokSymbol is an operator or punctuation token.
	TokSymbol
)

// Token is one lexeme.
type Token struct {
	Kind TokenKind
	Text string // keywords upper-cased; idents as written; strings unquoted
	Pos  int    // byte offset in the input
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokString:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// keywords are the reserved words of the dialect.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "ASC": true, "DESC": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true, "SET": true,
	"DELETE": true, "CREATE": true, "TABLE": true, "PRIMARY": true, "KEY": true,
	"INDEX": true, "AND": true, "OR": true, "NOT": true, "NULL": true,
	"TRUE": true, "FALSE": true, "AS": true, "JOIN": true, "INNER": true,
	"ON": true, "INT": true, "FLOAT": true, "TEXT": true, "BOOL": true,
	"BETWEEN": true, "IN": true, "DISTINCT": true, "DROP": true, "IS": true,
	"EXPLAIN": true, "PREPARE": true, "EXECUTE": true, "DEALLOCATE": true,
	"BEGIN": true, "COMMIT": true, "SNAPSHOT": true,
}
