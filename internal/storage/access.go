package storage

import (
	"fmt"
	"sync"

	"veridb/internal/record"
)

// tableLock serialises structural mutation of a table; scanners hold it
// shared so the chain they verify is stable for the statement's duration.
type tableLock = sync.RWMutex

// Evidence is the single-record proof an access method hands upward: the
// ⟨key, nKey⟩ interval that proves the presence or absence of the queried
// key (§4.2: "the existence or absence of queried data is proved by a
// single record in the database").
type Evidence struct {
	Table string
	Chain int
	Key   record.Key // key of the evidence record
	NKey  record.Key // its successor key
	Found bool       // true: Key matches the probe; false: probe ∈ (Key, NKey)
}

func (e Evidence) String() string {
	rel := "proves absence in"
	if e.Found {
		rel = "proves presence at"
	}
	return fmt.Sprintf("%s.chain%d ⟨%v,%v⟩ %s probe", e.Table, e.Chain, e.Key, e.NKey, rel)
}

// SearchPK is the verified index search of §5.2: SELECT * WHERE pk = v.
// The untrusted index supplies a candidate location; the record fetched
// from write-read consistent memory must satisfy key == v (present) or
// key < v < nKey (absent), otherwise ErrVerifyFailed is returned.
func (t *Table) SearchPK(v record.Value) (record.Tuple, Evidence, error) {
	pk, err := record.KeyOf(v)
	if err != nil {
		return nil, Evidence{}, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.searchChainLocked(0, pk)
}

func (t *Table) searchChainLocked(chain int, k record.Key) (record.Tuple, Evidence, error) {
	_, loc, ok := t.chains[chain].SeekLE(k.Encode())
	if !ok {
		return nil, Evidence{}, fmt.Errorf("%w: chain %d returned no candidate for %v (missing ⊥ anchor)", ErrVerifyFailed, chain, k)
	}
	rec, err := t.fetch(loc)
	if err != nil {
		return nil, Evidence{}, err
	}
	if len(rec.Links) <= chain || rec.Links[chain].Key.IsNull() {
		return nil, Evidence{}, fmt.Errorf("%w: evidence record does not participate in chain %d", ErrVerifyFailed, chain)
	}
	l := rec.Links[chain]
	ev := Evidence{Table: t.name, Chain: chain, Key: l.Key, NKey: l.NKey}
	switch {
	case l.Key.Equal(k):
		// Condition (1): the record itself proves presence.
		ev.Found = true
		return rec.Data.Clone(), ev, nil
	case l.Key.Compare(k) < 0 && k.Compare(l.NKey) < 0:
		// Condition (2): key < probe < nKey proves absence.
		return nil, ev, nil
	default:
		// The untrusted index returned a tampered (page, index) pair.
		return nil, Evidence{}, fmt.Errorf("%w: record ⟨%v,%v⟩ does not witness probe %v on chain %d",
			ErrVerifyFailed, l.Key, l.NKey, k, chain)
	}
}

// ScanBounds delimit a verified range scan in chain-key space. Nil Start
// means ⊥ (scan from the beginning); nil End means ⊤.
type ScanBounds struct {
	Start *record.Key // inclusive target lower bound ('a' in Example 5.1)
	End   *record.Key // inclusive target upper bound ('b')
}

// Scanner is the verified range/sequential scan of §5.2. It walks the key
// chain record by record and enforces the three conditions of Example 5.1:
//
//  1. the first record's key is ≤ the range start,
//  2. scanning continues until a record's nKey exceeds the range end (so
//     the final nKey proves nothing was omitted at the top), and
//  3. every record's key equals its predecessor's nKey (no gaps).
//
// The scanner holds the table's shared lock from creation until Close (or
// exhaustion), so concurrent writers cannot invalidate the chain mid-scan.
type Scanner struct {
	t      *Table
	chain  int
	start  record.Key
	end    record.Key
	cur    *record.Record
	closed bool
	err    error
	// stats
	visited int
}

// NewScan opens a verified scan of the given chain over bounds. For
// chain 0 the bounds are primary keys; for secondary chains callers pass
// composite bounds (record.CompositeLow/High).
func (t *Table) NewScan(chain int, bounds ScanBounds) (*Scanner, error) {
	if chain < 0 || chain >= len(t.chains) {
		return nil, fmt.Errorf("storage: table %q has no chain %d", t.name, chain)
	}
	start := record.Bottom()
	if bounds.Start != nil {
		start = *bounds.Start
	}
	end := record.Top()
	if bounds.End != nil {
		end = *bounds.End
	}
	s := &Scanner{t: t, chain: chain, start: start, end: end}
	t.mu.RLock()
	// Locate the chain entry point: the record with the greatest key ≤
	// start. Its key ≤ start establishes condition (1).
	_, loc, ok := t.chains[chain].SeekLE(start.Encode())
	if !ok {
		s.fail(fmt.Errorf("%w: chain %d has no record ≤ %v (missing ⊥ anchor)", ErrVerifyFailed, chain, start))
		return s, s.err
	}
	rec, err := t.fetch(loc)
	if err != nil {
		s.fail(err)
		return s, s.err
	}
	if len(rec.Links) <= chain || rec.Links[chain].Key.IsNull() {
		s.fail(fmt.Errorf("%w: scan entry record does not participate in chain %d", ErrVerifyFailed, chain))
		return s, s.err
	}
	if rec.Links[chain].Key.Compare(start) > 0 {
		s.fail(fmt.Errorf("%w: first record key %v exceeds scan start %v (condition 1)",
			ErrVerifyFailed, rec.Links[chain].Key, start))
		return s, s.err
	}
	s.cur = rec
	return s, nil
}

// ScanRange opens a verified scan over the chain serving column col,
// restricted to column values in [lo, hi] (nil bounds are open). For
// secondary chains the value bounds are translated to composite-key bounds
// so duplicate column values are all covered.
func (t *Table) ScanRange(col int, lo, hi *record.Value) (*Scanner, error) {
	chain := t.ChainFor(col)
	if chain < 0 {
		return nil, fmt.Errorf("storage: table %q column %d has no access-method chain", t.name, col)
	}
	var bounds ScanBounds
	if lo != nil {
		var k record.Key
		var err error
		if chain == 0 {
			k, err = record.KeyOf(*lo)
		} else {
			k, err = record.CompositeLow(*lo)
		}
		if err != nil {
			return nil, err
		}
		bounds.Start = &k
	}
	if hi != nil {
		var k record.Key
		var err error
		if chain == 0 {
			k, err = record.KeyOf(*hi)
		} else {
			k, err = record.CompositeHigh(*hi)
		}
		if err != nil {
			return nil, err
		}
		bounds.End = &k
	}
	sc, err := t.NewScan(chain, bounds)
	if err != nil {
		return nil, err
	}
	if chain != 0 && hi != nil {
		// CompositeHigh is an exclusive bound in chain-key space: the scan
		// must emit keys strictly below it. NewScan treats End as
		// inclusive, which is harmless here because CompositeHigh itself
		// never equals a real composite key (it ends in the bumped
		// terminator 0x00 0x01, real keys embed 0x00 0x00).
		_ = sc
	}
	return sc, nil
}

// fail records a verification error and releases the lock.
func (s *Scanner) fail(err error) {
	s.err = err
	s.close()
}

func (s *Scanner) close() {
	if !s.closed {
		s.closed = true
		s.t.mu.RUnlock()
	}
}

// Close releases the scanner's shared table lock. Safe to call repeatedly;
// exhausting the scan closes it implicitly.
func (s *Scanner) Close() { s.close() }

// Err returns the verification error that ended the scan, if any.
func (s *Scanner) Err() error { return s.err }

// Visited returns how many chain records the scan has read (including
// sentinels and out-of-range boundary records) — the verification
// overhead metric.
func (s *Scanner) Visited() int { return s.visited }

// Next returns the next in-range tuple. ok is false when the scan is
// complete or failed; check Err.
func (s *Scanner) Next() (record.Tuple, bool, error) {
	for {
		if s.err != nil || s.closed || s.cur == nil {
			return nil, false, s.err
		}
		rec := s.cur
		l := rec.Links[s.chain]
		s.visited++

		inRange := !rec.IsSentinel() &&
			l.Key.Compare(s.start) >= 0 && l.Key.Compare(s.end) <= 0
		var out record.Tuple
		if inRange {
			out = rec.Data.Clone()
		}
		// Condition (2): once this record's nKey exceeds the range end,
		// the record itself is the completeness witness for the top of the
		// range; advance no further.
		if l.NKey.Compare(s.end) <= 0 {
			if err := s.step(l.NKey); err != nil {
				s.fail(err)
				return nil, false, s.err
			}
		} else {
			s.cur = nil
			s.close()
		}
		if out != nil {
			return out, true, nil
		}
		if s.cur == nil {
			return nil, false, s.err
		}
	}
}

// step follows the chain to the record keyed nKey and verifies condition
// (3): the successor's key must equal the predecessor's nKey.
func (s *Scanner) step(nKey record.Key) error {
	if nKey.Kind == record.KindTop {
		s.cur = nil
		s.close()
		return nil
	}
	loc, ok := s.t.chains[s.chain].Get(nKey.Encode())
	if !ok {
		return fmt.Errorf("%w: chain %d broken: no record for nKey %v (condition 3)", ErrVerifyFailed, s.chain, nKey)
	}
	rec, err := s.t.fetch(loc)
	if err != nil {
		return err
	}
	if len(rec.Links) <= s.chain || rec.Links[s.chain].Key.IsNull() || !rec.Links[s.chain].Key.Equal(nKey) {
		return fmt.Errorf("%w: chain %d discontinuity: expected key %v, got %v (condition 3)",
			ErrVerifyFailed, s.chain, nKey, rec.Links[s.chain].Key)
	}
	s.cur = rec
	return nil
}
