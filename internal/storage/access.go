package storage

import (
	"fmt"
	"sync"

	"veridb/internal/record"
)

// tableLock serialises structural mutation of a shard; scanners hold it
// shared so the chain they verify is stable for the statement's duration.
type tableLock = sync.RWMutex

// Evidence is the single-record proof an access method hands upward: the
// ⟨key, nKey⟩ interval that proves the presence or absence of the queried
// key (§4.2: "the existence or absence of queried data is proved by a
// single record in the database").
type Evidence struct {
	Table string
	Chain int
	Key   record.Key // key of the evidence record
	NKey  record.Key // its successor key
	Found bool       // true: Key matches the probe; false: probe ∈ (Key, NKey)
}

func (e Evidence) String() string {
	rel := "proves absence in"
	if e.Found {
		rel = "proves presence at"
	}
	return fmt.Sprintf("%s.chain%d ⟨%v,%v⟩ %s probe", e.Table, e.Chain, e.Key, e.NKey, rel)
}

// ScanBounds delimit a verified range scan in chain-key space. Nil Start
// means ⊥ (scan from the beginning); nil End means ⊤.
type ScanBounds struct {
	Start *record.Key // inclusive target lower bound ('a' in Example 5.1)
	End   *record.Key // inclusive target upper bound ('b')
}

// Scanner is the verified range/sequential scan of §5.2 over one shard's
// sub-chain. It walks the key chain record by record and enforces the three
// conditions of Example 5.1:
//
//  1. the first record's key is ≤ the range start,
//  2. scanning continues until a record's nKey exceeds the range end (so
//     the final nKey proves nothing was omitted at the top), and
//  3. every record's key equals its predecessor's nKey (no gaps).
//
// The scanner holds the shard's shared latch from creation until Close (or
// exhaustion), so concurrent writers cannot invalidate the chain mid-scan.
// On a multi-shard table a merge iterator stitches one Scanner per shard
// (merge.go); each Scanner's conditions cover its shard and the merge
// checks the stitch points.
type Scanner struct {
	sh     *shard
	chain  int
	start  record.Key
	end    record.Key
	cur    *record.Record
	closed bool
	err    error
	// stats
	visited int
}

// newScan opens a verified scan of the given chain of this shard over
// bounds. On a verification failure the returned scanner is already closed
// and carries the error.
func (sh *shard) newScan(chain int, bounds ScanBounds) (*Scanner, error) {
	start := record.Bottom()
	if bounds.Start != nil {
		start = *bounds.Start
	}
	end := record.Top()
	if bounds.End != nil {
		end = *bounds.End
	}
	s := &Scanner{sh: sh, chain: chain, start: start, end: end}
	sh.mu.RLock()
	// Locate the chain entry point: the record with the greatest key ≤
	// start. Its key ≤ start establishes condition (1).
	_, loc, ok := sh.chains[chain].SeekLE(start.Encode())
	if !ok {
		s.fail(fmt.Errorf("%w: chain %d has no record ≤ %v (missing ⊥ anchor)", ErrVerifyFailed, chain, start))
		return s, s.err
	}
	rec, err := sh.fetch(loc)
	if err != nil {
		s.fail(err)
		return s, s.err
	}
	if len(rec.Links) <= chain || rec.Links[chain].Key.IsNull() {
		s.fail(fmt.Errorf("%w: scan entry record does not participate in chain %d", ErrVerifyFailed, chain))
		return s, s.err
	}
	if rec.Links[chain].Key.Compare(start) > 0 {
		s.fail(fmt.Errorf("%w: first record key %v exceeds scan start %v (condition 1)",
			ErrVerifyFailed, rec.Links[chain].Key, start))
		return s, s.err
	}
	s.cur = rec
	return s, nil
}

// fail records a verification error and releases the lock.
func (s *Scanner) fail(err error) {
	s.err = err
	s.close()
}

func (s *Scanner) close() {
	if !s.closed {
		s.closed = true
		s.sh.mu.RUnlock()
	}
}

// Close releases the scanner's shared shard latch. Safe to call repeatedly;
// exhausting the scan closes it implicitly.
func (s *Scanner) Close() { s.close() }

// Err returns the verification error that ended the scan, if any.
func (s *Scanner) Err() error { return s.err }

// Visited returns how many chain records the scan has read (including
// sentinels and out-of-range boundary records) — the verification
// overhead metric.
func (s *Scanner) Visited() int { return s.visited }

// Next returns the next in-range tuple. ok is false when the scan is
// complete or failed; check Err.
func (s *Scanner) Next() (record.Tuple, bool, error) {
	tup, _, ok, err := s.nextKeyed()
	return tup, ok, err
}

// NextBatch fills dst with up to cap(dst.Rows) verified in-range tuples.
// The chain walk and the three Example 5.1 conditions are checked per row,
// exactly as in Next; batching amortises only the call overhead above the
// scan. Returns (0, nil) once the scan is exhausted.
func (s *Scanner) NextBatch(dst *RowBatch) (int, error) {
	dst.Reset()
	for dst.N < len(dst.Rows) {
		tup, _, ok, err := s.nextKeyed()
		if err != nil {
			dst.Reset()
			return 0, err
		}
		if !ok {
			break
		}
		dst.Rows[dst.N] = tup
		dst.N++
	}
	return dst.N, nil
}

// nextKeyed is Next plus the emitted record's chain key — the merge order
// key the cross-shard stitch needs (merge.go).
func (s *Scanner) nextKeyed() (record.Tuple, record.Key, bool, error) {
	for {
		if s.err != nil || s.closed || s.cur == nil {
			return nil, record.Key{}, false, s.err
		}
		rec := s.cur
		l := rec.Links[s.chain]
		s.visited++

		inRange := !rec.IsSentinel() &&
			l.Key.Compare(s.start) >= 0 && l.Key.Compare(s.end) <= 0
		var out record.Tuple
		if inRange {
			out = rec.Data.Clone()
		}
		// Condition (2): once this record's nKey exceeds the range end,
		// the record itself is the completeness witness for the top of the
		// range; advance no further.
		if l.NKey.Compare(s.end) <= 0 {
			if err := s.step(l.NKey); err != nil {
				s.fail(err)
				return nil, record.Key{}, false, s.err
			}
		} else {
			s.cur = nil
			s.close()
		}
		if out != nil {
			return out, l.Key, true, nil
		}
		if s.cur == nil {
			return nil, record.Key{}, false, s.err
		}
	}
}

// step follows the chain to the record keyed nKey and verifies condition
// (3): the successor's key must equal the predecessor's nKey.
func (s *Scanner) step(nKey record.Key) error {
	if nKey.Kind == record.KindTop {
		s.cur = nil
		s.close()
		return nil
	}
	loc, ok := s.sh.chains[s.chain].Get(nKey.Encode())
	if !ok {
		return fmt.Errorf("%w: chain %d broken: no record for nKey %v (condition 3)", ErrVerifyFailed, s.chain, nKey)
	}
	rec, err := s.sh.fetch(loc)
	if err != nil {
		return err
	}
	if len(rec.Links) <= s.chain || rec.Links[s.chain].Key.IsNull() || !rec.Links[s.chain].Key.Equal(nKey) {
		return fmt.Errorf("%w: chain %d discontinuity: expected key %v, got %v (condition 3)",
			ErrVerifyFailed, s.chain, nKey, rec.Links[s.chain].Key)
	}
	s.cur = rec
	return nil
}
