package storage

import (
	"veridb/internal/record"
)

// DefaultBatchCapacity is the batch size the executor uses when nothing
// overrides it. 256 rows keeps a batch of typical tuples well under the
// simulated EPC budget while amortising the per-row interface-call chain
// (scan → filter → join → agg → portal) across the whole batch.
const DefaultBatchCapacity = 256

// RowBatch is a reusable, capacity-bounded batch of decoded rows plus an
// optional selection vector — the unit of data flow for the batched
// execution pipeline. The struct (slice headers, selection vector) is
// reused across refills; the tuples themselves are freshly decoded or
// freshly built per row, so a consumer may retain rows it pulled from a
// batch after the batch has been refilled.
//
// Rows[:N] hold the rows produced by the last fill. Sel, when non-nil,
// lists the indices of Rows[:N] that are live — filters mark rows dead by
// shrinking the selection instead of compacting the batch, so a chain of
// filters touches each row's memory once.
type RowBatch struct {
	Rows []record.Tuple
	N    int
	Sel  []int
}

// NewRowBatch allocates a batch with the given capacity (minimum 1).
func NewRowBatch(capacity int) *RowBatch {
	if capacity < 1 {
		capacity = 1
	}
	return &RowBatch{Rows: make([]record.Tuple, capacity)}
}

// Cap returns the batch capacity.
func (b *RowBatch) Cap() int { return len(b.Rows) }

// Reset empties the batch and clears its selection.
func (b *RowBatch) Reset() {
	b.N = 0
	b.Sel = nil
}

// Live returns the number of selected (live) rows.
func (b *RowBatch) Live() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.N
}

// Row returns the i-th live row (0 ≤ i < Live()).
func (b *RowBatch) Row(i int) record.Tuple {
	if b.Sel != nil {
		return b.Rows[b.Sel[i]]
	}
	return b.Rows[i]
}

// Append adds a row to the batch (caller must respect Cap; Sel must be
// nil). It returns true while the batch has room for more rows.
func (b *RowBatch) Append(t record.Tuple) bool {
	b.Rows[b.N] = t
	b.N++
	return b.N < len(b.Rows)
}

// FillBatch resets dst and pulls rows from next until dst is full or the
// stream ends. It is the shared NextBatch implementation for row-at-a-time
// sources: per-row verification happens inside next exactly as on the
// scalar path, the batch only carries the verified rows upward. On error
// the partially filled batch is discarded (the scalar path equally yields
// no further rows after an error).
func FillBatch(next func() (record.Tuple, bool, error), dst *RowBatch) (int, error) {
	dst.Reset()
	for dst.N < len(dst.Rows) {
		tup, ok, err := next()
		if err != nil {
			dst.Reset()
			return 0, err
		}
		if !ok {
			break
		}
		dst.Rows[dst.N] = tup
		dst.N++
	}
	return dst.N, nil
}
