package storage

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"veridb/internal/record"
	"veridb/internal/vmem"
)

// drainBatched pulls every row through NextBatch with the given capacity.
func drainBatched(t *testing.T, sc Iterator, capacity int) []record.Tuple {
	t.Helper()
	b := NewRowBatch(capacity)
	var out []record.Tuple
	for {
		n, err := sc.NextBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			return out
		}
		for i := 0; i < n; i++ {
			out = append(out, b.Row(i))
		}
	}
}

// TestNextBatchMatchesNext runs the same scan row-at-a-time and batch-wise
// (with an odd capacity so batch boundaries never align with shard
// boundaries) over every iterator implementation: single-shard Scanner,
// sequential k-way merge, and parallel merge. Rows must match exactly.
func TestNextBatchMatchesNext(t *testing.T) {
	cases := []struct {
		name    string
		workers int
		shards  int
	}{
		{"scanner", 0, 1},
		{"mergeSequential", 0, 4},
		{"mergeParallel", 4, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newStore(t, vmem.Config{VerifyWorkers: tc.workers})
			tb, err := s.CreateTable(shardedSpec(tc.shards))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 300; i++ {
				mustInsert(t, tb, record.Tuple{record.Int(int64(i)), record.Int(int64(i % 7)), record.Float(float64(i))})
			}
			sc, err := tb.SeqScan()
			if err != nil {
				t.Fatal(err)
			}
			want := drain(t, sc)
			sc, err = tb.SeqScan()
			if err != nil {
				t.Fatal(err)
			}
			got := drainBatched(t, sc, 7)
			if len(got) != len(want) {
				t.Fatalf("batched scan returned %d rows, scalar %d", len(got), len(want))
			}
			for i := range got {
				if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
					t.Fatalf("row %d: batched %v, scalar %v", i, got[i], want[i])
				}
			}
			// Rows pulled from a batch must stay valid after the batch is
			// refilled (the Rows slice is reused, tuples are not).
			for i, r := range got {
				if r[0].I != int64(i) {
					t.Fatalf("retained row %d corrupted after refill: %v", i, r)
				}
			}
		})
	}
}

// TestNextBatchPartialAndExhaustion pins the (0, nil) end-of-scan contract
// and that a final partial batch is delivered before it.
func TestNextBatchPartialAndExhaustion(t *testing.T) {
	s := newStore(t, vmem.Config{})
	tb, err := s.CreateTable(shardedSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		mustInsert(t, tb, record.Tuple{record.Int(int64(i)), record.Int(0), record.Float(0)})
	}
	sc, err := tb.SeqScan()
	if err != nil {
		t.Fatal(err)
	}
	b := NewRowBatch(8)
	if n, err := sc.NextBatch(b); err != nil || n != 8 {
		t.Fatalf("first fill: n=%d err=%v", n, err)
	}
	if n, err := sc.NextBatch(b); err != nil || n != 2 {
		t.Fatalf("partial fill: n=%d err=%v", n, err)
	}
	for i := 0; i < 3; i++ {
		if n, err := sc.NextBatch(b); err != nil || n != 0 {
			t.Fatalf("exhausted fill %d: n=%d err=%v", i, n, err)
		}
	}
}

// TestRowBatchSelection covers the selection-vector accessors the filter
// operators depend on.
func TestRowBatchSelection(t *testing.T) {
	b := NewRowBatch(4)
	for i := 0; i < 4; i++ {
		b.Append(record.Tuple{record.Int(int64(i))})
	}
	if b.Live() != 4 || b.Row(2)[0].I != 2 {
		t.Fatalf("dense batch: live=%d", b.Live())
	}
	b.Sel = []int{1, 3}
	if b.Live() != 2 || b.Row(0)[0].I != 1 || b.Row(1)[0].I != 3 {
		t.Fatalf("selected batch: live=%d row0=%v row1=%v", b.Live(), b.Row(0), b.Row(1))
	}
	b.Reset()
	if b.Live() != 0 || b.Sel != nil {
		t.Fatal("Reset kept state")
	}
}

// TestEarlyClosedParallelScanLeaksNoGoroutines is the regression test for
// the per-shard producer lifetime: abandoning a parallel merge scan long
// before exhaustion (a LIMIT plan, a short-circuiting join) must wind down
// every producer goroutine. Producers block on full channels when the
// consumer stops pulling, so without the context cancellation in Close
// each early-closed scan would strand len(shards) goroutines.
func TestEarlyClosedParallelScanLeaksNoGoroutines(t *testing.T) {
	s := newStore(t, vmem.Config{VerifyWorkers: 4})
	tb, err := s.CreateTable(shardedSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	// Enough rows per shard to exceed producerBuf, so producers are
	// mid-send when the scan is abandoned.
	for i := 0; i < 2000; i++ {
		mustInsert(t, tb, record.Tuple{record.Int(int64(i)), record.Int(0), record.Float(0)})
	}
	before := runtime.NumGoroutine()
	for round := 0; round < 25; round++ {
		sc, err := tb.SeqScan()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := unwrapIter(sc).(*parallelMergeIterator); !ok {
			t.Fatalf("SeqScan returned %T, want parallel merge", unwrapIter(sc))
		}
		for i := 0; i < 3; i++ {
			if _, ok, err := sc.Next(); err != nil || !ok {
				t.Fatalf("round %d: ok=%v err=%v", round, ok, err)
			}
		}
		sc.Close() // Close waits for producers, so no goroutine survives it
	}
	// Close blocks on wg.Wait, but allow the runtime a moment to retire
	// exiting goroutines before comparing counts.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if after := runtime.NumGoroutine(); after <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked by early-closed scans: before=%d after=%d",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
