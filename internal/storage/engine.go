package storage

import (
	"veridb/internal/record"
)

// Iterator is a verified scan in progress. Next returns the next in-range
// tuple; ok is false when the scan is complete or failed, in which case Err
// reports the verification error, if any. NextBatch fills a reusable,
// capacity-bounded batch of decoded rows per call — the batch-native entry
// point the vectorized executor consumes; every row still passes the same
// per-row chain verification as Next, and on a sharded table the k-way
// merge's stitch checks run row-by-row inside the fill, so a batch is only
// handed upward once every row in it is verified. NextBatch returning
// (0, nil) means the scan is exhausted. Close is idempotent and releases
// the shard latches the scan holds; exhausting the scan closes it
// implicitly. Visited counts chain records read (including sentinels and
// boundary records) — the verification-overhead metric of §6.
type Iterator interface {
	Next() (record.Tuple, bool, error)
	NextBatch(dst *RowBatch) (int, error)
	Close()
	Err() error
	Visited() int
}

// Engine is the storage seam the upper layers (core, plan, engine) consume
// instead of the concrete *Table. It carries exactly the paper's verified
// access methods — point lookup with evidence (§5.2 index search), DML
// (§4.2 Insert/Delete/Update), and verified range/sequential scans — plus
// the schema metadata planning needs. Every future backend (disk pages,
// remote shards) plugs in here; the in-memory sharded table is the first
// implementation.
type Engine interface {
	// Schema metadata.
	Name() string
	Schema() *record.Schema
	PrimaryKeyColumn() int
	ChainColumns() []int
	ChainFor(col int) int
	RowCount() int
	ShardCount() int

	// Verified point access: the result carries single-record ⟨key, nKey⟩
	// presence/absence evidence (Definition 4.2).
	Get(pk record.Value) (record.Tuple, Evidence, error)

	// DML, each maintaining every ⟨key, nKey⟩ chain (§4.2).
	Insert(tup record.Tuple) error
	Delete(pk record.Value) error
	Update(pk record.Value, newTup record.Tuple) error
	// UpdateFunc is the read-modify-write primitive: mutate runs on a copy
	// of the row under the owning shard's write latch. Chain-key columns
	// must not change; use Update for key-changing writes.
	UpdateFunc(pk record.Value, mutate func(record.Tuple) (record.Tuple, error)) error

	// Verified scans (§5.2 Example 5.1 conditions). RangeScan covers column
	// values in [lo, hi] on the chain serving col (nil bounds are open);
	// SeqScan walks the whole primary chain. On a sharded table both stitch
	// the per-shard sub-chains in key order.
	RangeScan(col int, lo, hi *record.Value) (Iterator, error)
	SeqScan() (Iterator, error)

	// MVCC variants. The At-reads resolve every chain step against a pinned
	// Snapshot (the committed state at its seq), letting scans run without
	// holding shard latches; the At-writes stamp their versions with an
	// explicit Commit so a multi-row statement becomes visible atomically.
	GetAt(pk record.Value, snap *Snapshot) (record.Tuple, Evidence, error)
	RangeScanAt(col int, lo, hi *record.Value, snap *Snapshot) (Iterator, error)
	SeqScanAt(snap *Snapshot) (Iterator, error)
	InsertAt(tup record.Tuple, c *Commit) error
	DeleteAt(pk record.Value, c *Commit) error
	UpdateAt(pk record.Value, newTup record.Tuple, c *Commit) error
	UpdateFuncAt(pk record.Value, mutate func(record.Tuple) (record.Tuple, error), c *Commit) error
}

// Catalog is the table-registry half of the seam: Register creates a table
// (the §4.2 Register step — its chain sentinels join the verified set) and
// hands back its Engine. The executor's spill operator and the SQL layer
// create and drop tables only through this interface.
type Catalog interface {
	Register(spec TableSpec) (Engine, error)
	Table(name string) (Engine, error)
	DropTable(name string) error
	TableNames() []string
}

// Interface conformance pins.
var (
	_ Engine   = (*Table)(nil)
	_ Catalog  = (*Store)(nil)
	_ Iterator = (*Scanner)(nil)
	_ Iterator = (*snapScanner)(nil)
	_ Iterator = (*mergeIterator)(nil)
	_ Iterator = (*parallelMergeIterator)(nil)

	_ chainScanner = (*Scanner)(nil)
	_ chainScanner = (*snapScanner)(nil)
)
