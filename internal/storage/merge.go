package storage

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"veridb/internal/record"
)

// Cross-shard scan stitching. Every shard owns a complete ⊥/⊤-anchored
// sub-chain, so a per-shard Scanner proves the three §5.2 conditions for
// the keys that route to that shard; since routing is a total function
// (each key hashes to exactly one shard), the union of the per-shard
// result streams is complete for the whole range. The merge replays the
// streams in global key order and verifies the stitch points: emitted keys
// must be strictly increasing across shard boundaries, so two shards can
// never both claim a key (a duplicate would mean the untrusted host
// replayed a record into a second shard's stream).

// chainScanner is the per-shard stream a merge stitches: the latch-holding
// Scanner (ephemeral tables) or the snapshot-resolving snapScanner
// (versioned tables, eager latch release).
type chainScanner interface {
	nextKeyed() (record.Tuple, record.Key, bool, error)
	Close()
	Err() error
	Visited() int
}

// scanOpener opens one shard's stream for a merge.
type scanOpener func(sh *shard) (chainScanner, error)

// mergeHead is one shard stream's current front row.
type mergeHead struct {
	tup   record.Tuple
	key   record.Key
	valid bool
}

// stitchCheck enforces strictly increasing keys across the merged output.
func stitchCheck(hasLast bool, last, next record.Key, chain int) error {
	if hasLast && next.Compare(last) <= 0 {
		return fmt.Errorf("%w: chain %d stitch violation: key %v not above %v (duplicate across shards)",
			ErrVerifyFailed, chain, next, last)
	}
	return nil
}

// mergeIterator stitches one chainScanner per shard sequentially.
//
// Latch lifetime: on versioned tables the per-shard streams are
// snapScanners, which resolve each chain step against a pinned snapshot
// under a momentary shared latch and hold nothing between steps — a writer
// is never blocked behind an open unfinished merge (regression test
// TestWriterNotBlockedByOpenScan). Only ephemeral tables still use the
// latch-holding Scanner; those latches are acquired shared in shard order
// at open, and writers hold at most one shard latch at a time (see
// shard.update), so the ordered acquisition cannot deadlock against them.
type mergeIterator struct {
	chain   int
	scs     []chainScanner
	heads   []mergeHead
	last    record.Key
	hasLast bool
	err     error
	closed  bool
}

func newMergeIterator(t *Table, chain int, open scanOpener) (*mergeIterator, error) {
	m := &mergeIterator{chain: chain, scs: make([]chainScanner, 0, len(t.shards)), heads: make([]mergeHead, len(t.shards))}
	for i, sh := range t.shards {
		sc, err := open(sh)
		if err != nil {
			sc.Close()
			m.fail(err)
			return m, m.err
		}
		m.scs = append(m.scs, sc)
		if err := m.advance(i); err != nil {
			m.fail(err)
			return m, m.err
		}
	}
	return m, nil
}

// advance pulls the next row from shard stream i into its head.
func (m *mergeIterator) advance(i int) error {
	tup, key, ok, err := m.scs[i].nextKeyed()
	if err != nil {
		return err
	}
	m.heads[i] = mergeHead{tup: tup, key: key, valid: ok}
	return nil
}

func (m *mergeIterator) Next() (record.Tuple, bool, error) {
	if m.err != nil || m.closed {
		return nil, false, m.err
	}
	best := -1
	for i := range m.heads {
		if !m.heads[i].valid {
			continue
		}
		if best < 0 || m.heads[i].key.Compare(m.heads[best].key) < 0 {
			best = i
		}
	}
	if best < 0 {
		m.Close()
		return nil, false, nil
	}
	out, key := m.heads[best].tup, m.heads[best].key
	if err := stitchCheck(m.hasLast, m.last, key, m.chain); err != nil {
		m.fail(err)
		return nil, false, m.err
	}
	m.last, m.hasLast = key, true
	if err := m.advance(best); err != nil {
		m.fail(err)
		return nil, false, m.err
	}
	return out, true, nil
}

// NextBatch fills dst with up to cap(dst.Rows) merged rows. The per-row
// stitch check runs on every row inside the fill, so a batch crossing one
// or more shard boundaries is only handed upward once every stitch point
// in it has verified.
func (m *mergeIterator) NextBatch(dst *RowBatch) (int, error) {
	return FillBatch(m.Next, dst)
}

func (m *mergeIterator) fail(err error) {
	m.err = err
	m.Close()
}

func (m *mergeIterator) Close() {
	if m.closed {
		return
	}
	m.closed = true
	for _, sc := range m.scs {
		sc.Close()
	}
}

func (m *mergeIterator) Err() error { return m.err }

func (m *mergeIterator) Visited() int {
	n := 0
	for _, sc := range m.scs {
		n += sc.Visited()
	}
	return n
}

// shardRow is one row (or terminal error) produced by a shard stream.
type shardRow struct {
	tup record.Tuple
	key record.Key
	err error
}

// parallelMergeIterator fans a scan out across shards: one producer
// goroutine per shard drives that shard's verified Scanner and feeds a
// bounded channel; the consumer merges the streams in key order with the
// same stitch check as the sequential path. One producer per shard is a
// correctness requirement, not a tuning choice: the merge cannot emit a
// row until it has a head from every live stream, so capping producers
// below the shard count would deadlock the merge. VerifyWorkers gates
// whether this path is used at all (Table.SeqScan), mirroring how
// VerifyAll fans its partition scans out.
type parallelMergeIterator struct {
	chain   int
	chans   []chan shardRow
	heads   []mergeHead
	last    record.Key
	hasLast bool
	err     error
	closed  bool

	// ctx bounds every producer goroutine's lifetime: cancel fires on
	// Close (early closes included — LIMIT plans and short-circuiting
	// joins abandon scans long before exhaustion), and producers select
	// on ctx.Done() around every channel send, so an abandoned scan can
	// never leak its per-shard goroutines.
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	visited atomic.Int64
}

// producerBuf is the per-shard channel depth: enough to keep producers busy
// across consumer stalls without buffering whole shards.
const producerBuf = 64

func newParallelMergeIterator(t *Table, chain int, open scanOpener) (*parallelMergeIterator, error) {
	m := &parallelMergeIterator{
		chain: chain,
		chans: make([]chan shardRow, len(t.shards)),
		heads: make([]mergeHead, len(t.shards)),
	}
	m.ctx, m.cancel = context.WithCancel(context.Background())
	for i := range t.shards {
		ch := make(chan shardRow, producerBuf)
		m.chans[i] = ch
		m.wg.Add(1)
		go m.produce(t.shards[i], ch, open)
	}
	// Prime the heads so open-time verification failures (condition 1,
	// broken anchors) surface from the constructor like the sequential path.
	for i := range m.chans {
		if err := m.advance(i); err != nil {
			m.fail(err)
			return m, m.err
		}
	}
	return m, nil
}

func (m *parallelMergeIterator) produce(sh *shard, ch chan<- shardRow, open scanOpener) {
	defer m.wg.Done()
	defer close(ch)
	done := m.ctx.Done()
	sc, err := open(sh)
	if err != nil {
		sc.Close()
		select {
		case ch <- shardRow{err: err}:
		case <-done:
		}
		return
	}
	defer func() {
		m.visited.Add(int64(sc.Visited()))
		sc.Close()
	}()
	for {
		tup, key, ok, err := sc.nextKeyed()
		if err != nil {
			select {
			case ch <- shardRow{err: err}:
			case <-done:
			}
			return
		}
		if !ok {
			return
		}
		select {
		case ch <- shardRow{tup: tup, key: key}:
		case <-done:
			return
		}
	}
}

// advance receives the next row from shard stream i.
func (m *parallelMergeIterator) advance(i int) error {
	row, ok := <-m.chans[i]
	if !ok {
		m.heads[i] = mergeHead{}
		return nil
	}
	if row.err != nil {
		return row.err
	}
	m.heads[i] = mergeHead{tup: row.tup, key: row.key, valid: true}
	return nil
}

func (m *parallelMergeIterator) Next() (record.Tuple, bool, error) {
	if m.err != nil || m.closed {
		return nil, false, m.err
	}
	best := -1
	for i := range m.heads {
		if !m.heads[i].valid {
			continue
		}
		if best < 0 || m.heads[i].key.Compare(m.heads[best].key) < 0 {
			best = i
		}
	}
	if best < 0 {
		m.Close()
		return nil, false, nil
	}
	out, key := m.heads[best].tup, m.heads[best].key
	if err := stitchCheck(m.hasLast, m.last, key, m.chain); err != nil {
		m.fail(err)
		return nil, false, m.err
	}
	m.last, m.hasLast = key, true
	if err := m.advance(best); err != nil {
		m.fail(err)
		return nil, false, m.err
	}
	return out, true, nil
}

// NextBatch fills dst with up to cap(dst.Rows) merged rows; the per-row
// stitch check runs inside the fill (see mergeIterator.NextBatch).
func (m *parallelMergeIterator) NextBatch(dst *RowBatch) (int, error) {
	return FillBatch(m.Next, dst)
}

func (m *parallelMergeIterator) fail(err error) {
	m.err = err
	m.Close()
}

// Close cancels the producers' context and waits for them to release
// their shard latches, so a writer issued right after Close cannot block
// on a scan that is still winding down.
func (m *parallelMergeIterator) Close() {
	if m.closed {
		return
	}
	m.closed = true
	m.cancel()
	for _, ch := range m.chans {
		// Drain so producers blocked on a full channel exit promptly even
		// though they also select on ctx.Done().
		for range ch {
		}
	}
	m.wg.Wait()
}

func (m *parallelMergeIterator) Err() error { return m.err }

// Visited sums the per-shard scanner counts; producers publish their count
// when they finish, so the value is complete once the scan is closed or
// exhausted.
func (m *parallelMergeIterator) Visited() int { return int(m.visited.Load()) }
