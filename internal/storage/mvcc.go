package storage

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"veridb/internal/govern"
	"veridb/internal/index"
	"veridb/internal/record"
)

// Multi-version concurrency control. Every shard mutation retires the
// record's pre-image into a per-shard version list kept in *trusted enclave
// heap* — never in the write-read consistent memory — so versioning leaves
// the resident RSWS digest bit-identical to the single-version layout
// (pinned by the golden-checksum tests). The live record in vmem is always
// the latest committed version; a retired version{begin, end, rec} says
// "between commit seq begin (inclusive) and end (exclusive), the record
// looked like rec". Readers pin a Snapshot at the commit watermark and
// resolve every chain step as of that sequence, which lets scanners drop
// the shard latch between steps instead of holding it for the scan's life.
//
// Trust argument: retired versions are captured from records that were just
// fetched through the protected vmem interfaces (and therefore verified),
// and the version lists live inside the enclave's trusted memory, so
// re-reading them needs no re-verification. The current version keeps the
// full §5.2 fetch-and-check discipline on every access.

// ErrSnapshotTooOld means a pinned snapshot needs versions that the
// MaxVersionsPerRow cap has already discarded; the reader must re-open a
// fresh snapshot.
var ErrSnapshotTooOld = errors.New("storage: snapshot too old: required row versions were pruned")

// commitClock issues commit sequence numbers and tracks which prefix of
// them has fully applied (the watermark) plus the snapshot pins that hold
// old versions alive.
type commitClock struct {
	mu      sync.Mutex
	next    uint64
	pending map[uint64]struct{}
	pins    map[uint64]int
	// doneEff holds the final effective timestamp of completed commits the
	// watermark has not yet covered. A commit's versions may land above its
	// issued seq when its writes conflict with an in-flight later commit
	// (see mvOp), so the watermark must not rest inside any commit's
	// [seq, eff) window or a snapshot pinned there would see the commit
	// half-applied.
	doneEff map[uint64]uint64
	// mark is the watermark: the largest W with every seq ≤ W completed
	// AND wholly visible (effective timestamp ≤ W).
	// floorV is min(mark, oldest pin): versions whose range ends at or
	// below it can never be read again and are reclaimable.
	mark   atomic.Uint64
	floorV atomic.Uint64
}

func newCommitClock() *commitClock {
	return &commitClock{
		pending: make(map[uint64]struct{}),
		pins:    make(map[uint64]int),
		doneEff: make(map[uint64]uint64),
	}
}

// begin issues the next commit sequence; the caller must end it (success
// or failure) or the watermark stalls forever.
func (c *commitClock) begin() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.next++
	c.pending[c.next] = struct{}{}
	return c.next
}

// end marks seq complete with final effective timestamp eff and advances
// the watermark to the largest W where every seq ≤ W is both completed and
// wholly visible (eff ≤ W). Every eff is bounded by the largest issued
// seq, so once all in-flight commits complete the watermark reaches next.
func (c *commitClock) end(seq, eff uint64) {
	c.mu.Lock()
	delete(c.pending, seq)
	c.doneEff[seq] = eff
	m := c.mark.Load()
	best := m
	runMax := m
	for u := m + 1; u <= c.next; u++ {
		if _, inFlight := c.pending[u]; inFlight {
			break
		}
		if e := c.doneEff[u]; e > runMax {
			runMax = e
		}
		if runMax <= u {
			best = u
		}
	}
	for u := range c.doneEff {
		if u <= best {
			delete(c.doneEff, u)
		}
	}
	c.mark.Store(best)
	c.recomputeFloorLocked()
	c.mu.Unlock()
}

// pin pins the current watermark as a snapshot read point.
func (c *commitClock) pin() uint64 {
	c.mu.Lock()
	s := c.mark.Load()
	c.pins[s]++
	c.recomputeFloorLocked()
	c.mu.Unlock()
	return s
}

func (c *commitClock) unpin(seq uint64) {
	c.mu.Lock()
	if n := c.pins[seq]; n > 1 {
		c.pins[seq] = n - 1
	} else {
		delete(c.pins, seq)
	}
	c.recomputeFloorLocked()
	c.mu.Unlock()
}

func (c *commitClock) recomputeFloorLocked() {
	f := c.mark.Load()
	for s := range c.pins {
		if s < f {
			f = s
		}
	}
	c.floorV.Store(f)
}

// watermark returns the largest seq with every seq ≤ it completed.
func (c *commitClock) watermark() uint64 { return c.mark.Load() }

// pinCount reports how many snapshot pins are currently held.
func (c *commitClock) pinCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, cnt := range c.pins {
		n += cnt
	}
	return n
}

// floor returns the reclamation floor: no live or future snapshot can read
// below it.
func (c *commitClock) floor() uint64 { return c.floorV.Load() }

// Commit is one issued commit timestamp. Done (idempotent) completes it;
// an uncompleted Commit stalls the watermark, so callers must defer Done.
type Commit struct {
	s    *Store
	seq  uint64
	done atomic.Bool
	// eff is the commit's final effective timestamp: the max of seq and
	// every effective timestamp its shard operations actually landed at
	// (conflicts with in-flight later commits can raise an operation above
	// its issued seq; see mvOp). Done reports it to the clock so the
	// watermark never rests inside this commit's [seq, eff) window.
	eff atomic.Uint64
}

// Seq returns the commit sequence number.
func (c *Commit) Seq() uint64 { return c.seq }

// noteEff raises the commit's effective timestamp to e (CAS-max). Called
// by mvOp.finish for every shard operation run under this commit.
func (c *Commit) noteEff(e uint64) {
	for {
		cur := c.eff.Load()
		if e <= cur || c.eff.CompareAndSwap(cur, e) {
			return
		}
	}
}

// Done marks the commit complete (success or failure — the seq is spent
// either way) and lets the watermark advance past it. All writes under
// this commit must have returned before Done is called.
func (c *Commit) Done() {
	if c.done.CompareAndSwap(false, true) {
		c.s.clock.end(c.seq, c.eff.Load())
	}
}

// BeginCommit issues a commit timestamp for a batch of DML that should
// become visible atomically to snapshot readers: versions installed with
// this seq stay above every snapshot pinned before Done.
func (s *Store) BeginCommit() *Commit {
	c := &Commit{s: s, seq: s.clock.begin()}
	c.eff.Store(c.seq)
	return c
}

// Snapshot is a pinned, consistent read point: the commit watermark at
// open plus the catalog version. Scans and point reads resolved against it
// see exactly the rows committed at or below Seq, regardless of concurrent
// writers. Close releases the pin (idempotent); an unclosed Snapshot keeps
// old versions alive forever.
type Snapshot struct {
	s   *Store
	seq uint64
	cat uint64

	mu     sync.Mutex
	closed bool
}

// OpenSnapshot pins the current commit watermark.
func (s *Store) OpenSnapshot() *Snapshot {
	return &Snapshot{s: s, seq: s.clock.pin(), cat: s.version.Load()}
}

// Seq returns the snapshot's pinned commit sequence.
func (sn *Snapshot) Seq() uint64 { return sn.seq }

// CatalogVersion returns the catalog version at pin time.
func (sn *Snapshot) CatalogVersion() uint64 { return sn.cat }

// Close releases the pin. Idempotent.
func (sn *Snapshot) Close() {
	sn.mu.Lock()
	closed := sn.closed
	sn.closed = true
	sn.mu.Unlock()
	if !closed {
		sn.s.clock.unpin(sn.seq)
	}
}

// Watermark returns the commit watermark: what a Snapshot opened now would
// pin.
func (s *Store) Watermark() uint64 { return s.clock.watermark() }

// SnapshotPins reports how many snapshot pins are currently held across
// all readers — the overload bench's post-drain leak check.
func (s *Store) SnapshotPins() int { return s.clock.pinCount() }

// SetBudget points the store at the process memory budget. Retired MVCC
// version images are charged to it when captured and released when
// reclaimed, so long version chains (held open by pinned snapshots) show
// up as memory pressure instead of silent heap growth. nil detaches.
func (s *Store) SetBudget(b *govern.Budget) { s.budget.Store(b) }

// versionBytes estimates the trusted-heap footprint of one retired record
// image: the record struct, its chain links, and the tuple payload. The
// estimate is a pure function of the (immutable) image, so the release at
// reclamation always matches the charge at capture.
func versionBytes(rec *record.Record) int64 {
	// Record struct + version bookkeeping ≈ 64 bytes; each ChainLink holds
	// two Keys (two small structs with a byte-slice payload each).
	n := int64(64)
	for _, l := range rec.Links {
		n += 96 + int64(len(l.Key.B)+len(l.NKey.B))
	}
	return n + record.TupleBytes(rec.Data)
}

// version is one retired record image: the record looked like rec for
// commit seqs in [begin, end).
type version struct {
	begin, end uint64
	rec        *record.Record
}

// shardVersions is a shard's MVCC side-state, all of it in trusted enclave
// heap (maps and B-trees of encoded keys — no vmem pages, so the resident
// digest never sees it). Guarded by the shard latch. nil on ephemeral
// tables, which keep the classic latch-holding scan.
type shardVersions struct {
	// cur[i] maps a chain-i encoded key to the live record's begin seq;
	// absent means "visible since forever" (seq 0) — the common case for
	// cold rows, kept small by GC pruning entries at or below the floor.
	cur []map[string]uint64
	// hist[i] maps a chain-i encoded key to its retired versions, oldest
	// first with contiguous [begin, end) ranges.
	hist []map[string][]version
	// histKeys[i] indexes the keys of hist[i] so as-of seeks can find keys
	// that no longer exist in the live chain (Loc values are unused).
	histKeys []*index.BTree
	// verFloor rises when the MaxVersionsPerRow cap discards a version a
	// snapshot below it might still need; such snapshots get
	// ErrSnapshotTooOld instead of a silently wrong answer.
	verFloor uint64
	retained int
}

func newShardVersions(chains int) *shardVersions {
	mv := &shardVersions{
		cur:      make([]map[string]uint64, chains),
		hist:     make([]map[string][]version, chains),
		histKeys: make([]*index.BTree, chains),
	}
	for i := 0; i < chains; i++ {
		mv.cur[i] = make(map[string]uint64)
		mv.hist[i] = make(map[string][]version)
		mv.histKeys[i] = index.New()
	}
	return mv
}

// mvOp accumulates one shard operation's version effects — pre-images to
// retire, live entries to install or remove — and commits them in finish
// with a single effective timestamp covering every record the operation
// touched. One timestamp per operation is what keeps chains consistent
// under seq/latch-order inversion: commit seqs are issued before writes
// apply, so a later-seq commit can physically precede an earlier-seq one.
// Clamping each touched key independently can then tear one mutation apart
// (a delete's victim retired at its own seq, its predecessor's relink
// clamped past an in-flight commit — a snapshot between the two sees a
// chain link pointing at a key with no visible version). With a single
// eff = max(seq, every touched key's version frontier), an operation is
// visible to a snapshot either whole or not at all, and the visible state
// at any seq S is exactly the shard's physical state after the latch-order
// prefix of operations with eff ≤ S: any operation depending on a skipped
// one's output must share a touched record with it, which forces its eff
// above S too.
//
// A commit spanning several shard operations can still land its
// operations at different effective timestamps when only some of them
// conflict with an in-flight later commit. finish therefore reports each
// operation's eff back to the Commit, and the clock's watermark only
// rests at points where every included commit is wholly visible — so a
// snapshot can never pin inside any commit's [seq, eff) window.
//
// A nil *mvOp (ephemeral tables, nil commit) is valid; all methods are
// no-ops.
type mvOp struct {
	sh  *shard
	c   *Commit
	seq uint64
	// pre[i][enc] is the first-captured pre-image per chain-i key: the
	// image visible before the operation. Intra-op churn (insert's undo
	// path) retires the same key again; those later images were never
	// visible and are discarded.
	pre []map[string]*record.Record
	// act[i][enc] is a touched live entry's final disposition: +1 the key
	// is live after the op (install), -1 it left the chains (unlink).
	act []map[string]int8
}

// mvBegin opens the version transaction for one shard operation under
// commit c. Returns nil (a valid no-op receiver) on ephemeral tables
// (nil commit).
func (sh *shard) mvBegin(c *Commit) *mvOp {
	if sh.mv == nil || c == nil {
		return nil
	}
	n := len(sh.mv.cur)
	op := &mvOp{
		sh:  sh,
		c:   c,
		seq: c.Seq(),
		pre: make([]map[string]*record.Record, n),
		act: make([]map[string]int8, n),
	}
	for i := 0; i < n; i++ {
		op.pre[i] = make(map[string]*record.Record)
		op.act[i] = make(map[string]int8)
	}
	return op
}

// retire captures rec's pre-image under every chain key it carries. Call
// before mutating or unlinking the record. The record stays live unless a
// later unlink says otherwise.
func (op *mvOp) retire(rec *record.Record) {
	if op == nil {
		return
	}
	var cl *record.Record
	for i, l := range rec.Links {
		if l.Key.IsNull() {
			continue
		}
		enc := string(l.Key.Encode())
		if _, seen := op.pre[i][enc]; seen {
			continue
		}
		if cl == nil {
			cl = rec.Clone()
		}
		op.pre[i][enc] = cl
		if _, ok := op.act[i][enc]; !ok {
			op.act[i][enc] = 1
		}
	}
}

// install records rec as live after the operation, under every chain key
// it carries. Call after the physical mutation lands.
func (op *mvOp) install(rec *record.Record) {
	if op == nil {
		return
	}
	for i, l := range rec.Links {
		if l.Key.IsNull() {
			continue
		}
		op.act[i][string(l.Key.Encode())] = 1
	}
}

// unlink retires rec's pre-image and marks its live entries for removal
// (the record is leaving the chains). Call before the physical delete.
func (op *mvOp) unlink(rec *record.Record) {
	if op == nil {
		return
	}
	op.retire(rec)
	for i, l := range rec.Links {
		if l.Key.IsNull() {
			continue
		}
		op.act[i][string(l.Key.Encode())] = -1
	}
}

// finish commits the accumulated version effects at the operation's single
// effective timestamp and must run before the shard latch is released.
// Empty ranges (eff equal to a key's current begin — intra-commit churn)
// append nothing.
func (op *mvOp) finish() {
	if op == nil {
		return
	}
	mv := op.sh.mv
	// The effective timestamp: the commit seq, raised to every touched
	// key's version frontier (live begin and retired tail) so ranges tile
	// per key and the whole operation shares one visibility boundary.
	eff := op.seq
	for i := range op.act {
		for enc := range op.act[i] {
			if b, ok := mv.cur[i][enc]; ok && b > eff {
				eff = b
			}
			if vs := mv.hist[i][enc]; len(vs) > 0 {
				if e := vs[len(vs)-1].end; e > eff {
					eff = e
				}
			}
		}
	}
	op.c.noteEff(eff)
	floor := op.sh.t.store.clock.floor()
	maxVer := int(op.sh.t.store.maxVersions.Load())
	bud := op.sh.t.store.budget.Load()
	for i := range op.pre {
		for enc, img := range op.pre[i] {
			b := mv.cur[i][enc]
			if eff <= b {
				continue // never visible: nothing to retire
			}
			vs := mv.hist[i][enc]
			hadHist := len(vs) > 0
			for len(vs) > 0 && vs[0].end <= floor {
				bud.Release(versionBytes(vs[0].rec))
				vs = vs[1:]
				mv.retained--
			}
			vs = append(vs, version{begin: b, end: eff, rec: img})
			mv.retained++
			bud.Charge(versionBytes(img))
			if maxVer > 0 && len(vs) > maxVer {
				if f := vs[0].end; f > mv.verFloor {
					mv.verFloor = f
				}
				bud.Release(versionBytes(vs[0].rec))
				vs = vs[1:]
				mv.retained--
			}
			mv.hist[i][enc] = vs
			if !hadHist {
				mv.histKeys[i].Set([]byte(enc), index.Loc{})
			}
		}
	}
	for i := range op.act {
		for enc, a := range op.act[i] {
			if a < 0 {
				delete(mv.cur[i], enc)
			} else {
				mv.cur[i][enc] = eff
			}
		}
	}
}

// versionAtLocked resolves chain-i key k as of commit seq. Returns the
// record image visible at seq (shared — callers must not mutate it and
// must Clone emitted tuples), or visible=false when the key is absent at
// seq. The caller holds the shard latch (read or write).
func (sh *shard) versionAtLocked(chain int, k record.Key, enc []byte, seq uint64) (*record.Record, bool, error) {
	mv := sh.mv
	if mv != nil {
		if vs := mv.hist[chain][string(enc)]; len(vs) > 0 {
			for i := len(vs) - 1; i >= 0; i-- {
				v := vs[i]
				if v.begin <= seq {
					if seq < v.end {
						return v.rec, true, nil
					}
					break // ranges tile downward: older versions end even lower
				}
			}
		}
	}
	if loc, ok := sh.chains[chain].Get(enc); ok {
		visible := true
		if mv != nil {
			if b := mv.cur[chain][string(enc)]; b > seq {
				visible = false
			}
		}
		if visible {
			rec, err := sh.fetch(loc)
			if err != nil {
				return nil, false, err
			}
			if len(rec.Links) <= chain || rec.Links[chain].Key.IsNull() || !rec.Links[chain].Key.Equal(k) {
				return nil, false, fmt.Errorf("%w: chain %d index pointed %v at record keyed %v",
					ErrVerifyFailed, chain, k, rec.Links[chain].Key)
			}
			return rec, true, nil
		}
	}
	if mv != nil && seq < mv.verFloor {
		return nil, false, fmt.Errorf("%w: read at seq %d below shard floor %d", ErrSnapshotTooOld, seq, mv.verFloor)
	}
	return nil, false, nil
}

// entryAtLocked finds the as-of-seq chain entry point: the record with the
// greatest chain-i key ≤ start that is visible at seq. It walks down over
// the union of the live index and the history-key index, skipping keys not
// yet visible at seq; the ⊥ sentinel terminates the walk (its version
// ranges tile all the way back to genesis). The caller holds the shard
// latch.
func (sh *shard) entryAtLocked(chain int, start record.Key, seq uint64) (*record.Record, error) {
	cursor := start.Encode()
	first := true
	for {
		var liveKey, histKey []byte
		var liveOK, histOK bool
		if first {
			liveKey, _, liveOK = sh.chains[chain].SeekLE(cursor)
			if sh.mv != nil {
				histKey, _, histOK = sh.mv.histKeys[chain].SeekLE(cursor)
			}
		} else {
			liveKey, _, liveOK = sh.chains[chain].SeekLT(cursor)
			if sh.mv != nil {
				histKey, _, histOK = sh.mv.histKeys[chain].SeekLT(cursor)
			}
		}
		first = false
		cand := liveKey
		if !liveOK || (histOK && string(histKey) > string(cand)) {
			cand = histKey
		}
		if !liveOK && !histOK {
			return nil, fmt.Errorf("%w: chain %d has no record ≤ %v (missing ⊥ anchor)", ErrVerifyFailed, chain, start)
		}
		k, err := record.DecodeKey(cand)
		if err != nil {
			return nil, fmt.Errorf("%w: undecodable chain %d key: %v", ErrVerifyFailed, chain, err)
		}
		rec, visible, err := sh.versionAtLocked(chain, k, cand, seq)
		if err != nil {
			return nil, err
		}
		if visible {
			return rec, nil
		}
		cursor = cand
	}
}

// searchChainAtLocked is the §5.2 verified index search as of a snapshot
// seq: the entry record's ⟨key, nKey⟩ interval (at seq) proves presence or
// absence exactly as in the latest-version search.
func (sh *shard) searchChainAt(chain int, k record.Key, seq uint64) (record.Tuple, Evidence, error) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if sh.mv != nil && seq < sh.mv.verFloor {
		return nil, Evidence{}, fmt.Errorf("%w: snapshot %d below shard floor %d", ErrSnapshotTooOld, seq, sh.mv.verFloor)
	}
	rec, err := sh.entryAtLocked(chain, k, seq)
	if err != nil {
		return nil, Evidence{}, err
	}
	if len(rec.Links) <= chain || rec.Links[chain].Key.IsNull() {
		return nil, Evidence{}, fmt.Errorf("%w: evidence record does not participate in chain %d", ErrVerifyFailed, chain)
	}
	l := rec.Links[chain]
	ev := Evidence{Table: sh.t.name, Chain: chain, Key: l.Key, NKey: l.NKey}
	switch {
	case l.Key.Equal(k):
		ev.Found = true
		return rec.Data.Clone(), ev, nil
	case l.Key.Compare(k) < 0 && k.Compare(l.NKey) < 0:
		return nil, ev, nil
	default:
		return nil, Evidence{}, fmt.Errorf("%w: record ⟨%v,%v⟩ does not witness probe %v on chain %d at seq %d",
			ErrVerifyFailed, l.Key, l.NKey, k, chain, seq)
	}
}

// SetMaxVersions caps retained versions per row key (0: unlimited). When
// the cap discards a version an open snapshot might still need, reads from
// that snapshot fail with ErrSnapshotTooOld instead of lying.
func (s *Store) SetMaxVersions(n int) {
	if n < 0 {
		n = 0
	}
	s.maxVersions.Store(int64(n))
}

// VersionGCStats summarises one garbage-collection pass.
type VersionGCStats struct {
	// Reclaimed counts versions dropped by this pass.
	Reclaimed int
	// Retained counts versions still held after the pass.
	Retained int
	// Floor is the reclamation floor the pass ran at.
	Floor uint64
}

// VersionGCPass reclaims, across every table, retired versions whose range
// ends at or below the watermark-and-pins floor — no live or future
// snapshot can read them — and prunes live-version begin-seq entries the
// floor has passed. It touches only trusted heap state: the resident RSWS
// checksum is unchanged by construction.
func (s *Store) VersionGCPass() VersionGCStats {
	floor := s.clock.floor()
	st := VersionGCStats{Floor: floor}
	bud := s.budget.Load()
	s.mu.RLock()
	tables := make([]*Table, 0, len(s.tables))
	for _, t := range s.tables {
		tables = append(tables, t)
	}
	s.mu.RUnlock()
	for _, t := range tables {
		for _, sh := range t.shards {
			sh.mu.Lock()
			mv := sh.mv
			if mv == nil {
				sh.mu.Unlock()
				continue
			}
			for i := range mv.hist {
				for enc, vs := range mv.hist[i] {
					n := 0
					for n < len(vs) && vs[n].end <= floor {
						bud.Release(versionBytes(vs[n].rec))
						n++
					}
					if n == 0 {
						continue
					}
					st.Reclaimed += n
					mv.retained -= n
					if n == len(vs) {
						delete(mv.hist[i], enc)
						mv.histKeys[i].Delete([]byte(enc))
					} else {
						mv.hist[i][enc] = vs[n:]
					}
				}
				for enc, b := range mv.cur[i] {
					// A begin at or below the floor is indistinguishable from
					// the implicit 0 for every snapshot that can still open.
					if b <= floor {
						delete(mv.cur[i], enc)
					}
				}
			}
			st.Retained += mv.retained
			sh.mu.Unlock()
		}
	}
	return st
}

// VersionStats returns the retained-version count across all tables and
// the current reclamation floor.
func (s *Store) VersionStats() (retained int, floor uint64) {
	floor = s.clock.floor()
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, t := range s.tables {
		for _, sh := range t.shards {
			sh.mu.RLock()
			if sh.mv != nil {
				retained += sh.mv.retained
			}
			sh.mu.RUnlock()
		}
	}
	return retained, floor
}

// StartVersionGC launches a background goroutine running VersionGCPass
// every interval. Returns an error if a collector is already running.
func (s *Store) StartVersionGC(interval time.Duration) error {
	if interval <= 0 {
		return fmt.Errorf("storage: version GC interval %v must be positive", interval)
	}
	s.gcMu.Lock()
	defer s.gcMu.Unlock()
	if s.gcStop != nil {
		return fmt.Errorf("storage: version GC already running")
	}
	stop := make(chan struct{})
	s.gcStop = stop
	s.gcWG.Add(1)
	go func() {
		defer s.gcWG.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				s.VersionGCPass()
			}
		}
	}()
	return nil
}

// StopVersionGC stops the background collector (no-op if not running).
func (s *Store) StopVersionGC() {
	s.gcMu.Lock()
	stop := s.gcStop
	s.gcStop = nil
	s.gcMu.Unlock()
	if stop != nil {
		close(stop)
		s.gcWG.Wait()
	}
}
