package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"veridb/internal/enclave"
	"veridb/internal/record"
	"veridb/internal/vmem"
)

// unwrapIter strips the implicit-snapshot ownership wrapper so tests can
// assert on the concrete iterator a scan routed to.
func unwrapIter(it Iterator) Iterator {
	if c, ok := it.(*snapClosingIter); ok {
		return c.Iterator
	}
	return it
}

func mvccStore(t *testing.T, shards int) (*Store, *Table) {
	t.Helper()
	mem, err := vmem.New(enclave.NewForTest(7), vmem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(mem)
	tb, err := s.CreateTable(TableSpec{
		Name: "acct",
		Schema: record.NewSchema(
			record.Column{Name: "id", Type: record.TypeInt},
			record.Column{Name: "grp", Type: record.TypeInt},
			record.Column{Name: "bal", Type: record.TypeFloat},
		),
		PrimaryKey:   0,
		ChainColumns: []int{1},
		Shards:       shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, tb
}

// iterResult lets a multi-valued scan constructor feed scanRows directly.
type iterResult struct {
	it  Iterator
	err error
}

func ir(it Iterator, err error) iterResult { return iterResult{it, err} }

func scanRows(t *testing.T, r iterResult) []record.Tuple {
	t.Helper()
	if r.err != nil {
		t.Fatal(r.err)
	}
	it := r.it
	defer it.Close()
	var rows []record.Tuple
	for {
		tup, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return rows
		}
		rows = append(rows, tup)
	}
}

func rowsEqual(a, b []record.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if fmt.Sprint(a[i]) != fmt.Sprint(b[i]) {
			return false
		}
	}
	return true
}

// TestWriterNotBlockedByOpenScan is the mergeIterator latch-lifetime
// regression test: an open, unfinished snapshot scan must not block a
// writer. Before MVCC the merge held every shard's shared latch until the
// scan drained, so the Insert below would deadlock against the paused scan.
func TestWriterNotBlockedByOpenScan(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			_, tb := mvccStore(t, shards)
			for i := 0; i < 100; i++ {
				if err := tb.Insert(record.Tuple{record.Int(int64(i)), record.Int(int64(i % 5)), record.Float(0)}); err != nil {
					t.Fatal(err)
				}
			}
			sc, err := tb.SeqScan()
			if err != nil {
				t.Fatal(err)
			}
			defer sc.Close()
			// Pull a few rows and leave the scan open mid-flight.
			for i := 0; i < 3; i++ {
				if _, ok, err := sc.Next(); !ok || err != nil {
					t.Fatalf("scan stalled early: ok=%v err=%v", ok, err)
				}
			}
			done := make(chan error, 1)
			go func() {
				done <- tb.Insert(record.Tuple{record.Int(1000), record.Int(0), record.Float(1)})
			}()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("writer failed: %v", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("writer blocked behind an open unfinished scan")
			}
			// The open scan still completes and sees its snapshot only.
			rest := 3
			for {
				_, ok, err := sc.Next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				rest++
			}
			if rest != 100 {
				t.Fatalf("open scan saw %d rows, want its 100-row snapshot", rest)
			}
		})
	}
}

// TestSnapshotStableUnderWrites pins a snapshot, mutates the table heavily,
// and requires reads at the snapshot to keep returning the pinned state —
// repeatedly and bit-identically — while fresh scans see the new state.
func TestSnapshotStableUnderWrites(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s, tb := mvccStore(t, shards)
			for i := 0; i < 50; i++ {
				if err := tb.Insert(record.Tuple{record.Int(int64(i)), record.Int(int64(i % 5)), record.Float(float64(i))}); err != nil {
					t.Fatal(err)
				}
			}
			snap := s.OpenSnapshot()
			defer snap.Close()
			want := scanRows(t, ir(tb.SeqScanAt(snap)))
			if len(want) != 50 {
				t.Fatalf("snapshot scan saw %d rows, want 50", len(want))
			}

			// Heavy churn after the pin: updates, deletes, inserts.
			for i := 0; i < 50; i += 2 {
				if err := tb.Update(record.Int(int64(i)), record.Tuple{record.Int(int64(i)), record.Int(int64((i + 1) % 5)), record.Float(-1)}); err != nil {
					t.Fatal(err)
				}
			}
			for i := 1; i < 50; i += 4 {
				if err := tb.Delete(record.Int(int64(i))); err != nil {
					t.Fatal(err)
				}
			}
			for i := 100; i < 130; i++ {
				if err := tb.Insert(record.Tuple{record.Int(int64(i)), record.Int(0), record.Float(9)}); err != nil {
					t.Fatal(err)
				}
			}

			for round := 0; round < 3; round++ {
				got := scanRows(t, ir(tb.SeqScanAt(snap)))
				if !rowsEqual(got, want) {
					t.Fatalf("round %d: snapshot scan drifted: %d rows vs %d", round, len(got), len(want))
				}
			}
			// Secondary-chain range scan at the snapshot is pinned too.
			lo, hi := record.Int(0), record.Int(4)
			gotRange := scanRows(t, ir(tb.RangeScanAt(1, &lo, &hi, snap)))
			if len(gotRange) != 50 {
				t.Fatalf("snapshot range scan saw %d rows, want 50", len(gotRange))
			}
			// A fresh scan sees the post-churn state.
			fresh := scanRows(t, ir(tb.SeqScan()))
			if rowsEqual(fresh, want) {
				t.Fatal("fresh scan still returns the old snapshot")
			}
			if len(fresh) != 50-13+30 {
				t.Fatalf("fresh scan saw %d rows, want %d", len(fresh), 50-13+30)
			}
		})
	}
}

// TestGetAtSnapshot exercises the snapshot point read: presence of the
// pinned value after updates, presence after delete, and absence of keys
// born after the pin — each with verified evidence.
func TestGetAtSnapshot(t *testing.T) {
	s, tb := mvccStore(t, 4)
	for i := 0; i < 20; i++ {
		if err := tb.Insert(record.Tuple{record.Int(int64(i)), record.Int(0), record.Float(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.OpenSnapshot()
	defer snap.Close()

	if err := tb.Update(record.Int(3), record.Tuple{record.Int(3), record.Int(0), record.Float(-3)}); err != nil {
		t.Fatal(err)
	}
	if err := tb.Delete(record.Int(7)); err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(record.Tuple{record.Int(50), record.Int(0), record.Float(50)}); err != nil {
		t.Fatal(err)
	}

	tup, ev, err := tb.GetAt(record.Int(3), snap)
	if err != nil || !ev.Found || tup[2].F != 3 {
		t.Fatalf("GetAt(3) = %v ev=%v err=%v, want pinned value 3", tup, ev, err)
	}
	tup, ev, err = tb.GetAt(record.Int(7), snap)
	if err != nil || !ev.Found || tup[2].F != 7 {
		t.Fatalf("GetAt(7) = %v ev=%v err=%v, want pre-delete value", tup, ev, err)
	}
	tup, ev, err = tb.GetAt(record.Int(50), snap)
	if err != nil || ev.Found || tup != nil {
		t.Fatalf("GetAt(50) = %v ev=%v err=%v, want verified absence", tup, ev, err)
	}
	// Latest-state reads see the churn.
	if tup, _, err := tb.Get(record.Int(3)); err != nil || tup[2].F != -3 {
		t.Fatalf("Get(3) = %v err=%v, want updated value", tup, err)
	}
	if _, ev, err := tb.Get(record.Int(7)); err != nil || ev.Found {
		t.Fatalf("Get(7) found=%v err=%v, want absent", ev.Found, err)
	}
}

// TestVersionGCReclaims drives churn under a pinned snapshot, then closes
// it and requires a GC pass to reclaim everything below the watermark —
// without perturbing the resident RSWS checksum (versions live in trusted
// heap, not in verified memory).
func TestVersionGCReclaims(t *testing.T) {
	s, tb := mvccStore(t, 2)
	for i := 0; i < 30; i++ {
		if err := tb.Insert(record.Tuple{record.Int(int64(i)), record.Int(0), record.Float(0)}); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.OpenSnapshot()
	for round := 0; round < 4; round++ {
		for i := 0; i < 30; i++ {
			if err := tb.Update(record.Int(int64(i)), record.Tuple{record.Int(int64(i)), record.Int(0), record.Float(float64(round))}); err != nil {
				t.Fatal(err)
			}
		}
	}
	retained, _ := s.VersionStats()
	if retained == 0 {
		t.Fatal("no versions retained under a pinned snapshot")
	}
	// The pin holds the floor down: GC must keep the snapshot readable.
	st := s.VersionGCPass()
	if got := scanRows(t, ir(tb.SeqScanAt(snap))); len(got) != 30 {
		t.Fatalf("snapshot scan after pinned GC saw %d rows", len(got))
	}
	if st.Floor >= snap.Seq()+1 {
		t.Fatalf("GC floor %d overtook pinned snapshot %d", st.Floor, snap.Seq())
	}

	snap.Close()
	before := s.Memory().ResidentChecksum()
	st = s.VersionGCPass()
	if st.Reclaimed == 0 {
		t.Fatal("GC pass reclaimed nothing after the pin was released")
	}
	if retained, _ := s.VersionStats(); retained != 0 {
		t.Fatalf("%d versions survive GC with no pins and an idle clock", retained)
	}
	if after := s.Memory().ResidentChecksum(); after != before {
		t.Fatalf("GC pass changed the resident checksum: %x → %x", before, after)
	}
	// The table still reads correctly at a fresh snapshot after GC.
	if got := scanRows(t, ir(tb.SeqScan())); len(got) != 30 {
		t.Fatalf("post-GC scan saw %d rows", len(got))
	}
}

// TestSnapshotTooOld caps versions per row and requires reads from a
// snapshot whose versions were discarded to fail loudly instead of lying.
func TestSnapshotTooOld(t *testing.T) {
	s, tb := mvccStore(t, 1)
	s.SetMaxVersions(2)
	if err := tb.Insert(record.Tuple{record.Int(1), record.Int(0), record.Float(0)}); err != nil {
		t.Fatal(err)
	}
	snap := s.OpenSnapshot()
	defer snap.Close()
	for i := 0; i < 10; i++ {
		if err := tb.Update(record.Int(1), record.Tuple{record.Int(1), record.Int(0), record.Float(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := tb.GetAt(record.Int(1), snap); !errors.Is(err, ErrSnapshotTooOld) {
		t.Fatalf("GetAt at a pruned snapshot returned %v, want ErrSnapshotTooOld", err)
	}
	sc, err := tb.SeqScanAt(snap)
	if err == nil {
		_, _, err = sc.Next()
		sc.Close()
	}
	if !errors.Is(err, ErrSnapshotTooOld) {
		t.Fatalf("scan at a pruned snapshot returned %v, want ErrSnapshotTooOld", err)
	}
	// A fresh snapshot reads fine.
	if tup, _, err := tb.Get(record.Int(1)); err != nil || tup[2].F != 9 {
		t.Fatalf("latest read = %v err=%v", tup, err)
	}
}

// TestSnapshotConsistencyUnderConcurrentWriters races writers against
// snapshot scans on a sharded table: every scan must be internally
// consistent (a committed prefix: balance-sum invariant preserved) and
// repeat scans at the same snapshot must be bit-identical.
func TestSnapshotConsistencyUnderConcurrentWriters(t *testing.T) {
	s, tb := mvccStore(t, 4)
	const nRows = 40
	for i := 0; i < nRows; i++ {
		if err := tb.Insert(record.Tuple{record.Int(int64(i)), record.Int(int64(i % 3)), record.Float(100)}); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Writers move balance between row pairs under one commit each: every
	// committed state sums to 100*nRows.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				a := rng.Intn(nRows)
				b := (a + 1 + rng.Intn(nRows-1)) % nRows
				amt := float64(rng.Intn(10))
				c := s.BeginCommit()
				_ = tb.UpdateFuncAt(record.Int(int64(a)), func(tup record.Tuple) (record.Tuple, error) {
					tup[2] = record.Float(tup[2].F - amt)
					return tup, nil
				}, c)
				_ = tb.UpdateFuncAt(record.Int(int64(b)), func(tup record.Tuple) (record.Tuple, error) {
					tup[2] = record.Float(tup[2].F + amt)
					return tup, nil
				}, c)
				c.Done()
			}
		}(int64(w + 1))
	}
	for round := 0; round < 20; round++ {
		snap := s.OpenSnapshot()
		first := scanRows(t, ir(tb.SeqScanAt(snap)))
		if len(first) != nRows {
			snap.Close()
			t.Fatalf("round %d: snapshot scan saw %d rows", round, len(first))
		}
		sum := 0.0
		for _, r := range first {
			sum += r[2].F
		}
		if sum != 100*nRows {
			snap.Close()
			t.Fatalf("round %d: snapshot caught a torn commit: sum %v", round, sum)
		}
		second := scanRows(t, ir(tb.SeqScanAt(snap)))
		if !rowsEqual(first, second) {
			snap.Close()
			t.Fatalf("round %d: repeat scan at one snapshot differs", round)
		}
		snap.Close()
	}
	close(stop)
	wg.Wait()
}
