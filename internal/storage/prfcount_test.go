package storage

import (
	"testing"

	"veridb/internal/enclave"
	"veridb/internal/record"
	"veridb/internal/vmem"
)

func TestPRFCountPerOp(t *testing.T) {
	mem, _ := vmem.New(enclave.NewForTest(1), vmem.Config{})
	st := NewStore(mem)
	tab, _ := st.CreateTable(TableSpec{
		Name: "kv",
		Schema: record.NewSchema(
			record.Column{Name: "k", Type: record.TypeInt},
			record.Column{Name: "v", Type: record.TypeText},
		),
		PrimaryKey: 0,
	})
	val := record.Text(string(make([]byte, 500)))
	for i := 1; i <= 1000; i++ {
		tab.Insert(record.Tuple{record.Int(int64(i) * 2), val})
	}
	// Pin the §6.1 cost model: the PRF evaluations per operation are the
	// dominant verification overhead, so an accidental extra tracked
	// access is a performance regression this test catches.
	count := func(name string, want uint64, f func()) {
		t.Helper()
		before := mem.Stats().PRFEvals
		f()
		if got := mem.Stats().PRFEvals - before; got != want {
			t.Errorf("%s: %d PRF evaluations, want %d", name, got, want)
		}
	}
	// Get: record read + virtual write-back (Alg. 1).
	count("get", 2, func() { tab.SearchPK(record.Int(500)) })
	// Insert: predecessor read (2) + relink write (2) + new cell (1).
	count("insert", 5, func() { tab.Insert(record.Tuple{record.Int(501), val}) })
	// Delete: record read (2) + predecessor read+relink (4) + read-out (1).
	count("delete", 7, func() { tab.Delete(record.Int(501)) })
	// Update in place: record read (2) + rewrite (2).
	count("update", 4, func() { tab.Update(record.Int(500), record.Tuple{record.Int(500), val}) })
	// Absence probe costs the same as a hit.
	count("get-absent", 2, func() { tab.SearchPK(record.Int(501)) })
}
