package storage

import (
	"errors"
	"fmt"

	"veridb/internal/index"
	"veridb/internal/page"
	"veridb/internal/record"
)

// shard is one independently latched slice of a table. Each shard owns a
// complete ⊥/⊤-anchored sub-chain per chain column, its own untrusted
// B-tree indexes, page set and fill target, so DML on different shards
// never contends on a latch. Rows are assigned to shards by hashing the
// encoded primary key (index.ShardOf); a row's secondary-chain entries
// live in the same shard as the row itself, so a shard is self-contained:
// its chains prove presence/absence for exactly the keys that route to it
// (Definition 4.2 holds per shard).
//
// The mutex serialises structural mutation (chain maintenance and the
// untrusted indexes); scanners hold it shared for their lifetime so the
// chain they verify is stable. The expensive verification work (PRF
// folding) happens inside vmem under its own per-partition RSWS locks.
type shard struct {
	t  *Table
	id int
	// affinity pins this shard's pages to one RSWS partition so the shard
	// latch and the partition lock contend on the same subset of traffic
	// (§4.3). -1 means no preference (single-shard tables keep the plain
	// allocation order, bit-for-bit).
	affinity int

	mu       tableLock
	chains   []*index.BTree // chains[i] indexes chain i by encoded key
	pages    []uint64
	fill     uint64          // current insertion target page
	spacious map[uint64]bool // pages with known reclaimable or free space
	rows     int

	// mv holds the shard's retired record versions and live-version begin
	// seqs for MVCC snapshot reads (nil on ephemeral tables). It lives in
	// trusted enclave heap, outside the write-read consistent memory, so
	// versioning never perturbs the resident RSWS digest. Guarded by mu.
	mv *shardVersions
}

func newShard(t *Table, id, affinity int) (*shard, error) {
	sh := &shard{
		t:        t,
		id:       id,
		affinity: affinity,
		chains:   make([]*index.BTree, len(t.chainCols)),
		spacious: make(map[uint64]bool),
	}
	if !t.ephemeral {
		sh.mv = newShardVersions(len(t.chainCols))
	}
	for i := range sh.chains {
		sh.chains[i] = index.New()
	}
	// One sentinel record per chain: ⟨⊥, ⊤⟩ on its own chain, null links on
	// the others — two empty key chains, exactly as Fig. 6(a) initialises.
	// Every shard carries its own sentinels, so absence below the shard's
	// minimum and in an empty shard stays provable.
	for i := range sh.chains {
		links := make([]record.ChainLink, len(t.chainCols))
		for j := range links {
			links[j] = record.ChainLink{Key: record.NullKey(), NKey: record.NullKey()}
		}
		links[i] = record.ChainLink{Key: record.Bottom(), NKey: record.Top()}
		loc, err := sh.placeRecord(record.Encode(&record.Record{Links: links}))
		if err != nil {
			return nil, fmt.Errorf("storage: creating sentinel for %q shard %d chain %d: %w", t.name, id, i, err)
		}
		sh.chains[i].Set(record.Bottom().Encode(), loc)
	}
	return sh, nil
}

// spaciousSweepCap bounds how many spacious-map entries one placeRecord call
// may examine while pruning re-filled pages; random map order spreads the
// sweep across inserts.
const spaciousSweepCap = 32

// placeRecord stores encoded bytes in a page with room, allocating pages as
// needed, and returns the location.
func (sh *shard) placeRecord(enc []byte) (index.Loc, error) {
	try := func(pid uint64) (index.Loc, error) {
		slot, err := sh.t.mem.Insert(pid, enc)
		if err != nil {
			return index.Loc{}, err
		}
		return index.Loc{Page: pid, Slot: slot}, nil
	}
	if sh.fill != 0 {
		if loc, err := try(sh.fill); err == nil {
			return loc, nil
		} else if !errors.Is(err, page.ErrPageFull) {
			return index.Loc{}, err
		}
	}
	// Retry a few pages known to have reclaimable space before growing.
	// Pages that have been re-filled since they were marked (compaction
	// plus later inserts) are dropped without spending a placement attempt:
	// without the pruning the map only ever shrinks by failed tries, and
	// under long delete/insert churn it accumulates entries for full pages.
	tried, examined := 0, 0
	for pid := range sh.spacious {
		if pid == sh.fill {
			delete(sh.spacious, pid)
			continue
		}
		if examined++; examined > spaciousSweepCap {
			break
		}
		if info, err := sh.t.mem.Info(pid); err == nil &&
			info.ContiguousFree+info.Reclaimable < len(enc) {
			delete(sh.spacious, pid)
			continue
		}
		loc, err := try(pid)
		if err == nil {
			sh.fill = pid
			delete(sh.spacious, pid)
			return loc, nil
		}
		if !errors.Is(err, page.ErrPageFull) {
			return index.Loc{}, err
		}
		delete(sh.spacious, pid)
		if tried++; tried >= 4 {
			break
		}
	}
	pid, err := sh.t.mem.NewPageIn(sh.affinity)
	if err != nil {
		return index.Loc{}, err
	}
	sh.pages = append(sh.pages, pid)
	sh.fill = pid
	return try(pid)
}

// fetch reads and decodes the record at loc through the protected Get.
func (sh *shard) fetch(loc index.Loc) (*record.Record, error) {
	raw, err := sh.t.mem.Get(loc.Page, loc.Slot)
	if err != nil {
		return nil, err
	}
	rec, err := record.Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("%w: undecodable record at (%d,%d): %v", ErrVerifyFailed, loc.Page, loc.Slot, err)
	}
	return rec, nil
}

// rewrite stores a mutated record back at loc, relocating it (and fixing
// every chain index entry) when the grown record no longer fits its page
// (§4.2: an oversized update performs a delete followed by an insert,
// possibly on a different page).
func (sh *shard) rewrite(loc index.Loc, rec *record.Record) (index.Loc, error) {
	enc := record.Encode(rec)
	err := sh.t.mem.Update(loc.Page, loc.Slot, enc)
	if err == nil {
		return loc, nil
	}
	if !errors.Is(err, page.ErrPageFull) {
		return index.Loc{}, err
	}
	newLoc, err := sh.placeRecord(enc)
	if err != nil {
		return index.Loc{}, err
	}
	if err := sh.t.mem.Delete(loc.Page, loc.Slot); err != nil {
		return index.Loc{}, err
	}
	sh.spacious[loc.Page] = true
	for i := range sh.chains {
		l := rec.Links[i]
		if l.Key.IsNull() {
			continue
		}
		sh.chains[i].Set(l.Key.Encode(), newLoc)
	}
	return newLoc, nil
}

// setPredNKey updates the chain-i predecessor of key so that its nKey
// becomes nk. The predecessor is located through the untrusted index and
// its identity verified against the chain (pred.key < key ≤ pred's old
// nKey would have held before the mutation this call is part of). The
// predecessor's pre-image is retired into op so snapshot readers keep
// seeing the old link.
func (sh *shard) setPredNKey(op *mvOp, i int, key record.Key, nk record.Key) error {
	_, loc, ok := sh.chains[i].SeekLT(key.Encode())
	if !ok {
		return fmt.Errorf("%w: chain %d has no predecessor for %v", ErrVerifyFailed, i, key)
	}
	rec, err := sh.fetch(loc)
	if err != nil {
		return err
	}
	if len(rec.Links) != len(sh.chains) || rec.Links[i].Key.IsNull() {
		return fmt.Errorf("%w: chain %d predecessor of %v does not participate", ErrVerifyFailed, i, key)
	}
	if rec.Links[i].Key.Compare(key) >= 0 {
		return fmt.Errorf("%w: chain %d predecessor %v not below %v", ErrVerifyFailed, i, rec.Links[i].Key, key)
	}
	op.retire(rec)
	rec.Links[i].NKey = nk
	if _, err = sh.rewrite(loc, rec); err != nil {
		return err
	}
	op.install(rec)
	return nil
}

// insert adds a tuple whose primary key routes to this shard, maintaining
// every chain (§4.2 Insert: "identifies the record whose primary key right
// precedes the current one, and updates its nKey").
func (sh *shard) insert(tup record.Tuple, pk record.Key, c *Commit) error {
	t := sh.t
	sh.mu.Lock()
	defer sh.mu.Unlock()
	op := sh.mvBegin(c)
	defer op.finish()

	// One pass per chain: fetch the predecessor once, capture its current
	// nKey (the new record's successor) and relink it to the new key —
	// §4.2's "identifies the record whose primary key right precedes the
	// current one, and updates its nKey", paid as one verifiable read plus
	// one verifiable write per chain. Re-seeking per chain keeps this
	// correct when several chains share one predecessor record.
	keys := make([]record.Key, len(sh.chains))
	present := make([]bool, len(sh.chains))
	succs := make([]record.Key, len(sh.chains))
	relinked := 0
	undo := func() {
		// Restore predecessors updated so far (failure of a later step).
		// The op records only first pre-images and final dispositions, so
		// the relink-then-restore churn never reaches the version lists and
		// snapshot readers stay consistent.
		for i := 0; i < relinked; i++ {
			if present[i] {
				_ = sh.setPredNKey(op, i, keys[i], succs[i])
			}
		}
	}
	for i := range sh.chains {
		k, ok, err := t.chainKey(i, tup, pk)
		if err != nil {
			undo()
			return err
		}
		if !ok {
			relinked++
			continue
		}
		keys[i], present[i] = k, true
		pKey, pLoc, found := sh.chains[i].SeekLE(k.Encode())
		if !found {
			undo()
			return fmt.Errorf("%w: chain %d missing ⊥ anchor", ErrVerifyFailed, i)
		}
		pRec, err := sh.fetch(pLoc)
		if err != nil {
			undo()
			return err
		}
		if i == 0 && pRec.Links[0].Key.Equal(k) {
			undo()
			return fmt.Errorf("%w: %v in table %q", ErrDuplicateKey, tup[t.chainCols[0]], t.name)
		}
		if pRec.Links[i].Key.IsNull() {
			undo()
			return fmt.Errorf("%w: chain %d anchor at %x does not participate", ErrVerifyFailed, i, pKey)
		}
		succs[i] = pRec.Links[i].NKey
		op.retire(pRec)
		pRec.Links[i].NKey = k
		if _, err := sh.rewrite(pLoc, pRec); err != nil {
			undo()
			return err
		}
		op.install(pRec)
		relinked++
	}

	links := make([]record.ChainLink, len(sh.chains))
	for i := range links {
		if present[i] {
			links[i] = record.ChainLink{Key: keys[i], NKey: succs[i]}
		} else {
			links[i] = record.ChainLink{Key: record.NullKey(), NKey: record.NullKey()}
		}
	}
	newRec := &record.Record{Links: links, Data: tup}
	loc, err := sh.placeRecord(record.Encode(newRec))
	if err != nil {
		undo()
		return err
	}
	for i := range sh.chains {
		if present[i] {
			sh.chains[i].Set(keys[i].Encode(), loc)
		}
	}
	op.install(newRec)
	sh.rows++
	return nil
}

func (sh *shard) delete(pk record.Key, c *Commit) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	op := sh.mvBegin(c)
	defer op.finish()
	return sh.deleteLocked(pk, op)
}

func (sh *shard) deleteLocked(pk record.Key, op *mvOp) error {
	loc, ok := sh.chains[0].Get(pk.Encode())
	if !ok {
		return fmt.Errorf("%w: primary key %v in %q", ErrNotFound, pk, sh.t.name)
	}
	rec, err := sh.fetch(loc)
	if err != nil {
		return err
	}
	if !rec.Links[0].Key.Equal(pk) {
		return fmt.Errorf("%w: index pointed %v at record keyed %v", ErrVerifyFailed, pk, rec.Links[0].Key)
	}
	// Retire the record's pre-image and drop its live-version entries: the
	// row stays readable below the op's effective seq through the version
	// history even after the physical record is gone.
	op.unlink(rec)
	// Unlink from every chain the record participates in.
	for i := range sh.chains {
		l := rec.Links[i]
		if l.Key.IsNull() {
			continue
		}
		if err := sh.setPredNKey(op, i, l.Key, l.NKey); err != nil {
			return err
		}
	}
	// The predecessor rewrites may have relocated this record; re-resolve.
	loc, ok = sh.chains[0].Get(pk.Encode())
	if !ok {
		return fmt.Errorf("%w: record vanished during delete", ErrVerifyFailed)
	}
	for i := range sh.chains {
		if l := rec.Links[i]; !l.Key.IsNull() {
			sh.chains[i].Delete(l.Key.Encode())
		}
	}
	if err := sh.t.mem.Delete(loc.Page, loc.Slot); err != nil {
		return err
	}
	sh.spacious[loc.Page] = true
	sh.rows--
	return nil
}

// updateFunc is the read-modify-write primitive, run entirely under this
// shard's write latch. Chain-key columns must not change.
func (sh *shard) updateFunc(pkVal record.Value, pk record.Key, mutate func(record.Tuple) (record.Tuple, error), c *Commit) error {
	t := sh.t
	sh.mu.Lock()
	defer sh.mu.Unlock()
	loc, ok := sh.chains[0].Get(pk.Encode())
	if !ok {
		return fmt.Errorf("%w: primary key %v in %q", ErrNotFound, pkVal, t.name)
	}
	rec, err := sh.fetch(loc)
	if err != nil {
		return err
	}
	newTup, err := mutate(rec.Data.Clone())
	if err != nil {
		return err
	}
	if err := t.schema.Validate(newTup); err != nil {
		return err
	}
	newTup = t.schema.Coerce(newTup)
	newPK, err := record.KeyOf(newTup[t.chainCols[0]])
	if err != nil {
		return err
	}
	if !newPK.Equal(pk) {
		return fmt.Errorf("storage: UpdateFunc on %q changed chain column %q",
			t.name, t.schema.Columns[t.chainCols[0]].Name)
	}
	for i := 1; i < len(sh.chains); i++ {
		nk, ok, err := t.chainKey(i, newTup, pk)
		if err != nil {
			return err
		}
		old := rec.Links[i]
		same := (!ok && old.Key.IsNull()) || (ok && !old.Key.IsNull() && nk.Equal(old.Key))
		if !same {
			return fmt.Errorf("storage: UpdateFunc on %q changed chain column %q",
				t.name, t.schema.Columns[t.chainCols[i]].Name)
		}
	}
	op := sh.mvBegin(c)
	defer op.finish()
	op.retire(rec)
	rec.Data = newTup
	if _, err = sh.rewrite(loc, rec); err != nil {
		return err
	}
	op.install(rec)
	return nil
}

// update replaces the row keyed pk by newTup when no chain key changes
// (in-place data rewrite, §4.2 Update: "there is no need to update the key
// chain"). When a chain key does change it deletes the old row and reports
// reinsert=true: the router then re-inserts newTup, which re-routes it if
// the primary key moved to another shard. The shard latch is released
// between the delete and the re-insert (exactly the pre-sharding
// behaviour), so a writer never holds two shard latches at once — the
// lock-order argument that keeps multi-shard scans deadlock-free.
func (sh *shard) update(pkVal record.Value, pk record.Key, newTup record.Tuple, c *Commit) (reinsert bool, err error) {
	t := sh.t
	sh.mu.Lock()
	loc, ok := sh.chains[0].Get(pk.Encode())
	if !ok {
		sh.mu.Unlock()
		return false, fmt.Errorf("%w: primary key %v in %q", ErrNotFound, pkVal, t.name)
	}
	rec, err := sh.fetch(loc)
	if err != nil {
		sh.mu.Unlock()
		return false, err
	}
	newPK, err := record.KeyOf(newTup[t.chainCols[0]])
	if err != nil {
		sh.mu.Unlock()
		return false, err
	}
	sameKeys := newPK.Equal(pk)
	if sameKeys {
		for i := 1; i < len(sh.chains) && sameKeys; i++ {
			nk, ok, err := t.chainKey(i, newTup, newPK)
			if err != nil {
				sh.mu.Unlock()
				return false, err
			}
			old := rec.Links[i]
			switch {
			case !ok && old.Key.IsNull():
			case ok && !old.Key.IsNull() && nk.Equal(old.Key):
			default:
				sameKeys = false
			}
		}
	}
	if sameKeys {
		op := sh.mvBegin(c)
		op.retire(rec)
		rec.Data = newTup
		_, err = sh.rewrite(loc, rec)
		if err == nil {
			op.install(rec)
		}
		op.finish()
		sh.mu.Unlock()
		return false, err
	}
	// Chain keys changed: delete + insert (possibly on a different page —
	// or, if the primary key changed, a different shard).
	op := sh.mvBegin(c)
	err = sh.deleteLocked(pk, op)
	op.finish()
	sh.mu.Unlock()
	if err != nil {
		return false, err
	}
	return true, nil
}

// searchChain runs the verified index search of §5.2 against this shard's
// chain under the shard's read latch.
func (sh *shard) searchChain(chain int, k record.Key) (record.Tuple, Evidence, error) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.searchChainLocked(chain, k)
}

func (sh *shard) searchChainLocked(chain int, k record.Key) (record.Tuple, Evidence, error) {
	_, loc, ok := sh.chains[chain].SeekLE(k.Encode())
	if !ok {
		return nil, Evidence{}, fmt.Errorf("%w: chain %d returned no candidate for %v (missing ⊥ anchor)", ErrVerifyFailed, chain, k)
	}
	rec, err := sh.fetch(loc)
	if err != nil {
		return nil, Evidence{}, err
	}
	if len(rec.Links) <= chain || rec.Links[chain].Key.IsNull() {
		return nil, Evidence{}, fmt.Errorf("%w: evidence record does not participate in chain %d", ErrVerifyFailed, chain)
	}
	l := rec.Links[chain]
	ev := Evidence{Table: sh.t.name, Chain: chain, Key: l.Key, NKey: l.NKey}
	switch {
	case l.Key.Equal(k):
		// Condition (1): the record itself proves presence.
		ev.Found = true
		return rec.Data.Clone(), ev, nil
	case l.Key.Compare(k) < 0 && k.Compare(l.NKey) < 0:
		// Condition (2): key < probe < nKey proves absence.
		return nil, ev, nil
	default:
		// The untrusted index returned a tampered (page, index) pair.
		return nil, Evidence{}, fmt.Errorf("%w: record ⟨%v,%v⟩ does not witness probe %v on chain %d",
			ErrVerifyFailed, l.Key, l.NKey, k, chain)
	}
}
