package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"veridb/internal/enclave"
	"veridb/internal/record"
	"veridb/internal/vmem"
)

// goldenChecksum pins the resident set-hash digest of goldenWorkload as it
// stood before tables grew shards. TableShards == 1 (or 0, the default)
// must keep the memory image bit-for-bit identical to the unsharded
// layout: same page IDs, same chain records, same digests.
const goldenChecksum = "a2dda0412ade81dc"

const (
	goldenRangeRows = 269
	goldenTotalRows = 428
)

// goldenWorkload replays a fixed insert/search/update/scan/delete mix and
// returns the range-scan row count, the final full-scan row count and the
// resident checksum. Deletes run last so page placement never consults the
// (map-ordered) spacious set and the digest stays deterministic.
func goldenWorkload(t *testing.T, shards int) (rangeRows, totalRows int, checksum string) {
	t.Helper()
	mem, err := vmem.New(enclave.NewForTest(42), vmem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(mem)
	tb, err := s.CreateTable(TableSpec{
		Name: "golden",
		Schema: record.NewSchema(
			record.Column{Name: "id", Type: record.TypeInt},
			record.Column{Name: "cat", Type: record.TypeInt},
			record.Column{Name: "val", Type: record.TypeFloat},
		),
		PrimaryKey:   0,
		ChainColumns: []int{1},
		Shards:       shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		k := int64((i * 37) % 1000)
		err := tb.Insert(record.Tuple{
			record.Int(k), record.Int(k % 13), record.Float(float64(i) * 1.5),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i += 3 {
		k := int64((i * 37) % 1000)
		if _, _, err := tb.SearchPK(record.Int(k)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i += 5 {
		k := int64((i * 37) % 1000)
		err := tb.Update(record.Int(k), record.Tuple{
			record.Int(k), record.Int(k % 13), record.Float(float64(i) + 0.25),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	lo, hi := record.Int(3), record.Int(9)
	sc, err := tb.ScanRange(1, &lo, &hi)
	if err != nil {
		t.Fatal(err)
	}
	rangeRows = len(drain(t, sc))
	for i := 0; i < 500; i += 7 {
		k := int64((i * 37) % 1000)
		if err := tb.Delete(record.Int(k)); err != nil {
			t.Fatal(err)
		}
	}
	sc, err = tb.NewScan(0, ScanBounds{})
	if err != nil {
		t.Fatal(err)
	}
	totalRows = len(drain(t, sc))
	if err := mem.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	return rangeRows, totalRows, fmt.Sprint(mem.ResidentChecksum())
}

// TestSingleShardBitIdentical pins the refactor's compatibility promise:
// with one shard (explicit or defaulted) the sharded table produces the
// exact pre-sharding memory image, digest and all.
func TestSingleShardBitIdentical(t *testing.T) {
	for _, shards := range []int{0, 1} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rangeRows, totalRows, sum := goldenWorkload(t, shards)
			if rangeRows != goldenRangeRows {
				t.Errorf("range scan rows = %d, want %d", rangeRows, goldenRangeRows)
			}
			if totalRows != goldenTotalRows {
				t.Errorf("full scan rows = %d, want %d", totalRows, goldenTotalRows)
			}
			if sum != goldenChecksum {
				t.Errorf("resident checksum = %s, want golden %s", sum, goldenChecksum)
			}
		})
	}
}

// TestShardedResultsMatchUnsharded runs the golden workload at several
// shard counts: the memory image differs (different pages, different
// chains) but every query answer must be identical.
func TestShardedResultsMatchUnsharded(t *testing.T) {
	for _, shards := range []int{2, 4, 7} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rangeRows, totalRows, _ := goldenWorkload(t, shards)
			if rangeRows != goldenRangeRows {
				t.Errorf("range scan rows = %d, want %d", rangeRows, goldenRangeRows)
			}
			if totalRows != goldenTotalRows {
				t.Errorf("full scan rows = %d, want %d", totalRows, goldenTotalRows)
			}
		})
	}
}

func shardedSpec(shards int) TableSpec {
	spec := itemsSpec()
	spec.Shards = shards
	return spec
}

// TestShardedScanOrderAndStitch checks that cross-shard merges emit rows
// in global key order: a scan over a 4-shard table is indistinguishable
// from a scan over a single chain.
func TestShardedScanOrderAndStitch(t *testing.T) {
	s := newStore(t, vmem.Config{})
	tb, err := s.CreateTable(shardedSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	if tb.ShardCount() != 4 {
		t.Fatalf("ShardCount = %d", tb.ShardCount())
	}
	perm := rand.New(rand.NewSource(5)).Perm(300)
	for _, i := range perm {
		mustInsert(t, tb, record.Tuple{record.Int(int64(i)), record.Int(int64(i % 11)), record.Float(float64(i))})
	}
	// Every shard should own some keys under FNV routing.
	for i, sh := range tb.shards {
		if sh.rows == 0 {
			t.Fatalf("shard %d owns no rows", i)
		}
	}
	sc, err := tb.NewScan(0, ScanBounds{})
	if err != nil {
		t.Fatal(err)
	}
	rows := drain(t, sc)
	if len(rows) != 300 {
		t.Fatalf("merged scan returned %d rows", len(rows))
	}
	for i, r := range rows {
		if r[0].I != int64(i) {
			t.Fatalf("row %d has id %d: merged scan out of key order", i, r[0].I)
		}
	}
	if sc.Visited() < 300 {
		t.Fatalf("Visited = %d", sc.Visited())
	}
	// Secondary-chain range scans stitch in (value, pk) composite order.
	lo, hi := record.Int(3), record.Int(5)
	sc2, err := tb.ScanRange(1, &lo, &hi)
	if err != nil {
		t.Fatal(err)
	}
	rows = drain(t, sc2)
	want := 0
	for i := 0; i < 300; i++ {
		if m := i % 11; m >= 3 && m <= 5 {
			want++
		}
	}
	if len(rows) != want {
		t.Fatalf("secondary range returned %d rows, want %d", len(rows), want)
	}
	var prevCnt, prevID int64 = -1, -1
	for _, r := range rows {
		if r[1].I < prevCnt || (r[1].I == prevCnt && r[0].I <= prevID) {
			t.Fatal("merged secondary scan out of composite order")
		}
		prevCnt, prevID = r[1].I, r[0].I
	}
	if err := s.Memory().VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedAbsenceProofs checks Def 4.2 absence evidence survives
// sharding: the shard owning a missing key supplies the ⟨key,nKey⟩ gap.
func TestShardedAbsenceProofs(t *testing.T) {
	s := newStore(t, vmem.Config{})
	tb, err := s.CreateTable(shardedSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i += 2 {
		mustInsert(t, tb, record.Tuple{record.Int(int64(i)), record.Int(1), record.Float(0)})
	}
	for i := 1; i < 100; i += 2 {
		tup, ev, err := tb.SearchPK(record.Int(int64(i)))
		if err != nil {
			t.Fatalf("absent key %d: %v", i, err)
		}
		if ev.Found || tup != nil {
			t.Fatalf("phantom row for key %d: %v", i, tup)
		}
		// The gap comes from the owning shard's local chain: a valid
		// absence proof brackets the key without containing it.
		kq, _ := record.KeyOf(record.Int(int64(i)))
		if ev.Key.Equal(kq) || ev.NKey.Equal(kq) {
			t.Fatalf("absence evidence for %d contains the key itself: %v", i, ev)
		}
	}
	for i := 0; i < 100; i += 2 {
		_, ev, err := tb.SearchPK(record.Int(int64(i)))
		if err != nil || !ev.Found {
			t.Fatalf("present key %d: found=%v err=%v", i, ev.Found, err)
		}
	}
}

// TestShardedParallelSeqScan exercises the fan-out merge path (one
// producer goroutine per shard) and checks it returns identical rows to
// the sequential merge.
func TestShardedParallelSeqScan(t *testing.T) {
	s := newStore(t, vmem.Config{VerifyWorkers: 4})
	tb, err := s.CreateTable(shardedSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		mustInsert(t, tb, record.Tuple{record.Int(int64(i)), record.Int(int64(i % 9)), record.Float(float64(i))})
	}
	sc, err := tb.SeqScan()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := unwrapIter(sc).(*parallelMergeIterator); !ok {
		t.Fatalf("SeqScan returned %T, want parallel merge", unwrapIter(sc))
	}
	rows := drain(t, sc)
	if len(rows) != 500 {
		t.Fatalf("parallel scan returned %d rows", len(rows))
	}
	for i, r := range rows {
		if r[0].I != int64(i) {
			t.Fatalf("row %d has id %d: parallel merge out of order", i, r[0].I)
		}
	}
	if sc.Visited() < 500 {
		t.Fatalf("Visited = %d", sc.Visited())
	}
	// Early close mid-stream must not leak producer goroutines (the race
	// detector and goroutine scheduler will complain if it does).
	sc, err = tb.SeqScan()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, ok, err := sc.Next(); err != nil || !ok {
			t.Fatalf("early rows: ok=%v err=%v", ok, err)
		}
	}
	sc.Close()
}

// TestConcurrentDMLAcrossShards drives parallel writers over a sharded
// table (satellite: concurrency test under -race), then compares the
// final state against a serially-computed oracle and verifies memory.
func TestConcurrentDMLAcrossShards(t *testing.T) {
	s := newStore(t, vmem.Config{VerifyWorkers: 4})
	tb, err := s.CreateTable(shardedSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers      = 8
		opsPerWorker = 300
		keySpace     = 1000
	)
	// Each worker owns a disjoint key slice, so the final state is
	// deterministic and a serial oracle can replay it per worker.
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			base := int64(w * keySpace)
			live := map[int64]bool{}
			for op := 0; op < opsPerWorker; op++ {
				k := base + int64(rng.Intn(keySpace))
				switch {
				case !live[k]:
					if err := tb.Insert(record.Tuple{record.Int(k), record.Int(k % 17), record.Float(float64(op))}); err != nil {
						errs <- fmt.Errorf("worker %d insert %d: %w", w, k, err)
						return
					}
					live[k] = true
				case rng.Intn(3) == 0:
					if err := tb.Delete(record.Int(k)); err != nil {
						errs <- fmt.Errorf("worker %d delete %d: %w", w, k, err)
						return
					}
					delete(live, k)
				default:
					if err := tb.Update(record.Int(k), record.Tuple{record.Int(k), record.Int(k % 17), record.Float(float64(-op))}); err != nil {
						errs <- fmt.Errorf("worker %d update %d: %w", w, k, err)
						return
					}
				}
				// Interleave reads: point lookups and short range scans
				// run against shards other writers are mutating.
				if op%25 == 0 {
					if _, _, err := tb.SearchPK(record.Int(k)); err != nil {
						errs <- fmt.Errorf("worker %d search: %w", w, err)
						return
					}
					lo, hi := record.Int(base), record.Int(base+50)
					sc, err := tb.ScanRange(0, &lo, &hi)
					if err != nil {
						errs <- fmt.Errorf("worker %d scan open: %w", w, err)
						return
					}
					for {
						_, ok, err := sc.Next()
						if err != nil {
							sc.Close()
							errs <- fmt.Errorf("worker %d scan: %w", w, err)
							return
						}
						if !ok {
							break
						}
					}
					sc.Close()
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Serial oracle: replay each worker's RNG stream to compute the
	// expected live-key set.
	oracle := map[int64]bool{}
	for w := 0; w < workers; w++ {
		rng := rand.New(rand.NewSource(int64(w)))
		base := int64(w * keySpace)
		live := map[int64]bool{}
		for op := 0; op < opsPerWorker; op++ {
			k := base + int64(rng.Intn(keySpace))
			switch {
			case !live[k]:
				live[k] = true
			case rng.Intn(3) == 0:
				delete(live, k)
			default:
			}
			if op%25 == 0 {
				_ = k // reads consume no randomness
			}
		}
		for k := range live {
			oracle[k] = true
		}
	}
	if tb.RowCount() != len(oracle) {
		t.Fatalf("RowCount = %d, oracle %d", tb.RowCount(), len(oracle))
	}
	sc, err := tb.SeqScan()
	if err != nil {
		t.Fatal(err)
	}
	rows := drain(t, sc)
	if len(rows) != len(oracle) {
		t.Fatalf("scan %d rows, oracle %d", len(rows), len(oracle))
	}
	var got []int64
	for _, r := range rows {
		if !oracle[r[0].I] {
			t.Fatalf("scan emitted key %d the oracle never kept", r[0].I)
		}
		got = append(got, r[0].I)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("concurrent-era merge scan out of key order")
	}
	if err := s.Memory().VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

// TestTamperAnyShardDetected tampers a page belonging to each shard in
// turn, mid-workload, and requires deferred verification to catch it.
func TestTamperAnyShardDetected(t *testing.T) {
	for target := 0; target < 4; target++ {
		t.Run(fmt.Sprintf("shard=%d", target), func(t *testing.T) {
			s := newStore(t, vmem.Config{})
			tb, err := s.CreateTable(shardedSpec(4))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 200; i++ {
				mustInsert(t, tb, record.Tuple{record.Int(int64(i)), record.Int(1), record.Float(0)})
			}
			sh := tb.shards[target]
			if len(sh.pages) == 0 {
				t.Fatalf("shard %d owns no pages", target)
			}
			// Corrupting the version ledger is invisible to the host's
			// replies but poisons the deferred read-set digest. Slot 0 of
			// the shard's first page holds a ⊥ sentinel, always live.
			if err := s.Memory().TamperVersion(sh.pages[0], 0, 9999); err != nil {
				t.Fatal(err)
			}
			// DML elsewhere proceeds obliviously.
			for i := 200; i < 250; i++ {
				_ = tb.Insert(record.Tuple{record.Int(int64(i)), record.Int(1), record.Float(0)})
			}
			if err := s.Memory().VerifyAll(); !errors.Is(err, vmem.ErrTamperDetected) {
				t.Fatalf("tampered shard %d escaped verification: %v", target, err)
			}
		})
	}
}

// TestShardRoutingStable pins the routing function: a key's shard is a
// pure function of its encoding, so reopening a table with the same shard
// count finds every key where it was left.
func TestShardRoutingStable(t *testing.T) {
	s := newStore(t, vmem.Config{})
	tb, err := s.CreateTable(shardedSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		mustInsert(t, tb, record.Tuple{record.Int(int64(i)), record.Int(1), record.Float(0)})
	}
	for i := 0; i < 64; i++ {
		k, err := record.KeyOf(record.Int(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		sh := tb.shardFor(k)
		if _, ok := sh.chains[0].Get(k.Encode()); !ok {
			t.Fatalf("key %d not in its routed shard %d", i, sh.id)
		}
	}
}

// TestSpaciousSetPrunes checks the free-page cache drops pages that can
// no longer satisfy an allocation instead of growing without bound
// (satellite: the spacious map previously only ever gained entries).
func TestSpaciousSetPrunes(t *testing.T) {
	s := newStore(t, vmem.Config{PageSize: 512})
	spec := TableSpec{
		Name: "docs",
		Schema: record.NewSchema(
			record.Column{Name: "id", Type: record.TypeInt},
			record.Column{Name: "body", Type: record.TypeText},
		),
		PrimaryKey: 0,
	}
	tb, err := s.CreateTable(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Fill many pages with small rows, delete most rows so nearly every
	// page lands in the spacious set, then insert large rows none of the
	// stale pages can host: the set must shrink, not just accumulate.
	for i := 0; i < 200; i++ {
		mustInsert(t, tb, record.Tuple{record.Int(int64(i)), record.Text("aaaa")})
	}
	for i := 0; i < 200; i++ {
		if i%10 != 0 {
			if err := tb.Delete(record.Int(int64(i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := len(tb.shards[0].spacious)
	if before == 0 {
		t.Skip("workload left no spacious pages; placement layout changed")
	}
	big := make([]byte, 0, 400)
	for len(big) < 400 {
		big = append(big, 'z')
	}
	for i := 1000; i < 1040; i++ {
		mustInsert(t, tb, record.Tuple{record.Int(int64(i)), record.Text(string(big))})
	}
	after := len(tb.shards[0].spacious)
	if after >= before+40 {
		t.Fatalf("spacious set grew %d -> %d; stale pages never pruned", before, after)
	}
	if err := s.Memory().VerifyAll(); err != nil {
		t.Fatal(err)
	}
}
