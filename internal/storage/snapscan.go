package storage

import (
	"fmt"

	"veridb/internal/record"
)

// snapScanner is the verified range/sequential scan of §5.2 evaluated
// against a pinned Snapshot. It enforces the same three Example 5.1
// conditions as Scanner, but resolves every chain step as of the snapshot
// seq through the shard's version history (mvcc.go) — so the chain it
// verifies is the committed chain at the snapshot, which concurrent
// writers cannot change. That stability is what lets it release the shard
// latch between steps: it holds the shared latch only for the microseconds
// of one chain-step resolution instead of the life of the scan, so writers
// are never blocked behind an open unfinished scan (the mergeIterator
// latch-lifetime fix; see TestWriterNotBlockedByOpenScan).
type snapScanner struct {
	sh    *shard
	chain int
	seq   uint64
	start record.Key
	end   record.Key
	// cur may be a shared history image (read by every snapshot pinned in
	// its range), so it is never mutated and its Data is cloned before
	// emission — the same clone Scanner performs, so output allocation
	// behaviour is unchanged.
	cur     *record.Record
	closed  bool
	err     error
	visited int
}

// newSnapScan opens a verified scan of the given chain of this shard as of
// snapshot seq. The shard latch is held only while the entry point is
// resolved. With an empty version history the resolution issues exactly
// the same protected-memory reads as Scanner (one SeekLE, one fetch), so
// the no-writer verification traffic — and with it the resident RSWS
// digest evolution — is bit-identical to the latch-holding scan.
func (sh *shard) newSnapScan(chain int, bounds ScanBounds, seq uint64) (*snapScanner, error) {
	start := record.Bottom()
	if bounds.Start != nil {
		start = *bounds.Start
	}
	end := record.Top()
	if bounds.End != nil {
		end = *bounds.End
	}
	s := &snapScanner{sh: sh, chain: chain, seq: seq, start: start, end: end}
	sh.mu.RLock()
	if sh.mv != nil && seq < sh.mv.verFloor {
		err := fmt.Errorf("%w: snapshot %d below shard floor %d", ErrSnapshotTooOld, seq, sh.mv.verFloor)
		sh.mu.RUnlock()
		s.fail(err)
		return s, s.err
	}
	rec, err := sh.entryAtLocked(chain, start, seq)
	sh.mu.RUnlock()
	if err != nil {
		s.fail(err)
		return s, s.err
	}
	if rec.Links[chain].Key.Compare(start) > 0 {
		s.fail(fmt.Errorf("%w: first record key %v exceeds scan start %v (condition 1)",
			ErrVerifyFailed, rec.Links[chain].Key, start))
		return s, s.err
	}
	s.cur = rec
	return s, nil
}

func (s *snapScanner) fail(err error) {
	s.err = err
	s.closed = true
}

// Close marks the scan finished. No latch is held between steps, so there
// is nothing to release.
func (s *snapScanner) Close() { s.closed = true }

// Err returns the verification error that ended the scan, if any.
func (s *snapScanner) Err() error { return s.err }

// Visited returns how many chain records the scan has read.
func (s *snapScanner) Visited() int { return s.visited }

// Next returns the next in-range tuple visible at the snapshot.
func (s *snapScanner) Next() (record.Tuple, bool, error) {
	tup, _, ok, err := s.nextKeyed()
	return tup, ok, err
}

// NextBatch fills dst with up to cap(dst.Rows) verified in-range tuples.
func (s *snapScanner) NextBatch(dst *RowBatch) (int, error) {
	dst.Reset()
	for dst.N < len(dst.Rows) {
		tup, _, ok, err := s.nextKeyed()
		if err != nil {
			dst.Reset()
			return 0, err
		}
		if !ok {
			break
		}
		dst.Rows[dst.N] = tup
		dst.N++
	}
	return dst.N, nil
}

// nextKeyed mirrors Scanner.nextKeyed against the snapshot: the same
// in-range test, the same condition-(2) stop, the same condition-(3) step —
// but each step re-acquires the shard latch briefly instead of keeping it.
func (s *snapScanner) nextKeyed() (record.Tuple, record.Key, bool, error) {
	for {
		if s.err != nil || s.closed || s.cur == nil {
			return nil, record.Key{}, false, s.err
		}
		rec := s.cur
		l := rec.Links[s.chain]
		s.visited++

		inRange := !rec.IsSentinel() &&
			l.Key.Compare(s.start) >= 0 && l.Key.Compare(s.end) <= 0
		var out record.Tuple
		if inRange {
			// Clone: history images are shared across every snapshot reader.
			out = rec.Data.Clone()
		}
		if l.NKey.Compare(s.end) <= 0 {
			if err := s.step(l.NKey); err != nil {
				s.fail(err)
				return nil, record.Key{}, false, s.err
			}
		} else {
			s.cur = nil
			s.closed = true
		}
		if out != nil {
			return out, l.Key, true, nil
		}
		if s.cur == nil {
			return nil, record.Key{}, false, s.err
		}
	}
}

// step follows the as-of-snapshot chain to the record keyed nKey and
// verifies condition (3). The committed chain at the snapshot seq links
// only keys visible at that seq, so an invisible or missing successor is a
// verification failure, not a benign race.
func (s *snapScanner) step(nKey record.Key) error {
	if nKey.Kind == record.KindTop {
		s.cur = nil
		s.closed = true
		return nil
	}
	s.sh.mu.RLock()
	rec, visible, err := s.sh.versionAtLocked(s.chain, nKey, nKey.Encode(), s.seq)
	s.sh.mu.RUnlock()
	if err != nil {
		return err
	}
	if !visible {
		return fmt.Errorf("%w: chain %d broken at snapshot %d: no visible record for nKey %v (condition 3)",
			ErrVerifyFailed, s.chain, s.seq, nKey)
	}
	s.cur = rec
	return nil
}

// snapClosingIter wraps an Iterator with a Snapshot the iterator owns:
// closing the iterator (or exhausting it via a failed Next) releases the
// snapshot pin, so implicit per-scan snapshots cannot leak and stall GC.
type snapClosingIter struct {
	Iterator
	snap   *Snapshot
	closed bool
}

func (c *snapClosingIter) Close() {
	c.Iterator.Close()
	if !c.closed {
		c.closed = true
		c.snap.Close()
	}
}
