package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"veridb/internal/enclave"
	"veridb/internal/record"
	"veridb/internal/vmem"
)

func newStore(t testing.TB, cfg vmem.Config) *Store {
	t.Helper()
	mem, err := vmem.New(enclave.NewForTest(77), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return NewStore(mem)
}

func itemsSpec() TableSpec {
	return TableSpec{
		Name: "items",
		Schema: record.NewSchema(
			record.Column{Name: "id", Type: record.TypeInt},
			record.Column{Name: "count", Type: record.TypeInt},
			record.Column{Name: "price", Type: record.TypeFloat},
		),
		PrimaryKey:   0,
		ChainColumns: []int{1}, // secondary chain on count
	}
}

func mustInsert(t *testing.T, tb *Table, tup record.Tuple) {
	t.Helper()
	if err := tb.Insert(tup); err != nil {
		t.Fatalf("Insert(%v): %v", tup, err)
	}
}

func drain(t *testing.T, sc Iterator) []record.Tuple {
	t.Helper()
	var out []record.Tuple
	for {
		tup, ok, err := sc.Next()
		if err != nil {
			t.Fatalf("scan error: %v", err)
		}
		if !ok {
			return out
		}
		out = append(out, tup)
	}
}

func TestCreateTableValidation(t *testing.T) {
	s := newStore(t, vmem.Config{})
	if _, err := s.CreateTable(TableSpec{Name: "t"}); err == nil {
		t.Fatal("empty schema accepted")
	}
	spec := itemsSpec()
	spec.PrimaryKey = 9
	if _, err := s.CreateTable(spec); err == nil {
		t.Fatal("out-of-range primary key accepted")
	}
	spec = itemsSpec()
	if _, err := s.CreateTable(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable(spec); !errors.Is(err, ErrTableExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if _, err := s.Table("missing"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("missing table: %v", err)
	}
	if got := s.TableNames(); len(got) != 1 || got[0] != "items" {
		t.Fatalf("TableNames = %v", got)
	}
}

func TestInsertSearchDelete(t *testing.T) {
	s := newStore(t, vmem.Config{})
	tb, _ := s.CreateTable(itemsSpec())
	mustInsert(t, tb, record.Tuple{record.Int(1), record.Int(100), record.Float(9.5)})
	mustInsert(t, tb, record.Tuple{record.Int(3), record.Int(50), record.Float(1.0)})

	tup, ev, err := tb.SearchPK(record.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Found || tup == nil || tup[1].I != 100 {
		t.Fatalf("found=%v tup=%v", ev.Found, tup)
	}
	// Absence proof: 2 lies strictly between keys 1 and 3.
	tup, ev, err = tb.SearchPK(record.Int(2))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Found || tup != nil {
		t.Fatalf("phantom row: %v", tup)
	}
	k1, _ := record.KeyOf(record.Int(1))
	k3, _ := record.KeyOf(record.Int(3))
	if !ev.Key.Equal(k1) || !ev.NKey.Equal(k3) {
		t.Fatalf("absence evidence ⟨%v,%v⟩, want ⟨1,3⟩", ev.Key, ev.NKey)
	}
	// Absence below minimum: evidence is the ⊥ sentinel.
	_, ev, err = tb.SearchPK(record.Int(0))
	if err != nil || ev.Found {
		t.Fatalf("below-min: found=%v err=%v", ev.Found, err)
	}
	if ev.Key.Kind != record.KindBottom {
		t.Fatalf("below-min evidence key %v, want ⊥", ev.Key)
	}
	// Absence above maximum: evidence nKey is ⊤ (paper Example 4.3).
	_, ev, err = tb.SearchPK(record.Int(99))
	if err != nil || ev.Found {
		t.Fatalf("above-max: found=%v err=%v", ev.Found, err)
	}
	if ev.NKey.Kind != record.KindTop {
		t.Fatalf("above-max evidence nKey %v, want ⊤", ev.NKey)
	}

	if err := tb.Delete(record.Int(1)); err != nil {
		t.Fatal(err)
	}
	if _, ev, _ := tb.SearchPK(record.Int(1)); ev.Found {
		t.Fatal("deleted row still found")
	}
	if err := tb.Delete(record.Int(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if tb.RowCount() != 1 {
		t.Fatalf("RowCount = %d", tb.RowCount())
	}
	if err := s.Memory().VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicatePrimaryKey(t *testing.T) {
	s := newStore(t, vmem.Config{})
	tb, _ := s.CreateTable(itemsSpec())
	mustInsert(t, tb, record.Tuple{record.Int(1), record.Int(1), record.Float(1)})
	err := tb.Insert(record.Tuple{record.Int(1), record.Int(2), record.Float(2)})
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("duplicate insert: %v", err)
	}
	if tb.RowCount() != 1 {
		t.Fatalf("RowCount = %d after rejected duplicate", tb.RowCount())
	}
}

func TestFullScanOrdered(t *testing.T) {
	s := newStore(t, vmem.Config{})
	tb, _ := s.CreateTable(itemsSpec())
	perm := rand.New(rand.NewSource(2)).Perm(200)
	for _, i := range perm {
		mustInsert(t, tb, record.Tuple{record.Int(int64(i)), record.Int(int64(i % 7)), record.Float(float64(i))})
	}
	sc, err := tb.NewScan(0, ScanBounds{})
	if err != nil {
		t.Fatal(err)
	}
	rows := drain(t, sc)
	if len(rows) != 200 {
		t.Fatalf("scan returned %d rows", len(rows))
	}
	for i, r := range rows {
		if r[0].I != int64(i) {
			t.Fatalf("row %d has id %d: scan out of key order", i, r[0].I)
		}
	}
	if sc.Visited() < 200 {
		t.Fatalf("Visited = %d", sc.Visited())
	}
}

func TestRangeScanBoundaries(t *testing.T) {
	s := newStore(t, vmem.Config{})
	tb, _ := s.CreateTable(itemsSpec())
	for i := 10; i <= 80; i += 10 {
		mustInsert(t, tb, record.Tuple{record.Int(int64(i)), record.Int(1), record.Float(0)})
	}
	cases := []struct {
		lo, hi int64
		want   []int64
	}{
		{25, 55, []int64{30, 40, 50}},
		{10, 80, []int64{10, 20, 30, 40, 50, 60, 70, 80}}, // exact ends
		{30, 30, []int64{30}},                             // point range
		{81, 99, nil},                                     // above max
		{1, 9, nil},                                       // below min
		{35, 36, nil},                                     // empty interior
	}
	for _, c := range cases {
		lo, hi := record.Int(c.lo), record.Int(c.hi)
		sc, err := tb.ScanRange(0, &lo, &hi)
		if err != nil {
			t.Fatal(err)
		}
		rows := drain(t, sc)
		var got []int64
		for _, r := range rows {
			got = append(got, r[0].I)
		}
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Fatalf("range [%d,%d] = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
}

func TestScanEmptyTable(t *testing.T) {
	s := newStore(t, vmem.Config{})
	tb, _ := s.CreateTable(itemsSpec())
	sc, err := tb.NewScan(0, ScanBounds{})
	if err != nil {
		t.Fatal(err)
	}
	if rows := drain(t, sc); len(rows) != 0 {
		t.Fatalf("empty table scan returned %d rows", len(rows))
	}
	// Secondary chain too.
	lo, hi := record.Int(0), record.Int(100)
	sc, err = tb.ScanRange(1, &lo, &hi)
	if err != nil {
		t.Fatal(err)
	}
	if rows := drain(t, sc); len(rows) != 0 {
		t.Fatalf("empty secondary scan returned %d rows", len(rows))
	}
}

func TestSecondaryChainWithDuplicates(t *testing.T) {
	s := newStore(t, vmem.Config{})
	tb, _ := s.CreateTable(itemsSpec())
	// counts: 5 appears three times, 7 twice, 9 once
	data := map[int64]int64{1: 5, 2: 7, 3: 5, 4: 9, 5: 5, 6: 7}
	for id, cnt := range data {
		mustInsert(t, tb, record.Tuple{record.Int(id), record.Int(cnt), record.Float(0)})
	}
	lo, hi := record.Int(5), record.Int(7)
	sc, err := tb.ScanRange(1, &lo, &hi)
	if err != nil {
		t.Fatal(err)
	}
	rows := drain(t, sc)
	var ids []int64
	for _, r := range rows {
		if r[1].I < 5 || r[1].I > 7 {
			t.Fatalf("out-of-range count %d", r[1].I)
		}
		ids = append(ids, r[0].I)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if fmt.Sprint(ids) != "[1 2 3 5 6]" {
		t.Fatalf("secondary range ids = %v", ids)
	}
	// Values come out ordered by (count, id).
	var prevCnt, prevID int64 = -1, -1
	for _, r := range rows {
		if r[1].I < prevCnt || (r[1].I == prevCnt && r[0].I <= prevID) {
			t.Fatalf("secondary scan out of composite order: %v", rows)
		}
		prevCnt, prevID = r[1].I, r[0].I
	}
}

func TestNullSecondaryValueSkipsChain(t *testing.T) {
	s := newStore(t, vmem.Config{})
	tb, _ := s.CreateTable(itemsSpec())
	mustInsert(t, tb, record.Tuple{record.Int(1), record.Null(record.TypeInt), record.Float(0)})
	mustInsert(t, tb, record.Tuple{record.Int(2), record.Int(10), record.Float(0)})
	lo, hi := record.Int(0), record.Int(100)
	sc, err := tb.ScanRange(1, &lo, &hi)
	if err != nil {
		t.Fatal(err)
	}
	rows := drain(t, sc)
	if len(rows) != 1 || rows[0][0].I != 2 {
		t.Fatalf("null-valued row leaked into secondary chain: %v", rows)
	}
	// But it is reachable by primary key.
	if _, ev, _ := tb.SearchPK(record.Int(1)); !ev.Found {
		t.Fatal("null-secondary row lost")
	}
	// And deletable without chain corruption.
	if err := tb.Delete(record.Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Memory().VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateInPlaceAndKeyChange(t *testing.T) {
	s := newStore(t, vmem.Config{})
	tb, _ := s.CreateTable(itemsSpec())
	mustInsert(t, tb, record.Tuple{record.Int(1), record.Int(10), record.Float(5)})
	mustInsert(t, tb, record.Tuple{record.Int(2), record.Int(20), record.Float(6)})

	// Data-only update: price changes, chains untouched.
	if err := tb.Update(record.Int(1), record.Tuple{record.Int(1), record.Int(10), record.Float(99)}); err != nil {
		t.Fatal(err)
	}
	tup, _, _ := tb.SearchPK(record.Int(1))
	if tup[2].F != 99 {
		t.Fatalf("in-place update lost: %v", tup)
	}

	// Secondary-chain key change: count 10 → 25.
	if err := tb.Update(record.Int(1), record.Tuple{record.Int(1), record.Int(25), record.Float(99)}); err != nil {
		t.Fatal(err)
	}
	lo, hi := record.Int(25), record.Int(25)
	sc, _ := tb.ScanRange(1, &lo, &hi)
	if rows := drain(t, sc); len(rows) != 1 || rows[0][0].I != 1 {
		t.Fatalf("re-chained row not found at count=25: %v", rows)
	}
	lo, hi = record.Int(10), record.Int(10)
	sc, _ = tb.ScanRange(1, &lo, &hi)
	if rows := drain(t, sc); len(rows) != 0 {
		t.Fatalf("stale chain entry at count=10: %v", rows)
	}

	// Primary-key change.
	if err := tb.Update(record.Int(1), record.Tuple{record.Int(7), record.Int(25), record.Float(99)}); err != nil {
		t.Fatal(err)
	}
	if _, ev, _ := tb.SearchPK(record.Int(1)); ev.Found {
		t.Fatal("old pk still present")
	}
	if _, ev, _ := tb.SearchPK(record.Int(7)); !ev.Found {
		t.Fatal("new pk missing")
	}
	if err := tb.Update(record.Int(404), record.Tuple{record.Int(8), record.Int(1), record.Float(1)}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update missing row: %v", err)
	}
	if err := s.Memory().VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateGrowRelocatesAcrossPages(t *testing.T) {
	// Small pages force relocation when a TEXT value grows.
	s := newStore(t, vmem.Config{PageSize: 512})
	spec := TableSpec{
		Name: "docs",
		Schema: record.NewSchema(
			record.Column{Name: "id", Type: record.TypeInt},
			record.Column{Name: "body", Type: record.TypeText},
		),
		PrimaryKey: 0,
	}
	tb, _ := s.CreateTable(spec)
	for i := 0; i < 8; i++ {
		mustInsert(t, tb, record.Tuple{record.Int(int64(i)), record.Text(strings.Repeat("x", 40))})
	}
	big := strings.Repeat("y", 300)
	if err := tb.Update(record.Int(3), record.Tuple{record.Int(3), record.Text(big)}); err != nil {
		t.Fatal(err)
	}
	tup, _, err := tb.SearchPK(record.Int(3))
	if err != nil || tup[1].S != big {
		t.Fatalf("relocated row wrong: %v, %v", tup, err)
	}
	// Chain still walks completely.
	sc, _ := tb.NewScan(0, ScanBounds{})
	if rows := drain(t, sc); len(rows) != 8 {
		t.Fatalf("scan after relocation: %d rows", len(rows))
	}
	if err := s.Memory().VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAllThenReinsert(t *testing.T) {
	s := newStore(t, vmem.Config{})
	tb, _ := s.CreateTable(itemsSpec())
	for i := 0; i < 50; i++ {
		mustInsert(t, tb, record.Tuple{record.Int(int64(i)), record.Int(int64(i)), record.Float(0)})
	}
	for i := 0; i < 50; i++ {
		if err := tb.Delete(record.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	sc, _ := tb.NewScan(0, ScanBounds{})
	if rows := drain(t, sc); len(rows) != 0 {
		t.Fatalf("%d rows after deleting all", len(rows))
	}
	// Chains reduced to ⟨⊥,⊤⟩: reinsertion works.
	mustInsert(t, tb, record.Tuple{record.Int(5), record.Int(5), record.Float(0)})
	if _, ev, _ := tb.SearchPK(record.Int(5)); !ev.Found {
		t.Fatal("reinsert after full delete failed")
	}
	if err := s.Memory().VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestTextPrimaryKeys(t *testing.T) {
	s := newStore(t, vmem.Config{})
	spec := TableSpec{
		Name: "users",
		Schema: record.NewSchema(
			record.Column{Name: "name", Type: record.TypeText},
			record.Column{Name: "age", Type: record.TypeInt},
		),
		PrimaryKey: 0,
	}
	tb, _ := s.CreateTable(spec)
	names := []string{"mallory", "alice", "bob", "eve", "carol"}
	for i, n := range names {
		mustInsert(t, tb, record.Tuple{record.Text(n), record.Int(int64(20 + i))})
	}
	sc, _ := tb.NewScan(0, ScanBounds{})
	rows := drain(t, sc)
	var got []string
	for _, r := range rows {
		got = append(got, r[0].S)
	}
	want := append([]string(nil), names...)
	sort.Strings(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("text scan order %v", got)
	}
	lo, hi := record.Text("b"), record.Text("d")
	sc, _ = tb.ScanRange(0, &lo, &hi)
	rows = drain(t, sc)
	if len(rows) != 2 || rows[0][0].S != "bob" || rows[1][0].S != "carol" {
		t.Fatalf("text range = %v", rows)
	}
}

func TestEvilIndexDetected(t *testing.T) {
	// A compromised host can corrupt the untrusted index; the access
	// method must refuse to return unverifiable results (§5.2: "the
	// untrusted index may return a tampered (page, index) pair").
	s := newStore(t, vmem.Config{})
	tb, _ := s.CreateTable(itemsSpec())
	for i := 0; i < 10; i++ {
		mustInsert(t, tb, record.Tuple{record.Int(int64(i * 10)), record.Int(1), record.Float(0)})
	}
	// Redirect key 50's index entry at key 20's record.
	k50, _ := record.KeyOf(record.Int(50))
	k20, _ := record.KeyOf(record.Int(20))
	loc20, _ := tb.shards[0].chains[0].Get(k20.Encode())
	tb.shards[0].chains[0].Set(k50.Encode(), loc20)

	if _, _, err := tb.SearchPK(record.Int(50)); !errors.Is(err, ErrVerifyFailed) {
		t.Fatalf("lying index not detected on point search: %v", err)
	}
	// Range scans crossing the corrupted entry must fail too.
	lo, hi := record.Int(30), record.Int(70)
	sc, err := tb.ScanRange(0, &lo, &hi)
	if err == nil {
		for {
			if _, ok, e := sc.Next(); e != nil {
				err = e
				break
			} else if !ok {
				break
			}
		}
	}
	if !errors.Is(err, ErrVerifyFailed) {
		t.Fatalf("lying index not detected on scan: %v", err)
	}
}

func TestEvilIndexHidingKeyDetected(t *testing.T) {
	// Deleting an index entry (hiding a row) must not let the server
	// return a false absence proof: the chain evidence gives it away.
	s := newStore(t, vmem.Config{})
	tb, _ := s.CreateTable(itemsSpec())
	for _, id := range []int64{10, 20, 30} {
		mustInsert(t, tb, record.Tuple{record.Int(id), record.Int(1), record.Float(0)})
	}
	k20, _ := record.KeyOf(record.Int(20))
	tb.shards[0].chains[0].Delete(k20.Encode())
	_, _, err := tb.SearchPK(record.Int(20))
	if !errors.Is(err, ErrVerifyFailed) {
		t.Fatalf("hidden row produced %v; want verification failure", err)
	}
}

func TestDropTableFreesPages(t *testing.T) {
	s := newStore(t, vmem.Config{})
	tb, _ := s.CreateTable(itemsSpec())
	for i := 0; i < 100; i++ {
		mustInsert(t, tb, record.Tuple{record.Int(int64(i)), record.Int(1), record.Float(0)})
	}
	alive := s.Memory().Stats().PagesAlive
	if alive == 0 {
		t.Fatal("no pages allocated")
	}
	if err := s.DropTable("items"); err != nil {
		t.Fatal(err)
	}
	if got := s.Memory().Stats().PagesAlive; got != 0 {
		t.Fatalf("PagesAlive = %d after drop", got)
	}
	if err := s.DropTable("items"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("double drop: %v", err)
	}
	if err := s.Memory().VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

// TestRandomWorkloadAgainstShadow runs a mixed workload against a shadow
// map under several memory configurations, then checks scans, point
// lookups and memory verification all agree.
func TestRandomWorkloadAgainstShadow(t *testing.T) {
	cfgs := map[string]vmem.Config{
		"default":     {},
		"metadata":    {VerifyMetadata: true},
		"partitioned": {Partitions: 8},
		"small-pages": {PageSize: 1024},
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			s := newStore(t, cfg)
			tb, err := s.CreateTable(itemsSpec())
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(9))
			shadow := map[int64][2]int64{} // id -> (count, priceBits)
			for op := 0; op < 2500; op++ {
				id := int64(rng.Intn(300))
				switch rng.Intn(4) {
				case 0, 1:
					cnt := int64(rng.Intn(20))
					tup := record.Tuple{record.Int(id), record.Int(cnt), record.Float(float64(id))}
					if _, exists := shadow[id]; exists {
						if err := tb.Update(record.Int(id), tup); err != nil {
							t.Fatalf("op %d update: %v", op, err)
						}
					} else if err := tb.Insert(tup); err != nil {
						t.Fatalf("op %d insert: %v", op, err)
					}
					shadow[id] = [2]int64{cnt, id}
				case 2:
					_, exists := shadow[id]
					if !exists {
						if err := tb.Delete(record.Int(id)); !errors.Is(err, ErrNotFound) {
							t.Fatalf("op %d delete missing: %v", op, err)
						}
					} else if err := tb.Delete(record.Int(id)); err != nil {
						t.Fatalf("op %d delete: %v", op, err)
					}
					delete(shadow, id)
				case 3:
					tup, ev, err := tb.SearchPK(record.Int(id))
					if err != nil {
						t.Fatalf("op %d search: %v", op, err)
					}
					want, exists := shadow[id]
					if ev.Found != exists {
						t.Fatalf("op %d: found=%v exists=%v", op, ev.Found, exists)
					}
					if exists && tup[1].I != want[0] {
						t.Fatalf("op %d: count %d want %d", op, tup[1].I, want[0])
					}
				}
				if op%700 == 350 {
					if err := s.Memory().VerifyAll(); err != nil {
						t.Fatalf("op %d: %v", op, err)
					}
				}
			}
			// Full scan agrees with the shadow exactly.
			sc, _ := tb.NewScan(0, ScanBounds{})
			rows := drain(t, sc)
			if len(rows) != len(shadow) {
				t.Fatalf("scan %d rows, shadow %d", len(rows), len(shadow))
			}
			for _, r := range rows {
				want, ok := shadow[r[0].I]
				if !ok || r[1].I != want[0] {
					t.Fatalf("scan row %v disagrees with shadow %v", r, want)
				}
			}
			// Secondary chain covers exactly the live rows as well.
			lo, hi := record.Int(0), record.Int(19)
			sc, _ = tb.ScanRange(1, &lo, &hi)
			if rows := drain(t, sc); len(rows) != len(shadow) {
				t.Fatalf("secondary scan %d rows, shadow %d", len(rows), len(shadow))
			}
			if err := s.Memory().VerifyAll(); err != nil {
				t.Fatal(err)
			}
			if tb.RowCount() != len(shadow) {
				t.Fatalf("RowCount %d, shadow %d", tb.RowCount(), len(shadow))
			}
		})
	}
}

func TestEvidenceString(t *testing.T) {
	ev := Evidence{Table: "t", Chain: 0, Key: record.Bottom(), NKey: record.Top(), Found: false}
	if s := ev.String(); !strings.Contains(s, "absence") {
		t.Fatalf("String() = %q", s)
	}
	ev.Found = true
	if s := ev.String(); !strings.Contains(s, "presence") {
		t.Fatalf("String() = %q", s)
	}
}

func TestScannerCloseReleasesLock(t *testing.T) {
	s := newStore(t, vmem.Config{})
	tb, _ := s.CreateTable(itemsSpec())
	mustInsert(t, tb, record.Tuple{record.Int(1), record.Int(1), record.Float(0)})
	sc, err := tb.NewScan(0, ScanBounds{})
	if err != nil {
		t.Fatal(err)
	}
	sc.Close()
	sc.Close() // idempotent
	// Writers proceed after close.
	mustInsert(t, tb, record.Tuple{record.Int(2), record.Int(2), record.Float(0)})
}
